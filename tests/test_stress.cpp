// Stress and corner-configuration tests: degenerate cache geometries,
// extreme contention, single-processor machines, quantum extremes.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace lrc::core {
namespace {

constexpr ProtocolKind kAll[] = {ProtocolKind::kSC, ProtocolKind::kERC,
                                 ProtocolKind::kLRC, ProtocolKind::kLRCExt};

TEST(Stress, SingleSetCacheThrashes) {
  // One-set cache: every distinct line conflicts. The protocols must keep
  // making progress through continuous eviction traffic.
  for (auto kind : kAll) {
    auto params = SystemParams::paper_default(4);
    params.cache_bytes = 128;  // == one line
    Machine m(params, kind);
    auto arr = m.alloc<double>(256, "a");
    m.run([&](Cpu& cpu) {
      for (int round = 0; round < 3; ++round) {
        for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
          arr.put(cpu, i, static_cast<double>(round));
        }
        cpu.barrier(0);
      }
    });
    for (std::size_t i = 0; i < 256; ++i) {
      EXPECT_DOUBLE_EQ(m.peek<double>(arr.addr(i)), 2.0)
          << to_string(kind) << " i=" << i;
    }
  }
}

TEST(Stress, SingleProcessorMachine) {
  for (auto kind : kAll) {
    Machine m(SystemParams::paper_default(1), kind);
    auto arr = m.alloc<double>(1024, "a");
    m.run([&](Cpu& cpu) {
      for (std::size_t i = 0; i < arr.size(); ++i) {
        arr.put(cpu, i, static_cast<double>(i));
      }
      cpu.lock(0);
      cpu.unlock(0);
      cpu.barrier(1);
      double sum = 0;
      for (std::size_t i = 0; i < arr.size(); ++i) sum += arr.get(cpu, i);
      arr.put(cpu, 0, sum);
    });
    EXPECT_DOUBLE_EQ(m.peek<double>(arr.addr(0)),
                     1023.0 * 1024.0 / 2.0) << to_string(kind);
  }
}

TEST(Stress, TwoProcessorPingPong) {
  // The tightest possible migratory pattern: a single line bouncing
  // between two processors through a lock.
  for (auto kind : kAll) {
    Machine m(SystemParams::paper_default(2), kind);
    auto x = m.alloc<std::int64_t>(1, "x");
    m.run([&](Cpu& cpu) {
      for (int i = 0; i < 50; ++i) {
        cpu.lock(0);
        x.put(cpu, 0, x.get(cpu, 0) + 1);
        cpu.unlock(0);
      }
    });
    EXPECT_EQ(m.peek<std::int64_t>(x.addr(0)), 100) << to_string(kind);
  }
}

TEST(Stress, SixtyFourWayLockConvoy) {
  // All 64 processors serialize through one lock once.
  for (auto kind : {ProtocolKind::kERC, ProtocolKind::kLRC}) {
    Machine m(SystemParams::paper_default(64), kind);
    auto x = m.alloc<std::int64_t>(1, "x");
    m.run([&](Cpu& cpu) {
      cpu.lock(0);
      x.put(cpu, 0, x.get(cpu, 0) + 1);
      cpu.unlock(0);
    });
    EXPECT_EQ(m.peek<std::int64_t>(x.addr(0)), 64) << to_string(kind);
    EXPECT_EQ(m.lock_acquires(), 64u);
  }
}

TEST(Stress, ManyBarrierEpisodes) {
  for (auto kind : kAll) {
    Machine m(SystemParams::test_scale(8), kind);
    auto x = m.alloc<std::int32_t>(1, "x");
    constexpr int kRounds = 40;
    m.run([&](Cpu& cpu) {
      for (int r = 0; r < kRounds; ++r) {
        if (cpu.id() == static_cast<NodeId>(r % 8)) x.put(cpu, 0, r);
        cpu.barrier(0);
        EXPECT_EQ(x.get(cpu, 0), r) << to_string(kind);
        cpu.barrier(0);
      }
    });
    EXPECT_EQ(m.barrier_episodes(), 2u * kRounds) << to_string(kind);
  }
}

TEST(Stress, WriteBufferSaturation) {
  // Long bursts of write misses to distinct lines saturate the 4-entry
  // buffer under the buffered protocols; everything must retire.
  for (auto kind : {ProtocolKind::kERC, ProtocolKind::kLRC,
                    ProtocolKind::kLRCExt}) {
    Machine m(SystemParams::paper_default(2), kind);
    auto arr = m.alloc<double>(4096, "a");
    m.run([&](Cpu& cpu) {
      if (cpu.id() != 0) return;
      for (std::size_t i = 0; i < 256; ++i) {
        arr.put(cpu, i * 16, 1.0);  // one write per line
      }
    });
    EXPECT_TRUE(m.cpu(0).wb().empty()) << to_string(kind);
    EXPECT_TRUE(m.cpu(0).ot().empty()) << to_string(kind);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < 256; ++i) {
      sum += m.peek<double>(arr.addr(i * 16)) == 1.0 ? 1 : 0;
    }
    EXPECT_EQ(sum, 256u) << to_string(kind);
  }
}

TEST(Stress, TinyRunaheadQuantum) {
  auto params = SystemParams::test_scale(4);
  params.runahead_quantum = 1;  // yield after every single cycle
  Machine m(params, ProtocolKind::kLRC);
  auto arr = m.alloc<double>(64, "a");
  m.run([&](Cpu& cpu) {
    for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
      arr.put(cpu, i, 5.0);
    }
    cpu.barrier(0);
  });
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(m.peek<double>(arr.addr(i)), 5.0);
  }
}

TEST(Stress, OddProcessorCounts) {
  // Non-power-of-two machines exercise the rectangular-mesh fallback and
  // the home-distribution arithmetic.
  for (unsigned procs : {3u, 5u, 7u, 12u, 23u, 48u}) {
    Machine m(SystemParams::test_scale(procs), ProtocolKind::kLRC);
    auto arr = m.alloc<double>(procs * 8, "a");
    m.run([&](Cpu& cpu) {
      arr.put(cpu, cpu.id() * 8, 1.0 + cpu.id());
      cpu.barrier(0);
      double sum = 0;
      for (unsigned p = 0; p < cpu.nprocs(); ++p) sum += arr.get(cpu, p * 8);
      if (cpu.id() == 0) arr.put(cpu, 1, sum);
    });
    const double expected =
        procs * (procs + 1) / 2.0;  // sum of 1..procs
    EXPECT_DOUBLE_EQ(m.peek<double>(arr.addr(1)), expected) << procs;
  }
}

TEST(Stress, LargeLineSmallCache) {
  // Future-machine lines (256 B) in a 2-line cache.
  auto params = SystemParams::future_machine(4);
  params.cache_bytes = 512;
  Machine m(params, ProtocolKind::kLRC);
  auto arr = m.alloc<double>(512, "a");
  m.run([&](Cpu& cpu) {
    for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
      arr.put(cpu, i, 3.0);
    }
    cpu.barrier(0);
  });
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_DOUBLE_EQ(m.peek<double>(arr.addr(i)), 3.0);
  }
}

}  // namespace
}  // namespace lrc::core
