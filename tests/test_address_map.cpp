#include "mem/address_map.hpp"

#include <gtest/gtest.h>

namespace lrc::mem {
namespace {

TEST(AddressMap, LineAndPageArithmetic) {
  AddressMap m(4, 128, 4096);
  EXPECT_EQ(m.line_of(0), 0u);
  EXPECT_EQ(m.line_of(127), 0u);
  EXPECT_EQ(m.line_of(128), 1u);
  EXPECT_EQ(m.line_base(3), 384u);
  EXPECT_EQ(m.page_of(4095), 0u);
  EXPECT_EQ(m.page_of(4096), 1u);
  EXPECT_EQ(m.words_per_line(), 32u);
}

TEST(AddressMap, WordIndexing) {
  AddressMap m(4, 128, 4096);
  EXPECT_EQ(m.word_in_line(0), 0u);
  EXPECT_EQ(m.word_in_line(4), 1u);
  EXPECT_EQ(m.word_in_line(127), 31u);
  EXPECT_EQ(m.word_in_line(128), 0u);
}

TEST(AddressMap, WordMasks) {
  AddressMap m(4, 128, 4096);
  EXPECT_EQ(m.word_mask(0, 4), WordMask{1});
  EXPECT_EQ(m.word_mask(0, 8), WordMask{3});     // a double spans two words
  EXPECT_EQ(m.word_mask(8, 8), WordMask{0xC});
  EXPECT_EQ(m.word_mask(0, 1), WordMask{1});     // sub-word access
  EXPECT_EQ(m.word_mask(120, 8), WordMask{3} << 30);
}

TEST(AddressMap, RoundRobinHomes) {
  AddressMap m(4, 128, 4096, HomePolicy::kRoundRobin);
  EXPECT_EQ(m.home_of(0), 0u);
  EXPECT_EQ(m.home_of(4096), 1u);
  EXPECT_EQ(m.home_of(4 * 4096), 0u);
  // Lines within one page share a home.
  EXPECT_EQ(m.home_of(4096 + 128), m.home_of(4096 + 256));
}

TEST(AddressMap, FirstTouchHomes) {
  AddressMap m(4, 128, 4096, HomePolicy::kFirstTouch);
  EXPECT_EQ(m.home_of(0, 3), 3u);
  EXPECT_EQ(m.home_of(0, 1), 3u);  // sticky after first touch
  EXPECT_EQ(m.home_of(4096, 2), 2u);
  // Untouched page with no toucher falls back to round-robin.
  EXPECT_EQ(m.home_of(2 * 4096), 2u);
}

TEST(AddressMap, RejectsBadGeometry) {
  EXPECT_THROW(AddressMap(0, 128, 4096), std::invalid_argument);
  EXPECT_THROW(AddressMap(4, 100, 4096), std::invalid_argument);
  EXPECT_THROW(AddressMap(4, 128, 100), std::invalid_argument);
  EXPECT_THROW(AddressMap(4, 4096, 128), std::invalid_argument);
  // Line longer than 64 words does not fit the masks.
  EXPECT_THROW(AddressMap(4, 512, 4096), std::invalid_argument);
  // Power of two but shorter than one 4-byte word.
  EXPECT_THROW(AddressMap(4, 2, 4096), std::invalid_argument);
}

TEST(AddressMap, LongLinesForFutureMachine) {
  AddressMap m(64, 256, 4096);
  EXPECT_EQ(m.words_per_line(), 64u);
  EXPECT_EQ(m.word_mask(252, 4), WordMask{1} << 63);
}

}  // namespace
}  // namespace lrc::mem
