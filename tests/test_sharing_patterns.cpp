// Qualitative protocol-ordering properties on canonical sharing patterns.
// These encode the paper's headline claims as executable assertions:
// false sharing favors LRC over ERC; no-sharing workloads are protocol-
// neutral; migratory counters behave; write-after-read favors LRC.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace lrc::core {
namespace {

struct PatternResult {
  Cycle exec = 0;
  std::uint64_t false_misses = 0;
  std::uint64_t messages = 0;
};

PatternResult run_false_sharing(ProtocolKind kind, bool padded) {
  auto params = SystemParams::paper_default(8);
  Machine m(params, kind);
  const unsigned stride = padded ? 16 : 1;  // 16 doubles = one line
  auto arr = m.alloc<double>(8 * 16, "counters");
  m.run([&](Cpu& cpu) {
    const std::size_t mine = cpu.id() * stride;
    for (int i = 0; i < 200; ++i) {
      arr.put(cpu, mine, arr.get(cpu, mine) + 1.0);
      cpu.compute(6);
    }
    cpu.barrier(0);
  });
  const auto r = m.report();
  return {r.execution_time, r.miss_classes[stats::MissClass::kFalseSharing],
          r.nic.messages};
}

TEST(SharingPatterns, FalseSharingFavorsLrcOverErc) {
  const auto erc = run_false_sharing(ProtocolKind::kERC, false);
  const auto lrc = run_false_sharing(ProtocolKind::kLRC, false);
  // The paper's core claim: lazy invalidation tolerates false sharing.
  EXPECT_LT(lrc.exec, erc.exec);
  EXPECT_LT(lrc.false_misses, erc.false_misses);
}

TEST(SharingPatterns, PaddingNeutralizesTheGap) {
  const auto erc = run_false_sharing(ProtocolKind::kERC, true);
  const auto lrc = run_false_sharing(ProtocolKind::kLRC, true);
  // With one counter per line there is nothing for laziness to win: the
  // protocols should be within a small factor of each other.
  const double ratio = static_cast<double>(lrc.exec) / erc.exec;
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.3);
  EXPECT_EQ(erc.false_misses, 0u);
  EXPECT_EQ(lrc.false_misses, 0u);
}

TEST(SharingPatterns, FalseSharingUnderLrcMatchesPaddedLayout) {
  // Under LRC, packing all writers on one line should cost barely more
  // than padding them apart (multiple concurrent writers).
  const auto packed = run_false_sharing(ProtocolKind::kLRC, false);
  const auto padded = run_false_sharing(ProtocolKind::kLRC, true);
  EXPECT_LT(static_cast<double>(packed.exec),
            1.25 * static_cast<double>(padded.exec));
}

TEST(SharingPatterns, WriteAfterReadFavorsLrc) {
  // Read-modify-write sweeps over shared data: ERC pays upgrade
  // round-trips through its write buffer; LRC retires upgrades instantly.
  auto run = [](ProtocolKind kind) {
    Machine m(SystemParams::paper_default(8), kind);
    auto arr = m.alloc<double>(2048, "a");
    m.run([&](Cpu& cpu) {
      cpu.barrier(0);
      // Everyone reads everything, then each processor updates its block.
      double sum = 0;
      for (std::size_t i = 0; i < arr.size(); i += 16) sum += arr.get(cpu, i);
      const std::size_t lo = cpu.id() * arr.size() / cpu.nprocs();
      const std::size_t hi = (cpu.id() + 1) * arr.size() / cpu.nprocs();
      for (std::size_t i = lo; i < hi; ++i) {
        arr.put(cpu, i, sum);
        cpu.compute(2);
      }
      cpu.barrier(0);
    });
    return m.report();
  };
  const auto erc = run(ProtocolKind::kERC);
  const auto lrc = run(ProtocolKind::kLRC);
  // ERC needs an upgrade transaction per line it had read; LRC none.
  EXPECT_GT(erc.nic.per_kind[static_cast<std::size_t>(
                mesh::MsgKind::kUpgradeReq)],
            0u);
  EXPECT_EQ(lrc.cache.misses(), erc.cache.misses());
}

TEST(SharingPatterns, ReadOnlySharingIsProtocolNeutral) {
  auto run = [](ProtocolKind kind) {
    Machine m(SystemParams::paper_default(8), kind);
    auto arr = m.alloc<double>(1024, "a");
    m.run([&](Cpu& cpu) {
      double sum = 0;
      for (std::size_t i = 0; i < arr.size(); ++i) sum += arr.get(cpu, i);
      (void)sum;
    });
    return m.report().execution_time;
  };
  const Cycle sc = run(ProtocolKind::kSC);
  const Cycle erc = run(ProtocolKind::kERC);
  const Cycle lrc = run(ProtocolKind::kLRC);
  // Pure read sharing: every protocol fetches each line once.
  EXPECT_EQ(sc, erc);
  const double ratio = static_cast<double>(lrc) / static_cast<double>(erc);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(SharingPatterns, MigratoryCounterCorrectEverywhere) {
  for (auto kind : {ProtocolKind::kSC, ProtocolKind::kERC, ProtocolKind::kLRC,
                    ProtocolKind::kLRCExt, ProtocolKind::kERCWT}) {
    Machine m(SystemParams::paper_default(8), kind);
    auto c = m.alloc<std::int64_t>(1, "c");
    m.run([&](Cpu& cpu) {
      for (int i = 0; i < 20; ++i) {
        cpu.lock(3);
        c.put(cpu, 0, c.get(cpu, 0) + 1);
        cpu.unlock(3);
      }
    });
    EXPECT_EQ(m.peek<std::int64_t>(c.addr(0)), 160) << to_string(kind);
  }
}

TEST(SharingPatterns, LrcExtDefersMoreThanLrc) {
  // Count pre-release coherence traffic for a critical section that writes
  // shared data: LRC announces during the section, LRC-ext only at the end.
  auto traffic_before_unlock = [](ProtocolKind kind) {
    Machine m(SystemParams::paper_default(4), kind);
    auto arr = m.alloc<double>(256, "a");
    std::uint64_t write_reqs_before = 0;
    m.run([&](Cpu& cpu) {
      if (cpu.id() == 1) {
        for (unsigned i = 0; i < 64; ++i) (void)arr.get(cpu, i);
      } else if (cpu.id() == 0) {
        cpu.compute(50'000);
        for (unsigned i = 0; i < 64; ++i) (void)arr.get(cpu, i);
        cpu.lock(1);
        for (unsigned i = 0; i < 64; ++i) arr.put(cpu, i, 1.0);
        cpu.compute(10'000);
        write_reqs_before = m.nic().stats().per_kind[static_cast<std::size_t>(
            mesh::MsgKind::kWriteReq)];
        cpu.unlock(1);
      }
    });
    return write_reqs_before;
  };
  EXPECT_GT(traffic_before_unlock(ProtocolKind::kLRC), 0u);
  EXPECT_EQ(traffic_before_unlock(ProtocolKind::kLRCExt), 0u);
}

}  // namespace
}  // namespace lrc::core
