#include "cache/cache.hpp"

#include <gtest/gtest.h>

namespace lrc::cache {
namespace {

TEST(Cache, MissThenFillThenHit) {
  Cache c(1024, 128);  // 8 sets
  EXPECT_EQ(c.find(5), nullptr);
  EXPECT_FALSE(c.fill(5, LineState::kReadOnly).has_value());
  ASSERT_NE(c.find(5), nullptr);
  EXPECT_EQ(c.find(5)->state, LineState::kReadOnly);
}

TEST(Cache, DirectMappedConflictEvicts) {
  Cache c(1024, 128);  // 8 sets: lines 5 and 13 conflict
  c.fill(5, LineState::kReadWrite);
  c.find(5)->dirty = 0x3;
  auto victim = c.fill(13, LineState::kReadOnly);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 5u);
  EXPECT_EQ(victim->state, LineState::kReadWrite);
  EXPECT_EQ(victim->dirty, 0x3u);
  EXPECT_EQ(c.find(5), nullptr);
  ASSERT_NE(c.find(13), nullptr);
  EXPECT_EQ(c.find(13)->dirty, 0u);  // fresh install starts clean
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, NonConflictingLinesCoexist) {
  Cache c(1024, 128);
  for (LineId l = 0; l < 8; ++l) {
    EXPECT_FALSE(c.fill(l, LineState::kReadOnly).has_value());
  }
  for (LineId l = 0; l < 8; ++l) EXPECT_NE(c.find(l), nullptr);
}

TEST(Cache, RefillOfResidentLineKeepsDirtyMask) {
  Cache c(1024, 128);
  c.fill(5, LineState::kReadWrite);
  c.find(5)->dirty = 0xF0;
  auto victim = c.fill(5, LineState::kReadWrite);
  EXPECT_FALSE(victim.has_value());
  EXPECT_EQ(c.find(5)->dirty, 0xF0u);
  EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(Cache, InvalidateRemovesAndReturnsCopy) {
  Cache c(1024, 128);
  c.fill(7, LineState::kReadWrite);
  c.find(7)->dirty = 1;
  auto removed = c.invalidate(7);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->dirty, 1u);
  EXPECT_EQ(c.find(7), nullptr);
  EXPECT_EQ(c.stats().invalidations, 1u);
  EXPECT_FALSE(c.invalidate(7).has_value());  // second time: nothing there
}

TEST(Cache, VictimForPeeksWithoutEvicting) {
  Cache c(1024, 128);
  c.fill(5, LineState::kReadOnly);
  EXPECT_EQ(c.victim_for(13)->line, 5u);
  EXPECT_EQ(c.victim_for(5), nullptr);   // same line: no victim
  EXPECT_EQ(c.victim_for(14), nullptr);  // empty set: no victim
  EXPECT_NE(c.find(5), nullptr);         // nothing was displaced
}

TEST(Cache, ForEachValidVisitsAllResidents) {
  Cache c(1024, 128);
  c.fill(1, LineState::kReadOnly);
  c.fill(2, LineState::kReadWrite);
  unsigned count = 0;
  c.for_each_valid([&](CacheLine&) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST(Cache, StatsRatesAndTotals) {
  Cache c(1024, 128);
  c.stats().read_hits = 90;
  c.stats().read_misses = 5;
  c.stats().write_hits = 3;
  c.stats().write_misses = 1;
  c.stats().upgrade_misses = 1;
  EXPECT_EQ(c.stats().references(), 100u);
  EXPECT_EQ(c.stats().misses(), 7u);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.07);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(1000, 128), std::invalid_argument);
  EXPECT_THROW(Cache(128, 100), std::invalid_argument);
  EXPECT_THROW(Cache(64, 128), std::invalid_argument);
}

class CacheGeometry
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(CacheGeometry, IndexingIsConsistent) {
  const auto [cache_bytes, line_bytes] = GetParam();
  Cache c(cache_bytes, line_bytes);
  const std::uint32_t sets = cache_bytes / line_bytes;
  EXPECT_EQ(c.num_sets(), sets);
  // A line and line+sets conflict; line and line+sets-1 do not (distinct
  // sets).
  c.fill(3, LineState::kReadOnly);
  EXPECT_NE(c.victim_for(3 + sets), nullptr);
  if (sets > 1) {
    EXPECT_EQ(c.victim_for(3 + sets - 1), nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometry,
    ::testing::Values(std::make_pair(128u * 1024u, 128u),   // paper default
                      std::make_pair(128u * 1024u, 256u),   // future machine
                      std::make_pair(4096u, 64u),           // test scale
                      std::make_pair(1024u, 128u),
                      std::make_pair(128u, 128u)));         // single set

}  // namespace
}  // namespace lrc::cache
