#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "sim/rng.hpp"

namespace lrc::cache {
namespace {

TEST(Cache, MissThenFillThenHit) {
  Cache c(1024, 128);  // 8 sets
  EXPECT_EQ(c.find(5), nullptr);
  EXPECT_FALSE(c.fill(5, LineState::kReadOnly).has_value());
  ASSERT_NE(c.find(5), nullptr);
  EXPECT_EQ(c.find(5)->state, LineState::kReadOnly);
}

TEST(Cache, DirectMappedConflictEvicts) {
  Cache c(1024, 128);  // 8 sets: lines 5 and 13 conflict
  c.fill(5, LineState::kReadWrite);
  c.find(5)->dirty = 0x3;
  auto victim = c.fill(13, LineState::kReadOnly);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 5u);
  EXPECT_EQ(victim->state, LineState::kReadWrite);
  EXPECT_EQ(victim->dirty, 0x3u);
  EXPECT_EQ(c.find(5), nullptr);
  ASSERT_NE(c.find(13), nullptr);
  EXPECT_EQ(c.find(13)->dirty, 0u);  // fresh install starts clean
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, NonConflictingLinesCoexist) {
  Cache c(1024, 128);
  for (LineId l = 0; l < 8; ++l) {
    EXPECT_FALSE(c.fill(l, LineState::kReadOnly).has_value());
  }
  for (LineId l = 0; l < 8; ++l) EXPECT_NE(c.find(l), nullptr);
}

TEST(Cache, RefillOfResidentLineKeepsDirtyMask) {
  Cache c(1024, 128);
  c.fill(5, LineState::kReadWrite);
  c.find(5)->dirty = 0xF0;
  auto victim = c.fill(5, LineState::kReadWrite);
  EXPECT_FALSE(victim.has_value());
  EXPECT_EQ(c.find(5)->dirty, 0xF0u);
  EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(Cache, InvalidateRemovesAndReturnsCopy) {
  Cache c(1024, 128);
  c.fill(7, LineState::kReadWrite);
  c.find(7)->dirty = 1;
  auto removed = c.invalidate(7);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->dirty, 1u);
  EXPECT_EQ(c.find(7), nullptr);
  EXPECT_EQ(c.stats().invalidations, 1u);
  EXPECT_FALSE(c.invalidate(7).has_value());  // second time: nothing there
}

TEST(Cache, VictimForPeeksWithoutEvicting) {
  Cache c(1024, 128);
  c.fill(5, LineState::kReadOnly);
  EXPECT_EQ(c.victim_for(13)->line, 5u);
  EXPECT_EQ(c.victim_for(5), nullptr);   // same line: no victim
  EXPECT_EQ(c.victim_for(14), nullptr);  // empty set: no victim
  EXPECT_NE(c.find(5), nullptr);         // nothing was displaced
}

TEST(Cache, ForEachValidVisitsAllResidents) {
  Cache c(1024, 128);
  c.fill(1, LineState::kReadOnly);
  c.fill(2, LineState::kReadWrite);
  unsigned count = 0;
  c.for_each_valid([&](CacheLine&) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST(Cache, StatsRatesAndTotals) {
  Cache c(1024, 128);
  c.stats().read_hits = 90;
  c.stats().read_misses = 5;
  c.stats().write_hits = 3;
  c.stats().write_misses = 1;
  c.stats().upgrade_misses = 1;
  EXPECT_EQ(c.stats().references(), 100u);
  EXPECT_EQ(c.stats().misses(), 7u);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.07);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(1000, 128), std::invalid_argument);
  EXPECT_THROW(Cache(128, 100), std::invalid_argument);
  EXPECT_THROW(Cache(64, 128), std::invalid_argument);
  // Geometry factory: non-pow-2 ways and ways exceeding the line count.
  EXPECT_THROW(CacheGeometry::make(1024, 128, 3), std::invalid_argument);
  EXPECT_THROW(CacheGeometry::make(1024, 128, 16), std::invalid_argument);
}

// ---- Replacement policies ---------------------------------------------------

// Drives the same conflict-heavy access sequence through a cache and
// records every victim line (in order).
std::vector<LineId> victim_sequence(Cache& c, unsigned accesses,
                                    std::uint64_t seq_seed) {
  sim::Rng rng(seq_seed);
  std::vector<LineId> victims;
  for (unsigned i = 0; i < accesses; ++i) {
    // One set (set 0 of 2 sets), many conflicting lines.
    const LineId line = rng.below(12) * c.num_sets();
    if (CacheLine* l = c.find_touch(line)) {
      (void)l;
      continue;
    }
    if (auto v = c.fill(line, LineState::kReadOnly)) victims.push_back(v->line);
  }
  return victims;
}

TEST(Replacement, RandomIsDeterministicPerSeed) {
  const auto geo = CacheGeometry::make(1024, 128, 4);  // 2 sets x 4 ways
  Cache a(geo, ReplacementKind::kRandom, /*seed=*/42);
  Cache b(geo, ReplacementKind::kRandom, /*seed=*/42);
  Cache other(geo, ReplacementKind::kRandom, /*seed=*/43);
  const auto va = victim_sequence(a, 400, 7);
  const auto vb = victim_sequence(b, 400, 7);
  const auto vo = victim_sequence(other, 400, 7);
  ASSERT_FALSE(va.empty());
  EXPECT_EQ(va, vb) << "same seed must give an identical victim sequence";
  EXPECT_NE(va, vo) << "different seeds should explore different victims";
}

TEST(Replacement, RandomVictimForPredictsFill) {
  // victim_for peeks the RNG without advancing it: the prediction must
  // match the victim the next fill actually evicts, every time.
  const auto geo = CacheGeometry::make(1024, 128, 4);
  Cache c(geo, ReplacementKind::kRandom, /*seed=*/9);
  sim::Rng rng(31);
  for (unsigned i = 0; i < 300; ++i) {
    const LineId line = rng.below(12) * c.num_sets();
    if (c.find(line) != nullptr) continue;
    const CacheLine* peek = c.victim_for(line);
    const auto predicted =
        peek != nullptr ? std::optional<LineId>(peek->line) : std::nullopt;
    const auto victim = c.fill(line, LineState::kReadOnly);
    const auto actual =
        victim ? std::optional<LineId>(victim->line) : std::nullopt;
    ASSERT_EQ(predicted, actual) << "at access " << i;
  }
}

TEST(Replacement, LruMatchesReferenceModel) {
  // Reference model: per set, a recency-ordered list of resident lines.
  const auto geo = CacheGeometry::make(2048, 128, 4);  // 4 sets x 4 ways
  Cache c(geo, ReplacementKind::kLru, /*seed=*/0);
  std::vector<std::vector<LineId>> model(c.num_sets());  // front = LRU
  sim::Rng rng(123);
  for (unsigned i = 0; i < 1000; ++i) {
    const LineId line = rng.below(64);
    auto& set = model[line % c.num_sets()];
    const auto it = std::find(set.begin(), set.end(), line);
    if (it != set.end()) {
      // Hit: model moves to MRU; cache touches recency.
      set.erase(it);
      set.push_back(line);
      ASSERT_NE(c.find_touch(line), nullptr);
      continue;
    }
    ASSERT_EQ(c.find_touch(line), nullptr);
    const auto victim = c.fill(line, LineState::kReadOnly);
    if (set.size() == geo.ways) {
      ASSERT_TRUE(victim.has_value());
      EXPECT_EQ(victim->line, set.front()) << "LRU victim mismatch at " << i;
      set.erase(set.begin());
    } else {
      EXPECT_FALSE(victim.has_value());
    }
    set.push_back(line);
  }
}

TEST(Replacement, FifoIgnoresRecencyTouches) {
  const auto geo = CacheGeometry::make(512, 128, 4);  // 1 set x 4 ways
  Cache c(geo, ReplacementKind::kFifo, /*seed=*/0);
  for (LineId l = 0; l < 4; ++l) c.fill(l, LineState::kReadOnly);
  // Touch the oldest line repeatedly; FIFO must still evict it first.
  for (int i = 0; i < 10; ++i) ASSERT_NE(c.find_touch(0), nullptr);
  auto victim = c.fill(100, LineState::kReadOnly);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 0u);
  // Under LRU the same history keeps line 0 (line 1 is evicted instead).
  Cache lru(geo, ReplacementKind::kLru, /*seed=*/0);
  for (LineId l = 0; l < 4; ++l) lru.fill(l, LineState::kReadOnly);
  for (int i = 0; i < 10; ++i) ASSERT_NE(lru.find_touch(0), nullptr);
  auto lru_victim = lru.fill(100, LineState::kReadOnly);
  ASSERT_TRUE(lru_victim.has_value());
  EXPECT_EQ(lru_victim->line, 1u);
}

TEST(Replacement, InvalidWaysFillBeforeAnyEviction) {
  const auto geo = CacheGeometry::make(512, 128, 4);
  for (auto kind : {ReplacementKind::kLru, ReplacementKind::kFifo,
                    ReplacementKind::kRandom}) {
    Cache c(geo, kind, /*seed=*/5);
    for (LineId l = 0; l < 4; ++l) {
      EXPECT_FALSE(c.fill(l, LineState::kReadOnly).has_value())
          << to_string(kind);
    }
    EXPECT_EQ(c.stats().evictions, 0u) << to_string(kind);
  }
}

class CacheGeometry
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(CacheGeometry, IndexingIsConsistent) {
  const auto [cache_bytes, line_bytes] = GetParam();
  Cache c(cache_bytes, line_bytes);
  const std::uint32_t sets = cache_bytes / line_bytes;
  EXPECT_EQ(c.num_sets(), sets);
  // A line and line+sets conflict; line and line+sets-1 do not (distinct
  // sets).
  c.fill(3, LineState::kReadOnly);
  EXPECT_NE(c.victim_for(3 + sets), nullptr);
  if (sets > 1) {
    EXPECT_EQ(c.victim_for(3 + sets - 1), nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometry,
    ::testing::Values(std::make_pair(128u * 1024u, 128u),   // paper default
                      std::make_pair(128u * 1024u, 256u),   // future machine
                      std::make_pair(4096u, 64u),           // test scale
                      std::make_pair(1024u, 128u),
                      std::make_pair(128u, 128u)));         // single set

}  // namespace
}  // namespace lrc::cache
