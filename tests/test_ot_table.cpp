#include "cache/ot_table.hpp"

#include <gtest/gtest.h>

namespace lrc::cache {
namespace {

TEST(OtTable, CreateAndFind) {
  OtTable ot;
  EXPECT_TRUE(ot.empty());
  bool created = false;
  OtEntry& e = ot.get_or_create(42, &created);
  EXPECT_TRUE(created);
  EXPECT_EQ(e.line, 42u);
  EXPECT_EQ(ot.find(42), &e);
  EXPECT_EQ(ot.find(43), nullptr);
}

TEST(OtTable, MergesRepeatedRequests) {
  OtTable ot;
  bool created = false;
  ot.get_or_create(42, &created);
  OtEntry& e2 = ot.get_or_create(42, &created);
  EXPECT_FALSE(created);
  e2.data_pending = true;
  EXPECT_TRUE(ot.find(42)->data_pending);
  EXPECT_EQ(ot.size(), 1u);
  EXPECT_EQ(ot.stats().allocated, 1u);
  EXPECT_EQ(ot.stats().merged, 1u);
}

TEST(OtTable, EraseEmptiesTable) {
  OtTable ot;
  ot.get_or_create(1, nullptr);
  ot.get_or_create(2, nullptr);
  ot.erase(1);
  EXPECT_EQ(ot.size(), 1u);
  ot.erase(2);
  EXPECT_TRUE(ot.empty());
}

TEST(OtTable, DoneReflectsPendingWork) {
  OtEntry e;
  EXPECT_TRUE(e.done());
  e.data_pending = true;
  EXPECT_FALSE(e.done());
  e.data_pending = false;
  e.acks_pending = 2;
  EXPECT_FALSE(e.done());
  e.acks_pending = 0;
  EXPECT_TRUE(e.done());
}

TEST(OtTable, ForEachVisitsAll) {
  OtTable ot;
  for (LineId l = 0; l < 5; ++l) ot.get_or_create(l, nullptr);
  unsigned n = 0;
  ot.for_each([&](OtEntry&) { ++n; });
  EXPECT_EQ(n, 5u);
}

}  // namespace
}  // namespace lrc::cache
