#include "cache/ot_table.hpp"

#include <gtest/gtest.h>

namespace lrc::cache {
namespace {

TEST(OtTable, CreateAndFind) {
  OtTable ot;
  EXPECT_TRUE(ot.empty());
  bool created = false;
  OtEntry& e = ot.get_or_create(42, &created);
  EXPECT_TRUE(created);
  EXPECT_EQ(e.line, 42u);
  EXPECT_EQ(ot.find(42), &e);
  EXPECT_EQ(ot.find(43), nullptr);
}

TEST(OtTable, MergesRepeatedRequests) {
  OtTable ot;
  bool created = false;
  ot.get_or_create(42, &created);
  OtEntry& e2 = ot.get_or_create(42, &created);
  EXPECT_FALSE(created);
  e2.data_pending = true;
  EXPECT_TRUE(ot.find(42)->data_pending);
  EXPECT_EQ(ot.size(), 1u);
  EXPECT_EQ(ot.stats().allocated, 1u);
  EXPECT_EQ(ot.stats().merged, 1u);
}

TEST(OtTable, EraseEmptiesTable) {
  OtTable ot;
  ot.get_or_create(1, nullptr);
  ot.get_or_create(2, nullptr);
  ot.erase(1);
  EXPECT_EQ(ot.size(), 1u);
  ot.erase(2);
  EXPECT_TRUE(ot.empty());
}

TEST(OtTable, DoneReflectsPendingWork) {
  OtEntry e;
  EXPECT_TRUE(e.done());
  e.data_pending = true;
  EXPECT_FALSE(e.done());
  e.data_pending = false;
  e.acks_pending = 2;
  EXPECT_FALSE(e.done());
  e.acks_pending = 0;
  EXPECT_TRUE(e.done());
}

TEST(OtTable, DrainAndRefillReusesSlots) {
  // The release-wait pattern: the table fills with in-flight transactions,
  // then drains completely. Once warm, repeated cycles must recycle slab
  // slots (no new allocations) and entry pointers must stay valid until
  // their erase.
  OtTable ot;
  constexpr LineId kLines = 24;
  for (LineId l = 0; l < kLines; ++l) ot.get_or_create(l, nullptr);
  const std::size_t high_water = ot.slots_allocated();
  for (LineId l = 0; l < kLines; ++l) ot.erase(l);
  ASSERT_TRUE(ot.empty());

  for (int release = 0; release < 100; ++release) {
    OtEntry* first = nullptr;
    for (LineId l = 0; l < kLines; ++l) {
      bool created = false;
      // Distinct lines each round: churn the index as real traffic does.
      OtEntry& e = ot.get_or_create(1000 + release * kLines + l, &created);
      EXPECT_TRUE(created);
      e.acks_pending = 1;
      if (l == 0) first = &e;
    }
    // Entry addresses are stable across the creations above.
    EXPECT_EQ(first->line, static_cast<LineId>(1000 + release * kLines));
    for (LineId l = 0; l < kLines; ++l) {
      OtEntry* e = ot.find(1000 + release * kLines + l);
      ASSERT_NE(e, nullptr);
      e->acks_pending = 0;
      EXPECT_TRUE(e->done());
      ot.erase(e->line);
    }
    EXPECT_TRUE(ot.empty());
    EXPECT_EQ(ot.slots_allocated(), high_water) << "round " << release;
  }
  EXPECT_EQ(ot.stats().allocated, kLines * 101u);
}

TEST(OtTable, ForEachVisitsAll) {
  OtTable ot;
  for (LineId l = 0; l < 5; ++l) ot.get_or_create(l, nullptr);
  unsigned n = 0;
  ot.for_each([&](OtEntry&) { ++n; });
  EXPECT_EQ(n, 5u);
}

}  // namespace
}  // namespace lrc::cache
