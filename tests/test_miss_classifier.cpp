#include "stats/miss_classifier.hpp"

#include <gtest/gtest.h>

namespace lrc::stats {
namespace {

// 2 processors, 8 words per line.
struct ClassifierFixture : ::testing::Test {
  MissClassifier c{2, 8};
};

TEST_F(ClassifierFixture, FirstAccessIsCold) {
  EXPECT_EQ(c.classify(0, 5, 0, false), MissClass::kCold);
  EXPECT_EQ(c.counts(0)[MissClass::kCold], 1u);
}

TEST_F(ClassifierFixture, UpgradeIsWriteMiss) {
  c.on_fill(0, 5);
  EXPECT_EQ(c.classify(0, 5, 0, true), MissClass::kWrite);
}

TEST_F(ClassifierFixture, EvictionWithNoForeignWritesIsEviction) {
  c.classify(0, 5, 0, false);
  c.on_fill(0, 5);
  c.on_copy_lost(0, 5, /*coherence=*/false);
  EXPECT_EQ(c.classify(0, 5, 0, false), MissClass::kEviction);
}

TEST_F(ClassifierFixture, ForeignWriteToMissedWordIsTrueSharing) {
  c.classify(0, 5, 0, false);
  c.on_fill(0, 5);
  c.on_write_committed(1, 5, 0x1);  // proc 1 writes word 0
  c.on_copy_lost(0, 5, /*coherence=*/true);
  EXPECT_EQ(c.classify(0, 5, 0, false), MissClass::kTrueSharing);
}

TEST_F(ClassifierFixture, ForeignWriteToOtherWordIsFalseSharing) {
  c.classify(0, 5, 0, false);
  c.on_fill(0, 5);
  c.on_write_committed(1, 5, 0x80);  // proc 1 writes word 7
  c.on_copy_lost(0, 5, /*coherence=*/true);
  EXPECT_EQ(c.classify(0, 5, 0, false), MissClass::kFalseSharing);
}

TEST_F(ClassifierFixture, EvictionFollowedByForeignWriteIsSharing) {
  // The copy died by replacement, but another processor wrote the word
  // before the re-reference: an infinite cache would have been invalidated
  // too, so this is a sharing miss, not an eviction miss.
  c.classify(0, 5, 0, false);
  c.on_fill(0, 5);
  c.on_copy_lost(0, 5, /*coherence=*/false);
  c.on_write_committed(1, 5, 0x1);
  EXPECT_EQ(c.classify(0, 5, 0, false), MissClass::kTrueSharing);
}

TEST_F(ClassifierFixture, OwnWritesDoNotCreateSharing) {
  c.classify(0, 5, 0, false);
  c.on_fill(0, 5);
  c.on_write_committed(0, 5, 0xFF);  // own writes
  c.on_copy_lost(0, 5, /*coherence=*/false);
  EXPECT_EQ(c.classify(0, 5, 0, false), MissClass::kEviction);
}

TEST_F(ClassifierFixture, ForeignWriteBeforeFillDoesNotCount) {
  c.on_write_committed(1, 5, 0x1);  // before proc 0 ever had the line
  c.classify(0, 5, 0, false);
  c.on_fill(0, 5);                  // fetched copy includes that write
  c.on_copy_lost(0, 5, /*coherence=*/false);
  EXPECT_EQ(c.classify(0, 5, 0, false), MissClass::kEviction);
}

TEST_F(ClassifierFixture, UselessInvalidationIsFalseSharing) {
  // Invalidated (e.g. by a lingering notice) but no foreign write actually
  // intervened: the notice was useless — charge false sharing.
  c.classify(0, 5, 0, false);
  c.on_fill(0, 5);
  c.on_copy_lost(0, 5, /*coherence=*/true);
  EXPECT_EQ(c.classify(0, 5, 0, false), MissClass::kFalseSharing);
}

TEST_F(ClassifierFixture, LazyInvalidationWindowStartsAtFill) {
  // LRC pattern: foreign write happens while we still cache the line
  // (stale), the invalidation applies later at an acquire. The foreign
  // write is inside the (fill, now) window, so the re-miss is sharing.
  c.classify(0, 5, 2, false);
  c.on_fill(0, 5);
  c.on_write_committed(1, 5, 0x4);  // word 2, while proc 0 still caches
  c.on_copy_lost(0, 5, /*coherence=*/true);  // applied at acquire, later
  EXPECT_EQ(c.classify(0, 5, 2, false), MissClass::kTrueSharing);
}

TEST_F(ClassifierFixture, AggregatesAcrossProcessors) {
  c.classify(0, 1, 0, false);
  c.classify(1, 2, 0, false);
  c.classify(1, 3, 0, true);
  const MissCounts total = c.aggregate();
  EXPECT_EQ(total[MissClass::kCold], 2u);
  EXPECT_EQ(total[MissClass::kWrite], 1u);
  EXPECT_EQ(total.total(), 3u);
}

TEST_F(ClassifierFixture, RefillResetsWindow) {
  c.classify(0, 5, 0, false);
  c.on_fill(0, 5);
  c.on_write_committed(1, 5, 0x1);
  c.on_copy_lost(0, 5, true);
  c.classify(0, 5, 0, false);  // true sharing; refetches
  c.on_fill(0, 5);
  c.on_copy_lost(0, 5, false);
  // No foreign writes since the second fill: eviction, not sharing.
  EXPECT_EQ(c.classify(0, 5, 0, false), MissClass::kEviction);
}

}  // namespace
}  // namespace lrc::stats
