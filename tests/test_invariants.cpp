// Property-based cross-protocol tests: randomized race-free programs must
// produce identical memory contents under every protocol, and the
// directory must agree with the caches once the machine drains.
#include <gtest/gtest.h>

#include <vector>

#include "core/machine.hpp"
#include "proto/base.hpp"
#include "sim/rng.hpp"

namespace lrc::core {
namespace {

constexpr ProtocolKind kAll[] = {ProtocolKind::kSC, ProtocolKind::kERC,
                                 ProtocolKind::kLRC, ProtocolKind::kLRCExt};

struct WorkloadSpec {
  unsigned nprocs;
  unsigned ops_per_proc;
  unsigned barrier_every;  // all processors barrier after this many ops
  std::uint64_t seed;
};

// A race-free random program: each processor writes only its own slice,
// reads anywhere, and increments lock-protected counters. Returns a
// checksum of the final shared memory.
std::uint64_t run_random_program(ProtocolKind kind, const WorkloadSpec& spec,
                                 Machine** out = nullptr,
                                 const cache::CacheConfig* cache_cfg = nullptr) {
  static std::vector<std::unique_ptr<Machine>> keep_alive;
  auto params = SystemParams::test_scale(spec.nprocs);
  if (cache_cfg != nullptr) params.cache = *cache_cfg;
  auto m = std::make_unique<Machine>(params, kind);
  constexpr unsigned kSlice = 64;  // doubles per processor
  auto data = m->alloc<double>(spec.nprocs * kSlice, "slices");
  auto counters = m->alloc<std::int64_t>(8, "counters");

  m->run([&](Cpu& cpu) {
    sim::Rng rng(spec.seed * 977 + cpu.id());
    const unsigned base = cpu.id() * kSlice;
    for (unsigned op = 0; op < spec.ops_per_proc; ++op) {
      switch (rng.below(4)) {
        case 0: {  // private write
          const unsigned i = base + static_cast<unsigned>(rng.below(kSlice));
          data.put(cpu, i, static_cast<double>(op * 31 + cpu.id()));
          break;
        }
        case 1: {  // shared read (value unused; races impossible: reads only)
          const unsigned i =
              static_cast<unsigned>(rng.below(spec.nprocs * kSlice));
          (void)data.get(cpu, i);
          break;
        }
        case 2: {  // lock-protected shared counter
          const SyncId lk = static_cast<SyncId>(rng.below(8));
          cpu.lock(100 + lk);
          counters.put(cpu, lk, counters.get(cpu, lk) + 1);
          cpu.unlock(100 + lk);
          break;
        }
        case 3:
          cpu.compute(1 + rng.below(20));
          break;
      }
      if ((op + 1) % spec.barrier_every == 0) cpu.barrier(0);
    }
  });

  // FNV-style checksum over all allocated shared memory.
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned i = 0; i < spec.nprocs * kSlice; ++i) {
    const auto bits = m->peek<std::uint64_t>(data.addr(i));
    h = (h ^ bits) * 1099511628211ULL;
  }
  for (unsigned c = 0; c < 8; ++c) {
    h = (h ^ m->peek<std::uint64_t>(counters.addr(c))) * 1099511628211ULL;
  }
  if (out != nullptr) {
    *out = m.get();
    keep_alive.push_back(std::move(m));
  }
  return h;
}

// Verifies directory/cache agreement after the machine has drained.
void check_directory_consistency(Machine& m) {
  auto& base = dynamic_cast<proto::ProtocolBase&>(m.protocol());
  const bool lrc_family = m.protocol_kind() == ProtocolKind::kLRC ||
                          m.protocol_kind() == ProtocolKind::kLRCExt;

  // Every cached line must be a registered sharer.
  for (NodeId p = 0; p < m.nprocs(); ++p) {
    m.cpu(p).dcache().for_each_valid([&](cache::CacheLine& cl) {
      auto* e = base.directory().find(cl.line);
      ASSERT_NE(e, nullptr) << "cached line missing from directory";
      EXPECT_TRUE(e->is_sharer(p))
          << "proc " << p << " caches line " << cl.line
          << " but is not a sharer";
      if (!lrc_family && cl.state == cache::LineState::kReadWrite) {
        EXPECT_EQ(e->state, proto::DirState::kDirty);
        EXPECT_EQ(e->owner(), p);
      }
    });
  }

  // No transient state left anywhere.
  base.directory().for_each([&](LineId line, proto::DirEntry& e) {
    EXPECT_FALSE(e.busy) << "line " << line << " left busy";
    EXPECT_EQ(e.pending_acks, 0u) << "line " << line << " awaiting acks";
    EXPECT_TRUE(e.deferred.empty()) << "line " << line << " has deferred msgs";
    EXPECT_TRUE(e.collections.empty()) << "line " << line
                                       << " has open notice collections";
    EXPECT_EQ(e.notices_outstanding, 0u) << "line " << line;

    if (lrc_family) {
      // LRC tracks membership exactly (evict/inval notifications).
      for (NodeId p = 0; p < m.nprocs(); ++p) {
        const bool cached = m.cpu(p).dcache().find(line) != nullptr;
        EXPECT_EQ(cached, e.is_sharer(p))
            << "LRC sharer-set mismatch at line " << line << " proc " << p;
      }
      // Mask/state agreement (the paper's reversion rule).
      proto::DirEntry copy = e;
      copy.recompute_lrc_state();
      EXPECT_EQ(copy.state, e.state) << "stale state at line " << line;
    }
  });
}

class RandomProgram : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgram, AllProtocolsComputeTheSameResult) {
  WorkloadSpec spec{8, 150, 50, GetParam()};
  const std::uint64_t expected = run_random_program(ProtocolKind::kSC, spec);
  for (auto kind : kAll) {
    EXPECT_EQ(run_random_program(kind, spec), expected)
        << "protocol " << to_string(kind) << " diverged";
  }
}

TEST_P(RandomProgram, DirectoryConsistentAfterDrain) {
  WorkloadSpec spec{8, 120, 40, GetParam()};
  for (auto kind : kAll) {
    Machine* m = nullptr;
    run_random_program(kind, spec, &m);
    ASSERT_NE(m, nullptr);
    check_directory_consistency(*m);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// A race-free program's final memory is independent of the cache geometry:
// every protocol must compute the single-L1 result under 2-level inclusive
// and exclusive private stacks too, and the directory must still agree with
// the (hierarchy-wide) cached copies once drained.
TEST_P(RandomProgram, HierarchyConfigsComputeTheSameResult) {
  WorkloadSpec spec{8, 120, 40, GetParam()};
  const std::uint64_t expected = run_random_program(ProtocolKind::kSC, spec);
  const cache::CacheConfig configs[] = {
      cache::CacheConfig::with_l2(16 * 1024, 4,
                                  cache::InclusionPolicy::kInclusive),
      cache::CacheConfig::with_l2(16 * 1024, 4,
                                  cache::InclusionPolicy::kExclusive),
  };
  for (const auto& cfg : configs) {
    for (auto kind : kAll) {
      Machine* m = nullptr;
      EXPECT_EQ(run_random_program(kind, spec, &m, &cfg), expected)
          << "protocol " << to_string(kind) << " diverged under a "
          << (cfg.inclusion == cache::InclusionPolicy::kInclusive
                  ? "2-level inclusive"
                  : "2-level exclusive")
          << " hierarchy";
      ASSERT_NE(m, nullptr);
      check_directory_consistency(*m);
    }
  }
}

TEST(Invariants, BreakdownAlwaysSumsToLocalTime) {
  for (auto kind : kAll) {
    WorkloadSpec spec{4, 200, 67, 99};
    Machine* m = nullptr;
    run_random_program(kind, spec, &m);
    ASSERT_NE(m, nullptr);
    for (NodeId p = 0; p < m->nprocs(); ++p) {
      EXPECT_EQ(m->cpu(p).breakdown().total(), m->cpu(p).now())
          << to_string(kind) << " cpu " << p;
    }
  }
}

TEST(Invariants, LockedCountersAreExact) {
  // Heavier lock contention: all processors hammer one counter.
  for (auto kind : kAll) {
    Machine m(SystemParams::test_scale(8), kind);
    auto counter = m.alloc<std::int64_t>(1, "c");
    m.run([&](Cpu& cpu) {
      for (int i = 0; i < 25; ++i) {
        cpu.lock(1);
        counter.put(cpu, 0, counter.get(cpu, 0) + 1);
        cpu.unlock(1);
      }
    });
    EXPECT_EQ(m.peek<std::int64_t>(counter.addr(0)), 8 * 25)
        << to_string(kind);
  }
}

TEST(Invariants, ProducerConsumerThroughLocks) {
  // Classic release/acquire visibility: consumer must observe every value
  // the producer published before releasing the lock.
  for (auto kind : kAll) {
    Machine m(SystemParams::test_scale(2), kind);
    auto buf = m.alloc<double>(64, "buf");
    auto ready = m.alloc<std::int32_t>(1, "ready");
    bool consumer_ok = true;
    m.run([&](Cpu& cpu) {
      if (cpu.id() == 0) {
        for (unsigned i = 0; i < 64; ++i) buf.put(cpu, i, 1.0 + i);
        cpu.lock(1);
        ready.put(cpu, 0, 1);
        cpu.unlock(1);
      } else {
        // Poll under the lock (acquire gives us fresh data each time).
        while (true) {
          cpu.lock(1);
          const bool is_ready = ready.get(cpu, 0) != 0;
          cpu.unlock(1);
          if (is_ready) break;
          cpu.compute(200);
        }
        for (unsigned i = 0; i < 64; ++i) {
          consumer_ok = consumer_ok && buf.get(cpu, i) == 1.0 + i;
        }
      }
    });
    EXPECT_TRUE(consumer_ok) << to_string(kind);
  }
}

}  // namespace
}  // namespace lrc::core
