// Golden timing regressions: exact cycle counts for fixed micro-scenarios.
// The simulator is bit-deterministic, so any change to these numbers means
// the timing model changed — which must be a deliberate, reviewed decision
// (update the constants below and the EXPERIMENTS.md snapshot together).
//
// Unlike the analytical tests in test_machine.cpp (272-cycle identity
// etc.), these cover composite paths: protocol handshakes, lock transfer,
// barrier episodes.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace lrc::core {
namespace {

/// Two processors increment a shared counter through one lock, 10 times
/// each, on the paper machine. Exercises lock grant/transfer, critical-
/// section misses, release drains.
Cycle pingpong_time(ProtocolKind kind) {
  Machine m(SystemParams::paper_default(2), kind);
  auto c = m.alloc<std::int64_t>(1, "c");
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 10; ++i) {
      cpu.lock(0);
      c.put(cpu, 0, c.get(cpu, 0) + 1);
      cpu.unlock(0);
    }
  });
  return m.report().execution_time;
}

TEST(Golden, LockPingPongCycleCounts) {
  // Relative ordering is the load-bearing assertion; exact values pin the
  // timing model. A pure lock ping-pong has no false sharing for LRC to
  // win on, but its releases still pay write-ack and write-through drains
  // — the paper's "increased synchronization overhead" in isolation.
  const Cycle sc = pingpong_time(ProtocolKind::kSC);
  const Cycle erc = pingpong_time(ProtocolKind::kERC);
  const Cycle lrc = pingpong_time(ProtocolKind::kLRC);
  const Cycle ext = pingpong_time(ProtocolKind::kLRCExt);
  EXPECT_EQ(sc, 5235u);
  EXPECT_EQ(erc, 5215u);
  EXPECT_EQ(lrc, 5775u);
  EXPECT_EQ(ext, 5795u);
  EXPECT_LE(erc, sc);
  EXPECT_GT(lrc, erc);  // release drains on the critical path
  EXPECT_GE(ext, lrc);  // and lazier is worse still
}

/// Eight processors, one barrier, uneven arrival.
Cycle barrier_time(ProtocolKind kind) {
  Machine m(SystemParams::paper_default(8), kind);
  m.run([&](Cpu& cpu) {
    cpu.compute(100 * (cpu.id() + 1));
    cpu.barrier(0);
  });
  return m.report().execution_time;
}

TEST(Golden, BarrierEpisodeCycleCounts) {
  // Pure synchronization: all four protocols share the sync service, so
  // the times must be identical — any divergence means a protocol sneaks
  // extra work into an empty release/acquire.
  const Cycle sc = barrier_time(ProtocolKind::kSC);
  EXPECT_EQ(barrier_time(ProtocolKind::kERC), sc);
  EXPECT_EQ(barrier_time(ProtocolKind::kLRC), sc);
  EXPECT_EQ(barrier_time(ProtocolKind::kLRCExt), sc);
  EXPECT_GT(sc, 800u);   // slowest arrival is at 800 cycles
  EXPECT_LT(sc, 1200u);  // barrier overhead is small two-hop traffic
}

/// Producer writes a line; consumer reads it after a lock hand-off.
Cycle handoff_time(ProtocolKind kind) {
  Machine m(SystemParams::paper_default(4), kind);
  auto buf = m.alloc<double>(16, "buf");
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      cpu.lock(1);
      for (unsigned i = 0; i < 16; ++i) buf.put(cpu, i, 1.0 + i);
      cpu.unlock(1);
    } else if (cpu.id() == 1) {
      cpu.compute(5000);  // arrive after the producer is done
      cpu.lock(1);
      double s = 0;
      for (unsigned i = 0; i < 16; ++i) s += buf.get(cpu, i);
      buf.put(cpu, 0, s);
      cpu.unlock(1);
    }
  });
  return m.report().execution_time;
}

TEST(Golden, ProducerConsumerHandoffCycleCounts) {
  EXPECT_EQ(handoff_time(ProtocolKind::kSC), 5253u);
  EXPECT_EQ(handoff_time(ProtocolKind::kERC), 5252u);
  EXPECT_EQ(handoff_time(ProtocolKind::kLRC), 5298u);
  EXPECT_EQ(handoff_time(ProtocolKind::kLRCExt), 5299u);
}

}  // namespace
}  // namespace lrc::core
