// Tests for the consistency fence (paper §4.2) and the acquire-overlap
// ablation knob.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "apps/app.hpp"
#include "proto/lrc.hpp"

namespace lrc::core {
namespace {

constexpr Cycle kGap = 50'000;

TEST(Fence, AppliesBufferedInvalidationsUnderLrc) {
  Machine m(SystemParams::paper_default(8), ProtocolKind::kLRC);
  auto arr = m.alloc<double>(64, "data");
  const LineId line = m.amap().line_of(arr.addr(0));
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)arr.get(cpu, 0);
      cpu.compute(3 * kGap);
      // The stale copy is still cached; a fence must kill it without any
      // lock traffic.
      EXPECT_NE(cpu.dcache().find(line), nullptr);
      cpu.fence();
      EXPECT_EQ(cpu.dcache().find(line), nullptr);
      EXPECT_DOUBLE_EQ(arr.get(cpu, 0), 1.0);  // refetch sees fresh data
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      arr.put(cpu, 0, 1.0);
      cpu.lock(1);
      cpu.unlock(1);  // flush write-through so memory is current
    }
  });
  // The refetch of the still-Weak line re-buffers a notice (correct); any
  // pending entry must refer to a line actually cached.
  auto& lrc = dynamic_cast<proto::Lrc&>(m.protocol());
  for (LineId l : lrc.pending_invals(1)) {
    EXPECT_NE(m.cpu(1).dcache().find(l), nullptr);
  }
  EXPECT_EQ(m.lock_acquires(), 1u);  // the fence itself acquired nothing
}

TEST(Fence, IsFreeUnderEagerProtocols) {
  for (auto kind : {ProtocolKind::kSC, ProtocolKind::kERC}) {
    Machine m(SystemParams::paper_default(4), kind);
    Cycle elapsed = 0;
    m.run([&](Cpu& cpu) {
      if (cpu.id() != 0) return;
      const Cycle before = cpu.now();
      cpu.fence();
      elapsed = cpu.now() - before;
    });
    EXPECT_EQ(elapsed, 0u) << to_string(kind);
  }
}

TEST(Fence, EmptyPendingSetCostsNothing) {
  Machine m(SystemParams::paper_default(4), ProtocolKind::kLRC);
  Cycle elapsed = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    const Cycle before = cpu.now();
    cpu.fence();
    elapsed = cpu.now() - before;
  });
  EXPECT_EQ(elapsed, 0u);
}

TEST(Fence, ChargesNoticeProcessingTime) {
  Machine m(SystemParams::paper_default(8), ProtocolKind::kLRC);
  auto arr = m.alloc<double>(1024, "data");
  Cycle elapsed = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      for (unsigned i = 0; i < 8; ++i) (void)arr.get(cpu, i * 16);
      cpu.compute(3 * kGap);
      const Cycle before = cpu.now();
      cpu.fence();  // eight buffered notices to apply
      elapsed = cpu.now() - before;
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      for (unsigned i = 0; i < 8; ++i) arr.put(cpu, i * 16, 1.0);
    }
  });
  // At least 8 * write_notice_cost cycles of invalidation processing.
  EXPECT_GE(elapsed, 8u * m.params().write_notice_cost);
}

TEST(Fence, RacyAppsAcceptFencePeriods) {
  const auto* info = apps::find_app("mp3d");
  ASSERT_NE(info, nullptr);
  Machine m(SystemParams::test_scale(8), ProtocolKind::kLRC);
  apps::AppConfig cfg;
  cfg.n = info->test_n;
  cfg.steps = info->test_steps;
  cfg.fence_every = 8;
  const auto res = info->run(m, cfg);
  EXPECT_TRUE(res.valid) << res.detail;
}

TEST(AcquireOverlap, DisablingItStillCorrect) {
  auto params = SystemParams::test_scale(8);
  params.lrc_overlap_acquire = false;
  Machine m(params, ProtocolKind::kLRC);
  auto counter = m.alloc<std::int64_t>(1, "c");
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 10; ++i) {
      cpu.lock(1);
      counter.put(cpu, 0, counter.get(cpu, 0) + 1);
      cpu.unlock(1);
    }
  });
  EXPECT_EQ(m.peek<std::int64_t>(counter.addr(0)), 80);
}

}  // namespace
}  // namespace lrc::core
