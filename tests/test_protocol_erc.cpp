// Directed scenario tests for DASH-like eager release consistency.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "proto/msi.hpp"

namespace lrc::core {
namespace {

constexpr Cycle kGap = 50'000;

struct ErcFixture : ::testing::Test {
  ErcFixture() : m(SystemParams::paper_default(8), ProtocolKind::kERC) {
    arr = m.alloc<double>(1024, "data");
  }
  proto::Directory& dir() {
    return dynamic_cast<proto::ProtocolBase&>(m.protocol()).directory();
  }
  LineId line_of(std::size_t i) { return m.amap().line_of(arr.addr(i)); }

  Machine m;
  SharedArray<double> arr;
};

TEST_F(ErcFixture, WriteMissDoesNotStallTheProcessor) {
  Cycle write_elapsed = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    const Cycle before = cpu.now();
    arr.put(cpu, 512, 1.0);  // remote line, definitely a miss
    write_elapsed = cpu.now() - before;
  });
  // The write retires into the buffer: one issue cycle, no round trip.
  EXPECT_LE(write_elapsed, 2u);
  EXPECT_EQ(m.report().cache.write_misses, 1u);
}

TEST_F(ErcFixture, ReleaseStallsUntilWritesPerform) {
  Cycle unlock_elapsed = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    cpu.lock(1);
    arr.put(cpu, 512, 1.0);
    const Cycle before = cpu.now();
    cpu.unlock(1);
    unlock_elapsed = cpu.now() - before;
  });
  // The release waited for the outstanding write's round trip.
  EXPECT_GT(unlock_elapsed, 100u);
  EXPECT_GT(m.cpu(0).breakdown()[stats::StallKind::kSync], 100u);
}

TEST_F(ErcFixture, WritesToSameLineCoalesceInTheBuffer) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    arr.put(cpu, 0, 1.0);
    arr.put(cpu, 1, 2.0);  // same cache line, transaction still in flight
    arr.put(cpu, 2, 3.0);
  });
  EXPECT_EQ(m.report().cache.write_misses, 1u);
  EXPECT_GE(m.cpu(0).wb().stats().coalesced, 0u);  // merged while pending
  // Only one exclusive fetch went out.
  EXPECT_EQ(m.report().nic.per_kind[static_cast<std::size_t>(
                mesh::MsgKind::kReadExReq)],
            1u);
}

TEST_F(ErcFixture, ReadsBypassBufferedWrites) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    arr.put(cpu, 512, 7.5);
    // Immediately read back: served from the write buffer, no extra miss.
    EXPECT_DOUBLE_EQ(arr.get(cpu, 512), 7.5);
  });
  EXPECT_EQ(m.report().cache.read_misses, 0u);
}

TEST_F(ErcFixture, BufferFullStallsTheFifthWrite) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    // Five distinct remote lines: the buffer holds four transactions.
    for (std::size_t i = 0; i < 5; ++i) {
      arr.put(cpu, 16 * i, 1.0);
    }
  });
  EXPECT_GT(m.cpu(0).breakdown()[stats::StallKind::kWrite], 0u);
  EXPECT_GE(m.cpu(0).wb().stats().full_stalls, 1u);
}

TEST_F(ErcFixture, InvalidationsAreEager) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)arr.get(cpu, 0);
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      arr.put(cpu, 0, 1.0);
      cpu.compute(kGap);  // give the invalidation time to land
    }
  });
  // Reader's copy is gone even though it never synchronized — eager RC
  // invalidates at write time (contrast with the LRC test).
  EXPECT_EQ(m.cpu(1).dcache().find(line_of(0)), nullptr);
}

TEST_F(ErcFixture, UpgradeRetiresOnlyAfterAcksCollected) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() < 4 && cpu.id() != 0) {
      (void)arr.get(cpu, 0);  // three readers
    } else if (cpu.id() == 0) {
      (void)arr.get(cpu, 0);
      cpu.compute(kGap);
      cpu.lock(1);
      arr.put(cpu, 0, 1.0);
      cpu.unlock(1);  // waits for all invalidation acks
    }
  });
  const auto& kinds = m.report().nic.per_kind;
  EXPECT_EQ(kinds[static_cast<std::size_t>(mesh::MsgKind::kInval)], 3u);
  EXPECT_EQ(kinds[static_cast<std::size_t>(mesh::MsgKind::kInvalAck)], 3u);
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kDirty);
  EXPECT_EQ(e->owner(), 0u);
}

TEST_F(ErcFixture, NoWriteThroughTraffic) {
  // ERC uses a write-back cache: no WriteThrough messages ever.
  m.run([&](Cpu& cpu) {
    for (std::size_t i = cpu.id(); i < 512; i += cpu.nprocs()) {
      arr.put(cpu, i, 1.0);
    }
    cpu.barrier(0);
  });
  const auto& kinds = m.report().nic.per_kind;
  EXPECT_EQ(kinds[static_cast<std::size_t>(mesh::MsgKind::kWriteThrough)], 0u);
  EXPECT_EQ(kinds[static_cast<std::size_t>(mesh::MsgKind::kWriteReq)], 0u);
  EXPECT_EQ(kinds[static_cast<std::size_t>(mesh::MsgKind::kWriteNotice)], 0u);
}

TEST_F(ErcFixture, SilentCleanEvictionLeavesStaleSharer) {
  const std::uint32_t sets = m.params().cache_bytes / m.params().line_bytes;
  const std::size_t stride_elems =
      static_cast<std::size_t>(sets) * m.params().line_bytes / sizeof(double);
  auto big = m.alloc<double>(stride_elems * 2 + 16, "big");
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    (void)big.get(cpu, 0);              // read-only copy
    (void)big.get(cpu, stride_elems);   // conflict-evicts it, silently
  });
  auto* e = dir().find(m.amap().line_of(big.addr(0)));
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->is_sharer(0));  // directory was never told
  EXPECT_EQ(m.cpu(0).dcache().find(m.amap().line_of(big.addr(0))), nullptr);
}

}  // namespace
}  // namespace lrc::core
