// Unit tests for the open-addressed hash containers and small-buffer
// sequences that back the memory-system hot path (util/flat_hash.hpp,
// util/small_vec.hpp). These structures replace std::unordered_map and
// std::vector in the directory and OT table, so their probe / erase /
// overflow corner cases are exercised directly here rather than only
// through protocol traffic.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/flat_hash.hpp"
#include "util/small_vec.hpp"

namespace lrc::util {
namespace {

// Mirror of FlatMap's Fibonacci hash, for crafting colliding keys.
std::size_t home_index(std::uint64_t key, std::size_t capacity) {
  const unsigned shift = 64 - std::countr_zero(capacity);
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift);
}

TEST(FlatMap, GrowthPreservesAllEntries) {
  FlatMap<std::uint64_t> m;
  constexpr std::uint64_t kN = 5000;  // forces many doublings from cap 16
  for (std::uint64_t k = 0; k < kN; ++k) {
    bool created = false;
    m.get_or_create(k, &created) = k * 3 + 1;
    EXPECT_TRUE(created);
  }
  EXPECT_EQ(m.size(), kN);
  EXPECT_TRUE(std::has_single_bit(m.capacity()));
  // Load factor stays <= 7/8 after growth.
  EXPECT_LE(m.size(), m.capacity() - m.capacity() / 8);
  for (std::uint64_t k = 0; k < kN; ++k) {
    auto* v = m.find(k);
    ASSERT_NE(v, nullptr) << "lost key " << k;
    EXPECT_EQ(*v, k * 3 + 1);
  }
  EXPECT_EQ(m.find(kN), nullptr);
}

TEST(FlatMap, GetOrCreateReportsExisting) {
  FlatMap<int> m;
  bool created = false;
  m.get_or_create(7, &created) = 42;
  EXPECT_TRUE(created);
  EXPECT_EQ(m.get_or_create(7, &created), 42);
  EXPECT_FALSE(created);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, BackwardShiftEraseKeepsCollidingChainReachable) {
  FlatMap<std::uint64_t> m;
  m.get_or_create(0) = 0;  // materialize the table at initial capacity
  const std::size_t cap = m.capacity();
  const std::size_t target = home_index(0, cap);

  // Collect keys whose home slot collides with key 0's.
  std::vector<std::uint64_t> chain{0};
  for (std::uint64_t k = 1; chain.size() < 5; ++k) {
    if (home_index(k, cap) == target) chain.push_back(k);
  }
  for (std::uint64_t k : chain) m.get_or_create(k) = k + 100;
  ASSERT_EQ(m.capacity(), cap) << "collision chain must fit without growth";

  // Erase the middle of the probe run; later members must be shifted back
  // into the hole, not stranded behind an empty slot.
  EXPECT_TRUE(m.erase(chain[2]));
  EXPECT_EQ(m.find(chain[2]), nullptr);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i == 2) continue;
    auto* v = m.find(chain[i]);
    ASSERT_NE(v, nullptr) << "chain member " << i << " lost after erase";
    EXPECT_EQ(*v, chain[i] + 100);
  }
  // Erase the head of the run too.
  EXPECT_TRUE(m.erase(chain[0]));
  EXPECT_NE(m.find(chain[1]), nullptr);
  EXPECT_NE(m.find(chain[4]), nullptr);
  EXPECT_FALSE(m.erase(chain[0]));  // second erase finds nothing
}

TEST(FlatMap, DrainChurnDoesNotGrowTable) {
  FlatMap<int> m;
  // Warm up: 6 live keys; peak occupancy per round below is 12, under the
  // 7/8 grow threshold (14) of the initial capacity 16.
  for (std::uint64_t k = 0; k < 6; ++k) m.get_or_create(k);
  const std::size_t cap = m.capacity();
  // The OT-table pattern: fill and fully drain, thousands of times. With
  // tombstones this degrades; with backward-shift the table stays pristine.
  for (int round = 0; round < 5000; ++round) {
    for (std::uint64_t k = 0; k < 6; ++k) {
      m.get_or_create(1000 + k * 97 + static_cast<std::uint64_t>(round));
    }
    for (std::uint64_t k = 0; k < 6; ++k) {
      EXPECT_TRUE(m.erase(1000 + k * 97 + static_cast<std::uint64_t>(round)));
    }
  }
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.size(), 6u);
}

TEST(FlatMap, MatchesUnorderedMapUnderRandomOps) {
  FlatMap<std::uint32_t> m;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  std::uint64_t rng = 0x2545f4914f6cdd1dull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t key = next() % 512;  // small key space -> heavy churn
    switch (next() % 3) {
      case 0: {  // insert / update
        const auto val = static_cast<std::uint32_t>(next());
        m.get_or_create(key) = val;
        ref[key] = val;
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(m.erase(key), ref.erase(key) == 1);
        break;
      }
      default: {  // lookup
        auto* v = m.find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          EXPECT_EQ(*v, it->second);
        }
      }
    }
    EXPECT_EQ(m.size(), ref.size());
  }
  // Full-content sweep at the end.
  std::size_t visited = 0;
  m.for_each([&](std::uint64_t k, std::uint32_t v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(StableSlabs, ReusesReleasedSlotsAndKeepsAddressesStable) {
  StableSlabs<int> slabs;
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 200; ++i) {  // spans multiple 64-entry chunks
    const std::uint32_t s = slabs.acquire();
    slabs[s] = i;
    slots.push_back(s);
  }
  EXPECT_EQ(slabs.allocated(), 200u);
  int* p0 = &slabs[slots[0]];
  for (int i = 0; i < 200; ++i) EXPECT_EQ(slabs[slots[i]], i);

  // Release everything and refill: allocated() (the high-water mark) must
  // not move, and previously handed-out addresses stay valid.
  for (std::uint32_t s : slots) slabs.release(s);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::uint32_t> again;
    for (int i = 0; i < 200; ++i) again.push_back(slabs.acquire());
    EXPECT_EQ(slabs.allocated(), 200u);
    for (std::uint32_t s : again) slabs.release(s);
  }
  EXPECT_EQ(p0, &slabs[slots[0]]);  // chunks are never reallocated
}

TEST(StableSlabs, AcquireResetsRecycledSlot) {
  StableSlabs<int> slabs;
  const std::uint32_t s = slabs.acquire();
  slabs[s] = 99;
  slabs.release(s);
  const std::uint32_t t = slabs.acquire();
  EXPECT_EQ(t, s);
  EXPECT_EQ(slabs[t], 0);
}

using Vec = SmallVec<int, 2>;
using Pool = OverflowPool<int>;

std::vector<int> contents(const Vec& v, const Pool& pool) {
  std::vector<int> out;
  v.for_each(pool, [&](int x) { out.push_back(x); });
  return out;
}

TEST(SmallVec, InlineThenSpillsToPoolInOrder) {
  Pool pool;
  Vec v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 13; ++i) v.push_back(i, pool);  // 2 inline + 11 pooled
  EXPECT_EQ(v.size(), 13u);
  // 11 overflow items at 4 per node -> 3 nodes.
  EXPECT_EQ(pool.nodes_created(), 3u);
  const std::vector<int> expect{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_EQ(contents(v, pool), expect);
}

TEST(SmallVec, ClearReturnsChainForReuse) {
  Pool pool;
  Vec a;
  for (int i = 0; i < 10; ++i) a.push_back(i, pool);
  const std::size_t high_water = pool.nodes_created();
  a.clear(pool);
  EXPECT_TRUE(a.empty());
  // A second sequence of the same shape must reuse the freed nodes.
  Vec b;
  for (int i = 0; i < 10; ++i) b.push_back(100 + i, pool);
  EXPECT_EQ(pool.nodes_created(), high_water);
  EXPECT_EQ(contents(b, pool)[9], 109);
  b.clear(pool);
}

TEST(SmallVec, EraseIfCompactsAcrossInlineAndOverflow) {
  Pool pool;
  Vec v;
  for (int i = 0; i < 12; ++i) v.push_back(i, pool);
  // Drop the evens; survivors keep their relative order and migrate from
  // overflow slots back toward the inline buffer.
  v.erase_if(pool, [](int& x) { return x % 2 == 0; });
  EXPECT_EQ(contents(v, pool), (std::vector<int>{1, 3, 5, 7, 9, 11}));
  // Drop all but one: the overflow chain must be fully released.
  const std::size_t nodes = pool.nodes_created();
  v.erase_if(pool, [](int& x) { return x != 3; });
  EXPECT_EQ(contents(v, pool), (std::vector<int>{3}));
  Vec w;
  for (int i = 0; i < 12; ++i) w.push_back(i, pool);  // reuses freed nodes
  EXPECT_EQ(pool.nodes_created(), nodes);
  w.clear(pool);
}

TEST(SmallVec, EraseIfMayMutateSurvivors) {
  Pool pool;
  Vec v;
  for (int i = 0; i < 6; ++i) v.push_back(i, pool);
  v.erase_if(pool, [](int& x) {
    x *= 10;
    return x >= 40;
  });
  EXPECT_EQ(contents(v, pool), (std::vector<int>{0, 10, 20, 30}));
  v.clear(pool);
}

}  // namespace
}  // namespace lrc::util
