// Machine-level timing tests, anchored to the paper's §3 worked example:
// an uncontended cache fill over 10 mesh hops costs
//   request 30 + memory (20 + 128/2) + reply (30 + 128/2) + bus fill 128/2
//   = 30 + 84 + 94 + 64 = 272 cycles.
#include "core/machine.hpp"

#include <gtest/gtest.h>

#include "proto/base.hpp"

namespace lrc::core {
namespace {

constexpr Addr kRemoteAddr = 59 * 4096;  // page 59 -> node 59: 10 hops from 0

class ProtocolCase : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ProtocolCase, UncontendedRemoteReadCosts272Cycles) {
  Machine m(SystemParams::paper_default(64), GetParam());
  ASSERT_EQ(m.topo().hops(0, 59), 10u);
  m.alloc_bytes(60 * 4096, "span");

  Cycle read_done = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    cpu.read<double>(kRemoteAddr);
    read_done = cpu.now();
  });
  // 272 for the fill + 1 cycle to issue the reference.
  EXPECT_EQ(read_done, 273u);
}

TEST_P(ProtocolCase, CacheHitCostsOneCycle) {
  Machine m(SystemParams::paper_default(64), GetParam());
  m.alloc_bytes(60 * 4096, "span");
  Cycle first = 0;
  Cycle second = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    cpu.read<double>(kRemoteAddr);
    first = cpu.now();
    cpu.read<double>(kRemoteAddr + 8);  // same line
    second = cpu.now();
  });
  EXPECT_EQ(second - first, 1u);
}

TEST_P(ProtocolCase, LocalReadSkipsTheMesh) {
  Machine m(SystemParams::paper_default(64), GetParam());
  m.alloc_bytes(60 * 4096, "span");
  Cycle done = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    cpu.read<double>(0);  // page 0 homed at node 0
    done = cpu.now();
  });
  // memory 84 + local data transfer 64 + bus fill 64 + issue 1 = 213.
  EXPECT_EQ(done, 84u + 64u + 64u + 1u);
}

TEST_P(ProtocolCase, DeterministicAcrossRuns) {
  auto run_once = [&] {
    Machine m(SystemParams::test_scale(8), GetParam());
    auto arr = m.alloc<double>(512, "a");
    m.run([&](Cpu& cpu) {
      for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
        arr.put(cpu, i, 1.0);
      }
      cpu.barrier(0);
      double s = 0;
      for (std::size_t i = 0; i < arr.size(); ++i) s += arr.get(cpu, i);
      cpu.lock(1);
      cpu.unlock(1);
    });
    return m.report().execution_time;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(ProtocolCase, BreakdownSumsToLocalTime) {
  Machine m(SystemParams::test_scale(4), GetParam());
  auto arr = m.alloc<double>(256, "a");
  m.run([&](Cpu& cpu) {
    for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
      arr.put(cpu, i, 2.0);
    }
    cpu.barrier(0);
    for (std::size_t i = 0; i < arr.size(); ++i) (void)arr.get(cpu, i);
  });
  for (NodeId p = 0; p < m.nprocs(); ++p) {
    EXPECT_EQ(m.cpu(p).breakdown().total(), m.cpu(p).now()) << "cpu " << p;
  }
}

TEST_P(ProtocolCase, NothingOutstandingAfterRun) {
  Machine m(SystemParams::test_scale(4), GetParam());
  auto arr = m.alloc<double>(256, "a");
  m.run([&](Cpu& cpu) {
    for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
      arr.put(cpu, i, 2.0);
    }
  });
  for (NodeId p = 0; p < m.nprocs(); ++p) {
    EXPECT_TRUE(m.cpu(p).ot().empty());
    EXPECT_TRUE(m.cpu(p).wb().empty());
    EXPECT_TRUE(m.cpu(p).cb().empty());
    EXPECT_EQ(m.cpu(p).wt_outstanding, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolCase,
                         ::testing::Values(ProtocolKind::kSC,
                                           ProtocolKind::kERC,
                                           ProtocolKind::kLRC,
                                           ProtocolKind::kLRCExt),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) ==
                                          "LRC-ext"
                                      ? "LRCext"
                                      : std::string(to_string(info.param));
                         });

TEST(Machine, RunTwiceThrows) {
  Machine m(SystemParams::test_scale(2), ProtocolKind::kSC);
  m.run([](Cpu&) {});
  EXPECT_THROW(m.run([](Cpu&) {}), std::logic_error);
}

TEST(Machine, AllocationsAreLineAligned) {
  Machine m(SystemParams::paper_default(4), ProtocolKind::kSC);
  m.alloc_bytes(5, "tiny");
  const Addr a = m.alloc_bytes(100, "next");
  EXPECT_EQ(a % 128, 0u);
}

TEST(Machine, PeekPokeRoundTrip) {
  Machine m(SystemParams::test_scale(2), ProtocolKind::kSC);
  auto arr = m.alloc<double>(4, "x");
  m.poke_mem(arr.addr(2), 7.5);
  EXPECT_DOUBLE_EQ(m.peek<double>(arr.addr(2)), 7.5);
}

TEST(Machine, ComputeChargesCpuCycles) {
  Machine m(SystemParams::test_scale(2), ProtocolKind::kSC);
  m.run([](Cpu& cpu) { cpu.compute(1000); });
  EXPECT_EQ(m.cpu(0).now(), 1000u);
  EXPECT_EQ(m.cpu(0).breakdown()[stats::StallKind::kCpu], 1000u);
}

TEST(Machine, RunaheadQuantumDoesNotChangeTotals) {
  auto run_with_quantum = [](Cycle q) {
    auto params = SystemParams::test_scale(4);
    params.runahead_quantum = q;
    Machine m(params, ProtocolKind::kLRC);
    auto arr = m.alloc<double>(256, "a");
    m.run([&](Cpu& cpu) {
      for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
        arr.put(cpu, i, 1.0);
      }
      cpu.barrier(0);
    });
    double sum = 0;
    for (std::size_t i = 0; i < 256; ++i) sum += m.peek<double>(arr.addr(i));
    return sum;
  };
  // Timing may shift with the interleaving quantum, but results must not.
  EXPECT_DOUBLE_EQ(run_with_quantum(10), 256.0);
  EXPECT_DOUBLE_EQ(run_with_quantum(100000), 256.0);
}

TEST(Machine, FutureMachineFillCost) {
  // §4.3 machine: request 30, memory 40 + 256/4 = 104, reply 30 + 64 = 94,
  // bus fill 64 -> 292 cycles (+1 issue).
  Machine m(SystemParams::future_machine(64), ProtocolKind::kLRC);
  m.alloc_bytes(60 * 4096, "span");
  Cycle done = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    cpu.read<double>(kRemoteAddr);
    done = cpu.now();
  });
  EXPECT_EQ(done, 30u + 104u + 94u + 64u + 1u);
}

}  // namespace
}  // namespace lrc::core
