#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "core/params.hpp"
#include "core/report.hpp"

namespace lrc::core {
namespace {

TEST(Params, PaperDefaultsMatchTable1) {
  const auto p = SystemParams::paper_default();
  EXPECT_EQ(p.nprocs, 64u);
  EXPECT_EQ(p.line_bytes, 128u);
  EXPECT_EQ(p.cache_bytes, 128u * 1024u);
  EXPECT_EQ(p.mem_setup, 20u);
  EXPECT_EQ(p.mem_bandwidth, 2u);
  EXPECT_EQ(p.bus_bandwidth, 2u);
  EXPECT_EQ(p.net_bandwidth, 2u);
  EXPECT_EQ(p.switch_latency, 2u);
  EXPECT_EQ(p.wire_latency, 1u);
  EXPECT_EQ(p.write_notice_cost, 4u);
  EXPECT_EQ(p.lrc_dir_cost, 25u);
  EXPECT_EQ(p.erc_dir_cost, 15u);
  EXPECT_EQ(p.write_buffer_entries, 4u);
  EXPECT_EQ(p.coalescing_entries, 16u);
}

TEST(Params, FutureMachineMatchesSection43) {
  const auto p = SystemParams::future_machine();
  EXPECT_EQ(p.mem_setup, 40u);
  EXPECT_EQ(p.mem_bandwidth, 4u);
  EXPECT_EQ(p.line_bytes, 256u);
}

TEST(Params, DescribeMentionsEveryTableEntry) {
  const std::string d = SystemParams::paper_default().describe();
  for (const char* needle :
       {"128 bytes", "128 Kbytes", "20 cycles", "2 bytes/cycle",
        "1 cycles", "25 cycles", "15 cycles", "4 entries", "16 entries"}) {
    EXPECT_NE(d.find(needle), std::string::npos) << needle;
  }
}

TEST(Params, ProtocolNames) {
  EXPECT_EQ(to_string(ProtocolKind::kSC), "SC");
  EXPECT_EQ(to_string(ProtocolKind::kERC), "ERC");
  EXPECT_EQ(to_string(ProtocolKind::kLRC), "LRC");
  EXPECT_EQ(to_string(ProtocolKind::kLRCExt), "LRC-ext");
}

TEST(Report, SummaryContainsKeyNumbers) {
  Machine m(SystemParams::test_scale(4), ProtocolKind::kLRC);
  auto arr = m.alloc<double>(128, "a");
  m.run([&](Cpu& cpu) {
    for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
      arr.put(cpu, i, 1.0);
    }
    cpu.barrier(0);
  });
  const Report r = m.report();
  const std::string s = r.summary();
  EXPECT_NE(s.find("LRC"), std::string::npos);
  EXPECT_NE(s.find("execution time"), std::string::npos);
  EXPECT_NE(s.find("miss rate"), std::string::npos);
  EXPECT_NE(s.find("barrier episodes: 1"), std::string::npos);
  EXPECT_EQ(r.nprocs, 4u);
  EXPECT_EQ(r.per_cpu.size(), 4u);
}

TEST(Report, AggregateEqualsPerCpuSum) {
  Machine m(SystemParams::test_scale(4), ProtocolKind::kERC);
  auto arr = m.alloc<double>(256, "a");
  m.run([&](Cpu& cpu) {
    for (std::size_t i = 0; i < arr.size(); ++i) (void)arr.get(cpu, i);
  });
  const Report r = m.report();
  stats::CpuBreakdown sum;
  for (const auto& b : r.per_cpu) sum += b;
  EXPECT_EQ(sum.total(), r.breakdown.total());
}

TEST(Report, ExecutionTimeIsMaxOverProcessors) {
  Machine m(SystemParams::test_scale(4), ProtocolKind::kSC);
  m.run([&](Cpu& cpu) { cpu.compute(100 * (cpu.id() + 1)); });
  EXPECT_EQ(m.report().execution_time, 400u);
}

}  // namespace
}  // namespace lrc::core
