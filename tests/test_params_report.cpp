#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "core/params.hpp"
#include "core/report.hpp"

namespace lrc::core {
namespace {

TEST(Params, PaperDefaultsMatchTable1) {
  const auto p = SystemParams::paper_default();
  EXPECT_EQ(p.nprocs, 64u);
  EXPECT_EQ(p.line_bytes, 128u);
  EXPECT_EQ(p.cache_bytes, 128u * 1024u);
  EXPECT_EQ(p.mem_setup, 20u);
  EXPECT_EQ(p.mem_bandwidth, 2u);
  EXPECT_EQ(p.bus_bandwidth, 2u);
  EXPECT_EQ(p.net_bandwidth, 2u);
  EXPECT_EQ(p.switch_latency, 2u);
  EXPECT_EQ(p.wire_latency, 1u);
  EXPECT_EQ(p.write_notice_cost, 4u);
  EXPECT_EQ(p.lrc_dir_cost, 25u);
  EXPECT_EQ(p.erc_dir_cost, 15u);
  EXPECT_EQ(p.write_buffer_entries, 4u);
  EXPECT_EQ(p.coalescing_entries, 16u);
}

TEST(Params, FutureMachineMatchesSection43) {
  const auto p = SystemParams::future_machine();
  EXPECT_EQ(p.mem_setup, 40u);
  EXPECT_EQ(p.mem_bandwidth, 4u);
  EXPECT_EQ(p.line_bytes, 256u);
}

TEST(Params, DescribeMentionsEveryTableEntry) {
  const std::string d = SystemParams::paper_default().describe();
  for (const char* needle :
       {"128 bytes", "128 Kbytes", "20 cycles", "2 bytes/cycle",
        "1 cycles", "25 cycles", "15 cycles", "4 entries", "16 entries"}) {
    EXPECT_NE(d.find(needle), std::string::npos) << needle;
  }
}

// ---- Geometry validation (Machine construction calls validate()) -----------

// Each rejection throws std::invalid_argument naming the offending field.
void expect_rejected(const SystemParams& p, const char* field) {
  try {
    p.validate();
    ADD_FAILURE() << "expected rejection for " << field;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "error message should name " << field << ", got: " << e.what();
  }
}

TEST(ParamsValidate, RejectsNonPow2CacheBytes) {
  auto p = SystemParams::test_scale(2);
  p.cache_bytes = 3000;
  expect_rejected(p, "cache_bytes");
}

TEST(ParamsValidate, RejectsNonPow2LineBytes) {
  auto p = SystemParams::test_scale(2);
  p.line_bytes = 100;
  expect_rejected(p, "line_bytes");
}

TEST(ParamsValidate, RejectsLineLargerThanPage) {
  auto p = SystemParams::test_scale(2);
  p.line_bytes = 2 * p.page_bytes;
  expect_rejected(p, "page_bytes");
}

TEST(ParamsValidate, RejectsNonPow2L1Ways) {
  auto p = SystemParams::test_scale(2);
  p.cache.l1_ways = 3;
  expect_rejected(p, "l1_ways");
}

TEST(ParamsValidate, RejectsL1WaysBeyondLineCount) {
  auto p = SystemParams::test_scale(2);
  p.cache_bytes = 256;
  p.line_bytes = 128;
  p.cache.l1_ways = 4;  // only 2 lines exist
  expect_rejected(p, "l1_ways");
}

TEST(ParamsValidate, RejectsNonPow2L2Geometry) {
  auto p = SystemParams::test_scale(2);
  p.cache = cache::CacheConfig::with_l2(48 * 1024, 8,
                                        cache::InclusionPolicy::kInclusive);
  expect_rejected(p, "l2_bytes");
  p.cache = cache::CacheConfig::with_l2(64 * 1024, 6,
                                        cache::InclusionPolicy::kInclusive);
  expect_rejected(p, "l2_ways");
}

TEST(ParamsValidate, RejectsInclusiveL2SmallerThanL1) {
  auto p = SystemParams::test_scale(2);  // 4 KB L1
  p.cache = cache::CacheConfig::with_l2(2 * 1024, 4,
                                        cache::InclusionPolicy::kInclusive);
  expect_rejected(p, "l2_bytes");
  // The same shape is legal for an exclusive boundary.
  p.cache.inclusion = cache::InclusionPolicy::kExclusive;
  EXPECT_NO_THROW(p.validate());
}

TEST(ParamsValidate, RejectsBadLlcGeometry) {
  auto p = SystemParams::test_scale(2);
  p.cache = cache::CacheConfig::l1_only().add_llc(100 * 1000, 8);
  expect_rejected(p, "llc_slice_bytes");
  p.cache = cache::CacheConfig::l1_only().add_llc(64 * 1024, 12);
  expect_rejected(p, "llc_ways");
}

TEST(ParamsValidate, MachineConstructionRejectsBadGeometry) {
  auto p = SystemParams::test_scale(2);
  p.cache_bytes = 3000;
  EXPECT_THROW(Machine(p, ProtocolKind::kLRC), std::invalid_argument);
}

TEST(ParamsValidate, AcceptsAllPresets) {
  EXPECT_NO_THROW(SystemParams::paper_default().validate());
  EXPECT_NO_THROW(SystemParams::future_machine().validate());
  EXPECT_NO_THROW(SystemParams::test_scale(4).validate());
  auto p = SystemParams::paper_default();
  p.cache = cache::CacheConfig::paper_l2();
  EXPECT_NO_THROW(p.validate());
}

TEST(Params, DescribeMentionsHierarchyLevels) {
  auto p = SystemParams::paper_default();
  p.cache = cache::CacheConfig::paper_l2().add_llc(512 * 1024, 8);
  const std::string d = p.describe();
  for (const char* needle : {"L1 cache", "L2 cache", "shared LLC", "1024 Kbytes",
                             "8-way", "inclusive", "interleaved"}) {
    EXPECT_NE(d.find(needle), std::string::npos) << needle;
  }
}

TEST(Params, ProtocolNames) {
  EXPECT_EQ(to_string(ProtocolKind::kSC), "SC");
  EXPECT_EQ(to_string(ProtocolKind::kERC), "ERC");
  EXPECT_EQ(to_string(ProtocolKind::kLRC), "LRC");
  EXPECT_EQ(to_string(ProtocolKind::kLRCExt), "LRC-ext");
}

TEST(Report, SummaryContainsKeyNumbers) {
  Machine m(SystemParams::test_scale(4), ProtocolKind::kLRC);
  auto arr = m.alloc<double>(128, "a");
  m.run([&](Cpu& cpu) {
    for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
      arr.put(cpu, i, 1.0);
    }
    cpu.barrier(0);
  });
  const Report r = m.report();
  const std::string s = r.summary();
  EXPECT_NE(s.find("LRC"), std::string::npos);
  EXPECT_NE(s.find("execution time"), std::string::npos);
  EXPECT_NE(s.find("miss rate"), std::string::npos);
  EXPECT_NE(s.find("barrier episodes: 1"), std::string::npos);
  EXPECT_EQ(r.nprocs, 4u);
  EXPECT_EQ(r.per_cpu.size(), 4u);
}

TEST(Report, AggregateEqualsPerCpuSum) {
  Machine m(SystemParams::test_scale(4), ProtocolKind::kERC);
  auto arr = m.alloc<double>(256, "a");
  m.run([&](Cpu& cpu) {
    for (std::size_t i = 0; i < arr.size(); ++i) (void)arr.get(cpu, i);
  });
  const Report r = m.report();
  stats::CpuBreakdown sum;
  for (const auto& b : r.per_cpu) sum += b;
  EXPECT_EQ(sum.total(), r.breakdown.total());
}

TEST(Report, ExecutionTimeIsMaxOverProcessors) {
  Machine m(SystemParams::test_scale(4), ProtocolKind::kSC);
  m.run([&](Cpu& cpu) { cpu.compute(100 * (cpu.id() + 1)); });
  EXPECT_EQ(m.report().execution_time, 400u);
}

TEST(Report, PerLevelLinesOnlyForMultiLevelConfigs) {
  auto run_summary = [](const cache::CacheConfig& cfg) {
    auto p = SystemParams::test_scale(2);
    p.cache = cfg;
    Machine m(p, ProtocolKind::kLRC);
    auto arr = m.alloc<double>(64, "a");
    m.run([&](Cpu& cpu) {
      for (std::size_t i = 0; i < arr.size(); ++i) (void)arr.get(cpu, i);
    });
    return m.report().summary();
  };
  const std::string flat = run_summary(cache::CacheConfig::l1_only());
  EXPECT_EQ(flat.find("L2:"), std::string::npos)
      << "single-level summary must keep the pre-hierarchy format";
  const std::string deep = run_summary(cache::CacheConfig::with_l2(
      16 * 1024, 4, cache::InclusionPolicy::kInclusive));
  EXPECT_NE(deep.find("L1:"), std::string::npos);
  EXPECT_NE(deep.find("L2:"), std::string::npos);
  const std::string llc = run_summary(
      cache::CacheConfig::l1_only().add_llc(16 * 1024, 4));
  EXPECT_NE(llc.find("LLC:"), std::string::npos);
}

}  // namespace
}  // namespace lrc::core
