#include "mesh/topology.hpp"

#include <gtest/gtest.h>

namespace lrc::mesh {
namespace {

TEST(Topology, SquareMesh64) {
  Topology t(64);
  EXPECT_EQ(t.rows(), 8u);
  EXPECT_EQ(t.cols(), 8u);
  EXPECT_EQ(t.hops(0, 0), 0u);
  EXPECT_EQ(t.hops(0, 63), 14u);  // corner to corner
  EXPECT_EQ(t.hops(0, 7), 7u);    // along a row
  EXPECT_EQ(t.hops(0, 56), 7u);   // along a column
}

TEST(Topology, HopsAreSymmetric) {
  Topology t(16);
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
    }
  }
}

TEST(Topology, TriangleInequality) {
  Topology t(32);
  for (NodeId a = 0; a < 32; ++a) {
    for (NodeId b = 0; b < 32; ++b) {
      for (NodeId c = 0; c < 32; c += 7) {
        EXPECT_LE(t.hops(a, b), t.hops(a, c) + t.hops(c, b));
      }
    }
  }
}

TEST(Topology, SingleNode) {
  Topology t(1);
  EXPECT_EQ(t.hops(0, 0), 0u);
  EXPECT_DOUBLE_EQ(t.mean_hops(), 0.0);
}

TEST(Topology, RejectsInvalidSizes) {
  EXPECT_THROW(Topology(0), std::invalid_argument);
  EXPECT_THROW(Topology(Topology::kMaxNodes + 1), std::invalid_argument);
  // Above kMaxProcs is fine for the topology itself (the sharded-engine
  // scaling benches build meshes beyond the protocol's bitmask limit).
  EXPECT_NO_THROW(Topology(65));
  EXPECT_NO_THROW(Topology(Topology::kMaxNodes));
}

class TopologyParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(TopologyParam, CoversAllNodes) {
  const unsigned n = GetParam();
  Topology t(n);
  // The mesh is exactly rectangular: rows is the largest divisor of n not
  // exceeding sqrt(n), so rows * cols == n with no padded positions.
  EXPECT_EQ(t.rows() * t.cols(), n);
  EXPECT_LE(t.rows(), t.cols());
  // Every node has valid coordinates.
  for (NodeId i = 0; i < n; ++i) {
    EXPECT_LT(t.row_of(i), t.rows());
    EXPECT_LT(t.col_of(i), t.cols());
  }
  // Distinct nodes have distinct coordinates.
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      EXPECT_TRUE(t.row_of(a) != t.row_of(b) || t.col_of(a) != t.col_of(b));
    }
  }
}

TEST_P(TopologyParam, MeanHopsPositiveAndBounded) {
  const unsigned n = GetParam();
  if (n < 2) return;
  Topology t(n);
  const double mean = t.mean_hops();
  EXPECT_GT(mean, 0.0);
  EXPECT_LE(mean, static_cast<double>(t.rows() + t.cols()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologyParam,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u,
                                           24u, 32u, 48u, 64u));

}  // namespace
}  // namespace lrc::mesh
