// Cross-geometry protocol sweep: a fixed race-free workload must compute
// the same result under every (cache size, line size, processor count,
// protocol, home policy) combination, and the timing model must respect
// basic monotonicity (bigger caches never increase the miss count of a
// deterministic single-processor reference stream).
#include <gtest/gtest.h>

#include <tuple>

#include "cache/config.hpp"
#include "core/machine.hpp"

namespace lrc::core {
namespace {

using Geometry = std::tuple<std::uint32_t /*cache*/, std::uint32_t /*line*/,
                            unsigned /*procs*/, ProtocolKind>;

std::string geometry_name(const ::testing::TestParamInfo<Geometry>& info) {
  const auto [cache, line, procs, kind] = info.param;
  std::string n = "c" + std::to_string(cache / 1024) + "k_l" +
                  std::to_string(line) + "_p" + std::to_string(procs) + "_" +
                  std::string(to_string(kind));
  for (auto& ch : n) {
    if (ch == '-') ch = '_';
  }
  return n;
}

class GeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(GeometrySweep, FixedWorkloadComputesSameResult) {
  const auto [cache, line, procs, kind] = GetParam();
  auto params = SystemParams::paper_default(procs);
  params.cache_bytes = cache;
  params.line_bytes = line;
  Machine m(params, kind);

  auto arr = m.alloc<double>(512, "a");
  auto partial = m.alloc<double>(64 * 16, "partial");  // padded slots
  m.run([&](Cpu& cpu) {
    // Phase 1: disjoint writes.
    for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
      arr.put(cpu, i, static_cast<double>(i % 7));
    }
    cpu.barrier(0);
    // Phase 2: everyone reads everything; lock-protected tally.
    double sum = 0;
    for (std::size_t i = 0; i < arr.size(); ++i) sum += arr.get(cpu, i);
    partial.put(cpu, cpu.id() * 16, sum);
    cpu.lock(1);
    cpu.unlock(1);
    cpu.barrier(0);
  });

  double expected = 0;
  for (std::size_t i = 0; i < 512; ++i) expected += static_cast<double>(i % 7);
  for (unsigned p = 0; p < procs; ++p) {
    EXPECT_DOUBLE_EQ(m.peek<double>(partial.addr(p * 16)), expected)
        << "proc " << p;
  }
  // Per-cpu accounting stays exact in every geometry.
  for (NodeId p = 0; p < m.nprocs(); ++p) {
    EXPECT_EQ(m.cpu(p).breakdown().total(), m.cpu(p).now());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Combine(::testing::Values(512u, 4096u, 128u * 1024u),
                       ::testing::Values(64u, 128u, 256u),
                       ::testing::Values(2u, 8u),
                       ::testing::Values(ProtocolKind::kERC,
                                         ProtocolKind::kLRC,
                                         ProtocolKind::kLRCExt)),
    geometry_name);

// Hierarchy dimension of the sweep: the same workload must also compute
// the same result when the private stack deepens (2-level inclusive /
// exclusive, and 3-level with a sliced shared LLC). Timing may change;
// values may not.
using HierGeometry = std::tuple<int /*config*/, ProtocolKind>;

cache::CacheConfig hier_sweep_config(int idx) {
  switch (idx) {
    case 0:
      return cache::CacheConfig::with_l2(16 * 1024, 4,
                                         cache::InclusionPolicy::kInclusive);
    case 1:
      return cache::CacheConfig::with_l2(16 * 1024, 4,
                                         cache::InclusionPolicy::kExclusive);
    default: {
      auto c = cache::CacheConfig::with_l2(16 * 1024, 4,
                                           cache::InclusionPolicy::kInclusive);
      c.add_llc(32 * 1024, 4, cache::SliceHash::kXorFold);
      return c;
    }
  }
}

std::string hier_name(const ::testing::TestParamInfo<HierGeometry>& info) {
  const auto [idx, kind] = info.param;
  const char* cfg = idx == 0 ? "l2incl" : idx == 1 ? "l2excl" : "l2llc";
  std::string n = std::string(cfg) + "_" + std::string(to_string(kind));
  for (auto& ch : n) {
    if (ch == '-') ch = '_';
  }
  return n;
}

class HierarchySweep : public ::testing::TestWithParam<HierGeometry> {};

TEST_P(HierarchySweep, FixedWorkloadComputesSameResult) {
  const auto [idx, kind] = GetParam();
  auto params = SystemParams::paper_default(4);
  params.cache_bytes = 4096;
  params.cache = hier_sweep_config(idx);
  Machine m(params, kind);

  auto arr = m.alloc<double>(512, "a");
  auto partial = m.alloc<double>(4 * 16, "partial");
  m.run([&](Cpu& cpu) {
    for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
      arr.put(cpu, i, static_cast<double>(i % 7));
    }
    cpu.barrier(0);
    double sum = 0;
    for (std::size_t i = 0; i < arr.size(); ++i) sum += arr.get(cpu, i);
    partial.put(cpu, cpu.id() * 16, sum);
    cpu.lock(1);
    cpu.unlock(1);
    cpu.barrier(0);
  });

  double expected = 0;
  for (std::size_t i = 0; i < 512; ++i) expected += static_cast<double>(i % 7);
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_DOUBLE_EQ(m.peek<double>(partial.addr(p * 16)), expected)
        << "proc " << p;
  }
  for (NodeId p = 0; p < m.nprocs(); ++p) {
    EXPECT_EQ(m.cpu(p).breakdown().total(), m.cpu(p).now());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Hierarchies, HierarchySweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(ProtocolKind::kSC,
                                         ProtocolKind::kERC,
                                         ProtocolKind::kERCWT,
                                         ProtocolKind::kLRC,
                                         ProtocolKind::kLRCExt)),
    hier_name);

TEST(GeometryMonotonicity, BiggerCachesNeverMissMore) {
  // Single processor, fixed reference stream: misses must be monotonically
  // non-increasing in cache size (same line size, LRU-free direct-mapped
  // still satisfies this for a fixed stream only in the inclusive sense of
  // total misses for these strides).
  std::uint64_t prev = ~0ull;
  for (std::uint32_t cache : {1024u, 4096u, 16384u, 65536u}) {
    auto params = SystemParams::paper_default(1);
    params.cache_bytes = cache;
    Machine m(params, ProtocolKind::kLRC);
    auto arr = m.alloc<double>(4096, "a");
    m.run([&](Cpu& cpu) {
      for (int round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < arr.size(); i += 4) {
          (void)arr.get(cpu, i);
        }
      }
    });
    const auto misses = m.report().cache.misses();
    EXPECT_LE(misses, prev) << "cache " << cache;
    prev = misses;
  }
}

TEST(GeometryMonotonicity, LongerLinesReduceColdMissesOnStreams) {
  // Sequential streaming: doubling the line halves the cold misses.
  std::uint64_t prev = ~0ull;
  for (std::uint32_t line : {64u, 128u, 256u}) {
    auto params = SystemParams::paper_default(1);
    params.line_bytes = line;
    Machine m(params, ProtocolKind::kERC);
    auto arr = m.alloc<double>(8192, "a");
    m.run([&](Cpu& cpu) {
      for (std::size_t i = 0; i < arr.size(); ++i) (void)arr.get(cpu, i);
    });
    const auto misses = m.report().cache.misses();
    EXPECT_LT(misses, prev) << "line " << line;
    prev = misses;
  }
}

TEST(GeometryMonotonicity, FirstTouchMatchesRoundRobinResults) {
  for (auto policy : {mem::HomePolicy::kRoundRobin,
                      mem::HomePolicy::kFirstTouch}) {
    auto params = SystemParams::test_scale(8);
    params.home_policy = policy;
    Machine m(params, ProtocolKind::kLRC);
    auto arr = m.alloc<double>(256, "a");
    m.run([&](Cpu& cpu) {
      for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
        arr.put(cpu, i, 2.0);
      }
      cpu.barrier(0);
    });
    for (std::size_t i = 0; i < 256; ++i) {
      EXPECT_DOUBLE_EQ(m.peek<double>(arr.addr(i)), 2.0);
    }
  }
}

}  // namespace
}  // namespace lrc::core
