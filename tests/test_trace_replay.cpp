// Capture -> replay equivalence (DESIGN.md §11).
//
// The trace front end's contract: replaying a captured run through the
// fiber-free ReplayCpu produces a bit-identical Report — same cycles, same
// messages, same stall histograms — because the trace preserves each
// processor's workload stream exactly and every protocol op is the same
// CpuOp coroutine the fiber front end drives.
//
//  * Serial replay (shards = 0) uses the same legacy engine as the
//    captured run: the FULL report digest must match, for every litmus
//    program, every protocol, several seeds, and for fft at 64 nodes.
//  * Sharded replay (shards >= 1) uses the keyed engine, which is
//    bit-identical across shard counts but not to the legacy engine; a
//    replayed trace must match a native fiber run at the same shard count
//    (possible only for programs whose access stream is schedule-
//    independent, i.e. no RIF), and must be shard-count invariant for all.
//  * Malformed traces (bad magic, flipped bits, truncation) fail with a
//    TraceError naming the file and block — never UB.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "check/litmus.hpp"
#include "core/machine.hpp"
#include "core/report.hpp"
#include "report_digest.hpp"
#include "trace/codec.hpp"
#include "trace/format.hpp"
#include "trace/reader.hpp"

namespace lrc {
namespace {

using check::LitmusOp;
using check::LitmusProgram;
using check::LitmusRunOptions;
using core::ProtocolKind;

constexpr ProtocolKind kAllFive[] = {ProtocolKind::kSC, ProtocolKind::kERC,
                                     ProtocolKind::kERCWT, ProtocolKind::kLRC,
                                     ProtocolKind::kLRCExt};

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& ent :
       std::filesystem::directory_iterator(LRCSIM_LITMUS_DIR)) {
    if (ent.path().extension() == ".litmus") files.push_back(ent.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

// RIF reads are conditional on a host register, so the executed access
// stream depends on the schedule; a trace captured under one engine need
// not match a native run under the other.
bool schedule_independent(const LitmusProgram& prog) {
  for (const auto& ops : prog.code) {
    for (const LitmusOp& op : ops) {
      if (op.kind == LitmusOp::kReadIf) return false;
    }
  }
  return true;
}

// Fresh per-test scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "lrc_trace_" + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

// Runs the program and returns the post-run Report digest (full for serial
// runs, the sharded subset otherwise).
std::uint64_t litmus_digest(const LitmusProgram& prog, ProtocolKind kind,
                            LitmusRunOptions opts) {
  std::uint64_t d = 0;
  opts.post_run = [&](core::Machine& m) {
    const core::Report r = m.report();
    d = opts.shards == 0 ? testutil::report_digest(r)
                         : testutil::sharded_report_digest(r);
  };
  run_litmus(prog, kind, opts);
  return d;
}

// ---- Whole-corpus round trips ----------------------------------------------

// Serial capture -> serial replay: full digest equality for every program,
// protocol, and seed.
TEST(TraceReplay, LitmusCorpusBitIdentical) {
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 12u) << "litmus corpus went missing";
  const std::string dir = scratch_dir("corpus");
  for (const auto& f : files) {
    const LitmusProgram prog = LitmusProgram::parse_file(f);
    for (auto kind : kAllFive) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const std::string cell = dir + "/" + prog.name + "_" +
                                 std::string(core::to_string(kind)) + "_" +
                                 std::to_string(seed);
        LitmusRunOptions cap;
        cap.seed = seed;
        cap.capture_dir = cell;
        const std::uint64_t fiber = litmus_digest(prog, kind, cap);

        LitmusRunOptions rep;
        rep.replay_dir = cell;
        const std::uint64_t replay = litmus_digest(prog, kind, rep);
        EXPECT_EQ(replay, fiber) << prog.name << " / "
                                 << core::to_string(kind) << " seed " << seed;

        // The capture directory self-describes the run it came from.
        const trace::TraceMeta meta = trace::read_meta(cell);
        EXPECT_EQ(meta.nprocs, prog.nprocs);
        EXPECT_EQ(meta.app, prog.name);
        EXPECT_EQ(meta.protocol, core::to_string(kind));
        EXPECT_EQ(meta.seed, seed);
      }
    }
  }
  std::filesystem::remove_all(dir);
}

// A serially-captured trace replayed under the keyed engine must match a
// native fiber run at the same shard count — for programs whose stream is
// a pure function of program order.
TEST(TraceReplay, ShardedReplayMatchesShardedFiber) {
  const std::string dir = scratch_dir("shard_fiber");
  for (const auto& f : corpus_files()) {
    const LitmusProgram prog = LitmusProgram::parse_file(f);
    if (!schedule_independent(prog)) continue;
    for (auto kind : kAllFive) {
      const std::string cell =
          dir + "/" + prog.name + "_" + std::string(core::to_string(kind));
      LitmusRunOptions cap;
      cap.seed = 1;
      cap.capture_dir = cell;
      run_litmus(prog, kind, cap);

      LitmusRunOptions fib4;
      fib4.seed = 1;
      fib4.shards = 4;
      const std::uint64_t fiber = litmus_digest(prog, kind, fib4);

      LitmusRunOptions rep4;
      rep4.shards = 4;
      rep4.replay_dir = cell;
      const std::uint64_t replay = litmus_digest(prog, kind, rep4);
      EXPECT_EQ(replay, fiber)
          << prog.name << " / " << core::to_string(kind) << " shards=4";
    }
  }
  std::filesystem::remove_all(dir);
}

// Replay at different shard counts is bit-identical for EVERY program —
// the trace fixes the stream, so even schedule-dependent programs replay
// deterministically.
TEST(TraceReplay, ReplayShardCountInvariant) {
  const std::string dir = scratch_dir("shard_inv");
  for (const auto& f : corpus_files()) {
    const LitmusProgram prog = LitmusProgram::parse_file(f);
    for (auto kind : kAllFive) {
      const std::string cell =
          dir + "/" + prog.name + "_" + std::string(core::to_string(kind));
      LitmusRunOptions cap;
      cap.seed = 2;
      cap.capture_dir = cell;
      run_litmus(prog, kind, cap);

      LitmusRunOptions rep;
      rep.replay_dir = cell;
      rep.shards = 1;
      const std::uint64_t one = litmus_digest(prog, kind, rep);
      rep.shards = 4;
      const std::uint64_t four = litmus_digest(prog, kind, rep);
      EXPECT_EQ(one, four) << prog.name << " / " << core::to_string(kind);
    }
  }
  std::filesystem::remove_all(dir);
}

// The fig4 workload at full machine width: fft on 64 processors.
TEST(TraceReplay, Fft64RoundTrip) {
  const std::string dir = scratch_dir("fft64");
  bench::Options opt;
  opt.scale = bench::Scale::kTest;
  opt.procs = 64;
  opt.apps = {"fft"};
  opt.validate = false;
  const auto* app = bench::selected_apps(opt).front();
  for (auto kind : {ProtocolKind::kSC, ProtocolKind::kLRC}) {
    auto cap = opt;
    cap.capture_dir = dir;
    const auto fiber = bench::run_app(*app, kind, cap);

    auto rep = opt;
    rep.replay_dir = dir;
    const auto replay = bench::run_app(*app, kind, rep);
    EXPECT_EQ(testutil::report_digest(replay.report),
              testutil::report_digest(fiber.report))
        << "fft / " << core::to_string(kind);
  }
  std::filesystem::remove_all(dir);
}

// ---- Malformed input --------------------------------------------------------

// Writes a single-stream file from raw pieces so each failure mode is
// exercised deterministically (captured files pick codecs data-dependently).
void write_file_header(std::FILE* f, std::uint32_t magic) {
  std::uint8_t hdr[trace::kFileHeaderBytes] = {};
  trace::put_u32(hdr, magic);
  trace::put_u16(hdr + 4, trace::kVersion);
  trace::put_u32(hdr + 8, 0);   // cpu
  trace::put_u32(hdr + 12, 1);  // nprocs
  std::fwrite(hdr, 1, sizeof(hdr), f);
}

// One raw-codec block holding `n` compute records (plus kEnd when asked).
std::vector<std::uint8_t> raw_block(unsigned n, bool with_end) {
  std::vector<std::uint8_t> raw;
  for (unsigned i = 0; i < n; ++i) {
    raw.push_back(static_cast<std::uint8_t>(trace::Op::kCompute));
    std::uint8_t var[10];
    const std::size_t len = trace::put_varint(var, 5 + i);
    raw.insert(raw.end(), var, var + len);
  }
  if (with_end) raw.push_back(static_cast<std::uint8_t>(trace::Op::kEnd));
  return raw;
}

void write_block(std::FILE* f, const std::vector<std::uint8_t>& raw,
                 std::uint32_t checksum, std::uint8_t codec) {
  std::uint8_t hdr[trace::kBlockHeaderBytes] = {};
  trace::put_u32(hdr, static_cast<std::uint32_t>(raw.size()));
  trace::put_u32(hdr + 4, static_cast<std::uint32_t>(raw.size()));
  trace::put_u32(hdr + 8, 0);  // nrecords (informational)
  trace::put_u32(hdr + 12, checksum);
  hdr[16] = codec;
  std::fwrite(hdr, 1, sizeof(hdr), f);
  std::fwrite(raw.data(), 1, raw.size(), f);
}

std::string make_stream(const std::string& leaf, std::uint32_t magic,
                        const std::vector<std::uint8_t>& raw,
                        std::uint32_t checksum, std::uint8_t codec,
                        std::size_t truncate_to = 0) {
  const std::string dir = scratch_dir(leaf);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + trace::stream_name(0);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  write_file_header(f, magic);
  write_block(f, raw, checksum, codec);
  std::fclose(f);
  if (truncate_to != 0) std::filesystem::resize_file(path, truncate_to);
  return path;
}

// Every failure asserts the "<file>:block <n>: <reason>" shape — the error
// must tell the user which block of which stream is bad.
void expect_trace_error(const std::string& path, const char* reason_substr,
                        const std::function<void()>& body) {
  try {
    body();
    FAIL() << "expected TraceError (" << reason_substr << ")";
  } catch (const trace::TraceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(":block "), std::string::npos) << what;
    EXPECT_NE(what.find(reason_substr), std::string::npos) << what;
  }
}

TEST(TraceCorrupt, BadMagic) {
  const auto raw = raw_block(3, true);
  const std::string path = make_stream(
      "magic", 0xDEADBEEFu, raw, trace::fnv1a32(raw.data(), raw.size()), 0);
  expect_trace_error(path, "bad magic", [&] { trace::Reader r(path); });
}

TEST(TraceCorrupt, ChecksumMismatch) {
  const auto raw = raw_block(3, true);
  const std::uint32_t good = trace::fnv1a32(raw.data(), raw.size());
  const std::string path =
      make_stream("checksum", trace::kMagic, raw, good ^ 1, 0);
  expect_trace_error(path, "checksum mismatch", [&] {
    trace::Reader r(path);
    trace::Record rec;
    while (r.next(rec)) {
    }
  });
}

TEST(TraceCorrupt, UnknownCodec) {
  const auto raw = raw_block(3, true);
  const std::string path =
      make_stream("codec", trace::kMagic, raw,
                  trace::fnv1a32(raw.data(), raw.size()), 0x7F);
  expect_trace_error(path, "unknown codec", [&] {
    trace::Reader r(path);
    trace::Record rec;
    while (r.next(rec)) {
    }
  });
}

TEST(TraceCorrupt, TruncatedPayload) {
  const auto raw = raw_block(3, true);
  const std::string path =
      make_stream("trunc_payload", trace::kMagic, raw,
                  trace::fnv1a32(raw.data(), raw.size()), 0,
                  trace::kFileHeaderBytes + trace::kBlockHeaderBytes + 2);
  expect_trace_error(path, "truncated block payload", [&] {
    trace::Reader r(path);
    trace::Record rec;
    while (r.next(rec)) {
    }
  });
}

TEST(TraceCorrupt, TruncatedBlockHeader) {
  const auto raw = raw_block(3, true);
  const std::string path =
      make_stream("trunc_hdr", trace::kMagic, raw,
                  trace::fnv1a32(raw.data(), raw.size()), 0,
                  trace::kFileHeaderBytes + 7);
  expect_trace_error(path, "truncated block header", [&] {
    trace::Reader r(path);
    trace::Record rec;
    while (r.next(rec)) {
    }
  });
}

TEST(TraceCorrupt, MissingEndRecord) {
  // A well-formed block that simply never says kEnd: EOF at the block
  // boundary must be reported, not treated as a clean end of stream.
  const auto raw = raw_block(3, false);
  const std::string path = make_stream(
      "no_end", trace::kMagic, raw, trace::fnv1a32(raw.data(), raw.size()), 0);
  expect_trace_error(path, "missing end record", [&] {
    trace::Reader r(path);
    trace::Record rec;
    while (r.next(rec)) {
    }
  });
}

// A corrupt stream surfaced through the replay front end (not just the raw
// Reader) also fails with the located error, with the Machine cleanly
// destroyed.
TEST(TraceCorrupt, ReplayRejectsCorruptTrace) {
  const std::string dir = scratch_dir("replay_corrupt");
  const LitmusProgram prog = LitmusProgram::parse_file(
      std::string(LRCSIM_LITMUS_DIR) + "/mp_barrier.litmus");
  LitmusRunOptions cap;
  cap.seed = 1;
  cap.capture_dir = dir;
  run_litmus(prog, ProtocolKind::kLRC, cap);

  // Flip one payload byte in proc 0's stream; whichever codec the block
  // chose, decode or checksum verification must catch it.
  const std::string path = dir + "/" + trace::stream_name(0);
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_END);
    std::fputc(c ^ 0x55, f);
    std::fclose(f);
  }
  LitmusRunOptions rep;
  rep.replay_dir = dir;
  try {
    run_litmus(prog, ProtocolKind::kLRC, rep);
    FAIL() << "expected TraceError from corrupted stream";
  } catch (const trace::TraceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(":block "), std::string::npos) << what;
  }
  std::filesystem::remove_all(dir);
}

// Replaying on the wrong machine width is rejected up front by the factory.
TEST(TraceCorrupt, NprocsMismatchRejected) {
  const std::string dir = scratch_dir("nprocs");
  const LitmusProgram prog = LitmusProgram::parse_file(
      std::string(LRCSIM_LITMUS_DIR) + "/mp_barrier.litmus");
  LitmusRunOptions cap;
  cap.capture_dir = dir;
  run_litmus(prog, ProtocolKind::kSC, cap);

  bench::Options opt;  // 64-proc machine vs the 2-proc capture
  opt.scale = bench::Scale::kTest;
  opt.procs = 64;
  opt.apps = {"fft"};
  opt.validate = false;
  opt.replay_dir = dir;
  // run_app appends "<app>_<protocol>"; point a matching layout at it.
  const std::string cell = dir + "/fft_SC";
  std::filesystem::create_directories(cell);
  std::filesystem::copy(dir + "/meta.txt", cell + "/meta.txt");
  std::filesystem::copy(dir + "/" + trace::stream_name(0),
                        cell + "/" + trace::stream_name(0));
  const auto* app = bench::selected_apps(opt).front();
  EXPECT_THROW(bench::run_app(*app, ProtocolKind::kSC, opt),
               std::runtime_error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lrc
