#include "stats/table.hpp"

#include <gtest/gtest.h>

namespace lrc::stats {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"App", "Miss"});
  t.add_row({"gauss", "2.72%"});
  t.add_row({"mp3d", "4.81%"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| App"), std::string::npos);
  EXPECT_NE(s.find("gauss"), std::string::npos);
  EXPECT_NE(s.find("4.81%"), std::string::npos);
  // One header + separator + two data rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, PadsShortRows) {
  Table t({"A", "B", "C"});
  t.add_row({"x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, ColumnsAlign) {
  Table t({"Name", "Value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "100"});
  const std::string s = t.to_string();
  // Every line has the same length when columns are padded.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(Table::pct(0.123), "12.3%");
  EXPECT_EQ(Table::pct(0.123456, 2), "12.35%");
  EXPECT_EQ(Table::pct(0.0), "0.0%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, FixedFormatting) {
  EXPECT_EQ(Table::fixed(1.2345), "1.23");
  EXPECT_EQ(Table::fixed(1.2345, 3), "1.234");  // round-to-even banker-free
  EXPECT_EQ(Table::fixed(-0.5, 1), "-0.5");
}

TEST(Table, CountFormatting) {
  EXPECT_EQ(Table::count(0), "0");
  EXPECT_EQ(Table::count(1234567), "1234567");
}

}  // namespace
}  // namespace lrc::stats
