#include "mesh/nic.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace lrc::mesh {
namespace {

struct Delivery {
  Message msg;
  Cycle when;
};

struct NicFixture : ::testing::Test {
  NicFixture() : topo(64), nic(engine, topo, NicParams{}) {
    nic.set_deliver(
        [](void* ctx, const Message& m, Cycle t) {
          static_cast<NicFixture*>(ctx)->log.push_back(Delivery{m, t});
        },
        this);
  }

  Message make(NodeId src, NodeId dst, std::uint32_t payload = 0) {
    Message m;
    m.kind = MsgKind::kReadReq;
    m.src = src;
    m.dst = dst;
    m.payload_bytes = payload;
    return m;
  }

  sim::Engine engine;
  Topology topo;
  Nic nic;
  std::vector<Delivery> log;
};

TEST_F(NicFixture, ControlMessageLatencyMatchesPaperModel) {
  // Paper worked example (§3): request over 10 hops costs
  // (switch + wire) * 10 = 30 cycles.
  const NodeId src = 0;
  const NodeId dst = 59;  // (7,3) in an 8x8 mesh: 7 + 3 = 10 hops
  ASSERT_EQ(topo.hops(src, dst), 10u);
  EXPECT_EQ(nic.uncontended_latency(src, dst, 0), 30u);

  nic.send(100, make(src, dst));
  engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].when, 130u);
}

TEST_F(NicFixture, DataMessageAddsSerializationTime) {
  // Paper worked example: 128-byte reply over 10 hops costs 30 + 128/2 = 94.
  EXPECT_EQ(nic.uncontended_latency(0, 59, 128), 94u);
}

TEST_F(NicFixture, SelfMessagePaysOnlyPayload) {
  EXPECT_EQ(nic.uncontended_latency(5, 5, 0), 0u);
  EXPECT_EQ(nic.uncontended_latency(5, 5, 128), 64u);
}

TEST_F(NicFixture, PerPairFifoOrderIsPreserved) {
  // A small control message sent after a large data message between the
  // same pair must not overtake it.
  Message big = make(0, 63, 512);
  big.tag = 1;
  Message small = make(0, 63, 0);
  small.tag = 2;
  nic.send(0, big);
  nic.send(0, small);
  engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].msg.tag, 1u);
  EXPECT_EQ(log[1].msg.tag, 2u);
  EXPECT_LT(log[0].when, log[1].when);
}

TEST_F(NicFixture, SenderSerializesDepartures) {
  // Two messages from the same node at the same time: the second departs
  // after the first's occupancy (header 8 bytes / 2 B/cy = 4 cycles).
  nic.send(0, make(0, 1));
  nic.send(0, make(0, 2));
  engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].when, 3u);      // 1 hop * 3
  EXPECT_EQ(log[1].when, 4u + 6u); // departs at 4, 2 hops * 3
  EXPECT_GT(nic.stats().send_contention, 0u);
}

TEST_F(NicFixture, ReceiverSerializesDeliveries) {
  // Two messages from different sources arriving together at one node: the
  // second waits for the first's receive occupancy.
  nic.send(0, make(1, 0));   // 1 hop -> arrives 3
  nic.send(0, make(8, 0));   // 1 hop -> arrives 3
  engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].when, 3u);
  EXPECT_EQ(log[1].when, 7u);  // 3 + header occupancy 4
  EXPECT_EQ(nic.stats().recv_contention, 4u);
}

TEST_F(NicFixture, StatsCountKindsAndPayload) {
  nic.send(0, make(0, 1, 0));
  nic.send(0, make(0, 1, 128));
  engine.run();
  EXPECT_EQ(nic.stats().messages, 2u);
  EXPECT_EQ(nic.stats().control_messages, 1u);
  EXPECT_EQ(nic.stats().data_messages, 1u);
  EXPECT_EQ(nic.stats().payload_bytes, 128u);
  EXPECT_EQ(nic.stats().per_kind[static_cast<std::size_t>(MsgKind::kReadReq)],
            2u);
}

TEST_F(NicFixture, HigherBandwidthShortensDataLatency) {
  Nic fast(engine, topo, NicParams{2, 1, /*bandwidth=*/4, 8});
  EXPECT_EQ(fast.uncontended_latency(0, 59, 128), 30u + 32u);
}

}  // namespace
}  // namespace lrc::mesh
