#include "cache/write_buffer.hpp"

#include <gtest/gtest.h>

namespace lrc::cache {
namespace {

TEST(WriteBuffer, PushAllocatesSlots) {
  WriteBuffer wb(4);
  EXPECT_TRUE(wb.empty());
  EXPECT_EQ(wb.push(10, 0x1), 0);
  EXPECT_EQ(wb.push(11, 0x2), 1);
  EXPECT_EQ(wb.occupied(), 2u);
  EXPECT_FALSE(wb.full());
}

TEST(WriteBuffer, CoalescesSameLine) {
  WriteBuffer wb(4);
  const int s = wb.push(10, 0x1);
  EXPECT_EQ(wb.push(10, 0x4), s);
  EXPECT_EQ(wb.slot(s).words, 0x5u);
  EXPECT_EQ(wb.occupied(), 1u);
  EXPECT_EQ(wb.stats().coalesced, 1u);
  EXPECT_EQ(wb.stats().enqueued, 1u);
}

TEST(WriteBuffer, FullBufferRejects) {
  WriteBuffer wb(4);
  for (LineId l = 0; l < 4; ++l) EXPECT_GE(wb.push(l, 1), 0);
  EXPECT_TRUE(wb.full());
  EXPECT_EQ(wb.push(99, 1), -1);
  EXPECT_EQ(wb.stats().full_stalls, 1u);
  // Coalescing still works when full.
  EXPECT_GE(wb.push(2, 0x8), 0);
}

TEST(WriteBuffer, RetireFreesSlot) {
  WriteBuffer wb(4);
  const int s = wb.push(10, 0x3);
  const auto e = wb.retire(s);
  EXPECT_EQ(e.line, 10u);
  EXPECT_EQ(e.words, 0x3u);
  EXPECT_TRUE(wb.empty());
  EXPECT_EQ(wb.find(10), -1);
  // Slot is reusable.
  EXPECT_EQ(wb.push(20, 1), s);
}

TEST(WriteBuffer, FindLocatesLines) {
  WriteBuffer wb(4);
  wb.push(10, 1);
  wb.push(20, 1);
  EXPECT_EQ(wb.find(20), 1);
  EXPECT_EQ(wb.find(30), -1);
}

TEST(WriteBuffer, PaperConfigurationIsFourEntries) {
  WriteBuffer wb(4);
  EXPECT_EQ(wb.capacity(), 4u);
}

}  // namespace
}  // namespace lrc::cache
