// Runs every tests/litmus/*.litmus program under all five protocols with a
// few jitter seeds and checks the observed outcome against the program's
// forbid/require conditions. In LRCSIM_CHECK builds the consistency
// checker also runs: no program may produce violations, and programs
// marked `expect drf` must show zero detected races.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "check/litmus.hpp"

namespace {

using lrc::check::LitmusProgram;
using lrc::check::LitmusResult;
using lrc::core::ProtocolKind;

constexpr ProtocolKind kAllKinds[] = {ProtocolKind::kSC, ProtocolKind::kERC,
                                      ProtocolKind::kERCWT, ProtocolKind::kLRC,
                                      ProtocolKind::kLRCExt};

std::vector<std::string> litmus_files() {
  std::vector<std::string> files;
  for (const auto& ent :
       std::filesystem::directory_iterator(LRCSIM_LITMUS_DIR)) {
    if (ent.path().extension() == ".litmus") files.push_back(ent.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void run_all_under(ProtocolKind kind) {
  const auto files = litmus_files();
  ASSERT_GE(files.size(), 12u) << "litmus corpus went missing";
  for (const auto& path : files) {
    const LitmusProgram prog = LitmusProgram::parse_file(path);
    for (std::uint64_t seed : {1, 2, 3}) {
      const LitmusResult res = lrc::check::run_litmus(prog, kind, seed);
      for (const auto& f : res.failures) {
        ADD_FAILURE() << f << " (seed " << seed << ")";
      }
      if (res.checker_active) {
        for (const auto& v : res.violations) {
          ADD_FAILURE() << prog.name << " under "
                        << lrc::core::to_string(kind) << " (seed " << seed
                        << "): checker violation: " << v;
        }
        if (prog.expect_drf) {
          EXPECT_EQ(res.races, 0u)
              << prog.name << " is declared DRF but the checker counted "
              << res.races << " race(s) under " << lrc::core::to_string(kind);
        }
      }
    }
  }
}

TEST(Litmus, SC) { run_all_under(ProtocolKind::kSC); }
TEST(Litmus, ERC) { run_all_under(ProtocolKind::kERC); }
TEST(Litmus, ERCWT) { run_all_under(ProtocolKind::kERCWT); }
TEST(Litmus, LRC) { run_all_under(ProtocolKind::kLRC); }
TEST(Litmus, LRCExt) { run_all_under(ProtocolKind::kLRCExt); }

// The consistency obligations must hold for every cache geometry, not just
// the default single L1: the whole corpus re-runs under 2-level private
// stacks (both inclusion policies) for all five protocols. In LRCSIM_CHECK
// builds the checker additionally asserts the inclusion/exclusion contract
// after every handled message and at end of run.
void run_all_under_hier(const lrc::cache::CacheConfig& cfg) {
  const auto files = litmus_files();
  ASSERT_GE(files.size(), 12u) << "litmus corpus went missing";
  for (auto kind : kAllKinds) {
    for (const auto& path : files) {
      const LitmusProgram prog = LitmusProgram::parse_file(path);
      for (std::uint64_t seed : {1, 2, 3}) {
        const LitmusResult res = lrc::check::run_litmus(prog, kind, seed, cfg);
        for (const auto& f : res.failures) {
          ADD_FAILURE() << f << " (hier, " << lrc::core::to_string(kind)
                        << ", seed " << seed << ")";
        }
        if (res.checker_active) {
          for (const auto& v : res.violations) {
            ADD_FAILURE() << prog.name << " under "
                          << lrc::core::to_string(kind) << " (hier, seed "
                          << seed << "): checker violation: " << v;
          }
        }
      }
    }
  }
}

TEST(LitmusHierarchy, TwoLevelInclusive) {
  // Random L1 replacement exercises the seeded-RNG victim path as well.
  auto cfg = lrc::cache::CacheConfig::with_l2(
      16 * 1024, 4, lrc::cache::InclusionPolicy::kInclusive);
  cfg.l1_ways = 2;
  cfg.l1_replacement = lrc::cache::ReplacementKind::kRandom;
  run_all_under_hier(cfg);
}

TEST(LitmusHierarchy, TwoLevelExclusiveWithLlc) {
  auto cfg = lrc::cache::CacheConfig::with_l2(
                 16 * 1024, 4, lrc::cache::InclusionPolicy::kExclusive)
                 .add_llc(16 * 1024, 4);
  cfg.l2_replacement = lrc::cache::ReplacementKind::kFifo;
  run_all_under_hier(cfg);
}

// The parser rejects malformed programs with a location.
TEST(Litmus, ParserRejectsGarbage) {
  EXPECT_THROW(LitmusProgram::parse("procs 2\nvars x\nP0: Q x r0\n", "t"),
               std::runtime_error);
  EXPECT_THROW(LitmusProgram::parse("vars x\nP0: R x r0\n", "t"),
               std::runtime_error);
  EXPECT_THROW(
      LitmusProgram::parse("procs 2\nvars x\nforbid all\n", "t"),
      std::runtime_error);
}

// Guarded conditions key off the recorded lock-grant order.
TEST(Litmus, LockOrderRecorded) {
  const auto prog = LitmusProgram::parse(
      "procs 2\nvars x\nP0: L 0 ; W x 1 ; U 0\nP1: L 0 ; W x 2 ; U 0\n",
      "order");
  const auto res = lrc::check::run_litmus(prog, ProtocolKind::kLRC, 1);
  ASSERT_EQ(res.lock_order.count(0), 1u);
  EXPECT_EQ(res.lock_order.at(0).size(), 2u);
}

}  // namespace
