#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace lrc::sim {
namespace {

TEST(Fiber, RunsToCompletionOnResume) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumeContinues) {
  std::vector<int> trace;
  Fiber f([&] {
    trace.push_back(1);
    Fiber::yield();
    trace.push_back(3);
    Fiber::yield();
    trace.push_back(5);
  });
  f.resume();
  trace.push_back(2);
  f.resume();
  trace.push_back(4);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksRunningFiber) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f([&] {
    seen = Fiber::current();
    Fiber::yield();
  });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
  f.resume();
}

TEST(Fiber, ManyInterleavedFibers) {
  constexpr int kFibers = 64;
  constexpr int kRounds = 10;
  std::vector<int> counters(kFibers, 0);
  std::vector<std::unique_ptr<Fiber>> fibers;
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&counters, i] {
      for (int r = 0; r < kRounds; ++r) {
        ++counters[static_cast<unsigned>(i)];
        Fiber::yield();
      }
    }));
  }
  // Round-robin resume until all complete.
  bool any = true;
  while (any) {
    any = false;
    for (auto& f : fibers) {
      if (!f->finished()) {
        f->resume();
        any = any || !f->finished();
      }
    }
  }
  for (int c : counters) EXPECT_EQ(c, kRounds);
}

TEST(Fiber, DeepStackUsage) {
  // Recursion deep enough to require a real stack but within the 256 KiB
  // default.
  std::function<int(int)> fib = [&](int n) {
    return n < 2 ? n : fib(n - 1) + fib(n - 2);
  };
  int result = 0;
  Fiber f([&] { result = fib(18); });
  f.resume();
  EXPECT_EQ(result, 2584);
}

TEST(Fiber, NestedFunctionCanYield) {
  int stage = 0;
  auto helper = [&stage] {
    stage = 1;
    Fiber::yield();
    stage = 2;
  };
  Fiber f([&] { helper(); });
  f.resume();
  EXPECT_EQ(stage, 1);
  f.resume();
  EXPECT_EQ(stage, 2);
  EXPECT_TRUE(f.finished());
}

}  // namespace
}  // namespace lrc::sim
