// Directed tests of LRC's write-notice acknowledgement collections: each
// writer waits for exactly the notices outstanding at its join time, never
// for later writers' notices (the starvation fix documented in
// docs/PROTOCOL.md).
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "proto/lrc.hpp"

namespace lrc::core {
namespace {

constexpr Cycle kGap = 50'000;

struct CollectionFixture : ::testing::Test {
  CollectionFixture() : m(SystemParams::paper_default(8), ProtocolKind::kLRC) {
    arr = m.alloc<double>(1024, "data");
  }
  proto::Lrc& lrc() { return dynamic_cast<proto::Lrc&>(m.protocol()); }
  LineId line_of(std::size_t i) { return m.amap().line_of(arr.addr(i)); }
  std::uint64_t sent(mesh::MsgKind k) {
    return m.nic().stats().per_kind[static_cast<std::size_t>(k)];
  }
  Machine m;
  SharedArray<double> arr;
};

TEST_F(CollectionFixture, SingleWriterCollectionCompletes) {
  // Three readers cache the line; one writer announces. The writer's
  // release must wait for exactly three notice acks.
  m.run([&](Cpu& cpu) {
    if (cpu.id() >= 1 && cpu.id() <= 3) {
      (void)arr.get(cpu, 0);
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      (void)arr.get(cpu, 0);
      cpu.lock(1);
      arr.put(cpu, 0, 1.0);
      cpu.unlock(1);  // waits for the collection
    }
  });
  EXPECT_EQ(sent(mesh::MsgKind::kWriteNotice), 3u);
  EXPECT_EQ(sent(mesh::MsgKind::kNoticeAck), 3u);
  EXPECT_EQ(sent(mesh::MsgKind::kWriteAck), 1u);
  auto* e = lrc().directory().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->collections.empty());
  EXPECT_EQ(e->notices_outstanding, 0u);
}

TEST_F(CollectionFixture, SecondWriterWithNoNewTargetsAcksAfterOutstanding) {
  // Writer A makes the line Weak (notices to the reader). Writer B joins
  // while everyone is already notified: B's ack depends only on the
  // outstanding notices, and both releases complete.
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 2) {
      (void)arr.get(cpu, 0);
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      (void)arr.get(cpu, 0);
      cpu.lock(1);
      arr.put(cpu, 0, 1.0);
      cpu.unlock(1);
    } else if (cpu.id() == 1) {
      cpu.compute(2 * kGap);
      (void)arr.get(cpu, 0);
      cpu.lock(2);
      arr.put(cpu, 1, 2.0);
      cpu.unlock(2);
    }
  });
  // Every writer got its ack (releases completed — the run finished).
  // B acquired lock 2 first, which invalidated its weak copy, so its write
  // was a miss whose ack rode the data reply (kTagAcked) — only A's ack is
  // a standalone message.
  EXPECT_GE(sent(mesh::MsgKind::kWriteAck), 1u);
  auto* e = lrc().directory().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->collections.empty());
  EXPECT_EQ(e->notices_outstanding, 0u);
}

TEST_F(CollectionFixture, ManyWritersOneHotLineAllComplete) {
  // The locusroute pathology in miniature: every processor repeatedly
  // writes one line and releases. With merged collections this starved;
  // with per-writer countdowns it must finish with bounded acks.
  m.run([&](Cpu& cpu) {
    for (int round = 0; round < 5; ++round) {
      (void)arr.get(cpu, cpu.id());
      cpu.lock(7);
      arr.put(cpu, cpu.id(), static_cast<double>(round));
      cpu.unlock(7);
      cpu.compute(100 * (cpu.id() + 1));
    }
    cpu.barrier(0);
  });
  for (unsigned p = 0; p < 8; ++p) {
    EXPECT_DOUBLE_EQ(m.peek<double>(arr.addr(p)), 4.0);
  }
  lrc().directory().for_each([](LineId, proto::DirEntry& e) {
    EXPECT_TRUE(e.collections.empty());
    EXPECT_EQ(e.notices_outstanding, 0u);
  });
}

TEST_F(CollectionFixture, EarlyWriterDoesNotWaitForLateWriter) {
  // Writer A's release should complete in roughly one notice round trip,
  // even though writer B keeps adding new notices right behind it.
  Cycle a_unlock_elapsed = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() >= 2) {
      (void)arr.get(cpu, 0);  // six readers to notify
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      (void)arr.get(cpu, 0);
      cpu.lock(1);
      arr.put(cpu, 0, 1.0);
      const Cycle before = cpu.now();
      cpu.unlock(1);
      a_unlock_elapsed = cpu.now() - before;
    } else if (cpu.id() == 1) {
      // B floods the same line with writes from a different lock, starting
      // just after A.
      cpu.compute(kGap + 200);
      (void)arr.get(cpu, 0);
      for (int i = 0; i < 10; ++i) {
        cpu.lock(2);
        arr.put(cpu, 1, static_cast<double>(i));
        cpu.unlock(2);
      }
    }
  });
  // A's drain is bounded by its own collection (~1 round trip + processing),
  // far below the cost of waiting for B's ten subsequent collections.
  EXPECT_LT(a_unlock_elapsed, 3000u);
}

TEST_F(CollectionFixture, EvictedSharerStillAcks) {
  // A sharer whose copy is evicted before the notice arrives must still
  // acknowledge so the writer's release can complete.
  const std::uint32_t sets = m.params().cache_bytes / m.params().line_bytes;
  const std::size_t stride_elems =
      static_cast<std::size_t>(sets) * m.params().line_bytes / sizeof(double);
  auto big = m.alloc<double>(stride_elems + 64, "big");
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)big.get(cpu, 0);
      (void)big.get(cpu, stride_elems);  // evict it again right away
      cpu.compute(3 * kGap);
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      (void)big.get(cpu, 0);
      cpu.lock(1);
      big.put(cpu, 0, 1.0);
      cpu.unlock(1);  // must not hang on the evicted sharer
    }
  });
  EXPECT_DOUBLE_EQ(m.peek<double>(big.addr(0)), 1.0);
}

}  // namespace
}  // namespace lrc::core
