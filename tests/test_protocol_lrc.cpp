// Directed scenario tests for the paper's lazy release consistency protocol
// (§2): multiple concurrent writers, eager notices, lazy invalidations.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "proto/lrc.hpp"

namespace lrc::core {
namespace {

constexpr Cycle kGap = 50'000;

struct LrcFixture : ::testing::Test {
  LrcFixture() : m(SystemParams::paper_default(8), ProtocolKind::kLRC) {
    arr = m.alloc<double>(1024, "data");
  }
  proto::Lrc& lrc() { return dynamic_cast<proto::Lrc&>(m.protocol()); }
  proto::Directory& dir() { return lrc().directory(); }
  LineId line_of(std::size_t i) { return m.amap().line_of(arr.addr(i)); }
  std::uint64_t sent(mesh::MsgKind k) {
    return m.nic().stats().per_kind[static_cast<std::size_t>(k)];
  }

  Machine m;
  SharedArray<double> arr;
};

TEST_F(LrcFixture, WriteToSharedLineMakesItWeakButReadersKeepCopies) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)arr.get(cpu, 0);
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      arr.put(cpu, 0, 1.0);
      cpu.compute(kGap);
    }
  });
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kWeak);
  EXPECT_TRUE(e->is_writer(0));
  EXPECT_TRUE(e->is_sharer(1));
  // The defining laziness: the reader STILL caches the line...
  EXPECT_NE(m.cpu(1).dcache().find(line_of(0)), nullptr);
  // ...with the notice buffered for its next acquire.
  EXPECT_TRUE(lrc().pending_invals(1).count(line_of(0)) > 0);
  EXPECT_EQ(sent(mesh::MsgKind::kWriteNotice), 1u);
  EXPECT_EQ(sent(mesh::MsgKind::kNoticeAck), 1u);
}

TEST_F(LrcFixture, AcquireAppliesBufferedInvalidations) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)arr.get(cpu, 0);
      cpu.compute(3 * kGap);
      cpu.lock(1);
      cpu.unlock(1);
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      arr.put(cpu, 0, 1.0);
    }
  });
  EXPECT_EQ(m.cpu(1).dcache().find(line_of(0)), nullptr);
  EXPECT_TRUE(lrc().pending_invals(1).empty());
  EXPECT_GE(sent(mesh::MsgKind::kInvalNotify), 1u);
  // The home dropped the reader from the sharer list.
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->is_sharer(1));
  EXPECT_EQ(e->state, proto::DirState::kDirty);  // only the writer remains
}

TEST_F(LrcFixture, MultipleConcurrentWritersNoForwarding) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      arr.put(cpu, 0, 1.0);
    } else if (cpu.id() == 1) {
      cpu.compute(kGap);
      arr.put(cpu, 1, 2.0);  // same line, different word
      cpu.compute(kGap);
    }
  });
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kWeak);
  EXPECT_TRUE(e->is_writer(0));
  EXPECT_TRUE(e->is_writer(1));
  EXPECT_EQ(e->writer_count(), 2u);
  // The home never forwards: no 3-hop machinery at all.
  EXPECT_EQ(sent(mesh::MsgKind::kFwdReadReq), 0u);
  EXPECT_EQ(sent(mesh::MsgKind::kFwdReadExReq), 0u);
  EXPECT_EQ(sent(mesh::MsgKind::kInval), 0u);
}

TEST_F(LrcFixture, ReadOfDirtyLineIsTwoHopAndNotifiesWriter) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      arr.put(cpu, 0, 1.0);
    } else if (cpu.id() == 1) {
      cpu.compute(kGap);
      (void)arr.get(cpu, 0);
      cpu.compute(kGap);
    }
  });
  // No forwarding (the paper's gauss 3-hop elimination)...
  EXPECT_EQ(sent(mesh::MsgKind::kFwdReadReq), 0u);
  // ...but the current writer got the footnote-1 notice,
  EXPECT_EQ(sent(mesh::MsgKind::kWriteNotice), 1u);
  EXPECT_TRUE(lrc().pending_invals(0).count(line_of(0)) > 0);
  // and the reader is marked notified via its weak-tagged reply.
  EXPECT_TRUE(lrc().pending_invals(1).count(line_of(0)) > 0);
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kWeak);
}

TEST_F(LrcFixture, UpgradeWriteRetiresImmediately) {
  Cycle write_elapsed = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    (void)arr.get(cpu, 512);  // read-only copy
    const Cycle before = cpu.now();
    arr.put(cpu, 512, 1.0);   // write to read-only line
    write_elapsed = cpu.now() - before;
  });
  // No ownership wait, no write-buffer entry: the paper's elimination of
  // write-after-read stalls.
  EXPECT_LE(write_elapsed, 2u);
  EXPECT_EQ(m.cpu(0).wb().stats().enqueued, 0u);
  EXPECT_EQ(m.report().cache.upgrade_misses, 1u);
}

TEST_F(LrcFixture, ReleaseWaitsForWriteThroughAcks) {
  Cycle unlock_elapsed = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    cpu.lock(1);
    arr.put(cpu, 512, 1.0);
    const Cycle before = cpu.now();
    cpu.unlock(1);
    unlock_elapsed = cpu.now() - before;
  });
  EXPECT_GT(unlock_elapsed, 50u);
  EXPECT_GE(sent(mesh::MsgKind::kWriteThrough), 1u);
  EXPECT_GE(sent(mesh::MsgKind::kWriteThroughAck), 1u);
  EXPECT_EQ(m.cpu(0).cb().size(), 0u);
  EXPECT_EQ(m.cpu(0).wt_outstanding, 0u);
}

TEST_F(LrcFixture, WeakLineRevertsWhenWriterEvicts) {
  const std::uint32_t sets = m.params().cache_bytes / m.params().line_bytes;
  const std::size_t stride_elems =
      static_cast<std::size_t>(sets) * m.params().line_bytes / sizeof(double);
  auto big = m.alloc<double>(stride_elems * 2 + 16, "big");
  const LineId line = m.amap().line_of(big.addr(0));
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)big.get(cpu, 0);  // reader
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      big.put(cpu, 0, 1.0);              // line goes Weak
      cpu.compute(kGap);
      (void)big.get(cpu, stride_elems);  // evicts the written line
      cpu.compute(kGap);
    }
  });
  auto* e = dir().find(line);
  ASSERT_NE(e, nullptr);
  // Writer evicted: "if a block no longer has any processors writing it,
  // it reverts to the shared state".
  EXPECT_EQ(e->state, proto::DirState::kShared);
  EXPECT_FALSE(e->is_writer(0));
  EXPECT_TRUE(e->is_sharer(1));
  EXPECT_GE(sent(mesh::MsgKind::kEvictNotify), 1u);
}

TEST_F(LrcFixture, UncachedReversionWhenAllDropOut) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)arr.get(cpu, 0);
      cpu.compute(3 * kGap);
      cpu.lock(1);  // applies the buffered invalidation
      cpu.unlock(1);
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      arr.put(cpu, 0, 1.0);
      cpu.compute(3 * kGap);
      cpu.lock(2);  // writer's own acquire invalidates its weak line too
      cpu.unlock(2);
    }
  });
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  // Writer 0 was notified (footnote path) when... it was the only writer —
  // its copy stays valid (never notified), so it remains Dirty owner,
  // unless it was notified. Accept either Dirty-with-0 or Uncached.
  if (e->state == proto::DirState::kDirty) {
    EXPECT_TRUE(e->is_writer(0));
  } else {
    EXPECT_EQ(e->state, proto::DirState::kUncached);
  }
  EXPECT_FALSE(e->is_sharer(1));
}

TEST_F(LrcFixture, BarrierActsAsReleaseAndAcquire) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      arr.put(cpu, 0, 42.0);
    } else if (cpu.id() == 1) {
      (void)arr.get(cpu, 0);  // cache it before the write completes? ordered
    }
    cpu.barrier(0);
    // After the barrier everyone sees the written value: the barrier's
    // release flushed the writer's data and its acquire side invalidated
    // stale copies.
    EXPECT_DOUBLE_EQ(arr.get(cpu, 0), 42.0);
  });
  // Any notice still buffered must refer to a line actually cached (the
  // post-barrier refetch of the still-Weak line re-buffers one — that is
  // correct; dangling entries would not be).
  for (NodeId p = 0; p < m.nprocs(); ++p) {
    for (LineId l : lrc().pending_invals(p)) {
      EXPECT_NE(m.cpu(p).dcache().find(l), nullptr);
    }
  }
}

TEST_F(LrcFixture, WriteMissFetchesDataWithoutOwnership) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)arr.get(cpu, 0);
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      arr.put(cpu, 0, 1.0);  // write miss on a shared line
      cpu.compute(kGap);
    }
  });
  // Data came with kReadExReply but reader 1 was NOT invalidated.
  EXPECT_GE(sent(mesh::MsgKind::kReadExReply), 1u);
  EXPECT_EQ(sent(mesh::MsgKind::kInval), 0u);
  EXPECT_NE(m.cpu(1).dcache().find(line_of(0)), nullptr);
}

TEST_F(LrcFixture, WriteRunsThroughCoalescingBuffer) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    (void)arr.get(cpu, 0);  // fill the line read-only first
    arr.put(cpu, 0, 1.0);   // upgrade: enters the coalescing buffer
    arr.put(cpu, 1, 2.0);   // same line: merges
    arr.put(cpu, 2, 3.0);
  });
  const auto& cb = m.cpu(0).cb().stats();
  EXPECT_EQ(cb.writes, 3u);
  EXPECT_EQ(cb.merges, 2u);  // consecutive writes to one line coalesce
}

}  // namespace
}  // namespace lrc::core
