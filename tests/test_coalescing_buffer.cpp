#include "cache/coalescing_buffer.hpp"

#include <gtest/gtest.h>

namespace lrc::cache {
namespace {

TEST(CoalescingBuffer, MergesWritesToSameLine) {
  CoalescingBuffer cb(16);
  EXPECT_FALSE(cb.add(10, 0x1).has_value());
  EXPECT_FALSE(cb.add(10, 0x2).has_value());
  EXPECT_EQ(cb.size(), 1u);
  EXPECT_EQ(cb.stats().merges, 1u);
  auto e = cb.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->words, 0x3u);
}

TEST(CoalescingBuffer, CapacityEvictionIsFifo) {
  CoalescingBuffer cb(4);
  for (LineId l = 0; l < 4; ++l) EXPECT_FALSE(cb.add(l, 1).has_value());
  auto victim = cb.add(100, 1);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 0u);  // oldest
  EXPECT_EQ(cb.size(), 4u);
  EXPECT_EQ(cb.stats().capacity_flushes, 1u);
}

TEST(CoalescingBuffer, MergeRefreshesNothingKeepsFifoOrder) {
  CoalescingBuffer cb(4);
  for (LineId l = 0; l < 4; ++l) cb.add(l, 1);
  cb.add(0, 2);  // merge into oldest entry, order unchanged
  auto victim = cb.add(100, 1);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 0u);
  EXPECT_EQ(victim->words, 3u);
}

TEST(CoalescingBuffer, PopDrainsInOrder) {
  CoalescingBuffer cb(16);
  cb.add(5, 1);
  cb.add(6, 1);
  EXPECT_EQ(cb.pop()->line, 5u);
  EXPECT_EQ(cb.pop()->line, 6u);
  EXPECT_FALSE(cb.pop().has_value());
  EXPECT_TRUE(cb.empty());
}

TEST(CoalescingBuffer, PopLineExtractsSpecificEntry) {
  CoalescingBuffer cb(16);
  cb.add(5, 1);
  cb.add(6, 2);
  cb.add(7, 4);
  auto e = cb.pop_line(6);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->words, 2u);
  EXPECT_EQ(cb.size(), 2u);
  EXPECT_FALSE(cb.pop_line(6).has_value());
}

TEST(CoalescingBuffer, PaperConfigurationIsSixteenEntries) {
  CoalescingBuffer cb(16);
  EXPECT_EQ(cb.capacity(), 16u);
}

}  // namespace
}  // namespace lrc::cache
