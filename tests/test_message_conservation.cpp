// Message-conservation properties: every request pairs with its response
// class, notices pair with acks, and nothing leaks. Checked over randomized
// race-free programs per protocol.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "sim/rng.hpp"

namespace lrc::core {
namespace {

using mesh::MsgKind;

std::uint64_t kind_count(const Report& r, MsgKind k) {
  return r.nic.per_kind[static_cast<std::size_t>(k)];
}

Report run_random(ProtocolKind kind, std::uint64_t seed) {
  Machine m(SystemParams::test_scale(8), kind);
  constexpr unsigned kSlice = 48;
  auto data = m.alloc<double>(8 * kSlice, "slices");
  auto counters = m.alloc<std::int64_t>(4, "counters");
  m.run([&](Cpu& cpu) {
    sim::Rng rng(seed * 31 + cpu.id());
    const unsigned base = cpu.id() * kSlice;
    for (unsigned op = 0; op < 120; ++op) {
      switch (rng.below(4)) {
        case 0:
          data.put(cpu, base + rng.below(kSlice),
                   static_cast<double>(op));
          break;
        case 1:
          (void)data.get(cpu, rng.below(8 * kSlice));
          break;
        case 2: {
          const SyncId lk = static_cast<SyncId>(rng.below(4));
          cpu.lock(50 + lk);
          counters.put(cpu, lk, counters.get(cpu, lk) + 1);
          cpu.unlock(50 + lk);
          break;
        }
        case 3:
          cpu.compute(1 + rng.below(30));
          break;
      }
      if ((op + 1) % 40 == 0) cpu.barrier(0);
    }
  });
  return m.report();
}

class Conservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Conservation, SyncMessagesBalance) {
  for (auto kind : {ProtocolKind::kSC, ProtocolKind::kERC, ProtocolKind::kLRC,
                    ProtocolKind::kLRCExt}) {
    const Report r = run_random(kind, GetParam());
    // Every lock request is eventually granted exactly once.
    EXPECT_EQ(kind_count(r, MsgKind::kLockReq),
              kind_count(r, MsgKind::kLockGrant))
        << to_string(kind);
    EXPECT_EQ(kind_count(r, MsgKind::kLockGrant), r.lock_acquires)
        << to_string(kind);
    // Barrier releases = arrivals = episodes * processors.
    EXPECT_EQ(kind_count(r, MsgKind::kBarrierArrive),
              kind_count(r, MsgKind::kBarrierRelease))
        << to_string(kind);
    EXPECT_EQ(kind_count(r, MsgKind::kBarrierArrive),
              r.barrier_episodes * r.nprocs)
        << to_string(kind);
  }
}

TEST_P(Conservation, LrcNoticeAndWriteThroughBalance) {
  for (auto kind : {ProtocolKind::kLRC, ProtocolKind::kLRCExt}) {
    const Report r = run_random(kind, GetParam());
    EXPECT_EQ(kind_count(r, MsgKind::kWriteNotice),
              kind_count(r, MsgKind::kNoticeAck))
        << to_string(kind);
    EXPECT_EQ(kind_count(r, MsgKind::kWriteThrough),
              kind_count(r, MsgKind::kWriteThroughAck))
        << to_string(kind);
    // Every data request got exactly one data reply.
    EXPECT_EQ(kind_count(r, MsgKind::kReadReq),
              kind_count(r, MsgKind::kReadReply))
        << to_string(kind);
    // LRC never uses the MSI machinery.
    EXPECT_EQ(kind_count(r, MsgKind::kInval), 0u) << to_string(kind);
    EXPECT_EQ(kind_count(r, MsgKind::kFwdReadReq), 0u) << to_string(kind);
    EXPECT_EQ(kind_count(r, MsgKind::kFwdReadExReq), 0u) << to_string(kind);
    EXPECT_EQ(kind_count(r, MsgKind::kWritebackData), 0u) << to_string(kind);
  }
}

TEST_P(Conservation, MsiInvalBalance) {
  for (auto kind : {ProtocolKind::kSC, ProtocolKind::kERC}) {
    const Report r = run_random(kind, GetParam());
    // Plain invalidations are acked 1:1 (ownership-transfer and NACK acks
    // arrive without a preceding kInval, so acks >= invals).
    EXPECT_GE(kind_count(r, MsgKind::kInvalAck),
              kind_count(r, MsgKind::kInval))
        << to_string(kind);
    // MSI never uses the LRC machinery.
    EXPECT_EQ(kind_count(r, MsgKind::kWriteNotice), 0u) << to_string(kind);
    EXPECT_EQ(kind_count(r, MsgKind::kWriteThrough), 0u) << to_string(kind);
    EXPECT_EQ(kind_count(r, MsgKind::kWriteReq), 0u) << to_string(kind);
    EXPECT_EQ(kind_count(r, MsgKind::kEvictNotify), 0u) << to_string(kind);
  }
}

TEST_P(Conservation, SequentialConsistencyHasNoBufferedWrites) {
  const Report r = run_random(ProtocolKind::kSC, GetParam());
  // SC commits each write before proceeding: the write category reflects
  // full stalls and the write buffer never coalesces anything.
  EXPECT_EQ(kind_count(r, MsgKind::kWriteThrough), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Conservation,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace lrc::core
