// Directed scenario tests for the lazier variant: write notices are
// buffered locally and sent at release (or eviction) time.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "proto/lrc.hpp"

namespace lrc::core {
namespace {

constexpr Cycle kGap = 50'000;

struct LrcExtFixture : ::testing::Test {
  LrcExtFixture() : m(SystemParams::paper_default(8), ProtocolKind::kLRCExt) {
    arr = m.alloc<double>(1024, "data");
  }
  proto::LrcExt& ext() { return dynamic_cast<proto::LrcExt&>(m.protocol()); }
  proto::Directory& dir() { return ext().directory(); }
  LineId line_of(std::size_t i) { return m.amap().line_of(arr.addr(i)); }
  std::uint64_t sent(mesh::MsgKind k) {
    return m.nic().stats().per_kind[static_cast<std::size_t>(k)];
  }

  Machine m;
  SharedArray<double> arr;
};

TEST_F(LrcExtFixture, UpgradeWriteSendsNothingUntilRelease) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    (void)arr.get(cpu, 0);
    cpu.compute(kGap);
    arr.put(cpu, 0, 1.0);
    // Mid-run: the write is buffered locally, nothing announced.
    EXPECT_EQ(sent(mesh::MsgKind::kWriteReq), 0u);
    EXPECT_TRUE(ext().delayed(0).count(line_of(0)) > 0);
    cpu.lock(1);
    cpu.unlock(1);  // release flushes the delayed notice
    EXPECT_EQ(sent(mesh::MsgKind::kWriteReq), 1u);
    EXPECT_TRUE(ext().delayed(0).empty());
  });
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->is_writer(0));
}

TEST_F(LrcExtFixture, WriteMissFetchesWithPlainRead) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    arr.put(cpu, 512, 1.0);  // miss on an uncached line
    cpu.compute(kGap);
    EXPECT_EQ(sent(mesh::MsgKind::kWriteReq), 0u);
    EXPECT_EQ(sent(mesh::MsgKind::kReadReq), 1u);
  });
  // After the program-end drain the write was announced.
  EXPECT_EQ(sent(mesh::MsgKind::kWriteReq), 1u);
  auto* e = dir().find(line_of(512));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kDirty);
}

TEST_F(LrcExtFixture, SharersGetNoticesOnlyAtRelease) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)arr.get(cpu, 0);
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      (void)arr.get(cpu, 0);
      arr.put(cpu, 0, 1.0);
      cpu.compute(kGap);
      // Still no notice to the reader...
      EXPECT_EQ(sent(mesh::MsgKind::kWriteNotice), 0u);
      cpu.lock(1);
      cpu.unlock(1);
      cpu.compute(kGap);
      // ...but the release pushed it out.
      EXPECT_EQ(sent(mesh::MsgKind::kWriteNotice), 1u);
    }
  });
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kWeak);
}

TEST_F(LrcExtFixture, EvictionFlushesDelayedWrite) {
  const std::uint32_t sets = m.params().cache_bytes / m.params().line_bytes;
  const std::size_t stride_elems =
      static_cast<std::size_t>(sets) * m.params().line_bytes / sizeof(double);
  auto big = m.alloc<double>(stride_elems * 2 + 16, "big");
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    (void)big.get(cpu, 0);
    arr.put(cpu, 0, 0.0);  // noise in another set (keep line 0 resident)
    big.put(cpu, 0, 1.0);  // delayed write
    EXPECT_EQ(sent(mesh::MsgKind::kWriteReq), 0u);
    (void)big.get(cpu, stride_elems);  // evicts the delayed-written line
    cpu.compute(kGap);
    EXPECT_GE(sent(mesh::MsgKind::kWriteReq), 1u);
    EXPECT_TRUE(ext().delayed(0).count(m.amap().line_of(big.addr(0))) == 0);
  });
}

TEST_F(LrcExtFixture, ReleaseIsMoreExpensiveThanBaseLrc) {
  // The paper's central negative result in miniature: with a sharer to
  // notify, the lazier protocol pays the full notice round trip inside the
  // release, while base LRC overlapped it with computation.
  auto measure = [](ProtocolKind kind) {
    Machine m(SystemParams::paper_default(8), kind);
    auto arr = m.alloc<double>(1024, "data");
    Cycle unlock_elapsed = 0;
    m.run([&](Cpu& cpu) {
      if (cpu.id() == 1) {
        (void)arr.get(cpu, 0);
      } else if (cpu.id() == 0) {
        cpu.compute(kGap);
        (void)arr.get(cpu, 0);
        cpu.lock(1);
        arr.put(cpu, 0, 1.0);
        cpu.compute(2000);  // base LRC hides the notice behind this
        const Cycle before = cpu.now();
        cpu.unlock(1);
        unlock_elapsed = cpu.now() - before;
      }
    });
    return unlock_elapsed;
  };
  EXPECT_GT(measure(ProtocolKind::kLRCExt), measure(ProtocolKind::kLRC));
}

TEST_F(LrcExtFixture, AcquireInvalidationFlushesDelayedWritesFirst) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      (void)arr.get(cpu, 0);
      arr.put(cpu, 0, 1.0);  // delayed
      cpu.compute(2 * kGap);
      cpu.lock(1);  // by now a notice for line 0 is pending (from cpu 1)
      cpu.unlock(1);
      cpu.compute(kGap);
    } else if (cpu.id() == 1) {
      cpu.compute(kGap);
      (void)arr.get(cpu, 0);
      arr.put(cpu, 1, 2.0);   // second writer; announces at its release
      cpu.lock(2);
      cpu.unlock(2);
    }
  });
  // Everything consistent at the end: no delayed writes left anywhere.
  EXPECT_TRUE(ext().delayed(0).empty());
  EXPECT_TRUE(ext().delayed(1).empty());
}

TEST_F(LrcExtFixture, RepeatWritesToAnnouncedLineDoNotReannounce) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    (void)arr.get(cpu, 0);
    arr.put(cpu, 0, 1.0);
    cpu.lock(1);
    cpu.unlock(1);  // announce
    const auto before = sent(mesh::MsgKind::kWriteReq);
    arr.put(cpu, 1, 2.0);  // same line, still registered as writer
    cpu.lock(1);
    cpu.unlock(1);
    EXPECT_EQ(sent(mesh::MsgKind::kWriteReq), before);
  });
}

}  // namespace
}  // namespace lrc::core
