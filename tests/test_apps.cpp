// End-to-end application tests: every SPLASH-style workload validates its
// computation under every protocol at test scale.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "core/machine.hpp"

namespace lrc::apps {
namespace {

using core::ProtocolKind;

struct Case {
  const char* app;
  ProtocolKind kind;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string n = std::string(info.param.app) + "_" +
                  std::string(core::to_string(info.param.kind));
  for (auto& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

class AppRun : public ::testing::TestWithParam<Case> {};

TEST_P(AppRun, ValidatesAtTestScale) {
  const auto* info = find_app(GetParam().app);
  ASSERT_NE(info, nullptr);
  core::Machine m(core::SystemParams::test_scale(8), GetParam().kind);
  AppConfig cfg;
  cfg.n = info->test_n;
  cfg.steps = info->test_steps;
  const AppResult res = info->run(m, cfg);
  EXPECT_TRUE(res.valid) << res.detail;
  const auto r = m.report();
  EXPECT_GT(r.execution_time, 0u);
  EXPECT_GT(r.cache.references(), 0u);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& a : registry()) {
    for (auto kind : {ProtocolKind::kSC, ProtocolKind::kERC,
                      ProtocolKind::kLRC, ProtocolKind::kLRCExt}) {
      cases.push_back(Case{a.name.data(), kind});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAppsAllProtocols, AppRun,
                         ::testing::ValuesIn(all_cases()), case_name);

TEST(Apps, RegistryHasSevenPaperApplications) {
  ASSERT_EQ(registry().size(), 7u);
  EXPECT_NE(find_app("gauss"), nullptr);
  EXPECT_NE(find_app("fft"), nullptr);
  EXPECT_NE(find_app("blu"), nullptr);
  EXPECT_NE(find_app("barnes"), nullptr);
  EXPECT_NE(find_app("cholesky"), nullptr);
  EXPECT_NE(find_app("locusroute"), nullptr);
  EXPECT_NE(find_app("mp3d"), nullptr);
  EXPECT_EQ(find_app("nonesuch"), nullptr);
}

TEST(Apps, ExecutionTimeIsDeterministic) {
  auto run_once = [] {
    core::Machine m(core::SystemParams::test_scale(4), ProtocolKind::kLRC);
    AppConfig cfg;
    cfg.n = 32;
    run_gauss(m, cfg);
    return m.report().execution_time;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Apps, ScalesWithProcessorCount) {
  auto time_with = [](unsigned procs) {
    core::Machine m(core::SystemParams::paper_default(procs),
                    ProtocolKind::kLRC);
    AppConfig cfg;
    cfg.n = 64;
    run_gauss(m, cfg);
    return m.report().execution_time;
  };
  // More processors must help substantially on gauss at this size.
  EXPECT_LT(time_with(16), time_with(1));
}

TEST(Apps, SeedChangesWorkload) {
  auto checksum_with = [](std::uint64_t seed) {
    core::Machine m(core::SystemParams::test_scale(4), ProtocolKind::kSC);
    AppConfig cfg;
    cfg.n = 32;
    cfg.seed = seed;
    run_gauss(m, cfg);
    return m.report().cache.references();
  };
  // Different seeds give different matrices; reference streams are equal in
  // shape, so just assert both run and validate (checked inside run).
  EXPECT_GT(checksum_with(1), 0u);
  EXPECT_GT(checksum_with(2), 0u);
}

TEST(Apps, RacyAppsStillValidateUnderLaziness) {
  // mp3d and locusroute have intentional data races; the lazy protocols
  // must still produce an acceptable solution (paper §4.2 discussion).
  for (const char* name : {"locusroute", "mp3d"}) {
    const auto* info = find_app(name);
    core::Machine m(core::SystemParams::test_scale(8), ProtocolKind::kLRCExt);
    AppConfig cfg;
    cfg.n = info->test_n;
    cfg.steps = info->test_steps;
    const AppResult res = info->run(m, cfg);
    EXPECT_TRUE(res.valid) << name << ": " << res.detail;
  }
}

}  // namespace
}  // namespace lrc::apps
