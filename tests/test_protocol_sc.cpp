// Directed scenario tests for the sequentially-consistent MSI baseline.
// Multi-processor orderings are forced with large compute() staggers.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "proto/msi.hpp"

namespace lrc::core {
namespace {

constexpr Cycle kGap = 50'000;  // far larger than any single transaction

struct ScFixture : ::testing::Test {
  ScFixture() : m(SystemParams::paper_default(8), ProtocolKind::kSC) {
    arr = m.alloc<double>(1024, "data");
  }
  proto::Directory& dir() {
    return dynamic_cast<proto::ProtocolBase&>(m.protocol()).directory();
  }
  LineId line_of(std::size_t i) { return m.amap().line_of(arr.addr(i)); }

  Machine m;
  SharedArray<double> arr;
};

TEST_F(ScFixture, ReadMissMakesLineShared) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) (void)arr.get(cpu, 0);
  });
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kShared);
  EXPECT_TRUE(e->is_sharer(0));
  EXPECT_EQ(e->sharer_count(), 1u);
}

TEST_F(ScFixture, MultipleReadersAllBecomeSharers) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() < 4) (void)arr.get(cpu, 0);
  });
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kShared);
  EXPECT_EQ(e->sharer_count(), 4u);
}

TEST_F(ScFixture, WriteMakesLineDirtyAndInvalidatesReaders) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)arr.get(cpu, 0);
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      arr.put(cpu, 0, 1.0);
    }
  });
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kDirty);
  EXPECT_EQ(e->owner(), 0u);
  // The reader's copy is gone — eager invalidation.
  EXPECT_EQ(m.cpu(1).dcache().find(line_of(0)), nullptr);
  EXPECT_EQ(m.cpu(1).dcache().stats().invalidations, 1u);
  EXPECT_GE(m.report().nic.per_kind[static_cast<std::size_t>(
                mesh::MsgKind::kInval)],
            1u);
}

TEST_F(ScFixture, DirtyReadUsesThreeHopForwarding) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      arr.put(cpu, 0, 1.0);
    } else if (cpu.id() == 1) {
      cpu.compute(kGap);
      EXPECT_DOUBLE_EQ(arr.get(cpu, 0), 1.0);
    }
  });
  const auto& kinds = m.report().nic.per_kind;
  EXPECT_EQ(kinds[static_cast<std::size_t>(mesh::MsgKind::kFwdReadReq)], 1u);
  EXPECT_EQ(kinds[static_cast<std::size_t>(mesh::MsgKind::kFwdDataReply)], 1u);
  EXPECT_EQ(kinds[static_cast<std::size_t>(mesh::MsgKind::kSharingWriteback)],
            1u);
  // Afterwards: owner demoted, both share.
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kShared);
  EXPECT_TRUE(e->is_sharer(0));
  EXPECT_TRUE(e->is_sharer(1));
  auto* cl = m.cpu(0).dcache().find(line_of(0));
  ASSERT_NE(cl, nullptr);
  EXPECT_EQ(cl->state, cache::LineState::kReadOnly);
}

TEST_F(ScFixture, DirtyWriteTransfersOwnership) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      arr.put(cpu, 0, 1.0);
    } else if (cpu.id() == 1) {
      cpu.compute(kGap);
      arr.put(cpu, 1, 2.0);  // same line
    }
  });
  auto* e = dir().find(line_of(0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kDirty);
  EXPECT_EQ(e->owner(), 1u);
  EXPECT_EQ(m.cpu(0).dcache().find(line_of(0)), nullptr);
  const auto& kinds = m.report().nic.per_kind;
  EXPECT_EQ(kinds[static_cast<std::size_t>(mesh::MsgKind::kFwdReadExReq)], 1u);
}

TEST_F(ScFixture, UpgradeFromReadOnlyAvoidsDataTransfer) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      (void)arr.get(cpu, 0);
      cpu.compute(kGap);
      arr.put(cpu, 0, 3.0);
    }
  });
  const auto& kinds = m.report().nic.per_kind;
  EXPECT_EQ(kinds[static_cast<std::size_t>(mesh::MsgKind::kUpgradeReq)], 1u);
  EXPECT_EQ(kinds[static_cast<std::size_t>(mesh::MsgKind::kUpgradeAck)], 1u);
  EXPECT_EQ(m.report().cache.upgrade_misses, 1u);
}

TEST_F(ScFixture, DirtyEvictionWritesBack) {
  // Write a line, then walk addresses that map to the same cache set.
  const std::uint32_t sets =
      m.params().cache_bytes / m.params().line_bytes;
  const std::size_t stride_elems =
      static_cast<std::size_t>(sets) * m.params().line_bytes / sizeof(double);
  auto big = m.alloc<double>(stride_elems * 2 + 16, "big");
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    big.put(cpu, 0, 1.0);                 // dirty line in set 0
    (void)big.get(cpu, stride_elems);     // conflicting line, evicts it
  });
  const auto& kinds = m.report().nic.per_kind;
  EXPECT_EQ(kinds[static_cast<std::size_t>(mesh::MsgKind::kWritebackData)],
            1u);
  auto* e = dir().find(m.amap().line_of(big.addr(0)));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kUncached);
}

TEST_F(ScFixture, WritesStallTheProcessor) {
  // Under SC a remote write miss costs a full round trip, visible as write
  // stall time.
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) arr.put(cpu, 512, 1.0);
  });
  EXPECT_GT(m.cpu(0).breakdown()[stats::StallKind::kWrite], 100u);
}

TEST_F(ScFixture, NoWeakStateEverAppears) {
  m.run([&](Cpu& cpu) {
    for (std::size_t i = cpu.id(); i < 256; i += cpu.nprocs()) {
      arr.put(cpu, i, 1.0);
    }
    cpu.barrier(0);
    for (std::size_t i = 0; i < 256; ++i) (void)arr.get(cpu, i);
  });
  dir().for_each([](LineId, proto::DirEntry& e) {
    EXPECT_NE(e.state, proto::DirState::kWeak);
  });
}

}  // namespace
}  // namespace lrc::core
