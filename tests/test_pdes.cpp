// Conservative parallel-DES sharding (DESIGN.md §10).
//
// The contract under test: a sharded run (--shards N, N >= 1) uses the keyed
// engine whose (when, key) event order is a pure function of the program, so
// every statistic is bit-identical for ANY shard count and ANY host-thread
// interleaving. (Keyed runs are not required to match the legacy serial
// engine, whose same-cycle tie order differs; shards=0 keeps that engine and
// its goldens byte-for-byte.)
//
// Excluded from the sharded digest, by design:
//  - miss_classes: the classifier keeps one global access stamp, so class
//    attribution depends on the wall-clock interleaving of threads. The
//    *counts* that feed it (hits/misses/messages) are all pinned.
//  - nic.batched_arrivals: arrival batching is a scheduling-order heuristic;
//    cross-shard mailbox drains can batch differently than in-window sends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "check/litmus.hpp"
#include "core/report.hpp"
#include "mesh/topology.hpp"
#include "report_digest.hpp"

namespace lrc {
namespace {

using check::LitmusProgram;
using check::LitmusResult;
using check::LitmusRunOptions;
using core::ProtocolKind;

// ---- Topology partitioning --------------------------------------------------

TEST(ShardPartition, BalancedContiguous) {
  mesh::Topology t(8);
  const auto part = t.partition(3);  // 3 does not divide 8
  ASSERT_EQ(part.size(), 8u);
  std::map<unsigned, unsigned> sizes;
  for (NodeId n = 0; n < 8; ++n) ++sizes[part[n]];
  ASSERT_EQ(sizes.size(), 3u);
  for (const auto& [s, cnt] : sizes) {
    EXPECT_GE(cnt, 2u) << "shard " << s;
    EXPECT_LE(cnt, 3u) << "shard " << s;
  }
  // Contiguous in row-major node order: the shard index never decreases.
  for (NodeId n = 1; n < 8; ++n) EXPECT_GE(part[n], part[n - 1]);
}

TEST(ShardPartition, OneNodeShards) {
  mesh::Topology t(4);
  const auto part = t.partition(4);
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(part[n], n);
  // More shards than nodes clamps to one node per shard.
  const auto over = t.partition(9);
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(over[n], n);
}

TEST(ShardPartition, CrossShardHops) {
  mesh::Topology t(64);  // 8x8
  // Single shard: no cross pair exists.
  EXPECT_EQ(t.min_cross_shard_hops(t.partition(1)), 0u);
  // Any multi-shard split of a connected mesh has an adjacent cross pair.
  EXPECT_EQ(t.min_cross_shard_hops(t.partition(2)), 1u);
  EXPECT_EQ(t.min_cross_shard_hops(t.partition(8)), 1u);
}

// ---- Whole-simulation determinism across shard counts ----------------------

// FNV-1a digest over every deterministic Report field (see file comment for
// the two excluded order-heuristic counters; tests/report_digest.hpp).
std::uint64_t sharded_digest(const core::Report& r) {
  return testutil::sharded_report_digest(r);
}

bench::Options pdes_options(unsigned shards) {
  bench::Options opt;
  opt.scale = bench::Scale::kTest;
  opt.seed = 7;
  opt.validate = true;  // sharded runs must still compute correct results
  opt.shards = shards;
  return opt;
}

// Golden pin: gauss under all four bench protocols, shards 1 vs 2 vs 4,
// plus the awkward shard counts (3 does not divide the node count; one
// shard per node). One digest per protocol — all shard counts must agree.
TEST(ShardDeterminism, BitIdenticalAcrossShardCounts) {
  const std::vector<ProtocolKind> kinds = {
      ProtocolKind::kSC, ProtocolKind::kERC, ProtocolKind::kLRC,
      ProtocolKind::kLRCExt};
  auto base = pdes_options(1);
  base.apps = {"gauss"};
  const auto* app = bench::selected_apps(base).front();
  for (auto kind : kinds) {
    const auto ref = bench::run_app(*app, kind, pdes_options(1));
    const std::uint64_t want = sharded_digest(ref.report);
    for (unsigned shards : {2u, 3u, 4u, 8u}) {
      const auto got = bench::run_app(*app, kind, pdes_options(shards));
      EXPECT_EQ(sharded_digest(got.report), want)
          << "gauss / " << core::to_string(kind) << " shards=" << shards;
    }
  }
}

// Same configuration twice: the host-thread interleaving of a 4-shard run
// must not reach any statistic.
TEST(ShardDeterminism, RerunStableUnderThreads) {
  auto opt = pdes_options(4);
  opt.apps = {"fft"};
  const auto* app = bench::selected_apps(opt).front();
  const auto a = bench::run_app(*app, ProtocolKind::kLRC, opt);
  const auto b = bench::run_app(*app, ProtocolKind::kLRC, opt);
  EXPECT_EQ(sharded_digest(a.report), sharded_digest(b.report));
  EXPECT_EQ(a.report.summary(), b.report.summary());
}

// The per-shard clamp counter: one slot per shard, all zero (a nonzero
// entry means some component violated the lookahead contract).
TEST(ShardDeterminism, ReportsPerShardClampCounters) {
  auto opt = pdes_options(4);
  opt.apps = {"gauss"};
  const auto* app = bench::selected_apps(opt).front();
  const auto res = bench::run_app(*app, ProtocolKind::kERC, opt);
  ASSERT_EQ(res.report.shard_past_violations.size(), 4u);
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_EQ(res.report.shard_past_violations[s], 0u) << "shard " << s;
  }
  EXPECT_EQ(res.report.sched_past_violations, 0u);
}

// ---- Cross-shard synchronization litmus -------------------------------------

constexpr ProtocolKind kAllFive[] = {ProtocolKind::kSC, ProtocolKind::kERC,
                                     ProtocolKind::kERCWT, ProtocolKind::kLRC,
                                     ProtocolKind::kLRCExt};

// Four processors split across shards contend on one lock and meet at one
// barrier; every reader must then observe all four increments. With 2 and 4
// shards both the lock home and the waiters span shards, so grants, queue
// hand-offs and the barrier release all cross mailboxes.
const char* kCrossShardLockBarrier = R"(
procs 4
vars x
P0: L 0 ; INC x ; U 0 ; B 0 ; R x r0
P1: L 0 ; INC x ; U 0 ; B 0 ; R x r1
P2: L 0 ; INC x ; U 0 ; B 0 ; R x r2
P3: L 0 ; INC x ; U 0 ; B 0 ; R x r3
require all r0=4
require all r1=4
require all r2=4
require all r3=4
expect drf
)";

TEST(ShardLitmus, CrossShardLockAndBarrierAllProtocols) {
  const auto prog =
      LitmusProgram::parse(kCrossShardLockBarrier, "cross-shard-lock");
  for (auto kind : kAllFive) {
    for (unsigned shards : {1u, 2u, 4u}) {
      for (std::uint64_t seed : {1, 5}) {
        LitmusRunOptions opts;
        opts.seed = seed;
        opts.shards = shards;
        const LitmusResult res = run_litmus(prog, kind, opts);
        for (const auto& f : res.failures) {
          ADD_FAILURE() << core::to_string(kind) << " shards=" << shards
                        << " seed=" << seed << ": " << f;
        }
      }
    }
  }
}

// The lock grant order is part of the deterministic outcome: for one seed it
// must be identical whatever the shard count, and the final registers too.
TEST(ShardLitmus, GrantOrderIndependentOfShardCount) {
  const auto prog =
      LitmusProgram::parse(kCrossShardLockBarrier, "cross-shard-lock");
  for (auto kind : kAllFive) {
    LitmusRunOptions opts;
    opts.seed = 3;
    opts.shards = 1;
    const LitmusResult ref = run_litmus(prog, kind, opts);
    ASSERT_EQ(ref.lock_order.at(0).size(), 4u);
    for (unsigned shards : {2u, 4u}) {
      opts.shards = shards;
      const LitmusResult got = run_litmus(prog, kind, opts);
      EXPECT_EQ(got.lock_order, ref.lock_order)
          << core::to_string(kind) << " shards=" << shards;
      EXPECT_EQ(got.regs, ref.regs)
          << core::to_string(kind) << " shards=" << shards;
    }
  }
}

// Message-passing across a barrier that spans shards: the classic pattern
// the paper's protocols must order, here with the producer and consumer
// pinned to different shards (procs 0 and 1 land in different halves of a
// 2-proc machine only when every shard holds one node).
const char* kCrossShardMessage = R"(
procs 2
vars x f
P0: W x 41 ; B 0 ; B 1
P1: B 0 ; R x r0 ; B 1
require all r0=41
expect drf
)";

TEST(ShardLitmus, MessagePassingOneNodePerShard) {
  const auto prog = LitmusProgram::parse(kCrossShardMessage, "cross-shard-mp");
  for (auto kind : kAllFive) {
    LitmusRunOptions opts;
    opts.seed = 2;
    opts.shards = 2;  // 2 procs, 2 shards: every message crosses
    const LitmusResult res = run_litmus(prog, kind, opts);
    for (const auto& f : res.failures) {
      ADD_FAILURE() << core::to_string(kind) << ": " << f;
    }
  }
}

// The whole litmus corpus at --shards 4, every protocol. This is the CI
// ThreadSanitizer target: the corpus includes deliberately racy programs
// (inc_nolock, false_share, ...), so it drives concurrent BackingStore
// traffic, cross-shard mailboxes, and the barrier-window protocol from
// four real host threads — any missing synchronization in the sharded
// engine is a TSan finding here. Sharded runs skip the serial-only
// checker, so only forbid/require outcomes of synchronized programs are
// asserted; racy programs' registers are hardware-like "some value" and
// their conditions are skipped.
TEST(ShardLitmus, CorpusUnderFourShards) {
  std::vector<std::string> files;
  for (const auto& ent :
       std::filesystem::directory_iterator(LRCSIM_LITMUS_DIR)) {
    if (ent.path().extension() == ".litmus") files.push_back(ent.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 12u) << "litmus corpus went missing";
  for (const auto& path : files) {
    const LitmusProgram prog = LitmusProgram::parse_file(path);
    for (auto kind : kAllFive) {
      LitmusRunOptions opts;
      opts.seed = 1;
      opts.shards = 4;
      const LitmusResult res = run_litmus(prog, kind, opts);
      if (!prog.expect_drf) continue;  // racy by design: outcome unasserted
      for (const auto& f : res.failures) {
        ADD_FAILURE() << prog.name << " under " << core::to_string(kind)
                      << " shards=4: " << f;
      }
    }
  }
}

}  // namespace
}  // namespace lrc
