// Protocol fuzzing: long randomized race-free programs under hostile
// configurations (tiny caches, heavy lock contention, frequent barriers,
// random fences) across every protocol. Each run must terminate, produce
// exactly the analytically-expected memory contents, and leave the machine
// fully drained. These would have caught both protocol deadlocks found
// during bring-up.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "sim/rng.hpp"

namespace lrc::core {
namespace {

constexpr ProtocolKind kAll[] = {ProtocolKind::kSC, ProtocolKind::kERC,
                                 ProtocolKind::kLRC, ProtocolKind::kLRCExt,
                                 ProtocolKind::kERCWT};

struct FuzzSpec {
  std::uint64_t seed;
  unsigned nprocs;
  std::uint32_t cache_bytes;  // hostile geometries force eviction races
};

void run_fuzz(ProtocolKind kind, const FuzzSpec& spec) {
  auto params = SystemParams::paper_default(spec.nprocs);
  params.cache_bytes = spec.cache_bytes;
  params.line_bytes = 128;
  Machine m(params, kind);

  constexpr unsigned kSlice = 32;   // doubles per processor (private)
  constexpr unsigned kCounters = 6;
  auto data = m.alloc<double>(spec.nprocs * kSlice, "slices");
  auto counters = m.alloc<std::int64_t>(kCounters * 16, "counters");

  std::vector<std::int64_t> expected_counts(kCounters, 0);
  {
    // Pre-compute the lock-protected increments each processor will do.
    for (unsigned p = 0; p < spec.nprocs; ++p) {
      sim::Rng rng(spec.seed * 131 + p);
      for (unsigned op = 0; op < 200; ++op) {
        const auto action = rng.below(5);
        if (action == 2) ++expected_counts[rng.below(kCounters)];
        else if (action == 0) (void)rng.below(kSlice);
        else if (action == 1) (void)rng.below(spec.nprocs * kSlice);
        else if (action == 4) (void)rng.below(30);
      }
    }
  }

  m.run([&](Cpu& cpu) {
    sim::Rng rng(spec.seed * 131 + cpu.id());
    const unsigned base = cpu.id() * kSlice;
    for (unsigned op = 0; op < 200; ++op) {
      switch (rng.below(5)) {
        case 0:
          data.put(cpu, base + rng.below(kSlice),
                   static_cast<double>(op + cpu.id()));
          break;
        case 1:
          (void)data.get(cpu, rng.below(spec.nprocs * kSlice));
          break;
        case 2: {
          const unsigned c = static_cast<unsigned>(rng.below(kCounters));
          cpu.lock(200 + c);
          counters.put(cpu, c * 16, counters.get(cpu, c * 16) + 1);
          cpu.unlock(200 + c);
          break;
        }
        case 3:
          cpu.fence();
          break;
        case 4:
          cpu.compute(1 + rng.below(30));
          break;
      }
      if ((op + 1) % 50 == 0) cpu.barrier(0);
    }
  });

  for (unsigned c = 0; c < kCounters; ++c) {
    EXPECT_EQ(m.peek<std::int64_t>(counters.addr(c * 16)),
              expected_counts[c])
        << to_string(kind) << " seed " << spec.seed << " counter " << c;
  }
  for (NodeId p = 0; p < m.nprocs(); ++p) {
    EXPECT_TRUE(m.cpu(p).ot().empty()) << to_string(kind) << " cpu " << p;
    EXPECT_TRUE(m.cpu(p).wb().empty()) << to_string(kind) << " cpu " << p;
    EXPECT_EQ(m.cpu(p).wt_outstanding, 0u) << to_string(kind);
  }
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, TinyCacheEightProcs) {
  for (auto kind : kAll) run_fuzz(kind, {GetParam(), 8, 1024});
}

TEST_P(Fuzz, OneLineCacheFourProcs) {
  // Every distinct line conflicts: maximal eviction/transaction races.
  for (auto kind : kAll) run_fuzz(kind, {GetParam() + 1000, 4, 128});
}

TEST_P(Fuzz, SixteenProcsModestCache) {
  for (auto kind : kAll) run_fuzz(kind, {GetParam() + 2000, 16, 4096});
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u));

}  // namespace
}  // namespace lrc::core
