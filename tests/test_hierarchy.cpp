// Unit tests for the private cache stack (cache::Hierarchy): level
// movement (promotion / demotion), the inclusion and exclusion boundary
// contracts, back-invalidation of inclusive victims, authority merging on
// invalidation, and the external victim sink.
#include "cache/hierarchy.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lrc::cache {
namespace {

constexpr std::uint32_t kLine = 128;
constexpr std::uint32_t kL1Bytes = 512;  // 4 direct-mapped sets

struct SinkRec {
  std::vector<CacheLine> victims;
  static void record(void* ctx, NodeId, const CacheLine& v, Cycle) {
    static_cast<SinkRec*>(ctx)->victims.push_back(v);
  }
};

CacheConfig inclusive_cfg() {
  // L2: one set x 4 ways, so lines 0..3 (distinct L1 sets) share it.
  auto cfg = CacheConfig::with_l2(512, 4, InclusionPolicy::kInclusive);
  return cfg;
}

CacheConfig exclusive_cfg() {
  auto cfg = CacheConfig::with_l2(512, 4, InclusionPolicy::kExclusive);
  return cfg;
}

TEST(Hierarchy, L1OnlyVictimGoesStraightToSink) {
  Hierarchy h(CacheConfig::l1_only(), kL1Bytes, kLine, /*node=*/0, /*seed=*/1);
  SinkRec rec;
  h.set_victim_sink(&SinkRec::record, &rec);
  EXPECT_EQ(h.levels(), 1u);
  h.fill(0, LineState::kReadWrite, 0);
  h.find(0)->dirty = 0x3;
  h.fill(4, LineState::kReadOnly, 5);  // conflicts in L1 set 0
  ASSERT_EQ(rec.victims.size(), 1u);
  EXPECT_EQ(rec.victims[0].line, 0u);
  EXPECT_EQ(rec.victims[0].state, LineState::kReadWrite);
  EXPECT_EQ(rec.victims[0].dirty, 0x3u);
  EXPECT_EQ(h.stats().evictions, 1u);
}

TEST(Hierarchy, InclusiveFillInstallsBothLevels) {
  Hierarchy h(inclusive_cfg(), kL1Bytes, kLine, 0, 1);
  h.fill(0, LineState::kReadOnly, 0);
  EXPECT_NE(h.l1().find(0), nullptr);
  ASSERT_NE(h.l2()->find(0), nullptr);
  EXPECT_EQ(h.l2()->find(0)->dirty, 0u);  // L1 copy is authoritative
}

TEST(Hierarchy, InclusiveL2HitPromotesAndChargesPenalty) {
  Hierarchy h(inclusive_cfg(), kL1Bytes, kLine, 0, 1);
  h.fill(0, LineState::kReadWrite, 0);
  h.find(0)->dirty = 0x5;
  h.fill(4, LineState::kReadOnly, 1);  // L1 conflict: 0's authority demotes
  EXPECT_EQ(h.l1().find(0), nullptr);
  ASSERT_NE(h.l2()->find(0), nullptr);
  EXPECT_EQ(h.l2()->find(0)->dirty, 0x5u);  // authority now in L2
  EXPECT_EQ(h.level_stats(0).demotions + h.level_stats(1).demotions, 1u);

  CacheLine* l = h.lookup(0, 10);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(h.hit_penalty(), inclusive_cfg().l2_hit_cycles);
  EXPECT_EQ(l->state, LineState::kReadWrite);
  EXPECT_EQ(l->dirty, 0x5u);                // authority moved back up
  EXPECT_NE(h.l1().find(0), nullptr);
  ASSERT_NE(h.l2()->find(0), nullptr);      // inclusive: tag stays
  EXPECT_EQ(h.l2()->find(0)->dirty, 0u);
  EXPECT_EQ(h.level_stats(1).hits, 1u);
  EXPECT_EQ(h.level_stats(1).promotions, 1u);

  // An L1 hit afterwards costs nothing extra.
  ASSERT_NE(h.lookup(0, 11), nullptr);
  EXPECT_EQ(h.hit_penalty(), 0u);
}

TEST(Hierarchy, InclusiveL2VictimBackInvalidatesL1Copy) {
  Hierarchy h(inclusive_cfg(), kL1Bytes, kLine, 0, 1);
  SinkRec rec;
  h.set_victim_sink(&SinkRec::record, &rec);
  // Lines 0..3 live in distinct L1 sets but fill the single L2 set.
  for (LineId l = 0; l < 4; ++l) h.fill(l, LineState::kReadOnly, l);
  h.find(0)->state = LineState::kReadWrite;
  h.find(0)->dirty = 0x9;
  ASSERT_TRUE(rec.victims.empty());
  h.fill(4, LineState::kReadOnly, 10);  // L2 evicts LRU line 0
  ASSERT_EQ(rec.victims.size(), 1u);
  // The external victim carries the authoritative (L1) state and dirty.
  EXPECT_EQ(rec.victims[0].line, 0u);
  EXPECT_EQ(rec.victims[0].state, LineState::kReadWrite);
  EXPECT_EQ(rec.victims[0].dirty, 0x9u);
  EXPECT_EQ(h.l1().find(0), nullptr);  // inclusion restored
  EXPECT_EQ(h.l2()->find(0), nullptr);
  EXPECT_EQ(h.level_stats(0).back_invals, 1u);
  EXPECT_EQ(h.stats().evictions, 1u);
}

TEST(Hierarchy, ExclusiveFillBypassesL2) {
  Hierarchy h(exclusive_cfg(), kL1Bytes, kLine, 0, 1);
  h.fill(0, LineState::kReadOnly, 0);
  EXPECT_NE(h.l1().find(0), nullptr);
  EXPECT_EQ(h.l2()->find(0), nullptr);
}

TEST(Hierarchy, ExclusiveL1VictimDemotesAndPromotionRemoves) {
  Hierarchy h(exclusive_cfg(), kL1Bytes, kLine, 0, 1);
  h.fill(0, LineState::kReadWrite, 0);
  h.find(0)->dirty = 0x3;
  h.fill(4, LineState::kReadOnly, 1);  // L1 conflict: 0 demotes into L2
  EXPECT_EQ(h.l1().find(0), nullptr);
  ASSERT_NE(h.l2()->find(0), nullptr);
  EXPECT_EQ(h.l2()->find(0)->dirty, 0x3u);
  EXPECT_EQ(h.level_stats(1).fills, 1u);

  CacheLine* l = h.lookup(0, 10);  // promote: exclusive removes the L2 copy
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->dirty, 0x3u);
  EXPECT_NE(h.l1().find(0), nullptr);
  EXPECT_EQ(h.l2()->find(0), nullptr);
  // The promotion displaced line 4 from L1 back into L2.
  EXPECT_EQ(h.l1().find(4), nullptr);
  EXPECT_NE(h.l2()->find(4), nullptr);
}

TEST(Hierarchy, ExclusiveL2OverflowExitsThroughSink) {
  Hierarchy h(exclusive_cfg(), kL1Bytes, kLine, 0, 1);
  SinkRec rec;
  h.set_victim_sink(&SinkRec::record, &rec);
  // All of 0,4,8,... conflict in L1 set 0 and share the single L2 set:
  // each fill demotes the previous line; the 6th demotion overflows L2.
  for (LineId l = 0; l <= 5 * 4; l += 4) {
    h.fill(l, LineState::kReadOnly, l);
  }
  ASSERT_EQ(rec.victims.size(), 1u);
  EXPECT_EQ(rec.victims[0].line, 0u);  // oldest demoted line
  EXPECT_EQ(h.stats().evictions, 1u);
}

TEST(Hierarchy, InvalidateMergesAuthorityFromEitherLevel) {
  // Inclusive: dirty words live on the L1 copy.
  Hierarchy hi(inclusive_cfg(), kL1Bytes, kLine, 0, 1);
  hi.fill(0, LineState::kReadWrite, 0);
  hi.find(0)->dirty = 0x3;
  auto inc = hi.invalidate(0);
  ASSERT_TRUE(inc.has_value());
  EXPECT_EQ(inc->dirty, 0x3u);
  EXPECT_EQ(hi.find(0), nullptr);
  EXPECT_EQ(hi.stats().invalidations, 1u);
  EXPECT_FALSE(hi.invalidate(0).has_value());
  EXPECT_EQ(hi.stats().invalidations, 1u);  // absent line: not counted

  // Exclusive: the line may only exist in L2 after a demotion.
  Hierarchy hx(exclusive_cfg(), kL1Bytes, kLine, 0, 1);
  hx.fill(0, LineState::kReadWrite, 0);
  hx.find(0)->dirty = 0x6;
  hx.fill(4, LineState::kReadOnly, 1);  // demote 0 into L2
  auto exc = hx.invalidate(0);
  ASSERT_TRUE(exc.has_value());
  EXPECT_EQ(exc->dirty, 0x6u);
  EXPECT_EQ(hx.find(0), nullptr);
  EXPECT_EQ(hx.stats().invalidations, 1u);
}

TEST(Hierarchy, ForEachValidVisitsEachLineOnce) {
  Hierarchy h(inclusive_cfg(), kL1Bytes, kLine, 0, 1);
  h.fill(0, LineState::kReadOnly, 0);
  h.fill(4, LineState::kReadOnly, 1);  // 0 demotes: L1 {4}, L2 {0, 4}
  unsigned count = 0;
  std::vector<LineId> seen;
  h.for_each_valid([&](CacheLine& cl) {
    ++count;
    seen.push_back(cl.line);
  });
  EXPECT_EQ(count, 2u);  // line 4 visited once despite two resident tags
}

TEST(Hierarchy, FindIsPureAndLookupTouches) {
  Hierarchy h(inclusive_cfg(), kL1Bytes, kLine, 0, 1);
  h.fill(0, LineState::kReadOnly, 0);
  h.fill(4, LineState::kReadOnly, 1);  // 0 now L2-only
  // find() must not promote or charge a penalty.
  ASSERT_NE(h.find(0), nullptr);
  EXPECT_EQ(h.l1().find(0), nullptr);
  const auto l2_hits_before = h.level_stats(1).hits;
  ASSERT_NE(h.lookup(0, 5), nullptr);
  EXPECT_EQ(h.level_stats(1).hits, l2_hits_before + 1);
}

}  // namespace
}  // namespace lrc::cache
