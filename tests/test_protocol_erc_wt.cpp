// Tests for the ERC-WT ablation protocol: eager directory behaviour with
// the lazy protocols' write-through data path.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "apps/app.hpp"
#include "proto/msi.hpp"

namespace lrc::core {
namespace {

constexpr Cycle kGap = 50'000;

struct ErcWtFixture : ::testing::Test {
  ErcWtFixture() : m(SystemParams::paper_default(8), ProtocolKind::kERCWT) {
    arr = m.alloc<double>(1024, "data");
  }
  proto::Directory& dir() {
    return dynamic_cast<proto::ProtocolBase&>(m.protocol()).directory();
  }
  std::uint64_t sent(mesh::MsgKind k) {
    return m.nic().stats().per_kind[static_cast<std::size_t>(k)];
  }
  Machine m;
  SharedArray<double> arr;
};

TEST_F(ErcWtFixture, WritesStreamThroughToMemory) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    for (unsigned i = 0; i < 64; ++i) arr.put(cpu, i, 1.0);
    cpu.lock(1);
    cpu.unlock(1);  // release drains the coalescing buffer
  });
  EXPECT_GE(sent(mesh::MsgKind::kWriteThrough), 1u);
  EXPECT_EQ(sent(mesh::MsgKind::kWriteThrough),
            sent(mesh::MsgKind::kWriteThroughAck));
  EXPECT_EQ(m.cpu(0).cb().size(), 0u);
  EXPECT_EQ(m.cpu(0).wt_outstanding, 0u);
}

TEST_F(ErcWtFixture, NoDirtyWritebacksEver) {
  const std::uint32_t sets = m.params().cache_bytes / m.params().line_bytes;
  const std::size_t stride_elems =
      static_cast<std::size_t>(sets) * m.params().line_bytes / sizeof(double);
  auto big = m.alloc<double>(stride_elems * 2 + 16, "big");
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    big.put(cpu, 0, 1.0);
    cpu.compute(kGap);
    (void)big.get(cpu, stride_elems);  // evicts the written line
    cpu.compute(kGap);
  });
  // With write-through the line was never dirty: eviction produces at most
  // a coalescing-buffer flush, never a full-line writeback.
  EXPECT_EQ(sent(mesh::MsgKind::kWritebackData), 0u);
  EXPECT_DOUBLE_EQ(m.peek<double>(big.addr(0)), 1.0);
}

TEST_F(ErcWtFixture, DirectoryBehaviourStaysEager) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)arr.get(cpu, 0);
    } else if (cpu.id() == 0) {
      cpu.compute(kGap);
      arr.put(cpu, 0, 1.0);
      cpu.compute(kGap);
    }
  });
  // Invalidation was eager (reader's copy is gone) and the directory holds
  // an exclusive owner — exactly like plain ERC, unlike LRC.
  EXPECT_EQ(m.cpu(1).dcache().find(m.amap().line_of(arr.addr(0))), nullptr);
  auto* e = dir().find(m.amap().line_of(arr.addr(0)));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, proto::DirState::kDirty);
  EXPECT_EQ(e->owner(), 0u);
  EXPECT_GE(sent(mesh::MsgKind::kInval), 1u);
  EXPECT_EQ(sent(mesh::MsgKind::kWriteNotice), 0u);
}

TEST_F(ErcWtFixture, ComputesCorrectResults) {
  auto counter = m.alloc<std::int64_t>(1, "c");
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 10; ++i) {
      cpu.lock(1);
      counter.put(cpu, 0, counter.get(cpu, 0) + 1);
      cpu.unlock(1);
    }
    cpu.barrier(0);
  });
  EXPECT_EQ(m.peek<std::int64_t>(counter.addr(0)), 80);
}

TEST_F(ErcWtFixture, ReleaseWaitsForWriteThroughAcks) {
  Cycle unlock_elapsed = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    cpu.lock(1);
    arr.put(cpu, 512, 1.0);
    const Cycle before = cpu.now();
    cpu.unlock(1);
    unlock_elapsed = cpu.now() - before;
  });
  EXPECT_GT(unlock_elapsed, 50u);
}

TEST(ErcWtApps, AppsValidate) {
  for (const char* name : {"gauss", "mp3d"}) {
    const auto* info = apps::find_app(name);
    ASSERT_NE(info, nullptr);
    Machine m(SystemParams::test_scale(8), ProtocolKind::kERCWT);
    apps::AppConfig cfg;
    cfg.n = info->test_n;
    cfg.steps = info->test_steps;
    const auto res = info->run(m, cfg);
    EXPECT_TRUE(res.valid) << name << ": " << res.detail;
  }
}

}  // namespace
}  // namespace lrc::core
