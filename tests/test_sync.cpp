// Synchronization service behaviour through real Machine runs.
#include <gtest/gtest.h>

#include <vector>

#include "core/machine.hpp"
#include "proto/sync_manager.hpp"

namespace lrc::core {
namespace {

TEST(Sync, LockProvidesMutualExclusion) {
  Machine m(SystemParams::test_scale(8), ProtocolKind::kLRC);
  auto counter = m.alloc<std::int64_t>(1, "c");
  constexpr int kIters = 20;
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < kIters; ++i) {
      cpu.lock(7);
      counter.put(cpu, 0, counter.get(cpu, 0) + 1);
      cpu.unlock(7);
    }
  });
  // Lock-protected increments never get lost, under any protocol.
  EXPECT_EQ(m.peek<std::int64_t>(counter.addr(0)),
            static_cast<std::int64_t>(8 * kIters));
  EXPECT_EQ(m.lock_acquires(), 8u * kIters);
}

TEST(Sync, LocksAreGrantedFifo) {
  Machine m(SystemParams::test_scale(4), ProtocolKind::kSC);
  auto order = m.alloc<std::int32_t>(8, "order");
  auto next = m.alloc<std::int32_t>(1, "next");
  m.run([&](Cpu& cpu) {
    // Stagger the requests so the queue order is deterministic.
    cpu.compute(1 + 500 * cpu.id());
    cpu.lock(3);
    const std::int32_t slot = next.get(cpu, 0);
    next.put(cpu, 0, slot + 1);
    order.put(cpu, slot, static_cast<std::int32_t>(cpu.id()));
    cpu.unlock(3);
  });
  for (std::int32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(m.peek<std::int32_t>(order.addr(p)), p);
  }
}

TEST(Sync, BarrierGathersEveryone) {
  Machine m(SystemParams::test_scale(8), ProtocolKind::kERC);
  auto flags = m.alloc<std::int32_t>(8, "flags");
  auto sums = m.alloc<std::int32_t>(8, "sums");
  m.run([&](Cpu& cpu) {
    cpu.compute(cpu.id() * 997);  // very uneven arrival times
    flags.put(cpu, cpu.id(), 1);
    cpu.barrier(0);
    std::int32_t s = 0;
    for (unsigned p = 0; p < cpu.nprocs(); ++p) s += flags.get(cpu, p);
    sums.put(cpu, cpu.id(), s);
  });
  for (unsigned p = 0; p < 8; ++p) {
    EXPECT_EQ(m.peek<std::int32_t>(sums.addr(p)), 8);
  }
  EXPECT_EQ(m.barrier_episodes(), 1u);
}

TEST(Sync, BarrierIsReusable) {
  Machine m(SystemParams::test_scale(4), ProtocolKind::kLRC);
  constexpr int kRounds = 5;
  auto data = m.alloc<std::int32_t>(1, "x");
  m.run([&](Cpu& cpu) {
    for (int r = 0; r < kRounds; ++r) {
      if (cpu.id() == 0) data.put(cpu, 0, r + 1);
      cpu.barrier(0);
      EXPECT_EQ(data.get(cpu, 0), r + 1);
      cpu.barrier(0);
    }
  });
  EXPECT_EQ(m.barrier_episodes(), 2u * kRounds);
}

TEST(Sync, DistinctLocksDoNotInterfere) {
  Machine m(SystemParams::test_scale(4), ProtocolKind::kERC);
  auto counters = m.alloc<std::int64_t>(4, "c");
  m.run([&](Cpu& cpu) {
    const SyncId lk = cpu.id();  // each processor its own lock
    for (int i = 0; i < 10; ++i) {
      cpu.lock(100 + lk);
      counters.put(cpu, cpu.id(), counters.get(cpu, cpu.id()) + 1);
      cpu.unlock(100 + lk);
    }
  });
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_EQ(m.peek<std::int64_t>(counters.addr(p)), 10);
  }
}

TEST(Sync, LockStateVisibleToManager) {
  Machine m(SystemParams::test_scale(2), ProtocolKind::kSC);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      cpu.lock(5);
      EXPECT_TRUE(m.sync().lock_held(5));
      cpu.unlock(5);
    }
  });
  EXPECT_FALSE(m.sync().lock_held(5));
  EXPECT_EQ(m.sync().lock_queue_len(5), 0u);
}

TEST(Sync, ManyLocksHashAcrossHomes) {
  Machine m(SystemParams::test_scale(8), ProtocolKind::kSC);
  // home_of spreads ids across all nodes.
  std::vector<bool> seen(8, false);
  for (SyncId s = 0; s < 64; ++s) seen[m.sync().home_of(s)] = true;
  for (bool b : seen) EXPECT_TRUE(b);
}

}  // namespace
}  // namespace lrc::core
