// Consistency-checker tests (docs/CHECKER.md). The oracle itself only
// exists in LRCSIM_CHECK builds; in default builds these tests verify the
// checker is genuinely compiled out and skip the rest.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/checker.hpp"
#include "core/machine.hpp"

namespace {

using lrc::core::Cpu;
using lrc::core::Machine;
using lrc::core::ProtocolKind;
using lrc::core::SystemParams;

constexpr ProtocolKind kAllKinds[] = {ProtocolKind::kSC, ProtocolKind::kERC,
                                      ProtocolKind::kERCWT, ProtocolKind::kLRC,
                                      ProtocolKind::kLRCExt};

#ifndef LRCSIM_CHECK

TEST(Checker, CompiledOutInDefaultBuilds) {
  Machine m(SystemParams::test_scale(2), ProtocolKind::kLRC);
  EXPECT_EQ(m.enable_checker(), nullptr)
      << "default builds must carry no checker (bench bit-identity)";
}

#else  // LRCSIM_CHECK

// A deliberately DRF workload: private-slice writes, barrier, neighbor
// reads, barrier, lock-protected counter, barrier, verified totals. The
// checker must stay silent (strict mode) and count zero races.
void run_drf_workload(ProtocolKind kind) {
  SCOPED_TRACE(std::string(to_string(kind)));
  const unsigned n = 4;
  const unsigned slice = 8;
  Machine m(SystemParams::test_scale(n), kind);
  auto data = m.alloc<std::int64_t>(n * slice, "data");
  auto counter = m.alloc<std::int64_t>(1, "counter");
  m.poke_mem<std::int64_t>(counter.addr(0), 0);

  auto* ck = m.enable_checker(/*strict=*/true);
  ASSERT_NE(ck, nullptr);

  m.run([&](Cpu& cpu) {
    const unsigned p = cpu.id();
    for (unsigned i = 0; i < slice; ++i) {
      data.put(cpu, p * slice + i, 100 * p + i);
    }
    cpu.barrier(0);
    const unsigned q = (p + 1) % n;
    for (unsigned i = 0; i < slice; ++i) {
      const auto v = data.get(cpu, q * slice + i);
      if (v != static_cast<std::int64_t>(100 * q + i)) {
        ADD_FAILURE() << "functional value wrong: " << v;
      }
    }
    cpu.barrier(1);
    for (int k = 0; k < 3; ++k) {
      cpu.lock(5);
      counter.put(cpu, 0, counter.get(cpu, 0) + 1);
      cpu.unlock(5);
    }
    cpu.barrier(2);
    const auto total = counter.get(cpu, 0);
    if (total != 3 * static_cast<std::int64_t>(n)) {
      ADD_FAILURE() << "counter total wrong: " << total;
    }
  });

  EXPECT_TRUE(ck->violations().empty());
  EXPECT_EQ(ck->races(), 0u) << "DRF workload must show no races";
  EXPECT_GT(ck->reads_checked(), 0u);
  EXPECT_GT(ck->writes_tracked(), 0u);
}

TEST(Checker, DrfWorkloadCleanUnderAllProtocols) {
  for (ProtocolKind kind : kAllKinds) run_drf_workload(kind);
}

// Racy accesses are counted as races, never reported as violations:
// release consistency makes no promise about unsynchronized values.
TEST(Checker, RacesCountedNotViolated) {
  for (ProtocolKind kind : kAllKinds) {
    SCOPED_TRACE(std::string(to_string(kind)));
    Machine m(SystemParams::test_scale(2), kind);
    auto x = m.alloc<std::int64_t>(1, "x");
    auto* ck = m.enable_checker(/*strict=*/true);
    ASSERT_NE(ck, nullptr);
    m.run([&](Cpu& cpu) {
      for (int i = 0; i < 200; ++i) {
        x.put(cpu, 0, cpu.id() * 1000 + i);
        (void)x.get(cpu, 0);
      }
    });
    EXPECT_TRUE(ck->violations().empty());
    EXPECT_GT(ck->races(), 0u);
  }
}

// The negative test the tentpole demands: break the protocol on purpose
// (drop buffered write notices at acquire time) and show the value oracle
// catches the resulting stale read.
//
// P1 caches x, both cross barrier 0, P0 writes x (line goes Weak, notice
// buffered at P1), both cross barrier 1 (a release/acquire pair), P1
// rereads x. With the mutation the stale cached copy survives the acquire,
// which is exactly the consistency bug the oracle must flag.
void run_mutation_program(Machine& m, lrc::core::SharedArray<std::int64_t>& x) {
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)x.get(cpu, 0);
      cpu.barrier(0);
      cpu.barrier(1);
      (void)x.get(cpu, 0);
    } else {
      cpu.barrier(0);
      if (cpu.id() == 0) x.put(cpu, 0, 42);
      cpu.barrier(1);
    }
  });
}

TEST(Checker, SkippedAcquireInvalidationIsCaught) {
  for (ProtocolKind kind : {ProtocolKind::kLRC, ProtocolKind::kLRCExt}) {
    SCOPED_TRACE(std::string(to_string(kind)));
    lrc::check::MutationGuard guard(
        lrc::check::Mutation::kSkipAcquireInvalidation);
    Machine m(SystemParams::test_scale(2), kind);
    auto x = m.alloc<std::int64_t>(1, "x");
    auto* ck = m.enable_checker(/*strict=*/false);
    ASSERT_NE(ck, nullptr);
    run_mutation_program(m, x);
    ASSERT_FALSE(ck->violations().empty())
        << "oracle missed the skipped acquire invalidation";
    EXPECT_NE(ck->violations()[0].find("stale read"), std::string::npos)
        << ck->violations()[0];
  }
}

TEST(Checker, SameProgramCleanWithoutMutation) {
  for (ProtocolKind kind : kAllKinds) {
    SCOPED_TRACE(std::string(to_string(kind)));
    Machine m(SystemParams::test_scale(2), kind);
    auto x = m.alloc<std::int64_t>(1, "x");
    auto* ck = m.enable_checker(/*strict=*/true);
    ASSERT_NE(ck, nullptr);
    run_mutation_program(m, x);
    EXPECT_TRUE(ck->violations().empty());
    EXPECT_EQ(ck->races(), 0u);
  }
}

TEST(Checker, StrictModeThrowsViolationError) {
  lrc::check::MutationGuard guard(
      lrc::check::Mutation::kSkipAcquireInvalidation);
  Machine m(SystemParams::test_scale(2), ProtocolKind::kLRC);
  auto x = m.alloc<std::int64_t>(1, "x");
  ASSERT_NE(m.enable_checker(/*strict=*/true), nullptr);
  EXPECT_THROW(run_mutation_program(m, x), lrc::check::ViolationError);
}

#endif  // LRCSIM_CHECK

}  // namespace
