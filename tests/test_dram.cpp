#include "mem/dram.hpp"

#include <gtest/gtest.h>

namespace lrc::mem {
namespace {

TEST(Dram, UncontendedCostMatchesPaperModel) {
  // Paper worked example (§3): 128-byte access costs 20 + 128/2 = 84.
  Dram d(4, DramParams{});
  EXPECT_EQ(d.uncontended_cost(128), 84u);
  EXPECT_EQ(d.access(0, 100, 128, false), 184u);
}

TEST(Dram, AccessesSerializeAtOneNode) {
  Dram d(4, DramParams{});
  const Cycle first = d.access(0, 0, 128, false);
  EXPECT_EQ(first, 84u);
  const Cycle second = d.access(0, 10, 128, false);
  EXPECT_EQ(second, 84u + 84u);  // waits for the channel
  EXPECT_EQ(d.stats().contention, 74u);
}

TEST(Dram, NodesAreIndependentChannels) {
  Dram d(4, DramParams{});
  EXPECT_EQ(d.access(0, 0, 128, false), 84u);
  EXPECT_EQ(d.access(1, 0, 128, false), 84u);
  EXPECT_EQ(d.stats().contention, 0u);
}

TEST(Dram, SmallWritesChargeSetupPlusBytes) {
  Dram d(1, DramParams{});
  EXPECT_EQ(d.access(0, 0, 4, true), 22u);  // 20 + ceil(4/2)
  EXPECT_EQ(d.stats().writes, 1u);
  EXPECT_EQ(d.stats().reads, 0u);
  EXPECT_EQ(d.stats().bytes, 4u);
}

TEST(Dram, FutureMachineParameters) {
  // §4.3 trend machine: 40-cycle startup, 4 bytes/cycle, 256-byte lines.
  Dram d(1, DramParams{40, 4});
  EXPECT_EQ(d.uncontended_cost(256), 40u + 64u);
}

TEST(Dram, IdleChannelDoesNotAccumulateDelay) {
  Dram d(1, DramParams{});
  EXPECT_EQ(d.access(0, 0, 128, false), 84u);
  EXPECT_EQ(d.access(0, 1000, 128, false), 1084u);
  EXPECT_EQ(d.stats().contention, 0u);
  EXPECT_EQ(d.stats().busy, 168u);
}

}  // namespace
}  // namespace lrc::mem
