// Bit-reproducibility of whole simulations.
//
// The kernel guarantees a total (time, seq) order on events, so a run is a
// pure function of (app, protocol, seed, parameters).  These tests pin that
// property end to end: repeated runs with one seed must produce identical
// reports, and the parallel experiment scheduler (--jobs N) must produce
// byte-for-byte the same results as a serial sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "core/report.hpp"
#include "report_digest.hpp"

namespace lrc {
namespace {

// FNV-1a over every counter a Report carries (tests/report_digest.hpp).
// Any divergence between two runs — a single cycle, one extra message —
// changes the digest.
using testutil::report_digest;

std::uint64_t digest(const core::Report& r) { return report_digest(r); }

bench::Options test_options() {
  bench::Options opt;
  opt.scale = bench::Scale::kTest;
  opt.seed = 7;
  opt.validate = false;  // apps are validated elsewhere; keep this fast
  return opt;
}

const std::vector<core::ProtocolKind> kAllKinds = {
    core::ProtocolKind::kSC, core::ProtocolKind::kERC,
    core::ProtocolKind::kLRC, core::ProtocolKind::kLRCExt};

// Same seed, same experiment, run twice in this process: identical reports.
TEST(Determinism, SameSeedSameReport) {
  const auto opt = test_options();
  for (const auto* app : bench::selected_apps(opt)) {
    for (auto kind : kAllKinds) {
      const auto a = bench::run_app(*app, kind, opt);
      const auto b = bench::run_app(*app, kind, opt);
      EXPECT_EQ(digest(a.report), digest(b.report))
          << app->name << " / " << a.report.protocol;
      EXPECT_EQ(a.report.summary(), b.report.summary());
    }
  }
}

// A different seed must actually change something, or the digest (and the
// tests above) would be vacuous.  mp3d's seed drives particle placement and
// thus the sharing pattern itself.
TEST(Determinism, SeedReachesTheSimulation) {
  auto opt = test_options();
  opt.apps = {"mp3d"};
  const auto* app = bench::selected_apps(opt).front();
  const auto a = bench::run_app(*app, core::ProtocolKind::kLRC, opt);
  opt.seed = 99;
  const auto b = bench::run_app(*app, core::ProtocolKind::kLRC, opt);
  EXPECT_NE(digest(a.report), digest(b.report));
}

// The parallel experiment scheduler is an implementation detail: a --jobs N
// sweep must be bit-identical to the serial --jobs 1 sweep, in order.
TEST(Determinism, ParallelSweepMatchesSerial) {
  auto opt = test_options();
  opt.jobs = 1;
  const auto serial = bench::run_matrix(opt, kAllKinds);
  opt.jobs = 4;
  const auto parallel = bench::run_matrix(opt, kAllKinds);

  const auto apps = bench::selected_apps(opt);
  ASSERT_EQ(serial.size(), apps.size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].size(), kAllKinds.size());
    ASSERT_EQ(parallel[i].size(), serial[i].size());
    for (std::size_t j = 0; j < serial[i].size(); ++j) {
      EXPECT_EQ(digest(serial[i][j].report), digest(parallel[i][j].report))
          << apps[i]->name << " / " << serial[i][j].report.protocol;
      EXPECT_EQ(serial[i][j].report.summary(),
                parallel[i][j].report.summary());
    }
  }
}

// Golden statistics: the full test-scale matrix (every app x SC/ERC/LRC/
// LRC-ext, seed 7) pinned by digest. Performance work on the memory-system
// hot path (flat-hash directory/OT, shift-mask address math, pooled
// transients) must leave every protocol statistic bit-identical; any
// behavioural change — intended or not — shows up here as a digest
// mismatch. To regenerate after an *intended* protocol change, run with
// LRCSIM_PRINT_GOLDEN=1 and paste the printed table.
TEST(Determinism, GoldenStatsMatrix) {
  struct Golden {
    const char* app;
    const char* protocol;
    std::uint64_t digest;
  };
  static const Golden kGolden[] = {
      // clang-format off
      {"gauss", "SC", 0x9a2f4806d9eb86d3ull},
      {"gauss", "ERC", 0x75807377d8169720ull},
      {"gauss", "LRC", 0x4f58ab607bf669fcull},
      {"gauss", "LRC-ext", 0x2eef03c1ffee4d56ull},
      {"fft", "SC", 0xa2b01ec89aba2f90ull},
      {"fft", "ERC", 0x32c1a11b59bd9605ull},
      {"fft", "LRC", 0x2d4e5acf08c94bc9ull},
      {"fft", "LRC-ext", 0x6dcc7ce8b3c85e05ull},
      {"blu", "SC", 0xf80fc71f4a70bc11ull},
      {"blu", "ERC", 0x0f2105f7fea12f5dull},
      {"blu", "LRC", 0x7c083461f5159ebcull},
      {"blu", "LRC-ext", 0x8c968f07cf8a1107ull},
      {"barnes", "SC", 0xd198d5cd2833c1f9ull},
      {"barnes", "ERC", 0xb94647a9e06dea34ull},
      {"barnes", "LRC", 0x7cae7f9f085d7862ull},
      {"barnes", "LRC-ext", 0xc55afa8b4b28b081ull},
      {"cholesky", "SC", 0xa9626d92cd82807eull},
      {"cholesky", "ERC", 0xe2574d64d65c7cfbull},
      {"cholesky", "LRC", 0x7de20d046ff35803ull},
      {"cholesky", "LRC-ext", 0xb2cf14dd65454004ull},
      {"locusroute", "SC", 0x0c4d0ade05c65cabull},
      {"locusroute", "ERC", 0xce179caa47e500e9ull},
      {"locusroute", "LRC", 0xf385f28b91ebeddeull},
      {"locusroute", "LRC-ext", 0xddcc08625523330full},
      {"mp3d", "SC", 0x600c44f1b85e095bull},
      {"mp3d", "ERC", 0x1ef7f3314f82277eull},
      {"mp3d", "LRC", 0x88bf0c35b5d71690ull},
      {"mp3d", "LRC-ext", 0x243d9170cc6c4771ull},
      // clang-format on
  };

  const auto opt = test_options();
  const auto results = bench::run_matrix(opt, kAllKinds);
  const auto apps = bench::selected_apps(opt);

  if (std::getenv("LRCSIM_PRINT_GOLDEN") != nullptr) {
    for (std::size_t i = 0; i < results.size(); ++i)
      for (const auto& cell : results[i])
        std::printf("      {\"%s\", \"%s\", 0x%016llxull},\n",
                    std::string(apps[i]->name).c_str(),
                    cell.report.protocol.c_str(),
                    static_cast<unsigned long long>(digest(cell.report)));
    return;
  }

  std::size_t k = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (const auto& cell : results[i]) {
      ASSERT_LT(k, std::size(kGolden));
      EXPECT_EQ(kGolden[k].app, std::string(apps[i]->name));
      EXPECT_EQ(kGolden[k].protocol, cell.report.protocol);
      EXPECT_EQ(kGolden[k].digest, digest(cell.report))
          << apps[i]->name << " / " << cell.report.protocol
          << " (regenerate with LRCSIM_PRINT_GOLDEN=1 only if the "
             "behavioural change is intended)";
      ++k;
    }
  }
  EXPECT_EQ(k, std::size(kGolden));
}

// Past-time schedules indicate a broken component; no app/protocol pair may
// trip the release-mode clamp.
TEST(Determinism, NoPastTimeSchedules) {
  const auto opt = test_options();
  const auto results = bench::run_matrix(opt, kAllKinds);
  for (const auto& row : results) {
    for (const auto& cell : row) {
      EXPECT_EQ(cell.report.sched_past_violations, 0u)
          << cell.report.protocol;
    }
  }
}

}  // namespace
}  // namespace lrc
