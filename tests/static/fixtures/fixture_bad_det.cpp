// Known-bad determinism constructs the layer-0 lint must flag. Each
// `// EXPECT: <rule>` marker anchors the finding line for
// scripts/run_static_checks.py --self-test. Analyzed, never compiled.
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <unordered_map>
#include <unordered_set>

struct Obj;

std::unordered_map<int, int> g_counts;       // EXPECT: unordered-container
std::unordered_set<long> g_seen;             // EXPECT: unordered-container
std::map<Obj*, int> g_by_ptr;                // EXPECT: pointer-key

unsigned jitter() {
  return static_cast<unsigned>(rand());      // EXPECT: entropy
}

unsigned seed_from_hw() {
  std::random_device rd;                     // EXPECT: entropy
  std::mt19937_64 rng(rd());                 // EXPECT: entropy
  return static_cast<unsigned>(rng());
}

long stamp() {
  auto t = std::chrono::steady_clock::now(); // EXPECT: wall-clock
  long wall = time(nullptr);                 // EXPECT: wall-clock
  return wall + t.time_since_epoch().count();
}

// det-lint: ok(nothing on the next line is flagged)  // EXPECT: orphan-annotation
int unrelated = 0;
