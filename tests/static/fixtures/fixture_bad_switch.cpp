// Known-bad switch shapes the layer-0 extractor must flag. Each
// `// EXPECT: <rule>` marker names the finding and anchors its line;
// scripts/run_static_checks.py --self-test requires the audit to produce
// exactly this set. The file is analyzed, never compiled (the duplicate
// case below would not build).
#include <cassert>

enum class Kind { kA, kB, kC, kD, kCount };

int bad_missing(Kind k) {
  switch (k) {  // EXPECT: unhandled-kind
    case Kind::kA:
      return 1;
    case Kind::kB:
      return 2;
    default:
      assert(false && "unexpected kind");
      return 0;
  }
}

int bad_partial_annotation(Kind k) {
  switch (k) {  // EXPECT: unhandled-kind
    case Kind::kA:
      return 1;
    case Kind::kB:
      return 2;
    // proto-lint: unreachable(kC : kC producers retired; kD forgotten)
    default:
      assert(false && "unexpected kind");
      return 0;
  }
}

int bad_duplicate(Kind k) {
  switch (k) {
    case Kind::kA:
      return 1;
    case Kind::kB:
    case Kind::kC:
      return 2;
    case Kind::kA:  // EXPECT: duplicate-case
      return 3;
    case Kind::kD:
      return 4;
  }
  return 0;
}

int bad_dead_case(Kind k) {
  switch (k) {
    case Kind::kA:
      return 1;
    case Kind::kB:
    case Kind::kC:
      return 2;
    case Kind::kD:  // EXPECT: unannotated-dead-case
      assert(false && "kD never reaches this fixture");
      return 0;
  }
  return 0;
}

int bad_stale(Kind k) {
  switch (k) {  // EXPECT: stale-annotation
    case Kind::kA:
    case Kind::kB:
    case Kind::kC:
    case Kind::kD:
      return 1;
    // proto-lint: unreachable(kD : stale — the case above handles kD)
    default:
      return 0;
  }
}

int bad_reason(Kind k) {
  switch (k) {  // EXPECT: unhandled-kind
    case Kind::kA:
    case Kind::kB:
    case Kind::kC:
      return 1;
    // proto-lint: unreachable(kD)  // EXPECT: annotation-reason
    default:
      return 0;
  }
}
