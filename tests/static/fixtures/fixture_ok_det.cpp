// The same determinism hazards as fixture_bad_det.cpp, each carrying a
// `// det-lint: ok(reason)` allowlist annotation. The fixture self-test
// requires the lint to produce zero findings here — proving annotations
// attach on both the same-line and preceding-line forms.
#include <cstdlib>
#include <map>
#include <random>
#include <unordered_map>

struct Obj;

// det-lint: ok(fixture — read back by key only, never iterated)
std::unordered_map<int, int> g_counts;

std::map<Obj*, int> g_by_ptr;  // det-lint: ok(fixture — debug-only index)

unsigned jitter(unsigned run_seed) {
  // det-lint: ok(seed is a pure function of the run options)
  std::mt19937_64 rng(run_seed * 1000003ULL + 13);
  return static_cast<unsigned>(rng());
}
