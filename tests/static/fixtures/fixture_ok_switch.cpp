// Well-formed switch shapes: complete dispatch, a properly annotated
// default, and a properly annotated dead case. The fixture self-test
// requires the audit to produce zero findings here.
#include <cassert>

enum class Kind { kA, kB, kC, kD, kCount };

int ok_complete(Kind k) {
  switch (k) {
    case Kind::kA:
      return 1;
    case Kind::kB:
    case Kind::kC:
      return 2;
    case Kind::kD:
      return 3;
    case Kind::kCount:
      return 0;
  }
  return 0;
}

int ok_annotated_default(Kind k) {
  switch (k) {
    case Kind::kA:
      return 1;
    case Kind::kB:
      return 2;
    // proto-lint: unreachable(kC, kD : this fixture's imaginary peers
    //   stopped producing kC and kD two protocol revisions ago)
    default:
      assert(false && "unexpected kind");
      return 0;
  }
}

int ok_annotated_dead_case(Kind k) {
  switch (k) {
    case Kind::kA:
    case Kind::kB:
      return 1;
    case Kind::kC:
      return 2;
    // proto-lint: unreachable(kD : kD is filtered out by the caller)
    case Kind::kD:
      assert(false && "kD filtered upstream");
      return 0;
  }
  return 0;
}
