#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lrc::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(30, [&](Cycle) { order.push_back(3); });
  e.schedule(10, [&](Cycle) { order.push_back(1); });
  e.schedule(20, [&](Cycle) { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
  EXPECT_EQ(e.events_executed(), 3u);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(5, [&order, i](Cycle) { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<unsigned>(i)], i);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int count = 0;
  std::function<void(Cycle)> chain = [&](Cycle t) {
    ++count;
    if (count < 5) e.schedule(t + 10, chain);
  };
  e.schedule(0, chain);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 40u);
}

TEST(Engine, SchedulingAtCurrentTimeRunsAfterCurrentEvent) {
  Engine e;
  std::vector<int> order;
  e.schedule(7, [&](Cycle t) {
    order.push_back(1);
    e.schedule(t, [&](Cycle) { order.push_back(2); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, StopHaltsProcessing) {
  Engine e;
  int count = 0;
  e.schedule(1, [&](Cycle) {
    ++count;
    e.stop();
  });
  e.schedule(2, [&](Cycle) { ++count; });
  e.run();
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(e.empty());
  e.run();  // resumes from where it stopped
  EXPECT_EQ(count, 2);
}

TEST(Engine, RunSomeBoundsEventCount) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    e.schedule(static_cast<Cycle>(i), [&](Cycle) { ++count; });
  }
  EXPECT_EQ(e.run_some(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(e.pending(), 6u);
}

TEST(Engine, NowAdvancesMonotonically) {
  Engine e;
  Cycle last = 0;
  bool monotone = true;
  for (int i = 0; i < 100; ++i) {
    e.schedule(static_cast<Cycle>((i * 37) % 50), [&](Cycle t) {
      monotone = monotone && t >= last;
      last = t;
    });
  }
  e.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace lrc::sim
