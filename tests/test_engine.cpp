#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event.hpp"

namespace lrc::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(30, [&](Cycle) { order.push_back(3); });
  e.schedule(10, [&](Cycle) { order.push_back(1); });
  e.schedule(20, [&](Cycle) { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
  EXPECT_EQ(e.events_executed(), 3u);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(5, [&order, i](Cycle) { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<unsigned>(i)], i);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int count = 0;
  std::function<void(Cycle)> chain = [&](Cycle t) {
    ++count;
    if (count < 5) e.schedule(t + 10, chain);
  };
  e.schedule(0, chain);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 40u);
}

TEST(Engine, SchedulingAtCurrentTimeRunsAfterCurrentEvent) {
  Engine e;
  std::vector<int> order;
  e.schedule(7, [&](Cycle t) {
    order.push_back(1);
    e.schedule(t, [&](Cycle) { order.push_back(2); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, StopHaltsProcessing) {
  Engine e;
  int count = 0;
  e.schedule(1, [&](Cycle) {
    ++count;
    e.stop();
  });
  e.schedule(2, [&](Cycle) { ++count; });
  e.run();
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(e.empty());
  e.run();  // resumes from where it stopped
  EXPECT_EQ(count, 2);
}

TEST(Engine, RunSomeBoundsEventCount) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    e.schedule(static_cast<Cycle>(i), [&](Cycle) { ++count; });
  }
  EXPECT_EQ(e.run_some(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(e.pending(), 6u);
}

TEST(Engine, NowAdvancesMonotonically) {
  Engine e;
  Cycle last = 0;
  bool monotone = true;
  for (int i = 0; i < 100; ++i) {
    e.schedule(static_cast<Cycle>((i * 37) % 50), [&](Cycle t) {
      monotone = monotone && t >= last;
      last = t;
    });
  }
  e.run();
  EXPECT_TRUE(monotone);
}

// Events far beyond the calendar ring land in the overflow heap; ties there
// must still fire in schedule order once they migrate back into the ring.
TEST(Engine, OverflowTiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  const Cycle far = 1u << 20;  // way past the ring horizon
  for (int i = 0; i < 16; ++i) {
    e.schedule(far, [&order, i](Cycle) { order.push_back(i); });
  }
  e.schedule(3, [&order](Cycle) { order.push_back(-1); });
  e.run();
  ASSERT_EQ(order.size(), 17u);
  EXPECT_EQ(order[0], -1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<unsigned>(i) + 1], i);
  EXPECT_EQ(e.now(), far);
}

// Interleave near (ring) and far (overflow) timestamps so migration happens
// while the ring is non-empty; global (time, seq) order must hold throughout.
TEST(Engine, MixedRingAndOverflowStaysOrdered) {
  Engine e;
  std::vector<Cycle> fired;
  std::uint32_t rng = 12345;
  for (int i = 0; i < 2000; ++i) {
    rng = rng * 1664525u + 1013904223u;
    const Cycle when = rng % (1u << 16);  // spans several ring laps
    e.schedule(when, [&fired](Cycle t) { fired.push_back(t); });
  }
  e.run();
  ASSERT_EQ(fired.size(), 2000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1], fired[i]);
  }
}

// Events may schedule follow-ups across ring laps from inside fire().
TEST(Engine, ChainsAcrossCalendarLaps) {
  Engine e;
  int hops = 0;
  std::function<void(Cycle)> hop = [&](Cycle t) {
    ++hops;
    if (hops < 8) e.schedule(t + 3000, hop);  // > ring width per hop
  };
  e.schedule(0, hop);
  e.run();
  EXPECT_EQ(hops, 8);
  EXPECT_EQ(e.now(), 7u * 3000u);
}

struct CountingEvent final : Event {
  int* counter;
  Cycle* seen;
  explicit CountingEvent(int* c, Cycle* s) : counter(c), seen(s) {}
  void fire(Cycle t) override {
    ++*counter;
    *seen = t;
  }
};

// schedule_make places typed events in the pool and recycles them.
TEST(Engine, TypedPooledEventsFireAndRecycle) {
  Engine e;
  int count = 0;
  Cycle seen = 0;
  for (int i = 0; i < 100; ++i) {
    e.schedule_make<CountingEvent>(static_cast<Cycle>(i), &count, &seen);
  }
  e.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(seen, 99u);
  EXPECT_EQ(e.stats().pool_events, 100u);
  EXPECT_EQ(e.stats().heap_events, 0u);
}

// A caller-owned event can be rescheduled repeatedly with zero allocation.
TEST(Engine, ExternalEventIsReusable) {
  Engine e;
  int count = 0;
  Cycle seen = 0;
  CountingEvent ev(&count, &seen);
  for (int round = 0; round < 5; ++round) {
    EXPECT_FALSE(ev.pending());
    e.schedule_external(static_cast<Cycle>(round * 10), ev);
    EXPECT_TRUE(ev.pending());
    e.run();
    EXPECT_EQ(count, round + 1);
    EXPECT_EQ(seen, static_cast<Cycle>(round * 10));
  }
  EXPECT_EQ(e.stats().pool_events, 0u);
  EXPECT_EQ(e.stats().heap_events, 0u);
}

// Closures above the pooled slot ceiling fall back to the heap but behave
// identically.
TEST(Engine, OversizedEventsFallBackToHeap) {
  Engine e;
  struct Big {
    char pad[Engine::kMaxPooledBytes] = {};
  };
  Big big;
  big.pad[0] = 42;
  int got = 0;
  e.schedule(4, [big, &got](Cycle) { got = big.pad[0]; });
  e.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(e.stats().heap_events, 1u);
}

// Scheduling in the past is a bug in the caller.  Debug builds die on it;
// release builds clamp to now() and count the violation.
TEST(Engine, PastScheduleIsRejected) {
  Engine e;
  e.schedule(50, [](Cycle) {});
  e.run();
  ASSERT_EQ(e.now(), 50u);
#ifndef NDEBUG
  EXPECT_DEATH(e.schedule(10, [](Cycle) {}), "");
#else
  int fired_at = -1;
  e.schedule(10, [&](Cycle t) { fired_at = static_cast<int>(t); });
  e.run();
  EXPECT_EQ(fired_at, 50);  // clamped to now()
  EXPECT_EQ(e.past_violations(), 1u);
#endif
}

}  // namespace
}  // namespace lrc::sim
