// Shared FNV-1a digests over core::Report, used by the determinism, PDES,
// and trace-replay equivalence tests. Any divergence between two runs — a
// single cycle, one extra message — changes the digest.
#pragma once

#include <cstdint>
#include <string>

#include "core/report.hpp"

namespace lrc::testutil {

class Digest {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 1099511628211ull;
    }
  }
  void mix(const std::string& s) {
    mix(s.size());
    for (unsigned char c : s) {
      h_ ^= c;
      h_ *= 1099511628211ull;
    }
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;
};

/// Every counter a Report carries. Pins serial (shards == 0) runs, where
/// the legacy engine's event order makes each field a pure function of
/// (app, protocol, seed, parameters).
inline std::uint64_t report_digest(const core::Report& r) {
  Digest d;
  d.mix(r.protocol);
  d.mix(r.nprocs);
  d.mix(r.execution_time);
  for (auto c : r.breakdown.cycles) d.mix(c);
  d.mix(r.per_cpu.size());
  for (const auto& b : r.per_cpu)
    for (auto c : b.cycles) d.mix(c);
  for (const auto& h : r.stall_hist) {
    d.mix(h.count());
    d.mix(h.sum());
    d.mix(h.max());
    for (unsigned b = 0; b < stats::Histogram::kBuckets; ++b)
      d.mix(h.bucket(b));
  }
  d.mix(r.cache.read_hits);
  d.mix(r.cache.read_misses);
  d.mix(r.cache.write_hits);
  d.mix(r.cache.write_misses);
  d.mix(r.cache.upgrade_misses);
  d.mix(r.cache.evictions);
  d.mix(r.cache.invalidations);
  for (auto v : r.miss_classes.n) d.mix(v);
  d.mix(r.nic.messages);
  d.mix(r.nic.control_messages);
  d.mix(r.nic.data_messages);
  d.mix(r.nic.payload_bytes);
  d.mix(r.nic.batched_arrivals);
  d.mix(r.nic.send_contention);
  d.mix(r.nic.recv_contention);
  d.mix(r.dram.reads);
  d.mix(r.dram.writes);
  d.mix(r.dram.bytes);
  d.mix(r.dram.contention);
  d.mix(r.dram.busy);
  d.mix(r.lock_acquires);
  d.mix(r.barrier_episodes);
  d.mix(r.sync.lock_requests);
  d.mix(r.sync.lock_grants);
  d.mix(r.sync.queued_requests);
  d.mix(r.sync.max_queue);
  d.mix(r.sync.barrier_arrivals);
  d.mix(r.sched_past_violations);
  d.mix(r.events_executed);
  return d.value();
}

/// The deterministic subset for sharded (shards >= 1) runs. Excluded by
/// design (see tests/test_pdes.cpp):
///  - miss_classes: the classifier keeps one global access stamp, so class
///    attribution depends on the wall-clock interleaving of threads;
///  - nic.batched_arrivals: arrival batching is a scheduling-order
///    heuristic, and cross-shard mailbox drains can batch differently;
///  - stall histogram buckets: omitted conservatively; the aggregate
///    count/sum/max per category are pinned.
inline std::uint64_t sharded_report_digest(const core::Report& r) {
  Digest d;
  d.mix(r.nprocs);
  d.mix(r.execution_time);
  for (auto c : r.breakdown.cycles) d.mix(c);
  for (const auto& b : r.per_cpu)
    for (auto c : b.cycles) d.mix(c);
  for (const auto& h : r.stall_hist) {
    d.mix(h.count());
    d.mix(h.sum());
    d.mix(h.max());
  }
  d.mix(r.cache.read_hits);
  d.mix(r.cache.read_misses);
  d.mix(r.cache.write_hits);
  d.mix(r.cache.write_misses);
  d.mix(r.cache.upgrade_misses);
  d.mix(r.cache.evictions);
  d.mix(r.cache.invalidations);
  d.mix(r.nic.messages);
  d.mix(r.nic.control_messages);
  d.mix(r.nic.data_messages);
  d.mix(r.nic.payload_bytes);
  d.mix(r.nic.send_contention);
  d.mix(r.nic.recv_contention);
  d.mix(r.dram.reads);
  d.mix(r.dram.writes);
  d.mix(r.dram.bytes);
  d.mix(r.dram.contention);
  d.mix(r.dram.busy);
  d.mix(r.lock_acquires);
  d.mix(r.barrier_episodes);
  d.mix(r.sync.lock_requests);
  d.mix(r.sync.lock_grants);
  d.mix(r.sync.queued_requests);
  d.mix(r.sync.max_queue);
  d.mix(r.sync.barrier_arrivals);
  d.mix(r.events_executed);
  return d.value();
}

}  // namespace lrc::testutil
