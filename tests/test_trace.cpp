// Tests for the message-trace facility, including trace-based assertions
// of protocol orderings.
#include <gtest/gtest.h>

#include <unordered_map>

#include "core/machine.hpp"
#include "sim/trace.hpp"

namespace lrc::core {
namespace {

using mesh::MsgKind;

TEST(Trace, DisabledByDefaultAndRecordsNothing) {
  Machine m(SystemParams::test_scale(2), ProtocolKind::kLRC);
  auto arr = m.alloc<double>(8, "a");
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) arr.put(cpu, 0, 1.0);
  });
  EXPECT_FALSE(m.trace().enabled());
  EXPECT_TRUE(m.trace().entries().empty());
}

TEST(Trace, RecordsDeliveriesInTimeOrder) {
  Machine m(SystemParams::test_scale(4), ProtocolKind::kLRC);
  m.trace().enable();
  auto arr = m.alloc<double>(64, "a");
  m.run([&](Cpu& cpu) {
    for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
      arr.put(cpu, i, 1.0);
    }
    cpu.barrier(0);
  });
  const auto& entries = m.trace().entries();
  ASSERT_FALSE(entries.empty());
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i].when, entries[i - 1].when);
  }
}

TEST(Trace, FiltersByLineAndKind) {
  Machine m(SystemParams::test_scale(2), ProtocolKind::kLRC);
  m.trace().enable();
  auto arr = m.alloc<double>(8, "a");
  const LineId line = m.amap().line_of(arr.addr(0));
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) arr.put(cpu, 0, 1.0);
  });
  const auto for_line = m.trace().for_line(line);
  EXPECT_FALSE(for_line.empty());
  for (const auto& e : for_line) EXPECT_EQ(e.line, line);
  const auto reqs = m.trace().of_kind(MsgKind::kWriteReq);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].src, 0u);
}

TEST(Trace, CapacityBoundIsRespected) {
  Machine m(SystemParams::test_scale(4), ProtocolKind::kSC);
  m.trace().enable(/*capacity=*/64);
  auto arr = m.alloc<double>(2048, "a");
  m.run([&](Cpu& cpu) {
    for (std::size_t i = cpu.id(); i < arr.size(); i += cpu.nprocs()) {
      arr.put(cpu, i, 1.0);
    }
  });
  EXPECT_LE(m.trace().entries().size(), 64u);
  EXPECT_GT(m.trace().dropped(), 0u);
}

TEST(Trace, DumpIsHumanReadable) {
  Machine m(SystemParams::test_scale(2), ProtocolKind::kLRC);
  m.trace().enable();
  auto arr = m.alloc<double>(8, "a");
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) (void)arr.get(cpu, 0);
  });
  const std::string d = m.trace().dump();
  EXPECT_NE(d.find("ReadReq"), std::string::npos);
  EXPECT_NE(d.find("ReadReply"), std::string::npos);
}

TEST(Trace, LrcRequestPrecedesReplyPerLine) {
  Machine m(SystemParams::test_scale(4), ProtocolKind::kLRC);
  m.trace().enable();
  auto arr = m.alloc<double>(256, "a");
  m.run([&](Cpu& cpu) {
    for (std::size_t i = 0; i < arr.size(); i += 8) (void)arr.get(cpu, i);
  });
  // For every line: the first ReadReply delivery never precedes the first
  // ReadReq delivery.
  std::unordered_map<LineId, Cycle> first_req;
  for (const auto& e : m.trace().entries()) {
    if (e.kind == MsgKind::kReadReq && !first_req.count(e.line)) {
      first_req[e.line] = e.when;
    }
    if (e.kind == MsgKind::kReadReply) {
      ASSERT_TRUE(first_req.count(e.line)) << "reply before any request";
      EXPECT_GE(e.when, first_req[e.line]);
    }
  }
}

TEST(Trace, NoticePrecedesItsAck) {
  Machine m(SystemParams::paper_default(4), ProtocolKind::kLRC);
  m.trace().enable();
  auto arr = m.alloc<double>(64, "a");
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      (void)arr.get(cpu, 0);
    } else if (cpu.id() == 0) {
      cpu.compute(50'000);
      arr.put(cpu, 0, 1.0);
      cpu.compute(50'000);
    }
  });
  const auto notices = m.trace().of_kind(MsgKind::kWriteNotice);
  const auto acks = m.trace().of_kind(MsgKind::kNoticeAck);
  ASSERT_EQ(notices.size(), 1u);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_LT(notices[0].when, acks[0].when);
  EXPECT_EQ(notices[0].dst, acks[0].src);
}

}  // namespace
}  // namespace lrc::core
