#include "mem/backing_store.hpp"

#include <gtest/gtest.h>

namespace lrc::mem {
namespace {

TEST(BackingStore, AllocatesAlignedSegments) {
  BackingStore s;
  const Addr a = s.allocate(100, 128, "a");
  EXPECT_EQ(a % 128, 0u);
  const Addr b = s.allocate(8, 128, "b");
  EXPECT_EQ(b % 128, 0u);
  EXPECT_GE(b, a + 100);
}

TEST(BackingStore, LoadStoreRoundTrip) {
  BackingStore s;
  const Addr a = s.allocate(64, 8);
  s.store<double>(a, 3.25);
  s.store<std::int32_t>(a + 8, -7);
  EXPECT_DOUBLE_EQ(s.load<double>(a), 3.25);
  EXPECT_EQ(s.load<std::int32_t>(a + 8), -7);
}

TEST(BackingStore, GrowsOnDemand) {
  BackingStore s(16);
  const Addr a = s.allocate(1 << 20, 64);
  s.store<std::uint64_t>(a + (1 << 20) - 8, 0xdeadbeefULL);
  EXPECT_EQ(s.load<std::uint64_t>(a + (1 << 20) - 8), 0xdeadbeefULL);
}

TEST(BackingStore, ZeroInitialized) {
  BackingStore s;
  const Addr a = s.allocate(256, 64);
  for (unsigned i = 0; i < 256; i += 8) {
    EXPECT_EQ(s.load<std::uint64_t>(a + i), 0u);
  }
}

TEST(BackingStore, OutOfRangeAccessThrows) {
  BackingStore s;
  const Addr a = s.allocate(16, 16);
  EXPECT_THROW(s.load<std::uint64_t>(a + (1 << 22)), std::out_of_range);
}

TEST(BackingStore, TracksSegments) {
  BackingStore s;
  s.allocate(10, 8, "alpha");
  s.allocate(20, 8, "beta");
  ASSERT_EQ(s.segments().size(), 2u);
  EXPECT_EQ(s.segments()[0].name, "alpha");
  EXPECT_EQ(s.segments()[1].bytes, 20u);
}

TEST(BackingStore, RejectsBadAlignment) {
  BackingStore s;
  EXPECT_THROW(s.allocate(8, 3), std::invalid_argument);
  EXPECT_THROW(s.allocate(8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace lrc::mem
