// Directed regression tests for the protocol races the MSI family must
// survive: silent evictions of lines with transactions in flight, and
// forwards that reach an owner which no longer holds the line.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "proto/msi.hpp"

namespace lrc::core {
namespace {

constexpr Cycle kGap = 50'000;

struct RaceFixture : ::testing::TestWithParam<ProtocolKind> {
  RaceFixture() : m(SystemParams::paper_default(8), GetParam()) {
    arr = m.alloc<double>(4096, "data");
    // A second segment whose lines conflict with arr's in the cache.
    const std::uint32_t sets = m.params().cache_bytes / m.params().line_bytes;
    stride_elems = static_cast<std::size_t>(sets) * m.params().line_bytes /
                   sizeof(double);
    conflict = m.alloc<double>(stride_elems + 4096, "conflict");
  }
  proto::Directory& dir() {
    return dynamic_cast<proto::ProtocolBase&>(m.protocol()).directory();
  }
  /// Element index within `conflict` that maps to the same set as arr[i].
  std::size_t alias_of(std::size_t i) {
    const LineId la = m.amap().line_of(arr.addr(i));
    const LineId lc = m.amap().line_of(conflict.addr(0));
    const std::uint32_t sets = m.params().cache_bytes / m.params().line_bytes;
    const std::size_t per_line = m.params().line_bytes / sizeof(double);
    // Advance conflict's first line to the same set as la.
    const std::uint32_t set_a = la % sets;
    const std::uint32_t set_c = lc % sets;
    const std::uint32_t delta = (set_a + sets - set_c) % sets;
    return static_cast<std::size_t>(delta) * per_line;
  }

  Machine m;
  SharedArray<double> arr;
  SharedArray<double> conflict;
  std::size_t stride_elems = 0;
};

TEST_P(RaceFixture, EvictionDuringUpgradeRecovers) {
  // Write to a read-only line, then displace it before the upgrade
  // acknowledgement returns. The protocol must re-fetch and complete; this
  // deadlocked ERC before the FwdNack/refetch paths existed.
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    (void)arr.get(cpu, 0);              // RO copy
    arr.put(cpu, 0, 1.0);               // upgrade transaction starts
    (void)conflict.get(cpu, alias_of(0));  // evicts arr line 0 immediately
    cpu.compute(kGap);
    // The write must still be globally visible and re-readable.
    EXPECT_DOUBLE_EQ(arr.get(cpu, 0), 1.0);
  });
  EXPECT_DOUBLE_EQ(m.peek<double>(arr.addr(0)), 1.0);
}

TEST_P(RaceFixture, ForwardToOwnerWhoSilentlyLostTheLine) {
  // Processor 0 becomes the registered writer but loses its copy to a
  // conflict eviction; processor 1 then write-misses the same line. Under
  // the MSI protocols the home forwards to 0, which must NACK so the home
  // serves 1 from memory.
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      (void)arr.get(cpu, 0);
      arr.put(cpu, 0, 1.0);
      (void)conflict.get(cpu, alias_of(0));  // silent/clean displacement
      cpu.compute(3 * kGap);
    } else if (cpu.id() == 1) {
      cpu.compute(kGap);
      arr.put(cpu, 1, 2.0);  // same line
      cpu.compute(kGap);
      EXPECT_DOUBLE_EQ(arr.get(cpu, 0), 1.0);
    }
  });
  EXPECT_DOUBLE_EQ(m.peek<double>(arr.addr(1)), 2.0);
}

TEST_P(RaceFixture, ReadDuringOutstandingWriteTransaction) {
  // A read that lands while the same processor's write transaction is in
  // flight must merge, not duplicate requests.
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    arr.put(cpu, 512, 3.5);             // write miss in flight
    EXPECT_DOUBLE_EQ(arr.get(cpu, 512), 3.5);  // bypass or merge
    EXPECT_DOUBLE_EQ(arr.get(cpu, 513), 0.0);  // other word, same line
  });
}

TEST_P(RaceFixture, WritebackRacesWithNewRequest) {
  // Owner writes a line, evicts it (writeback in flight), then immediately
  // re-reads it. Per-pair FIFO means the home sees the writeback first and
  // must serve the re-read from fresh memory.
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    arr.put(cpu, 0, 7.0);
    cpu.compute(kGap);                   // let the write complete
    (void)conflict.get(cpu, alias_of(0));  // evict (dirty -> writeback)
    EXPECT_DOUBLE_EQ(arr.get(cpu, 0), 7.0);  // immediate re-read
  });
  auto* e = dir().find(m.amap().line_of(arr.addr(0)));
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->is_sharer(0));
}

TEST_P(RaceFixture, ConcurrentWritersToDistinctWords) {
  // All processors hammer distinct words of one line with interleaved
  // evictions; data must come out intact whatever the protocol does.
  m.run([&](Cpu& cpu) {
    const std::size_t w = cpu.id();
    for (int round = 0; round < 10; ++round) {
      arr.put(cpu, w, static_cast<double>(round + 1));
      (void)conflict.get(cpu, alias_of(0) + 16 * cpu.id());
      cpu.compute(17 * (cpu.id() + 1));
    }
    cpu.barrier(0);
  });
  for (unsigned p = 0; p < 8; ++p) {
    EXPECT_DOUBLE_EQ(m.peek<double>(arr.addr(p)), 10.0) << "word " << p;
  }
}

TEST_P(RaceFixture, UpgradeLosesToConcurrentWriter) {
  // Two processors race an upgrade and an exclusive fetch on one line.
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      (void)arr.get(cpu, 0);
      arr.put(cpu, 0, 1.0);  // upgrade
    } else if (cpu.id() == 1) {
      (void)arr.get(cpu, 0);
      arr.put(cpu, 1, 2.0);  // upgrade on the same line, different word
    }
    cpu.barrier(0);
    EXPECT_DOUBLE_EQ(arr.get(cpu, 0), 1.0);
    EXPECT_DOUBLE_EQ(arr.get(cpu, 1), 2.0);
  });
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, RaceFixture,
                         ::testing::Values(ProtocolKind::kSC,
                                           ProtocolKind::kERC,
                                           ProtocolKind::kLRC,
                                           ProtocolKind::kLRCExt),
                         [](const auto& info) {
                           std::string n(to_string(info.param));
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace lrc::core
