// Schedule-explorer tests (src/mc/, docs/MODELCHECK.md): the engine's
// arbiter hook, explorer exhaustiveness and determinism, sleep-set
// reduction soundness, and — in LRCSIM_CHECK builds — the pinned
// counterexamples for the two schedule-dependent protocol mutations that
// per-seed litmus runs provably miss.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/litmus.hpp"
#include "mc/explorer.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"

namespace {

using lrc::check::LitmusProgram;
using lrc::core::ProtocolKind;
using lrc::mc::Choices;
using lrc::mc::Decision;
using lrc::mc::ExploreOptions;
using lrc::mc::ExploreResult;

// ---- Engine arbiter hook ---------------------------------------------------

// An arbiter that always picks the LAST candidate, recording what it saw.
class LastPicker final : public lrc::sim::ScheduleArbiter {
 public:
  std::size_t pick(lrc::Cycle, const lrc::sim::Event* const* cands,
                   std::size_t n) override {
    widths.push_back(n);
    last_seq = cands[n - 1]->seq();
    return n - 1;
  }
  std::vector<std::size_t> widths;
  std::uint64_t last_seq = 0;
};

TEST(ScheduleArbiter, ControlsTieOrderAndSeesSingletons) {
  lrc::sim::Engine e;
  LastPicker arb;
  e.set_arbiter(&arb);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    e.schedule(5, [&order, i](lrc::Cycle) { order.push_back(i); });
  }
  e.schedule(9, [&order](lrc::Cycle) { order.push_back(9); });
  e.run();
  // Tie at cycle 5 resolved last-first; the lone event at cycle 9 is still
  // reported to the arbiter (width 1) so an explorer can prune paths where
  // a sleeping event fires.
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0, 9}));
  EXPECT_EQ(arb.widths, (std::vector<std::size_t>{3, 2, 1, 1}));
}

TEST(ScheduleArbiter, NoCoEnabledEventsMeansNoDecisionPoints) {
  // Events at pairwise-distinct cycles are never co-enabled: the arbiter
  // only ever sees singleton pops, so there is exactly one schedule — the
  // explorer's "no ties => single schedule" base case.
  lrc::sim::Engine e;
  LastPicker arb;
  e.set_arbiter(&arb);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    e.schedule(static_cast<lrc::Cycle>(10 * i + 1),
               [&order, i](lrc::Cycle) { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(arb.widths, (std::vector<std::size_t>{1, 1, 1, 1}));
}

TEST(ScheduleArbiter, DefaultPickMatchesSeqOrder) {
  // Picking index 0 everywhere must reproduce the engine's native order.
  class FirstPicker final : public lrc::sim::ScheduleArbiter {
   public:
    std::size_t pick(lrc::Cycle, const lrc::sim::Event* const*,
                     std::size_t) override {
      return 0;
    }
  };
  lrc::sim::Engine plain;
  lrc::sim::Engine arbd;
  FirstPicker arb;
  arbd.set_arbiter(&arb);
  std::vector<int> order_plain, order_arbd;
  for (auto* p : {&order_plain, &order_arbd}) {
    lrc::sim::Engine& e = (p == &order_plain) ? plain : arbd;
    for (int i = 0; i < 6; ++i) {
      e.schedule(static_cast<lrc::Cycle>(3 + (i % 2)),
                 [p, i](lrc::Cycle) { p->push_back(i); });
    }
    e.run();
  }
  EXPECT_EQ(order_plain, order_arbd);
}

// ---- Explorer --------------------------------------------------------------

LitmusProgram parse(const std::string& text, const char* name) {
  return LitmusProgram::parse(text, name);
}

#ifdef LRCSIM_CHECK

TEST(McExplore, OnlyMandatoryStartTieYieldsTwoSchedules) {
  // The DSL floor is two processors, whose fibers are co-enabled at t=0 —
  // that start tie is the one unavoidable decision point. A program whose
  // processors never interact (P1 only burns compute) has no further ties,
  // so the whole tree is exactly the two start orders; the explorer must
  // not invent decision points where the engine has none.
  const auto prog = parse("procs 2\nvars x\nP0: W x 1 ; R x r0\nP1: D 3\n",
                          "solo");
  ExploreOptions opts;
  const ExploreResult res = lrc::mc::explore(prog, ProtocolKind::kLRC, opts);
  EXPECT_EQ(res.schedules, 2u);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.violating, 0u);
}

TEST(McExplore, ToyPermutationCompleteness) {
  // Three fibers whose only shared decision is the 3-way start tie at t=0:
  // unreduced exploration must produce exactly 3! = 6 schedules. Fibers
  // are mutually dependent (they share the register file), so sleep sets
  // must not remove any of the 6 either.
  const auto prog =
      parse("procs 3\nvars x\nP0: D 1\nP1: D 2\nP2: D 4\n", "toy3");
  ExploreOptions opts;
  opts.reduce = false;
  const ExploreResult raw = lrc::mc::explore(prog, ProtocolKind::kSC, opts);
  EXPECT_EQ(raw.schedules, 6u);
  EXPECT_TRUE(raw.complete);
  opts.reduce = true;
  const ExploreResult red = lrc::mc::explore(prog, ProtocolKind::kSC, opts);
  EXPECT_EQ(red.schedules, 6u);
  EXPECT_TRUE(red.complete);
}

TEST(McExplore, DeterministicAcrossRepeats) {
  const auto prog = LitmusProgram::parse_file(std::string(LRCSIM_LITMUS_DIR) +
                                              "/mc_notice_race.litmus");
  ExploreOptions opts;
  const ExploreResult a = lrc::mc::explore(prog, ProtocolKind::kLRC, opts);
  const ExploreResult b = lrc::mc::explore(prog, ProtocolKind::kLRC, opts);
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.sleep_pruned, b.sleep_pruned);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.violating, b.violating);
  EXPECT_EQ(a.counterexamples.size(), b.counterexamples.size());
}

TEST(McExplore, ReductionPreservesViolationsAndSavesWork) {
  // Sleep sets may only skip Mazurkiewicz-equivalent reorderings: the
  // reduced and unreduced explorations must agree on whether the mutation
  // is caught, and reduction must not enumerate more schedules.
  const auto prog = LitmusProgram::parse_file(std::string(LRCSIM_LITMUS_DIR) +
                                              "/mc_notice_race.litmus");
  lrc::check::MutationGuard g(lrc::check::Mutation::kTieDropWriteNotice);
  ExploreOptions opts;
  const ExploreResult red = lrc::mc::explore(prog, ProtocolKind::kLRC, opts);
  opts.reduce = false;
  const ExploreResult raw = lrc::mc::explore(prog, ProtocolKind::kLRC, opts);
  EXPECT_TRUE(red.complete);
  EXPECT_TRUE(raw.complete);
  EXPECT_GT(red.violating, 0u);
  EXPECT_GT(raw.violating, 0u);
  EXPECT_LE(red.schedules, raw.schedules);
}

TEST(McExplore, SmallCorpusCleanUnderAllProtocols) {
  constexpr ProtocolKind kAll[] = {ProtocolKind::kSC, ProtocolKind::kERC,
                                   ProtocolKind::kERCWT, ProtocolKind::kLRC,
                                   ProtocolKind::kLRCExt};
  for (const char* name : {"/sb.litmus", "/mp_lock.litmus"}) {
    const auto prog =
        LitmusProgram::parse_file(std::string(LRCSIM_LITMUS_DIR) + name);
    for (ProtocolKind kind : kAll) {
      const ExploreResult res = lrc::mc::explore(prog, kind, ExploreOptions{});
      EXPECT_TRUE(res.complete) << name << " " << lrc::core::to_string(kind);
      EXPECT_EQ(res.violating, 0u)
          << name << " " << lrc::core::to_string(kind);
    }
  }
}

// ---- Pinned mutation counterexamples --------------------------------------
//
// The two kTie* mutations key on mesh::Message::tie_inverted, which is
// provably false in every default-order run (the engine fires equal-time
// events in ascending seq order): seeded litmus runs cannot catch them.
// The explorer finds them by inverting one same-cycle cross-source arrival
// tie. The decision vectors below are the first counterexamples the
// explorer reports; they are pinned so a protocol or timing change that
// silently breaks the reproduction fails here.

void expect_seeds_miss(const LitmusProgram& prog) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const auto res = lrc::check::run_litmus(prog, ProtocolKind::kLRC, seed);
    EXPECT_TRUE(res.passed()) << "seed " << seed
                              << " unexpectedly caught the mutation";
  }
}

bool any_violation_contains(const std::vector<std::string>& vs,
                            const std::string& needle) {
  for (const auto& v : vs) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(McMutation, TieDropWriteNoticeCaughtOnlyByExplorer) {
  const auto prog = LitmusProgram::parse_file(std::string(LRCSIM_LITMUS_DIR) +
                                              "/mc_notice_race.litmus");
  lrc::check::MutationGuard g(lrc::check::Mutation::kTieDropWriteNotice);
  expect_seeds_miss(prog);

  const ExploreResult res =
      lrc::mc::explore(prog, ProtocolKind::kLRC, ExploreOptions{});
  EXPECT_TRUE(res.complete);
  ASSERT_GT(res.violating, 0u);
  ASSERT_FALSE(res.counterexamples.empty());
  EXPECT_TRUE(any_violation_contains(res.counterexamples[0].violations,
                                     "stale read"));

  // Pinned replay: inverting the notice/grant arrival tie (decision 3)
  // reproduces the stale read without re-searching.
  const Choices pinned{0, 0, 0, 1};
  std::vector<Decision> trace;
  const auto rr = lrc::mc::replay(prog, ProtocolKind::kLRC, /*sync_window=*/0,
                                  pinned, &trace);
  EXPECT_TRUE(any_violation_contains(rr.violations, "stale read"));
  ASSERT_GE(trace.size(), 4u);
  EXPECT_EQ(trace[3].when, 139u);
  EXPECT_EQ(trace[3].chosen, 1u);
  ASSERT_EQ(trace[3].cands.size(), 2u);
  // Cross-source arrivals at node 2: the write notice from home 0 and the
  // lock grant from sync home 1.
  EXPECT_EQ(trace[3].cands[0].src, 0u);
  EXPECT_EQ(trace[3].cands[1].src, 1u);
  EXPECT_EQ(trace[3].cands[0].actor, 2u);
  EXPECT_EQ(trace[3].cands[1].actor, 2u);
}

TEST(McMutation, TieSkipMembershipRecomputeCaughtOnlyByExplorer) {
  const auto prog = LitmusProgram::parse_file(std::string(LRCSIM_LITMUS_DIR) +
                                              "/mc_member_race.litmus");
  lrc::check::MutationGuard g(
      lrc::check::Mutation::kTieSkipMembershipRecompute);
  expect_seeds_miss(prog);

  const ExploreResult res =
      lrc::mc::explore(prog, ProtocolKind::kLRC, ExploreOptions{});
  EXPECT_TRUE(res.complete);
  ASSERT_GT(res.violating, 0u);
  ASSERT_FALSE(res.counterexamples.empty());
  EXPECT_TRUE(any_violation_contains(res.counterexamples[0].violations,
                                     "state disagrees with masks"));

  // Pinned replay: inverting the InvalNotify/WriteReq arrival tie at home
  // 0 (decision 6) leaves the entry state inconsistent with its masks.
  const Choices pinned{0, 0, 0, 0, 0, 0, 1, 0};
  std::vector<Decision> trace;
  const auto rr = lrc::mc::replay(prog, ProtocolKind::kLRC, /*sync_window=*/0,
                                  pinned, &trace);
  EXPECT_TRUE(any_violation_contains(rr.violations,
                                     "state disagrees with masks"));
  ASSERT_GE(trace.size(), 7u);
  EXPECT_EQ(trace[6].chosen, 1u);
  ASSERT_EQ(trace[6].cands.size(), 2u);
  EXPECT_EQ(trace[6].cands[0].src, 2u);  // InvalNotify from node 2
  EXPECT_EQ(trace[6].cands[1].src, 1u);  // write announce from node 1
  EXPECT_EQ(trace[6].cands[0].actor, 0u);
  EXPECT_EQ(trace[6].cands[1].actor, 0u);
}

TEST(McExplore, ExploredTraceReplaysIdentically) {
  const auto prog = LitmusProgram::parse_file(std::string(LRCSIM_LITMUS_DIR) +
                                              "/mc_member_race.litmus");
  lrc::check::MutationGuard g(
      lrc::check::Mutation::kTieSkipMembershipRecompute);
  const ExploreResult res =
      lrc::mc::explore(prog, ProtocolKind::kLRC, ExploreOptions{});
  ASSERT_FALSE(res.counterexamples.empty());
  const auto& cex = res.counterexamples[0];
  std::vector<Decision> trace;
  const auto rr = lrc::mc::replay(prog, ProtocolKind::kLRC, 0,
                                  lrc::mc::choices_of(cex.trace), &trace);
  EXPECT_EQ(rr.violations, cex.violations);
  ASSERT_EQ(trace.size(), cex.trace.size());
  for (std::size_t k = 0; k < trace.size(); ++k) {
    EXPECT_EQ(trace[k].when, cex.trace[k].when) << "decision " << k;
    EXPECT_EQ(trace[k].chosen, cex.trace[k].chosen) << "decision " << k;
    ASSERT_EQ(trace[k].cands.size(), cex.trace[k].cands.size());
    for (std::size_t i = 0; i < trace[k].cands.size(); ++i) {
      EXPECT_EQ(trace[k].cands[i].seq, cex.trace[k].cands[i].seq);
    }
  }
}

#else  // !LRCSIM_CHECK

TEST(McExplore, RequiresCheckBuild) {
  const auto prog = parse("procs 2\nvars x\nP0: W x 1\nP1: R x r0\n", "solo");
  EXPECT_THROW(lrc::mc::explore(prog, ProtocolKind::kLRC, ExploreOptions{}),
               std::logic_error);
}

#endif  // LRCSIM_CHECK

}  // namespace
