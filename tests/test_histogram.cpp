#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace lrc::stats {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Histogram::bucket_of(3), 1u);
  EXPECT_EQ(Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Histogram::bucket_of(1023), 9u);
  EXPECT_EQ(Histogram::bucket_of(1024), 10u);
}

TEST(Histogram, MeanSumMax) {
  Histogram h;
  h.add(10);
  h.add(20);
  h.add(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 330u);
  EXPECT_EQ(h.max(), 300u);
  EXPECT_DOUBLE_EQ(h.mean(), 110.0);
}

TEST(Histogram, QuantilesWithinFactorOfTwo) {
  Histogram h;
  for (Cycle v = 1; v <= 1000; ++v) h.add(v);
  // Exact p50 is 500; the bucketed answer is the bucket upper bound.
  const Cycle p50 = h.quantile(0.5);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 1023u);
  const Cycle p99 = h.quantile(0.99);
  EXPECT_GE(p99, 990u);
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_EQ(h.quantile(1.0), h.max());
}

TEST(Histogram, MergeAccumulates) {
  Histogram a;
  Histogram b;
  a.add(4);
  a.add(8);
  b.add(1000);
  a += b;
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.sum(), 1012u);
}

TEST(Histogram, SummaryIsReadable) {
  Histogram h;
  h.add(272);
  const std::string s = h.summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("max=272"), std::string::npos);
}

TEST(Histogram, RemoteReadLatencyLandsInTheRightBucket) {
  // Machine-level integration: a single 272-cycle remote read stall must
  // appear in the read-stall histogram.
  using namespace lrc::core;
  Machine m(SystemParams::paper_default(64), ProtocolKind::kLRC);
  m.alloc_bytes(60 * 4096, "span");
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) cpu.read<double>(59 * 4096);
  });
  const auto& h = m.cpu(0).stall_hist(StallKind::kRead);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 272u);
  const auto r = m.report();
  EXPECT_EQ(r.stall_hist[static_cast<std::size_t>(StallKind::kRead)].count(),
            1u);
}

TEST(Histogram, SyncStallsShowUpInReports) {
  using namespace lrc::core;
  Machine m(SystemParams::test_scale(8), ProtocolKind::kLRC);
  auto c = m.alloc<std::int64_t>(1, "c");
  m.run([&](Cpu& cpu) {
    cpu.lock(1);
    c.put(cpu, 0, c.get(cpu, 0) + 1);
    cpu.unlock(1);
  });
  const auto r = m.report();
  const auto& sync =
      r.stall_hist[static_cast<std::size_t>(StallKind::kSync)];
  EXPECT_GT(sync.count(), 0u);
  EXPECT_NE(r.summary().find("sync-stall latency"), std::string::npos);
}

}  // namespace
}  // namespace lrc::stats
