// Quickstart: build a machine, run a small SPMD program under lazy release
// consistency, and read the report.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/machine.hpp"

int main() {
  using namespace lrc;

  // A 16-processor mesh with the paper's Table-1 parameters.
  auto params = core::SystemParams::paper_default(16);
  core::Machine m(params, core::ProtocolKind::kLRC);

  // Shared memory is allocated up front; initialization through poke_mem is
  // untimed (it does not appear in the statistics).
  auto vec = m.alloc<double>(1 << 14, "vector");
  auto partial = m.alloc<double>(16, "partial-sums");
  for (std::size_t i = 0; i < vec.size(); ++i) {
    m.poke_mem(vec.addr(i), 1.0 / static_cast<double>(i + 1));
  }

  // The SPMD body runs once per simulated processor. All shared accesses
  // (get/put), locks, and barriers are timed by the coherence protocol.
  m.run([&](core::Cpu& cpu) {
    const std::size_t chunk = vec.size() / cpu.nprocs();
    const std::size_t lo = cpu.id() * chunk;
    double sum = 0;
    for (std::size_t i = lo; i < lo + chunk; ++i) {
      sum += vec.get(cpu, i);
      cpu.compute(1);  // charge one ALU cycle per add
    }
    partial.put(cpu, cpu.id(), sum);
    cpu.barrier(0);

    if (cpu.id() == 0) {
      double total = 0;
      for (unsigned p = 0; p < cpu.nprocs(); ++p) {
        total += partial.get(cpu, p);
      }
      partial.put(cpu, 0, total);
    }
  });

  const core::Report r = m.report();
  std::printf("harmonic sum H(%zu) = %.6f\n", vec.size(),
              m.peek<double>(partial.addr(0)));
  std::printf("\n%s\n", r.summary().c_str());
  std::printf("Try flipping ProtocolKind::kLRC to kERC or kSC above and\n"
              "watch the execution time and overhead mix change.\n");
  return 0;
}
