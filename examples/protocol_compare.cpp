// Protocol comparison: run one of the paper's applications under all four
// coherence protocols and print the execution-time and overhead picture —
// a miniature of the paper's Figures 4-7.
//
//   $ ./build/examples/protocol_compare [app] [n]
//   $ ./build/examples/protocol_compare mp3d 2000
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/app.hpp"
#include "core/machine.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;

  const std::string app_name = argc > 1 ? argv[1] : "mp3d";
  const auto* info = apps::find_app(app_name);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown app '%s'; one of:", app_name.c_str());
    for (const auto& a : apps::registry()) {
      std::fprintf(stderr, " %s", std::string(a.name).c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  apps::AppConfig cfg;
  cfg.n = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : info->test_n;
  cfg.steps = info->test_steps;

  std::printf("%s — %s (n=%u)\n\n", std::string(info->name).c_str(),
              std::string(info->description).c_str(), cfg.n);

  stats::Table table({"Protocol", "Exec cycles", "vs SC", "Miss rate", "cpu%",
                      "read%", "write%", "sync%", "Messages"});
  double sc_time = 0;
  for (auto kind : {core::ProtocolKind::kSC, core::ProtocolKind::kERC,
                    core::ProtocolKind::kLRC, core::ProtocolKind::kLRCExt}) {
    auto params = core::SystemParams::paper_default(32);
    params.cache_bytes = 16 * 1024;  // scaled with the small input
    core::Machine m(params, kind);
    const auto app_res = info->run(m, cfg);
    const auto r = m.report();
    if (kind == core::ProtocolKind::kSC) {
      sc_time = static_cast<double>(r.execution_time);
    }
    const double total = static_cast<double>(r.breakdown.total());
    auto pct = [&](stats::StallKind k) {
      return stats::Table::pct(r.breakdown[k] / total, 1);
    };
    table.add_row({std::string(core::to_string(kind)),
                   stats::Table::count(r.execution_time),
                   stats::Table::fixed(r.execution_time / sc_time, 3),
                   stats::Table::pct(r.miss_rate(), 2),
                   pct(stats::StallKind::kCpu), pct(stats::StallKind::kRead),
                   pct(stats::StallKind::kWrite), pct(stats::StallKind::kSync),
                   stats::Table::count(r.nic.messages)});
    if (!app_res.valid) {
      std::printf("  (validation note: %s)\n", app_res.detail.c_str());
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading the table: LRC usually converts ERC's read/write stalls into\n"
      "a smaller amount of synchronization time; LRC-ext pushes all notice\n"
      "traffic into releases and usually loses that trade (paper Sec. 4.3).\n");
  return 0;
}
