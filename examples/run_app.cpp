// Command-line front end for the seven paper applications: pick an app,
// protocol, size and processor count, run it, and print the full report.
//
//   $ ./build/examples/run_app mp3d LRC --procs 32 --n 2000
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/app.hpp"
#include "core/machine.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <app> <SC|ERC|LRC|LRC-ext> [--procs N] [--n N]\n"
                 "          [--steps N] [--seed N] [--cache-kb N] [--future]\n"
                 "apps:",
                 argv[0]);
    for (const auto& a : apps::registry()) {
      std::fprintf(stderr, " %s", std::string(a.name).c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  const auto* info = apps::find_app(argv[1]);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown app: %s\n", argv[1]);
    return 2;
  }
  core::ProtocolKind kind;
  const std::string pk = argv[2];
  if (pk == "SC") {
    kind = core::ProtocolKind::kSC;
  } else if (pk == "ERC") {
    kind = core::ProtocolKind::kERC;
  } else if (pk == "LRC") {
    kind = core::ProtocolKind::kLRC;
  } else if (pk == "LRC-ext") {
    kind = core::ProtocolKind::kLRCExt;
  } else {
    std::fprintf(stderr, "unknown protocol: %s\n", pk.c_str());
    return 2;
  }

  unsigned procs = 64;
  bool future = false;
  std::uint32_t cache_kb = 32;
  apps::AppConfig cfg;
  cfg.n = info->bench_n;
  cfg.steps = info->bench_steps;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() { return std::stoul(argv[++i]); };
    if (arg == "--procs") {
      procs = static_cast<unsigned>(next());
    } else if (arg == "--n") {
      cfg.n = static_cast<unsigned>(next());
    } else if (arg == "--steps") {
      cfg.steps = static_cast<unsigned>(next());
    } else if (arg == "--seed") {
      cfg.seed = next();
    } else if (arg == "--cache-kb") {
      cache_kb = static_cast<std::uint32_t>(next());
    } else if (arg == "--future") {
      future = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }

  auto params = future ? core::SystemParams::future_machine(procs)
                       : core::SystemParams::paper_default(procs);
  params.cache_bytes = cache_kb * 1024;
  core::Machine m(params, kind);
  const auto res = info->run(m, cfg);
  const auto r = m.report();
  std::printf("%s\nvalidation: %s (%s)\n", r.summary().c_str(),
              res.valid ? "OK" : "FAILED", res.detail.c_str());
  return res.valid ? 0 : 1;
}
