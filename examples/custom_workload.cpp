// Writing your own workload against the library's public API.
//
// This example builds a small pipeline: a producer fills bounded buffers
// that consumers drain, all through locks — then prints how each protocol
// handles the migratory buffer lines. It shows the full API surface:
// machine construction, typed shared arrays, untimed initialization,
// locks/barriers, per-processor roles, and report inspection.
//
//   $ ./build/examples/custom_workload
#include <cstdio>

#include "core/machine.hpp"
#include "stats/table.hpp"

namespace {

using namespace lrc;

struct Result {
  Cycle exec = 0;
  Cycle sync = 0;
  std::int64_t items = 0;
};

Result run(core::ProtocolKind kind) {
  auto params = core::SystemParams::paper_default(8);
  core::Machine m(params, kind);

  constexpr unsigned kSlots = 8;
  constexpr unsigned kItems = 256;           // per producer
  constexpr SyncId kSlotLock = 100;          // + slot index
  constexpr SyncId kBarrier = 0;

  auto buffer = m.alloc<double>(kSlots * 16, "buffer");   // one line per slot
  auto full = m.alloc<std::int32_t>(kSlots * 32, "full"); // padded flags
  auto consumed = m.alloc<std::int64_t>(8, "consumed");

  // Untimed setup.
  for (unsigned s = 0; s < kSlots; ++s) {
    m.poke_mem(full.addr(s * 32), std::int32_t{0});
  }

  m.run([&](core::Cpu& cpu) {
    if (cpu.id() < 2) {
      // Producers: write an item into any empty slot.
      for (unsigned produced = 0; produced < kItems;) {
        for (unsigned s = 0; s < kSlots && produced < kItems; ++s) {
          cpu.lock(kSlotLock + s);
          if (full.get(cpu, s * 32) == 0) {
            buffer.put(cpu, s * 16, static_cast<double>(produced));
            full.put(cpu, s * 32, 1);
            ++produced;
          }
          cpu.unlock(kSlotLock + s);
        }
        cpu.compute(50);
      }
    } else {
      // Consumers: drain slots until the producers are done and all slots
      // are empty. (Completion detected via a consumed-count target.)
      const std::int64_t target = 2 * kItems;
      while (true) {
        cpu.lock(7);  // shared tally lock
        const std::int64_t done = consumed.get(cpu, 0);
        cpu.unlock(7);
        if (done >= target) break;
        for (unsigned s = 0; s < kSlots; ++s) {
          cpu.lock(kSlotLock + s);
          if (full.get(cpu, s * 32) == 1) {
            (void)buffer.get(cpu, s * 16);
            full.put(cpu, s * 32, 0);
            cpu.unlock(kSlotLock + s);
            cpu.lock(7);
            consumed.put(cpu, 0, consumed.get(cpu, 0) + 1);
            consumed.put(cpu, 1 + cpu.id() % 7,
                         consumed.get(cpu, 1 + cpu.id() % 7) + 1);
            cpu.unlock(7);
          } else {
            cpu.unlock(kSlotLock + s);
          }
        }
        cpu.compute(100);
      }
    }
    cpu.barrier(kBarrier);
  });

  Result res;
  const auto r = m.report();
  res.exec = r.execution_time;
  res.sync = r.breakdown[stats::StallKind::kSync];
  res.items = m.peek<std::int64_t>(consumed.addr(0));
  return res;
}

}  // namespace

int main() {
  std::printf("producer/consumer pipeline: 2 producers, 6 consumers,\n"
              "8 lock-protected single-line buffer slots, 512 items total\n\n");
  stats::Table table({"Protocol", "Exec cycles", "Sync cycles", "Items"});
  for (auto kind : {core::ProtocolKind::kSC, core::ProtocolKind::kERC,
                    core::ProtocolKind::kLRC, core::ProtocolKind::kLRCExt}) {
    const Result r = run(kind);
    table.add_row({std::string(core::to_string(kind)),
                   stats::Table::count(r.exec), stats::Table::count(r.sync),
                   stats::Table::count(static_cast<std::uint64_t>(r.items))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("All rows must show Items = 512: locks make the pipeline\n"
              "race-free under every consistency model.\n");
  return 0;
}
