// False-sharing demonstration: the experiment at the heart of the paper.
//
// Each processor repeatedly increments its own counter. In the "packed"
// layout all counters share one cache line (pure false sharing); in the
// "padded" layout each counter has a line to itself. Under eager RC every
// write invalidates every other processor's copy and the line ping-pongs;
// under lazy RC the writers coexist (multiple-writer Weak state) and only
// synchronization points cost anything.
//
//   $ ./build/examples/false_sharing_demo
#include <cstdio>

#include "core/machine.hpp"
#include "stats/table.hpp"

namespace {

using namespace lrc;

core::Report run(core::ProtocolKind kind, bool padded, unsigned iters) {
  auto params = core::SystemParams::paper_default(16);
  core::Machine m(params, kind);
  const unsigned stride =
      padded ? params.line_bytes / sizeof(std::int64_t) : 1;
  auto counters = m.alloc<std::int64_t>(16 * stride, "counters");

  m.run([&](core::Cpu& cpu) {
    const std::size_t mine = cpu.id() * stride;
    for (unsigned i = 0; i < iters; ++i) {
      counters.put(cpu, mine, counters.get(cpu, mine) + 1);
      cpu.compute(8);  // a little real work between updates
    }
    cpu.barrier(0);
  });
  return m.report();
}

}  // namespace

int main() {
  constexpr unsigned kIters = 300;
  std::printf(
      "16 processors, %u increments each to per-processor counters.\n"
      "packed: all counters on one 128-byte line (pure false sharing)\n"
      "padded: one counter per line (no sharing at all)\n\n",
      kIters);

  stats::Table table({"Protocol", "Layout", "Exec cycles", "Miss rate",
                      "False-sharing misses", "Messages"});
  for (auto kind : {core::ProtocolKind::kERC, core::ProtocolKind::kLRC}) {
    for (bool padded : {false, true}) {
      const auto r = run(kind, padded, kIters);
      table.add_row(
          {std::string(core::to_string(kind)), padded ? "padded" : "packed",
           stats::Table::count(r.execution_time),
           stats::Table::pct(r.miss_rate(), 2),
           stats::Table::count(
               r.miss_classes[stats::MissClass::kFalseSharing]),
           stats::Table::count(r.nic.messages)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected: with the packed layout ERC thrashes (every write "
      "invalidates 15\nread-only copies) while LRC keeps writers "
      "concurrent; with padding the two\nprotocols converge. This is the "
      "effect behind the paper's mp3d/locusroute\nresults.\n");
  return 0;
}
