#include "cache/ot_table.hpp"

namespace lrc::cache {

// OtTable is header-only; this translation unit anchors it in the library.

}  // namespace lrc::cache
