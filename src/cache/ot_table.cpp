#include "cache/ot_table.hpp"

namespace lrc::cache {

OtEntry& OtTable::get_or_create(LineId line, bool* created) {
  auto [it, inserted] = map_.try_emplace(line);
  if (inserted) {
    it->second.line = line;
    ++stats_.allocated;
  } else {
    ++stats_.merged;
  }
  if (created != nullptr) *created = inserted;
  return it->second;
}

}  // namespace lrc::cache
