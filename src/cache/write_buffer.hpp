// The relaxed-consistency protocols' per-processor write buffer:
// fixed entry count (4 in the paper), reads bypass writes, and writes to
// the same cache line coalesce into one entry. Entries retire when the
// owning protocol completes the associated coherence transaction.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lrc::cache {

struct WriteBufferStats {
  std::uint64_t enqueued = 0;
  std::uint64_t coalesced = 0;  // writes merged into an existing entry
  std::uint64_t full_stalls = 0;
};

class WriteBuffer {
 public:
  explicit WriteBuffer(unsigned entries) : slots_(entries) {}

  unsigned capacity() const { return static_cast<unsigned>(slots_.size()); }
  unsigned occupied() const;
  bool full() const { return occupied() == capacity(); }
  bool empty() const { return occupied() == 0; }

  /// Index of the slot holding `line`, or -1.
  int find(LineId line) const;

  /// Adds `words` of `line` to the buffer. Coalesces into an existing slot
  /// when possible; otherwise claims a free slot. Returns the slot index,
  /// or -1 if the buffer is full (caller must stall and retry).
  int push(LineId line, WordMask words);

  /// Retires slot `idx`, returning its contents for write-through/back.
  struct Entry {
    LineId line = 0;
    WordMask words = 0;
    bool valid = false;
  };
  Entry retire(int idx);

  const Entry& slot(int idx) const { return slots_[static_cast<unsigned>(idx)]; }

  WriteBufferStats& stats() { return stats_; }
  const WriteBufferStats& stats() const { return stats_; }

 private:
  std::vector<Entry> slots_;
  WriteBufferStats stats_;
};

}  // namespace lrc::cache
