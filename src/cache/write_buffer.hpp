// The relaxed-consistency protocols' per-processor write buffer:
// fixed entry count (4 in the paper), reads bypass writes, and writes to
// the same cache line coalesce into one entry. Entries retire when the
// owning protocol completes the associated coherence transaction.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lrc::cache {

struct WriteBufferStats {
  std::uint64_t enqueued = 0;
  std::uint64_t coalesced = 0;  // writes merged into an existing entry
  std::uint64_t full_stalls = 0;
};

class WriteBuffer {
 public:
  explicit WriteBuffer(unsigned entries) : slots_(entries) {}

  unsigned capacity() const { return static_cast<unsigned>(slots_.size()); }
  // Occupancy is maintained by push/retire; full()/empty() sit on the
  // release-drain and write hot paths and must not rescan the slots.
  unsigned occupied() const { return occupied_; }
  bool full() const { return occupied_ == capacity(); }
  bool empty() const { return occupied_ == 0; }

  /// Index of the slot holding `line`, or -1.
  int find(LineId line) const {
    for (unsigned i = 0; i < slots_.size(); ++i) {
      if (slots_[i].valid && slots_[i].line == line) return static_cast<int>(i);
    }
    return -1;
  }

  /// Adds `words` of `line` to the buffer. Coalesces into an existing slot
  /// when possible; otherwise claims a free slot. Returns the slot index,
  /// or -1 if the buffer is full (caller must stall and retry).
  int push(LineId line, WordMask words);

  /// Retires slot `idx`, returning its contents for write-through/back.
  struct Entry {
    LineId line = 0;
    WordMask words = 0;
    bool valid = false;
  };
  Entry retire(int idx);

  const Entry& slot(int idx) const { return slots_[static_cast<unsigned>(idx)]; }

  WriteBufferStats& stats() { return stats_; }
  const WriteBufferStats& stats() const { return stats_; }

 private:
  std::vector<Entry> slots_;
  unsigned occupied_ = 0;
  WriteBufferStats stats_;
};

}  // namespace lrc::cache
