// Outstanding-transaction table: the equivalent of DASH's RAC entries
// (one per in-flight coherence transaction at a node). Requests to the same
// line merge into a single entry; the release operation waits for the table
// to drain ("all outstanding request data structures have been deallocated").
//
// The table sits on the per-access hot path (every miss allocates, every
// reply looks up) and empties completely at each release, so it is built on
// a flat-hash index with backward-shift erase (no tombstone accumulation
// under drain churn) over slab storage whose free list recycles entries —
// once warm, the allocate/complete/drain cycle touches the heap never.
// Entry addresses are stable: protocol code holds an OtEntry* across nested
// operations that may create other entries (e.g. LRC-ext flushing delayed
// writes from inside a fill).
#pragma once

#include <cstdint>

#include "sim/types.hpp"
#include "util/flat_hash.hpp"

namespace lrc::cache {

struct OtEntry {
  LineId line = 0;
  bool data_pending = false;    // a data reply is owed
  unsigned acks_pending = 0;    // write/upgrade acknowledgements owed
  bool cpu_read_waiting = false;   // processor is blocked on the data
  bool cpu_write_waiting = false;  // processor is blocked on retire (SC)
  bool want_write = false;      // fill should install ReadWrite, not ReadOnly
  int wb_slot = -1;             // write-buffer slot retiring on completion
  WordMask words = 0;           // words written while the fetch was in flight

  bool done() const { return !data_pending && acks_pending == 0; }
};

struct OtStats {
  std::uint64_t allocated = 0;
  std::uint64_t merged = 0;  // accesses absorbed by an existing entry
};

class OtTable {
 public:
  bool empty() const { return index_.empty(); }
  std::size_t size() const { return index_.size(); }

  OtEntry* find(LineId line) {
    const std::uint32_t* slot = index_.find(line);
    return slot == nullptr ? nullptr : &slabs_[*slot];
  }

  /// Returns the entry for `line`, creating it if needed. `created` tells
  /// the caller whether a new transaction must be initiated. The reference
  /// is stable until the entry is erased.
  OtEntry& get_or_create(LineId line, bool* created) {
    bool inserted = false;
    std::uint32_t& slot = index_.get_or_create(line, &inserted);
    if (inserted) {
      slot = slabs_.acquire();  // reset to OtEntry{} by the slab store
      slabs_[slot].line = line;
      ++stats_.allocated;
    } else {
      ++stats_.merged;
    }
    if (created != nullptr) *created = inserted;
    return slabs_[slot];
  }

  void erase(LineId line) {
    const std::uint32_t* slot = index_.find(line);
    if (slot == nullptr) return;
    slabs_.release(*slot);
    index_.erase(line);
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    index_.for_each([&](LineId, std::uint32_t slot) { fn(slabs_[slot]); });
  }

  OtStats& stats() { return stats_; }
  const OtStats& stats() const { return stats_; }

  /// High-water mark of live entries ever slab-allocated; a drained table
  /// that refills reuses slots instead of growing this (tested).
  std::size_t slots_allocated() const { return slabs_.allocated(); }

 private:
  util::FlatMap<std::uint32_t> index_;  // line -> slab slot
  util::StableSlabs<OtEntry> slabs_;
  OtStats stats_;
};

}  // namespace lrc::cache
