// Outstanding-transaction table: the equivalent of DASH's RAC entries
// (one per in-flight coherence transaction at a node). Requests to the same
// line merge into a single entry; the release operation waits for the table
// to drain ("all outstanding request data structures have been deallocated").
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/types.hpp"

namespace lrc::cache {

struct OtEntry {
  LineId line = 0;
  bool data_pending = false;    // a data reply is owed
  unsigned acks_pending = 0;    // write/upgrade acknowledgements owed
  bool cpu_read_waiting = false;   // processor is blocked on the data
  bool cpu_write_waiting = false;  // processor is blocked on retire (SC)
  bool want_write = false;      // fill should install ReadWrite, not ReadOnly
  int wb_slot = -1;             // write-buffer slot retiring on completion
  WordMask words = 0;           // words written while the fetch was in flight

  bool done() const { return !data_pending && acks_pending == 0; }
};

struct OtStats {
  std::uint64_t allocated = 0;
  std::uint64_t merged = 0;  // accesses absorbed by an existing entry
};

class OtTable {
 public:
  bool empty() const { return map_.empty(); }
  std::size_t size() const { return map_.size(); }

  OtEntry* find(LineId line) {
    auto it = map_.find(line);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Returns the entry for `line`, creating it if needed. `created` tells
  /// the caller whether a new transaction must be initiated.
  OtEntry& get_or_create(LineId line, bool* created);

  void erase(LineId line) { map_.erase(line); }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [line, e] : map_) fn(e);
  }

  OtStats& stats() { return stats_; }
  const OtStats& stats() const { return stats_; }

 private:
  std::unordered_map<LineId, OtEntry> map_;
  OtStats stats_;
};

}  // namespace lrc::cache
