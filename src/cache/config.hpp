// Hierarchy configuration: how many cache levels a node has, their
// geometry and replacement policies, the inclusion contract between the
// private levels, and the (optional) sliced shared last-level cache in
// front of DRAM. A machine is "L1-only" or "L1+L2+LLC" purely by this
// struct — the protocols never branch on the number of levels.
//
// The L1's capacity and the global line size come from the top-level
// SystemParams knobs (cache_bytes / line_bytes); this struct holds
// everything beyond that.
#pragma once

#include <cstdint>

#include "cache/cache.hpp"
#include "sim/types.hpp"

namespace lrc::cache {

/// Contract across the private L1/L2 boundary.
///  - kInclusive: every L1 line has an L2 tag; evicting an L2 victim
///    back-invalidates the L1 copy (same protocol transactions as a
///    coherence invalidation).
///  - kExclusive: a line lives in exactly one private level; L1 victims
///    demote into L2, L2 hits promote (swap) back into L1.
enum class InclusionPolicy : std::uint8_t { kInclusive, kExclusive };

/// How a line is mapped to an LLC slice.
///  - kInterleave: slice = line mod nslices (consecutive lines round-robin).
///  - kXorFold: xor-fold the line number before taking the modulus, which
///    decorrelates slice choice from page/stride patterns.
enum class SliceHash : std::uint8_t { kInterleave, kXorFold };

/// When an LLC slice allocates a line.
///  - kOnRead: allocate on demand reads (inclusive-leaning, classic LLC).
///  - kOnWriteback: allocate only on private-level writebacks (a victim
///    cache in front of memory, exclusive-leaning).
enum class LlcAlloc : std::uint8_t { kOnRead, kOnWriteback };

struct CacheConfig {
  // L1 shape beyond SystemParams::cache_bytes / line_bytes.
  std::uint32_t l1_ways = 1;
  ReplacementKind l1_replacement = ReplacementKind::kLru;

  // Optional private L2 (0 bytes = absent).
  std::uint32_t l2_bytes = 0;
  std::uint32_t l2_ways = 8;
  ReplacementKind l2_replacement = ReplacementKind::kLru;
  InclusionPolicy inclusion = InclusionPolicy::kInclusive;
  Cycle l2_hit_cycles = 6;  // extra latency when L2 (not L1) serves a hit

  // Optional sliced shared LLC, one slice per node (0 bytes = absent).
  std::uint32_t llc_slice_bytes = 0;
  std::uint32_t llc_ways = 8;
  ReplacementKind llc_replacement = ReplacementKind::kLru;
  SliceHash llc_hash = SliceHash::kInterleave;
  LlcAlloc llc_alloc = LlcAlloc::kOnRead;
  Cycle llc_hit_cycles = 12;      // slice lookup + data return
  Cycle llc_remote_penalty = 6;   // extra hop when the slice is off-node

  bool has_l2() const { return l2_bytes != 0; }
  bool has_llc() const { return llc_slice_bytes != 0; }
  unsigned private_levels() const { return has_l2() ? 2u : 1u; }

  /// The Table-1 machine: a single direct-mapped L1 (the default).
  static CacheConfig l1_only() { return CacheConfig{}; }

  /// Private L2 behind the L1.
  static CacheConfig with_l2(std::uint32_t bytes, std::uint32_t ways,
                             InclusionPolicy inclusion) {
    CacheConfig c;
    c.l2_bytes = bytes;
    c.l2_ways = ways;
    c.inclusion = inclusion;
    return c;
  }

  /// The EXPERIMENTS.md addendum preset: L1 + 1 MiB 8-way inclusive L2.
  static CacheConfig paper_l2() {
    return with_l2(1024 * 1024, 8, InclusionPolicy::kInclusive);
  }

  /// Adds a shared sliced LLC (one slice per node) to any config.
  CacheConfig& add_llc(std::uint32_t slice_bytes, std::uint32_t ways,
                       SliceHash hash = SliceHash::kInterleave,
                       LlcAlloc alloc = LlcAlloc::kOnRead) {
    llc_slice_bytes = slice_bytes;
    llc_ways = ways;
    llc_hash = hash;
    llc_alloc = alloc;
    return *this;
  }
};

}  // namespace lrc::cache
