// Per-node private cache stack (L1 + optional L2) behind one front end.
//
// The protocols talk to this class exactly as they talked to the bare
// Cache: find / fill / invalidate plus in-place CacheLine mutation. The
// hierarchy hides level movement (promotion on L2 hits, demotion of L1
// victims, inclusive back-invalidation) and reports exactly one kind of
// externally visible event — a line leaving the node entirely — through
// the victim sink, which the protocol turns into writebacks / eviction
// notices, the same transactions a coherence invalidation produces.
//
// Authority: when a line is resident in both levels (inclusive mode),
// the L1 copy is authoritative — its state/dirty are live, the L2 tag is
// a placeholder with dirty == 0. All queries return the authoritative
// copy (L1 first), so protocol in-place mutations always land correctly.
//
// Determinism: no wall-clock, no allocation after construction; the
// random replacement policy draws from an Rng seeded from the engine
// seed and the node id.
#pragma once

#include <cassert>
#include <memory>
#include <optional>

#include "cache/cache.hpp"
#include "cache/config.hpp"
#include "sim/types.hpp"

namespace lrc::cache {

/// Per-level movement accounting (not part of the golden digest; the
/// protocol-visible aggregate lives in stats()).
struct LevelStats {
  std::uint64_t hits = 0;          // demand accesses served at this level
  std::uint64_t fills = 0;         // lines installed into this level
  std::uint64_t evictions = 0;     // victims displaced out of this level
  std::uint64_t invalidations = 0; // coherence removals at this level
  std::uint64_t promotions = 0;    // lines moved up toward L1
  std::uint64_t demotions = 0;     // lines (or authority) moved down to L2
  std::uint64_t back_invals = 0;   // L1 copies killed by L2 victim eviction
};

class Hierarchy {
 public:
  /// Called when a valid line leaves the private stack entirely (the
  /// bottom level displaced it). The protocol owns writeback / notify.
  using VictimSink = void (*)(void* ctx, NodeId node, const CacheLine& victim,
                              Cycle at);

  Hierarchy(const CacheConfig& cfg, std::uint32_t l1_bytes,
            std::uint32_t line_bytes, NodeId node, std::uint64_t seed);

  void set_victim_sink(VictimSink fn, void* ctx) {
    sink_ = fn;
    sink_ctx_ = ctx;
  }

  std::uint32_t line_bytes() const { return l1_.line_bytes(); }
  unsigned levels() const { return l2_ ? 2u : 1u; }
  bool inclusive() const { return inclusive_; }

  /// Pure query across all private levels, L1 first; no replacement-state
  /// update, no level movement. Protocol handlers / checker / tests.
  CacheLine* find(LineId line) {
    if (CacheLine* l = l1_.find(line)) return l;
    if (l2_) {
      if (CacheLine* l = l2_->find(line)) return l;
    }
    return nullptr;
  }
  const CacheLine* find(LineId line) const {
    return const_cast<Hierarchy*>(this)->find(line);
  }

  /// Demand-access path: touches recency; an L2 hit promotes the line
  /// into L1 (charging hit_penalty()) and may demote an L1 victim. `at`
  /// stamps any external victim the promotion displaces.
  CacheLine* lookup(LineId line, Cycle at) {
    hit_penalty_ = 0;
    if (CacheLine* l = l1_.find_touch(line)) {
      ++lstats_[0].hits;
      return l;
    }
    if (!l2_) return nullptr;
    return lookup_l2(line, at);
  }

  /// Extra hit latency of the last lookup() that hit (0 for L1 hits).
  Cycle hit_penalty() const { return hit_penalty_; }

  /// Installs `line` (a protocol fill). Inclusive mode allocates in L2
  /// first so inclusion holds; any line displaced out of the bottom level
  /// exits through the victim sink.
  void fill(LineId line, LineState state, Cycle at);

  /// Coherence removal from every level. Returns the authoritative
  /// removed copy (dirty masks merged) and counts one invalidation,
  /// exactly as the single-level cache did.
  std::optional<CacheLine> invalidate(LineId line);

  /// Protocol-visible aggregate (the golden-digest fields).
  CacheStats& stats() { return totals_; }
  const CacheStats& stats() const { return totals_; }

  const LevelStats& level_stats(unsigned level) const {
    assert(level < levels());
    return lstats_[level];
  }

  const Cache& l1() const { return l1_; }
  const Cache* l2() const { return l2_.get(); }

  /// Iterates every line the node holds, visiting each line once (the
  /// authoritative copy). Used by flush/finalize paths and tests.
  template <typename Fn>
  void for_each_valid(Fn&& fn) {
    l1_.for_each_valid(fn);
    if (l2_) {
      l2_->for_each_valid([&](CacheLine& cl) {
        if (l1_.find(cl.line) != nullptr) return;  // L1 copy authoritative
        fn(cl);
      });
    }
  }

 private:
  CacheLine* lookup_l2(LineId line, Cycle at);

  /// Installs into L1, cascading the L1 victim down (merge into the L2
  /// tag when inclusive, demote when exclusive, external when L1-only).
  CacheLine* install_l1(LineId line, LineState state, WordMask dirty,
                        Cycle at);
  void handle_l1_victim(const CacheLine& victim, Cycle at);
  void external_victim(const CacheLine& victim, Cycle at) {
    ++totals_.evictions;
    if (sink_ != nullptr) sink_(sink_ctx_, node_, victim, at);
  }

  Cache l1_;
  std::unique_ptr<Cache> l2_;  // one-time construction allocation
  bool inclusive_ = true;
  Cycle l2_hit_cycles_ = 0;
  Cycle hit_penalty_ = 0;
  NodeId node_;
  VictimSink sink_ = nullptr;
  void* sink_ctx_ = nullptr;
  CacheStats totals_;
  LevelStats lstats_[2];
};

}  // namespace lrc::cache
