#include "cache/cache.hpp"

#include <stdexcept>
#include <string>

namespace lrc::cache {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint32_t log2_u32(std::uint32_t v) {
  std::uint32_t s = 0;
  while ((1u << s) < v) ++s;
  return s;
}
}  // namespace

CacheGeometry CacheGeometry::make(std::uint32_t cache_bytes,
                                  std::uint32_t line_bytes,
                                  std::uint32_t ways) {
  if (!is_pow2(cache_bytes) || !is_pow2(line_bytes) ||
      cache_bytes < line_bytes) {
    throw std::invalid_argument(
        "Cache: sizes must be powers of two with cache >= line");
  }
  if (!is_pow2(ways)) {
    throw std::invalid_argument("Cache: ways must be a power of two, got " +
                                std::to_string(ways));
  }
  const std::uint32_t nlines = cache_bytes / line_bytes;
  if (ways > nlines) {
    throw std::invalid_argument(
        "Cache: ways (" + std::to_string(ways) + ") exceeds total lines (" +
        std::to_string(nlines) + ")");
  }
  CacheGeometry g;
  g.sets = nlines / ways;
  g.ways = ways;
  g.line_bytes = line_bytes;
  return g;
}

Cache::Cache(std::uint32_t cache_bytes, std::uint32_t line_bytes)
    : Cache(CacheGeometry::make(cache_bytes, line_bytes, 1),
            ReplacementKind::kLru, 0) {}

Cache::Cache(const CacheGeometry& geo, ReplacementKind repl,
             std::uint64_t seed)
    : geo_(geo), repl_(repl), rng_(seed) {
  if (!is_pow2(geo_.sets) || !is_pow2(geo_.ways) || !is_pow2(geo_.line_bytes)) {
    throw std::invalid_argument(
        "Cache: sets, ways and line size must all be powers of two");
  }
  set_mask_ = geo_.sets - 1;
  way_shift_ = log2_u32(geo_.ways);
  lines_.resize(static_cast<std::size_t>(geo_.sets) * geo_.ways);
  stamp_.assign(lines_.size(), 0);
}

std::uint32_t Cache::victim_way(const CacheLine* base, sim::Rng& rng) const {
  if (repl_ == ReplacementKind::kRandom) {
    return static_cast<std::uint32_t>(rng.below(geo_.ways));
  }
  // LRU and FIFO both evict the oldest stamp; they differ only in when
  // the stamp is refreshed (every touch vs. install only). Ties resolve
  // to the lowest way for determinism.
  const std::size_t s0 = static_cast<std::size_t>(base - lines_.data());
  std::uint32_t best = 0;
  std::uint64_t best_stamp = stamp_[s0];
  for (std::uint32_t w = 1; w < geo_.ways; ++w) {
    if (stamp_[s0 + w] < best_stamp) {
      best_stamp = stamp_[s0 + w];
      best = w;
    }
  }
  return best;
}

const CacheLine* Cache::victim_for(LineId line) const {
  const CacheLine* base = set_base(line);
  for (std::uint32_t w = 0; w < geo_.ways; ++w) {
    if (base[w].state == LineState::kInvalid || base[w].line == line) {
      return nullptr;  // room (or already resident): no displacement
    }
  }
  sim::Rng peek = rng_;  // random policy: peek without advancing
  return base + victim_way(base, peek);
}

std::optional<CacheLine> Cache::fill(LineId line, LineState state) {
  CacheLine* base = set_base(line);
  std::int32_t free_way = -1;
  for (std::uint32_t w = 0; w < geo_.ways; ++w) {
    CacheLine& l = base[w];
    if (l.state == LineState::kInvalid) {
      if (free_way < 0) free_way = static_cast<std::int32_t>(w);
      continue;
    }
    if (l.line == line) {
      // Refill of the resident line: update state, keep dirty words.
      l.state = state;
      if (repl_ != ReplacementKind::kFifo) {
        stamp_[&l - lines_.data()] = ++tick_;
      }
      return std::nullopt;
    }
  }
  if (free_way >= 0) {
    CacheLine& l = base[free_way];
    l.line = line;
    l.state = state;
    l.dirty = 0;
    stamp_[&l - lines_.data()] = ++tick_;
    return std::nullopt;
  }
  const std::uint32_t vw = victim_way(base, rng_);
  CacheLine& l = base[vw];
  CacheLine victim = l;
  ++stats_.evictions;
  l.line = line;
  l.state = state;
  l.dirty = 0;  // displaced: fresh install starts clean
  stamp_[&l - lines_.data()] = ++tick_;
  return victim;
}

std::optional<CacheLine> Cache::invalidate(LineId line) {
  auto removed = remove(line);
  if (removed) ++stats_.invalidations;
  return removed;
}

std::optional<CacheLine> Cache::remove(LineId line) {
  CacheLine* l = find(line);
  if (l == nullptr) return std::nullopt;
  CacheLine removed = *l;
  l->state = LineState::kInvalid;
  l->dirty = 0;
  return removed;
}

}  // namespace lrc::cache
