#include "cache/cache.hpp"

#include <stdexcept>

namespace lrc::cache {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(std::uint32_t cache_bytes, std::uint32_t line_bytes)
    : line_bytes_(line_bytes) {
  if (!is_pow2(cache_bytes) || !is_pow2(line_bytes) ||
      cache_bytes < line_bytes) {
    throw std::invalid_argument(
        "Cache: sizes must be powers of two with cache >= line");
  }
  const std::uint32_t nsets = cache_bytes / line_bytes;
  sets_.resize(nsets);
  set_mask_ = nsets - 1;
}

CacheLine* Cache::find(LineId line) {
  CacheLine& l = sets_[set_of(line)];
  if (l.state != LineState::kInvalid && l.line == line) return &l;
  return nullptr;
}

const CacheLine* Cache::find(LineId line) const {
  const CacheLine& l = sets_[set_of(line)];
  if (l.state != LineState::kInvalid && l.line == line) return &l;
  return nullptr;
}

const CacheLine* Cache::victim_for(LineId line) const {
  const CacheLine& l = sets_[set_of(line)];
  if (l.state != LineState::kInvalid && l.line != line) return &l;
  return nullptr;
}

std::optional<CacheLine> Cache::fill(LineId line, LineState state) {
  CacheLine& slot = sets_[set_of(line)];
  std::optional<CacheLine> victim;
  if (slot.state != LineState::kInvalid && slot.line != line) {
    victim = slot;
    ++stats_.evictions;
    slot.dirty = 0;  // displaced: fresh install starts clean
  } else if (slot.state == LineState::kInvalid) {
    slot.dirty = 0;  // fresh install; refills of the resident line keep dirty
  }
  slot.line = line;
  slot.state = state;
  return victim;
}

std::optional<CacheLine> Cache::invalidate(LineId line) {
  CacheLine& slot = sets_[set_of(line)];
  if (slot.state == LineState::kInvalid || slot.line != line) {
    return std::nullopt;
  }
  CacheLine removed = slot;
  slot.state = LineState::kInvalid;
  slot.dirty = 0;
  ++stats_.invalidations;
  return removed;
}

}  // namespace lrc::cache
