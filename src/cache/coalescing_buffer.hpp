// Jouppi-style coalescing write buffer placed between a write-through
// cache and the memory system (16 entries in the paper). Writes to the
// same line merge; a full buffer evicts its oldest entry to memory.
// The LRC protocols use it to get word-granularity memory updates without
// per-word dirty bits in the cache, and to overlap memory updates with
// computation.
//
// Storage is a fixed ring sized at construction — the buffer sits on the
// write-through hot path (every committed write under ERC-WT/LRC scans
// it), so it never touches the heap after the constructor, unlike the
// std::deque it replaces.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hpp"

namespace lrc::cache {

struct CoalescingStats {
  std::uint64_t writes = 0;
  std::uint64_t merges = 0;    // writes absorbed by an existing entry
  std::uint64_t flushes = 0;   // entries sent to memory
  std::uint64_t capacity_flushes = 0;  // flushes forced by a full buffer
};

class CoalescingBuffer {
 public:
  explicit CoalescingBuffer(unsigned entries)
      : capacity_(entries), ring_(entries) {}

  struct Entry {
    LineId line = 0;
    WordMask words = 0;
  };

  unsigned capacity() const { return capacity_; }
  unsigned size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Records a write of `words` within `line`. If the buffer was full and
  /// no entry matched, the oldest entry is popped and returned; the caller
  /// must send it to memory.
  std::optional<Entry> add(LineId line, WordMask words);

  /// Pops the oldest entry (used when draining at a release).
  std::optional<Entry> pop();

  /// Pops the entry for `line` if present (eviction of a dirty line must
  /// force its pending words out before the line leaves the cache).
  std::optional<Entry> pop_line(LineId line);

  CoalescingStats& stats() { return stats_; }
  const CoalescingStats& stats() const { return stats_; }

 private:
  // Physical slot of the i-th oldest entry.
  unsigned pos(unsigned i) const {
    unsigned p = head_ + i;
    if (p >= capacity_) p -= capacity_;
    return p;
  }

  unsigned capacity_;
  std::vector<Entry> ring_;  // fixed at construction; FIFO from head_
  unsigned head_ = 0;
  unsigned count_ = 0;
  CoalescingStats stats_;
};

}  // namespace lrc::cache
