#include "cache/hierarchy.hpp"

namespace lrc::cache {

namespace {
// Distinct, deterministic per-level PRNG streams for the random policy.
std::uint64_t level_seed(std::uint64_t seed, NodeId node, unsigned level) {
  return seed ^ (0x517cc1b727220a95ULL * (2ULL * node + level + 1));
}
}  // namespace

Hierarchy::Hierarchy(const CacheConfig& cfg, std::uint32_t l1_bytes,
                     std::uint32_t line_bytes, NodeId node,
                     std::uint64_t seed)
    : l1_(CacheGeometry::make(l1_bytes, line_bytes, cfg.l1_ways),
          cfg.l1_replacement, level_seed(seed, node, 0)),
      inclusive_(cfg.inclusion == InclusionPolicy::kInclusive),
      l2_hit_cycles_(cfg.l2_hit_cycles),
      node_(node) {
  if (cfg.has_l2()) {
    l2_ = std::make_unique<Cache>(
        CacheGeometry::make(cfg.l2_bytes, line_bytes, cfg.l2_ways),
        cfg.l2_replacement, level_seed(seed, node, 1));
  }
}

CacheLine* Hierarchy::lookup_l2(LineId line, Cycle at) {
  CacheLine* l2l = l2_->find_touch(line);
  if (l2l == nullptr) return nullptr;
  ++lstats_[1].hits;
  ++lstats_[1].promotions;
  hit_penalty_ = l2_hit_cycles_;
  const CacheLine copy = *l2l;
  if (inclusive_) {
    // Authority (state + dirty) moves up; the L2 tag stays as the
    // inclusion placeholder.
    l2l->dirty = 0;
  } else {
    // Exclusive: the line leaves L2 entirely.
    l2_->remove(line);
  }
  return install_l1(copy.line, copy.state, copy.dirty, at);
}

CacheLine* Hierarchy::install_l1(LineId line, LineState state, WordMask dirty,
                                 Cycle at) {
  auto victim = l1_.fill(line, state);
  ++lstats_[0].fills;
  CacheLine* nl = l1_.find(line);
  assert(nl != nullptr);
  nl->dirty |= dirty;
  if (victim) handle_l1_victim(*victim, at);
  return nl;
}

void Hierarchy::handle_l1_victim(const CacheLine& victim, Cycle at) {
  ++lstats_[0].evictions;
  if (!l2_) {
    external_victim(victim, at);
    return;
  }
  if (inclusive_) {
    // Inclusion guarantees the L2 tag exists; authority moves back down.
    CacheLine* l2l = l2_->find(victim.line);
    assert(l2l != nullptr && "inclusive L2 lost a tag the L1 still held");
    l2l->state = victim.state;
    l2l->dirty |= victim.dirty;
    ++lstats_[1].demotions;
    return;
  }
  // Exclusive: demote into L2; whatever L2 displaces leaves the node.
  auto v2 = l2_->fill(victim.line, victim.state);
  ++lstats_[1].fills;
  ++lstats_[1].demotions;
  CacheLine* l2l = l2_->find(victim.line);
  assert(l2l != nullptr);
  l2l->dirty |= victim.dirty;
  if (v2) {
    ++lstats_[1].evictions;
    external_victim(*v2, at);
  }
}

void Hierarchy::fill(LineId line, LineState state, Cycle at) {
  if (!l2_) {
    auto victim = l1_.fill(line, state);
    ++lstats_[0].fills;
    if (victim) {
      ++lstats_[0].evictions;
      external_victim(*victim, at);
    }
    return;
  }
  if (inclusive_) {
    // Allocate the L2 tag first so inclusion holds once L1 has the line.
    auto v2 = l2_->fill(line, state);
    ++lstats_[1].fills;
    if (v2) {
      ++lstats_[1].evictions;
      CacheLine out = *v2;
      // Back-invalidate the (authoritative) L1 copy before the line
      // leaves the node; its state/dirty override the stale L2 tag.
      if (auto l1copy = l1_.remove(out.line)) {
        ++lstats_[0].back_invals;
        out.state = l1copy->state;
        out.dirty |= l1copy->dirty;
      }
      external_victim(out, at);
    }
    install_l1(line, state, 0, at);
  } else {
    // Exclusive: fills land in L1 only; L2 receives demoted victims.
    install_l1(line, state, 0, at);
  }
}

std::optional<CacheLine> Hierarchy::invalidate(LineId line) {
  std::optional<CacheLine> removed = l1_.remove(line);
  if (removed) ++lstats_[0].invalidations;
  if (l2_) {
    if (auto r2 = l2_->remove(line)) {
      ++lstats_[1].invalidations;
      if (removed) {
        removed->dirty |= r2->dirty;  // L1 authoritative; L2 dirty is stale-0
      } else {
        removed = r2;
      }
    }
  }
  if (removed) ++totals_.invalidations;
  return removed;
}

}  // namespace lrc::cache
