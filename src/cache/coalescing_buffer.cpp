#include "cache/coalescing_buffer.hpp"

#include <algorithm>

namespace lrc::cache {

std::optional<CoalescingBuffer::Entry> CoalescingBuffer::add(LineId line,
                                                             WordMask words) {
  ++stats_.writes;
  for (auto& e : fifo_) {
    if (e.line == line) {
      e.words |= words;
      ++stats_.merges;
      return std::nullopt;
    }
  }
  std::optional<Entry> victim;
  if (fifo_.size() == capacity_) {
    victim = fifo_.front();
    fifo_.pop_front();
    ++stats_.flushes;
    ++stats_.capacity_flushes;
  }
  fifo_.push_back(Entry{line, words});
  return victim;
}

std::optional<CoalescingBuffer::Entry> CoalescingBuffer::pop() {
  if (fifo_.empty()) return std::nullopt;
  Entry e = fifo_.front();
  fifo_.pop_front();
  ++stats_.flushes;
  return e;
}

std::optional<CoalescingBuffer::Entry> CoalescingBuffer::pop_line(LineId line) {
  auto it = std::find_if(fifo_.begin(), fifo_.end(),
                         [line](const Entry& e) { return e.line == line; });
  if (it == fifo_.end()) return std::nullopt;
  Entry e = *it;
  fifo_.erase(it);
  ++stats_.flushes;
  return e;
}

}  // namespace lrc::cache
