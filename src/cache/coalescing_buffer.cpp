#include "cache/coalescing_buffer.hpp"

namespace lrc::cache {

std::optional<CoalescingBuffer::Entry> CoalescingBuffer::add(LineId line,
                                                             WordMask words) {
  ++stats_.writes;
  for (unsigned i = 0; i < count_; ++i) {
    Entry& e = ring_[pos(i)];
    if (e.line == line) {
      e.words |= words;
      ++stats_.merges;
      return std::nullopt;
    }
  }
  std::optional<Entry> victim;
  if (count_ == capacity_) {
    victim = ring_[head_];
    head_ = pos(1);
    --count_;
    ++stats_.flushes;
    ++stats_.capacity_flushes;
  }
  ring_[pos(count_)] = Entry{line, words};
  ++count_;
  return victim;
}

std::optional<CoalescingBuffer::Entry> CoalescingBuffer::pop() {
  if (count_ == 0) return std::nullopt;
  Entry e = ring_[head_];
  head_ = pos(1);
  --count_;
  ++stats_.flushes;
  return e;
}

std::optional<CoalescingBuffer::Entry> CoalescingBuffer::pop_line(LineId line) {
  for (unsigned i = 0; i < count_; ++i) {
    if (ring_[pos(i)].line != line) continue;
    Entry e = ring_[pos(i)];
    // Close the gap toward the tail; FIFO order of survivors is preserved.
    for (unsigned k = i; k + 1 < count_; ++k) {
      ring_[pos(k)] = ring_[pos(k + 1)];
    }
    --count_;
    ++stats_.flushes;
    return e;
  }
  return std::nullopt;
}

}  // namespace lrc::cache
