// Set-associative processor cache with the paper's *local* line states:
// Invalid, ReadOnly, ReadWrite. Geometry (sets x ways) and replacement
// policy (LRU / FIFO / random) are orthogonal knobs; the paper's Table-1
// direct-mapped cache is simply ways=1. The global coherence state
// (Uncached / Shared / Dirty / Weak) lives in the directory; this class
// only detects the accesses that must trigger protocol transactions and
// models replacement.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace lrc::cache {

enum class LineState : std::uint8_t { kInvalid, kReadOnly, kReadWrite };

enum class ReplacementKind : std::uint8_t { kLru, kFifo, kRandom };

inline const char* to_string(ReplacementKind r) {
  switch (r) {
    case ReplacementKind::kLru: return "lru";
    case ReplacementKind::kFifo: return "fifo";
    case ReplacementKind::kRandom: return "random";
  }
  return "?";
}

struct CacheLine {
  LineId line = 0;                   // global line number (tag + index)
  LineState state = LineState::kInvalid;
  WordMask dirty = 0;                // dirty words (write-back protocols)
};

/// Sets x ways x line size. Everything must be a power of two so set
/// selection is a mask and slot addressing is a shift.
struct CacheGeometry {
  std::uint32_t sets = 1;
  std::uint32_t ways = 1;
  std::uint32_t line_bytes = 128;

  /// Derives (and validates) a geometry from a capacity. Throws
  /// std::invalid_argument on non-power-of-two sizes/ways, capacity not
  /// divisible into sets, or ways exceeding the number of lines.
  static CacheGeometry make(std::uint32_t cache_bytes,
                            std::uint32_t line_bytes, std::uint32_t ways);

  std::uint32_t capacity_bytes() const { return sets * ways * line_bytes; }
};

struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;        // writes to ReadWrite lines
  std::uint64_t write_misses = 0;      // writes to Invalid lines
  std::uint64_t upgrade_misses = 0;    // writes to ReadOnly lines
  std::uint64_t evictions = 0;         // replacement-caused victims
  std::uint64_t invalidations = 0;     // coherence-caused victims

  std::uint64_t references() const {
    return read_hits + read_misses + write_hits + write_misses +
           upgrade_misses;
  }
  std::uint64_t misses() const {
    return read_misses + write_misses + upgrade_misses;
  }
  double miss_rate() const {
    const auto refs = references();
    return refs ? static_cast<double>(misses()) / static_cast<double>(refs)
                : 0.0;
  }
};

class Cache {
 public:
  /// Direct-mapped LRU-degenerate cache (the legacy shape). `cache_bytes`
  /// and `line_bytes` must be powers of two.
  Cache(std::uint32_t cache_bytes, std::uint32_t line_bytes);

  /// Fully specified geometry + replacement policy. `seed` feeds the
  /// random policy's PRNG; LRU/FIFO ignore it.
  Cache(const CacheGeometry& geo, ReplacementKind repl, std::uint64_t seed);

  std::uint32_t line_bytes() const { return geo_.line_bytes; }
  std::uint32_t num_sets() const { return geo_.sets; }
  std::uint32_t num_ways() const { return geo_.ways; }
  const CacheGeometry& geometry() const { return geo_; }
  ReplacementKind replacement() const { return repl_; }

  /// Returns the resident copy of `line`, or nullptr. Pure query: does
  /// not touch replacement state (safe for protocol handlers/checkers).
  CacheLine* find(LineId line) {
    CacheLine* base = set_base(line);
    for (std::uint32_t w = 0; w < geo_.ways; ++w) {
      CacheLine& l = base[w];
      if (l.state != LineState::kInvalid && l.line == line) return &l;
    }
    return nullptr;
  }
  const CacheLine* find(LineId line) const {
    return const_cast<Cache*>(this)->find(line);
  }

  /// find() plus a recency update — the demand-access path. Identical to
  /// find() for FIFO/random (and trivially at ways=1).
  CacheLine* find_touch(LineId line) {
    CacheLine* l = find(line);
    if (l != nullptr && repl_ == ReplacementKind::kLru) {
      stamp_[l - lines_.data()] = ++tick_;
    }
    return l;
  }

  /// Installs `line` in `state`, evicting the policy-chosen victim when
  /// the set is full. Returns the victim (valid lines only) so the caller
  /// can write back / notify home. Counts as an eviction in stats.
  /// Refilling the resident line keeps its dirty mask.
  std::optional<CacheLine> fill(LineId line, LineState state);

  /// Would installing `line` displace a valid line? (peek only — the
  /// random policy peeks a copy of its PRNG so the next fill() matches)
  const CacheLine* victim_for(LineId line) const;

  /// Removes `line` due to a coherence action; returns the removed copy
  /// and counts an invalidation.
  std::optional<CacheLine> invalidate(LineId line);

  /// Removes `line` without stats accounting (hierarchy-internal moves:
  /// exclusive promotion, back-invalidation bookkeeping).
  std::optional<CacheLine> remove(LineId line);

  /// State accounting helpers.
  CacheStats& stats() { return stats_; }
  const CacheStats& stats() const { return stats_; }

  /// Iterates all valid lines (used by flush/finalize paths and tests).
  template <typename Fn>
  void for_each_valid(Fn&& fn) {
    for (auto& l : lines_) {
      if (l.state != LineState::kInvalid) fn(l);
    }
  }
  template <typename Fn>
  void for_each_valid(Fn&& fn) const {
    for (const auto& l : lines_) {
      if (l.state != LineState::kInvalid) fn(l);
    }
  }

 private:
  CacheLine* set_base(LineId line) {
    return lines_.data() + ((line & set_mask_) << way_shift_);
  }
  const CacheLine* set_base(LineId line) const {
    return lines_.data() + ((line & set_mask_) << way_shift_);
  }
  /// Policy choice among the ways of a full set (no invalid way left).
  /// The random policy draws from `rng`: fill() passes rng_ (advancing
  /// it), victim_for() passes a copy (pure peek).
  std::uint32_t victim_way(const CacheLine* base, sim::Rng& rng) const;

  CacheGeometry geo_;
  ReplacementKind repl_;
  std::uint64_t set_mask_;
  std::uint32_t way_shift_;
  std::vector<CacheLine> lines_;     // sets * ways, set-major
  std::vector<std::uint64_t> stamp_; // parallel recency/age stamps
  std::uint64_t tick_ = 0;
  sim::Rng rng_;                     // random policy (victim_for peeks a copy)
  CacheStats stats_;
};

}  // namespace lrc::cache
