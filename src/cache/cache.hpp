// Direct-mapped processor cache with the paper's *local* line states:
// Invalid, ReadOnly, ReadWrite. The global coherence state (Uncached /
// Shared / Dirty / Weak) lives in the directory; this class only detects
// the accesses that must trigger protocol transactions and models
// replacement.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hpp"

namespace lrc::cache {

enum class LineState : std::uint8_t { kInvalid, kReadOnly, kReadWrite };

struct CacheLine {
  LineId line = 0;                   // global line number (tag + index)
  LineState state = LineState::kInvalid;
  WordMask dirty = 0;                // dirty words (write-back protocols)
};

struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;        // writes to ReadWrite lines
  std::uint64_t write_misses = 0;      // writes to Invalid lines
  std::uint64_t upgrade_misses = 0;    // writes to ReadOnly lines
  std::uint64_t evictions = 0;         // replacement-caused victims
  std::uint64_t invalidations = 0;     // coherence-caused victims

  std::uint64_t references() const {
    return read_hits + read_misses + write_hits + write_misses +
           upgrade_misses;
  }
  std::uint64_t misses() const {
    return read_misses + write_misses + upgrade_misses;
  }
  double miss_rate() const {
    const auto refs = references();
    return refs ? static_cast<double>(misses()) / static_cast<double>(refs)
                : 0.0;
  }
};

class Cache {
 public:
  /// `cache_bytes` and `line_bytes` must be powers of two.
  Cache(std::uint32_t cache_bytes, std::uint32_t line_bytes);

  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t num_sets() const { return static_cast<std::uint32_t>(sets_.size()); }

  /// Returns the resident copy of `line`, or nullptr.
  CacheLine* find(LineId line);
  const CacheLine* find(LineId line) const;

  /// Installs `line` in `state`, evicting the direct-mapped victim if any.
  /// Returns the victim (valid lines only) so the protocol can write back /
  /// notify home. Counts as an eviction in stats.
  std::optional<CacheLine> fill(LineId line, LineState state);

  /// Would installing `line` displace a valid different line? (peek only)
  const CacheLine* victim_for(LineId line) const;

  /// Removes `line` due to a coherence action; returns the removed copy.
  std::optional<CacheLine> invalidate(LineId line);

  /// State accounting helpers.
  CacheStats& stats() { return stats_; }
  const CacheStats& stats() const { return stats_; }

  /// Iterates all valid lines (used by flush/finalize paths and tests).
  template <typename Fn>
  void for_each_valid(Fn&& fn) {
    for (auto& l : sets_) {
      if (l.state != LineState::kInvalid) fn(l);
    }
  }

 private:
  std::uint32_t set_of(LineId line) const {
    return static_cast<std::uint32_t>(line & set_mask_);
  }

  std::uint32_t line_bytes_;
  std::uint64_t set_mask_;
  std::vector<CacheLine> sets_;
  CacheStats stats_;
};

}  // namespace lrc::cache
