#include "cache/write_buffer.hpp"

#include <cassert>

namespace lrc::cache {

int WriteBuffer::push(LineId line, WordMask words) {
  if (int i = find(line); i >= 0) {
    slots_[static_cast<unsigned>(i)].words |= words;
    ++stats_.coalesced;
    return i;
  }
  for (unsigned i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].valid) {
      slots_[i] = Entry{line, words, true};
      ++occupied_;
      ++stats_.enqueued;
      return static_cast<int>(i);
    }
  }
  ++stats_.full_stalls;
  return -1;
}

WriteBuffer::Entry WriteBuffer::retire(int idx) {
  auto& s = slots_[static_cast<unsigned>(idx)];
  assert(s.valid);
  assert(occupied_ > 0);
  Entry out = s;
  s = Entry{};
  --occupied_;
  return out;
}

}  // namespace lrc::cache
