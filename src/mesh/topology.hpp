// 2-D mesh topology: node placement and hop-distance computation.
// The simulated machine is an R x C mesh (as near square as possible);
// routing is dimension-ordered, so the hop count between two nodes is
// their Manhattan distance.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace lrc::mesh {

class Topology {
 public:
  /// Builds a near-square mesh with `nodes` nodes (rows*cols >= nodes,
  /// rows <= cols, chosen to minimize the perimeter).
  explicit Topology(unsigned nodes);

  unsigned nodes() const { return nodes_; }
  unsigned rows() const { return rows_; }
  unsigned cols() const { return cols_; }

  unsigned row_of(NodeId n) const { return n / cols_; }
  unsigned col_of(NodeId n) const { return n % cols_; }

  /// Manhattan hop distance between two nodes (0 for self-messages).
  unsigned hops(NodeId a, NodeId b) const;

  /// Average hop distance over all ordered node pairs (for reporting).
  double mean_hops() const;

 private:
  unsigned nodes_;
  unsigned rows_;
  unsigned cols_;
};

}  // namespace lrc::mesh
