// 2-D mesh topology: node placement and hop-distance computation.
// The simulated machine is an R x C mesh (as near square as possible);
// routing is dimension-ordered, so the hop count between two nodes is
// their Manhattan distance.
//
// `Nic::send` asks for a hop count on every message, so distances are
// precomputed once into an N x N table (at most 64x64 bytes) and
// `mean_hops()` — O(N^2) if recomputed — is memoized at construction.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lrc::mesh {

class Topology {
 public:
  /// Builds a near-square mesh with `nodes` nodes. The row count is the
  /// largest divisor of `nodes` not exceeding sqrt(nodes) (worst case 1),
  /// so the mesh is always exactly rectangular: rows * cols == nodes.
  explicit Topology(unsigned nodes);

  unsigned nodes() const { return nodes_; }
  unsigned rows() const { return rows_; }
  unsigned cols() const { return cols_; }

  unsigned row_of(NodeId n) const { return n / cols_; }
  unsigned col_of(NodeId n) const { return n % cols_; }

  /// Manhattan hop distance between two nodes (0 for self-messages).
  unsigned hops(NodeId a, NodeId b) const {
    return hop_[a * nodes_ + b];
  }

  /// Average hop distance over all ordered node pairs (for reporting).
  double mean_hops() const { return mean_hops_; }

  /// Largest node count a Topology supports. Protocol-backed machines are
  /// further limited to kMaxProcs by the bitmask directory; the larger
  /// topology ceiling serves the sharded-engine scaling benches.
  static constexpr unsigned kMaxNodes = 1024;

  /// Partitions the mesh into `shards` spatially-contiguous clusters of
  /// near-equal size (row-major node ranges, i.e. row strips when shards
  /// divides rows). Handles shards > nodes (clamped to one node per shard)
  /// and counts that do not divide nodes (sizes differ by at most one).
  /// Returns node -> shard; shard ids are dense in [0, min(shards, nodes)).
  std::vector<std::uint8_t> partition(unsigned shards) const;

  /// Minimum hop distance between nodes in *different* shards under the
  /// given assignment (the basis for the conservative lookahead). Returns 0
  /// if every node shares one shard (no cross-shard pair exists).
  unsigned min_cross_shard_hops(const std::vector<std::uint8_t>& shard_of) const;

 private:
  unsigned nodes_;
  unsigned rows_;
  unsigned cols_;
  std::vector<std::uint8_t> hop_;  // [a * nodes + b] -> Manhattan distance
  double mean_hops_ = 0.0;
};

}  // namespace lrc::mesh
