// 2-D mesh topology: node placement and hop-distance computation.
// The simulated machine is an R x C mesh (as near square as possible);
// routing is dimension-ordered, so the hop count between two nodes is
// their Manhattan distance.
//
// `Nic::send` asks for a hop count on every message, so distances are
// precomputed once into an N x N table (at most 64x64 bytes) and
// `mean_hops()` — O(N^2) if recomputed — is memoized at construction.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lrc::mesh {

class Topology {
 public:
  /// Builds a near-square mesh with `nodes` nodes. The row count is the
  /// largest divisor of `nodes` not exceeding sqrt(nodes) (worst case 1),
  /// so the mesh is always exactly rectangular: rows * cols == nodes.
  explicit Topology(unsigned nodes);

  unsigned nodes() const { return nodes_; }
  unsigned rows() const { return rows_; }
  unsigned cols() const { return cols_; }

  unsigned row_of(NodeId n) const { return n / cols_; }
  unsigned col_of(NodeId n) const { return n % cols_; }

  /// Manhattan hop distance between two nodes (0 for self-messages).
  unsigned hops(NodeId a, NodeId b) const {
    return hop_[a * nodes_ + b];
  }

  /// Average hop distance over all ordered node pairs (for reporting).
  double mean_hops() const { return mean_hops_; }

 private:
  unsigned nodes_;
  unsigned rows_;
  unsigned cols_;
  std::vector<std::uint8_t> hop_;  // [a * nodes + b] -> Manhattan distance
  double mean_hops_ = 0.0;
};

}  // namespace lrc::mesh
