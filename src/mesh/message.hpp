// Protocol and synchronization message definitions. One flat enum covers
// every protocol variant; each protocol uses the subset it needs.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/types.hpp"

namespace lrc::mesh {

enum class MsgKind : std::uint8_t {
  // Requests from a node's protocol processor to a line's home node.
  kReadReq,          // fetch line for reading
  kReadExReq,        // fetch line with exclusive ownership (SC/ERC write miss)
  kUpgradeReq,       // SC/ERC: have line read-only, want exclusivity
  kWriteReq,         // LRC: announce a write (multiple-writer; no ownership)
  kWritebackData,    // ERC/SC: dirty eviction, carries full line
  kWriteThrough,     // LRC: coalescing-buffer flush, carries dirty words
  kEvictNotify,      // LRC: clean or dirty eviction notice (directory upkeep)
  kInvalNotify,      // LRC: line invalidated at acquire (directory upkeep)
  kSharingWriteback, // ERC/SC: owner demotes Dirty->Shared, data to home

  // Home-to-node traffic.
  kReadReply,        // data for kReadReq
  kReadExReply,      // data + ownership for kReadExReq
  kUpgradeAck,       // exclusivity granted (no data)
  kWriteAck,         // LRC: write globally performed (all notices acked)
  kInval,            // SC/ERC: invalidate your copy now
  kWriteNotice,      // LRC: line became Weak; invalidate at next acquire
  kFwdReadReq,       // home forwards read to current owner (3-hop)
  kFwdReadExReq,     // home forwards exclusive fetch to current owner

  // Owner-to-requester (3-hop completion).
  kFwdDataReply,

  // Acknowledgements back to the home node.
  kInvalAck,         // SC/ERC invalidation ack
  kNoticeAck,        // LRC write-notice ack
  kWriteThroughAck,  // memory applied a write-through flush

  // Synchronization service.
  kLockReq,
  kLockGrant,
  kLockRel,
  kBarrierArrive,
  kBarrierRelease,

  kCount
};

std::string_view to_string(MsgKind k);

/// A message in flight. Field meaning depends on `kind`; unused fields are
/// zero. Messages are small value types copied into event closures.
struct Message {
  MsgKind kind{};
  NodeId src = kInvalidNode;   // sending node
  NodeId dst = kInvalidNode;   // receiving node
  LineId line = 0;             // cache line concerned (protocol messages)
  NodeId requester = kInvalidNode;  // original requester (forwarded msgs)
  SyncId sync = 0;             // lock/barrier id (sync messages)
  WordMask words = 0;          // dirty-word mask (write-through/notices)
  std::uint32_t payload_bytes = 0;  // data payload; 0 for control messages
  std::uint64_t tag = 0;       // protocol-private correlation tag
  /// Set by the NIC sink when this message lost a same-cycle arrival race it
  /// would have won under the engine's default ascending-seq tie order —
  /// i.e. a schedule explorer (src/mc/) inverted the tie. Provably always
  /// false in ordinary runs; the schedule-dependent protocol mutations
  /// (check::Mutation::kTie*) use it as their trigger.
  bool tie_inverted = false;
};

inline std::string_view to_string(MsgKind k) {
  switch (k) {
    case MsgKind::kReadReq: return "ReadReq";
    case MsgKind::kReadExReq: return "ReadExReq";
    case MsgKind::kUpgradeReq: return "UpgradeReq";
    case MsgKind::kWriteReq: return "WriteReq";
    case MsgKind::kWritebackData: return "WritebackData";
    case MsgKind::kWriteThrough: return "WriteThrough";
    case MsgKind::kEvictNotify: return "EvictNotify";
    case MsgKind::kInvalNotify: return "InvalNotify";
    case MsgKind::kSharingWriteback: return "SharingWriteback";
    case MsgKind::kReadReply: return "ReadReply";
    case MsgKind::kReadExReply: return "ReadExReply";
    case MsgKind::kUpgradeAck: return "UpgradeAck";
    case MsgKind::kWriteAck: return "WriteAck";
    case MsgKind::kInval: return "Inval";
    case MsgKind::kWriteNotice: return "WriteNotice";
    case MsgKind::kFwdReadReq: return "FwdReadReq";
    case MsgKind::kFwdReadExReq: return "FwdReadExReq";
    case MsgKind::kFwdDataReply: return "FwdDataReply";
    case MsgKind::kInvalAck: return "InvalAck";
    case MsgKind::kNoticeAck: return "NoticeAck";
    case MsgKind::kWriteThroughAck: return "WriteThroughAck";
    case MsgKind::kLockReq: return "LockReq";
    case MsgKind::kLockGrant: return "LockGrant";
    case MsgKind::kLockRel: return "LockRel";
    case MsgKind::kBarrierArrive: return "BarrierArrive";
    case MsgKind::kBarrierRelease: return "BarrierRelease";
    case MsgKind::kCount: break;
  }
  return "?";
}

}  // namespace lrc::mesh
