#include "mesh/nic.hpp"

#include <algorithm>
#include <cassert>

namespace lrc::mesh {

Nic::Nic(sim::Engine& engine, const Topology& topo, NicParams params)
    : engine_(engine),
      topo_(topo),
      params_(params),
      out_free_(topo.nodes(), 0),
      in_free_(topo.nodes(), 0) {}

Cycle Nic::uncontended_latency(NodeId src, NodeId dst,
                               std::uint32_t payload_bytes) const {
  const unsigned h = topo_.hops(src, dst);
  Cycle lat = h * (params_.switch_latency + params_.wire_latency);
  if (payload_bytes > 0) lat += ceil_div(payload_bytes, params_.bandwidth);
  return lat;
}

void Nic::send(Cycle when, Message msg) {
  assert(msg.src < topo_.nodes() && msg.dst < topo_.nodes());
  assert(deliver_ && "NIC delivery callback not installed");

  ++stats_.messages;
  ++stats_.per_kind[static_cast<std::size_t>(msg.kind)];
  if (msg.payload_bytes > 0) {
    ++stats_.data_messages;
    stats_.payload_bytes += msg.payload_bytes;
  } else {
    ++stats_.control_messages;
  }

  // Endpoint occupancy charge: payload for data messages, header otherwise.
  const std::uint32_t occ_bytes =
      std::max(msg.payload_bytes, params_.header_bytes);
  const Cycle occ = ceil_div(occ_bytes, params_.bandwidth);

  // Source endpoint: serialize departures.
  const Cycle depart = std::max(when, out_free_[msg.src]);
  stats_.send_contention += depart - when;
  out_free_[msg.src] = depart + occ;

  // Mesh traversal (uncontended between endpoints, per the paper).
  const Cycle arrive = depart + uncontended_latency(msg.src, msg.dst,
                                                    msg.payload_bytes);

  // Sink endpoint: serialize deliveries. The current message is delivered at
  // max(arrival, sink-free); subsequent deliveries wait behind its occupancy.
  const NodeId dst = msg.dst;
  engine_.schedule(arrive, [this, msg, occ](Cycle t) {
    const Cycle deliver_at = std::max(t, in_free_[msg.dst]);
    stats_.recv_contention += deliver_at - t;
    in_free_[msg.dst] = deliver_at + occ;
    if (deliver_at == t) {
      deliver_(msg, t);
    } else {
      engine_.schedule(deliver_at,
                       [this, msg](Cycle t2) { deliver_(msg, t2); });
    }
  });
  (void)dst;
}

}  // namespace lrc::mesh
