#include "mesh/nic.hpp"

#include <algorithm>
#include <cassert>

namespace lrc::mesh {

// Pooled arrival event: messages that finish mesh traversal on one cycle.
// Capacity is sized so the event still fits the engine's largest pool slot.
class Nic::Arrival final : public sim::Event {
 public:
  static constexpr unsigned kCapacity = 3;

  Arrival(Nic& nic, const Message& msg) : nic_(nic) {
    msgs_[count_++] = msg;
    set_mc_actor(msg.dst, /*resumes_fiber=*/false);
    set_mc_src(msg.src);
  }

  bool add(const Message& msg) {
    if (count_ == kCapacity) return false;
    msgs_[count_++] = msg;
    // A batch mixing destinations touches several nodes' sink state.
    if (msg.dst != msgs_[0].dst) set_mc_actor(kNoActor, false);
    if (msg.src != msgs_[0].src) set_mc_src(kNoActor);
    return true;
  }

  void fire(Cycle t) override {
    if (nic_.pending_arrival_ == this) nic_.pending_arrival_ = nullptr;
    for (unsigned i = 0; i < count_; ++i) nic_.arbitrate_sink(msgs_[i], t);
  }

 private:
  Nic& nic_;
  unsigned count_ = 0;
  Message msgs_[kCapacity];
};

// Pooled re-delivery for a message that arrived while the sink endpoint was
// occupied: fires once the endpoint frees up.
class Nic::Delivery final : public sim::Event {
 public:
  Delivery(Nic& nic, const Message& msg) : nic_(nic), msg_(msg) {
    set_mc_actor(msg.dst, /*resumes_fiber=*/false);
    set_mc_src(msg.src);
  }

  void fire(Cycle t) override { nic_.deliver(msg_, t); }

 private:
  Nic& nic_;
  Message msg_;
};

Nic::Nic(sim::Engine& engine, const Topology& topo, NicParams params)
    : engine_(engine),
      topo_(topo),
      params_(params),
      out_free_(topo.nodes(), 0),
      in_free_(topo.nodes(), 0),
      stats_(topo.nodes()) {
#ifdef LRCSIM_CHECK
  tie_mark_.resize(topo.nodes());
#endif
  static_assert(sizeof(Arrival) <= sim::Engine::kMaxPooledBytes,
                "Arrival must fit a pool slot; shrink kCapacity");
  static_assert(sizeof(Delivery) <= sim::Engine::kMaxPooledBytes);
}

Cycle Nic::uncontended_latency(NodeId src, NodeId dst,
                               std::uint32_t payload_bytes) const {
  const unsigned h = topo_.hops(src, dst);
  Cycle lat = h * (params_.switch_latency + params_.wire_latency);
  if (payload_bytes > 0) lat += ceil_div(payload_bytes, params_.bandwidth);
  return lat;
}

void Nic::send(Cycle when, Message msg) {
  assert(msg.src < topo_.nodes() && msg.dst < topo_.nodes());
  assert(deliver_fn_ && "NIC delivery callback not installed");

  // Source-side counters: in a sharded run send() executes on the source
  // node's shard, so per-node rows make the bumps thread-local. The whole-
  // mesh totals (stats()) are plain sums, bit-identical to a single row.
  NicStats& st = stats_[msg.src];
  ++st.messages;
  ++st.per_kind[static_cast<std::size_t>(msg.kind)];
  if (msg.payload_bytes > 0) {
    ++st.data_messages;
    st.payload_bytes += msg.payload_bytes;
  } else {
    ++st.control_messages;
  }

  const Cycle occ = occupancy(msg);

  // Source endpoint: serialize departures.
  const Cycle depart = std::max(when, out_free_[msg.src]);
  st.send_contention += depart - when;
  out_free_[msg.src] = depart + occ;

  // Mesh traversal (uncontended between endpoints, per the paper).
  const Cycle arrive = depart + uncontended_latency(msg.src, msg.dst,
                                                    msg.payload_bytes);

  if (sharded_) {
    // Keyed arrival order: (destination, source, per-source counter) — a
    // pure function of the program, so delivery order is identical for any
    // shard count. Cross-shard arrivals go to the destination shard's
    // inbox; it schedules them at its next window drain (post_arrival).
    const std::uint64_t key = hooks_.key_for(hooks_.ctx, msg.dst, msg.src);
    if (hooks_.post_remote(hooks_.ctx, msg, arrive, key)) return;
    post_arrival(msg, arrive, key);
    return;
  }

  // Batch onto the previous arrival event when (a) it is still pending for
  // this same cycle and (b) it holds the engine's most recent sequence
  // number. (b) proves no other event was scheduled in between, so the
  // batched messages would have fired back to back anyway — execution
  // order, and therefore timing, is bit-identical to one event per message.
  if (batching_ && pending_arrival_ != nullptr && pending_arrival_->pending() &&
      pending_arrival_->when() == arrive &&
      engine_.last_seq() == pending_arrival_->seq() &&
      pending_arrival_->add(msg)) {
    ++st.batched_arrivals;
    return;
  }
  pending_arrival_ = engine_.schedule_make<Arrival>(arrive, *this, msg);
}

void Nic::post_arrival(const Message& msg, Cycle arrive, std::uint64_t key) {
  assert(sharded_);
  hooks_.engine_for(hooks_.ctx, msg.dst)
      ->schedule_make_keyed<Arrival>(arrive, key, *this, msg);
}

NicStats Nic::stats() const {
  NicStats total;
  for (const NicStats& s : stats_) {
    total.messages += s.messages;
    total.control_messages += s.control_messages;
    total.data_messages += s.data_messages;
    total.payload_bytes += s.payload_bytes;
    total.batched_arrivals += s.batched_arrivals;
    for (std::size_t k = 0; k < static_cast<std::size_t>(MsgKind::kCount); ++k) {
      total.per_kind[k] += s.per_kind[k];
    }
    total.send_contention += s.send_contention;
    total.recv_contention += s.recv_contention;
  }
  return total;
}

void Nic::arbitrate_sink(const Message& msg, Cycle t) {
  Message m = msg;
#ifdef LRCSIM_CHECK
  // Same-cycle arrival-race watermark (see Message::tie_inverted). The
  // engine fires equal-time arrival events in ascending seq order, so in
  // ordinary runs same-cycle calls here carry non-decreasing current_seq()
  // (a batched Arrival repeats one seq) and the flag stays false. Only a
  // schedule explorer picking a non-default tie order can invert it.
  // Sharded runs skip the watermark: keys already fix the tie order, and
  // engine_ aliases shard 0 only (the checker is serial-only anyway).
  if (!sharded_) {
    TieMark& tm = tie_mark_[msg.dst];
    const std::uint64_t seq = engine_.current_seq();
    if (tm.cycle == t) {
      m.tie_inverted = seq < tm.max_seq;
      if (seq > tm.max_seq) tm.max_seq = seq;
    } else {
      tm.cycle = t;
      tm.max_seq = seq;
    }
  }
#endif
  // Sink endpoint: serialize deliveries. The current message is delivered at
  // max(arrival, sink-free); subsequent deliveries wait behind its occupancy.
  const Cycle deliver_at = std::max(t, in_free_[msg.dst]);
  stats_[msg.dst].recv_contention += deliver_at - t;
  in_free_[msg.dst] = deliver_at + occupancy(msg);
  if (deliver_at == t) {
    deliver(m, t);
  } else if (sharded_) {
    // Always destination-local: the Delivery fires on this same shard.
    hooks_.engine_for(hooks_.ctx, msg.dst)
        ->schedule_make_keyed<Delivery>(
            deliver_at, hooks_.key_for(hooks_.ctx, msg.dst, msg.dst), *this, m);
  } else {
    engine_.schedule_make<Delivery>(deliver_at, *this, m);
  }
}

}  // namespace lrc::mesh
