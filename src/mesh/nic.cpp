#include "mesh/nic.hpp"

#include <algorithm>
#include <cassert>

namespace lrc::mesh {

// Pooled arrival event: messages that finish mesh traversal on one cycle.
// Capacity is sized so the event still fits the engine's largest pool slot.
class Nic::Arrival final : public sim::Event {
 public:
  static constexpr unsigned kCapacity = 3;

  Arrival(Nic& nic, const Message& msg) : nic_(nic) {
    msgs_[count_++] = msg;
    set_mc_actor(msg.dst, /*resumes_fiber=*/false);
    set_mc_src(msg.src);
  }

  bool add(const Message& msg) {
    if (count_ == kCapacity) return false;
    msgs_[count_++] = msg;
    // A batch mixing destinations touches several nodes' sink state.
    if (msg.dst != msgs_[0].dst) set_mc_actor(kNoActor, false);
    if (msg.src != msgs_[0].src) set_mc_src(kNoActor);
    return true;
  }

  void fire(Cycle t) override {
    if (nic_.pending_arrival_ == this) nic_.pending_arrival_ = nullptr;
    for (unsigned i = 0; i < count_; ++i) nic_.arbitrate_sink(msgs_[i], t);
  }

 private:
  Nic& nic_;
  unsigned count_ = 0;
  Message msgs_[kCapacity];
};

// Pooled re-delivery for a message that arrived while the sink endpoint was
// occupied: fires once the endpoint frees up.
class Nic::Delivery final : public sim::Event {
 public:
  Delivery(Nic& nic, const Message& msg) : nic_(nic), msg_(msg) {
    set_mc_actor(msg.dst, /*resumes_fiber=*/false);
    set_mc_src(msg.src);
  }

  void fire(Cycle t) override { nic_.deliver(msg_, t); }

 private:
  Nic& nic_;
  Message msg_;
};

Nic::Nic(sim::Engine& engine, const Topology& topo, NicParams params)
    : engine_(engine),
      topo_(topo),
      params_(params),
      out_free_(topo.nodes(), 0),
      in_free_(topo.nodes(), 0) {
#ifdef LRCSIM_CHECK
  tie_mark_.resize(topo.nodes());
#endif
  static_assert(sizeof(Arrival) <= sim::Engine::kMaxPooledBytes,
                "Arrival must fit a pool slot; shrink kCapacity");
  static_assert(sizeof(Delivery) <= sim::Engine::kMaxPooledBytes);
}

Cycle Nic::uncontended_latency(NodeId src, NodeId dst,
                               std::uint32_t payload_bytes) const {
  const unsigned h = topo_.hops(src, dst);
  Cycle lat = h * (params_.switch_latency + params_.wire_latency);
  if (payload_bytes > 0) lat += ceil_div(payload_bytes, params_.bandwidth);
  return lat;
}

void Nic::send(Cycle when, Message msg) {
  assert(msg.src < topo_.nodes() && msg.dst < topo_.nodes());
  assert(deliver_fn_ && "NIC delivery callback not installed");

  ++stats_.messages;
  ++stats_.per_kind[static_cast<std::size_t>(msg.kind)];
  if (msg.payload_bytes > 0) {
    ++stats_.data_messages;
    stats_.payload_bytes += msg.payload_bytes;
  } else {
    ++stats_.control_messages;
  }

  const Cycle occ = occupancy(msg);

  // Source endpoint: serialize departures.
  const Cycle depart = std::max(when, out_free_[msg.src]);
  stats_.send_contention += depart - when;
  out_free_[msg.src] = depart + occ;

  // Mesh traversal (uncontended between endpoints, per the paper).
  const Cycle arrive = depart + uncontended_latency(msg.src, msg.dst,
                                                    msg.payload_bytes);

  // Batch onto the previous arrival event when (a) it is still pending for
  // this same cycle and (b) it holds the engine's most recent sequence
  // number. (b) proves no other event was scheduled in between, so the
  // batched messages would have fired back to back anyway — execution
  // order, and therefore timing, is bit-identical to one event per message.
  if (batching_ && pending_arrival_ != nullptr && pending_arrival_->pending() &&
      pending_arrival_->when() == arrive &&
      engine_.last_seq() == pending_arrival_->seq() &&
      pending_arrival_->add(msg)) {
    ++stats_.batched_arrivals;
    return;
  }
  pending_arrival_ = engine_.schedule_make<Arrival>(arrive, *this, msg);
}

void Nic::arbitrate_sink(const Message& msg, Cycle t) {
  Message m = msg;
#ifdef LRCSIM_CHECK
  // Same-cycle arrival-race watermark (see Message::tie_inverted). The
  // engine fires equal-time arrival events in ascending seq order, so in
  // ordinary runs same-cycle calls here carry non-decreasing current_seq()
  // (a batched Arrival repeats one seq) and the flag stays false. Only a
  // schedule explorer picking a non-default tie order can invert it.
  TieMark& tm = tie_mark_[msg.dst];
  const std::uint64_t seq = engine_.current_seq();
  if (tm.cycle == t) {
    m.tie_inverted = seq < tm.max_seq;
    if (seq > tm.max_seq) tm.max_seq = seq;
  } else {
    tm.cycle = t;
    tm.max_seq = seq;
  }
#endif
  // Sink endpoint: serialize deliveries. The current message is delivered at
  // max(arrival, sink-free); subsequent deliveries wait behind its occupancy.
  const Cycle deliver_at = std::max(t, in_free_[msg.dst]);
  stats_.recv_contention += deliver_at - t;
  in_free_[msg.dst] = deliver_at + occupancy(msg);
  if (deliver_at == t) {
    deliver(m, t);
  } else {
    engine_.schedule_make<Delivery>(deliver_at, *this, m);
  }
}

}  // namespace lrc::mesh
