#include "mesh/topology.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace lrc::mesh {

Topology::Topology(unsigned nodes) : nodes_(nodes) {
  if (nodes == 0 || nodes > kMaxProcs) {
    throw std::invalid_argument("Topology: node count must be in [1, 64]");
  }
  // Largest divisor of `nodes` not exceeding sqrt(nodes); the loop always
  // terminates at a divisor (worst case rows == 1), so the mesh is exactly
  // rectangular.
  rows_ = static_cast<unsigned>(std::floor(std::sqrt(static_cast<double>(nodes))));
  while (rows_ > 1 && nodes % rows_ != 0) --rows_;
  cols_ = nodes / rows_;
  assert(rows_ * cols_ == nodes_);

  hop_.resize(static_cast<std::size_t>(nodes_) * nodes_);
  std::uint64_t total = 0;
  for (NodeId a = 0; a < nodes_; ++a) {
    for (NodeId b = 0; b < nodes_; ++b) {
      const int dr = static_cast<int>(row_of(a)) - static_cast<int>(row_of(b));
      const int dc = static_cast<int>(col_of(a)) - static_cast<int>(col_of(b));
      const unsigned h = static_cast<unsigned>(std::abs(dr) + std::abs(dc));
      hop_[static_cast<std::size_t>(a) * nodes_ + b] =
          static_cast<std::uint8_t>(h);
      if (a != b) total += h;
    }
  }
  if (nodes_ > 1) {
    mean_hops_ = static_cast<double>(total) /
                 (static_cast<double>(nodes_) * (nodes_ - 1));
  }
}

}  // namespace lrc::mesh
