#include "mesh/topology.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace lrc::mesh {

Topology::Topology(unsigned nodes) : nodes_(nodes) {
  if (nodes == 0 || nodes > kMaxProcs) {
    throw std::invalid_argument("Topology: node count must be in [1, 64]");
  }
  // Choose rows as the largest divisor-free split <= sqrt: rows x cols with
  // rows*cols >= nodes and cols - rows minimal.
  rows_ = static_cast<unsigned>(std::floor(std::sqrt(static_cast<double>(nodes))));
  while (rows_ > 1 && nodes % rows_ != 0) --rows_;
  cols_ = nodes / rows_;
  if (rows_ * cols_ < nodes) cols_ += 1;  // non-rectangular fallback
}

unsigned Topology::hops(NodeId a, NodeId b) const {
  const int dr = static_cast<int>(row_of(a)) - static_cast<int>(row_of(b));
  const int dc = static_cast<int>(col_of(a)) - static_cast<int>(col_of(b));
  return static_cast<unsigned>(std::abs(dr) + std::abs(dc));
}

double Topology::mean_hops() const {
  if (nodes_ <= 1) return 0.0;
  std::uint64_t total = 0;
  for (NodeId a = 0; a < nodes_; ++a) {
    for (NodeId b = 0; b < nodes_; ++b) {
      if (a != b) total += hops(a, b);
    }
  }
  return static_cast<double>(total) /
         (static_cast<double>(nodes_) * (nodes_ - 1));
}

}  // namespace lrc::mesh
