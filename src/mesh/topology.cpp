#include "mesh/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace lrc::mesh {

Topology::Topology(unsigned nodes) : nodes_(nodes) {
  if (nodes == 0 || nodes > kMaxNodes) {
    throw std::invalid_argument("Topology: node count must be in [1, 1024]");
  }
  // Largest divisor of `nodes` not exceeding sqrt(nodes); the loop always
  // terminates at a divisor (worst case rows == 1), so the mesh is exactly
  // rectangular.
  rows_ = static_cast<unsigned>(std::floor(std::sqrt(static_cast<double>(nodes))));
  while (rows_ > 1 && nodes % rows_ != 0) --rows_;
  cols_ = nodes / rows_;
  assert(rows_ * cols_ == nodes_);

  hop_.resize(static_cast<std::size_t>(nodes_) * nodes_);
  std::uint64_t total = 0;
  for (NodeId a = 0; a < nodes_; ++a) {
    for (NodeId b = 0; b < nodes_; ++b) {
      const int dr = static_cast<int>(row_of(a)) - static_cast<int>(row_of(b));
      const int dc = static_cast<int>(col_of(a)) - static_cast<int>(col_of(b));
      const unsigned h = static_cast<unsigned>(std::abs(dr) + std::abs(dc));
      hop_[static_cast<std::size_t>(a) * nodes_ + b] =
          static_cast<std::uint8_t>(h);
      if (a != b) total += h;
    }
  }
  if (nodes_ > 1) {
    mean_hops_ = static_cast<double>(total) /
                 (static_cast<double>(nodes_) * (nodes_ - 1));
  }
}

std::vector<std::uint8_t> Topology::partition(unsigned shards) const {
  const unsigned s =
      shards == 0 ? 1 : std::min({shards, nodes_, 255u});  // uint8_t ids
  std::vector<std::uint8_t> out(nodes_);
  // Balanced contiguous ranges in row-major order: shard k owns nodes
  // [k*N/S, (k+1)*N/S). Row-major contiguity keeps each shard a spatial
  // strip of the mesh, so most protocol traffic (requester <-> nearby home)
  // stays shard-local and only strip-boundary messages cross threads.
  for (unsigned k = 0; k < s; ++k) {
    const NodeId lo = static_cast<NodeId>(
        (static_cast<std::uint64_t>(k) * nodes_) / s);
    const NodeId hi = static_cast<NodeId>(
        (static_cast<std::uint64_t>(k + 1) * nodes_) / s);
    for (NodeId n = lo; n < hi; ++n) out[n] = static_cast<std::uint8_t>(k);
  }
  return out;
}

unsigned Topology::min_cross_shard_hops(
    const std::vector<std::uint8_t>& shard_of) const {
  assert(shard_of.size() == nodes_);
  unsigned best = 0;
  for (NodeId a = 0; a < nodes_; ++a) {
    for (NodeId b = 0; b < nodes_; ++b) {
      if (shard_of[a] == shard_of[b]) continue;
      const unsigned h = hops(a, b);
      if (best == 0 || h < best) best = h;
    }
  }
  return best;
}

}  // namespace lrc::mesh
