// Network interface model. Reproduces the paper's network cost model:
// message latency = hops * (switch_latency + wire_latency) + payload/bandwidth,
// with contention modeled at the sending and receiving endpoints only
// (never at intermediate switches), exactly as in the paper's back end.
//
// Delivery rides the engine's typed-event hot path: each arrival is a
// pooled intrusive event, and back-to-back sends whose messages cross the
// receiving endpoint on the same cycle share one event (see Nic::send).
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/message.hpp"
#include "mesh/topology.hpp"
#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace lrc::mesh {

struct NicParams {
  Cycle switch_latency = 2;        // per-hop switch traversal
  Cycle wire_latency = 1;          // per-hop wire traversal
  std::uint32_t bandwidth = 2;     // bytes per cycle, each direction
  std::uint32_t header_bytes = 8;  // occupancy charge for control messages
};

/// Per-message-kind traffic counters (for reports and tests).
struct NicStats {
  std::uint64_t messages = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t data_messages = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t batched_arrivals = 0;  // messages piggybacked on an event
  std::uint64_t per_kind[static_cast<std::size_t>(MsgKind::kCount)] = {};
  Cycle send_contention = 0;  // cycles messages waited at the source NIC
  Cycle recv_contention = 0;  // cycles messages waited at the sink NIC
};

class Nic {
 public:
  /// Delivery callback: plain function pointer + context, so the
  /// per-message call is one indirect jump (this is the hottest edge in
  /// the simulator — every delivered message crosses it).
  using DeliverFn = void (*)(void* ctx, const Message&, Cycle when);

  Nic(sim::Engine& engine, const Topology& topo, NicParams params);

  /// Installs the delivery callback (the machine's dispatch routine).
  void set_deliver(DeliverFn fn, void* ctx) {
    deliver_fn_ = fn;
    deliver_ctx_ = ctx;
  }

  /// Sends `msg` no earlier than `when`; the delivery callback fires at the
  /// receiver once the message has traversed the mesh and won the receiving
  /// endpoint. Self-messages (src == dst) skip the mesh but still pay header
  /// occupancy, modeling the node-internal bus handoff.
  void send(Cycle when, Message msg);

  /// Pure latency of an uncontended message (for tests and cost preview).
  Cycle uncontended_latency(NodeId src, NodeId dst,
                            std::uint32_t payload_bytes) const;

  /// Enables/disables same-cycle arrival batching. Batching is bit-identical
  /// to one-event-per-message timing (see send()), but the model checker
  /// turns it off so every message is its own schedulable event and the
  /// explorer can reorder individual same-cycle arrivals.
  void set_batching(bool on) { batching_ = on; }

  /// Sharded-run routing hooks (installed by core::Machine, DESIGN.md §10):
  /// resolve the engine owning a node, mint the deterministic structural
  /// event key, and hand cross-shard arrivals to the destination shard's
  /// inbox. Installing hooks disables same-cycle batching (its proof relies
  /// on single-engine sequence adjacency) and routes every arrival and
  /// delivery through the destination node's engine.
  struct ShardHooks {
    sim::Engine* (*engine_for)(void* ctx, NodeId node) = nullptr;
    std::uint64_t (*key_for)(void* ctx, NodeId actor, NodeId origin) = nullptr;
    /// Returns true when the arrival was queued for a remote shard (the
    /// destination shard calls post_arrival at its next window drain).
    bool (*post_remote)(void* ctx, const Message& msg, Cycle arrive,
                        std::uint64_t key) = nullptr;
    void* ctx = nullptr;
  };
  void set_shard_hooks(const ShardHooks& h) {
    hooks_ = h;
    sharded_ = true;
  }

  /// Destination-shard entry: schedules a drained cross-shard arrival into
  /// the destination node's engine. Runs on the destination shard's thread.
  void post_arrival(const Message& msg, Cycle arrive, std::uint64_t key);

  /// Whole-mesh totals (per-node counters summed in node order).
  NicStats stats() const;
  /// Traffic attributed to one node: sends count at the source, sink
  /// arbitration (recv_contention) at the destination.
  const NicStats& node_stats(NodeId n) const { return stats_[n]; }
  void reset_stats() {
    for (auto& s : stats_) s = NicStats{};
  }

 private:
  class Arrival;   // pooled event: >=1 messages arriving on one cycle
  class Delivery;  // pooled event: one message that lost endpoint arbitration

  /// Endpoint occupancy charge: payload for data messages, header otherwise.
  Cycle occupancy(const Message& msg) const {
    const std::uint32_t occ_bytes =
        msg.payload_bytes > params_.header_bytes ? msg.payload_bytes
                                                 : params_.header_bytes;
    return ceil_div(occ_bytes, params_.bandwidth);
  }

  /// Arbitrates the sink endpoint for one arrived message and delivers it
  /// (immediately, or via a follow-up event if the endpoint is busy).
  void arbitrate_sink(const Message& msg, Cycle t);

  void deliver(const Message& msg, Cycle t) { deliver_fn_(deliver_ctx_, msg, t); }

  sim::Engine& engine_;
  const Topology& topo_;
  NicParams params_;
  DeliverFn deliver_fn_ = nullptr;
  void* deliver_ctx_ = nullptr;
  std::vector<Cycle> out_free_;  // source-endpoint next-free time
  std::vector<Cycle> in_free_;   // sink-endpoint next-free time
  Arrival* pending_arrival_ = nullptr;  // batching candidate; see send()
  bool batching_ = true;                // see set_batching()
  bool sharded_ = false;                // see set_shard_hooks()
  ShardHooks hooks_;
#ifdef LRCSIM_CHECK
  struct TieMark {  // per-sink same-cycle arrival seq watermark
    Cycle cycle = static_cast<Cycle>(-1);
    std::uint64_t max_seq = 0;
  };
  std::vector<TieMark> tie_mark_;
#endif
  std::vector<NicStats> stats_;  // per node; see node_stats()
};

}  // namespace lrc::mesh
