// The simulated multiprocessor: event engine, mesh, memory system, one Cpu
// per node, a coherence protocol, and the synchronization service. This is
// the library's main entry point:
//
//   auto params = core::SystemParams::paper_default();
//   core::Machine m(params, core::ProtocolKind::kLRC);
//   auto a = m.alloc<double>(n, "A");
//   m.run([&](core::Cpu& cpu) { ... a.get(cpu, i) ... });
//   core::Report r = m.report();
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "check/hooks.hpp"
#include "core/cpu.hpp"
#include "core/params.hpp"
#include "core/report.hpp"
#include "mem/address_map.hpp"
#include "mem/backing_store.hpp"
#include "mem/dram.hpp"
#include "mem/llc.hpp"
#include "mesh/nic.hpp"
#include "mesh/topology.hpp"
#include "proto/protocol.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "stats/miss_classifier.hpp"

namespace lrc::proto {
class SyncManager;
}

namespace lrc::check {
class Checker;
}

namespace lrc::core {

/// Typed view of a shared segment; all element accesses are timed through
/// the calling processor.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  SharedArray(Addr base, std::size_t n) : base_(base), n_(n) {}

  std::size_t size() const { return n_; }
  Addr addr(std::size_t i) const { return base_ + i * sizeof(T); }

  T get(Cpu& cpu, std::size_t i) const { return cpu.read<T>(addr(i)); }
  void put(Cpu& cpu, std::size_t i, const T& v) const {
    cpu.write<T>(addr(i), v);
  }

 private:
  Addr base_ = 0;
  std::size_t n_ = 0;
};

class Machine {
 public:
  Machine(const SystemParams& params, ProtocolKind protocol);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // ---- Setup (untimed) ---------------------------------------------------

  /// Allocates a line-aligned shared segment.
  Addr alloc_bytes(std::size_t bytes, std::string name = {});

  template <typename T>
  SharedArray<T> alloc(std::size_t n, std::string name = {}) {
    return SharedArray<T>(alloc_bytes(n * sizeof(T), std::move(name)), n);
  }

  /// Untimed backdoor accesses for initialization and result checking.
  template <typename T>
  T peek(Addr a) const {
    return store_.load<T>(a);
  }
  template <typename T>
  void poke_mem(Addr a, const T& v) {
    store_.store(a, v);
  }

  // ---- Execution ---------------------------------------------------------

  /// Runs `body` SPMD on all processors to completion. May be called once.
  void run(std::function<void(Cpu&)> body);

  Report report() const;

  // ---- Component access (protocols, sync service, tests) -----------------

  const SystemParams& params() const { return params_; }
  unsigned nprocs() const { return params_.nprocs; }
  ProtocolKind protocol_kind() const { return kind_; }

  sim::Engine& engine() { return engine_; }
  mesh::Topology& topo() { return topo_; }
  mesh::Nic& nic() { return nic_; }
  mem::AddressMap& amap() { return amap_; }
  mem::BackingStore& store() { return store_; }
  const mem::BackingStore& store() const { return store_; }
  mem::Dram& dram() { return dram_; }
  mem::SharedLlc* llc() { return llc_.get(); }
  stats::MissClassifier& classifier() { return classifier_; }
  proto::Protocol& protocol() { return *protocol_; }
  proto::SyncManager& sync() { return *sync_; }

  Cpu& cpu(NodeId p) { return *cpus_[p]; }

  /// Optional message trace (disabled by default): `trace().enable()`
  /// before run() records every delivery for debugging/tests.
  sim::Trace& trace() { return trace_; }

  /// Enables the runtime consistency checker (docs/CHECKER.md). Only
  /// available in LRCSIM_CHECK builds — returns nullptr when the checker is
  /// compiled out, so callers can skip. Call before run(). In strict mode
  /// run() throws check::ViolationError after the engine stops if any
  /// violation was recorded.
  check::Checker* enable_checker(bool strict = true);
  check::Checker* checker() { return checker_.get(); }

  NodeId home_of_line(LineId l) { return amap_.home_of_line(l); }

  /// Re-injects a deferred message into dispatch at time `t` (used by the
  /// MSI protocols to replay requests queued behind a busy directory entry).
  void redeliver(const mesh::Message& msg, Cycle t);

  /// Schedules a wake-up for processor `p` at time `t` (typed pooled event;
  /// used by protocols that finish work asynchronously, e.g. LRC's fence).
  void schedule_poke(NodeId p, Cycle t);

  /// Event-side entry into dispatch (RedeliverEvent's target).
  void dispatch_deferred(const mesh::Message& msg, Cycle t);

  /// Protocol-processor occupancy bookkeeping used by message dispatch.
  Cycle pp_free_at(NodeId n) const { return pp_free_[n]; }
  /// Claims the protocol processor at `n` from max(at, free) for `cost`
  /// cycles; returns the start time.
  Cycle pp_claim(NodeId n, Cycle at, Cycle cost);

  /// Full-line memory access: through the shared LLC when configured
  /// (reads may skip DRAM on a slice hit; writes always reach DRAM so
  /// LLC copies stay clean), straight to DRAM otherwise.
  Cycle mem_line(NodeId node, LineId line, Cycle at, bool write) {
    if (llc_) return llc_->access_line(node, line, at, write, dram_);
    return dram_.access(node, at, params_.line_bytes, write);
  }

  /// Partial-line write-through to memory (LLC-aware, write-update).
  Cycle mem_partial_write(NodeId node, LineId line, Cycle at,
                          std::uint32_t bytes) {
    if (llc_) return llc_->write_through(node, line, at, bytes, dram_);
    return dram_.access(node, at, bytes, true);
  }

  // Event-visible run counters.
  std::uint64_t lock_acquires = 0;
  std::uint64_t barrier_episodes = 0;

 private:
  void dispatch(const mesh::Message& msg, Cycle t);

  SystemParams params_;
  ProtocolKind kind_;
  sim::Engine engine_;
  mesh::Topology topo_;
  mesh::Nic nic_;
  mem::AddressMap amap_;
  mem::BackingStore store_;
  mem::Dram dram_;
  std::unique_ptr<mem::SharedLlc> llc_;
  stats::MissClassifier classifier_;
  std::vector<Cycle> pp_free_;
  sim::Trace trace_;
  std::unique_ptr<proto::SyncManager> sync_;
  std::unique_ptr<proto::Protocol> protocol_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  std::unique_ptr<check::Checker> checker_;
  bool ran_ = false;
};

// ---- Cpu template methods (need Machine) ----------------------------------

template <typename T>
T Cpu::read(Addr a) {
  static_assert(std::is_trivially_copyable_v<T>);
  m_.protocol().cpu_read(*this, a, sizeof(T));
  LRCSIM_HOOK(m_, on_read(id_, a, sizeof(T)));
  return m_.store().load<T>(a);
}

template <typename T>
void Cpu::write(Addr a, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  m_.protocol().cpu_write(*this, a, sizeof(T));
  LRCSIM_HOOK(m_, on_write(id_, a, sizeof(T)));
  m_.store().store(a, v);
}

}  // namespace lrc::core
