// The simulated multiprocessor: event engine, mesh, memory system, one Cpu
// per node, a coherence protocol, and the synchronization service. This is
// the library's main entry point:
//
//   auto params = core::SystemParams::paper_default();
//   core::Machine m(params, core::ProtocolKind::kLRC);
//   auto a = m.alloc<double>(n, "A");
//   m.run([&](core::Cpu& cpu) { ... a.get(cpu, i) ... });
//   core::Report r = m.report();
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "check/hooks.hpp"
#include "core/access_log.hpp"
#include "core/cpu.hpp"
#include "core/params.hpp"
#include "core/report.hpp"
#include "mem/address_map.hpp"
#include "mem/backing_store.hpp"
#include "mem/dram.hpp"
#include "mem/llc.hpp"
#include "mesh/nic.hpp"
#include "mesh/topology.hpp"
#include "proto/protocol.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "stats/miss_classifier.hpp"

namespace lrc::proto {
class SyncManager;
}

namespace lrc::check {
class Checker;
}

namespace lrc::core {

/// Typed view of a shared segment; all element accesses are timed through
/// the calling processor.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  SharedArray(Addr base, std::size_t n) : base_(base), n_(n) {}

  std::size_t size() const { return n_; }
  Addr addr(std::size_t i) const { return base_ + i * sizeof(T); }

  T get(Cpu& cpu, std::size_t i) const { return cpu.read<T>(addr(i)); }
  void put(Cpu& cpu, std::size_t i, const T& v) const {
    cpu.write<T>(addr(i), v);
  }

 private:
  Addr base_ = 0;
  std::size_t n_ = 0;
};

class Machine {
 public:
  /// Builds one processor per node. `cpu_factory`, when set, constructs the
  /// processors instead of the default fiber front end — the trace
  /// replayer's hook (trace::ReplayCpu).
  using CpuFactory = std::function<std::unique_ptr<Cpu>(Machine&, NodeId)>;

  Machine(const SystemParams& params, ProtocolKind protocol,
          CpuFactory cpu_factory = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // ---- Setup (untimed) ---------------------------------------------------

  /// Allocates a line-aligned shared segment.
  Addr alloc_bytes(std::size_t bytes, std::string name = {});

  template <typename T>
  SharedArray<T> alloc(std::size_t n, std::string name = {}) {
    return SharedArray<T>(alloc_bytes(n * sizeof(T), std::move(name)), n);
  }

  /// Untimed backdoor accesses for initialization and result checking.
  template <typename T>
  T peek(Addr a) const {
    return store_.load<T>(a);
  }
  template <typename T>
  void poke_mem(Addr a, const T& v) {
    store_.store(a, v);
  }

  // ---- Execution ---------------------------------------------------------

  /// Runs `body` SPMD on all processors to completion. May be called once.
  /// Replay front ends carry their own workload: pass nullptr.
  void run(std::function<void(Cpu&)> body);

  Report report() const;

  // ---- Component access (protocols, sync service, tests) -----------------

  const SystemParams& params() const { return params_; }
  unsigned nprocs() const { return params_.nprocs; }
  ProtocolKind protocol_kind() const { return kind_; }

  sim::Engine& engine() { return engine_; }

  // ---- Parallel simulation (DESIGN.md §10) -------------------------------

  /// Shard count of the current run: 0 while serial (the legacy engine),
  /// min(params.shards, nprocs) once a sharded run() is under way.
  unsigned shards() const { return nshards_; }

  /// Engine that owns node `n`'s events (the serial engine when unsharded).
  sim::Engine& engine_for(NodeId n) {
    return nshards_ == 0 ? engine_ : *shard_engines_[shard_of_[n]];
  }

  /// Simulated time at node `n`'s engine (shard-local in sharded runs).
  Cycle now_at(NodeId n) { return engine_for(n).now(); }

  /// Mints the deterministic structural event key (keyed engine order):
  /// (acting node, minting node, per-minting-node counter). A pure function
  /// of the program, so identical for every shard count. Must be called
  /// from the shard that owns `origin`.
  std::uint64_t next_key(NodeId actor, NodeId origin) {
    return (static_cast<std::uint64_t>(actor) << 54) |
           (static_cast<std::uint64_t>(origin) << 44) |
           node_state_[origin].key_ctr++;
  }

  /// Schedules processor `p`'s resume event (legacy or keyed, per mode).
  void sched_resume(NodeId p, Cycle when, sim::Event& ev);

  mesh::Topology& topo() { return topo_; }
  mesh::Nic& nic() { return nic_; }
  mem::AddressMap& amap() { return amap_; }
  mem::BackingStore& store() { return store_; }
  const mem::BackingStore& store() const { return store_; }
  mem::Dram& dram() { return dram_; }
  mem::SharedLlc* llc() { return llc_.get(); }
  stats::MissClassifier& classifier() { return classifier_; }
  proto::Protocol& protocol() { return *protocol_; }
  proto::SyncManager& sync() { return *sync_; }

  Cpu& cpu(NodeId p) { return *cpus_[p]; }

  /// Optional message trace (disabled by default): `trace().enable()`
  /// before run() records every delivery for debugging/tests.
  sim::Trace& trace() { return trace_; }

  /// Installs a workload-stream capture hook (trace front end; serial-only,
  /// like the message trace and the checker). Call before run() with a log
  /// that outlives it; nullptr detaches.
  void set_access_log(AccessLog* log) { access_log_ = log; }
  AccessLog* access_log() const { return access_log_; }

  /// Enables the runtime consistency checker (docs/CHECKER.md). Only
  /// available in LRCSIM_CHECK builds — returns nullptr when the checker is
  /// compiled out, so callers can skip. Call before run(). In strict mode
  /// run() throws check::ViolationError after the engine stops if any
  /// violation was recorded.
  check::Checker* enable_checker(bool strict = true);
  check::Checker* checker() { return checker_.get(); }

  NodeId home_of_line(LineId l) { return amap_.home_of_line(l); }

  /// Re-injects a deferred message into dispatch at time `t` (used by the
  /// MSI protocols to replay requests queued behind a busy directory entry).
  void redeliver(const mesh::Message& msg, Cycle t);

  /// Schedules a wake-up for processor `p` at time `t` (typed pooled event;
  /// used by protocols that finish work asynchronously, e.g. LRC's fence).
  void schedule_poke(NodeId p, Cycle t);

  /// Event-side entry into dispatch (RedeliverEvent's target).
  void dispatch_deferred(const mesh::Message& msg, Cycle t);

  /// Protocol-processor occupancy bookkeeping used by message dispatch.
  Cycle pp_free_at(NodeId n) const { return pp_free_[n]; }
  /// Claims the protocol processor at `n` from max(at, free) for `cost`
  /// cycles; returns the start time.
  Cycle pp_claim(NodeId n, Cycle at, Cycle cost);

  /// Full-line memory access: through the shared LLC when configured
  /// (reads may skip DRAM on a slice hit; writes always reach DRAM so
  /// LLC copies stay clean), straight to DRAM otherwise.
  Cycle mem_line(NodeId node, LineId line, Cycle at, bool write) {
    if (llc_) return llc_->access_line(node, line, at, write, dram_);
    return dram_.access(node, at, params_.line_bytes, write);
  }

  /// Partial-line write-through to memory (LLC-aware, write-update).
  Cycle mem_partial_write(NodeId node, LineId line, Cycle at,
                          std::uint32_t bytes) {
    if (llc_) return llc_->write_through(node, line, at, bytes, dram_);
    return dram_.access(node, at, bytes, true);
  }

  // Event-visible run counters. Stored per acting node so sharded runs
  // bump only shard-local rows; the accessors sum in node order.
  std::uint64_t lock_acquires() const {
    std::uint64_t n = 0;
    for (const NodeState& s : node_state_) n += s.lock_acquires;
    return n;
  }
  std::uint64_t barrier_episodes() const {
    std::uint64_t n = 0;
    for (const NodeState& s : node_state_) n += s.barrier_episodes;
    return n;
  }
  void note_lock_acquire(NodeId p) { ++node_state_[p].lock_acquires; }
  void note_barrier_episode(NodeId p) { ++node_state_[p].barrier_episodes; }

 private:
  void dispatch(const mesh::Message& msg, Cycle t);

  // Sharded-run internals (machine.cpp; see DESIGN.md §10).
  void setup_shards();
  void run_shards();
  Cycle shard_outbox_min(unsigned s) const;
  void drain_shard(unsigned s);

  // Per-node mutable scalars touched from event context: one cache line per
  // node, so shards never false-share.
  struct alignas(64) NodeState {
    std::uint64_t key_ctr = 0;  // next_key() counter for events minted here
    std::uint64_t lock_acquires = 0;
    std::uint64_t barrier_episodes = 0;
  };

  // A cross-shard NIC arrival parked until the destination shard's next
  // window drain.
  struct PostedMsg {
    mesh::Message msg;
    Cycle arrive = 0;
    std::uint64_t key = 0;
  };

  SystemParams params_;
  ProtocolKind kind_;
  sim::Engine engine_;
  mesh::Topology topo_;
  mesh::Nic nic_;
  mem::AddressMap amap_;
  mem::BackingStore store_;
  mem::Dram dram_;
  std::unique_ptr<mem::SharedLlc> llc_;
  stats::MissClassifier classifier_;
  std::vector<Cycle> pp_free_;
  sim::Trace trace_;
  std::unique_ptr<proto::SyncManager> sync_;
  std::unique_ptr<proto::Protocol> protocol_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  std::unique_ptr<check::Checker> checker_;
  AccessLog* access_log_ = nullptr;
  bool ran_ = false;

  // Sharded-run state (empty/0 while serial).
  unsigned nshards_ = 0;
  Cycle lookahead_ = 1;
  std::vector<std::uint8_t> shard_of_;  // node -> shard
  std::vector<std::unique_ptr<sim::Engine>> shard_engines_;
  // mail_[parity][from][to]: written only by shard `from` while executing a
  // window, drained only by shard `to` after that window's barrier. The
  // single barrier per window lets a fast poster start the next window
  // while a slow peer still drains, so boxes are double-buffered by window
  // parity — the barrier bounds the skew to one window, making the buffers
  // race-free with no locks.
  std::vector<std::vector<std::vector<PostedMsg>>> mail_[2];
  // Current mailbox parity per shard, owned by that shard's thread; all
  // shards flip in lockstep (once per window, in drain_shard).
  struct alignas(64) ShardParity {
    unsigned v = 0;
  };
  std::vector<ShardParity> shard_parity_;
  std::vector<NodeState> node_state_;  // [node]
};

// ---- Cpu template methods (need Machine) ----------------------------------

template <typename T>
T Cpu::read(Addr a) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (AccessLog* log = m_.access_log()) {
    log->on_access(id_, /*write=*/false, a, sizeof(T));
  }
  drive(m_.protocol().cpu_read(*this, a, sizeof(T)));
  LRCSIM_HOOK(m_, on_read(id_, a, sizeof(T)));
  return m_.store().load<T>(a);
}

template <typename T>
void Cpu::write(Addr a, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (AccessLog* log = m_.access_log()) {
    log->on_access(id_, /*write=*/true, a, sizeof(T));
  }
  drive(m_.protocol().cpu_write(*this, a, sizeof(T)));
  LRCSIM_HOOK(m_, on_write(id_, a, sizeof(T)));
  m_.store().store(a, v);
}

}  // namespace lrc::core
