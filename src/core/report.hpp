// Run report: everything the paper's tables and figures are built from.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "mem/dram.hpp"
#include "mem/llc.hpp"
#include "mesh/nic.hpp"
#include "proto/sync_manager.hpp"
#include "stats/counters.hpp"
#include "stats/histogram.hpp"
#include "stats/miss_classifier.hpp"

namespace lrc::core {

struct Report {
  std::string protocol;
  unsigned nprocs = 0;

  /// Parallel execution time: max over processors of their finish time.
  Cycle execution_time = 0;

  /// Aggregate (summed over processors) cycle breakdown.
  stats::CpuBreakdown breakdown;
  std::vector<stats::CpuBreakdown> per_cpu;

  /// Aggregate stall-latency distributions per category.
  std::array<stats::Histogram, stats::kStallKinds> stall_hist;

  /// Cache behaviour aggregated over processors (protocol-visible totals;
  /// this is the struct pinned by the golden digests).
  cache::CacheStats cache;
  stats::MissCounts miss_classes;

  /// Per-level movement accounting aggregated over processors: [0] = L1,
  /// [1] = L2 when configured. Not part of the golden digest.
  std::vector<cache::LevelStats> cache_levels;

  /// Shared LLC behaviour (all slices summed), when configured.
  bool has_llc = false;
  mem::LlcStats llc;

  /// Traffic and memory-system behaviour.
  mesh::NicStats nic;
  mem::DramStats dram;

  std::uint64_t lock_acquires = 0;
  std::uint64_t barrier_episodes = 0;
  proto::SyncStats sync;

  /// Kernel health: events the engine had to clamp because a component
  /// scheduled them in the past (must be 0; see Engine::past_violations).
  std::uint64_t sched_past_violations = 0;
  /// Sharded runs (DESIGN.md §10): the same clamp counter per shard engine,
  /// in shard order. Empty for serial runs. A nonzero entry names the shard
  /// whose lookahead was violated, which the aggregate above cannot.
  std::vector<std::uint64_t> shard_past_violations;
  /// Total events the engine executed for this run.
  std::uint64_t events_executed = 0;

  double miss_rate() const { return cache.miss_rate(); }

  /// Pretty multi-line summary for examples and debugging.
  std::string summary() const;
};

}  // namespace lrc::core
