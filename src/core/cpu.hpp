// A simulated processor: the workload-facing API (read/write/lock/unlock/
// barrier/compute) plus the per-node hardware a protocol drives (cache,
// write buffer, coalescing buffer, outstanding-transaction table).
//
// Two front ends share this class. The default (fiber) front end runs
// workload code on a fiber owned by this class: cache hits execute inline
// (local clock bump); anything slower suspends the fiber until the protocol
// completes the transaction through the event engine. The trace front end
// (trace::ReplayCpu) overrides the virtual seam — start/finished/
// quantum_yield/resume_execution — and advances by decoding trace records
// instead of switching a fiber; the engine-facing contract (block/poke/
// local clock, the reusable ResumeEvent) is identical in both.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "cache/coalescing_buffer.hpp"
#include "cache/ot_table.hpp"
#include "cache/write_buffer.hpp"
#include "proto/cpu_op.hpp"
#include "sim/event.hpp"
#include "sim/fiber.hpp"
#include "sim/types.hpp"
#include "stats/counters.hpp"
#include "stats/histogram.hpp"

namespace lrc::core {

class Machine;

class Cpu {
 public:
  Cpu(Machine& m, NodeId id);
  virtual ~Cpu() = default;

  NodeId id() const { return id_; }
  unsigned nprocs() const;

  // ---- Workload API (fiber front end) ------------------------------------

  /// Timed shared-memory read. T must be trivially copyable and must not
  /// straddle a cache line.
  template <typename T>
  T read(Addr a);

  /// Timed shared-memory write.
  template <typename T>
  void write(Addr a, const T& v);

  /// Charges `n` cycles of local computation.
  void compute(Cycle n);

  /// Synchronization. Locks are exclusive queue locks; barriers gather all
  /// processors in the machine.
  void lock(SyncId s);
  void unlock(SyncId s);
  void barrier(SyncId s);

  /// Consistency fence: forces buffered invalidations to be processed now
  /// (paper §4.2's remedy for racy programs under lazy protocols). Free
  /// under the eager protocols.
  void fence();

  // ---- State the protocols drive ----------------------------------------

  Cycle now() const { return now_; }
  cache::Hierarchy& dcache() { return cache_; }
  const cache::Hierarchy& dcache() const { return cache_; }
  cache::WriteBuffer& wb() { return wb_; }
  cache::CoalescingBuffer& cb() { return cb_; }
  cache::OtTable& ot() { return ot_; }
  stats::CpuBreakdown& breakdown() { return bd_; }
  const stats::CpuBreakdown& breakdown() const { return bd_; }

  /// Latency distribution of the individual stalls in each category
  /// (read-miss waits, write stalls, synchronization waits).
  const stats::Histogram& stall_hist(stats::StallKind k) const {
    return stall_hist_[static_cast<std::size_t>(k)];
  }

  /// Advances the local clock by `n` busy (kCpu) cycles; yields to the
  /// engine if the run-ahead quantum is exhausted.
  void tick(Cycle n);

  /// Blocks the fiber, charging subsequent cycles to `k`, until a poke
  /// arrives. Callers wrap this in a `while (!condition)` loop.
  void block(stats::StallKind k);

  /// Runs a protocol op to completion, translating each Wait suspension
  /// into block(). The fiber front end's bridge to the coroutine protocol
  /// entry points.
  void drive(proto::CpuOp op) {
    while (!op.step()) block(op.wait_kind());
  }

  /// Wakes a blocked processor no earlier than `t` (engine/event context).
  void poke(Cycle t);

  /// True while the processor is suspended in a Wait.
  bool blocked() const { return blocked_; }

  /// Write-through acknowledgements still outstanding (LRC drain condition).
  unsigned wt_outstanding = 0;

  // ---- Machine plumbing --------------------------------------------------

  /// Fiber front end: creates the workload fiber, scheduled at cycle 0.
  /// Front ends that carry their own workload (trace replay) override and
  /// ignore `body`.
  virtual void start(std::function<void(Cpu&)> body);
  virtual bool finished() const { return fiber_ && fiber_->finished(); }
  /// True for front ends that re-issue a recorded stream (no workload body,
  /// no checker, no capture).
  virtual bool is_replay() const { return false; }
  Machine& machine() { return m_; }

 protected:
  /// Hands control back to the workload after on_resume's bookkeeping.
  /// Fiber front end: resume the fiber. Replay: run the decode loop.
  virtual void resume_execution();

  /// Engine re-entry when the run-ahead quantum is exhausted (called from
  /// tick). The fiber front end suspends here; replay defers the yield to
  /// the end of the current op (provably identical: ops never act after
  /// their final tick).
  virtual void quantum_yield();

  /// Marks this processor blocked under `k` without suspending anything
  /// (the caller suspends however its front end does).
  void note_blocked(stats::StallKind k) {
    blocked_ = true;
    block_kind_ = k;
    block_start_ = now_;
    hits_since_yield_ = 0;
  }

  /// Schedules the reusable resume event at the local clock (quantum
  /// re-entry) — shared by both front ends' quantum_yield.
  void schedule_quantum_resume();

  /// Schedules the initial resume at cycle 0 (both front ends' start()).
  void schedule_start();

  Machine& m_;

 private:
  friend class Machine;

  // The engine wakes a Cpu through this caller-owned reusable event: one
  // per processor, zero allocation, never more than one pending (the
  // resume_scheduled_ guard and the start/block protocol ensure that).
  class ResumeEvent final : public sim::Event {
   public:
    explicit ResumeEvent(Cpu& cpu) : cpu_(cpu) {}
    void fire(Cycle t) override { cpu_.on_resume(t); }

   private:
    Cpu& cpu_;
  };
  enum class ResumeMode : std::uint8_t { kStart, kQuantum, kPoke };

  void run_body();
  void on_resume(Cycle t);

  NodeId id_;
  Cycle now_ = 0;
  stats::CpuBreakdown bd_;

  cache::Hierarchy cache_;
  cache::WriteBuffer wb_;
  cache::CoalescingBuffer cb_;
  cache::OtTable ot_;

  std::unique_ptr<sim::Fiber> fiber_;
  std::function<void(Cpu&)> body_;
  ResumeEvent resume_event_{*this};
  ResumeMode resume_mode_ = ResumeMode::kStart;
  bool blocked_ = false;
  bool resume_scheduled_ = false;
  stats::StallKind block_kind_ = stats::StallKind::kCpu;
  Cycle block_start_ = 0;
  Cycle hits_since_yield_ = 0;
  std::array<stats::Histogram, stats::kStallKinds> stall_hist_;
};

}  // namespace lrc::core
