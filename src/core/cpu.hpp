// A simulated processor: the workload-facing API (read/write/lock/unlock/
// barrier/compute) plus the per-node hardware a protocol drives (cache,
// write buffer, coalescing buffer, outstanding-transaction table).
//
// Workload code runs on a fiber owned by this class. Cache hits execute
// inline (local clock bump); anything slower blocks the fiber until the
// protocol completes the transaction through the event engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "cache/coalescing_buffer.hpp"
#include "cache/ot_table.hpp"
#include "cache/write_buffer.hpp"
#include "sim/event.hpp"
#include "sim/fiber.hpp"
#include "sim/types.hpp"
#include "stats/counters.hpp"
#include "stats/histogram.hpp"

namespace lrc::core {

class Machine;

class Cpu {
 public:
  Cpu(Machine& m, NodeId id);

  NodeId id() const { return id_; }
  unsigned nprocs() const;

  // ---- Workload API ------------------------------------------------------

  /// Timed shared-memory read. T must be trivially copyable and must not
  /// straddle a cache line.
  template <typename T>
  T read(Addr a);

  /// Timed shared-memory write.
  template <typename T>
  void write(Addr a, const T& v);

  /// Charges `n` cycles of local computation.
  void compute(Cycle n);

  /// Synchronization. Locks are exclusive queue locks; barriers gather all
  /// processors in the machine.
  void lock(SyncId s);
  void unlock(SyncId s);
  void barrier(SyncId s);

  /// Consistency fence: forces buffered invalidations to be processed now
  /// (paper §4.2's remedy for racy programs under lazy protocols). Free
  /// under the eager protocols.
  void fence();

  // ---- State the protocols drive ----------------------------------------

  Cycle now() const { return now_; }
  cache::Hierarchy& dcache() { return cache_; }
  const cache::Hierarchy& dcache() const { return cache_; }
  cache::WriteBuffer& wb() { return wb_; }
  cache::CoalescingBuffer& cb() { return cb_; }
  cache::OtTable& ot() { return ot_; }
  stats::CpuBreakdown& breakdown() { return bd_; }
  const stats::CpuBreakdown& breakdown() const { return bd_; }

  /// Latency distribution of the individual stalls in each category
  /// (read-miss waits, write stalls, synchronization waits).
  const stats::Histogram& stall_hist(stats::StallKind k) const {
    return stall_hist_[static_cast<std::size_t>(k)];
  }

  /// Advances the local clock by `n` busy (kCpu) cycles; yields to the
  /// engine if the run-ahead quantum is exhausted.
  void tick(Cycle n);

  /// Blocks the fiber, charging subsequent cycles to `k`, until a poke
  /// arrives. Callers wrap this in a `while (!condition)` loop.
  void block(stats::StallKind k);

  /// Wakes a blocked fiber no earlier than `t` (engine/event context).
  void poke(Cycle t);

  /// True while the fiber is suspended in block().
  bool blocked() const { return blocked_; }

  /// Write-through acknowledgements still outstanding (LRC drain condition).
  unsigned wt_outstanding = 0;

  // ---- Machine plumbing --------------------------------------------------

  void start(std::function<void(Cpu&)> body);  // create fiber, schedule at 0
  bool finished() const { return fiber_ && fiber_->finished(); }
  Machine& machine() { return m_; }

 private:
  friend class Machine;

  // The engine wakes a Cpu through this caller-owned reusable event: one
  // per processor, zero allocation, never more than one pending (the
  // resume_scheduled_ guard and the start/block protocol ensure that).
  class ResumeEvent final : public sim::Event {
   public:
    explicit ResumeEvent(Cpu& cpu) : cpu_(cpu) {}
    void fire(Cycle t) override { cpu_.on_resume(t); }

   private:
    Cpu& cpu_;
  };
  enum class ResumeMode : std::uint8_t { kStart, kQuantum, kPoke };

  void run_body();
  void quantum_yield();
  void on_resume(Cycle t);

  Machine& m_;
  NodeId id_;
  Cycle now_ = 0;
  stats::CpuBreakdown bd_;

  cache::Hierarchy cache_;
  cache::WriteBuffer wb_;
  cache::CoalescingBuffer cb_;
  cache::OtTable ot_;

  std::unique_ptr<sim::Fiber> fiber_;
  std::function<void(Cpu&)> body_;
  ResumeEvent resume_event_{*this};
  ResumeMode resume_mode_ = ResumeMode::kStart;
  bool blocked_ = false;
  bool resume_scheduled_ = false;
  stats::StallKind block_kind_ = stats::StallKind::kCpu;
  Cycle block_start_ = 0;
  Cycle hits_since_yield_ = 0;
  std::array<stats::Histogram, stats::kStallKinds> stall_hist_;
};

}  // namespace lrc::core
