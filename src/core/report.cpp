#include "core/report.hpp"

#include <sstream>

#include "stats/table.hpp"

namespace lrc::core {

std::string Report::summary() const {
  std::ostringstream os;
  os << "=== " << protocol << " on " << nprocs << " processors ===\n";
  os << "execution time: " << execution_time << " cycles\n";
  os << "references: " << cache.references() << "  misses: " << cache.misses()
     << "  miss rate: " << stats::Table::pct(miss_rate(), 2) << "\n";

  // Per-level hierarchy lines only when there is a hierarchy: the default
  // single-L1 summary stays byte-identical to the pre-hierarchy format.
  if (cache_levels.size() > 1) {
    for (std::size_t l = 0; l < cache_levels.size(); ++l) {
      const auto& ls = cache_levels[l];
      os << "L" << (l + 1) << ": hits=" << ls.hits << " fills=" << ls.fills
         << " evictions=" << ls.evictions
         << " invalidations=" << ls.invalidations
         << " promotions=" << ls.promotions << " demotions=" << ls.demotions
         << " back-invals=" << ls.back_invals << "\n";
    }
  }
  if (has_llc) {
    os << "LLC: hits=" << llc.hits << " misses=" << llc.misses
       << " read-fills=" << llc.read_fills
       << " wb-fills=" << llc.writeback_fills
       << " evictions=" << llc.evictions
       << " remote=" << llc.remote_accesses << "\n";
  }

  const double total = static_cast<double>(breakdown.total());
  os << "aggregate cycles by category:";
  for (std::size_t i = 0; i < stats::kStallKinds; ++i) {
    const auto k = static_cast<stats::StallKind>(i);
    os << "  " << to_string(k) << "="
       << stats::Table::pct(total > 0 ? breakdown[k] / total : 0.0, 1);
  }
  os << "\n";

  const double misses = static_cast<double>(miss_classes.total());
  if (misses > 0) {
    os << "miss classes:";
    for (std::size_t i = 0; i < stats::kMissClasses; ++i) {
      const auto c = static_cast<stats::MissClass>(i);
      os << "  " << to_string(c) << "="
         << stats::Table::pct(miss_classes[c] / misses, 1);
    }
    os << "\n";
  }

  for (std::size_t i = 1; i < stats::kStallKinds; ++i) {
    const auto k = static_cast<stats::StallKind>(i);
    if (stall_hist[i].count() > 0) {
      os << to_string(k) << "-stall latency: " << stall_hist[i].summary()
         << "\n";
    }
  }

  os << "messages: " << nic.messages << " (" << nic.control_messages
     << " control, " << nic.data_messages << " data, " << nic.payload_bytes
     << " payload bytes)\n";
  os << "locks acquired: " << lock_acquires
     << "  barrier episodes: " << barrier_episodes << "\n";
  os << "engine events: " << events_executed;
  if (sched_past_violations > 0) {
    os << "  PAST-TIME SCHEDULES CLAMPED: " << sched_past_violations;
  }
  os << "\n";
  if (!shard_past_violations.empty()) {
    os << "shards: " << shard_past_violations.size()
       << "  past-time clamps per shard:";
    for (std::uint64_t v : shard_past_violations) os << " " << v;
    os << "\n";
  }
  return os.str();
}

}  // namespace lrc::core
