// System parameters. Defaults reproduce Table 1 of the paper; the
// future-machine preset reproduces the §4.3 trend experiment
// (40-cycle memory startup, 4 bytes/cycle, 256-byte lines).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "cache/config.hpp"
#include "mem/address_map.hpp"
#include "sim/types.hpp"

namespace lrc::core {

enum class ProtocolKind : std::uint8_t { kSC, kERC, kLRC, kLRCExt, kERCWT };

std::string_view to_string(ProtocolKind k);

struct SystemParams {
  unsigned nprocs = 64;

  // Cache organization (Table 1). cache_bytes sizes the L1; associativity,
  // replacement policy and further levels (private L2, shared LLC) live in
  // `cache` below. The Table-1 default is ways=1, i.e. direct-mapped.
  std::uint32_t line_bytes = 128;
  std::uint32_t cache_bytes = 128 * 1024;  // L1 capacity
  std::uint32_t page_bytes = 4096;

  // Hierarchy composition: L1 shape plus optional private L2 and optional
  // sliced shared LLC. The default (single direct-mapped L1) reproduces
  // the paper machine bit-for-bit.
  cache::CacheConfig cache;

  // Memory system (Table 1).
  Cycle mem_setup = 20;             // "memory setup time"
  std::uint32_t mem_bandwidth = 2;  // bytes/cycle
  std::uint32_t bus_bandwidth = 2;  // bytes/cycle (node-local fill)

  // Network (Table 1).
  std::uint32_t net_bandwidth = 2;  // bytes/cycle, bidirectional
  Cycle switch_latency = 2;
  Cycle wire_latency = 1;

  // Protocol processor costs (Table 1).
  Cycle write_notice_cost = 4;   // receive-side write-notice processing
  Cycle lrc_dir_cost = 25;       // LRC directory access
  Cycle erc_dir_cost = 15;       // ERC (and SC) directory access
  Cycle sync_op_cost = 4;        // lock/barrier manager processing (see docs)
  Cycle dir_update_cost = 4;     // LRC sharer-list upkeep (evict/inval notify)

  // Buffering (§3/§4.2 of the paper).
  unsigned write_buffer_entries = 4;
  unsigned coalescing_entries = 16;

  // Protocol ablation knobs (DESIGN.md / EXPERIMENTS.md ablations).
  // LRC: overlap buffered-notice processing with the lock-grant latency
  // (§2 of the paper); false defers all invalidations to grant time.
  bool lrc_overlap_acquire = true;

  // Simulator knobs (not part of the modeled machine).
  Cycle runahead_quantum = 100;  // max hit-run cycles before a fiber yields
  mem::HomePolicy home_policy = mem::HomePolicy::kRoundRobin;
  std::uint64_t seed = 1;        // workload-generator seed

  // Parallel simulation (DESIGN.md §10). 0 = the serial legacy engine,
  // bit-identical to every pre-sharding release. N >= 1 = conservative
  // parallel DES over min(N, nprocs) shards with the *keyed* deterministic
  // event order: stats are bit-identical across shard counts (1, 2, 4, ...)
  // but same-cycle tie order may differ from the serial engine's
  // schedule-order tie-break, so shards=1 is not required to match shards=0.
  unsigned shards = 0;

  /// Paper Table 1 defaults at a given processor count.
  static SystemParams paper_default(unsigned nprocs = 64);

  /// §4.3 "future hypothetical machine": high latency, high bandwidth,
  /// long cache lines.
  static SystemParams future_machine(unsigned nprocs = 64);

  /// Scaled-down variant used by unit/integration tests (small cache so
  /// sharing behaviour appears with tiny inputs).
  static SystemParams test_scale(unsigned nprocs = 8);

  std::string describe() const;

  /// Rejects inconsistent geometry (non-power-of-two sizes/ways,
  /// line_bytes > page_bytes, inclusive L2 smaller than L1, ...) with a
  /// std::invalid_argument naming the offending field. Machine
  /// construction calls this; tests may call it directly.
  void validate() const;
};

inline std::string_view to_string(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kSC: return "SC";
    case ProtocolKind::kERC: return "ERC";
    case ProtocolKind::kLRC: return "LRC";
    case ProtocolKind::kLRCExt: return "LRC-ext";
    case ProtocolKind::kERCWT: return "ERC-WT";
  }
  return "?";
}

}  // namespace lrc::core
