// Capture interface for the trace front end (DESIGN.md §11): when a log is
// installed on the Machine, every workload-level operation — shared-memory
// accesses, computation, synchronization — is reported here immediately
// before it executes. The stream is exactly what trace::ReplayCpu re-issues,
// so capture hooks the same boundary replay drives.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace lrc::core {

class AccessLog {
 public:
  enum class SyncOp : std::uint8_t { kLock, kUnlock, kBarrier, kFence };

  virtual ~AccessLog() = default;

  /// A timed shared-memory access is about to issue on processor `p`.
  virtual void on_access(NodeId p, bool write, Addr a, std::uint32_t bytes) = 0;

  /// Processor `p` is about to charge `n` cycles of local computation.
  virtual void on_compute(NodeId p, Cycle n) = 0;

  /// Processor `p` is about to perform a synchronization operation
  /// (`s` is unused for kFence).
  virtual void on_sync(NodeId p, SyncOp op, SyncId s) = 0;
};

}  // namespace lrc::core
