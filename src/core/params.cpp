#include "core/params.hpp"

#include <sstream>

namespace lrc::core {

SystemParams SystemParams::paper_default(unsigned nprocs) {
  SystemParams p;
  p.nprocs = nprocs;
  return p;
}

SystemParams SystemParams::future_machine(unsigned nprocs) {
  SystemParams p;
  p.nprocs = nprocs;
  p.mem_setup = 40;
  p.mem_bandwidth = 4;
  p.bus_bandwidth = 4;
  p.net_bandwidth = 4;
  p.line_bytes = 256;
  return p;
}

SystemParams SystemParams::test_scale(unsigned nprocs) {
  SystemParams p;
  p.nprocs = nprocs;
  p.line_bytes = 64;
  p.cache_bytes = 4 * 1024;
  return p;
}

std::string SystemParams::describe() const {
  std::ostringstream os;
  os << "System parameters (paper Table 1 unless noted):\n"
     << "  processors             " << nprocs << "\n"
     << "  cache line size        " << line_bytes << " bytes\n"
     << "  cache size             " << cache_bytes / 1024
     << " Kbytes direct-mapped\n"
     << "  memory setup time      " << mem_setup << " cycles\n"
     << "  memory bandwidth       " << mem_bandwidth << " bytes/cycle\n"
     << "  bus bandwidth          " << bus_bandwidth << " bytes/cycle\n"
     << "  network bandwidth      " << net_bandwidth
     << " bytes/cycle (bidirectional)\n"
     << "  switch node latency    " << switch_latency << " cycles\n"
     << "  wire latency           " << wire_latency << " cycles\n"
     << "  write notice cost      " << write_notice_cost << " cycles\n"
     << "  LRC directory access   " << lrc_dir_cost << " cycles\n"
     << "  ERC directory access   " << erc_dir_cost << " cycles\n"
     << "  write buffer           " << write_buffer_entries << " entries\n"
     << "  coalescing buffer      " << coalescing_entries << " entries\n";
  return os.str();
}

}  // namespace lrc::core
