#include "core/params.hpp"

#include <sstream>
#include <stdexcept>

namespace lrc::core {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

void require_pow2(std::uint64_t v, const char* field) {
  if (!is_pow2(v)) {
    throw std::invalid_argument(std::string("SystemParams: ") + field +
                                " must be a non-zero power of two, got " +
                                std::to_string(v));
  }
}
}  // namespace

void SystemParams::validate() const {
  require_pow2(cache_bytes, "cache_bytes");
  require_pow2(line_bytes, "line_bytes");
  require_pow2(page_bytes, "page_bytes");
  if (line_bytes > page_bytes) {
    throw std::invalid_argument(
        "SystemParams: line_bytes (" + std::to_string(line_bytes) +
        ") must not exceed page_bytes (" + std::to_string(page_bytes) + ")");
  }
  require_pow2(cache.l1_ways, "cache.l1_ways");
  if (cache.l1_ways > cache_bytes / line_bytes) {
    throw std::invalid_argument(
        "SystemParams: cache.l1_ways (" + std::to_string(cache.l1_ways) +
        ") exceeds the number of L1 lines (" +
        std::to_string(cache_bytes / line_bytes) + ")");
  }
  if (cache.has_l2()) {
    require_pow2(cache.l2_bytes, "cache.l2_bytes");
    require_pow2(cache.l2_ways, "cache.l2_ways");
    if (cache.l2_ways > cache.l2_bytes / line_bytes) {
      throw std::invalid_argument(
          "SystemParams: cache.l2_ways (" + std::to_string(cache.l2_ways) +
          ") exceeds the number of L2 lines (" +
          std::to_string(cache.l2_bytes / line_bytes) + ")");
    }
    if (cache.inclusion == cache::InclusionPolicy::kInclusive &&
        cache.l2_bytes < cache_bytes) {
      throw std::invalid_argument(
          "SystemParams: inclusive cache.l2_bytes (" +
          std::to_string(cache.l2_bytes) +
          ") must be at least the L1 capacity (" +
          std::to_string(cache_bytes) + ")");
    }
  }
  if (cache.has_llc()) {
    require_pow2(cache.llc_slice_bytes, "cache.llc_slice_bytes");
    require_pow2(cache.llc_ways, "cache.llc_ways");
    if (cache.llc_ways > cache.llc_slice_bytes / line_bytes) {
      throw std::invalid_argument(
          "SystemParams: cache.llc_ways (" + std::to_string(cache.llc_ways) +
          ") exceeds the number of lines per LLC slice (" +
          std::to_string(cache.llc_slice_bytes / line_bytes) + ")");
    }
  }
  if (shards > 0) {
    // Sharded runs need page homes that are a pure function of the address:
    // first-touch assigns homes in access order, which is tie-dependent.
    if (home_policy != mem::HomePolicy::kRoundRobin) {
      throw std::invalid_argument(
          "SystemParams: shards > 0 requires the round-robin home policy "
          "(first-touch homes depend on access order)");
    }
    // LLC slice lookups hash across nodes, so a slice is touched by fills
    // from any shard; keep the shared LLC on the serial engine for now.
    if (cache.has_llc()) {
      throw std::invalid_argument(
          "SystemParams: shards > 0 does not support a shared LLC yet");
    }
  }
}

SystemParams SystemParams::paper_default(unsigned nprocs) {
  SystemParams p;
  p.nprocs = nprocs;
  return p;
}

SystemParams SystemParams::future_machine(unsigned nprocs) {
  SystemParams p;
  p.nprocs = nprocs;
  p.mem_setup = 40;
  p.mem_bandwidth = 4;
  p.bus_bandwidth = 4;
  p.net_bandwidth = 4;
  p.line_bytes = 256;
  return p;
}

SystemParams SystemParams::test_scale(unsigned nprocs) {
  SystemParams p;
  p.nprocs = nprocs;
  p.line_bytes = 64;
  p.cache_bytes = 4 * 1024;
  return p;
}

std::string SystemParams::describe() const {
  std::ostringstream os;
  os << "System parameters (paper Table 1 unless noted):\n"
     << "  processors             " << nprocs << "\n"
     << "  cache line size        " << line_bytes << " bytes\n"
     << "  L1 cache               " << cache_bytes / 1024 << " Kbytes "
     << (cache.l1_ways == 1 ? std::string("direct-mapped")
                            : std::to_string(cache.l1_ways) + "-way " +
                                  cache::to_string(cache.l1_replacement))
     << "\n";
  if (cache.has_l2()) {
    os << "  L2 cache               " << cache.l2_bytes / 1024 << " Kbytes "
       << cache.l2_ways << "-way " << cache::to_string(cache.l2_replacement)
       << (cache.inclusion == cache::InclusionPolicy::kInclusive
               ? " inclusive"
               : " exclusive")
       << " (+" << cache.l2_hit_cycles << " cycles)\n";
  }
  if (cache.has_llc()) {
    os << "  shared LLC             " << cache.llc_slice_bytes / 1024
       << " Kbytes/slice x " << nprocs << " slices, " << cache.llc_ways
       << "-way, "
       << (cache.llc_hash == cache::SliceHash::kInterleave ? "interleaved"
                                                           : "xor-folded")
       << "\n";
  }
  os
     << "  memory setup time      " << mem_setup << " cycles\n"
     << "  memory bandwidth       " << mem_bandwidth << " bytes/cycle\n"
     << "  bus bandwidth          " << bus_bandwidth << " bytes/cycle\n"
     << "  network bandwidth      " << net_bandwidth
     << " bytes/cycle (bidirectional)\n"
     << "  switch node latency    " << switch_latency << " cycles\n"
     << "  wire latency           " << wire_latency << " cycles\n"
     << "  write notice cost      " << write_notice_cost << " cycles\n"
     << "  LRC directory access   " << lrc_dir_cost << " cycles\n"
     << "  ERC directory access   " << erc_dir_cost << " cycles\n"
     << "  write buffer           " << write_buffer_entries << " entries\n"
     << "  coalescing buffer      " << coalescing_entries << " entries\n";
  return os.str();
}

}  // namespace lrc::core
