#include "core/cpu.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "check/hooks.hpp"
#include "core/access_log.hpp"
#include "core/machine.hpp"
#include "proto/protocol.hpp"
#include "proto/sync_manager.hpp"

namespace lrc::core {

Cpu::Cpu(Machine& m, NodeId id)
    : m_(m),
      id_(id),
      cache_(m.params().cache, m.params().cache_bytes, m.params().line_bytes,
             id, m.params().seed),
      wb_(m.params().write_buffer_entries),
      cb_(m.params().coalescing_entries) {
  resume_event_.set_mc_actor(id, /*resumes_fiber=*/true);
}

unsigned Cpu::nprocs() const { return m_.nprocs(); }

void Cpu::compute(Cycle n) {
  if (AccessLog* log = m_.access_log()) log->on_compute(id_, n);
  tick(n);
}

void Cpu::fence() {
  if (AccessLog* log = m_.access_log()) {
    log->on_sync(id_, AccessLog::SyncOp::kFence, 0);
  }
  drive(m_.protocol().fence(*this));
}

// Checker hooks bracket the protocol calls so the host-order sequence of
// hook firings matches the simulated happens-before order: a release hook
// runs before the lock can be granted elsewhere, and an acquire hook runs
// only after the grant came back to this fiber.
void Cpu::lock(SyncId s) {
  if (AccessLog* log = m_.access_log()) {
    log->on_sync(id_, AccessLog::SyncOp::kLock, s);
  }
  drive(m_.protocol().acquire(*this, s));
  LRCSIM_HOOK(m_, on_acquire(id_, s));
}
void Cpu::unlock(SyncId s) {
  if (AccessLog* log = m_.access_log()) {
    log->on_sync(id_, AccessLog::SyncOp::kUnlock, s);
  }
  LRCSIM_HOOK(m_, on_release(id_, s));
  drive(m_.protocol().release(*this, s));
  LRCSIM_HOOK(m_, on_release_drained(*this, "unlock"));
}
void Cpu::barrier(SyncId s) {
  if (AccessLog* log = m_.access_log()) {
    log->on_sync(id_, AccessLog::SyncOp::kBarrier, s);
  }
  LRCSIM_HOOK(m_, on_barrier_arrive(id_, s));
  drive(m_.protocol().barrier(*this, s));
  LRCSIM_HOOK(m_, on_release_drained(*this, "barrier"));
  LRCSIM_HOOK(m_, on_barrier_done(id_, s));
}

void Cpu::tick(Cycle n) {
  bd_[stats::StallKind::kCpu] += n;
  now_ += n;
  hits_since_yield_ += n;
  if (hits_since_yield_ >= m_.params().runahead_quantum) {
    quantum_yield();
  }
}

void Cpu::schedule_quantum_resume() {
  hits_since_yield_ = 0;
  resume_scheduled_ = true;
  resume_mode_ = ResumeMode::kQuantum;
  m_.sched_resume(id_, now_, resume_event_);
}

void Cpu::quantum_yield() {
  // Re-enter the engine so messages timestamped before our run-ahead horizon
  // get processed; we resume at our own local time.
  schedule_quantum_resume();
  sim::Fiber::yield();
}

void Cpu::block(stats::StallKind k) {
  assert(sim::Fiber::current() == fiber_.get());
  note_blocked(k);
  sim::Fiber::yield();
}

void Cpu::poke(Cycle t) {
  if (!blocked_ || resume_scheduled_) return;
  resume_scheduled_ = true;
  resume_mode_ = ResumeMode::kPoke;
  m_.sched_resume(id_, std::max(t, now_), resume_event_);
}

void Cpu::on_resume(Cycle t) {
  switch (resume_mode_) {
    case ResumeMode::kStart:
      resume_execution();
      return;
    case ResumeMode::kQuantum:
      resume_scheduled_ = false;
      now_ = std::max(now_, t);
      resume_execution();
      return;
    case ResumeMode::kPoke:
      resume_scheduled_ = false;
      if (!blocked_) return;
      blocked_ = false;
      bd_[block_kind_] += t - block_start_;
      stall_hist_[static_cast<std::size_t>(block_kind_)].add(t - block_start_);
      now_ = std::max(now_, t);
      resume_execution();
      return;
  }
}

void Cpu::schedule_start() {
  resume_mode_ = ResumeMode::kStart;
  m_.sched_resume(id_, 0, resume_event_);
}

void Cpu::start(std::function<void(Cpu&)> body) {
  if (!body) {
    throw std::invalid_argument("fiber front end requires a workload body");
  }
  body_ = std::move(body);
  fiber_ = std::make_unique<sim::Fiber>([this] { run_body(); });
  schedule_start();
}

void Cpu::resume_execution() { fiber_->resume(); }

void Cpu::run_body() {
  body_(*this);
  drive(m_.protocol().finalize(*this));
}

}  // namespace lrc::core
