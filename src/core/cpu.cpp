#include "core/cpu.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/machine.hpp"
#include "proto/protocol.hpp"
#include "proto/sync_manager.hpp"

namespace lrc::core {

Cpu::Cpu(Machine& m, NodeId id)
    : m_(m),
      id_(id),
      cache_(m.params().cache_bytes, m.params().line_bytes),
      wb_(m.params().write_buffer_entries),
      cb_(m.params().coalescing_entries) {}

unsigned Cpu::nprocs() const { return m_.nprocs(); }

void Cpu::compute(Cycle n) { tick(n); }

void Cpu::fence() { m_.protocol().fence(*this); }

void Cpu::lock(SyncId s) { m_.protocol().acquire(*this, s); }
void Cpu::unlock(SyncId s) { m_.protocol().release(*this, s); }
void Cpu::barrier(SyncId s) { m_.protocol().barrier(*this, s); }

void Cpu::tick(Cycle n) {
  bd_[stats::StallKind::kCpu] += n;
  now_ += n;
  hits_since_yield_ += n;
  if (hits_since_yield_ >= m_.params().runahead_quantum) {
    quantum_yield();
  }
}

void Cpu::quantum_yield() {
  hits_since_yield_ = 0;
  // Re-enter the engine so messages timestamped before our run-ahead horizon
  // get processed; we resume at our own local time.
  resume_scheduled_ = true;
  m_.engine().schedule(now_, [this](Cycle t) {
    resume_scheduled_ = false;
    now_ = std::max(now_, t);
    fiber_->resume();
  });
  sim::Fiber::yield();
}

void Cpu::block(stats::StallKind k) {
  assert(sim::Fiber::current() == fiber_.get());
  blocked_ = true;
  block_kind_ = k;
  block_start_ = now_;
  hits_since_yield_ = 0;
  sim::Fiber::yield();
}

void Cpu::poke(Cycle t) {
  if (!blocked_ || resume_scheduled_) return;
  resume_scheduled_ = true;
  m_.engine().schedule(std::max(t, now_), [this](Cycle tt) {
    resume_scheduled_ = false;
    if (!blocked_) return;
    blocked_ = false;
    bd_[block_kind_] += tt - block_start_;
    stall_hist_[static_cast<std::size_t>(block_kind_)].add(tt - block_start_);
    now_ = std::max(now_, tt);
    fiber_->resume();
  });
}

void Cpu::start(std::function<void(Cpu&)> body) {
  body_ = std::move(body);
  fiber_ = std::make_unique<sim::Fiber>([this] { run_body(); });
  m_.engine().schedule(0, [this](Cycle) { fiber_->resume(); });
}

void Cpu::run_body() {
  body_(*this);
  m_.protocol().finalize(*this);
}

}  // namespace lrc::core
