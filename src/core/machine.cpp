#include "core/machine.hpp"

#include <stdexcept>
#include <thread>

#include "check/checker.hpp"
#include "proto/base.hpp"
#include "proto/sync_manager.hpp"
#include "sim/shard.hpp"

namespace lrc::core {

namespace {
// Validation must precede every member construction (a bad geometry would
// otherwise trip asserts deep inside Cache); run it inside the first
// initializer.
const SystemParams& validated(const SystemParams& p) {
  p.validate();
  return p;
}
}  // namespace

Machine::Machine(const SystemParams& params, ProtocolKind protocol,
                 CpuFactory cpu_factory)
    : params_(validated(params)),
      kind_(protocol),
      topo_(params.nprocs),
      nic_(engine_, topo_,
           mesh::NicParams{params.switch_latency, params.wire_latency,
                           params.net_bandwidth, /*header_bytes=*/8}),
      amap_(params.nprocs, params.line_bytes, params.page_bytes,
            params.home_policy),
      dram_(params.nprocs,
            mem::DramParams{params.mem_setup, params.mem_bandwidth}),
      classifier_(params.nprocs, params.line_bytes / mem::AddressMap::kWordBytes),
      pp_free_(params.nprocs, 0),
      node_state_(params.nprocs) {
  if (params_.cache.has_llc()) {
    llc_ = std::make_unique<mem::SharedLlc>(params_.cache, params_.nprocs,
                                            params_.line_bytes, params_.seed);
  }
  sync_ = std::make_unique<proto::SyncManager>(*this);
  protocol_ = proto::make_protocol(protocol, *this);
  nic_.set_deliver(
      [](void* ctx, const mesh::Message& msg, Cycle t) {
        static_cast<Machine*>(ctx)->dispatch(msg, t);
      },
      this);
  cpus_.reserve(params.nprocs);
  for (NodeId p = 0; p < params.nprocs; ++p) {
    cpus_.push_back(cpu_factory ? cpu_factory(*this, p)
                                : std::make_unique<Cpu>(*this, p));
  }
  // Lines displaced out of a private stack exit through the protocol,
  // which owes the same transactions a coherence invalidation produces.
  for (auto& c : cpus_) {
    c->dcache().set_victim_sink(
        [](void* ctx, NodeId p, const cache::CacheLine& victim, Cycle at) {
          static_cast<proto::Protocol*>(ctx)->evict_victim(p, victim, at);
        },
        protocol_.get());
  }
}

Machine::~Machine() {
  // A run that unwinds mid-flight (checker strict mode, a replay
  // TraceError) leaves events queued — including the Cpus' reusable
  // resume events, which live inside the Cpu objects. engine_ is declared
  // before cpus_ and so is destroyed after them; drain every engine here,
  // while the Cpus are still alive, so releasing those events is safe.
  engine_.drop_pending();
  for (auto& e : shard_engines_) e->drop_pending();
}

check::Checker* Machine::enable_checker(bool strict) {
#ifdef LRCSIM_CHECK
  if (!checker_) {
    checker_ = std::make_unique<check::Checker>(*this, strict);
  }
#else
  (void)strict;  // compiled out: hooks are no-ops, a checker would see nothing
#endif
  return checker_.get();
}

Addr Machine::alloc_bytes(std::size_t bytes, std::string name) {
  return store_.allocate(bytes, params_.line_bytes, std::move(name));
}

namespace {

// Pooled typed events for the machine's deferred work. Defined here so
// Engine::schedule_make sees complete types.
class RedeliverEvent final : public sim::Event {
 public:
  RedeliverEvent(Machine& m, const mesh::Message& msg) : m_(m), msg_(msg) {
    set_mc_actor(msg.dst, /*resumes_fiber=*/false);
    set_mc_src(msg.src);
  }
  void fire(Cycle t) override { m_.dispatch_deferred(msg_, t); }

 private:
  Machine& m_;
  mesh::Message msg_;
};

class PokeEvent final : public sim::Event {
 public:
  PokeEvent(Machine& m, NodeId p) : m_(m), p_(p) {
    set_mc_actor(p, /*resumes_fiber=*/false);
  }
  void fire(Cycle t) override { m_.cpu(p_).poke(t); }

 private:
  Machine& m_;
  NodeId p_;
};

static_assert(sizeof(RedeliverEvent) <= sim::Engine::kMaxPooledBytes);

}  // namespace

// The three local scheduling paths below (redeliver, poke, resume) are all
// same-node: the caller executes on the shard that owns the target node, so
// keyed scheduling into engine_for(node) is thread-local by construction.

void Machine::redeliver(const mesh::Message& msg, Cycle t) {
  if (nshards_ == 0) {
    engine_.schedule_make<RedeliverEvent>(t, *this, msg);
    return;
  }
  engine_for(msg.dst).schedule_make_keyed<RedeliverEvent>(
      t, next_key(msg.dst, msg.dst), *this, msg);
}

void Machine::schedule_poke(NodeId p, Cycle t) {
  if (nshards_ == 0) {
    engine_.schedule_make<PokeEvent>(t, *this, p);
    return;
  }
  engine_for(p).schedule_make_keyed<PokeEvent>(t, next_key(p, p), *this, p);
}

void Machine::sched_resume(NodeId p, Cycle when, sim::Event& ev) {
  if (nshards_ == 0) {
    engine_.schedule_external(when, ev);
    return;
  }
  engine_for(p).schedule_external_keyed(when, next_key(p, p), ev);
}

void Machine::dispatch_deferred(const mesh::Message& msg, Cycle t) {
  dispatch(msg, t);
}

Cycle Machine::pp_claim(NodeId n, Cycle at, Cycle cost) {
  const Cycle start = std::max(at, pp_free_[n]);
  pp_free_[n] = start + cost;
  return start;
}

void Machine::dispatch(const mesh::Message& msg, Cycle t) {
  trace_.record(msg, t);
  const Cycle start = std::max(t, pp_free_[msg.dst]);
  if (!proto::SyncManager::owns(msg.kind)) {
    LRCSIM_HOOK(*this, before_handle(msg));
  }
  const Cycle cost = proto::SyncManager::owns(msg.kind)
                         ? sync_->handle(msg, start)
                         : protocol_->handle(msg, start);
  pp_free_[msg.dst] = start + cost;
  LRCSIM_HOOK(*this, after_handle(msg));
}

namespace {
// Shard index the current host thread is driving (0 when serial). Used by
// the NIC post_remote hook to tell local from cross-shard destinations.
thread_local unsigned t_shard = 0;
}  // namespace

void Machine::setup_shards() {
  if (trace_.enabled()) {
    throw std::logic_error("sharded run: message trace is serial-only");
  }
  if (checker_) {
    throw std::logic_error("sharded run: runtime checker is serial-only");
  }
  if (access_log_) {
    throw std::logic_error("sharded run: trace capture is serial-only");
  }
  nshards_ = std::min(params_.shards, params_.nprocs);
  shard_of_ = topo_.partition(nshards_);
  const unsigned hops = topo_.min_cross_shard_hops(shard_of_);
  // Lookahead: no cross-shard interaction can land sooner than the cheapest
  // cross-shard hop. A single shard has no cross pair (hops == 0) — any
  // window width is sound, so use one wide enough to never split a run.
  lookahead_ = hops == 0
                   ? (Cycle{1} << 40)
                   : hops * (params_.switch_latency + params_.wire_latency);
  shard_engines_.clear();
  for (unsigned s = 0; s < nshards_; ++s) {
    auto e = std::make_unique<sim::Engine>();
    e->set_keyed(true);
    shard_engines_.push_back(std::move(e));
  }
  for (auto& m : mail_) {
    m.assign(nshards_, std::vector<std::vector<PostedMsg>>(nshards_));
  }
  shard_parity_.assign(nshards_, ShardParity{});

  // Threaded-run hardening: page homes become read-only, the functional
  // store switches to byte atomics, the classifier takes a lock.
  amap_.freeze(store_.used());
  store_.set_concurrent(nshards_ > 1);
  classifier_.set_concurrent(nshards_ > 1);

  // Partition the directory by the shard of each line's home node.
  if (auto* base = dynamic_cast<proto::ProtocolBase*>(protocol_.get())) {
    base->directory().set_sharding(
        nshards_,
        +[](void* ctx, LineId line) -> unsigned {
          Machine* m = static_cast<Machine*>(ctx);
          return m->shard_of_[m->amap_.home_of_line(line)];
        },
        this);
  }

  mesh::Nic::ShardHooks hooks;
  hooks.engine_for = +[](void* ctx, NodeId n) -> sim::Engine* {
    return &static_cast<Machine*>(ctx)->engine_for(n);
  };
  hooks.key_for = +[](void* ctx, NodeId actor, NodeId origin) -> std::uint64_t {
    return static_cast<Machine*>(ctx)->next_key(actor, origin);
  };
  hooks.post_remote = +[](void* ctx, const mesh::Message& msg, Cycle arrive,
                          std::uint64_t key) -> bool {
    Machine* m = static_cast<Machine*>(ctx);
    const unsigned to = m->shard_of_[msg.dst];
    if (to == t_shard) return false;  // destination-local: schedule directly
    m->mail_[m->shard_parity_[t_shard].v][t_shard][to].push_back(
        PostedMsg{msg, arrive, key});
    return true;
  };
  hooks.ctx = this;
  nic_.set_shard_hooks(hooks);
}

Cycle Machine::shard_outbox_min(unsigned s) const {
  // Earliest arrival among the messages shard s posted this window; the
  // window-base reduction needs it because those messages are not in any
  // engine queue yet (ShardSync::OutboxMinFn).
  Cycle m = kNever;
  const auto& rows = mail_[shard_parity_[s].v][s];
  for (unsigned to = 0; to < nshards_; ++to) {
    for (const PostedMsg& p : rows[to]) m = std::min(m, p.arrive);
  }
  return m;
}

void Machine::drain_shard(unsigned s) {
  // Posting order across source shards does not matter: the keyed calendar
  // queue totally orders arrivals by (when, key) regardless of insertion
  // order. Ascending source order is kept for predictability.
  const unsigned par = shard_parity_[s].v;
  for (unsigned from = 0; from < nshards_; ++from) {
    std::vector<PostedMsg>& box = mail_[par][from][s];
    for (const PostedMsg& p : box) nic_.post_arrival(p.msg, p.arrive, p.key);
    box.clear();
  }
  // Next window's posts go to the other buffer, leaving this one free for
  // peers that have not finished draining it.
  shard_parity_[s].v = par ^ 1;
}

void Machine::run_shards() {
  std::vector<sim::Engine*> engines;
  engines.reserve(nshards_);
  for (auto& e : shard_engines_) engines.push_back(e.get());
  sim::ShardSync sync(std::move(engines), lookahead_);
  const auto outbox_min = +[](void* ctx, unsigned s) -> Cycle {
    return static_cast<Machine*>(ctx)->shard_outbox_min(s);
  };
  const auto drain = +[](void* ctx, unsigned s) {
    static_cast<Machine*>(ctx)->drain_shard(s);
  };
  std::vector<std::thread> workers;
  workers.reserve(nshards_ - 1);
  for (unsigned s = 1; s < nshards_; ++s) {
    workers.emplace_back([this, &sync, outbox_min, drain, s] {
      t_shard = s;
      sync.run_shard(s, outbox_min, drain, this);
    });
  }
  t_shard = 0;
  sync.run_shard(0, outbox_min, drain, this);
  for (std::thread& w : workers) w.join();
}

void Machine::run(std::function<void(Cpu&)> body) {
  if (ran_) throw std::logic_error("Machine::run may be called only once");
  ran_ = true;
  if (!cpus_.empty() && cpus_[0]->is_replay()) {
    // A replayed stream carries no values and no workload body, so the
    // value-oracle checker and a second capture have nothing to observe.
    if (checker_) {
      throw std::logic_error("trace replay: runtime checker needs the "
                             "fiber front end");
    }
    if (access_log_) {
      throw std::logic_error("trace replay: capturing a replayed run is "
                             "unsupported");
    }
  }
  if (params_.shards > 0) {
    setup_shards();  // before start(): fiber kick-offs schedule keyed events
    for (auto& c : cpus_) c->start(body);
    run_shards();
  } else {
    for (auto& c : cpus_) c->start(body);
    engine_.run();
  }
  std::string stuck;
  for (auto& c : cpus_) {
    if (!c->finished()) {
      stuck += "\n  cpu " + std::to_string(c->id()) +
               " blocked=" + (c->blocked() ? "y" : "n") +
               " now=" + std::to_string(c->now()) +
               " wb=" + std::to_string(c->wb().occupied()) +
               " ot=" + std::to_string(c->ot().size()) +
               " cb=" + std::to_string(c->cb().size()) +
               " wt=" + std::to_string(c->wt_outstanding);
      c->ot().for_each([&stuck](const cache::OtEntry& e) {
        stuck += " [line=" + std::to_string(e.line) +
                 " data=" + std::to_string(e.data_pending) +
                 " acks=" + std::to_string(e.acks_pending) + "]";
      });
    }
  }
  if (!stuck.empty()) {
    throw std::runtime_error("deadlock: no pending events but" + stuck);
  }
#ifdef LRCSIM_CHECK
  // Engine stopped; this is normal (non-fiber) context, so strict mode may
  // safely throw collected violations here.
  if (checker_) {
    checker_->final_check();
    checker_->throw_if_violations();
  }
#endif
}

Report Machine::report() const {
  Report r;
  r.protocol = std::string(to_string(kind_));
  r.nprocs = params_.nprocs;
  r.nic = nic_.stats();
  r.dram = dram_.stats();
  r.miss_classes = classifier_.aggregate();
  r.lock_acquires = lock_acquires();
  r.barrier_episodes = barrier_episodes();
  r.sync = sync_->stats();
  if (nshards_ == 0) {
    r.sched_past_violations = engine_.past_violations();
    r.events_executed = engine_.events_executed();
  } else {
    for (const auto& e : shard_engines_) {
      r.shard_past_violations.push_back(e->past_violations());
      r.sched_past_violations += e->past_violations();
      r.events_executed += e->events_executed();
    }
  }
  for (const auto& c : cpus_) {
    r.execution_time = std::max(r.execution_time, c->now());
    r.per_cpu.push_back(c->breakdown());
    r.breakdown += c->breakdown();
    for (std::size_t k = 0; k < stats::kStallKinds; ++k) {
      r.stall_hist[k] += c->stall_hist(static_cast<stats::StallKind>(k));
    }
    const auto& cs = c->dcache().stats();
    r.cache.read_hits += cs.read_hits;
    r.cache.read_misses += cs.read_misses;
    r.cache.write_hits += cs.write_hits;
    r.cache.write_misses += cs.write_misses;
    r.cache.upgrade_misses += cs.upgrade_misses;
    r.cache.evictions += cs.evictions;
    r.cache.invalidations += cs.invalidations;
  }
  // Per-level movement accounting (kept out of the golden digest: the
  // protocol-visible aggregate above is the pinned contract).
  const unsigned levels = cpus_.empty() ? 0 : cpus_[0]->dcache().levels();
  r.cache_levels.assign(levels, {});
  for (const auto& c : cpus_) {
    for (unsigned l = 0; l < levels; ++l) {
      const auto& ls = c->dcache().level_stats(l);
      auto& rl = r.cache_levels[l];
      rl.hits += ls.hits;
      rl.fills += ls.fills;
      rl.evictions += ls.evictions;
      rl.invalidations += ls.invalidations;
      rl.promotions += ls.promotions;
      rl.demotions += ls.demotions;
      rl.back_invals += ls.back_invals;
    }
  }
  if (llc_) {
    r.has_llc = true;
    r.llc = llc_->stats();
  }
  return r;
}

}  // namespace lrc::core
