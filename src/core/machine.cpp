#include "core/machine.hpp"

#include <stdexcept>

#include "check/checker.hpp"
#include "proto/sync_manager.hpp"

namespace lrc::core {

namespace {
// Validation must precede every member construction (a bad geometry would
// otherwise trip asserts deep inside Cache); run it inside the first
// initializer.
const SystemParams& validated(const SystemParams& p) {
  p.validate();
  return p;
}
}  // namespace

Machine::Machine(const SystemParams& params, ProtocolKind protocol)
    : params_(validated(params)),
      kind_(protocol),
      topo_(params.nprocs),
      nic_(engine_, topo_,
           mesh::NicParams{params.switch_latency, params.wire_latency,
                           params.net_bandwidth, /*header_bytes=*/8}),
      amap_(params.nprocs, params.line_bytes, params.page_bytes,
            params.home_policy),
      dram_(params.nprocs,
            mem::DramParams{params.mem_setup, params.mem_bandwidth}),
      classifier_(params.nprocs, params.line_bytes / mem::AddressMap::kWordBytes),
      pp_free_(params.nprocs, 0) {
  if (params_.cache.has_llc()) {
    llc_ = std::make_unique<mem::SharedLlc>(params_.cache, params_.nprocs,
                                            params_.line_bytes, params_.seed);
  }
  sync_ = std::make_unique<proto::SyncManager>(*this);
  protocol_ = proto::make_protocol(protocol, *this);
  nic_.set_deliver(
      [](void* ctx, const mesh::Message& msg, Cycle t) {
        static_cast<Machine*>(ctx)->dispatch(msg, t);
      },
      this);
  cpus_.reserve(params.nprocs);
  for (NodeId p = 0; p < params.nprocs; ++p) {
    cpus_.push_back(std::make_unique<Cpu>(*this, p));
  }
  // Lines displaced out of a private stack exit through the protocol,
  // which owes the same transactions a coherence invalidation produces.
  for (auto& c : cpus_) {
    c->dcache().set_victim_sink(
        [](void* ctx, NodeId p, const cache::CacheLine& victim, Cycle at) {
          static_cast<proto::Protocol*>(ctx)->evict_victim(p, victim, at);
        },
        protocol_.get());
  }
}

Machine::~Machine() = default;

check::Checker* Machine::enable_checker(bool strict) {
#ifdef LRCSIM_CHECK
  if (!checker_) {
    checker_ = std::make_unique<check::Checker>(*this, strict);
  }
#else
  (void)strict;  // compiled out: hooks are no-ops, a checker would see nothing
#endif
  return checker_.get();
}

Addr Machine::alloc_bytes(std::size_t bytes, std::string name) {
  return store_.allocate(bytes, params_.line_bytes, std::move(name));
}

namespace {

// Pooled typed events for the machine's deferred work. Defined here so
// Engine::schedule_make sees complete types.
class RedeliverEvent final : public sim::Event {
 public:
  RedeliverEvent(Machine& m, const mesh::Message& msg) : m_(m), msg_(msg) {
    set_mc_actor(msg.dst, /*resumes_fiber=*/false);
    set_mc_src(msg.src);
  }
  void fire(Cycle t) override { m_.dispatch_deferred(msg_, t); }

 private:
  Machine& m_;
  mesh::Message msg_;
};

class PokeEvent final : public sim::Event {
 public:
  PokeEvent(Machine& m, NodeId p) : m_(m), p_(p) {
    set_mc_actor(p, /*resumes_fiber=*/false);
  }
  void fire(Cycle t) override { m_.cpu(p_).poke(t); }

 private:
  Machine& m_;
  NodeId p_;
};

static_assert(sizeof(RedeliverEvent) <= sim::Engine::kMaxPooledBytes);

}  // namespace

void Machine::redeliver(const mesh::Message& msg, Cycle t) {
  engine_.schedule_make<RedeliverEvent>(t, *this, msg);
}

void Machine::schedule_poke(NodeId p, Cycle t) {
  engine_.schedule_make<PokeEvent>(t, *this, p);
}

void Machine::dispatch_deferred(const mesh::Message& msg, Cycle t) {
  dispatch(msg, t);
}

Cycle Machine::pp_claim(NodeId n, Cycle at, Cycle cost) {
  const Cycle start = std::max(at, pp_free_[n]);
  pp_free_[n] = start + cost;
  return start;
}

void Machine::dispatch(const mesh::Message& msg, Cycle t) {
  trace_.record(msg, t);
  const Cycle start = std::max(t, pp_free_[msg.dst]);
  const Cycle cost = proto::SyncManager::owns(msg.kind)
                         ? sync_->handle(msg, start)
                         : protocol_->handle(msg, start);
  pp_free_[msg.dst] = start + cost;
  LRCSIM_HOOK(*this, after_handle(msg));
}

void Machine::run(std::function<void(Cpu&)> body) {
  if (ran_) throw std::logic_error("Machine::run may be called only once");
  ran_ = true;
  for (auto& c : cpus_) c->start(body);
  engine_.run();
  std::string stuck;
  for (auto& c : cpus_) {
    if (!c->finished()) {
      stuck += "\n  cpu " + std::to_string(c->id()) +
               " blocked=" + (c->blocked() ? "y" : "n") +
               " now=" + std::to_string(c->now()) +
               " wb=" + std::to_string(c->wb().occupied()) +
               " ot=" + std::to_string(c->ot().size()) +
               " cb=" + std::to_string(c->cb().size()) +
               " wt=" + std::to_string(c->wt_outstanding);
      c->ot().for_each([&stuck](const cache::OtEntry& e) {
        stuck += " [line=" + std::to_string(e.line) +
                 " data=" + std::to_string(e.data_pending) +
                 " acks=" + std::to_string(e.acks_pending) + "]";
      });
    }
  }
  if (!stuck.empty()) {
    throw std::runtime_error("deadlock: no pending events but" + stuck);
  }
#ifdef LRCSIM_CHECK
  // Engine stopped; this is normal (non-fiber) context, so strict mode may
  // safely throw collected violations here.
  if (checker_) {
    checker_->final_check();
    checker_->throw_if_violations();
  }
#endif
}

Report Machine::report() const {
  Report r;
  r.protocol = std::string(to_string(kind_));
  r.nprocs = params_.nprocs;
  r.nic = nic_.stats();
  r.dram = dram_.stats();
  r.miss_classes = classifier_.aggregate();
  r.lock_acquires = lock_acquires;
  r.barrier_episodes = barrier_episodes;
  r.sync = sync_->stats();
  r.sched_past_violations = engine_.past_violations();
  r.events_executed = engine_.events_executed();
  for (const auto& c : cpus_) {
    r.execution_time = std::max(r.execution_time, c->now());
    r.per_cpu.push_back(c->breakdown());
    r.breakdown += c->breakdown();
    for (std::size_t k = 0; k < stats::kStallKinds; ++k) {
      r.stall_hist[k] += c->stall_hist(static_cast<stats::StallKind>(k));
    }
    const auto& cs = c->dcache().stats();
    r.cache.read_hits += cs.read_hits;
    r.cache.read_misses += cs.read_misses;
    r.cache.write_hits += cs.write_hits;
    r.cache.write_misses += cs.write_misses;
    r.cache.upgrade_misses += cs.upgrade_misses;
    r.cache.evictions += cs.evictions;
    r.cache.invalidations += cs.invalidations;
  }
  // Per-level movement accounting (kept out of the golden digest: the
  // protocol-visible aggregate above is the pinned contract).
  const unsigned levels = cpus_.empty() ? 0 : cpus_[0]->dcache().levels();
  r.cache_levels.assign(levels, {});
  for (const auto& c : cpus_) {
    for (unsigned l = 0; l < levels; ++l) {
      const auto& ls = c->dcache().level_stats(l);
      auto& rl = r.cache_levels[l];
      rl.hits += ls.hits;
      rl.fills += ls.fills;
      rl.evictions += ls.evictions;
      rl.invalidations += ls.invalidations;
      rl.promotions += ls.promotions;
      rl.demotions += ls.demotions;
      rl.back_invals += ls.back_invals;
    }
  }
  if (llc_) {
    r.has_llc = true;
    r.llc = llc_->stats();
  }
  return r;
}

}  // namespace lrc::core
