// Shared, address-sliced last-level cache in front of DRAM.
//
// The LLC sits at the memory side of the protocols' dram_line() choke
// point: a full-line read that hits a slice returns in llc_hit_cycles
// (plus a hop penalty when the slice is on another node) and never
// touches DRAM; a miss pays the DRAM access and, under the kOnRead
// policy, installs the line. Writes — full-line writebacks and partial
// write-throughs — always reach DRAM, so every LLC copy is clean and
// memory is always current; that keeps the LLC a pure timing accelerator
// with no coherence obligations of its own (the simulator's functional
// data lives in the BackingStore regardless). Writebacks keep a resident
// copy valid (write-update) and, under kOnWriteback, allocate — a victim
// cache in front of memory.
//
// Modeling simplification (documented in DESIGN.md §9): remote-slice
// access is a flat per-access penalty rather than routed NIC traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "cache/config.hpp"
#include "mem/dram.hpp"
#include "sim/types.hpp"

namespace lrc::mem {

struct LlcStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t read_fills = 0;       // kOnRead installs
  std::uint64_t writeback_fills = 0;  // kOnWriteback installs
  std::uint64_t evictions = 0;        // clean drops (silent)
  std::uint64_t remote_accesses = 0;  // slice != accessing node
};

class SharedLlc {
 public:
  SharedLlc(const cache::CacheConfig& cfg, unsigned nodes,
            std::uint32_t line_bytes, std::uint64_t seed);

  NodeId slice_of(LineId line) const;

  /// Full-line access from `node` (protocol read or writeback).
  Cycle access_line(NodeId node, LineId line, Cycle at, bool write,
                    Dram& dram);

  /// Partial write-through: always DRAM; resident copies stay valid
  /// (write-update).
  Cycle write_through(NodeId node, LineId line, Cycle at,
                      std::uint32_t bytes, Dram& dram);

  const LlcStats& stats() const { return stats_; }
  unsigned nslices() const { return static_cast<unsigned>(slices_.size()); }

 private:
  Cycle slice_start(NodeId node, LineId line, Cycle at);
  void install(LineId line);

  std::vector<cache::Cache> slices_;
  cache::SliceHash hash_;
  cache::LlcAlloc alloc_;
  Cycle hit_cycles_;
  Cycle remote_penalty_;
  std::uint32_t line_bytes_;
  LlcStats stats_;
};

}  // namespace lrc::mem
