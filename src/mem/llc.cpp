#include "mem/llc.hpp"

namespace lrc::mem {

SharedLlc::SharedLlc(const cache::CacheConfig& cfg, unsigned nodes,
                     std::uint32_t line_bytes, std::uint64_t seed)
    : hash_(cfg.llc_hash),
      alloc_(cfg.llc_alloc),
      hit_cycles_(cfg.llc_hit_cycles),
      remote_penalty_(cfg.llc_remote_penalty),
      line_bytes_(line_bytes) {
  const auto geo =
      cache::CacheGeometry::make(cfg.llc_slice_bytes, line_bytes,
                                 cfg.llc_ways);
  slices_.reserve(nodes);
  for (unsigned s = 0; s < nodes; ++s) {
    slices_.emplace_back(geo, cfg.llc_replacement,
                         seed ^ (0xd1342543de82ef95ULL * (s + 1)));
  }
}

NodeId SharedLlc::slice_of(LineId line) const {
  std::uint64_t key = line;
  if (hash_ == cache::SliceHash::kXorFold) {
    key ^= key >> 17;
    key ^= key >> 7;
  }
  return static_cast<NodeId>(key % slices_.size());
}

Cycle SharedLlc::slice_start(NodeId node, LineId line, Cycle at) {
  if (slice_of(line) != node) {
    ++stats_.remote_accesses;
    return at + remote_penalty_;
  }
  return at;
}

void SharedLlc::install(LineId line) {
  auto& slice = slices_[slice_of(line)];
  // LLC copies are always clean (DRAM is current), so victims drop
  // silently.
  if (slice.fill(line, cache::LineState::kReadOnly)) ++stats_.evictions;
}

Cycle SharedLlc::access_line(NodeId node, LineId line, Cycle at, bool write,
                             Dram& dram) {
  const Cycle start = slice_start(node, line, at);
  auto& slice = slices_[slice_of(line)];
  if (write) {
    // Writebacks always reach DRAM; a resident copy stays valid
    // (write-update — data is functionally in the BackingStore).
    const Cycle done = dram.access(node, start, line_bytes_, true);
    if (slice.find_touch(line) == nullptr &&
        alloc_ == cache::LlcAlloc::kOnWriteback) {
      install(line);
      ++stats_.writeback_fills;
    }
    return done;
  }
  if (slice.find_touch(line) != nullptr) {
    ++stats_.hits;
    return start + hit_cycles_;
  }
  ++stats_.misses;
  const Cycle done = dram.access(node, start, line_bytes_, false);
  if (alloc_ == cache::LlcAlloc::kOnRead) {
    install(line);
    ++stats_.read_fills;
  }
  return done;
}

Cycle SharedLlc::write_through(NodeId node, LineId line, Cycle at,
                               std::uint32_t bytes, Dram& dram) {
  // Partial writes update memory directly; the slice copy (if any)
  // remains valid under write-update. No allocation.
  (void)line;
  return dram.access(node, at, bytes, true);
}

}  // namespace lrc::mem
