#include "mem/backing_store.hpp"

namespace lrc::mem {

BackingStore::BackingStore(std::size_t capacity_bytes)
    : data_(capacity_bytes, 0) {}

Addr BackingStore::allocate(std::size_t bytes, std::size_t align,
                            std::string name) {
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("BackingStore: alignment must be power of 2");
  }
  const std::size_t base = (next_ + align - 1) & ~(align - 1);
  const std::size_t end = base + bytes;
  if (end > data_.size()) {
    // Grow geometrically; the simulated address space is modest (tens of MB).
    std::size_t cap = data_.size() ? data_.size() : std::size_t{1} << 20;
    while (cap < end) cap *= 2;
    data_.resize(cap, 0);
  }
  next_ = end;
  segments_.push_back(Segment{std::move(name), base, bytes});
  return base;
}

}  // namespace lrc::mem
