#include "mem/address_map.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace lrc::mem {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

AddressMap::AddressMap(unsigned nodes, std::uint32_t line_bytes,
                       std::uint32_t page_bytes, HomePolicy policy)
    : nodes_(nodes),
      line_bytes_(line_bytes),
      page_bytes_(page_bytes),
      policy_(policy) {
  if (nodes == 0) throw std::invalid_argument("AddressMap: zero nodes");
  if (!is_pow2(line_bytes) || !is_pow2(page_bytes) || page_bytes < line_bytes) {
    throw std::invalid_argument(
        "AddressMap: line/page sizes must be powers of two, page >= line");
  }
  if (line_bytes < kWordBytes) {
    throw std::invalid_argument("AddressMap: line shorter than a word");
  }
  if (line_bytes / kWordBytes > 64) {
    throw std::invalid_argument("AddressMap: line too long for 64-bit masks");
  }
  line_shift_ = static_cast<unsigned>(std::countr_zero(line_bytes));
  page_shift_ = static_cast<unsigned>(std::countr_zero(page_bytes));
  line_mask_ = static_cast<Addr>(line_bytes) - 1;
}

WordMask AddressMap::word_mask(Addr a, std::uint32_t bytes) const {
  const unsigned first = word_in_line(a);
  const unsigned last = word_in_line(a + bytes - 1);
  assert(line_of(a) == line_of(a + bytes - 1) &&
         "access must not straddle a cache line");
  const unsigned count = last - first + 1;
  const WordMask span =
      count >= 64 ? ~WordMask{0} : (WordMask{1} << count) - 1;
  return span << first;
}

void AddressMap::freeze(std::uint64_t limit_bytes) {
  assert(policy_ == HomePolicy::kRoundRobin &&
         "freeze() needs address-determined homes");
  const std::uint64_t pages = (limit_bytes >> page_shift_) + 1;
  if (pages > page_home_.size()) page_home_.resize(pages, kInvalidNode);
  for (std::uint64_t p = 0; p < page_home_.size(); ++p) {
    if (page_home_[p] == kInvalidNode) {
      page_home_[p] = static_cast<NodeId>(p % nodes_);
    }
  }
  frozen_ = true;
}

NodeId AddressMap::resolve_home(std::uint64_t page, NodeId toucher) {
  if (page >= page_home_.size()) {
    page_home_.resize(page + 1, kInvalidNode);
  }
  NodeId& home = page_home_[page];
  if (home == kInvalidNode) {
    home = (policy_ == HomePolicy::kFirstTouch && toucher != kInvalidNode)
               ? toucher
               : static_cast<NodeId>(page % nodes_);
  }
  return home;
}

}  // namespace lrc::mem
