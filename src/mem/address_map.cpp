#include "mem/address_map.hpp"

#include <cassert>
#include <stdexcept>

namespace lrc::mem {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

AddressMap::AddressMap(unsigned nodes, std::uint32_t line_bytes,
                       std::uint32_t page_bytes, HomePolicy policy)
    : nodes_(nodes),
      line_bytes_(line_bytes),
      page_bytes_(page_bytes),
      policy_(policy) {
  if (nodes == 0) throw std::invalid_argument("AddressMap: zero nodes");
  if (!is_pow2(line_bytes) || !is_pow2(page_bytes) || page_bytes < line_bytes) {
    throw std::invalid_argument(
        "AddressMap: line/page sizes must be powers of two, page >= line");
  }
  if (line_bytes / kWordBytes > 64) {
    throw std::invalid_argument("AddressMap: line too long for 64-bit masks");
  }
}

WordMask AddressMap::word_mask(Addr a, std::uint32_t bytes) const {
  const unsigned first = word_in_line(a);
  const unsigned last = word_in_line(a + bytes - 1);
  assert(line_of(a) == line_of(a + bytes - 1) &&
         "access must not straddle a cache line");
  WordMask m = 0;
  for (unsigned w = first; w <= last; ++w) m |= WordMask{1} << w;
  return m;
}

NodeId AddressMap::home_of(Addr a, NodeId toucher) {
  const std::uint64_t page = page_of(a);
  if (policy_ == HomePolicy::kRoundRobin) {
    return static_cast<NodeId>(page % nodes_);
  }
  if (page >= first_touch_.size()) {
    first_touch_.resize(page + 1, kInvalidNode);
  }
  if (first_touch_[page] == kInvalidNode) {
    first_touch_[page] =
        (toucher == kInvalidNode) ? static_cast<NodeId>(page % nodes_) : toucher;
  }
  return first_touch_[page];
}

}  // namespace lrc::mem
