#include "mem/dram.hpp"

#include <algorithm>
#include <cassert>

namespace lrc::mem {

Cycle Dram::access(NodeId node, Cycle when, std::uint32_t bytes,
                   bool is_write) {
  assert(node < chans_.size());
  Channel& ch = chans_[node];
  const Cycle start = std::max(when, ch.free);
  // Nearly every access is a full cache line, so the size→cost division is
  // memoized on the last size seen (timing identical, just cheaper).
  if (bytes != ch.cached_bytes) {
    ch.cached_bytes = bytes;
    ch.cached_cost = uncontended_cost(bytes);
  }
  const Cycle cost = ch.cached_cost;
  ch.free = start + cost;

  ch.stats.contention += start - when;
  ch.stats.busy += cost;
  ch.stats.bytes += bytes;
  ch.stats.writes += is_write;
  ch.stats.reads += !is_write;
  return start + cost;
}

DramStats Dram::stats() const {
  DramStats total;
  for (const Channel& c : chans_) {
    total.reads += c.stats.reads;
    total.writes += c.stats.writes;
    total.bytes += c.stats.bytes;
    total.contention += c.stats.contention;
    total.busy += c.stats.busy;
  }
  return total;
}

}  // namespace lrc::mem
