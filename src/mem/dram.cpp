#include "mem/dram.hpp"

#include <algorithm>
#include <cassert>

namespace lrc::mem {

Cycle Dram::access(NodeId node, Cycle when, std::uint32_t bytes,
                   bool is_write) {
  assert(node < free_.size());
  const Cycle start = std::max(when, free_[node]);
  // Nearly every access is a full cache line, so the size→cost division is
  // memoized on the last size seen (timing identical, just cheaper).
  if (bytes != cached_bytes_) {
    cached_bytes_ = bytes;
    cached_cost_ = uncontended_cost(bytes);
  }
  const Cycle cost = cached_cost_;
  free_[node] = start + cost;

  stats_.contention += start - when;
  stats_.busy += cost;
  stats_.bytes += bytes;
  stats_.writes += is_write;
  stats_.reads += !is_write;
  return start + cost;
}

}  // namespace lrc::mem
