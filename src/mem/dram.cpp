#include "mem/dram.hpp"

#include <algorithm>
#include <cassert>

namespace lrc::mem {

Cycle Dram::access(NodeId node, Cycle when, std::uint32_t bytes,
                   bool is_write) {
  assert(node < free_.size());
  const Cycle start = std::max(when, free_[node]);
  const Cycle cost = uncontended_cost(bytes);
  free_[node] = start + cost;

  stats_.contention += start - when;
  stats_.busy += cost;
  stats_.bytes += bytes;
  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  return start + cost;
}

}  // namespace lrc::mem
