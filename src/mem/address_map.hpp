// Maps simulated shared addresses to cache lines, pages, and home nodes.
// Pages are distributed round-robin across nodes by default; a first-touch
// policy can be selected per machine.
//
// This sits on the per-access hot path (every protocol hook starts with
// line_of/word_in_line, every request needs home_of), so the geometry is
// restricted to powers of two — validated in the constructor — and all
// line/page/word math is precomputed shifts and masks; no runtime divide or
// modulo survives. Page homes are resolved once and cached in a flat
// page->home array shared by both policies (round-robin fills it with
// page % N on demand; first-touch records the first accessor).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lrc::mem {

enum class HomePolicy : std::uint8_t {
  kRoundRobin,  // page p lives at node p % N
  kFirstTouch,  // page homed at the node of its first accessor
};

class AddressMap {
 public:
  AddressMap(unsigned nodes, std::uint32_t line_bytes, std::uint32_t page_bytes,
             HomePolicy policy = HomePolicy::kRoundRobin);

  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t page_bytes() const { return page_bytes_; }
  std::uint32_t words_per_line() const { return line_bytes_ >> kWordShift; }

  LineId line_of(Addr a) const { return a >> line_shift_; }
  Addr line_base(LineId l) const { return l << line_shift_; }
  std::uint64_t page_of(Addr a) const { return a >> page_shift_; }

  /// Word index within the line (word = 4 bytes, matching the paper's
  /// per-word dirty bits discussion).
  unsigned word_in_line(Addr a) const {
    return static_cast<unsigned>((a & line_mask_) >> kWordShift);
  }
  WordMask word_mask(Addr a, std::uint32_t bytes) const;

  /// Home node for the page containing `a`. For first-touch, `toucher` is
  /// recorded on the first call mentioning the page. After freeze() the map
  /// is read-only (pages past the frozen range fall back to the pure
  /// round-robin formula), so concurrent calls are safe.
  NodeId home_of(Addr a, NodeId toucher = kInvalidNode) {
    const std::uint64_t page = a >> page_shift_;
    if (page < page_home_.size() && page_home_[page] != kInvalidNode) {
      return page_home_[page];
    }
    if (frozen_) return static_cast<NodeId>(page % nodes_);
    return resolve_home(page, toucher);
  }
  NodeId home_of_line(LineId l, NodeId toucher = kInvalidNode) {
    return home_of(line_base(l), toucher);
  }

  /// Pre-resolves round-robin homes for every page up to `limit_bytes`, so
  /// a sharded run never grows page_home_ from concurrent home_of calls.
  /// Only valid for kRoundRobin (first-touch homes depend on access order).
  void freeze(std::uint64_t limit_bytes);

  static constexpr std::uint32_t kWordBytes = 4;

 private:
  NodeId resolve_home(std::uint64_t page, NodeId toucher);

  static constexpr unsigned kWordShift = 2;  // log2(kWordBytes)

  unsigned nodes_;
  std::uint32_t line_bytes_;
  std::uint32_t page_bytes_;
  unsigned line_shift_;
  unsigned page_shift_;
  Addr line_mask_;  // line_bytes - 1
  HomePolicy policy_;
  bool frozen_ = false;            // see freeze()
  std::vector<NodeId> page_home_;  // indexed by page number (grown lazily)
};

}  // namespace lrc::mem
