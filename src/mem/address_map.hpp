// Maps simulated shared addresses to cache lines, pages, and home nodes.
// Pages are distributed round-robin across nodes by default; a first-touch
// policy can be selected per machine.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lrc::mem {

enum class HomePolicy : std::uint8_t {
  kRoundRobin,  // page p lives at node p % N
  kFirstTouch,  // page homed at the node of its first accessor
};

class AddressMap {
 public:
  AddressMap(unsigned nodes, std::uint32_t line_bytes, std::uint32_t page_bytes,
             HomePolicy policy = HomePolicy::kRoundRobin);

  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t page_bytes() const { return page_bytes_; }
  std::uint32_t words_per_line() const { return line_bytes_ / kWordBytes; }

  LineId line_of(Addr a) const { return a / line_bytes_; }
  Addr line_base(LineId l) const { return l * line_bytes_; }
  std::uint64_t page_of(Addr a) const { return a / page_bytes_; }

  /// Word index within the line (word = 4 bytes, matching the paper's
  /// per-word dirty bits discussion).
  unsigned word_in_line(Addr a) const {
    return static_cast<unsigned>((a % line_bytes_) / kWordBytes);
  }
  WordMask word_mask(Addr a, std::uint32_t bytes) const;

  /// Home node for the page containing `a`. For first-touch, `toucher` is
  /// recorded on the first call mentioning the page.
  NodeId home_of(Addr a, NodeId toucher = kInvalidNode);
  NodeId home_of_line(LineId l, NodeId toucher = kInvalidNode) {
    return home_of(line_base(l), toucher);
  }

  static constexpr std::uint32_t kWordBytes = 4;

 private:
  unsigned nodes_;
  std::uint32_t line_bytes_;
  std::uint32_t page_bytes_;
  HomePolicy policy_;
  std::vector<NodeId> first_touch_;  // indexed by page number (grown lazily)
};

}  // namespace lrc::mem
