// Per-node DRAM timing model: fixed setup cost plus size/bandwidth transfer,
// with a single busy channel per node (accesses serialize — this is the
// memory-contention component of the paper's back end).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace lrc::mem {

struct DramParams {
  Cycle setup = 20;             // "memory setup time"
  std::uint32_t bandwidth = 2;  // bytes per cycle
};

struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes = 0;
  Cycle contention = 0;  // cycles requests waited for the channel
  Cycle busy = 0;        // total channel-busy cycles
};

class Dram {
 public:
  Dram(unsigned nodes, DramParams params)
      : params_(params), chans_(nodes) {
    for (Channel& c : chans_) c.cached_cost = params.setup;
  }

  /// Performs an access of `bytes` at `node` starting no earlier than `when`;
  /// returns the completion time. `is_write` only affects statistics.
  Cycle access(NodeId node, Cycle when, std::uint32_t bytes, bool is_write);

  /// Completion time of an uncontended access (for cost previews/tests).
  Cycle uncontended_cost(std::uint32_t bytes) const {
    return params_.setup + ceil_div(bytes, params_.bandwidth);
  }

  /// Whole-machine totals (per-node counters summed in node order, so the
  /// result is bit-identical regardless of which threads did the accesses).
  DramStats stats() const;
  const DramStats& node_stats(NodeId n) const { return chans_[n].stats; }
  void reset_stats() {
    for (Channel& c : chans_) c.stats = DramStats{};
  }

 private:
  // All mutable per-access state lives in the accessed node's channel, so
  // sharded runs touch only shard-local cache lines here.
  struct alignas(64) Channel {
    Cycle free = 0;
    std::uint32_t cached_bytes = 0;  // memoized size→cost pair (hot path)
    Cycle cached_cost = 0;
    DramStats stats;
  };

  DramParams params_;
  std::vector<Channel> chans_;
};

}  // namespace lrc::mem
