// Functional backing store for the simulated shared address space.
// Timing is modeled elsewhere (caches, DRAM, protocols); this class holds
// the actual bytes so workloads compute real results, plus a simple bump
// allocator for shared segments.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace lrc::mem {

class BackingStore {
 public:
  explicit BackingStore(std::size_t capacity_bytes = 0);

  /// Allocates `bytes` aligned to `align` (power of two). Returns the base
  /// address of the new segment. Optionally records a segment name for
  /// debugging dumps.
  Addr allocate(std::size_t bytes, std::size_t align,
                std::string name = {});

  std::size_t used() const { return next_; }
  std::size_t capacity() const { return data_.size(); }

  template <typename T>
  T load(Addr a) const {
    check(a, sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + a, sizeof(T));
    return v;
  }

  template <typename T>
  void store(Addr a, const T& v) {
    check(a, sizeof(T));
    std::memcpy(data_.data() + a, &v, sizeof(T));
  }

  struct Segment {
    std::string name;
    Addr base;
    std::size_t bytes;
  };
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  void check(Addr a, std::size_t n) const {
    if (a + n > data_.size()) {
      throw std::out_of_range("BackingStore: access beyond allocated space");
    }
  }

  std::vector<std::uint8_t> data_;
  std::size_t next_ = 0;
  std::vector<Segment> segments_;
};

}  // namespace lrc::mem
