// Functional backing store for the simulated shared address space.
// Timing is modeled elsewhere (caches, DRAM, protocols); this class holds
// the actual bytes so workloads compute real results, plus a simple bump
// allocator for shared segments.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace lrc::mem {

class BackingStore {
 public:
  explicit BackingStore(std::size_t capacity_bytes = 0);

  /// Allocates `bytes` aligned to `align` (power of two). Returns the base
  /// address of the new segment. Optionally records a segment name for
  /// debugging dumps.
  Addr allocate(std::size_t bytes, std::size_t align,
                std::string name = {});

  std::size_t used() const { return next_; }
  std::size_t capacity() const { return data_.size(); }

  template <typename T>
  T load(Addr a) const {
    check(a, sizeof(T));
    T v;
    if (concurrent_) {
      atomic_copy(reinterpret_cast<std::uint8_t*>(&v), data_.data() + a,
                  sizeof(T));
    } else {
      std::memcpy(&v, data_.data() + a, sizeof(T));
    }
    return v;
  }

  template <typename T>
  void store(Addr a, const T& v) {
    check(a, sizeof(T));
    if (concurrent_) {
      atomic_copy(data_.data() + a, reinterpret_cast<const std::uint8_t*>(&v),
                  sizeof(T));
    } else {
      std::memcpy(data_.data() + a, &v, sizeof(T));
    }
  }

  /// Sharded runs (DESIGN.md §10) flip the store into concurrent mode:
  /// loads/stores become byte-wise relaxed atomics, so host threads racing
  /// on the same simulated word are defined behavior (no host UB). Programs
  /// that are data-race-free in the simulated machine see exact values via
  /// the physical happens-before of the shard clock protocol; simulated
  /// races read *some* byte combination, just as real hardware would.
  void set_concurrent(bool on) { concurrent_ = on; }

  struct Segment {
    std::string name;
    Addr base;
    std::size_t bytes;
  };
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  void check(Addr a, std::size_t n) const {
    if (a + n > data_.size()) {
      throw std::out_of_range("BackingStore: access beyond allocated space");
    }
  }

  static void atomic_copy(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      __atomic_store_n(dst + i, __atomic_load_n(src + i, __ATOMIC_RELAXED),
                       __ATOMIC_RELAXED);
    }
  }

  std::vector<std::uint8_t> data_;
  std::size_t next_ = 0;
  bool concurrent_ = false;  // see set_concurrent()
  std::vector<Segment> segments_;
};

}  // namespace lrc::mem
