// Locusroute: VLSI standard-cell router (paper: Primary2.grin, 3029 wires;
// ours: a synthetic wire set over a shared cost grid — the circuit file is
// not available offline, and the synthetic router preserves what matters:
// concurrent unsynchronized read-modify-write traffic on a shared dense
// cost array, giving the heavy false sharing (and benign data races) the
// paper reports for locusroute).
//
// Each wire evaluates a handful of two-bend candidate routes by summing the
// occupancy of the cells they cross, picks the cheapest, and increments the
// cells along it. Wires are handed out through a shared counter; grid
// updates are racy by design (the paper discusses exactly this).
#include <cmath>
#include <sstream>
#include <vector>

#include "apps/app.hpp"
#include "sim/rng.hpp"

namespace lrc::apps {

namespace {

constexpr SyncId kBarrier = 0;
constexpr SyncId kWorkLock = 1;

struct Wire {
  std::int32_t r0, c0, r1, c1;
};

}  // namespace

AppResult run_locusroute(core::Machine& m, const AppConfig& cfg) {
  const unsigned wires = cfg.n != 0 ? cfg.n : 2048;
  const unsigned rows = 48;
  const unsigned cols = 160;

  auto GRID = m.alloc<std::int32_t>(static_cast<std::size_t>(rows) * cols,
                                    "locus.grid");
  auto WX = m.alloc<std::int32_t>(4 * wires, "locus.wires");
  auto WORK = m.alloc<std::int32_t>(1, "locus.work");

  sim::Rng rng(cfg.seed);
  std::vector<Wire> ws(wires);
  std::uint64_t expected_len = 0;
  for (unsigned i = 0; i < wires; ++i) {
    Wire& wr = ws[i];
    wr.r0 = static_cast<std::int32_t>(rng.below(rows));
    wr.c0 = static_cast<std::int32_t>(rng.below(cols));
    // Mostly-local wires: bounded Manhattan span, like cell-to-cell nets.
    wr.r1 = static_cast<std::int32_t>(
        std::min<std::uint64_t>(rows - 1, wr.r0 + rng.below(8)));
    wr.c1 = static_cast<std::int32_t>(
        std::min<std::uint64_t>(cols - 1, wr.c0 + rng.below(32)));
    m.poke_mem(WX.addr(4 * i + 0), wr.r0);
    m.poke_mem(WX.addr(4 * i + 1), wr.c0);
    m.poke_mem(WX.addr(4 * i + 2), wr.r1);
    m.poke_mem(WX.addr(4 * i + 3), wr.c1);
    expected_len += static_cast<std::uint64_t>(
        std::abs(wr.r1 - wr.r0) + std::abs(wr.c1 - wr.c0) + 1);
  }
  for (unsigned i = 0; i < rows * cols; ++i) {
    m.poke_mem(GRID.addr(i), std::int32_t{0});
  }
  m.poke_mem(WORK.addr(0), std::int32_t{0});

  m.run([&](core::Cpu& cpu) {
    auto cell = [&](std::int32_t r, std::int32_t c) {
      return static_cast<std::size_t>(r) * cols + static_cast<std::size_t>(c);
    };
    // Walks a two-bend route: horizontal at `rbend`, vertical elsewhere.
    // visit(index) is called once per cell on the route.
    auto walk = [&](const Wire& wr, std::int32_t rbend, auto&& visit) {
      const std::int32_t rstep = wr.r1 >= wr.r0 ? 1 : -1;
      for (std::int32_t r = wr.r0; r != rbend; r += rstep) {
        visit(cell(r, wr.c0));
      }
      const std::int32_t cstep = wr.c1 >= wr.c0 ? 1 : -1;
      for (std::int32_t c = wr.c0; c != wr.c1; c += cstep) {
        visit(cell(rbend, c));
      }
      for (std::int32_t r = rbend; r != wr.r1; r += rstep) {
        visit(cell(r, wr.c1));
      }
      visit(cell(wr.r1, wr.c1));
    };

    constexpr std::int32_t kBatch = 16;  // wires claimed per queue visit
    while (true) {
      cpu.lock(kWorkLock);
      const std::int32_t first = WORK.get(cpu, 0);
      if (first >= static_cast<std::int32_t>(wires)) {
        cpu.unlock(kWorkLock);
        break;
      }
      const std::int32_t last = std::min(first + kBatch,
                                         static_cast<std::int32_t>(wires));
      WORK.put(cpu, 0, last);
      cpu.unlock(kWorkLock);

      for (std::int32_t i = first; i < last; ++i) {
      if (cfg.fence_every != 0 &&
          static_cast<unsigned>(i) % cfg.fence_every == 0) {
        cpu.fence();  // bound invalidation staleness (paper Sec. 4.2)
      }
      Wire wr;
      wr.r0 = WX.get(cpu, 4 * i + 0);
      wr.c0 = WX.get(cpu, 4 * i + 1);
      wr.r1 = WX.get(cpu, 4 * i + 2);
      wr.c1 = WX.get(cpu, 4 * i + 3);

      // Candidate bend rows: endpoints plus a midpoint.
      const std::int32_t cands[3] = {wr.r0, wr.r1,
                                     static_cast<std::int32_t>((wr.r0 + wr.r1) / 2)};
      std::int64_t best_cost = -1;
      std::int32_t best = wr.r0;
      for (std::int32_t rb : cands) {
        std::int64_t cost = 0;
        walk(wr, rb, [&](std::size_t idx) {
          cost += GRID.get(cpu, idx);
          cpu.compute(3);  // congestion cost function per cell
        });
        if (best_cost < 0 || cost < best_cost) {
          best_cost = cost;
          best = rb;
        }
      }
      // Claim the route: unsynchronized read-modify-writes (benign races).
      walk(wr, best, [&](std::size_t idx) {
        GRID.put(cpu, idx, GRID.get(cpu, idx) + 1);
        cpu.compute(1);
      });
      }
    }
    cpu.barrier(kBarrier);
  });

  AppResult res;
  if (cfg.validate) {
    // Races may lose increments but can never invent them; require most of
    // the expected occupancy to have landed.
    std::uint64_t total = 0;
    std::int32_t min_cell = 0;
    for (unsigned i = 0; i < rows * cols; ++i) {
      const auto v = m.peek<std::int32_t>(GRID.addr(i));
      total += static_cast<std::uint64_t>(std::max<std::int32_t>(v, 0));
      min_cell = std::min(min_cell, v);
    }
    res.valid = min_cell >= 0 && total <= expected_len &&
                total * 10 >= expected_len * 9;
    std::ostringstream os;
    os << "locusroute wires=" << wires << " occupancy=" << total << "/"
       << expected_len;
    res.detail = os.str();
  }
  return res;
}

}  // namespace lrc::apps
