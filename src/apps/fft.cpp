// Fft: one-dimensional complex FFT (paper: 65536 points; bench default
// scaled to 4096). Like SPLASH FFT, this is the six-step transpose
// algorithm on an sqrt(n) x sqrt(n) matrix:
//
//   transpose; FFT each row; twiddle; transpose; FFT each row; transpose.
//
// Rows are block-partitioned, so the row FFTs and twiddles are entirely
// local (in-place updates of just-read data produce the upgrade "write
// misses" the paper reports for fft), while the transposes are the
// barrier-separated all-to-all whose remote reads dominate the miss rate —
// eviction/cold-dominated with no false sharing (paper Figure 2), and the
// one pattern where delaying write notices to the barrier can pay off
// (paper §4.3).
#include <cmath>
#include <numbers>
#include <sstream>
#include <vector>

#include "apps/app.hpp"
#include "sim/rng.hpp"

namespace lrc::apps {

namespace {

constexpr SyncId kBarrier = 0;

/// In-place radix-2 FFT over one row held in host memory (used by the
/// reference replica).
void host_fft_row(double* re, double* im, unsigned m) {
  for (unsigned i = 1, j = 0; i < m; ++i) {
    unsigned bit = m >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  for (unsigned len = 2; len <= m; len <<= 1) {
    const double ang = -2.0 * std::numbers::pi / static_cast<double>(len);
    for (unsigned i = 0; i < m; i += len) {
      for (unsigned k = 0; k < len / 2; ++k) {
        const double wr = std::cos(ang * static_cast<double>(k));
        const double wi = std::sin(ang * static_cast<double>(k));
        const unsigned a = i + k;
        const unsigned b = i + k + len / 2;
        const double tr = re[b] * wr - im[b] * wi;
        const double ti = re[b] * wi + im[b] * wr;
        re[b] = re[a] - tr;
        im[b] = im[a] - ti;
        re[a] += tr;
        im[a] += ti;
      }
    }
  }
}

/// Host replica of the full six-step algorithm (identical operation order,
/// so the simulated result must match bit-for-bit).
void host_six_step(std::vector<double>& re, std::vector<double>& im,
                   unsigned m) {
  const std::size_t n = re.size();
  std::vector<double> tre(n), tim(n);
  auto transpose = [&](std::vector<double>& dst_re, std::vector<double>& dst_im,
                       const std::vector<double>& src_re,
                       const std::vector<double>& src_im) {
    for (unsigned r = 0; r < m; ++r) {
      for (unsigned c = 0; c < m; ++c) {
        dst_re[r * m + c] = src_re[c * m + r];
        dst_im[r * m + c] = src_im[c * m + r];
      }
    }
  };
  transpose(tre, tim, re, im);
  for (unsigned r = 0; r < m; ++r) host_fft_row(&tre[r * m], &tim[r * m], m);
  const double base = -2.0 * std::numbers::pi / static_cast<double>(n);
  for (unsigned r = 0; r < m; ++r) {
    for (unsigned c = 0; c < m; ++c) {
      const double ang = base * static_cast<double>(r) * c;
      const double wr = std::cos(ang);
      const double wi = std::sin(ang);
      const double x = tre[r * m + c];
      const double y = tim[r * m + c];
      tre[r * m + c] = x * wr - y * wi;
      tim[r * m + c] = x * wi + y * wr;
    }
  }
  transpose(re, im, tre, tim);
  for (unsigned r = 0; r < m; ++r) host_fft_row(&re[r * m], &im[r * m], m);
  transpose(tre, tim, re, im);
  re = tre;
  im = tim;
}

}  // namespace

AppResult run_fft(core::Machine& m_, const AppConfig& cfg) {
  unsigned n = cfg.n != 0 ? cfg.n : 4096;
  // Round up to an even power of two so n = m * m.
  unsigned lg = 0;
  while ((1u << lg) < n) ++lg;
  if (lg % 2 != 0) ++lg;
  n = 1u << lg;
  const unsigned m = 1u << (lg / 2);

  // Interleaved complex layout ([2i] = re, [2i+1] = im): keeps each
  // element's parts on one line and avoids pathological direct-mapped
  // aliasing between same-sized parallel arrays.
  core::SharedArray<double> A = m_.alloc<double>(2 * n, "fft.a");
  core::SharedArray<double> B = m_.alloc<double>(2 * n, "fft.b");

  sim::Rng rng(cfg.seed);
  std::vector<double> ref_re(n), ref_im(n);
  for (unsigned i = 0; i < n; ++i) {
    ref_re[i] = rng.uniform(-1.0, 1.0);
    ref_im[i] = rng.uniform(-1.0, 1.0);
  }
  for (unsigned i = 0; i < n; ++i) {
    m_.poke_mem(A.addr(2 * i), ref_re[i]);
    m_.poke_mem(A.addr(2 * i + 1), ref_im[i]);
  }

  m_.run([&](core::Cpu& cpu) {
    const unsigned p = cpu.id();
    const unsigned np = cpu.nprocs();
    const unsigned r_lo = m * p / np;
    const unsigned r_hi = m * (p + 1) / np;

    // Transpose src into dst, each processor producing its own dst rows
    // (local writes, remote reads — the all-to-all). Tiled so that each
    // fetched remote line is fully consumed before moving on, as any real
    // implementation would do (8 complex = one 128-byte line).
    constexpr unsigned kTile = 8;
    auto transpose = [&](core::SharedArray<double>& dst,
                         core::SharedArray<double>& src) {
      for (unsigned rt = r_lo; rt < r_hi; rt += kTile) {
        const unsigned rt_hi = std::min(r_hi, rt + kTile);
        for (unsigned ct = 0; ct < m; ct += kTile) {
          for (unsigned r = rt; r < rt_hi; ++r) {
            for (unsigned c = ct; c < std::min(m, ct + kTile); ++c) {
              dst.put(cpu, 2 * (r * m + c), src.get(cpu, 2 * (c * m + r)));
              dst.put(cpu, 2 * (r * m + c) + 1,
                      src.get(cpu, 2 * (c * m + r) + 1));
              cpu.compute(2);
            }
          }
        }
      }
      cpu.barrier(kBarrier);
    };

    // FFT of one (local) row: the row is streamed into private scratch,
    // transformed there (registers / local memory — charged as compute but
    // generating no shared-memory traffic), and streamed back. This is how
    // a real kernel behaves, and it means each shared line is read once and
    // written once per phase instead of once per butterfly stage.
    std::vector<double> scratch_re(m), scratch_im(m);
    auto fft_row = [&](core::SharedArray<double>& buf, unsigned row) {
      const unsigned base = row * m;
      for (unsigned i = 0; i < m; ++i) {
        scratch_re[i] = buf.get(cpu, 2 * (base + i));
        scratch_im[i] = buf.get(cpu, 2 * (base + i) + 1);
      }
      unsigned lgm = 0;
      while ((1u << lgm) < m) ++lgm;
      cpu.compute(2 * m + 8 * (m / 2) * lgm);  // bit-reversal + butterflies
      host_fft_row(scratch_re.data(), scratch_im.data(), m);
      for (unsigned i = 0; i < m; ++i) {
        buf.put(cpu, 2 * (base + i), scratch_re[i]);
        buf.put(cpu, 2 * (base + i) + 1, scratch_im[i]);
      }
    };

    // Step 1: B = A^T.
    transpose(B, A);
    // Step 2: row FFTs on B.
    for (unsigned r = r_lo; r < r_hi; ++r) fft_row(B, r);
    cpu.barrier(kBarrier);
    // Step 3: twiddle B[r][c] *= W_n^(r*c) (local).
    const double tw = -2.0 * std::numbers::pi / static_cast<double>(n);
    for (unsigned r = r_lo; r < r_hi; ++r) {
      for (unsigned c = 0; c < m; ++c) {
        const double ang = tw * static_cast<double>(r) * c;
        const double wr = std::cos(ang);
        const double wi = std::sin(ang);
        cpu.compute(8);
        const double x = B.get(cpu, 2 * (r * m + c));
        const double y = B.get(cpu, 2 * (r * m + c) + 1);
        B.put(cpu, 2 * (r * m + c), x * wr - y * wi);
        B.put(cpu, 2 * (r * m + c) + 1, x * wi + y * wr);
      }
    }
    cpu.barrier(kBarrier);
    // Step 4: A = B^T.
    transpose(A, B);
    // Step 5: row FFTs on A.
    for (unsigned r = r_lo; r < r_hi; ++r) fft_row(A, r);
    cpu.barrier(kBarrier);
    // Step 6: B = A^T (final result).
    transpose(B, A);
  });

  AppResult res;
  if (cfg.validate) {
    // Exact check against a host replica of the same operation order.
    std::vector<double> rep_re(ref_re), rep_im(ref_im);
    host_six_step(rep_re, rep_im, m);
    double max_err = 0;
    for (unsigned i = 0; i < n; ++i) {
      max_err = std::max(
          max_err,
          std::fabs(m_.peek<double>(B.addr(2 * i)) - rep_re[i]) +
              std::fabs(m_.peek<double>(B.addr(2 * i + 1)) - rep_im[i]));
    }
    bool dft_ok = true;
    if (n <= 512) {
      // Cross-check the math against a naive DFT at small sizes.
      for (unsigned k = 0; k < n && dft_ok; k += 37) {
        double xr = 0;
        double xi = 0;
        for (unsigned i = 0; i < n; ++i) {
          const double ang = -2.0 * std::numbers::pi *
                             static_cast<double>(i) * k /
                             static_cast<double>(n);
          xr += ref_re[i] * std::cos(ang) - ref_im[i] * std::sin(ang);
          xi += ref_re[i] * std::sin(ang) + ref_im[i] * std::cos(ang);
        }
        dft_ok = std::fabs(xr - rep_re[k]) + std::fabs(xi - rep_im[k]) < 1e-6;
      }
    }
    res.valid = max_err == 0.0 && dft_ok;
    std::ostringstream os;
    os << "fft n=" << n << " (m=" << m << ") max|X-replica|=" << max_err
       << (dft_ok ? "" : " DFT-MISMATCH");
    res.detail = os.str();
  }
  return res;
}

}  // namespace lrc::apps
