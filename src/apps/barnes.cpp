// Barnes: N-body simulation with a Barnes-Hut tree (paper: 4K bodies, 4
// steps, 3-D octree; ours: scaled body count and a 2-D quadtree with the
// same phase and sharing structure as SPLASH BARNES).
//
// Each step has the SPLASH phases, separated by barriers:
//   maketree  — parallel insertion; descent is lock-free, only the node
//               actually modified is locked (re-validated after locking);
//               locked leaf splits move the resident body one level down.
//   cofm      — centers of mass bottom-up: depth-2 subtrees are disjoint
//               and processed in parallel, the top of the tree is finished
//               by processor 0.
//   forces    — read-only traversals with the theta opening criterion
//               (dominant phase, as in the original).
//   advance   — each processor integrates its own bodies (migratory data).
//
// The lock traffic in maketree plus the migratory per-body records are what
// the paper credits for LRC's barnes gains (reduced synchronization wait).
#include <cmath>
#include <sstream>
#include <vector>

#include "apps/app.hpp"
#include "sim/rng.hpp"

namespace lrc::apps {

namespace {

constexpr SyncId kBarrier = 0;
constexpr SyncId kAllocLock = 1;
constexpr SyncId kNodeLockBase = 16;

constexpr std::int32_t kEmpty = -1;
constexpr std::int32_t kInternal = -2;

// Tighter opening criterion than SPLASH's default 1.0: keeps the force
// phase dominant at our scaled-down body count, as in the original runs.
constexpr double kTheta = 0.4;
constexpr double kEps2 = 1e-4;
constexpr double kG = 1e-3;
constexpr double kDt = 0.02;

}  // namespace

AppResult run_barnes(core::Machine& m, const AppConfig& cfg) {
  const unsigned n = cfg.n != 0 ? cfg.n : 512;
  const unsigned steps = cfg.steps != 0 ? cfg.steps : 4;
  const unsigned max_nodes = 8 * n + 16;

  // Body state.
  auto X = m.alloc<double>(n, "barnes.x");
  auto Y = m.alloc<double>(n, "barnes.y");
  auto VX = m.alloc<double>(n, "barnes.vx");
  auto VY = m.alloc<double>(n, "barnes.vy");
  auto AX = m.alloc<double>(n, "barnes.ax");
  auto AY = m.alloc<double>(n, "barnes.ay");
  auto MASS = m.alloc<double>(n, "barnes.mass");

  // Tree node pool. BODY: body index for leaves, kEmpty, or kInternal.
  auto BODY = m.alloc<std::int32_t>(max_nodes, "barnes.node.body");
  auto NM = m.alloc<double>(max_nodes, "barnes.node.mass");
  auto NWX = m.alloc<double>(max_nodes, "barnes.node.wx");
  auto NWY = m.alloc<double>(max_nodes, "barnes.node.wy");
  auto CX = m.alloc<double>(max_nodes, "barnes.node.cx");
  auto CY = m.alloc<double>(max_nodes, "barnes.node.cy");
  auto HS = m.alloc<double>(max_nodes, "barnes.node.hs");
  auto CHILD = m.alloc<std::int32_t>(4 * max_nodes, "barnes.node.child");
  auto NEXT = m.alloc<std::int32_t>(1, "barnes.next");
  auto OVERFLOW_FLAG = m.alloc<std::int32_t>(1, "barnes.overflow");

  sim::Rng rng(cfg.seed);
  for (unsigned b = 0; b < n; ++b) {
    m.poke_mem(X.addr(b), rng.uniform(0.05, 0.95));
    m.poke_mem(Y.addr(b), rng.uniform(0.05, 0.95));
    m.poke_mem(VX.addr(b), rng.uniform(-0.02, 0.02));
    m.poke_mem(VY.addr(b), rng.uniform(-0.02, 0.02));
    m.poke_mem(MASS.addr(b), 1.0 / n);
  }
  m.poke_mem(OVERFLOW_FLAG.addr(0), std::int32_t{0});

  m.run([&](core::Cpu& cpu) {
    const unsigned p = cpu.id();
    const unsigned np = cpu.nprocs();
    const unsigned b_lo = n * p / np;
    const unsigned b_hi = n * (p + 1) / np;

    auto node_lock = [&](std::int32_t node) {
      cpu.lock(kNodeLockBase + static_cast<SyncId>(node));
    };
    auto node_unlock = [&](std::int32_t node) {
      cpu.unlock(kNodeLockBase + static_cast<SyncId>(node));
    };
    auto quadrant = [&](std::int32_t node, double x, double y) {
      const double cx = CX.get(cpu, node);
      const double cy = CY.get(cpu, node);
      cpu.compute(2);
      return (x >= cx ? 1 : 0) + (y >= cy ? 2 : 0);
    };

    // Allocates and wires 4 children of `node` (caller holds its lock).
    auto split = [&](std::int32_t node) {
      cpu.lock(kAllocLock);
      const std::int32_t base = NEXT.get(cpu, 0);
      if (base + 4 > static_cast<std::int32_t>(max_nodes)) {
        OVERFLOW_FLAG.put(cpu, 0, 1);
        cpu.unlock(kAllocLock);
        return false;
      }
      NEXT.put(cpu, 0, base + 4);
      cpu.unlock(kAllocLock);

      const double cx = CX.get(cpu, node);
      const double cy = CY.get(cpu, node);
      const double hs = HS.get(cpu, node) * 0.5;
      for (int q = 0; q < 4; ++q) {
        const std::int32_t c = base + q;
        BODY.put(cpu, c, kEmpty);
        CX.put(cpu, c, cx + ((q & 1) ? hs : -hs));
        CY.put(cpu, c, cy + ((q & 2) ? hs : -hs));
        HS.put(cpu, c, hs);
        CHILD.put(cpu, 4 * node + q, c);
      }
      return true;
    };

    // SPLASH-style insert: descend lock-free; lock only the node modified
    // and re-validate it under the lock.
    auto insert = [&](unsigned b) {
      const double x = X.get(cpu, b);
      const double y = Y.get(cpu, b);
      std::int32_t node = 0;
      while (true) {
        std::int32_t kind = BODY.get(cpu, node);
        if (kind == kInternal) {
          node = CHILD.get(cpu, 4 * node + quadrant(node, x, y));
          continue;
        }
        node_lock(node);
        kind = BODY.get(cpu, node);  // re-validate
        if (kind == kInternal) {
          node_unlock(node);
          continue;  // someone split it meanwhile; descend through it
        }
        if (kind == kEmpty) {
          BODY.put(cpu, node, static_cast<std::int32_t>(b));
          node_unlock(node);
          return;
        }
        // Occupied leaf: split, push the resident body one level down.
        if (!split(node)) {
          node_unlock(node);
          return;
        }
        const int oq =
            quadrant(node, X.get(cpu, kind), Y.get(cpu, kind));
        BODY.put(cpu, CHILD.get(cpu, 4 * node + oq), kind);
        BODY.put(cpu, node, kInternal);  // publish after children are wired
        node_unlock(node);
        // Continue the descent through the now-internal node.
      }
    };

    // Bottom-up center of mass for the subtree rooted at `r` (post-order,
    // subtrees at depth 2 are disjoint so this is lock-free).
    std::vector<std::int32_t> stack;
    auto cofm = [&](std::int32_t r) {
      struct Frame {
        std::int32_t node;
        bool expanded;
      };
      std::vector<Frame> frames;
      frames.push_back({r, false});
      while (!frames.empty()) {
        Frame f = frames.back();
        frames.pop_back();
        const std::int32_t kind = BODY.get(cpu, f.node);
        if (kind == kEmpty) {
          NM.put(cpu, f.node, 0.0);
          NWX.put(cpu, f.node, 0.0);
          NWY.put(cpu, f.node, 0.0);
          continue;
        }
        if (kind >= 0) {  // leaf
          const double mass = MASS.get(cpu, kind);
          NM.put(cpu, f.node, mass);
          NWX.put(cpu, f.node, mass * X.get(cpu, kind));
          NWY.put(cpu, f.node, mass * Y.get(cpu, kind));
          cpu.compute(4);
          continue;
        }
        if (!f.expanded) {
          frames.push_back({f.node, true});
          for (int q = 0; q < 4; ++q) {
            frames.push_back({CHILD.get(cpu, 4 * f.node + q), false});
          }
          continue;
        }
        double mass = 0;
        double wx = 0;
        double wy = 0;
        for (int q = 0; q < 4; ++q) {
          const std::int32_t c = CHILD.get(cpu, 4 * f.node + q);
          mass += NM.get(cpu, c);
          wx += NWX.get(cpu, c);
          wy += NWY.get(cpu, c);
        }
        cpu.compute(6);
        NM.put(cpu, f.node, mass);
        NWX.put(cpu, f.node, wx);
        NWY.put(cpu, f.node, wy);
      }
    };

    auto compute_force = [&](unsigned b, double* ax, double* ay) {
      const double x = X.get(cpu, b);
      const double y = Y.get(cpu, b);
      *ax = 0;
      *ay = 0;
      stack.clear();
      stack.push_back(0);
      while (!stack.empty()) {
        const std::int32_t node = stack.back();
        stack.pop_back();
        const double mass = NM.get(cpu, node);
        if (mass <= 0) continue;
        const std::int32_t kind = BODY.get(cpu, node);
        if (kind == static_cast<std::int32_t>(b)) continue;  // self
        const double comx = NWX.get(cpu, node) / mass;
        const double comy = NWY.get(cpu, node) / mass;
        const double dx = comx - x;
        const double dy = comy - y;
        const double d2 = dx * dx + dy * dy + kEps2;
        cpu.compute(10);
        const double size = 2.0 * HS.get(cpu, node);
        if (kind != kInternal || size * size < kTheta * kTheta * d2) {
          const double inv = 1.0 / (d2 * std::sqrt(d2));
          *ax += kG * mass * dx * inv;
          *ay += kG * mass * dy * inv;
          cpu.compute(10);
        } else {
          for (int q = 0; q < 4; ++q) {
            stack.push_back(CHILD.get(cpu, 4 * node + q));
          }
        }
      }
    };

    for (unsigned step = 0; step < steps; ++step) {
      // Phase 0: processor 0 resets the pool and the root.
      if (p == 0) {
        NEXT.put(cpu, 0, 1);
        BODY.put(cpu, 0, kEmpty);
        CX.put(cpu, 0, 0.5);
        CY.put(cpu, 0, 0.5);
        HS.put(cpu, 0, 0.5);
      }
      cpu.barrier(kBarrier);

      // Phase 1: maketree.
      for (unsigned b = b_lo; b < b_hi; ++b) insert(b);
      cpu.barrier(kBarrier);

      // Phase 2: cofm. Depth-2 subtree roots are distributed round-robin;
      // processor 0 then finishes the top two levels.
      {
        unsigned idx = 0;
        const std::int32_t root_kind = BODY.get(cpu, 0);
        if (root_kind == kInternal) {
          for (int q = 0; q < 4; ++q) {
            const std::int32_t c = CHILD.get(cpu, 4 * 0 + q);
            if (BODY.get(cpu, c) == kInternal) {
              for (int qq = 0; qq < 4; ++qq) {
                const std::int32_t g = CHILD.get(cpu, 4 * c + qq);
                if (idx++ % np == p) cofm(g);
              }
            } else if (idx++ % np == p) {
              cofm(c);
            }
          }
        }
        cpu.barrier(kBarrier);
        if (p == 0) {
          if (root_kind != kInternal) {
            cofm(0);
          } else {
            for (int q = 0; q < 4; ++q) {
              const std::int32_t c = CHILD.get(cpu, 4 * 0 + q);
              if (BODY.get(cpu, c) == kInternal) {
                double mass = 0, wx = 0, wy = 0;
                for (int qq = 0; qq < 4; ++qq) {
                  const std::int32_t g = CHILD.get(cpu, 4 * c + qq);
                  mass += NM.get(cpu, g);
                  wx += NWX.get(cpu, g);
                  wy += NWY.get(cpu, g);
                }
                NM.put(cpu, c, mass);
                NWX.put(cpu, c, wx);
                NWY.put(cpu, c, wy);
              }
            }
            double mass = 0, wx = 0, wy = 0;
            for (int q = 0; q < 4; ++q) {
              const std::int32_t c = CHILD.get(cpu, 4 * 0 + q);
              mass += NM.get(cpu, c);
              wx += NWX.get(cpu, c);
              wy += NWY.get(cpu, c);
            }
            NM.put(cpu, 0, mass);
            NWX.put(cpu, 0, wx);
            NWY.put(cpu, 0, wy);
          }
        }
      }
      cpu.barrier(kBarrier);

      // Phase 3: forces (read-only tree traversals, the dominant phase).
      for (unsigned b = b_lo; b < b_hi; ++b) {
        double ax = 0;
        double ay = 0;
        compute_force(b, &ax, &ay);
        AX.put(cpu, b, ax);
        AY.put(cpu, b, ay);
      }
      cpu.barrier(kBarrier);

      // Phase 4: advance own bodies (reflecting walls).
      for (unsigned b = b_lo; b < b_hi; ++b) {
        double vx = VX.get(cpu, b) + kDt * AX.get(cpu, b);
        double vy = VY.get(cpu, b) + kDt * AY.get(cpu, b);
        double x = X.get(cpu, b) + kDt * vx;
        double y = Y.get(cpu, b) + kDt * vy;
        cpu.compute(8);
        if (x < 0.0) { x = -x; vx = -vx; }
        if (x > 1.0) { x = 2.0 - x; vx = -vx; }
        if (y < 0.0) { y = -y; vy = -vy; }
        if (y > 1.0) { y = 2.0 - y; vy = -vy; }
        VX.put(cpu, b, vx);
        VY.put(cpu, b, vy);
        X.put(cpu, b, x);
        Y.put(cpu, b, y);
      }
      cpu.barrier(kBarrier);
    }
  });

  AppResult res;
  if (cfg.validate) {
    bool finite = true;
    for (unsigned b = 0; b < n && finite; ++b) {
      const double x = m.peek<double>(X.addr(b));
      const double y = m.peek<double>(Y.addr(b));
      finite = std::isfinite(x) && std::isfinite(y) && x >= -1e-9 &&
               x <= 1.0 + 1e-9 && y >= -1e-9 && y <= 1.0 + 1e-9;
    }
    const double root_mass = m.peek<double>(NM.addr(0));
    const bool overflowed = m.peek<std::int32_t>(OVERFLOW_FLAG.addr(0)) != 0;
    const bool mass_ok = std::fabs(root_mass - 1.0) < 1e-9;
    res.valid = finite && mass_ok && !overflowed;
    std::ostringstream os;
    os << "barnes n=" << n << " steps=" << steps << " root_mass=" << root_mass
       << (finite ? "" : " NON-FINITE") << (overflowed ? " POOL-OVERFLOW" : "");
    res.detail = os.str();
  }
  return res;
}

}  // namespace lrc::apps
