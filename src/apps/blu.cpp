// Blu: blocked right-looking LU decomposition without pivoting (paper:
// 448x448 per [5]; bench default scaled to 128x128 with 16x16 blocks).
//
// Blocks are assigned 2-D cyclically. Each outer step factors the diagonal
// block, updates the row and column panels, then applies the trailing
// update, with barriers between phases. Block-boundary traffic produces the
// false-sharing and write-miss profile the paper reports for Blocked-LU.
#include <cmath>
#include <sstream>
#include <vector>

#include "apps/app.hpp"
#include "sim/rng.hpp"

namespace lrc::apps {

namespace {

void reference_lu(std::vector<double>& a, unsigned n) {
  for (unsigned k = 0; k < n; ++k) {
    for (unsigned i = k + 1; i < n; ++i) {
      a[i * n + k] /= a[k * n + k];
      for (unsigned j = k + 1; j < n; ++j) {
        a[i * n + j] -= a[i * n + k] * a[k * n + j];
      }
    }
  }
}

}  // namespace

AppResult run_blu(core::Machine& m, const AppConfig& cfg) {
  const unsigned n = cfg.n != 0 ? cfg.n : 128;
  const unsigned B = 16;                 // block size
  const unsigned nb = (n + B - 1) / B;   // blocks per dimension
  auto A = m.alloc<double>(static_cast<std::size_t>(n) * n, "blu.A");

  sim::Rng rng(cfg.seed);
  std::vector<double> ref(static_cast<std::size_t>(n) * n);
  for (unsigned i = 0; i < n; ++i) {
    double row_sum = 0;
    for (unsigned j = 0; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      ref[i * n + j] = v;
      row_sum += std::fabs(v);
    }
    ref[i * n + i] += row_sum + 1.0;
  }
  for (std::size_t i = 0; i < ref.size(); ++i) m.poke_mem(A.addr(i), ref[i]);

  // Block (bi, bj) belongs to processor (bi*nb + bj) % nprocs.
  m.run([&](core::Cpu& cpu) {
    const unsigned p = cpu.id();
    const unsigned np = cpu.nprocs();
    auto owner = [&](unsigned bi, unsigned bj) {
      return (bi * nb + bj) % np;
    };
    auto lo = [&](unsigned b) { return b * B; };
    auto hi = [&](unsigned b) { return std::min(n, (b + 1) * B); };

    for (unsigned kb = 0; kb < nb; ++kb) {
      // Phase 1: the diagonal block's owner factors it (unblocked LU).
      if (owner(kb, kb) == p) {
        for (unsigned k = lo(kb); k < hi(kb); ++k) {
          const double pivot = A.get(cpu, k * n + k);
          for (unsigned i = k + 1; i < hi(kb); ++i) {
            const double f = A.get(cpu, i * n + k) / pivot;
            cpu.compute(2);
            A.put(cpu, i * n + k, f);
            for (unsigned j = k + 1; j < hi(kb); ++j) {
              A.put(cpu, i * n + j,
                    A.get(cpu, i * n + j) - f * A.get(cpu, k * n + j));
              cpu.compute(2);
            }
          }
        }
      }
      cpu.barrier(0);

      // Phase 2: panel updates. Column panel blocks (ib,kb): solve against
      // U11; row panel blocks (kb,jb): solve against L11.
      for (unsigned ib = kb + 1; ib < nb; ++ib) {
        if (owner(ib, kb) != p) continue;
        for (unsigned k = lo(kb); k < hi(kb); ++k) {
          const double pivot = A.get(cpu, k * n + k);
          for (unsigned i = lo(ib); i < hi(ib); ++i) {
            const double f = A.get(cpu, i * n + k) / pivot;
            cpu.compute(2);
            A.put(cpu, i * n + k, f);
            for (unsigned j = k + 1; j < hi(kb); ++j) {
              A.put(cpu, i * n + j,
                    A.get(cpu, i * n + j) - f * A.get(cpu, k * n + j));
              cpu.compute(2);
            }
          }
        }
      }
      for (unsigned jb = kb + 1; jb < nb; ++jb) {
        if (owner(kb, jb) != p) continue;
        for (unsigned k = lo(kb); k < hi(kb); ++k) {
          for (unsigned i = k + 1; i < hi(kb); ++i) {
            const double f = A.get(cpu, i * n + k);
            for (unsigned j = lo(jb); j < hi(jb); ++j) {
              A.put(cpu, i * n + j,
                    A.get(cpu, i * n + j) - f * A.get(cpu, k * n + j));
              cpu.compute(2);
            }
          }
        }
      }
      cpu.barrier(0);

      // Phase 3: trailing submatrix update A22 -= L21 * U12.
      for (unsigned ib = kb + 1; ib < nb; ++ib) {
        for (unsigned jb = kb + 1; jb < nb; ++jb) {
          if (owner(ib, jb) != p) continue;
          for (unsigned i = lo(ib); i < hi(ib); ++i) {
            for (unsigned j = lo(jb); j < hi(jb); ++j) {
              double acc = A.get(cpu, i * n + j);
              for (unsigned k = lo(kb); k < hi(kb); ++k) {
                acc -= A.get(cpu, i * n + k) * A.get(cpu, k * n + j);
                cpu.compute(2);
              }
              A.put(cpu, i * n + j, acc);
            }
          }
        }
      }
      cpu.barrier(0);
    }
  });

  AppResult res;
  if (cfg.validate) {
    reference_lu(ref, n);
    double max_err = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      max_err = std::max(max_err,
                         std::fabs(m.peek<double>(A.addr(i)) - ref[i]));
    }
    res.valid = max_err < 1e-8;
    std::ostringstream os;
    os << "blu n=" << n << " B=" << B << " max|LU-ref|=" << max_err;
    res.detail = os.str();
  }
  return res;
}

}  // namespace lrc::apps
