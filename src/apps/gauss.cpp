// Gauss: Gaussian elimination without pivoting (paper: 448x448; bench
// default scaled to 192x192 with the correspondingly smaller caches).
//
// Rows are distributed cyclically; iteration k reduces all rows below the
// pivot row against it, with a barrier separating iterations. The pivot row
// is produced (dirty) by one processor in iteration k-1 and read by all in
// iteration k — the tightly-synchronized access pattern whose 3-hop
// transactions LRC eliminates (paper §4.2).
#include <cmath>
#include <sstream>
#include <vector>

#include "apps/app.hpp"
#include "sim/rng.hpp"

namespace lrc::apps {

namespace {

/// Host-side reference elimination for validation.
void reference_eliminate(std::vector<double>& a, unsigned n) {
  for (unsigned k = 0; k + 1 < n; ++k) {
    for (unsigned i = k + 1; i < n; ++i) {
      const double f = a[i * n + k] / a[k * n + k];
      a[i * n + k] = f;
      for (unsigned j = k + 1; j < n; ++j) {
        a[i * n + j] -= f * a[k * n + j];
      }
    }
  }
}

}  // namespace

AppResult run_gauss(core::Machine& m, const AppConfig& cfg) {
  const unsigned n = cfg.n != 0 ? cfg.n : 192;
  auto A = m.alloc<double>(static_cast<std::size_t>(n) * n, "gauss.A");

  // Untimed initialization: random, diagonally dominant (stable without
  // pivoting).
  sim::Rng rng(cfg.seed);
  std::vector<double> ref(static_cast<std::size_t>(n) * n);
  for (unsigned i = 0; i < n; ++i) {
    double row_sum = 0;
    for (unsigned j = 0; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      ref[i * n + j] = v;
      row_sum += std::fabs(v);
    }
    ref[i * n + i] += row_sum + 1.0;
  }
  for (std::size_t i = 0; i < ref.size(); ++i) m.poke_mem(A.addr(i), ref[i]);

  m.run([&](core::Cpu& cpu) {
    const unsigned p = cpu.id();
    const unsigned np = cpu.nprocs();
    for (unsigned k = 0; k + 1 < n; ++k) {
      // Rows are cyclically assigned: processor p owns rows i with i%np==p.
      for (unsigned i = k + 1 + ((p + np - (k + 1) % np) % np); i < n;
           i += np) {
        const double pivot = A.get(cpu, k * n + k);
        const double f = A.get(cpu, i * n + k) / pivot;
        cpu.compute(2);
        A.put(cpu, i * n + k, f);
        for (unsigned j = k + 1; j < n; ++j) {
          const double akj = A.get(cpu, k * n + j);
          const double aij = A.get(cpu, i * n + j);
          cpu.compute(2);
          A.put(cpu, i * n + j, aij - f * akj);
        }
      }
      cpu.barrier(0);
    }
  });

  AppResult res;
  if (cfg.validate) {
    reference_eliminate(ref, n);
    double max_err = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      max_err = std::max(max_err,
                         std::fabs(m.peek<double>(A.addr(i)) - ref[i]));
    }
    res.valid = max_err < 1e-9;
    std::ostringstream os;
    os << "gauss n=" << n << " max|A-ref|=" << max_err;
    res.detail = os.str();
  }
  return res;
}

}  // namespace lrc::apps
