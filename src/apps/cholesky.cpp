// Cholesky: sparse Cholesky factorization (paper: bcsstk15; ours: a
// generated block-arrow SPD matrix — bcsstk15 is not available offline).
// The block-arrow form (B independent band blocks coupled through a small
// dense border) gives a real elimination-tree: the B block chains factor
// concurrently, then the border columns finish sequentially — the same
// task-queue parallelism profile as a supernodal sparse solver, with the
// paper's cholesky signature: true sharing on completed columns, almost no
// false sharing.
//
// Left-looking column tasks are handed out through a lock-protected ready
// queue with per-column dependency counters (mirroring SPLASH cholesky's
// global queue); a column's completion enqueues its in-block successor, and
// the last block column opens the border chain.
#include <cmath>
#include <sstream>
#include <vector>

#include "apps/app.hpp"
#include "sim/rng.hpp"

namespace lrc::apps {

namespace {

constexpr SyncId kBarrier = 0;
constexpr SyncId kQueueLock = 1;

struct Shape {
  unsigned blocks;      // independent diagonal blocks
  unsigned nb;          // columns per block
  unsigned w;           // band half-width inside a block (w < nb)
  unsigned cw;          // trailing columns per block coupled to the border
  unsigned m;           // border (separator) columns
  unsigned block_cols() const { return blocks * nb; }
  unsigned total_cols() const { return block_cols() + m; }
};

Shape shape_for(unsigned n) {
  if (n <= 150) return Shape{8, 12, 8, 3, 8};       // test scale
  if (n <= 2000) return Shape{64, 24, 16, 6, 24};   // bench scale
  return Shape{64, 60, 24, 8, 32};                  // ~bcsstk15 scale
}

}  // namespace

AppResult run_cholesky(core::Machine& m, const AppConfig& cfg) {
  const Shape sh = shape_for(cfg.n != 0 ? cfg.n : 600);
  const unsigned nbc = sh.block_cols();
  const unsigned ncols = sh.total_cols();

  // Storage: block column j has (w+1) band slots (rows j..j+w clipped to
  // its block) followed by m border-row slots; border column c is a dense
  // m-vector (rows 0..m-1; entries above the diagonal stay zero).
  const unsigned col_stride = sh.w + 1 + sh.m;
  const std::size_t block_slots = static_cast<std::size_t>(nbc) * col_stride;
  const std::size_t border_slots = static_cast<std::size_t>(sh.m) * sh.m;
  auto A = m.alloc<double>(block_slots + border_slots, "chol.A");
  auto DEP = m.alloc<std::int32_t>(ncols, "chol.dep");
  auto READY = m.alloc<std::int32_t>(ncols, "chol.ready");
  // Queue state packed into one cache line: [head, tail, done, blocks_done].
  auto QS = m.alloc<std::int32_t>(4, "chol.qstate");

  auto band_idx = [&](unsigned j, unsigned i) {  // block col j, row i >= j
    return static_cast<std::size_t>(j) * col_stride + (i - j);
  };
  auto brow_idx = [&](unsigned j, unsigned r) {  // block col j, border row r
    return static_cast<std::size_t>(j) * col_stride + sh.w + 1 + r;
  };
  auto bord_idx = [&](unsigned c, unsigned r) {  // border col c, row r
    return block_slots + static_cast<std::size_t>(c) * sh.m + r;
  };
  auto coupled = [&](unsigned j) { return j % sh.nb >= sh.nb - sh.cw; };

  // ---- Untimed initialization: SPD by diagonal dominance on the pattern.
  sim::Rng rng(cfg.seed);
  std::vector<double> ref(block_slots + border_slots, 0.0);
  std::vector<double> rowsum(ncols + sh.m, 0.0);  // extra m for border rows
  auto note = [&](unsigned row, double v) { rowsum[row] += std::fabs(v); };

  for (unsigned j = 0; j < nbc; ++j) {
    const unsigned bs = (j / sh.nb) * sh.nb;
    const unsigned be = bs + sh.nb;
    for (unsigned i = j + 1; i < std::min(be, j + sh.w + 1); ++i) {
      const double v = rng.uniform(-1.0, 1.0);
      ref[band_idx(j, i)] = v;
      note(i, v);
      note(j, v);
    }
    if (coupled(j)) {
      for (unsigned r = 0; r < sh.m; ++r) {
        const double v = rng.uniform(-1.0, 1.0);
        ref[brow_idx(j, r)] = v;
        note(ncols + r, v);
        note(j, v);
      }
    }
  }
  for (unsigned c = 0; c < sh.m; ++c) {
    for (unsigned r = c + 1; r < sh.m; ++r) {
      const double v = rng.uniform(-1.0, 1.0);
      ref[bord_idx(c, r)] = v;
      note(ncols + r, v);
      note(ncols + c, v);
    }
  }
  for (unsigned j = 0; j < nbc; ++j) {
    ref[band_idx(j, j)] = rowsum[j] + 2.0;
  }
  for (unsigned c = 0; c < sh.m; ++c) {
    ref[bord_idx(c, c)] = rowsum[ncols + c] + 2.0;
  }
  const std::vector<double> a0 = ref;  // keep A for validation
  for (std::size_t i = 0; i < ref.size(); ++i) m.poke_mem(A.addr(i), ref[i]);

  for (unsigned j = 0; j < nbc; ++j) {
    const unsigned jl = j % sh.nb;
    m.poke_mem(DEP.addr(j),
               static_cast<std::int32_t>(std::min(jl, sh.w)));
  }
  // Border columns chain off BLOCKS_DONE; their DEP field is unused.
  for (unsigned c = 0; c < sh.m; ++c) {
    m.poke_mem(DEP.addr(nbc + c), std::int32_t{-1});
  }
  // Seed: the first column of every block is ready.
  for (unsigned b = 0; b < sh.blocks; ++b) {
    m.poke_mem(READY.addr(b), static_cast<std::int32_t>(b * sh.nb));
  }
  m.poke_mem(QS.addr(0), std::int32_t{0});                            // head
  m.poke_mem(QS.addr(1), static_cast<std::int32_t>(sh.blocks));       // tail
  m.poke_mem(QS.addr(2), std::int32_t{0});                            // done
  m.poke_mem(QS.addr(3), std::int32_t{0});                            // blocks


  // ---- The parallel factorization.
  m.run([&](core::Cpu& cpu) {
    std::int32_t finished = -1;
    while (true) {
      cpu.lock(kQueueLock);
      if (finished >= 0) {
        const unsigned j = static_cast<unsigned>(finished);
        std::int32_t tail = QS.get(cpu, 1);
        if (j < nbc) {
          // In-block successor(s) within the band window lose a dependency.
          const unsigned be = (j / sh.nb) * sh.nb + sh.nb;
          for (unsigned s = j + 1; s < std::min(be, j + sh.w + 1); ++s) {
            const std::int32_t left = DEP.get(cpu, s) - 1;
            DEP.put(cpu, s, left);
            if (left == 0) {
              READY.put(cpu, tail, static_cast<std::int32_t>(s));
              ++tail;
            }
          }
          const std::int32_t bd = QS.get(cpu, 3) + 1;
          QS.put(cpu, 3, bd);
          if (bd == static_cast<std::int32_t>(nbc) && sh.m > 0) {
            READY.put(cpu, tail, static_cast<std::int32_t>(nbc));
            ++tail;
          }
        } else if (j + 1 < ncols) {
          READY.put(cpu, tail, static_cast<std::int32_t>(j + 1));
          ++tail;
        }
        QS.put(cpu, 1, tail);
        QS.put(cpu, 2, QS.get(cpu, 2) + 1);
        finished = -1;
      }
      if (QS.get(cpu, 2) == static_cast<std::int32_t>(ncols)) {
        cpu.unlock(kQueueLock);
        break;
      }
      const std::int32_t head = QS.get(cpu, 0);
      if (head == QS.get(cpu, 1)) {
        cpu.unlock(kQueueLock);
        cpu.compute(64);  // backoff before re-polling
        continue;
      }
      const unsigned j = static_cast<unsigned>(READY.get(cpu, head));
      QS.put(cpu, 0, head + 1);
      cpu.unlock(kQueueLock);

      if (j < nbc) {
        // ---- Block column task.
        const unsigned bs = (j / sh.nb) * sh.nb;
        const unsigned be = bs + sh.nb;
        const unsigned kfirst = std::max(bs, j >= sh.w ? j - sh.w : 0u);
        for (unsigned k = kfirst; k < j; ++k) {
          const double ljk = A.get(cpu, band_idx(k, j));
          for (unsigned i = j; i < std::min(be, k + sh.w + 1); ++i) {
            A.put(cpu, band_idx(j, i),
                  A.get(cpu, band_idx(j, i)) -
                      A.get(cpu, band_idx(k, i)) * ljk);
            cpu.compute(4);
          }
          if (coupled(j) && coupled(k)) {
            for (unsigned r = 0; r < sh.m; ++r) {
              A.put(cpu, brow_idx(j, r),
                    A.get(cpu, brow_idx(j, r)) -
                        A.get(cpu, brow_idx(k, r)) * ljk);
              cpu.compute(4);
            }
          }
        }
        const double d = std::sqrt(A.get(cpu, band_idx(j, j)));
        cpu.compute(8);
        A.put(cpu, band_idx(j, j), d);
        for (unsigned i = j + 1; i < std::min(be, j + sh.w + 1); ++i) {
          A.put(cpu, band_idx(j, i), A.get(cpu, band_idx(j, i)) / d);
          cpu.compute(2);
        }
        if (coupled(j)) {
          for (unsigned r = 0; r < sh.m; ++r) {
            A.put(cpu, brow_idx(j, r), A.get(cpu, brow_idx(j, r)) / d);
            cpu.compute(2);
          }
        }
      } else {
        // ---- Border column task (global column nbc + c).
        const unsigned c = j - nbc;
        // Contributions from every coupled block column.
        for (unsigned k = 0; k < nbc; ++k) {
          if (!coupled(k)) continue;
          const double lck = A.get(cpu, brow_idx(k, c));
          if (lck == 0.0) continue;
          for (unsigned r = c; r < sh.m; ++r) {
            A.put(cpu, bord_idx(c, r),
                  A.get(cpu, bord_idx(c, r)) -
                      A.get(cpu, brow_idx(k, r)) * lck);
            cpu.compute(4);
          }
        }
        // Contributions from earlier border columns.
        for (unsigned k = 0; k < c; ++k) {
          const double lck = A.get(cpu, bord_idx(k, c));
          for (unsigned r = c; r < sh.m; ++r) {
            A.put(cpu, bord_idx(c, r),
                  A.get(cpu, bord_idx(c, r)) -
                      A.get(cpu, bord_idx(k, r)) * lck);
            cpu.compute(4);
          }
        }
        const double d = std::sqrt(A.get(cpu, bord_idx(c, c)));
        cpu.compute(8);
        A.put(cpu, bord_idx(c, c), d);
        for (unsigned r = c + 1; r < sh.m; ++r) {
          A.put(cpu, bord_idx(c, r), A.get(cpu, bord_idx(c, r)) / d);
          cpu.compute(2);
        }
      }
      finished = static_cast<std::int32_t>(j);
    }
    cpu.barrier(kBarrier);
  });

  // ---- Validation: L * L^T must reproduce A on the stored pattern.
  AppResult res;
  if (cfg.validate) {
    auto L_band = [&](unsigned j, unsigned i) {
      return m.peek<double>(A.addr(band_idx(j, i)));
    };
    auto L_brow = [&](unsigned j, unsigned r) {
      return m.peek<double>(A.addr(brow_idx(j, r)));
    };
    auto L_bord = [&](unsigned c, unsigned r) {
      return m.peek<double>(A.addr(bord_idx(c, r)));
    };
    double max_err = 0;
    for (unsigned j = 0; j < nbc; ++j) {
      const unsigned bs = (j / sh.nb) * sh.nb;
      const unsigned be = bs + sh.nb;
      for (unsigned i = j; i < std::min(be, j + sh.w + 1); ++i) {
        double sum = 0;
        const unsigned klo = std::max(bs, i >= sh.w ? i - sh.w : 0u);
        for (unsigned k = klo; k <= j; ++k) {
          sum += L_band(k, i) * L_band(k, j);
        }
        max_err = std::max(max_err, std::fabs(sum - a0[band_idx(j, i)]));
      }
      if (coupled(j)) {
        for (unsigned r = 0; r < sh.m; ++r) {
          double sum = 0;
          const unsigned klo = std::max(bs, j >= sh.w ? j - sh.w : 0u);
          for (unsigned k = klo; k <= j; ++k) {
            if (coupled(k)) sum += L_brow(k, r) * L_band(k, j);
          }
          max_err = std::max(max_err, std::fabs(sum - a0[brow_idx(j, r)]));
        }
      }
    }
    for (unsigned c = 0; c < sh.m; ++c) {
      for (unsigned r = c; r < sh.m; ++r) {
        double sum = 0;
        for (unsigned k = 0; k < nbc; ++k) {
          if (coupled(k)) sum += L_brow(k, r) * L_brow(k, c);
        }
        for (unsigned k = 0; k <= c; ++k) {
          sum += L_bord(k, r) * L_bord(k, c);
        }
        max_err = std::max(max_err, std::fabs(sum - a0[bord_idx(c, r)]));
      }
    }
    res.valid = max_err < 1e-7;
    std::ostringstream os;
    os << "cholesky blocks=" << sh.blocks << " nb=" << sh.nb << " w=" << sh.w
       << " border=" << sh.m << " cols=" << ncols << " max|LL^T-A|="
       << max_err;
    res.detail = os.str();
  }
  return res;
}

}  // namespace lrc::apps
