#include "apps/app.hpp"

namespace lrc::apps {

const std::vector<AppInfo>& registry() {
  // Bench sizes follow DESIGN.md §4 (paper inputs scaled with the caches);
  // test sizes keep the suite fast; paper sizes are the original inputs
  // (§3 of the paper) and are slow on a single host core.
  static const std::vector<AppInfo> apps = {
      {"gauss", "Gaussian elimination without pivoting", &run_gauss,
       /*bench=*/192, 0, /*test=*/48, 0, /*paper=*/448, 0},
      {"fft", "1-D radix-2 FFT", &run_fft,
       /*bench=*/65536, 0, /*test=*/256, 0, /*paper=*/65536, 0},
      {"blu", "blocked right-looking LU decomposition", &run_blu,
       /*bench=*/136, 0, /*test=*/48, 0, /*paper=*/452, 0},
      {"barnes", "Barnes-Hut N-body simulation", &run_barnes,
       /*bench=*/512, 4, /*test=*/96, 2, /*paper=*/4096, 4},
      {"cholesky", "banded sparse Cholesky factorization", &run_cholesky,
       /*bench=*/600, 0, /*test=*/120, 0, /*paper=*/3948, 0},
      {"locusroute", "standard-cell router over a shared cost grid",
       &run_locusroute, /*bench=*/2048, 0, /*test=*/192, 0, /*paper=*/3029,
       0},
      {"mp3d", "wind-tunnel particle simulation", &run_mp3d,
       /*bench=*/8000, 10, /*test=*/600, 3, /*paper=*/40000, 10},
  };
  return apps;
}

const AppInfo* find_app(std::string_view name) {
  for (const auto& a : registry()) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

}  // namespace lrc::apps
