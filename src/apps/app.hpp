// Workload interface: each application is re-implemented from its published
// algorithm against the Cpu API, with scalable problem sizes (DESIGN.md §4).
// Initialization happens untimed through the backing store; the measured
// region is exactly the SPMD body; validation runs untimed afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/machine.hpp"

namespace lrc::apps {

struct AppConfig {
  /// Primary problem size (matrix order, FFT points, bodies, particles,
  /// wires, columns — per app). 0 selects the app's bench default.
  unsigned n = 0;
  /// Time steps / iterations where the app has them. 0 = default.
  unsigned steps = 0;
  std::uint64_t seed = 1;
  bool validate = true;
  /// For the racy applications (locusroute, mp3d): issue a consistency
  /// fence every `fence_every` work items (0 = never). Paper §4.2 proposes
  /// fences to bound the staleness the lazy protocols allow.
  unsigned fence_every = 0;
};

struct AppResult {
  bool valid = true;
  std::string detail;  // human-readable validation summary
};

using AppFn = AppResult (*)(core::Machine&, const AppConfig&);

struct AppInfo {
  std::string_view name;
  std::string_view description;
  AppFn run;
  unsigned bench_n;     // default size used by the benchmark harness
  unsigned bench_steps;
  unsigned test_n;      // small size used by the test suite
  unsigned test_steps;
  unsigned paper_n;     // the paper's input size (slow on one host core)
  unsigned paper_steps;
};

/// All seven applications, in the paper's order.
const std::vector<AppInfo>& registry();

/// Lookup by name; nullptr if unknown.
const AppInfo* find_app(std::string_view name);

// Individual entry points (also reachable through the registry).
AppResult run_gauss(core::Machine& m, const AppConfig& cfg);
AppResult run_fft(core::Machine& m, const AppConfig& cfg);
AppResult run_blu(core::Machine& m, const AppConfig& cfg);
AppResult run_barnes(core::Machine& m, const AppConfig& cfg);
AppResult run_cholesky(core::Machine& m, const AppConfig& cfg);
AppResult run_locusroute(core::Machine& m, const AppConfig& cfg);
AppResult run_mp3d(core::Machine& m, const AppConfig& cfg);

}  // namespace lrc::apps
