// Mp3d: rarefied-fluid wind-tunnel simulation (paper: 40000 particles, 10
// steps; ours: scaled particle count over a 3-D cell grid). Particles are
// block-partitioned; every step each particle moves ballistically, reflects
// off the tunnel walls, updates its cell's accumulators with unsynchronized
// read-modify-writes, and may "collide" with the previous occupant of its
// cell (velocity exchange). The racy cell updates on densely packed
// accumulators reproduce mp3d's signature: the highest miss rate in the
// suite with large true- and false-sharing components, and data races whose
// effect on solution quality the paper explicitly measures (§4.2).
#include <cmath>
#include <sstream>
#include <vector>

#include "apps/app.hpp"
#include "sim/rng.hpp"

namespace lrc::apps {

namespace {
constexpr SyncId kBarrier = 0;
constexpr double kDt = 0.05;
}  // namespace

AppResult run_mp3d(core::Machine& m, const AppConfig& cfg) {
  const unsigned n = cfg.n != 0 ? cfg.n : 8000;
  const unsigned steps = cfg.steps != 0 ? cfg.steps : 10;
  const unsigned g = 12;  // grid cells per dimension
  const unsigned cells = g * g * g;

  auto PX = m.alloc<double>(n, "mp3d.px");
  auto PY = m.alloc<double>(n, "mp3d.py");
  auto PZ = m.alloc<double>(n, "mp3d.pz");
  auto VX = m.alloc<double>(n, "mp3d.vx");
  auto VY = m.alloc<double>(n, "mp3d.vy");
  auto VZ = m.alloc<double>(n, "mp3d.vz");

  // Per-cell accumulators: population count and the index of the last
  // particle seen this step (collision partner), interleaved so that one
  // cache line carries several cells — the false-sharing hot spot.
  auto COUNT = m.alloc<std::int32_t>(cells, "mp3d.count");
  auto LAST = m.alloc<std::int32_t>(cells, "mp3d.last");

  sim::Rng rng(cfg.seed);
  for (unsigned i = 0; i < n; ++i) {
    m.poke_mem(PX.addr(i), rng.uniform(0.0, 1.0));
    m.poke_mem(PY.addr(i), rng.uniform(0.0, 1.0));
    m.poke_mem(PZ.addr(i), rng.uniform(0.0, 1.0));
    // Streamwise flow in +x plus thermal jitter.
    m.poke_mem(VX.addr(i), 0.2 + rng.uniform(-0.05, 0.05));
    m.poke_mem(VY.addr(i), rng.uniform(-0.05, 0.05));
    m.poke_mem(VZ.addr(i), rng.uniform(-0.05, 0.05));
  }
  for (unsigned c = 0; c < cells; ++c) {
    m.poke_mem(COUNT.addr(c), std::int32_t{0});
    m.poke_mem(LAST.addr(c), std::int32_t{-1});
  }

  m.run([&](core::Cpu& cpu) {
    const unsigned p = cpu.id();
    const unsigned np = cpu.nprocs();
    const unsigned lo = n * p / np;
    const unsigned hi = n * (p + 1) / np;

    auto reflect = [&](double& x, double& v) {
      if (x < 0.0) { x = -x; v = -v; }
      if (x >= 1.0) { x = 2.0 - x - 1e-12; v = -v; }
      cpu.compute(2);
    };

    for (unsigned step = 0; step < steps; ++step) {
      for (unsigned i = lo; i < hi; ++i) {
        if (cfg.fence_every != 0 && (i - lo) % cfg.fence_every == 0) {
          cpu.fence();  // bound invalidation staleness (paper Sec. 4.2)
        }
        double x = PX.get(cpu, i);
        double y = PY.get(cpu, i);
        double z = PZ.get(cpu, i);
        double vx = VX.get(cpu, i);
        double vy = VY.get(cpu, i);
        double vz = VZ.get(cpu, i);

        x += kDt * vx;
        y += kDt * vy;
        z += kDt * vz;
        cpu.compute(6);
        reflect(x, vx);
        reflect(y, vy);
        reflect(z, vz);

        const unsigned cx = static_cast<unsigned>(x * g);
        const unsigned cy = static_cast<unsigned>(y * g);
        const unsigned cz = static_cast<unsigned>(z * g);
        const unsigned c = (cz * g + cy) * g + cx;
        cpu.compute(6);

        // Racy cell update: bump population, remember this particle, and
        // maybe collide with the previous occupant.
        COUNT.put(cpu, c, COUNT.get(cpu, c) + 1);
        const std::int32_t partner = LAST.get(cpu, c);
        LAST.put(cpu, c, static_cast<std::int32_t>(i));
        if (partner >= 0 && static_cast<unsigned>(partner) != i) {
          // Hard-sphere-ish exchange: swap streamwise velocities, damp the
          // transverse components (migratory access to the partner's state).
          const double pvx = VX.get(cpu, partner);
          VX.put(cpu, partner, vx);
          vx = pvx;
          vy = 0.9 * vy;
          vz = 0.9 * vz;
          cpu.compute(4);
        }

        PX.put(cpu, i, x);
        PY.put(cpu, i, y);
        PZ.put(cpu, i, z);
        VX.put(cpu, i, vx);
        VY.put(cpu, i, vy);
        VZ.put(cpu, i, vz);
      }
      cpu.barrier(kBarrier);
      // Reset collision markers for the next step (partitioned by cell).
      for (unsigned c = cells * p / np; c < cells * (p + 1) / np; ++c) {
        LAST.put(cpu, c, std::int32_t{-1});
      }
      cpu.barrier(kBarrier);
    }
  });

  AppResult res;
  if (cfg.validate) {
    // Total cell population over all steps should equal particles * steps
    // minus whatever the benign races lost; positions must stay in bounds.
    std::uint64_t pop = 0;
    for (unsigned c = 0; c < cells; ++c) {
      pop += static_cast<std::uint64_t>(
          std::max<std::int32_t>(m.peek<std::int32_t>(COUNT.addr(c)), 0));
    }
    bool in_bounds = true;
    double vsum[3] = {0, 0, 0};
    for (unsigned i = 0; i < n && in_bounds; ++i) {
      const double x = m.peek<double>(PX.addr(i));
      const double y = m.peek<double>(PY.addr(i));
      const double z = m.peek<double>(PZ.addr(i));
      in_bounds = x >= 0 && x < 1 && y >= 0 && y < 1 && z >= 0 && z < 1 &&
                  std::isfinite(x) && std::isfinite(y) && std::isfinite(z);
      vsum[0] += m.peek<double>(VX.addr(i));
      vsum[1] += m.peek<double>(VY.addr(i));
      vsum[2] += m.peek<double>(VZ.addr(i));
    }
    const std::uint64_t expected =
        static_cast<std::uint64_t>(n) * steps;
    res.valid = in_bounds && pop <= expected && pop * 10 >= expected * 9;
    std::ostringstream os;
    os << "mp3d n=" << n << " steps=" << steps << " pop=" << pop << "/"
       << expected << " vsum=(" << vsum[0] << "," << vsum[1] << "," << vsum[2]
       << ")" << (in_bounds ? "" : " OUT-OF-BOUNDS");
    res.detail = os.str();
  }
  return res;
}

}  // namespace lrc::apps
