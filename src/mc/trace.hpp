// Decision traces for the schedule explorer (docs/MODELCHECK.md).
//
// A schedule is identified by the sequence of choices made at its decision
// points, in encounter order. Because the engine is deterministic — the
// event fired at step k is a pure function of the choices made at decisions
// 0..k-1 — the choice vector alone replays the schedule exactly, and the
// richer Decision records below (timestamps, candidate seqs, actors) are
// carried only so humans can read a counterexample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace lrc::mc {

/// One co-enabled event at a tie decision point.
struct TieCand {
  std::uint64_t seq = 0;     // engine tie-break id; unique within a schedule
  std::uint16_t actor = 0;   // sim::Event::kNoActor when unknown
  std::uint16_t src = 0;     // sending node for channel deliveries, else
                             // kNoActor; (src, actor) names the p2p channel
  bool fiber = false;        // firing resumes workload code
};

/// One decision point along a schedule.
struct Decision {
  enum class Kind : std::uint8_t {
    kTie,    // >= 2 events co-enabled at one cycle: pick the next firing
    kDelay,  // sync-arrival perturbation: extra compute before a sync op
  };
  Kind kind = Kind::kTie;
  std::uint32_t chosen = 0;  // candidate index (kTie) or delay cycles (kDelay)

  // kTie fields.
  Cycle when = 0;
  std::vector<TieCand> cands;

  // kDelay fields.
  NodeId proc = 0;
  unsigned nth = 0;      // nth sync op of `proc`
  unsigned window = 0;   // domain is 0..window
};

/// The compact, replayable form: Decision::chosen per decision point, in
/// encounter order. See mc::replay.
using Choices = std::vector<std::uint32_t>;

inline Choices choices_of(const std::vector<Decision>& trace) {
  Choices c;
  c.reserve(trace.size());
  for (const Decision& d : trace) c.push_back(d.chosen);
  return c;
}

/// Human-readable rendering: one line per decision, ties shown as
/// `(time, seq)` candidate lists with the chosen firing marked.
std::string format_trace(const std::vector<Decision>& trace);

}  // namespace lrc::mc
