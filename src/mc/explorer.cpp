#include "mc/explorer.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "core/machine.hpp"
#include "sim/event.hpp"

namespace lrc::mc {

namespace {

// An event remembered by a sleep set: enough of its identity to test
// independence against later firings after the Event object is gone.
struct SleepEnt {
  std::uint64_t seq = 0;
  std::uint16_t actor = 0;
  bool fiber = false;
};

// Conservative independence: both actors statically known, different nodes,
// and at most one side runs workload code (fibers share the backing store
// and the litmus register file). Everything else is treated as dependent,
// which only costs reduction, never soundness.
bool indep(const SleepEnt& a, std::uint16_t actor, bool fiber) {
  if (a.actor == sim::Event::kNoActor || actor == sim::Event::kNoActor) {
    return false;
  }
  return a.actor != actor && !(a.fiber && fiber);
}

bool in_sleep(const std::vector<SleepEnt>& sleep, std::uint64_t seq) {
  for (const SleepEnt& s : sleep) {
    if (s.seq == seq) return true;
  }
  return false;
}

// The modeled mesh preserves point-to-point FIFO order: two messages on the
// same (src, dst) channel arrive in send order. A tie candidate whose
// channel has a lower-seq candidate in the same bucket therefore cannot
// fire first — branching on it would explore an ordering the machine can
// never produce (e.g. a forwarded request overtaking the data reply that
// made its target the owner).
bool fifo_blocked(const std::vector<TieCand>& cands, std::size_t i) {
  const TieCand& c = cands[i];
  if (c.src == sim::Event::kNoActor || c.actor == sim::Event::kNoActor) {
    return false;
  }
  for (const TieCand& o : cands) {
    if (o.seq < c.seq && o.src == c.src && o.actor == c.actor) return true;
  }
  return false;
}

// Persistent DFS state for one decision point along the current prefix.
// For ties, `sleep` starts as the sleep set on entry to the decision and
// grows by one entry per fully-explored sibling (classical sleep sets);
// candidates whose seq is in `sleep` are never branched on.
struct Frame {
  Decision dec;
  std::vector<SleepEnt> sleep;
};

// Thrown (from host context only — never from inside a fiber) to abandon
// the current path. Deliberately not derived from std::exception so no
// intermediate handler can swallow it.
struct PathAbandoned {
  bool sleep_blocked = false;  // else: depth-truncated
};

std::string cand_list(const sim::Event* const* cands, std::size_t n) {
  std::ostringstream os;
  for (std::size_t i = 0; i < n; ++i) {
    os << (i ? " " : "") << cands[i]->seq();
  }
  return os.str();
}

// Per-path chooser: replays the shared frame prefix, extends it at the
// first fresh decision, and maintains the running sleep set.
class RunChooser final : public sim::ScheduleArbiter {
 public:
  RunChooser(std::vector<Frame>& frames, const ExploreOptions& opts,
             std::uint64_t& decisions)
      : frames_(frames), opts_(opts), decisions_(decisions) {}

  void attach(core::Machine& m) {
    m_ = &m;
    m.nic().set_batching(false);
    m.engine().set_arbiter(this);
  }

  std::size_t pick(Cycle when, const sim::Event* const* cands,
                   std::size_t n) override {
    if (stopping()) return 0;  // unwinding via engine stop; choices moot
    if (n == 1) {
      // No branching — but a sleeping event firing here means this whole
      // path is a reordering of an already-explored one: abandon it.
      if (opts_.reduce) {
        if (in_sleep(cur_sleep_, cands[0]->seq())) throw PathAbandoned{true};
        filter_sleep(cands[0]->mc_actor(), cands[0]->mc_fiber());
      }
      return 0;
    }
    Frame* f = nullptr;
    if (pos_ < frames_.size()) {
      f = &frames_[pos_];
      verify_tie(*f, when, cands, n);
    } else {
      if (frames_.size() >= opts_.max_depth) throw PathAbandoned{false};
      frames_.push_back(fresh_tie(when, cands, n));
      ++decisions_;
      f = &frames_.back();
      if (!select_first(*f)) {
        frames_.pop_back();
        throw PathAbandoned{true};  // every candidate is asleep
      }
    }
    ++pos_;
    const TieCand& chosen = f->dec.cands[f->dec.chosen];
    if (opts_.reduce) {
      descend_sleep(f->sleep, chosen);
    }
    return f->dec.chosen;
  }

  /// LitmusRunOptions::sync_delay target. Runs on a workload fiber, so it
  /// must not throw: abandonment/nondeterminism are flagged and the engine
  /// is stopped instead, and the controller sorts it out after the run.
  Cycle delay(NodeId p, unsigned nth) {
    if (stopping()) return 0;
    if (pos_ < frames_.size()) {
      Frame& f = frames_[pos_];
      if (f.dec.kind != Decision::Kind::kDelay || f.dec.proc != p ||
          f.dec.nth != nth) {
        flag_mismatch("delay decision " + std::to_string(pos_) +
                      " re-encountered as P" + std::to_string(p) + " sync#" +
                      std::to_string(nth));
        return 0;
      }
      ++pos_;
      return f.dec.chosen;
    }
    if (frames_.size() >= opts_.max_depth) {
      abandoned_depth_ = true;
      m_->engine().stop();
      return 0;
    }
    Frame f;
    f.dec.kind = Decision::Kind::kDelay;
    f.dec.proc = p;
    f.dec.nth = nth;
    f.dec.window = opts_.sync_window;
    f.dec.chosen = 0;
    frames_.push_back(std::move(f));
    ++decisions_;
    ++pos_;
    return 0;
  }

  bool abandoned_depth() const { return abandoned_depth_; }

  /// Rethrows a fiber-context nondeterminism flag on the host side.
  void check_consistent(bool run_completed) const {
    if (!mismatch_.empty()) {
      throw std::logic_error("mc: nondeterministic replay: " + mismatch_);
    }
    if (run_completed && !abandoned_depth_ && pos_ != frames_.size()) {
      throw std::logic_error(
          "mc: nondeterministic replay: run consumed " + std::to_string(pos_) +
          " of " + std::to_string(frames_.size()) + " recorded decisions");
    }
  }

 private:
  bool stopping() const { return abandoned_depth_ || !mismatch_.empty(); }

  void flag_mismatch(std::string what) {
    mismatch_ = std::move(what);
    m_->engine().stop();
  }

  void filter_sleep(std::uint16_t actor, bool fiber) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < cur_sleep_.size(); ++i) {
      if (indep(cur_sleep_[i], actor, fiber)) cur_sleep_[w++] = cur_sleep_[i];
    }
    cur_sleep_.resize(w);
  }

  // Child sleep set after firing `chosen` from a decision whose sleep set
  // (entry set plus explored siblings) is `sleep`.
  void descend_sleep(const std::vector<SleepEnt>& sleep,
                     const TieCand& chosen) {
    cur_sleep_.clear();
    for (const SleepEnt& s : sleep) {
      if (s.seq != chosen.seq && indep(s, chosen.actor, chosen.fiber)) {
        cur_sleep_.push_back(s);
      }
    }
  }

  Frame fresh_tie(Cycle when, const sim::Event* const* cands, std::size_t n) {
    Frame f;
    f.dec.kind = Decision::Kind::kTie;
    f.dec.when = when;
    f.dec.cands.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      f.dec.cands.push_back(TieCand{cands[i]->seq(), cands[i]->mc_actor(),
                                    cands[i]->mc_src(), cands[i]->mc_fiber()});
    }
    if (opts_.reduce) {
      f.sleep = cur_sleep_;  // entry sleep; siblings are appended on advance
    }
    return f;
  }

  bool select_first(Frame& f) const {
    for (std::uint32_t i = 0; i < f.dec.cands.size(); ++i) {
      if (fifo_blocked(f.dec.cands, i)) continue;
      if (!opts_.reduce || !in_sleep(f.sleep, f.dec.cands[i].seq)) {
        f.dec.chosen = i;
        return true;
      }
    }
    return false;
  }

  void verify_tie(const Frame& f, Cycle when, const sim::Event* const* cands,
                  std::size_t n) const {
    bool same = f.dec.kind == Decision::Kind::kTie && f.dec.when == when &&
                f.dec.cands.size() == n;
    for (std::size_t i = 0; same && i < n; ++i) {
      same = f.dec.cands[i].seq == cands[i]->seq();
    }
    if (!same) {
      throw std::logic_error(
          "mc: nondeterministic replay: tie decision " + std::to_string(pos_) +
          " re-encountered at t=" + std::to_string(when) + " cands=[" +
          cand_list(cands, n) + "]");
    }
  }

  std::vector<Frame>& frames_;
  const ExploreOptions& opts_;
  std::uint64_t& decisions_;
  core::Machine* m_ = nullptr;
  std::size_t pos_ = 0;                // next frame index along this path
  std::vector<SleepEnt> cur_sleep_;    // running sleep set
  bool abandoned_depth_ = false;
  std::string mismatch_;
};

// Backtrack: advance the deepest frame that still has an unexplored,
// non-sleeping choice; pop exhausted frames. Returns false when the whole
// tree has been explored. Only explore() calls these two, and its body is
// compiled out without LRCSIM_CHECK.
#ifdef LRCSIM_CHECK
bool advance(std::vector<Frame>& frames, const ExploreOptions& opts) {
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.dec.kind == Decision::Kind::kDelay) {
      if (f.dec.chosen < f.dec.window) {
        ++f.dec.chosen;
        return true;
      }
    } else {
      if (opts.reduce) {
        const TieCand& done = f.dec.cands[f.dec.chosen];
        f.sleep.push_back(SleepEnt{done.seq, done.actor, done.fiber});
      }
      for (std::uint32_t j = f.dec.chosen + 1; j < f.dec.cands.size(); ++j) {
        if (fifo_blocked(f.dec.cands, j)) continue;
        if (!opts.reduce || !in_sleep(f.sleep, f.dec.cands[j].seq)) {
          f.dec.chosen = j;
          return true;
        }
      }
    }
    frames.pop_back();
  }
  return false;
}

std::vector<Decision> trace_of(const std::vector<Frame>& frames) {
  std::vector<Decision> t;
  t.reserve(frames.size());
  for (const Frame& f : frames) t.push_back(f.dec);
  return t;
}
#endif  // LRCSIM_CHECK

// Forced-choice chooser for replay: decision k takes choices[k] (0 beyond
// the vector), recording what it saw.
class ReplayChooser final : public sim::ScheduleArbiter {
 public:
  ReplayChooser(const Choices& choices, unsigned window,
                std::vector<Decision>* trace)
      : choices_(choices), window_(window), trace_(trace) {}

  void attach(core::Machine& m) {
    m.nic().set_batching(false);
    m.engine().set_arbiter(this);
  }

  std::size_t pick(Cycle when, const sim::Event* const* cands,
                   std::size_t n) override {
    if (n == 1) return 0;
    std::uint32_t c = next();
    if (c >= n) {
      throw std::logic_error("mc: replay choice " + std::to_string(c) +
                             " out of range at tie decision " +
                             std::to_string(k_ - 1) + " (t=" +
                             std::to_string(when) + ", " + std::to_string(n) +
                             " candidates)");
    }
    Decision d;
    d.kind = Decision::Kind::kTie;
    d.when = when;
    d.chosen = c;
    for (std::size_t i = 0; i < n; ++i) {
      d.cands.push_back(TieCand{cands[i]->seq(), cands[i]->mc_actor(),
                                cands[i]->mc_src(), cands[i]->mc_fiber()});
    }
    if (fifo_blocked(d.cands, c)) {
      throw std::logic_error(
          "mc: replay choice " + std::to_string(c) + " at tie decision " +
          std::to_string(k_ - 1) +
          " violates channel FIFO order (a lower-seq delivery on the same "
          "(src, dst) channel is co-enabled)");
    }
    if (trace_ != nullptr) trace_->push_back(std::move(d));
    return c;
  }

  Cycle delay(NodeId p, unsigned nth) {
    std::uint32_t c = next();
    if (c > window_) c = window_;
    if (trace_ != nullptr) {
      Decision d;
      d.kind = Decision::Kind::kDelay;
      d.proc = p;
      d.nth = nth;
      d.window = window_;
      d.chosen = c;
      trace_->push_back(std::move(d));
    }
    return c;
  }

 private:
  std::uint32_t next() {
    const std::uint32_t c = k_ < choices_.size() ? choices_[k_] : 0;
    ++k_;
    return c;
  }

  const Choices& choices_;
  unsigned window_ = 0;
  std::vector<Decision>* trace_;
  std::size_t k_ = 0;
};

}  // namespace

ExploreResult explore(const check::LitmusProgram& prog,
                      core::ProtocolKind kind, const ExploreOptions& opts) {
#ifndef LRCSIM_CHECK
  (void)prog;
  (void)kind;
  (void)opts;
  throw std::logic_error(
      "mc::explore requires an LRCSIM_CHECK build: the per-path consistency "
      "oracle is compiled out");
#else
  ExploreResult res;
  std::vector<Frame> frames;
  bool budget_hit = false;
  for (;;) {
    if (res.examined() + res.truncated >= opts.max_schedules) {
      budget_hit = true;
      break;
    }
    RunChooser ch(frames, opts, res.decisions);
    check::LitmusRunOptions lo;
    lo.jitter = false;
    lo.pre_run = [&ch](core::Machine& m) { ch.attach(m); };
    if (opts.sync_window > 0) {
      lo.sync_delay = [&ch](NodeId p, unsigned nth) { return ch.delay(p, nth); };
    }

    bool violating = false;
    auto record = [&](std::vector<std::string> failures,
                      std::vector<std::string> violations) {
      violating = true;
      ++res.violating;
      if (res.counterexamples.size() < opts.max_counterexamples) {
        res.counterexamples.push_back(Counterexample{
            trace_of(frames), std::move(failures), std::move(violations)});
      }
    };

    try {
      check::LitmusResult lr = check::run_litmus(prog, kind, lo);
      ch.check_consistent(/*run_completed=*/true);
      if (ch.abandoned_depth()) {
        ++res.truncated;
      } else {
        ++res.schedules;
        if (!lr.passed()) record(std::move(lr.failures), std::move(lr.violations));
      }
    } catch (const PathAbandoned& pa) {
      ch.check_consistent(/*run_completed=*/false);
      if (pa.sleep_blocked) {
        ++res.sleep_pruned;
      } else {
        ++res.truncated;
      }
    } catch (const std::logic_error&) {
      throw;  // nondeterminism / internal invariant: not a schedule outcome
    } catch (const std::exception& e) {
      ch.check_consistent(/*run_completed=*/false);
      if (ch.abandoned_depth()) {
        ++res.truncated;
      } else {
        // A schedule-dependent hard failure (deadlock, protocol assert
        // surfaced as an exception) is itself a counterexample.
        ++res.schedules;
        record({}, {std::string("run failed: ") + e.what()});
      }
    }

    if (violating && opts.stop_at_first) break;
    if (!advance(frames, opts)) {
      res.complete = res.truncated == 0 && !budget_hit;
      break;
    }
  }
  return res;
#endif
}

check::LitmusResult replay(const check::LitmusProgram& prog,
                           core::ProtocolKind kind, unsigned sync_window,
                           const Choices& choices, std::vector<Decision>* trace,
                           const std::function<void(core::Machine&)>& pre_run,
                           const std::function<void(core::Machine&)>& post_run) {
  ReplayChooser ch(choices, sync_window, trace);
  check::LitmusRunOptions lo;
  lo.jitter = false;
  lo.pre_run = [&ch, &pre_run](core::Machine& m) {
    ch.attach(m);
    if (pre_run) pre_run(m);
  };
  lo.post_run = post_run;
  if (sync_window > 0) {
    lo.sync_delay = [&ch](NodeId p, unsigned nth) { return ch.delay(p, nth); };
  }
  return check::run_litmus(prog, kind, lo);
}

std::string format_trace(const std::vector<Decision>& trace) {
  std::ostringstream os;
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const Decision& d = trace[k];
    os << "  #" << k << " ";
    if (d.kind == Decision::Kind::kDelay) {
      os << "delay P" << d.proc << " sync#" << d.nth << " -> +" << d.chosen
         << " cycles (window " << d.window << ")\n";
      continue;
    }
    os << "tie t=" << d.when << " [";
    for (std::size_t i = 0; i < d.cands.size(); ++i) {
      const TieCand& c = d.cands[i];
      os << (i ? " " : "");
      if (i == d.chosen) os << "*";
      os << "(" << d.when << "," << c.seq << ")";
      if (c.actor != sim::Event::kNoActor) {
        if (c.fiber) {
          os << "P" << c.actor;
        } else if (c.src != sim::Event::kNoActor) {
          os << "n" << c.src << ">" << c.actor;  // channel delivery src>dst
        } else {
          os << "n" << c.actor;
        }
      }
    }
    os << "] -> fired " << d.cands[d.chosen].seq << "\n";
  }
  return os.str();
}

}  // namespace lrc::mc
