// Exhaustive small-scope schedule explorer over the litmus DSL
// (docs/MODELCHECK.md). For a 2-4 thread litmus program under one protocol
// it enumerates every resolution of the engine's same-cycle event ties
// (plus, optionally, bounded sync-arrival delays), re-running the program
// from scratch per schedule with the LRCSIM_CHECK consistency oracle and
// directory invariants active, and reports every schedule whose run
// violates the oracle, a directory invariant, or the program's
// forbid/require conditions.
//
// The search is a stateless DFS over choice prefixes with sleep-set
// partial-order reduction: independent tie candidates (disjoint node
// footprints, known via Event::mc_actor) are not explored in both orders.
// Exploration requires an LRCSIM_CHECK build (the per-path oracle is the
// point); explore() throws std::logic_error otherwise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/litmus.hpp"
#include "core/params.hpp"
#include "mc/trace.hpp"

namespace lrc::mc {

struct ExploreOptions {
  /// Sync-arrival perturbation window: before each lock/unlock/barrier/
  /// fence the explorer may insert 0..sync_window extra compute cycles
  /// (each choice is a kDelay decision). 0 disables the dimension.
  unsigned sync_window = 0;
  /// Path budget: stop once this many schedules (complete + pruned) have
  /// been examined. The result's `complete` flag reports whether the whole
  /// tree fit in the budget.
  std::uint64_t max_schedules = 1u << 20;
  /// Per-path decision-depth bound; deeper paths are truncated (counted,
  /// and they clear `complete`).
  std::uint32_t max_depth = 512;
  /// Sleep-set partial-order reduction. Off = enumerate every interleaving.
  bool reduce = true;
  /// Stop at the first violating schedule.
  bool stop_at_first = false;
  /// Cap on recorded counterexamples (exploration continues past it).
  std::uint32_t max_counterexamples = 8;
};

struct Counterexample {
  std::vector<Decision> trace;          // full decision trace, replayable
  std::vector<std::string> failures;    // violated forbid/require conditions
  std::vector<std::string> violations;  // oracle / directory violations
};

struct ExploreResult {
  std::uint64_t schedules = 0;     // paths run to completion
  std::uint64_t sleep_pruned = 0;  // paths abandoned sleep-blocked
  std::uint64_t truncated = 0;     // paths abandoned at max_depth
  std::uint64_t decisions = 0;     // distinct decision points visited
  std::uint64_t violating = 0;     // schedules that violated something
  bool complete = false;           // tree exhausted within the budget
  std::vector<Counterexample> counterexamples;

  std::uint64_t examined() const { return schedules + sleep_pruned; }
};

/// Explores `prog` under `kind`. Deterministic: the same inputs yield the
/// same schedule/decision counts and the same counterexamples.
ExploreResult explore(const check::LitmusProgram& prog,
                      core::ProtocolKind kind, const ExploreOptions& opts);

/// Replays one schedule from its choice vector (see choices_of): decision k
/// takes choices[k]; decisions beyond the vector take choice 0. Returns the
/// litmus result; fills `trace` (when non-null) with the decisions
/// re-encountered, which a pinned regression test can compare against the
/// original counterexample. `pre_run`/`post_run` (optional) are forwarded
/// to the underlying run — e.g. enable and dump the machine's message
/// trace around a counterexample replay.
check::LitmusResult replay(const check::LitmusProgram& prog,
                           core::ProtocolKind kind, unsigned sync_window,
                           const Choices& choices,
                           std::vector<Decision>* trace = nullptr,
                           const std::function<void(core::Machine&)>& pre_run = {},
                           const std::function<void(core::Machine&)>& post_run = {});

}  // namespace lrc::mc
