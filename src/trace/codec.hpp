// Block codecs for the trace format. The built-in `lrz` codec is a small
// byte-oriented LZ77 with no dependencies — hash-4 greedy matching, two-byte
// offsets (the 64 KiB block bound makes longer ones useless). When the build
// found libzstd (LRCSIM_HAVE_ZSTD), writers prefer it; readers accept
// whichever codec each block names, so traces move between builds as long
// as the codec used is available.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lrc::trace {

/// FNV-1a 32-bit over `n` bytes (block checksum).
std::uint32_t fnv1a32(const std::uint8_t* p, std::size_t n);

/// Compresses [src, src+n) into dst (capacity `cap`). Returns the
/// compressed size, or 0 when the result would not fit in `cap` — callers
/// fall back to storing the block raw.
std::size_t lrz_compress(const std::uint8_t* src, std::size_t n,
                         std::uint8_t* dst, std::size_t cap);

/// Decompresses exactly `raw_len` bytes into dst. Returns false on any
/// malformed input (bad token, offset before the start, output mismatch);
/// never reads or writes out of bounds.
bool lrz_decompress(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
                    std::size_t raw_len);

/// True when this build can emit/decode Codec::kZstd blocks.
bool zstd_available();
std::size_t zstd_compress(const std::uint8_t* src, std::size_t n,
                          std::uint8_t* dst, std::size_t cap);
bool zstd_decompress(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
                     std::size_t raw_len);

}  // namespace lrc::trace
