// Fiber-free trace replay front end. ReplayCpu implements core::Cpu's
// engine-facing contract (block/poke/local clock, the reusable resume
// event) but advances by decoding the next trace record instead of
// switching a fiber: no sim::Fiber, no asm context switch, no per-CPU
// stack. Protocol ops are the same CpuOp coroutines the fiber front end
// drives, stepped directly from engine events.
//
// Timing is bit-identical to the fiber run the trace was captured from.
// The only structural difference is the run-ahead quantum yield: a fiber
// suspends inside tick(), the replayer defers to the end of the current
// op. The two are indistinguishable because every protocol op's final
// tick() is its last action (no sends or waits follow it), and the
// deferred resume event carries the same timestamp and mode.
#pragma once

#include <functional>
#include <string>

#include "core/cpu.hpp"
#include "core/machine.hpp"
#include "proto/cpu_op.hpp"
#include "trace/reader.hpp"

namespace lrc::trace {

class ReplayCpu final : public core::Cpu {
 public:
  /// Opens `<dir>/cpuNNNN.lrct` for processor `id`.
  ReplayCpu(core::Machine& m, NodeId id, const std::string& dir);

  /// Replay carries its own workload; `body` must be null.
  void start(std::function<void(core::Cpu&)> body) override;
  bool finished() const override { return finished_; }
  bool is_replay() const override { return true; }

  /// Machine factory for a capture directory (validates meta.txt against
  /// the machine's processor count at construction time).
  static core::Machine::CpuFactory factory(std::string dir);

 protected:
  void resume_execution() override { step_loop(); }

  /// Defers the engine re-entry to the end of the current op (see header
  /// comment); the resume event itself is identical to the fiber path's.
  void quantum_yield() override {
    schedule_quantum_resume();
    yield_pending_ = true;
  }

 private:
  void step_loop();

  Reader reader_;
  proto::CpuOp op_;
  bool op_active_ = false;
  bool yield_pending_ = false;
  bool stream_done_ = false;
  bool finalized_ = false;
  bool finished_ = false;
};

}  // namespace lrc::trace
