#include "trace/reader.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "trace/codec.hpp"

namespace lrc::trace {

Reader::Reader(std::string path) : path_(std::move(path)) {
  f_ = std::fopen(path_.c_str(), "rb");
  if (f_ == nullptr) {
    throw TraceError(path_, 0, "cannot open");
  }
  std::uint8_t hdr[kFileHeaderBytes];
  if (std::fread(hdr, 1, sizeof(hdr), f_) != sizeof(hdr)) {
    throw TraceError(path_, 0, "truncated file header");
  }
  if (get_u32(hdr) != kMagic) {
    throw TraceError(path_, 0, "bad magic (not an lrct trace)");
  }
  if (get_u16(hdr + 4) != kVersion) {
    throw TraceError(path_, 0, "unsupported version " +
                                   std::to_string(get_u16(hdr + 4)));
  }
  cpu_ = get_u32(hdr + 8);
  nprocs_ = get_u32(hdr + 12);
  raw_.resize(kBlockRawBytes + kMaxRecordBytes);
  comp_.resize(kBlockRawBytes + kBlockRawBytes / 16 + 64);
}

Reader::~Reader() {
  if (f_ != nullptr) std::fclose(f_);
}

bool Reader::load_block() {
  std::uint8_t hdr[kBlockHeaderBytes];
  const std::size_t got = std::fread(hdr, 1, sizeof(hdr), f_);
  if (got == 0) return false;  // clean EOF at a block boundary
  if (got != sizeof(hdr)) {
    throw TraceError(path_, block_idx_, "truncated block header");
  }
  const std::uint32_t raw_len = get_u32(hdr);
  const std::uint32_t comp_len = get_u32(hdr + 4);
  const std::uint32_t checksum = get_u32(hdr + 12);
  const std::uint8_t codec = hdr[16];
  if (raw_len == 0 || raw_len > raw_.size()) {
    throw TraceError(path_, block_idx_,
                     "bad raw length " + std::to_string(raw_len));
  }
  if (comp_len > comp_.size()) {
    throw TraceError(path_, block_idx_,
                     "bad compressed length " + std::to_string(comp_len));
  }
  switch (static_cast<Codec>(codec)) {
    case Codec::kRaw:
      if (comp_len != raw_len) {
        throw TraceError(path_, block_idx_, "raw block length mismatch");
      }
      if (std::fread(raw_.data(), 1, raw_len, f_) != raw_len) {
        throw TraceError(path_, block_idx_, "truncated block payload");
      }
      break;
    case Codec::kLrz:
      if (std::fread(comp_.data(), 1, comp_len, f_) != comp_len) {
        throw TraceError(path_, block_idx_, "truncated block payload");
      }
      if (!lrz_decompress(comp_.data(), comp_len, raw_.data(), raw_len)) {
        throw TraceError(path_, block_idx_, "corrupt lrz payload");
      }
      break;
    case Codec::kZstd:
      if (!zstd_available()) {
        throw TraceError(path_, block_idx_,
                         "zstd codec unavailable in this build");
      }
      if (std::fread(comp_.data(), 1, comp_len, f_) != comp_len) {
        throw TraceError(path_, block_idx_, "truncated block payload");
      }
      if (!zstd_decompress(comp_.data(), comp_len, raw_.data(), raw_len)) {
        throw TraceError(path_, block_idx_, "corrupt zstd payload");
      }
      break;
    default:
      throw TraceError(path_, block_idx_,
                       "unknown codec " + std::to_string(codec));
  }
  if (fnv1a32(raw_.data(), raw_len) != checksum) {
    throw TraceError(path_, block_idx_, "checksum mismatch");
  }
  pos_ = 0;
  raw_len_ = raw_len;
  prev_addr_ = 0;
  ++block_idx_;
  return true;
}

bool Reader::next(Record& r) {
  if (done_) return false;
  if (pos_ >= raw_len_) {
    if (!load_block()) {
      throw TraceError(path_, block_idx_,
                       "truncated stream (missing end record)");
    }
  }
  const std::uint8_t hdr = raw_[pos_++];
  const Op op = static_cast<Op>(hdr & 0x07);
  r.op = op;
  switch (op) {
    case Op::kRead:
    case Op::kWrite: {
      r.bytes = 1u << ((hdr >> 3) & 0x07);
      std::uint64_t zz;
      const std::size_t n =
          get_varint(raw_.data() + pos_, raw_.data() + raw_len_, zz);
      if (n == 0) throw TraceError(path_, block_idx_ - 1, "truncated record");
      pos_ += n;
      prev_addr_ = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(prev_addr_) + unzigzag(zz));
      r.addr = prev_addr_;
      return true;
    }
    case Op::kCompute:
    case Op::kLock:
    case Op::kUnlock:
    case Op::kBarrier: {
      const std::size_t n =
          get_varint(raw_.data() + pos_, raw_.data() + raw_len_, r.arg);
      if (n == 0) throw TraceError(path_, block_idx_ - 1, "truncated record");
      pos_ += n;
      return true;
    }
    case Op::kFence:
      return true;
    case Op::kEnd:
      done_ = true;
      return false;
  }
  throw TraceError(path_, block_idx_ - 1,
                   "bad op " + std::to_string(hdr & 0x07));
}

TraceMeta read_meta(const std::string& dir) {
  const std::string path = dir + "/meta.txt";
  std::ifstream in(path);
  if (!in) throw TraceError(path, 0, "cannot open");
  TraceMeta meta;
  unsigned version = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    if (key == "lrctrace") {
      ls >> version;
    } else if (key == "nprocs") {
      ls >> meta.nprocs;
    } else if (key == "app") {
      ls >> meta.app;
    } else if (key == "protocol") {
      ls >> meta.protocol;
    } else if (key == "seed") {
      ls >> meta.seed;
    }
  }
  if (version != kVersion) {
    throw TraceError(path, 0,
                     "missing or unsupported lrctrace version " +
                         std::to_string(version));
  }
  if (meta.nprocs == 0) throw TraceError(path, 0, "missing nprocs");
  return meta;
}

StreamStats scan_stream(const std::string& path) {
  Reader rd(path);
  StreamStats st;
  Record r;
  while (rd.next(r)) {
    ++st.records;
    switch (r.op) {
      case Op::kRead:
        ++st.reads;
        break;
      case Op::kWrite:
        ++st.writes;
        break;
      case Op::kCompute:
        ++st.computes;
        break;
      case Op::kLock:
      case Op::kUnlock:
      case Op::kBarrier:
      case Op::kFence:
        ++st.syncs;
        break;
      case Op::kEnd:
        break;
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f != nullptr) {
    // Re-walk the framing for the raw/compressed totals.
    std::fseek(f, static_cast<long>(kFileHeaderBytes), SEEK_SET);
    std::uint8_t hdr[kBlockHeaderBytes];
    while (std::fread(hdr, 1, sizeof(hdr), f) == sizeof(hdr)) {
      ++st.blocks;
      st.raw_bytes += get_u32(hdr);
      const std::uint32_t comp_len = get_u32(hdr + 4);
      st.file_bytes += kBlockHeaderBytes + comp_len;
      std::fseek(f, static_cast<long>(comp_len), SEEK_CUR);
    }
    st.file_bytes += kFileHeaderBytes;
    std::fclose(f);
  }
  return st;
}

}  // namespace lrc::trace
