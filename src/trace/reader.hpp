// Streaming trace reader: decodes one processor's `cpuNNNN.lrct` stream a
// block at a time — resident memory is two fixed buffers regardless of
// trace size, and the steady-state next() path allocates nothing. All
// malformed input surfaces as TraceError ("<file>:block <n>: <reason>"),
// never UB.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/format.hpp"

namespace lrc::trace {

class Reader {
 public:
  /// Opens and validates the stream header.
  explicit Reader(std::string path);
  ~Reader();

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  std::uint32_t cpu() const { return cpu_; }
  std::uint32_t nprocs() const { return nprocs_; }

  /// Decodes the next record. Returns false at end-of-stream (the kEnd
  /// record); throws TraceError on malformed or truncated input.
  bool next(Record& r);

 private:
  bool load_block();

  std::string path_;
  std::FILE* f_ = nullptr;
  std::uint32_t cpu_ = 0;
  std::uint32_t nprocs_ = 0;
  std::vector<std::uint8_t> raw_;
  std::vector<std::uint8_t> comp_;
  std::size_t pos_ = 0;      // decode cursor into raw_
  std::size_t raw_len_ = 0;  // valid bytes in raw_
  std::uint64_t prev_addr_ = 0;
  std::uint64_t block_idx_ = 0;  // blocks consumed (error reporting)
  bool done_ = false;
};

/// Capture-directory metadata (meta.txt).
struct TraceMeta {
  unsigned nprocs = 0;
  std::string app;
  std::string protocol;
  std::uint64_t seed = 0;
};

/// Parses `<dir>/meta.txt`; throws TraceError when missing or malformed.
TraceMeta read_meta(const std::string& dir);

/// Summary of one stream (tools/trace_info); walks every block.
struct StreamStats {
  std::uint64_t blocks = 0;
  std::uint64_t records = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t computes = 0;
  std::uint64_t syncs = 0;
};

StreamStats scan_stream(const std::string& path);

}  // namespace lrc::trace
