#include "trace/codec.hpp"

#include <algorithm>
#include <cstring>

#ifdef LRCSIM_HAVE_ZSTD
#include <zstd.h>
#endif

namespace lrc::trace {

std::uint32_t fnv1a32(const std::uint8_t* p, std::size_t n) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 16777619u;
  }
  return h;
}

// ---- lrz ------------------------------------------------------------------
//
// Token stream:
//   0x01..0x7F       : literal run; the token value L is followed by L
//                      literal bytes
//   0x80 | (len - 4) : match of length 4..131, followed by a 2-byte LE
//                      offset in 1..65535 (distance back into the output)
// Token 0x00 is invalid; decode rejects it.

namespace {

inline constexpr std::size_t kMinMatch = 4;
inline constexpr std::size_t kMaxMatch = 131;  // 4 + 127
inline constexpr std::size_t kMaxOffset = 65535;
inline constexpr unsigned kHashBits = 13;

inline std::uint32_t read32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint32_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Flushes literals [from, to) into dst; returns new dst position or npos on
// overflow.
inline std::size_t flush_literals(const std::uint8_t* src, std::size_t from,
                                  std::size_t to, std::uint8_t* dst,
                                  std::size_t pos, std::size_t cap) {
  while (from < to) {
    const std::size_t run = std::min<std::size_t>(to - from, 0x7F);
    if (pos + 1 + run > cap) return static_cast<std::size_t>(-1);
    dst[pos++] = static_cast<std::uint8_t>(run);
    std::memcpy(dst + pos, src + from, run);
    pos += run;
    from += run;
  }
  return pos;
}

}  // namespace

std::size_t lrz_compress(const std::uint8_t* src, std::size_t n,
                         std::uint8_t* dst, std::size_t cap) {
  // head[h] holds position + 1 (0 = empty); positions fit u32 for any block.
  std::uint32_t head[1u << kHashBits] = {};
  std::size_t pos = 0;       // write position in dst
  std::size_t lit_start = 0; // first unemitted literal
  std::size_t i = 0;

  while (i + kMinMatch <= n) {
    const std::uint32_t v = read32(src + i);
    const std::uint32_t h = hash4(v);
    const std::uint32_t cand1 = head[h];
    head[h] = static_cast<std::uint32_t>(i) + 1;
    if (cand1 != 0) {
      const std::size_t cand = cand1 - 1;
      const std::size_t off = i - cand;
      if (off >= 1 && off <= kMaxOffset && read32(src + cand) == v) {
        std::size_t len = kMinMatch;
        const std::size_t max_len = std::min(kMaxMatch, n - i);
        while (len < max_len && src[cand + len] == src[i + len]) ++len;
        pos = flush_literals(src, lit_start, i, dst, pos, cap);
        if (pos == static_cast<std::size_t>(-1) || pos + 3 > cap) return 0;
        dst[pos++] = static_cast<std::uint8_t>(0x80 | (len - kMinMatch));
        dst[pos++] = static_cast<std::uint8_t>(off);
        dst[pos++] = static_cast<std::uint8_t>(off >> 8);
        // Seed the table across the match so later data can reference it.
        const std::size_t stop = std::min(i + len, n - kMinMatch + 1);
        for (std::size_t j = i + 1; j < stop; ++j) {
          head[hash4(read32(src + j))] = static_cast<std::uint32_t>(j) + 1;
        }
        i += len;
        lit_start = i;
        continue;
      }
    }
    ++i;
  }
  pos = flush_literals(src, lit_start, n, dst, pos, cap);
  if (pos == static_cast<std::size_t>(-1)) return 0;
  return pos;
}

bool lrz_decompress(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
                    std::size_t raw_len) {
  std::size_t ip = 0;
  std::size_t op = 0;
  while (ip < n) {
    const std::uint8_t tok = src[ip++];
    if (tok == 0) return false;
    if (tok < 0x80) {
      const std::size_t run = tok;
      if (ip + run > n || op + run > raw_len) return false;
      std::memcpy(dst + op, src + ip, run);
      ip += run;
      op += run;
    } else {
      const std::size_t len = (tok & 0x7F) + kMinMatch;
      if (ip + 2 > n) return false;
      const std::size_t off = src[ip] | (src[ip + 1] << 8);
      ip += 2;
      if (off == 0 || off > op || op + len > raw_len) return false;
      // Byte-by-byte: matches may overlap their own output (off < len).
      for (std::size_t j = 0; j < len; ++j) {
        dst[op + j] = dst[op + j - off];
      }
      op += len;
    }
  }
  return op == raw_len;
}

// ---- zstd (optional) ------------------------------------------------------

#ifdef LRCSIM_HAVE_ZSTD

bool zstd_available() { return true; }

std::size_t zstd_compress(const std::uint8_t* src, std::size_t n,
                          std::uint8_t* dst, std::size_t cap) {
  const std::size_t r = ZSTD_compress(dst, cap, src, n, /*level=*/3);
  return ZSTD_isError(r) ? 0 : r;
}

bool zstd_decompress(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
                     std::size_t raw_len) {
  const std::size_t r = ZSTD_decompress(dst, raw_len, src, n);
  return !ZSTD_isError(r) && r == raw_len;
}

#else

bool zstd_available() { return false; }

std::size_t zstd_compress(const std::uint8_t*, std::size_t, std::uint8_t*,
                          std::size_t) {
  return 0;
}

bool zstd_decompress(const std::uint8_t*, std::size_t, std::uint8_t*,
                     std::size_t) {
  return false;
}

#endif

}  // namespace lrc::trace
