#include "trace/writer.hpp"

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "trace/codec.hpp"

namespace lrc::trace {

std::string stream_name(unsigned cpu) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "cpu%04u.lrct", cpu);
  return buf;
}

CaptureLog::CaptureLog(std::string dir, unsigned nprocs)
    : dir_(std::move(dir)), streams_(nprocs) {
  std::filesystem::create_directories(dir_);
  for (unsigned p = 0; p < nprocs; ++p) {
    Stream& s = streams_[p];
    const std::string path = dir_ + "/" + stream_name(p);
    s.f = std::fopen(path.c_str(), "wb");
    if (s.f == nullptr) {
      throw std::runtime_error("trace capture: cannot open " + path);
    }
    // Slack past the block size so a record never straddles the flush check.
    s.raw.resize(kBlockRawBytes + kMaxRecordBytes);
    s.comp.resize(kBlockRawBytes + kBlockRawBytes / 16 + 64);
    std::uint8_t hdr[kFileHeaderBytes] = {};
    put_u32(hdr, kMagic);
    put_u16(hdr + 4, kVersion);
    put_u32(hdr + 8, p);
    put_u32(hdr + 12, nprocs);
    if (std::fwrite(hdr, 1, sizeof(hdr), s.f) != sizeof(hdr)) {
      throw std::runtime_error("trace capture: write failed on " + path);
    }
  }
}

CaptureLog::~CaptureLog() {
  try {
    finish();
  } catch (...) {
    // Destructor backstop only; explicit finish() surfaces errors.
  }
}

void CaptureLog::set_meta(std::string app, std::string protocol,
                          std::uint64_t seed) {
  app_ = std::move(app);
  protocol_ = std::move(protocol);
  seed_ = seed;
}

void CaptureLog::append(Stream& s, const std::uint8_t* rec, std::size_t n) {
  assert(s.raw_pos + n <= s.raw.size());
  std::memcpy(s.raw.data() + s.raw_pos, rec, n);
  s.raw_pos += n;
  ++s.nrecords;
  ++records_;
  if (s.raw_pos >= kBlockRawBytes) flush_block(s);
}

void CaptureLog::flush_block(Stream& s) {
  if (s.nrecords == 0) return;
  const std::uint8_t* raw = s.raw.data();
  const std::size_t raw_len = s.raw_pos;
  Codec codec = Codec::kRaw;
  const std::uint8_t* payload = raw;
  std::size_t payload_len = raw_len;

  std::size_t c = zstd_available()
                      ? zstd_compress(raw, raw_len, s.comp.data(),
                                      s.comp.size())
                      : 0;
  if (c != 0 && c < raw_len) {
    codec = Codec::kZstd;
  } else {
    c = lrz_compress(raw, raw_len, s.comp.data(), s.comp.size());
    if (c != 0 && c < raw_len) codec = Codec::kLrz;
  }
  if (codec != Codec::kRaw) {
    payload = s.comp.data();
    payload_len = c;
  }

  std::uint8_t hdr[kBlockHeaderBytes] = {};
  put_u32(hdr, static_cast<std::uint32_t>(raw_len));
  put_u32(hdr + 4, static_cast<std::uint32_t>(payload_len));
  put_u32(hdr + 8, s.nrecords);
  put_u32(hdr + 12, fnv1a32(raw, raw_len));
  hdr[16] = static_cast<std::uint8_t>(codec);
  if (std::fwrite(hdr, 1, sizeof(hdr), s.f) != sizeof(hdr) ||
      std::fwrite(payload, 1, payload_len, s.f) != payload_len) {
    throw std::runtime_error("trace capture: write failed");
  }
  s.raw_pos = 0;
  s.nrecords = 0;
  s.prev_addr = 0;
}

void CaptureLog::encode_access(NodeId p, Op op, std::uint32_t bytes,
                               std::uint64_t addr) {
  Stream& s = streams_[p];
  assert(std::has_single_bit(bytes) && bytes <= 128);
  const auto size_log2 =
      static_cast<std::uint8_t>(std::countr_zero(bytes));
  std::uint8_t rec[kMaxRecordBytes];
  rec[0] = static_cast<std::uint8_t>(op) |
           static_cast<std::uint8_t>(size_log2 << 3);
  const std::int64_t delta =
      static_cast<std::int64_t>(addr) - static_cast<std::int64_t>(s.prev_addr);
  s.prev_addr = addr;
  const std::size_t n = 1 + put_varint(rec + 1, zigzag(delta));
  append(s, rec, n);
}

void CaptureLog::encode_arg(NodeId p, Op op, std::uint64_t arg) {
  Stream& s = streams_[p];
  std::uint8_t rec[kMaxRecordBytes];
  rec[0] = static_cast<std::uint8_t>(op);
  const std::size_t n = 1 + put_varint(rec + 1, arg);
  append(s, rec, n);
}

void CaptureLog::on_access(NodeId p, bool write, Addr a, std::uint32_t bytes) {
  encode_access(p, write ? Op::kWrite : Op::kRead, bytes, a);
}

void CaptureLog::on_compute(NodeId p, Cycle n) {
  encode_arg(p, Op::kCompute, n);
}

void CaptureLog::on_sync(NodeId p, SyncOp op, SyncId s) {
  switch (op) {
    case SyncOp::kLock:
      encode_arg(p, Op::kLock, s);
      return;
    case SyncOp::kUnlock:
      encode_arg(p, Op::kUnlock, s);
      return;
    case SyncOp::kBarrier:
      encode_arg(p, Op::kBarrier, s);
      return;
    case SyncOp::kFence: {
      Stream& st = streams_[p];
      const std::uint8_t rec = static_cast<std::uint8_t>(Op::kFence);
      append(st, &rec, 1);
      return;
    }
  }
}

void CaptureLog::finish() {
  if (finished_) return;
  finished_ = true;
  for (Stream& s : streams_) {
    const std::uint8_t rec = static_cast<std::uint8_t>(Op::kEnd);
    append(s, &rec, 1);
    --records_;  // kEnd is stream framing, not a workload record
    flush_block(s);
    if (std::fclose(s.f) != 0) {
      throw std::runtime_error("trace capture: close failed");
    }
    s.f = nullptr;
  }
  const std::string path = dir_ + "/meta.txt";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("trace capture: cannot open " + path);
  }
  std::fprintf(f, "lrctrace %u\nnprocs %zu\napp %s\nprotocol %s\nseed %llu\n",
               kVersion, streams_.size(), app_.c_str(), protocol_.c_str(),
               static_cast<unsigned long long>(seed_));
  if (std::fclose(f) != 0) {
    throw std::runtime_error("trace capture: close failed on " + path);
  }
}

}  // namespace lrc::trace
