// Trace capture: a core::AccessLog that encodes each processor's workload
// stream into the block-framed format of trace/format.hpp, one file per
// simulated CPU plus a meta.txt. Install on the Machine before run();
// call finish() after (writes end-of-stream records and the metadata).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/access_log.hpp"
#include "trace/format.hpp"

namespace lrc::trace {

class CaptureLog final : public core::AccessLog {
 public:
  /// Creates `dir` (and parents) and opens one stream per processor.
  CaptureLog(std::string dir, unsigned nprocs);
  ~CaptureLog() override;

  CaptureLog(const CaptureLog&) = delete;
  CaptureLog& operator=(const CaptureLog&) = delete;

  /// Recorded in meta.txt (workload name, protocol name, seed).
  void set_meta(std::string app, std::string protocol, std::uint64_t seed);

  /// Terminates every stream with kEnd, flushes, closes, and writes
  /// meta.txt. Idempotent; the destructor calls it as a backstop.
  void finish();

  std::uint64_t records() const { return records_; }

  // core::AccessLog
  void on_access(NodeId p, bool write, Addr a, std::uint32_t bytes) override;
  void on_compute(NodeId p, Cycle n) override;
  void on_sync(NodeId p, SyncOp op, SyncId s) override;

 private:
  struct Stream {
    std::FILE* f = nullptr;
    std::vector<std::uint8_t> raw;   // current block, encoded records
    std::vector<std::uint8_t> comp;  // codec scratch
    std::size_t raw_pos = 0;
    std::uint32_t nrecords = 0;
    std::uint64_t prev_addr = 0;  // delta base; resets each block
  };

  void append(Stream& s, const std::uint8_t* rec, std::size_t n);
  void flush_block(Stream& s);
  void encode_access(NodeId p, Op op, std::uint32_t bytes, std::uint64_t addr);
  void encode_arg(NodeId p, Op op, std::uint64_t arg);

  std::string dir_;
  std::string app_;
  std::string protocol_;
  std::uint64_t seed_ = 0;
  std::uint64_t records_ = 0;
  std::vector<Stream> streams_;
  bool finished_ = false;
};

}  // namespace lrc::trace
