#include "trace/replay_cpu.hpp"

#include <cassert>
#include <stdexcept>

#include "core/machine.hpp"
#include "proto/protocol.hpp"

namespace lrc::trace {

ReplayCpu::ReplayCpu(core::Machine& m, NodeId id, const std::string& dir)
    : core::Cpu(m, id), reader_(dir + "/" + stream_name(id)) {
  if (reader_.cpu() != id || reader_.nprocs() != m.nprocs()) {
    throw std::runtime_error(
        "trace replay: " + dir + "/" + stream_name(id) + " is for cpu " +
        std::to_string(reader_.cpu()) + "/" + std::to_string(reader_.nprocs()) +
        " procs, machine wants cpu " + std::to_string(id) + "/" +
        std::to_string(m.nprocs()));
  }
}

core::Machine::CpuFactory ReplayCpu::factory(std::string dir) {
  return [dir = std::move(dir)](core::Machine& m, NodeId p) {
    if (p == 0) {
      const TraceMeta meta = read_meta(dir);
      if (meta.nprocs != m.nprocs()) {
        throw std::runtime_error(
            "trace replay: " + dir + " was captured at " +
            std::to_string(meta.nprocs) + " procs, machine has " +
            std::to_string(m.nprocs()));
      }
    }
    return std::unique_ptr<core::Cpu>(new ReplayCpu(m, p, dir));
  };
}

void ReplayCpu::start(std::function<void(core::Cpu&)> body) {
  if (body) {
    throw std::invalid_argument(
        "trace replay: pass a null body to Machine::run");
  }
  schedule_start();
}

void ReplayCpu::step_loop() {
  auto& proto = m_.protocol();
  while (true) {
    if (op_active_) {
      if (!op_.step()) {
        // The deferred-yield invariant: an op that exhausted the quantum is
        // past its final tick and cannot suspend again.
        assert(!yield_pending_);
        note_blocked(op_.wait_kind());
        return;  // a poke resumes us here
      }
      op_active_ = false;
      op_.reset();
      if (finalized_) {
        finished_ = true;
        return;
      }
    }
    if (yield_pending_) {
      yield_pending_ = false;
      return;  // quantum resume already scheduled at the local clock
    }
    if (stream_done_) {
      finalized_ = true;
      op_ = proto.finalize(*this);
      op_active_ = true;
      continue;
    }
    Record r;
    if (!reader_.next(r)) {
      stream_done_ = true;
      continue;
    }
    switch (r.op) {
      case Op::kRead:
        op_ = proto.cpu_read(*this, r.addr, r.bytes);
        op_active_ = true;
        break;
      case Op::kWrite:
        op_ = proto.cpu_write(*this, r.addr, r.bytes);
        op_active_ = true;
        break;
      case Op::kCompute:
        tick(r.arg);
        break;
      case Op::kLock:
        op_ = proto.acquire(*this, static_cast<SyncId>(r.arg));
        op_active_ = true;
        break;
      case Op::kUnlock:
        op_ = proto.release(*this, static_cast<SyncId>(r.arg));
        op_active_ = true;
        break;
      case Op::kBarrier:
        op_ = proto.barrier(*this, static_cast<SyncId>(r.arg));
        op_active_ = true;
        break;
      case Op::kFence:
        op_ = proto.fence(*this);
        op_active_ = true;
        break;
      case Op::kEnd:
        break;  // unreachable: next() returns false at kEnd
    }
  }
}

}  // namespace lrc::trace
