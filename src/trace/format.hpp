// On-disk trace format (DESIGN.md §11). A capture directory holds one
// `cpuNNNN.lrct` stream per simulated processor plus a human-readable
// `meta.txt`. Each stream is a 16-byte file header followed by framed
// blocks; each block decodes independently (the address-delta base resets
// per block), so multi-GB traces replay with one block resident per CPU.
//
//   file   := header block*               (the last block ends with kEnd)
//   header := magic:u32 "LRCT" | version:u16 | reserved:u16
//             | cpu:u32 | nprocs:u32      (all little-endian)
//   block  := raw_len:u32 | comp_len:u32 | nrecords:u32
//             | checksum:u32 (FNV-1a over the raw bytes)
//             | codec:u8 | reserved:u8[3] | payload:u8[comp_len]
//   record := hdr:u8 (op in bits 0-2; size_log2 in bits 3-5 for
//             read/write) | payload
//             read/write : zigzag-varint address delta from the previous
//                          access in this block (base 0 at block start)
//             compute    : varint cycle count
//             lock/unlock/barrier : varint sync id
//             fence/end  : no payload
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace lrc::trace {

inline constexpr std::uint32_t kMagic = 0x5443524Cu;  // "LRCT" little-endian
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::size_t kFileHeaderBytes = 16;
inline constexpr std::size_t kBlockHeaderBytes = 20;
/// Raw (uncompressed) capacity of one block. Small enough that a reader
/// holds ~2 blocks per CPU; large enough to amortize framing and give the
/// codec a useful window.
inline constexpr std::size_t kBlockRawBytes = 64 * 1024;
/// Worst-case record: 1 header byte + a 10-byte varint.
inline constexpr std::size_t kMaxRecordBytes = 11;

enum class Op : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  kCompute = 2,
  kLock = 3,
  kUnlock = 4,
  kBarrier = 5,
  kFence = 6,
  kEnd = 7,  // end of stream; anything after it is ignored
};

enum class Codec : std::uint8_t {
  kRaw = 0,
  kLrz = 1,   // in-house LZ77 (trace/codec.hpp); always available
  kZstd = 2,  // only when the build found libzstd
};

/// Malformed or unreadable trace input. The message always carries the
/// file and block: "<file>:block <n>: <reason>".
class TraceError : public std::runtime_error {
 public:
  TraceError(const std::string& file, std::uint64_t block,
             const std::string& reason)
      : std::runtime_error(file + ":block " + std::to_string(block) + ": " +
                           reason) {}
};

/// A decoded trace record.
struct Record {
  Op op = Op::kEnd;
  std::uint32_t bytes = 0;  // access size (read/write)
  std::uint64_t addr = 0;   // absolute address (read/write)
  std::uint64_t arg = 0;    // cycles (compute) or sync id (lock/unlock/barrier)
};

// ---- Primitive encoders (explicit little-endian, portable) -----------------

inline void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// LEB128 varint. Returns bytes written (max 10).
inline std::size_t put_varint(std::uint8_t* p, std::uint64_t v) {
  std::size_t n = 0;
  while (v >= 0x80) {
    p[n++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  p[n++] = static_cast<std::uint8_t>(v);
  return n;
}

/// Decodes a varint from [p, end). Returns bytes consumed, 0 on overrun.
inline std::size_t get_varint(const std::uint8_t* p, const std::uint8_t* end,
                              std::uint64_t& out) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (std::size_t n = 0; p + n != end && shift < 64; ++n) {
    const std::uint8_t b = p[n];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      out = v;
      return n + 1;
    }
    shift += 7;
  }
  return 0;
}

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Per-record size of the naive encoding the compression target is judged
/// against: 1 op byte + 8 address bytes + 4 size bytes.
inline constexpr std::size_t kNaiveRecordBytes = 13;

/// Stream file name for processor `cpu`.
std::string stream_name(unsigned cpu);

}  // namespace lrc::trace
