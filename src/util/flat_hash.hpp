// Open-addressed hash containers for the memory-system hot path.
//
// The per-access path (directory lookup at the home, OT-table lookup at the
// requester) previously walked `std::unordered_map`: a hash, a bucket-array
// load, a pointer chase to a separately-allocated node, and an allocation on
// every insert. `FlatMap` replaces that with one power-of-two table of
// {key, value} slots probed linearly — typically a single cache line touched
// per lookup — and `StableSlabs` provides chunked, address-stable value
// storage with a free list so steady-state insert/erase cycles (the OT table
// drains completely at every release) allocate nothing.
//
// Design notes:
//  * Keys are 64-bit line/page numbers; `kEmptyKey` (~0) is reserved as the
//    empty-slot sentinel and asserted never to be inserted. Line numbers
//    would need a 2^64-byte address space to collide with it.
//  * Hash is Fibonacci multiplicative hashing: multiply by 2^64/phi and keep
//    the top log2(capacity) bits. Line numbers are sequential-ish, which
//    this spreads well; identity hashing would cluster whole pages into one
//    probe run.
//  * Erase uses backward-shift deletion instead of tombstones: subsequent
//    probe-chain members are relocated into the hole. Tables that churn
//    (the OT table empties at every release) therefore never degrade.
//  * Values stored in the table must be trivially movable; protocol state
//    that needs address stability (DirEntry, OtEntry — protocol code holds
//    pointers across nested operations) lives in `StableSlabs` with the
//    table mapping key -> slab slot index.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace lrc::util {

/// Open-addressed key->V map with 64-bit keys, linear probing, and
/// backward-shift erase. V should be small and trivially copyable (slot
/// relocation on insert-grow and erase copies it freely).
template <typename V>
class FlatMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  /// unordered_map-compatible membership spelling (tests).
  std::size_t count(std::uint64_t key) const {
    return find(key) != nullptr ? 1 : 0;
  }

  V* find(std::uint64_t key) {
    assert(key != kEmptyKey);
    if (slots_.empty()) return nullptr;
    for (std::size_t i = index_of(key);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == kEmptyKey) return nullptr;
    }
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Returns the value for `key`, default-constructing it on first touch.
  /// `created`, when non-null, reports whether the key was new.
  V& get_or_create(std::uint64_t key, bool* created = nullptr) {
    assert(key != kEmptyKey);
    if (size_ >= grow_at_) grow();  // keeps load factor <= 7/8
    for (std::size_t i = index_of(key);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key == key) {
        if (created != nullptr) *created = false;
        return s.value;
      }
      if (s.key == kEmptyKey) {
        s.key = key;
        s.value = V{};
        ++size_;
        if (created != nullptr) *created = true;
        return s.value;
      }
    }
  }

  /// Removes `key` if present; closes the probe chain by shifting later
  /// members backward (no tombstones, so heavy insert/erase churn — the OT
  /// table drains at every release — leaves the table pristine).
  bool erase(std::uint64_t key) {
    assert(key != kEmptyKey);
    if (slots_.empty()) return false;
    std::size_t i = index_of(key);
    for (;; i = (i + 1) & mask_) {
      if (slots_[i].key == key) break;
      if (slots_[i].key == kEmptyKey) return false;
    }
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask_;; j = (j + 1) & mask_) {
      const Slot& s = slots_[j];
      if (s.key == kEmptyKey) break;
      // Move s into the hole iff its home position does not sit after the
      // hole within the probe run (the standard circular-distance test).
      const std::size_t home = index_of(s.key);
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = s;
        hole = j;
      }
    }
    slots_[hole].key = kEmptyKey;
    slots_[hole].value = V{};
    --size_;
    return true;
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.key != kEmptyKey) fn(s.key, s.value);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    V value{};
  };

  std::size_t index_of(std::uint64_t key) const {
    // Fibonacci hashing: the top bits of key * 2^64/phi.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? kInitialCapacity
                                           : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    shift_ = 64 - std::countr_zero(cap);
    grow_at_ = cap - cap / 8;
    for (Slot& s : old) {
      if (s.key == kEmptyKey) continue;
      std::size_t i = index_of(s.key);
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  static constexpr std::size_t kInitialCapacity = 16;

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  std::size_t grow_at_ = 0;  // grow when size_ reaches this (7/8 load)
  unsigned shift_ = 64;
};

/// Open-addressed set of 64-bit keys (linear probing, backward-shift erase,
/// same layout rules as FlatMap). Iteration order is table order: a pure
/// function of the insert/erase history, so simulations that send messages
/// while walking a set stay deterministic. Steady-state insert/erase churn
/// allocates nothing once the table reaches its high-water capacity.
class FlatSet {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  FlatSet() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool contains(std::uint64_t key) const {
    assert(key != kEmptyKey);
    if (slots_.empty()) return false;
    for (std::size_t i = index_of(key);; i = (i + 1) & mask_) {
      if (slots_[i] == key) return true;
      if (slots_[i] == kEmptyKey) return false;
    }
  }
  /// unordered_set-compatible spelling (tests).
  std::size_t count(std::uint64_t key) const { return contains(key) ? 1 : 0; }

  /// Inserts `key`; returns true when it was not already present.
  bool insert(std::uint64_t key) {
    assert(key != kEmptyKey);
    if (size_ >= grow_at_) grow();
    for (std::size_t i = index_of(key);; i = (i + 1) & mask_) {
      if (slots_[i] == key) return false;
      if (slots_[i] == kEmptyKey) {
        slots_[i] = key;
        ++size_;
        return true;
      }
    }
  }

  bool erase(std::uint64_t key) {
    assert(key != kEmptyKey);
    if (slots_.empty()) return false;
    std::size_t i = index_of(key);
    for (;; i = (i + 1) & mask_) {
      if (slots_[i] == key) break;
      if (slots_[i] == kEmptyKey) return false;
    }
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask_;; j = (j + 1) & mask_) {
      const std::uint64_t k = slots_[j];
      if (k == kEmptyKey) break;
      const std::size_t home = index_of(k);
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = k;
        hole = j;
      }
    }
    slots_[hole] = kEmptyKey;
    --size_;
    return true;
  }

  /// Drops all keys; keeps the table's capacity (no shrink, no allocation).
  void clear() {
    if (size_ == 0) return;
    for (std::uint64_t& k : slots_) k = kEmptyKey;
    size_ = 0;
  }

  /// Skips empty slots; table (not insertion) order.
  class const_iterator {
   public:
    const_iterator(const std::uint64_t* p, const std::uint64_t* end)
        : p_(p), end_(end) {
      skip();
    }
    std::uint64_t operator*() const { return *p_; }
    const_iterator& operator++() {
      ++p_;
      skip();
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return p_ != o.p_; }

   private:
    void skip() {
      while (p_ != end_ && *p_ == kEmptyKey) ++p_;
    }
    const std::uint64_t* p_;
    const std::uint64_t* end_;
  };
  const_iterator begin() const {
    return {slots_.data(), slots_.data() + slots_.size()};
  }
  const_iterator end() const {
    const std::uint64_t* e = slots_.data() + slots_.size();
    return {e, e};
  }

 private:
  std::size_t index_of(std::uint64_t key) const {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? kInitialCapacity
                                           : slots_.size() * 2;
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(cap, kEmptyKey);
    mask_ = cap - 1;
    shift_ = 64 - std::countr_zero(cap);
    grow_at_ = cap - cap / 8;
    for (std::uint64_t k : old) {
      if (k == kEmptyKey) continue;
      std::size_t i = index_of(k);
      while (slots_[i] != kEmptyKey) i = (i + 1) & mask_;
      slots_[i] = k;
    }
  }

  static constexpr std::size_t kInitialCapacity = 16;

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  std::size_t grow_at_ = 0;
  unsigned shift_ = 64;
};

/// Chunked object store with stable addresses and a slot free list. Objects
/// are reached by 32-bit slot index; chunks are never deallocated, so an
/// `emplace`d object's address is valid until `release`, and a steady-state
/// allocate/release cycle (once the high-water mark is reached) performs no
/// heap allocation at all.
template <typename T>
class StableSlabs {
 public:
  static constexpr std::uint32_t kInvalidSlot = ~std::uint32_t{0};

  /// Claims a slot (reusing a released one when available) and resets it to
  /// a default-constructed T. Returns the slot index.
  std::uint32_t acquire() {
    std::uint32_t slot;
    if (free_head_ != kInvalidSlot) {
      slot = free_head_;
      free_head_ = next_free_[slot];
      (*this)[slot] = T{};
    } else {
      slot = static_cast<std::uint32_t>(allocated_);
      if (slot % kChunk == 0) {
        chunks_.push_back(std::make_unique<T[]>(kChunk));
      }
      ++allocated_;
      next_free_.push_back(kInvalidSlot);
    }
    return slot;
  }

  void release(std::uint32_t slot) {
    assert(slot < allocated_);
    next_free_[slot] = free_head_;
    free_head_ = slot;
  }

  T& operator[](std::uint32_t slot) {
    assert(slot < allocated_);
    return chunks_[slot / kChunk][slot % kChunk];
  }
  const T& operator[](std::uint32_t slot) const {
    assert(slot < allocated_);
    return chunks_[slot / kChunk][slot % kChunk];
  }

  /// High-water mark: slots ever created (released slots included).
  std::size_t allocated() const { return allocated_; }

 private:
  static constexpr std::size_t kChunk = 64;

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<std::uint32_t> next_free_;  // per-slot free-list link
  std::uint32_t free_head_ = kInvalidSlot;
  std::size_t allocated_ = 0;
};

}  // namespace lrc::util
