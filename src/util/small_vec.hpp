// Small-buffer sequences with a shared overflow pool, for directory-entry
// transients.
//
// Every `DirEntry` used to carry two `std::vector`s (`deferred` request
// replay queue, `collections` write-notice countdowns) — two pointers' worth
// of indirection per entry and a heap allocation the first time either was
// used. In practice both are almost always tiny: a deferred queue holds the
// one request that raced a busy transaction, and the checker's ordering
// invariant bounds live collections by the number of concurrent writers.
// `SmallVec<T, N>` stores the first N elements inline in the entry; the rare
// overflow spills into fixed-size nodes drawn from a per-directory
// `OverflowPool<T>`, which recycles nodes through a free list so steady-state
// protocol handling performs zero heap allocations.
//
// SmallVec methods take the pool explicitly (it is shared machine-wide
// state, not per-entry state); the owning Directory passes its pools
// through. A SmallVec must be `clear(pool)`ed before destruction if it
// overflowed — Directory entries live for the whole run, so in practice the
// chain is reclaimed when the sequence empties.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace lrc::util {

/// Fixed-shape overflow storage shared by many SmallVecs: singly-linked
/// chains of nodes holding `kNodeItems` elements each, recycled via a free
/// list (nodes are never returned to the heap).
template <typename T>
class OverflowPool {
 public:
  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};
  static constexpr std::uint32_t kNodeItems = 4;

  struct Node {
    T items[kNodeItems];
    std::uint32_t next = kInvalid;
  };

  std::uint32_t acquire() {
    std::uint32_t idx;
    if (free_head_ != kInvalid) {
      idx = free_head_;
      free_head_ = nodes_[idx].next;
    } else {
      idx = static_cast<std::uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[idx].next = kInvalid;
    return idx;
  }

  /// Returns a whole chain to the free list.
  void release_chain(std::uint32_t head) {
    while (head != kInvalid) {
      const std::uint32_t next = nodes_[head].next;
      nodes_[head].next = free_head_;
      free_head_ = head;
      head = next;
    }
  }

  Node& node(std::uint32_t idx) { return nodes_[idx]; }
  const Node& node(std::uint32_t idx) const { return nodes_[idx]; }

  /// High-water mark (for tests / steady-state assertions).
  std::size_t nodes_created() const { return nodes_.size(); }

 private:
  std::vector<Node> nodes_;
  std::uint32_t free_head_ = kInvalid;
};

/// Sequence with N inline slots and pooled overflow. Supports the access
/// patterns the directory needs: push_back, swap-free drain (take + clear),
/// in-order traversal, and erase-while-iterating via erase_if. T must be
/// default-constructible and assignable.
template <typename T, unsigned N>
class SmallVec {
 public:
  using Pool = OverflowPool<T>;

  bool empty() const { return size_ == 0; }
  std::uint32_t size() const { return size_; }

  void push_back(const T& v, Pool& pool) {
    if (size_ < N) {
      inline_[size_] = v;
      ++size_;
      return;
    }
    const std::uint32_t off = size_ - N;
    const std::uint32_t slot = off % Pool::kNodeItems;
    if (slot == 0) {
      // Start a new overflow node at the chain tail.
      const std::uint32_t idx = pool.acquire();
      if (head_ == Pool::kInvalid) {
        head_ = idx;
      } else {
        pool.node(tail_).next = idx;
      }
      tail_ = idx;
    }
    pool.node(tail_).items[slot] = v;
    ++size_;
  }

  void clear(Pool& pool) {
    if (head_ != Pool::kInvalid) {
      pool.release_chain(head_);
      head_ = Pool::kInvalid;
      tail_ = Pool::kInvalid;
    }
    size_ = 0;
  }

  template <typename Fn>
  void for_each(const Pool& pool, Fn&& fn) const {
    const std::uint32_t inl = size_ < N ? size_ : N;
    for (std::uint32_t i = 0; i < inl; ++i) fn(inline_[i]);
    std::uint32_t idx = head_;
    for (std::uint32_t done = N; done < size_;) {
      const auto& node = pool.node(idx);
      for (std::uint32_t s = 0; s < Pool::kNodeItems && done < size_;
           ++s, ++done) {
        fn(node.items[s]);
      }
      idx = node.next;
    }
  }

  template <typename Fn>
  void for_each(Pool& pool, Fn&& fn) {
    const std::uint32_t inl = size_ < N ? size_ : N;
    for (std::uint32_t i = 0; i < inl; ++i) fn(inline_[i]);
    std::uint32_t idx = head_;
    for (std::uint32_t done = N; done < size_;) {
      auto& node = pool.node(idx);
      for (std::uint32_t s = 0; s < Pool::kNodeItems && done < size_;
           ++s, ++done) {
        fn(node.items[s]);
      }
      idx = node.next;
    }
  }

  /// Applies `fn` to every element in order; elements for which it returns
  /// true are removed (order of survivors preserved). `fn` may mutate the
  /// element. Trailing overflow nodes emptied by the compaction are
  /// returned to the pool.
  template <typename Fn>
  void erase_if(Pool& pool, Fn&& fn) {
    std::uint32_t kept = 0;
    Cursor read{*this};
    Cursor write{*this};
    for (std::uint32_t i = 0; i < size_; ++i) {
      T& v = read.deref(pool);
      const bool drop = fn(v);
      if (!drop) {
        if (kept != i) write.deref(pool) = v;
        write.advance(pool);
        ++kept;
      }
      read.advance(pool);
    }
    shrink_to(kept, pool);
  }

 private:
  // Walks the inline slots then the overflow chain.
  struct Cursor {
    explicit Cursor(SmallVec& v) : vec(v) {}
    T& deref(Pool& pool) {
      if (pos < N) return vec.inline_[pos];
      return pool.node(node).items[(pos - N) % Pool::kNodeItems];
    }
    void advance(Pool& pool) {
      ++pos;
      if (pos == N) {
        node = vec.head_;
      } else if (pos > N && (pos - N) % Pool::kNodeItems == 0) {
        node = pool.node(node).next;
      }
    }
    SmallVec& vec;
    std::uint32_t pos = 0;
    std::uint32_t node = Pool::kInvalid;
  };

  void shrink_to(std::uint32_t new_size, Pool& pool) {
    assert(new_size <= size_);
    size_ = new_size;
    if (size_ <= N) {
      if (head_ != Pool::kInvalid) {
        pool.release_chain(head_);
        head_ = Pool::kInvalid;
        tail_ = Pool::kInvalid;
      }
      return;
    }
    // Drop overflow nodes past the last used one.
    const std::uint32_t last = (size_ - N - 1) / Pool::kNodeItems;
    std::uint32_t idx = head_;
    for (std::uint32_t n = 0; n < last; ++n) idx = pool.node(idx).next;
    if (pool.node(idx).next != Pool::kInvalid) {
      pool.release_chain(pool.node(idx).next);
      pool.node(idx).next = Pool::kInvalid;
    }
    tail_ = idx;
  }

  T inline_[N]{};
  std::uint32_t size_ = 0;
  std::uint32_t head_ = Pool::kInvalid;
  std::uint32_t tail_ = Pool::kInvalid;
};

}  // namespace lrc::util
