// Fundamental simulator-wide types and small helpers.
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>

namespace lrc {

/// Simulated time, in processor clock cycles.
using Cycle = std::uint64_t;

/// Node (processor/memory/protocol-processor tuple) identifier.
using NodeId = std::uint32_t;

/// Byte address in the simulated shared address space.
using Addr = std::uint64_t;

/// Cache-line number: Addr / line_size. Global (not per-node).
using LineId = std::uint64_t;

/// Synchronization variable (lock or barrier) identifier.
using SyncId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

/// Maximum processor count supported by the bitmask-based directory.
inline constexpr unsigned kMaxProcs = 64;

/// Bitmask over processors; bit p set == processor p is a member.
using ProcMask = std::uint64_t;

inline constexpr ProcMask proc_bit(NodeId p) { return ProcMask{1} << p; }

/// Mask over words within a cache line (supports lines up to 64 words).
using WordMask = std::uint64_t;

/// Integer ceiling division; used for all bandwidth/size cycle charges.
constexpr Cycle ceil_div(std::uint64_t num, std::uint64_t den) {
  return (num + den - 1) / den;
}

}  // namespace lrc
