// Conservative parallel-DES shard synchronization (DESIGN.md §10).
//
// A sharded run gives every shard its own Engine (calendar queue + pools)
// and advances all shards through barrier-aligned time windows of width L,
// the lookahead: the minimum latency any cross-shard interaction can have.
// Within a window [W, W+L) every shard executes its local events freely;
// cross-shard work produced inside the window cannot be timestamped before
// W+L, so it is published to the destination shard's inbox and drained at
// the window boundary, after a full barrier. The next window base is the
// global minimum next-event time (computed identically by every shard from
// the published per-shard minima), so runs fast-forward over idle spans
// instead of stepping empty windows.
//
// Soundness: every cross-shard effect in this simulator travels as a
// mesh::NIC message with latency >= min_hops * (switch + wire) >= L, and
// the drain-before-execute discipline means a shard never starts window W'
// until every event that could schedule into [W', W'+L) has fired and
// published. Determinism is the keyed engine's job (Engine::set_keyed):
// the total (when, key) order is a pure function of the program, so stats
// are bit-identical for any shard count and any host-thread interleaving.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace lrc::sim {

/// Sense-reversing centralized barrier for a fixed set of workers. Windows
/// are short (tens of events), so waiters spin briefly first — but only
/// briefly: with more shards than free cores (or a 1-core host), unbounded
/// spinning serializes every window through a full scheduler quantum. After
/// the spin budget, waiters park on the generation word (futex via C++20
/// atomic wait) so the releasing shard's store wakes them directly.
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned n) : n_(n) {}

  void arrive_and_wait() {
    const std::uint32_t gen = gen_.load(std::memory_order_relaxed);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      count_.store(0, std::memory_order_relaxed);
      gen_.store(gen + 1, std::memory_order_release);
      gen_.notify_all();
    } else {
      for (int spins = 0; spins < 1024; ++spins) {
        if (gen_.load(std::memory_order_acquire) != gen) return;
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      }
      while (gen_.load(std::memory_order_acquire) == gen) {
        gen_.wait(gen, std::memory_order_acquire);
      }
    }
  }

 private:
  const std::uint32_t n_;
  std::atomic<std::uint32_t> count_{0};
  std::atomic<std::uint32_t> gen_{0};
};

/// Barrier-window clock protocol over a fixed set of engines. Each worker
/// thread calls run_shard(s, ...) with its shard index; all workers step
/// through identical window sequences and exit together when every engine
/// is drained.
///
/// One barrier per window: before arriving, each shard publishes
/// min(its queue's next event, arrival times of the messages it just
/// posted) — the minimum over those per-shard values equals the true
/// global next-event time, because every in-flight message is in exactly
/// one poster's outbox. Inbox draining happens after the barrier; since a
/// peer may already be executing the next window (and posting new
/// messages) while a slow shard still drains, mailboxes must be
/// double-buffered by window parity — the barrier bounds the skew to one
/// window, so two buffers suffice (see Machine::drain_shard).
class ShardSync {
 public:
  /// `outbox_min(ctx, shard)` returns the earliest arrival time among the
  /// cross-shard messages `shard` posted in the window just executed (kNever
  /// if none); called between run_until and the barrier.
  using OutboxMinFn = Cycle (*)(void* ctx, unsigned shard);
  /// `drain(ctx, shard)` schedules into engine `shard` everything other
  /// shards posted for it during the window just completed, and flips the
  /// shard's mailbox parity; called after the barrier.
  using DrainFn = void (*)(void* ctx, unsigned shard);

  ShardSync(std::vector<Engine*> engines, Cycle lookahead)
      : engines_(std::move(engines)),
        lookahead_(lookahead),
        barrier_(static_cast<unsigned>(engines_.size())) {
    assert(lookahead_ >= 1);
    for (auto& buf : next_min_) {
      // Not resize(): atomics are immovable, but the sized constructor
      // builds them in place and vector swap moves no elements.
      std::vector<PaddedCycle> sized(engines_.size());
      buf.swap(sized);
    }
  }

  Cycle lookahead() const { return lookahead_; }

  /// Executes shard `s` to completion on the calling thread. Every shard
  /// index in [0, engines.size()) must be driven by exactly one thread.
  void run_shard(unsigned s, OutboxMinFn outbox_min, DrainFn drain,
                 void* ctx) {
    Engine& eng = *engines_[s];
    Cycle window = 0;
    // Window parity: a fast shard may publish window k+1's minimum while a
    // slow one still reduces window k's, so minima are double-buffered like
    // the mailboxes (reusing a parity takes two barrier crossings, which
    // the slow shard's missing arrival blocks).
    unsigned par = 0;
    for (;;) {
      eng.run_until(window + lookahead_);
      Cycle local = eng.next_when();
      if (const Cycle out = outbox_min(ctx, s); out < local) local = out;
      next_min_[par][s].v.store(local, std::memory_order_relaxed);
      // One barrier: minima published by all, posts complete on all sides.
      barrier_.arrive_and_wait();
      Cycle m = kNever;
      for (const auto& x : next_min_[par]) {
        const Cycle v = x.v.load(std::memory_order_relaxed);
        if (v < m) m = v;
      }
      if (m == kNever) break;  // unanimous: every queue and outbox is empty
      drain(ctx, s);
      window = m;  // fast-forward: identical on every shard
      par ^= 1;
    }
  }

 private:
  struct alignas(64) PaddedCycle {  // one cache line per shard: no false sharing
    std::atomic<Cycle> v;
  };

  std::vector<Engine*> engines_;
  const Cycle lookahead_;
  SpinBarrier barrier_;
  std::vector<PaddedCycle> next_min_[2];  // [window parity][shard]
};

}  // namespace lrc::sim
