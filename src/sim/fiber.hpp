// Cooperative user-level fibers built on POSIX ucontext. One fiber hosts
// each simulated processor's program; the event engine runs on the main
// context and resumes fibers explicitly. All switching for one simulation
// happens on one host thread (the current-fiber pointer is thread-local,
// so independent simulations may run on different threads concurrently) —
// each simulation is fully deterministic.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include <ucontext.h>

namespace lrc::sim {

class Fiber {
 public:
  /// Creates a suspended fiber that will run `fn` when first resumed.
  explicit Fiber(std::function<void()> fn, std::size_t stack_bytes = 256 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the fiber until it yields or finishes. Must be called from the
  /// main context (never from inside another fiber).
  void resume();

  /// Suspends the currently running fiber, returning control to the main
  /// context. Must be called from inside a fiber.
  static void yield();

  /// Returns the fiber currently executing, or nullptr on the main context.
  static Fiber* current();

  bool finished() const { return finished_; }

 private:
  static void trampoline();

  std::function<void()> fn_;
  std::vector<char> stack_;
  ucontext_t ctx_{};
  ucontext_t caller_{};
  bool started_ = false;
  bool finished_ = false;

  // AddressSanitizer fiber bookkeeping (unused in plain builds): this
  // fiber's fake-stack handle and the caller stack bounds for yields back.
  void* asan_fake_stack_ = nullptr;
  const void* asan_caller_stack_ = nullptr;
  std::size_t asan_caller_size_ = 0;
};

}  // namespace lrc::sim
