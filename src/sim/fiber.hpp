// Cooperative user-level fibers. One fiber hosts each simulated processor's
// program; the event engine runs on the main context and resumes fibers
// explicitly. All switching for one simulation happens on one host thread
// (the current-fiber pointer is thread-local, so independent simulations may
// run on different threads concurrently) — each simulation is fully
// deterministic.
//
// On x86-64 the switch is a hand-rolled callee-saved-register swap
// (~20 instructions, no syscall). POSIX swapcontext makes a sigprocmask
// syscall on every switch, and the simulator switches once per processor
// stall — hundreds of thousands of times per run — so this matters.
// Other architectures, and AddressSanitizer builds (where the annotated
// ucontext path is the battle-tested one), fall back to ucontext.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

// AddressSanitizer must be told about stack switches, or its shadow-stack
// bookkeeping misattributes frames and reports false positives.
#if defined(__SANITIZE_ADDRESS__)
#define LRC_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LRC_FIBER_ASAN 1
#endif
#endif

// ThreadSanitizer likewise needs explicit fiber bookkeeping
// (__tsan_create_fiber / __tsan_switch_to_fiber): without it, a stack
// switch looks like one thread's shadow stack teleporting, which corrupts
// TSan's per-thread state and yields bogus reports. TSan has no fake-stack
// machinery, so the fast-switch path stays enabled — only the annotations
// are added around each switch.
#if defined(__SANITIZE_THREAD__)
#define LRC_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LRC_FIBER_TSAN 1
#endif
#endif

#if defined(__x86_64__) && !defined(LRC_FIBER_ASAN) && \
    !defined(LRC_FIBER_FORCE_UCONTEXT)
#define LRC_FIBER_FAST_SWITCH 1
#else
#include <ucontext.h>
#endif

namespace lrc::sim {

class Fiber {
 public:
  /// Creates a suspended fiber that will run `fn` when first resumed.
  explicit Fiber(std::function<void()> fn, std::size_t stack_bytes = 256 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the fiber until it yields or finishes. Must be called from the
  /// main context (never from inside another fiber).
  void resume();

  /// Suspends the currently running fiber, returning control to the main
  /// context. Must be called from inside a fiber.
  static void yield();

  /// Returns the fiber currently executing, or nullptr on the main context.
  static Fiber* current();

  bool finished() const { return finished_; }

 private:
  static void trampoline();

  std::function<void()> fn_;
  std::vector<char> stack_;
#ifdef LRC_FIBER_FAST_SWITCH
  void* ctx_sp_ = nullptr;     // suspended fiber's stack pointer
  void* caller_sp_ = nullptr;  // main context's stack pointer while running
#else
  ucontext_t ctx_{};
  ucontext_t caller_{};
#endif
  bool started_ = false;
  bool finished_ = false;

  // AddressSanitizer fiber bookkeeping (unused in plain builds): this
  // fiber's fake-stack handle and the caller stack bounds for yields back.
  void* asan_fake_stack_ = nullptr;
  const void* asan_caller_stack_ = nullptr;
  std::size_t asan_caller_size_ = 0;

  // ThreadSanitizer fiber bookkeeping (unused in plain builds): this
  // fiber's TSan context and the caller thread's context to switch back to.
  void* tsan_fiber_ = nullptr;
  void* tsan_caller_ = nullptr;
};

}  // namespace lrc::sim
