// Deterministic discrete-event engine. Events are (time, sequence, thunk)
// triples executed in nondecreasing time order; ties break by insertion
// order, which makes every simulation run bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace lrc::sim {

class Engine {
 public:
  using Thunk = std::function<void(Cycle)>;

  /// Schedules `fn` to run at absolute time `when` (>= now()).
  void schedule(Cycle when, Thunk fn);

  /// Runs events until the queue is empty or `stop()` is called.
  void run();

  /// Runs at most `max_events` events; returns the number executed.
  std::size_t run_some(std::size_t max_events);

  void stop() { stopped_ = true; }

  /// Time of the event currently executing (or last executed).
  Cycle now() const { return now_; }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    Thunk fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace lrc::sim
