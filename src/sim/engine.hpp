// Deterministic discrete-event engine. Events are (time, sequence) keyed
// intrusive objects executed in nondecreasing time order; ties break by
// schedule order, which makes every simulation run bit-reproducible.
//
// Hot-path design (see DESIGN.md "Simulation kernel"):
//  * Pooled allocation — pooled events live in engine-owned slabs carved
//    into small fixed-size slots recycled through per-class freelists, so
//    the steady state allocates nothing. Oversized events fall back to the
//    heap; caller-owned "external" events are never allocated at all.
//  * Calendar queue — a ring of one-cycle buckets covering the near future
//    (the common case for protocol latencies) gives O(1) insert and pop;
//    events beyond the horizon wait in a (when, seq) min-heap and migrate
//    into the ring as the scan front advances.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "sim/types.hpp"

// The freelist recycles raw storage across event types; poison recycled
// slots under AddressSanitizer so stale-event pointer bugs trap instead of
// silently reading the next occupant.
#if defined(__SANITIZE_ADDRESS__)
#define LRC_ENGINE_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LRC_ENGINE_ASAN 1
#endif
#endif

#ifdef LRC_ENGINE_ASAN
#include <sanitizer/asan_interface.h>
#define LRC_POISON(p, n) __asan_poison_memory_region((p), (n))
#define LRC_UNPOISON(p, n) __asan_unpoison_memory_region((p), (n))
#else
#define LRC_POISON(p, n) (void)0
#define LRC_UNPOISON(p, n) (void)0
#endif

namespace lrc::sim {

/// Schedule-control hook for the model-checking explorer (src/mc/): when
/// installed via Engine::set_arbiter, every decision point — two or more
/// co-enabled events, i.e. pending events sharing the earliest timestamp —
/// is resolved by pick() instead of the default lowest-seq rule. The ring
/// invariant (one timestamp per bucket, appended in ascending seq) makes
/// the candidate set exactly the head bucket's chain, presented in seq
/// order. pick(idx == 0) reproduces the uninstalled behaviour exactly.
class ScheduleArbiter {
 public:
  virtual ~ScheduleArbiter() = default;

  /// Chooses which of the `n >= 2` co-enabled events (seq order) fires
  /// next. Must return an index < n. May throw to abandon the run (the
  /// engine's destructor releases every still-pending event).
  virtual std::size_t pick(Cycle when, const Event* const* cands,
                           std::size_t n) = 0;
};

/// Kernel health counters (reports, microbenches, regression tests).
struct EngineStats {
  std::uint64_t executed = 0;         // events fired
  std::uint64_t past_violations = 0;  // schedules with when < now(), clamped
  std::uint64_t pool_events = 0;      // pooled events served from a slab slot
  std::uint64_t heap_events = 0;      // oversized pooled events (plain new)
  std::uint64_t overflow_events = 0;  // inserts landing beyond the horizon
  std::uint64_t max_pending = 0;      // high-water mark of the queue
};

class Engine {
 public:
  /// Largest event the slab pool serves; bigger types fall back to the heap.
  static constexpr std::size_t kMaxPooledBytes = 256;

  Engine() = default;
  ~Engine();

  /// Releases every still-pending event (ring + overflow). The destructor
  /// does this too, but owners whose events live inside other members —
  /// Machine's Cpus hold their reusable resume events — must drain before
  /// those members die, since releasing touches the event's header.
  void drop_pending();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Schedules callable `fn(Cycle)` at absolute time `when` (>= now()).
  /// The callable is moved into a pooled event (small-buffer: no heap
  /// allocation for captures up to the largest slot class).
  template <typename F>
  void schedule(Cycle when, F&& fn) {
    using E = LambdaEvent<std::decay_t<F>>;
    schedule_make<E>(when, std::forward<F>(fn));
  }

  /// Creates a pooled event of type T in place and schedules it. The
  /// returned pointer stays valid until the event fires (it is destroyed
  /// and recycled afterwards); use it only for pre-fire mutation — e.g.
  /// NIC same-cycle batching — guarded by pending()/seq()/last_seq().
  template <typename T, typename... Args>
  T* schedule_make(Cycle when, Args&&... args) {
    static_assert(std::is_base_of_v<Event, T>);
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned event types are not supported by the pool");
    std::uint8_t slot = 0;
    void* mem = pool_alloc(sizeof(T), slot);
    T* ev = new (mem) T(std::forward<Args>(args)...);
    static_cast<Event*>(ev)->slot_ = slot;
    enqueue(ev, when);
    return ev;
  }

  /// Schedules a caller-owned event. The engine never destroys it; the
  /// caller keeps it alive until it fires and may then reschedule it.
  /// An external event must not be scheduled again while still pending.
  void schedule_external(Cycle when, Event& ev) {
    assert(!ev.pending_ && "external event already scheduled");
    ev.slot_ = kExternalSlot;
    enqueue(&ev, when);
  }

  // ---- Keyed mode (parallel shards; see src/sim/shard.hpp) ---------------
  // In keyed mode the caller supplies the tie-break id instead of the
  // engine assigning schedule order: equal-time events fire in ascending
  // key order, which a sharded run derives from structural coordinates
  // (destination node, origin node, per-origin counter) so the total event
  // order — and therefore every statistic — is invariant under the number
  // of shards and under host-thread interleaving. Keyed and sequential
  // scheduling must not be mixed on one engine.

  /// Enables keyed scheduling (sorted bucket insertion). Call before any
  /// event is scheduled.
  void set_keyed(bool on) {
    assert(pending_count_ == 0);
    keyed_ = on;
  }
  bool keyed() const { return keyed_; }

  template <typename T, typename... Args>
  T* schedule_make_keyed(Cycle when, std::uint64_t key, Args&&... args) {
    static_assert(std::is_base_of_v<Event, T>);
    static_assert(alignof(T) <= alignof(std::max_align_t));
    std::uint8_t slot = 0;
    void* mem = pool_alloc(sizeof(T), slot);
    T* ev = new (mem) T(std::forward<Args>(args)...);
    static_cast<Event*>(ev)->slot_ = slot;
    enqueue_keyed(ev, when, key);
    return ev;
  }

  void schedule_external_keyed(Cycle when, std::uint64_t key, Event& ev) {
    assert(!ev.pending_ && "external event already scheduled");
    ev.slot_ = kExternalSlot;
    enqueue_keyed(&ev, when, key);
  }

  /// Time of the earliest pending event, or kNever when the queue is
  /// empty. Does not advance the scan front.
  Cycle next_when() const;

  /// Runs events whose time is strictly below `end` (or until stop());
  /// returns the number executed. Events scheduled at >= end while running
  /// stay queued for a later window.
  std::size_t run_until(Cycle end);

  /// Runs events until the queue is empty or `stop()` is called.
  void run();

  /// Runs at most `max_events` events; returns the number executed.
  std::size_t run_some(std::size_t max_events);

  void stop() { stopped_ = true; }

  /// Time of the event currently executing (or last executed).
  Cycle now() const { return now_; }

  bool empty() const { return pending_count_ == 0; }
  std::size_t pending() const { return pending_count_; }
  std::uint64_t events_executed() const { return stats_.executed; }

  /// Schedules that tried to run in the past (clamped to now()); nonzero
  /// means a component computed an inconsistent timestamp (debug asserts).
  std::uint64_t past_violations() const { return stats_.past_violations; }

  const EngineStats& stats() const { return stats_; }

  /// Sequence id handed to the most recently scheduled event. Batching
  /// callers compare this with a held event's seq() to prove that no other
  /// event could interleave (consecutive seqs at one time fire back to
  /// back, so appending work to the held event preserves exact order).
  std::uint64_t last_seq() const { return next_seq_ - 1; }

  /// Sequence id of the event currently firing (or last fired). Together
  /// with now() this identifies the running event's (time, seq) key —
  /// the coordinates the model-checking explorer records in decision
  /// traces and the tie-order mutations test against.
  std::uint64_t current_seq() const { return cur_seq_; }

  /// Installs (or clears, with nullptr) the explorer's decision-point
  /// hook. With no arbiter installed pop order is untouched; the default
  /// path pays one pointer test per pop of a multi-event bucket.
  void set_arbiter(ScheduleArbiter* a) { arbiter_ = a; }
  ScheduleArbiter* arbiter() const { return arbiter_; }

 private:
  template <typename F>
  class LambdaEvent final : public Event {
   public:
    explicit LambdaEvent(F fn) : fn_(std::move(fn)) {}
    void fire(Cycle now) override { fn_(now); }

   private:
    F fn_;
  };

  // ---- Pool --------------------------------------------------------------
  // Slot classes cover the event sizes the simulator actually makes:
  // 64 B fits plain continuation lambdas, 128 B message-carrying events,
  // 256 B the NIC's batched arrivals. Larger types go to the heap.
  static constexpr std::size_t kSlotSizes[] = {64, 128, 256};
  static constexpr unsigned kSlotClasses = 3;
  static constexpr std::size_t kSlotsPerSlab = 512;
  static constexpr std::uint8_t kHeapSlot = 0xFE;
  static constexpr std::uint8_t kExternalSlot = 0xFF;
  static_assert(kSlotSizes[kSlotClasses - 1] == kMaxPooledBytes);

  struct FreeNode {
    FreeNode* next;
  };
  struct Slab {
    std::unique_ptr<std::byte[]> mem;
    std::size_t bytes;
  };

  /// Inline so the slot-class selection constant-folds at each
  /// schedule_make call site (sizeof(T) is a compile-time constant).
  void* pool_alloc(std::size_t bytes, std::uint8_t& slot_out) {
    unsigned c;
    if (bytes <= kSlotSizes[0]) {
      c = 0;
    } else if (bytes <= kSlotSizes[1]) {
      c = 1;
    } else if (bytes <= kSlotSizes[2]) {
      c = 2;
    } else {
      slot_out = kHeapSlot;
      ++stats_.heap_events;
      return ::operator new(bytes);
    }
    slot_out = static_cast<std::uint8_t>(c);
    ++stats_.pool_events;
    if (free_[c] == nullptr) refill_pool(c);
    FreeNode* n = free_[c];
    free_[c] = n->next;
    LRC_UNPOISON(n, kSlotSizes[c]);
    return n;
  }
  void pool_free(void* mem, std::uint8_t slot) {
    auto* n = reinterpret_cast<FreeNode*>(mem);
    n->next = free_[slot];
    free_[slot] = n;
    LRC_POISON(static_cast<std::byte*>(mem) + sizeof(FreeNode),
               kSlotSizes[slot] - sizeof(FreeNode));
  }
  /// Cold path: carves a new slab into freelist slots for class `c`.
  void refill_pool(unsigned c);

  /// Destroys a fired (or abandoned) event according to its ownership.
  void release(Event* ev);

  // ---- Calendar queue ----------------------------------------------------
  static constexpr std::size_t kBucketBits = 11;  // 2048 one-cycle buckets
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;
  static constexpr std::size_t kBucketMask = kBuckets - 1;

  struct Bucket {
    Event* head = nullptr;
    Event* tail = nullptr;
  };

  /// Guard + key assignment + insert. Clamp past times (assert in debug).
  void enqueue(Event* ev, Cycle when);
  /// Keyed-mode insert: caller-supplied tie-break key, sorted placement.
  void enqueue_keyed(Event* ev, Cycle when, std::uint64_t key);
  void bucket_append(Event* ev);
  void bucket_insert_sorted(Event* ev);
  void push_overflow(Event* ev);
  /// Moves overflow events whose time entered the horizon into the ring.
  void migrate_overflow();
  /// Next event in (when, seq) order, or nullptr. Advances base_.
  /// With an arbiter installed, multi-event buckets pop the arbiter's
  /// choice instead of the head (cold path, explorer runs only).
  Event* pop_min();
  /// Unlinks the arbiter-chosen event from the current head bucket.
  Event* pop_arbitrated(Bucket& b);

  // ---- Bucket occupancy bitmap -------------------------------------------
  // One bit per ring bucket lets pop_min jump a whole span of empty buckets
  // with a couple of countr_zero scans instead of probing them one by one
  // (the dominant cost when event times are sparse, e.g. memory latencies
  // of tens of cycles between consecutive events).
  static constexpr std::size_t kOccWords = kBuckets / 64;

  void occ_set(std::size_t bucket) {
    occ_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
  }
  void occ_clear(std::size_t bucket) {
    occ_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  }
  /// Absolute cycle of the first non-empty bucket after `from` (exclusive).
  /// Requires ring_count_ > 0.
  Cycle next_occupied(Cycle from) const {
    const std::size_t start = (from + 1) & kBucketMask;
    std::size_t w = start >> 6;
    std::uint64_t word = occ_[w] & (~std::uint64_t{0} << (start & 63));
    for (;;) {
      if (word != 0) {
        const std::size_t pos =
            (w << 6) | static_cast<std::size_t>(std::countr_zero(word));
        const Cycle delta =
            static_cast<Cycle>((pos - (from & kBucketMask)) & kBucketMask);
        assert(delta != 0 && "current bucket must be empty");
        return from + delta;
      }
      w = (w + 1) & (kOccWords - 1);
      word = occ_[w];
    }
  }

  std::array<Bucket, kBuckets> ring_{};
  std::array<std::uint64_t, kOccWords> occ_{};
  std::size_t ring_count_ = 0;
  std::vector<Event*> overflow_;  // min-heap on (when, seq)
  Cycle base_ = 0;                // scan front: all events < base_ fired
  std::size_t pending_count_ = 0;

  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t cur_seq_ = 0;
  bool keyed_ = false;
  bool stopped_ = false;
  EngineStats stats_;

  ScheduleArbiter* arbiter_ = nullptr;
  std::vector<Event*> arb_cands_;  // scratch candidate list (explorer runs)

  std::array<FreeNode*, kSlotClasses> free_{};
  std::vector<Slab> slabs_;
};

}  // namespace lrc::sim
