#include "sim/fiber.hpp"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>

#ifdef LRC_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

#ifdef LRC_FIBER_TSAN
#include <sanitizer/tsan_interface.h>
#endif

#ifdef LRC_FIBER_FAST_SWITCH
// lrc_fiber_switch(save_sp, load_sp): pushes the System V callee-saved
// registers, stores rsp to *save_sp, installs load_sp, pops the registers
// and returns — on the *other* stack. Floating-point control state (mxcsr,
// x87 cw) is deliberately not saved: the simulator never changes it, and
// glibc's swapcontext additionally makes a sigprocmask syscall per switch,
// which is exactly the cost this path removes.
extern "C" void lrc_fiber_switch(void** save_sp, void* load_sp);

asm(R"(
.text
.align 16
.globl lrc_fiber_switch
.type lrc_fiber_switch, @function
lrc_fiber_switch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size lrc_fiber_switch, .-lrc_fiber_switch
)");
#endif  // LRC_FIBER_FAST_SWITCH

namespace lrc::sim {

namespace {
// One simulation per host thread (the bench harness runs independent
// Machines on a thread pool), so the "currently running fiber" is
// per-thread state.
thread_local Fiber* g_current = nullptr;
}  // namespace

#ifdef LRC_FIBER_FAST_SWITCH

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(stack_bytes) {
  // Build an initial frame so the first lrc_fiber_switch "returns" into
  // trampoline(). Layout, from the (16-aligned) stack top downward:
  //   [top-16]  return address  -> trampoline
  //   [top-24 .. top-64]  rbp, rbx, r12..r15 slots (values don't matter)
  // The return-address slot sits at a 16-byte boundary so that after the
  // ret pops it, rsp % 16 == 8 — exactly the System V alignment a function
  // sees on entry via call.
  auto top = reinterpret_cast<std::uintptr_t>(stack_.data() + stack_.size());
  top &= ~std::uintptr_t{15};
  auto* frame = reinterpret_cast<void**>(top - 16);
  *frame = reinterpret_cast<void*>(&Fiber::trampoline);
  for (int i = 1; i <= 6; ++i) frame[-i] = nullptr;  // popped register slots
  ctx_sp_ = frame - 6;
#ifdef LRC_FIBER_TSAN
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
#ifdef LRC_FIBER_TSAN
  __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::trampoline() {
  Fiber* self = g_current;
  assert(self != nullptr);
  self->fn_();
  self->finished_ = true;
  // Dying switch back to the caller; never returns (ctx_sp_ is dead).
#ifdef LRC_FIBER_TSAN
  __tsan_switch_to_fiber(self->tsan_caller_, 0);
#endif
  lrc_fiber_switch(&self->ctx_sp_, self->caller_sp_);
  std::abort();  // unreachable
}

void Fiber::resume() {
  assert(g_current == nullptr && "resume() must be called from main context");
  assert(!finished_);
  g_current = this;
  started_ = true;
#ifdef LRC_FIBER_TSAN
  // Refreshed per resume: sharded runs drive each fiber from its shard's
  // worker thread, not necessarily the thread that constructed it.
  tsan_caller_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  lrc_fiber_switch(&caller_sp_, ctx_sp_);
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  assert(self != nullptr && "yield() must be called from inside a fiber");
  g_current = nullptr;
#ifdef LRC_FIBER_TSAN
  __tsan_switch_to_fiber(self->tsan_caller_, 0);
#endif
  lrc_fiber_switch(&self->ctx_sp_, self->caller_sp_);
  g_current = self;
}

#else  // ucontext fallback (non-x86-64, or AddressSanitizer builds)

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(stack_bytes) {
  if (getcontext(&ctx_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  ctx_.uc_stack.ss_sp = stack_.data();
  ctx_.uc_stack.ss_size = stack_.size();
  ctx_.uc_link = &caller_;  // return to caller context on function exit
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
#ifdef LRC_FIBER_TSAN
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  // A fiber destroyed while suspended simply abandons its stack; the
  // engine guarantees all program fibers run to completion before teardown.
#ifdef LRC_FIBER_TSAN
  __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::trampoline() {
  Fiber* self = g_current;
  assert(self != nullptr);
#ifdef LRC_FIBER_ASAN
  // First entry onto the fiber stack: complete the switch begun in resume()
  // and capture the caller's stack bounds for the switches back.
  __sanitizer_finish_switch_fiber(nullptr, &self->asan_caller_stack_,
                                  &self->asan_caller_size_);
#endif
  self->fn_();
  self->finished_ = true;
#ifdef LRC_FIBER_ASAN
  // Dying switch back to the caller; nullptr releases this fiber's fake
  // stack.
  __sanitizer_start_switch_fiber(nullptr, self->asan_caller_stack_,
                                 self->asan_caller_size_);
#endif
#ifdef LRC_FIBER_TSAN
  __tsan_switch_to_fiber(self->tsan_caller_, 0);
#endif
  // Falling off the end returns to uc_link (the caller_ context captured by
  // the most recent resume()).
}

void Fiber::resume() {
  assert(g_current == nullptr && "resume() must be called from main context");
  assert(!finished_);
  g_current = this;
  started_ = true;
#ifdef LRC_FIBER_ASAN
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, stack_.data(), stack_.size());
#endif
#ifdef LRC_FIBER_TSAN
  tsan_caller_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  swapcontext(&caller_, &ctx_);
#ifdef LRC_FIBER_ASAN
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  assert(self != nullptr && "yield() must be called from inside a fiber");
  g_current = nullptr;
#ifdef LRC_FIBER_ASAN
  __sanitizer_start_switch_fiber(&self->asan_fake_stack_,
                                 self->asan_caller_stack_,
                                 self->asan_caller_size_);
#endif
#ifdef LRC_FIBER_TSAN
  __tsan_switch_to_fiber(self->tsan_caller_, 0);
#endif
  swapcontext(&self->ctx_, &self->caller_);
#ifdef LRC_FIBER_ASAN
  __sanitizer_finish_switch_fiber(self->asan_fake_stack_,
                                  &self->asan_caller_stack_,
                                  &self->asan_caller_size_);
#endif
  g_current = self;
}

#endif  // LRC_FIBER_FAST_SWITCH

Fiber* Fiber::current() { return g_current; }

}  // namespace lrc::sim
