#include "sim/fiber.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace lrc::sim {

namespace {
// Single-threaded simulator: plain globals are sufficient and cheaper than
// thread_local on the hot resume/yield path.
Fiber* g_current = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(stack_bytes) {
  if (getcontext(&ctx_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  ctx_.uc_stack.ss_sp = stack_.data();
  ctx_.uc_stack.ss_size = stack_.size();
  ctx_.uc_link = &caller_;  // return to caller context on function exit
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

Fiber::~Fiber() {
  // A fiber destroyed while suspended simply abandons its stack; the
  // engine guarantees all program fibers run to completion before teardown.
}

void Fiber::trampoline() {
  Fiber* self = g_current;
  assert(self != nullptr);
  self->fn_();
  self->finished_ = true;
  // Falling off the end returns to uc_link (the caller_ context captured by
  // the most recent resume()).
}

void Fiber::resume() {
  assert(g_current == nullptr && "resume() must be called from main context");
  assert(!finished_);
  g_current = this;
  started_ = true;
  swapcontext(&caller_, &ctx_);
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  assert(self != nullptr && "yield() must be called from inside a fiber");
  g_current = nullptr;
  swapcontext(&self->ctx_, &self->caller_);
  g_current = self;
}

Fiber* Fiber::current() { return g_current; }

}  // namespace lrc::sim
