#include "sim/fiber.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>

// AddressSanitizer must be told about stack switches, or its shadow-stack
// bookkeeping misattributes frames and reports false positives. The
// annotations below bracket every swapcontext in resume()/yield().
#if defined(__SANITIZE_ADDRESS__)
#define LRC_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LRC_FIBER_ASAN 1
#endif
#endif

#ifdef LRC_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

namespace lrc::sim {

namespace {
// One simulation per host thread (the bench harness runs independent
// Machines on a thread pool), so the "currently running fiber" is
// per-thread state.
thread_local Fiber* g_current = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(stack_bytes) {
  if (getcontext(&ctx_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  ctx_.uc_stack.ss_sp = stack_.data();
  ctx_.uc_stack.ss_size = stack_.size();
  ctx_.uc_link = &caller_;  // return to caller context on function exit
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

Fiber::~Fiber() {
  // A fiber destroyed while suspended simply abandons its stack; the
  // engine guarantees all program fibers run to completion before teardown.
}

void Fiber::trampoline() {
  Fiber* self = g_current;
  assert(self != nullptr);
#ifdef LRC_FIBER_ASAN
  // First entry onto the fiber stack: complete the switch begun in resume()
  // and capture the caller's stack bounds for the switches back.
  __sanitizer_finish_switch_fiber(nullptr, &self->asan_caller_stack_,
                                  &self->asan_caller_size_);
#endif
  self->fn_();
  self->finished_ = true;
#ifdef LRC_FIBER_ASAN
  // Dying switch back to the caller; nullptr releases this fiber's fake
  // stack.
  __sanitizer_start_switch_fiber(nullptr, self->asan_caller_stack_,
                                 self->asan_caller_size_);
#endif
  // Falling off the end returns to uc_link (the caller_ context captured by
  // the most recent resume()).
}

void Fiber::resume() {
  assert(g_current == nullptr && "resume() must be called from main context");
  assert(!finished_);
  g_current = this;
  started_ = true;
#ifdef LRC_FIBER_ASAN
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, stack_.data(), stack_.size());
#endif
  swapcontext(&caller_, &ctx_);
#ifdef LRC_FIBER_ASAN
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  assert(self != nullptr && "yield() must be called from inside a fiber");
  g_current = nullptr;
#ifdef LRC_FIBER_ASAN
  __sanitizer_start_switch_fiber(&self->asan_fake_stack_,
                                 self->asan_caller_stack_,
                                 self->asan_caller_size_);
#endif
  swapcontext(&self->ctx_, &self->caller_);
#ifdef LRC_FIBER_ASAN
  __sanitizer_finish_switch_fiber(self->asan_fake_stack_,
                                  &self->asan_caller_stack_,
                                  &self->asan_caller_size_);
#endif
  g_current = self;
}

Fiber* Fiber::current() { return g_current; }

}  // namespace lrc::sim
