#include "sim/engine.hpp"

#include <algorithm>

namespace lrc::sim {

namespace {

// Min-heap ordering for the overflow queue: the heap "top" is the event
// with the smallest (when, seq) — the same total order the ring enforces.
struct OverflowAfter {
  bool operator()(const Event* a, const Event* b) const {
    if (a->when() != b->when()) return a->when() > b->when();
    return a->seq() > b->seq();
  }
};

}  // namespace

Engine::~Engine() {
  // Destroy events still pending (stopped engines, exception unwinds) so
  // pooled/heap event destructors run exactly once.
  drop_pending();
#ifdef LRC_ENGINE_ASAN
  for (auto& slab : slabs_) LRC_UNPOISON(slab.mem.get(), slab.bytes);
#endif
}

void Engine::drop_pending() {
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    for (Event* ev = ring_[i].head; ev != nullptr;) {
      Event* next = ev->next_;
      ev->pending_ = false;
      release(ev);
      ev = next;
    }
    ring_[i].head = ring_[i].tail = nullptr;
    occ_clear(i);
  }
  ring_count_ = 0;
  for (Event* ev : overflow_) {
    ev->pending_ = false;
    release(ev);
  }
  overflow_.clear();
}

void Engine::enqueue(Event* ev, Cycle when) {
  assert(!keyed_ && "keyed engines must use the *_keyed schedule calls");
  assert(when >= now_ && "cannot schedule events in the past");
  if (when < now_) {
    // Release builds: clamp to now. The event still runs after everything
    // already queued for this cycle (its seq is younger), and the violation
    // is counted so reports can surface the inconsistent timestamp.
    ++stats_.past_violations;
    when = now_;
  }
  ev->when_ = when;
  ev->seq_ = next_seq_++;
  ev->pending_ = true;
  ev->next_ = nullptr;
  if (when - base_ < kBuckets) {
    bucket_append(ev);
    ++ring_count_;
  } else {
    push_overflow(ev);
    ++stats_.overflow_events;
  }
  ++pending_count_;
  if (pending_count_ > stats_.max_pending) stats_.max_pending = pending_count_;
}

void Engine::enqueue_keyed(Event* ev, Cycle when, std::uint64_t key) {
  assert(keyed_ && "enqueue_keyed requires set_keyed(true)");
  assert(when >= now_ && "cannot schedule events in the past");
  if (when < now_) {
    ++stats_.past_violations;
    when = now_;
  }
  ev->when_ = when;
  ev->seq_ = key;
  ev->pending_ = true;
  ev->next_ = nullptr;
  if (when - base_ < kBuckets) {
    bucket_insert_sorted(ev);
    ++ring_count_;
  } else {
    push_overflow(ev);
    ++stats_.overflow_events;
  }
  ++pending_count_;
  if (pending_count_ > stats_.max_pending) stats_.max_pending = pending_count_;
}

void Engine::bucket_append(Event* ev) {
  Bucket& b = ring_[ev->when_ & kBucketMask];
  // Ring invariant: a bucket holds exactly one timestamp (width 1, single
  // lap), and arrivals append in seq order — direct schedules carry ever-
  // increasing seqs, and overflow migration completes before any direct
  // schedule can target the same cycle.
  assert(b.tail == nullptr ||
         (b.tail->when_ == ev->when_ && b.tail->seq_ < ev->seq_));
  if (b.tail != nullptr) {
    b.tail->next_ = ev;
  } else {
    b.head = ev;
    occ_set(ev->when_ & kBucketMask);
  }
  b.tail = ev;
}

void Engine::bucket_insert_sorted(Event* ev) {
  Bucket& b = ring_[ev->when_ & kBucketMask];
  assert(b.tail == nullptr || b.tail->when_ == ev->when_);
  if (b.head == nullptr) {
    b.head = b.tail = ev;
    occ_set(ev->when_ & kBucketMask);
    return;
  }
  // Keyed mode: keys arrive in arbitrary order (they encode structural
  // coordinates, not schedule order), so place the event by ascending key.
  // Chains are short — a handful of same-cycle events per shard.
  if (b.tail->seq_ < ev->seq_) {  // common case: largest key so far
    b.tail->next_ = ev;
    b.tail = ev;
    return;
  }
  if (ev->seq_ < b.head->seq_) {
    ev->next_ = b.head;
    b.head = ev;
    return;
  }
  Event* prev = b.head;
  while (prev->next_ != nullptr && prev->next_->seq_ < ev->seq_) {
    prev = prev->next_;
  }
  assert(prev->next_ == nullptr || prev->next_->seq_ != ev->seq_);
  ev->next_ = prev->next_;
  prev->next_ = ev;
}

void Engine::push_overflow(Event* ev) {
  overflow_.push_back(ev);
  std::push_heap(overflow_.begin(), overflow_.end(), OverflowAfter{});
}

void Engine::migrate_overflow() {
  while (!overflow_.empty() && overflow_.front()->when() - base_ < kBuckets) {
    std::pop_heap(overflow_.begin(), overflow_.end(), OverflowAfter{});
    Event* ev = overflow_.back();
    overflow_.pop_back();
    if (keyed_) {
      bucket_insert_sorted(ev);
    } else {
      bucket_append(ev);
    }
    ++ring_count_;
  }
}

Event* Engine::pop_min() {
  if (pending_count_ == 0) return nullptr;
  for (;;) {
    if (ring_count_ == 0) {
      // Nothing inside the horizon: jump the scan front to the earliest
      // overflow event instead of walking empty buckets. Common case
      // (sparse far-future schedules): that event is the only one within
      // its lap — pop it straight off the heap. Identical outcome to
      // migrating: the migration would move exactly this event, and the
      // bucket pop would return it immediately.
      Event* front = overflow_.front();
      const std::size_t n = overflow_.size();
      // Smallest `when` among the rest = min over the heap root's children.
      Cycle second = front->when() + kBuckets;  // sentinel: nothing else
      if (n > 1) second = overflow_[1]->when();
      if (n > 2 && overflow_[2]->when() < second) second = overflow_[2]->when();
      if (second - front->when() >= kBuckets) {
        std::pop_heap(overflow_.begin(), overflow_.end(), OverflowAfter{});
        overflow_.pop_back();
        base_ = front->when();
        --pending_count_;
        return front;
      }
      base_ = front->when();
      migrate_overflow();
    }
    Bucket& b = ring_[base_ & kBucketMask];
    if (b.head != nullptr) {
      // Schedule-control hook: with an arbiter installed every ring pop is
      // routed through it. Multi-candidate buckets are the decision points;
      // singleton pops are reported too (pick must return 0 for n == 1) so
      // an explorer can prune sleep-blocked paths. The overflow direct-pop
      // above bypasses this: such an event is alone within a whole lap, so
      // it was never co-enabled with anything and cannot be in a sleep set.
      if (arbiter_ != nullptr) {
        return pop_arbitrated(b);
      }
      Event* ev = b.head;
      b.head = ev->next_;
      if (b.head == nullptr) {
        b.tail = nullptr;
        occ_clear(base_ & kBucketMask);
      }
      --ring_count_;
      --pending_count_;
      return ev;
    }
    // Current bucket empty: jump the scan front to the next occupied
    // bucket, stopping at the overflow trigger — the first base_ value
    // that brings the earliest overflow event inside the horizon — so
    // migration happens at exactly the same scan position as a
    // one-bucket-at-a-time advance would make it (bucket seq order, and
    // therefore pop order, is identical).
    const Cycle next = next_occupied(base_);
    if (!overflow_.empty()) {
      const Cycle trigger = overflow_.front()->when() - (kBuckets - 1);
      if (trigger <= next) {
        base_ = trigger;
        migrate_overflow();
        continue;
      }
    }
    base_ = next;
  }
}

Event* Engine::pop_arbitrated(Bucket& b) {
  arb_cands_.clear();
  for (Event* ev = b.head; ev != nullptr; ev = ev->next_) {
    arb_cands_.push_back(ev);
  }
  const std::size_t idx = arbiter_->pick(
      base_, const_cast<const Event* const*>(arb_cands_.data()),
      arb_cands_.size());
  assert(idx < arb_cands_.size() && "arbiter returned an out-of-range pick");
  Event* ev = arb_cands_[idx];
  // Unlink `ev`; the remaining chain keeps its relative (seq) order, so a
  // pick of index 0 leaves behaviour identical to the default pop.
  if (ev == b.head) {
    b.head = ev->next_;
  } else {
    Event* prev = b.head;
    while (prev->next_ != ev) prev = prev->next_;
    prev->next_ = ev->next_;
    if (b.tail == ev) b.tail = prev;
  }
  if (b.head == nullptr) {
    b.tail = nullptr;
    occ_clear(base_ & kBucketMask);
  }
  --ring_count_;
  --pending_count_;
  return ev;
}

Cycle Engine::next_when() const {
  if (pending_count_ == 0) return kNever;
  Cycle best = kNever;
  if (ring_count_ > 0) {
    const Bucket& b = ring_[base_ & kBucketMask];
    // Single-lap invariant: a non-empty bucket at the scan front holds
    // exactly the timestamp base_.
    best = b.head != nullptr ? b.head->when_ : next_occupied(base_);
  }
  if (!overflow_.empty() && overflow_.front()->when() < best) {
    best = overflow_.front()->when();
  }
  return best;
}

std::size_t Engine::run_until(Cycle end) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    if (pending_count_ == 0 || next_when() >= end) break;
    Event* ev = pop_min();
    now_ = ev->when_;
    cur_seq_ = ev->seq_;
    ev->pending_ = false;
    ++stats_.executed;
    ev->fire(now_);
    release(ev);
    ++n;
  }
  return n;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_) {
    Event* ev = pop_min();
    if (ev == nullptr) break;
    now_ = ev->when_;
    cur_seq_ = ev->seq_;
    ev->pending_ = false;
    ++stats_.executed;
    ev->fire(now_);
    release(ev);
  }
}

std::size_t Engine::run_some(std::size_t max_events) {
  stopped_ = false;
  std::size_t n = 0;
  while (n < max_events && !stopped_) {
    Event* ev = pop_min();
    if (ev == nullptr) break;
    now_ = ev->when_;
    cur_seq_ = ev->seq_;
    ev->pending_ = false;
    ++stats_.executed;
    ev->fire(now_);
    release(ev);
    ++n;
  }
  return n;
}

void Engine::release(Event* ev) {
  const std::uint8_t slot = ev->slot_;
  if (slot == kExternalSlot) return;
  ev->~Event();
  if (slot == kHeapSlot) {
    ::operator delete(static_cast<void*>(ev));
  } else {
    pool_free(static_cast<void*>(ev), slot);
  }
}

void Engine::refill_pool(unsigned c) {
  const std::size_t slot = kSlotSizes[c];
  Slab slab{std::make_unique<std::byte[]>(slot * kSlotsPerSlab),
            slot * kSlotsPerSlab};
  std::byte* base = slab.mem.get();
  slabs_.push_back(std::move(slab));
  // Chain in address order (LIFO reuse keeps recently-fired slots hot).
  for (std::size_t i = kSlotsPerSlab; i-- > 0;) {
    auto* node = reinterpret_cast<FreeNode*>(base + i * slot);
    node->next = free_[c];
    free_[c] = node;
    LRC_POISON(base + i * slot + sizeof(FreeNode), slot - sizeof(FreeNode));
  }
}

}  // namespace lrc::sim
