#include "sim/engine.hpp"

#include <cassert>
#include <utility>

namespace lrc::sim {

void Engine::schedule(Cycle when, Thunk fn) {
  assert(when >= now_ && "cannot schedule events in the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Engine::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the thunk handle (shared state inside std::function is cheap
    // relative to simulated work).
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    ev.fn(now_);
  }
}

std::size_t Engine::run_some(std::size_t max_events) {
  stopped_ = false;
  std::size_t n = 0;
  while (n < max_events && !queue_.empty() && !stopped_) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    ev.fn(now_);
    ++n;
  }
  return n;
}

}  // namespace lrc::sim
