#include "sim/trace.hpp"

#include <sstream>

namespace lrc::sim {

void Trace::enable(std::size_t capacity) {
  enabled_ = true;
  capacity_ = capacity;
  entries_.reserve(capacity < 4096 ? capacity : 4096);
}

void Trace::record_slow(const mesh::Message& msg, Cycle when) {
  if (entries_.size() == capacity_) {
    // Keep the most recent window: drop the older half in one move.
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(capacity_ / 2));
    dropped_ += capacity_ / 2;
  }
  entries_.push_back(Entry{when, msg.kind, msg.src, msg.dst, msg.line,
                           msg.tag, msg.payload_bytes});
}

void Trace::clear() {
  entries_.clear();
  dropped_ = 0;
}

std::vector<Trace::Entry> Trace::for_line(LineId line) const {
  std::vector<Entry> out;
  for (const auto& e : entries_) {
    if (e.line == line) out.push_back(e);
  }
  return out;
}

std::vector<Trace::Entry> Trace::of_kind(mesh::MsgKind kind) const {
  std::vector<Entry> out;
  for (const auto& e : entries_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::string Trace::dump(std::size_t max_entries) const {
  std::ostringstream os;
  const std::size_t start =
      entries_.size() > max_entries ? entries_.size() - max_entries : 0;
  for (std::size_t i = start; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    os << '[' << e.when << "] " << mesh::to_string(e.kind) << ' ' << e.src
       << "->" << e.dst << " line=" << e.line;
    if (e.tag != 0) os << " tag=" << e.tag;
    if (e.payload_bytes != 0) os << " payload=" << e.payload_bytes;
    os << '\n';
  }
  return os.str();
}

}  // namespace lrc::sim
