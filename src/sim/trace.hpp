// Message tracing: an optional bounded in-memory log of every message
// delivery, for protocol debugging and for tests that assert ordering
// properties. Disabled by default (zero overhead beyond a branch).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/message.hpp"
#include "sim/types.hpp"

namespace lrc::sim {

class Trace {
 public:
  struct Entry {
    Cycle when = 0;
    mesh::MsgKind kind{};
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    LineId line = 0;
    std::uint64_t tag = 0;
    std::uint32_t payload_bytes = 0;
  };

  /// Starts recording, keeping at most `capacity` most-recent entries.
  void enable(std::size_t capacity = 1 << 16);
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Called for every delivered message; the disabled path must stay an
  /// inline branch (tracing is off in normal runs).
  void record(const mesh::Message& msg, Cycle when) {
    if (enabled_) record_slow(msg, when);
  }

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t dropped() const { return dropped_; }
  void clear();

  /// Entries concerning one line, in delivery order.
  std::vector<Entry> for_line(LineId line) const;
  /// Entries of one kind, in delivery order.
  std::vector<Entry> of_kind(mesh::MsgKind kind) const;

  /// Human-readable rendering of the last `max_entries` entries.
  std::string dump(std::size_t max_entries = 64) const;

 private:
  void record_slow(const mesh::Message& msg, Cycle when);

  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::size_t dropped_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace lrc::sim
