// Intrusive simulation events: the unit of work the engine's calendar queue
// holds. An Event carries its own queue key (when, seq) and bucket link, so
// scheduling allocates nothing beyond the event object itself — and usually
// not even that, because the engine recycles pooled events through a
// freelist (see Engine::schedule_make).
//
// Ownership models:
//  * pooled   — created via Engine::schedule_make<T>() / Engine::schedule();
//               storage comes from the engine's slab pool (or the heap for
//               oversized types) and is destroyed and recycled after fire().
//  * external — a caller-owned object (typically a long-lived member, e.g.
//               a Cpu's resume event) passed to Engine::schedule_external();
//               the engine never destroys it, and the caller may reschedule
//               it each time it fires.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace lrc::sim {

class Engine;

class Event {
 public:
  virtual ~Event() = default;

  /// Runs the event. `now` equals when() (or the clamped schedule time).
  virtual void fire(Cycle now) = 0;

  /// Scheduled execution time. Valid while pending().
  Cycle when() const { return when_; }

  /// Deterministic tie-break id: assigned monotonically at schedule time,
  /// so equal-time events run in schedule order.
  std::uint64_t seq() const { return seq_; }

  /// True from schedule until just before fire(). External events may be
  /// rescheduled only while not pending.
  bool pending() const { return pending_; }

 private:
  friend class Engine;

  Event* next_ = nullptr;  // intrusive link within a calendar bucket
  Cycle when_ = 0;
  std::uint64_t seq_ = 0;
  std::uint8_t slot_ = 0;  // pool slot class; engine-internal
  bool pending_ = false;
};

}  // namespace lrc::sim
