// Intrusive simulation events: the unit of work the engine's calendar queue
// holds. An Event carries its own queue key (when, seq) and bucket link, so
// scheduling allocates nothing beyond the event object itself — and usually
// not even that, because the engine recycles pooled events through a
// freelist (see Engine::schedule_make).
//
// Ownership models:
//  * pooled   — created via Engine::schedule_make<T>() / Engine::schedule();
//               storage comes from the engine's slab pool (or the heap for
//               oversized types) and is destroyed and recycled after fire().
//  * external — a caller-owned object (typically a long-lived member, e.g.
//               a Cpu's resume event) passed to Engine::schedule_external();
//               the engine never destroys it, and the caller may reschedule
//               it each time it fires.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace lrc::sim {

class Engine;

class Event {
 public:
  /// Actor annotation value meaning "unknown" (see mc_actor below).
  static constexpr std::uint16_t kNoActor = 0xFFFF;

  virtual ~Event() = default;

  /// Runs the event. `now` equals when() (or the clamped schedule time).
  virtual void fire(Cycle now) = 0;

  /// Scheduled execution time. Valid while pending().
  Cycle when() const { return when_; }

  /// Deterministic tie-break id: assigned monotonically at schedule time,
  /// so equal-time events run in schedule order.
  std::uint64_t seq() const { return seq_; }

  /// True from schedule until just before fire(). External events may be
  /// rescheduled only while not pending.
  bool pending() const { return pending_; }

  /// Model-checker annotation (src/mc/): the node whose simulator state
  /// this event mutates when fired, or kNoActor when that is not statically
  /// known. The schedule explorer's independence relation treats
  /// unknown-actor events as dependent on everything, so leaving the
  /// default is always sound — tagging merely sharpens the reduction.
  void set_mc_actor(std::uint16_t node, bool resumes_fiber) {
    mc_actor_ = node;
    mc_fiber_ = resumes_fiber;
  }
  std::uint16_t mc_actor() const { return mc_actor_; }
  /// True if firing resumes workload code (a Cpu fiber), which may touch
  /// globally shared state (backing store, litmus registers) in addition
  /// to the actor node's hardware.
  bool mc_fiber() const { return mc_fiber_; }

  /// Model-checker annotation (src/mc/): for a network-delivery event, the
  /// sending node — together with mc_actor (the sink) it names the
  /// point-to-point channel. The modeled mesh preserves per-channel FIFO
  /// order, so the explorer never inverts two same-cycle candidates with
  /// equal (mc_src, mc_actor); kNoActor (the default) means "not a channel
  /// delivery" and imposes no ordering constraint.
  void set_mc_src(std::uint16_t node) { mc_src_ = node; }
  std::uint16_t mc_src() const { return mc_src_; }

 private:
  friend class Engine;

  Event* next_ = nullptr;  // intrusive link within a calendar bucket
  Cycle when_ = 0;
  std::uint64_t seq_ = 0;
  std::uint16_t mc_actor_ = kNoActor;  // explorer footprint tag (see above)
  std::uint16_t mc_src_ = kNoActor;    // explorer channel tag (see above)
  std::uint8_t slot_ = 0;  // pool slot class; engine-internal
  bool pending_ = false;
  bool mc_fiber_ = false;  // explorer: fires workload code
};

}  // namespace lrc::sim
