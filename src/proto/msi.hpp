// Shared implementation for the MSI-style directory protocols: the
// sequentially-consistent baseline (SC) and DASH-like eager release
// consistency (ERC). Both use a three-state directory (Uncached / Shared /
// Dirty), eager invalidations collected at the home node, 3-hop forwarding
// for dirty lines, and a write-back cache. They differ only on the
// processor side: SC stalls on every miss including writes; ERC retires
// writes through a write buffer and stalls only at releases.
#pragma once

#include "proto/base.hpp"

namespace lrc::proto {

class MsiBase : public ProtocolBase {
 public:
  explicit MsiBase(core::Machine& m);

  CpuOp cpu_read(core::Cpu& cpu, Addr a, std::uint32_t bytes) override;
  CpuOp acquire(core::Cpu& cpu, SyncId s) override;
  CpuOp release(core::Cpu& cpu, SyncId s) override;
  CpuOp barrier(core::Cpu& cpu, SyncId s) override;
  CpuOp finalize(core::Cpu& cpu) override;
  Cycle handle(const mesh::Message& msg, Cycle start) override;

  /// Victim-sink target: a line left `p`'s private stack. Writes back
  /// dirty data; clean evictions are silent (DASH-style stale sharers).
  void evict_victim(NodeId p, const cache::CacheLine& victim,
                    Cycle at) override;

 protected:
  Cycle dir_cost() const { return params().erc_dir_cost; }

  /// Waits until the write buffer and transaction table are empty — the
  /// eager release condition. The write-through variant also drains its
  /// coalescing buffer and write-through acknowledgements. Awaited from
  /// release/barrier/finalize ops.
  virtual CpuOp drain(core::Cpu& cpu);

  /// Starts a write transaction for `line` (op context): sends
  /// kUpgradeReq when the line is present read-only, else kReadExReq.
  /// `wb_slot` (-1 for SC) ties a write-buffer slot to the completion.
  void start_write_tx(core::Cpu& cpu, LineId line, WordMask words,
                      int wb_slot, bool present_ro);

  // Home-side handlers. Each returns protocol-processor cost.
  Cycle home_read(const mesh::Message& msg, Cycle start);
  Cycle home_write(const mesh::Message& msg, Cycle start);
  Cycle home_writeback(const mesh::Message& msg, Cycle start);
  Cycle home_sharing_wb(const mesh::Message& msg, Cycle start);
  Cycle home_inval_ack(const mesh::Message& msg, Cycle start);

  // Node-side handlers.
  Cycle node_inval(const mesh::Message& msg, Cycle start);
  Cycle node_forward(const mesh::Message& msg, Cycle start);
  Cycle node_fill(const mesh::Message& msg, Cycle start);
  Cycle node_upgrade_ack(const mesh::Message& msg, Cycle start);

  /// Installs `line` at `p`, writing back a dirty victim. Returns completion.
  virtual void do_fill(NodeId p, LineId line, cache::LineState st, Cycle at);

  /// Commits a completed write: marks cache words dirty and records the
  /// write with the miss classifier (write-back data path; the
  /// write-through variant streams words to memory instead).
  virtual void commit_write(NodeId p, LineId line, WordMask words);

  void unbusy_and_replay(DirEntry& e, LineId line, Cycle at);
};

/// Sequential consistency: every access stalls until globally performed.
class Sc final : public MsiBase {
 public:
  explicit Sc(core::Machine& m) : MsiBase(m) {}
  std::string_view name() const override { return "SC"; }
  CpuOp cpu_write(core::Cpu& cpu, Addr a, std::uint32_t bytes) override;
};

/// Eager release consistency (DASH-like): writes retire through a
/// coalescing write buffer with read bypass (SystemParams::
/// write_buffer_entries, 4 in the paper); releases stall until all
/// outstanding writes have performed.
class Erc : public MsiBase {
 public:
  explicit Erc(core::Machine& m) : MsiBase(m) {}
  std::string_view name() const override { return "ERC"; }
  CpuOp cpu_write(core::Cpu& cpu, Addr a, std::uint32_t bytes) override;
};

/// Ablation variant (paper §4.2 discussion): eager release consistency
/// with the lazy protocol's write-through data path — a write-through
/// cache plus the coalescing buffer (SystemParams::coalescing_entries,
/// 16 in the paper) — instead of write-back.
/// The directory behaviour (eager invalidations, single writer, 3-hop
/// forwards) is unchanged; only the data path differs. The paper argues
/// this "would be detrimental to the performance of other applications";
/// this protocol exists to measure that claim.
class ErcWt final : public Erc {
 public:
  explicit ErcWt(core::Machine& m) : Erc(m) {}
  std::string_view name() const override { return "ERC-WT"; }
  CpuOp release(core::Cpu& cpu, SyncId s) override;
  CpuOp barrier(core::Cpu& cpu, SyncId s) override;
  CpuOp finalize(core::Cpu& cpu) override;
  Cycle handle(const mesh::Message& msg, Cycle start) override;

  /// Write-through victims owe any coalescing-buffer words to memory
  /// (they carry no dirty data — the cache never holds dirty words).
  void evict_victim(NodeId p, const cache::CacheLine& victim,
                    Cycle at) override;

 protected:
  CpuOp drain(core::Cpu& cpu) override;
  void commit_write(NodeId p, LineId line, WordMask words) override;

 private:
  void flush_cb(core::Cpu& cpu);
  void send_write_through(NodeId p, LineId line, WordMask words, Cycle at);
};

}  // namespace lrc::proto
