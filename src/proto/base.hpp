// Shared plumbing for all protocol implementations: message construction,
// address helpers, classifier hooks, and the per-node sync-completion flag
// every protocol uses to block a processor across lock/barrier traffic.
#pragma once

#include <vector>

#include "core/cpu.hpp"
#include "core/machine.hpp"
#include "proto/directory.hpp"
#include "proto/protocol.hpp"
#include "proto/sync_manager.hpp"

namespace lrc::proto {

class ProtocolBase : public Protocol {
 public:
  explicit ProtocolBase(core::Machine& m);

  // Introspection for tests.
  Directory& directory() { return dir_; }

 protected:
  const core::SystemParams& params() const { return m_.params(); }
  std::uint32_t line_bytes() const { return params().line_bytes; }

  LineId line_of(Addr a) const { return m_.amap().line_of(a); }
  NodeId home_of(LineId l) { return m_.amap().home_of_line(l); }
  /// Home resolution on a processor-initiated miss: under the first-touch
  /// policy the first accessor becomes the page's home.
  NodeId home_of(LineId l, NodeId toucher) {
    return m_.amap().home_of_line(l, toucher);
  }
  unsigned word_of(Addr a) const { return m_.amap().word_in_line(a); }
  WordMask words_of(Addr a, std::uint32_t bytes) const {
    return m_.amap().word_mask(a, bytes);
  }

  /// Builds and sends a message at time `t`. Inline: this sits on the
  /// per-message hot path of every protocol.
  void send(Cycle t, mesh::MsgKind kind, NodeId src, NodeId dst, LineId line,
            std::uint32_t payload_bytes = 0, std::uint64_t tag = 0,
            WordMask words = 0, NodeId requester = kInvalidNode) {
    mesh::Message msg;
    msg.kind = kind;
    msg.src = src;
    msg.dst = dst;
    msg.line = line;
    msg.payload_bytes = payload_bytes;
    msg.tag = tag;
    msg.words = words;
    msg.requester = requester;
    m_.nic().send(t, msg);
  }

  /// Cost of moving a full line across the node bus (cache fill).
  Cycle bus_fill_cost() const {
    return ceil_div(line_bytes(), params().bus_bandwidth);
  }

  /// Full-line memory access at `node` starting no earlier than `at`.
  /// Routes through the shared LLC when one is configured (reads that hit
  /// a slice skip DRAM; writes always reach DRAM so LLC copies stay
  /// clean), otherwise straight to DRAM.
  Cycle dram_line(NodeId node, LineId line, Cycle at, bool write) {
    return m_.mem_line(node, line, at, write);
  }

  /// Partial-line write-through to memory (LLC-aware, write-update).
  Cycle mem_write_through(NodeId node, LineId line, Cycle at,
                          std::uint32_t bytes) {
    return m_.mem_partial_write(node, line, at, bytes);
  }

  // Per-node flag set by sync-completion callbacks; the blocked fiber's
  // wait loop tests it.
  bool sync_done(NodeId p) const { return sync_done_[p]; }
  void set_sync_done(NodeId p, bool v) { sync_done_[p] = v; }

  core::Machine& m_;
  Directory dir_;

 private:
  std::vector<std::uint8_t> sync_done_;
};

// Message tag bits shared by the protocol implementations.
inline constexpr std::uint64_t kTagNeedData = 1;  // WriteReq wants the line
inline constexpr std::uint64_t kTagWeak = 2;      // reply: line is Weak
inline constexpr std::uint64_t kTagAcked = 4;     // reply carries WriteAck
inline constexpr std::uint64_t kTagNoAck = 8;     // notice needs no ack

}  // namespace lrc::proto
