#include "core/params.hpp"
#include "proto/lrc.hpp"
#include "proto/msi.hpp"
#include "proto/protocol.hpp"

namespace lrc::proto {

std::unique_ptr<Protocol> make_protocol(core::ProtocolKind kind,
                                        core::Machine& m) {
  switch (kind) {
    case core::ProtocolKind::kSC:
      return std::make_unique<Sc>(m);
    case core::ProtocolKind::kERC:
      return std::make_unique<Erc>(m);
    case core::ProtocolKind::kLRC:
      return std::make_unique<Lrc>(m);
    case core::ProtocolKind::kLRCExt:
      return std::make_unique<LrcExt>(m);
    case core::ProtocolKind::kERCWT:
      return std::make_unique<ErcWt>(m);
  }
  return nullptr;
}

}  // namespace lrc::proto
