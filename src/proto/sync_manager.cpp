#include "proto/sync_manager.hpp"

#include <algorithm>
#include <cassert>

#include "core/machine.hpp"

namespace lrc::proto {

using mesh::Message;
using mesh::MsgKind;

SyncManager::SyncManager(core::Machine& m)
    : m_(m),
      locks_(m.nprocs()),
      barriers_(m.nprocs()),
      stats_(m.nprocs()) {}

NodeId SyncManager::home_of(SyncId s) const {
  return static_cast<NodeId>(s % m_.nprocs());
}

// owns() relies on the sync kinds being the contiguous tail of MsgKind:
// kLockReq, kLockGrant, kLockRel, kBarrierArrive, kBarrierRelease, kCount.
static_assert(static_cast<int>(MsgKind::kCount) -
                      static_cast<int>(MsgKind::kLockReq) == 5 &&
              static_cast<int>(MsgKind::kBarrierRelease) -
                      static_cast<int>(MsgKind::kLockReq) == 4,
              "sync kinds must stay the contiguous tail of MsgKind");

void SyncManager::request_lock(NodeId p, SyncId s, Cycle t) {
  Message msg;
  msg.kind = MsgKind::kLockReq;
  msg.src = p;
  msg.dst = home_of(s);
  msg.sync = s;
  m_.nic().send(t, msg);
}

void SyncManager::release_lock(NodeId p, SyncId s, Cycle t) {
  Message msg;
  msg.kind = MsgKind::kLockRel;
  msg.src = p;
  msg.dst = home_of(s);
  msg.sync = s;
  m_.nic().send(t, msg);
}

void SyncManager::barrier_arrive(NodeId p, SyncId s, Cycle t) {
  Message msg;
  msg.kind = MsgKind::kBarrierArrive;
  msg.src = p;
  msg.dst = home_of(s);
  msg.sync = s;
  m_.nic().send(t, msg);
}

Cycle SyncManager::handle(const Message& msg, Cycle start) {
  const Cycle cost = m_.params().sync_op_cost;
  const Cycle done = start + cost;
  switch (msg.kind) {
    case MsgKind::kLockReq: {
      LockState& l = locks_[msg.dst][msg.sync];
      SyncStats& st = stats_[msg.dst];
      ++st.lock_requests;
      if (!l.held) {
        l.held = true;
        l.holder = msg.src;
        Message grant;
        grant.kind = MsgKind::kLockGrant;
        grant.src = msg.dst;
        grant.dst = msg.src;
        grant.sync = msg.sync;
        m_.nic().send(done, grant);
      } else {
        l.waiters.push_back(msg.src);
        ++st.queued_requests;
        st.max_queue = std::max<std::uint64_t>(st.max_queue,
                                               l.waiters.size());
      }
      break;
    }
    case MsgKind::kLockRel: {
      LockState& l = locks_[msg.dst][msg.sync];
      assert(l.held && l.holder == msg.src && "unlock of lock not held");
      if (l.waiters.empty()) {
        l.held = false;
        l.holder = kInvalidNode;
      } else {
        l.holder = l.waiters.front();
        l.waiters.pop_front();
        Message grant;
        grant.kind = MsgKind::kLockGrant;
        grant.src = msg.dst;
        grant.dst = l.holder;
        grant.sync = msg.sync;
        m_.nic().send(done, grant);
      }
      break;
    }
    case MsgKind::kLockGrant: {
      m_.note_lock_acquire(msg.dst);
      ++stats_[msg.dst].lock_grants;
      if (on_lock_granted) on_lock_granted(msg.dst, msg.sync, done);
      break;
    }
    case MsgKind::kBarrierArrive: {
      ++stats_[msg.dst].barrier_arrivals;
      BarrierState& b = barriers_[msg.dst][msg.sync];
      if (++b.arrived == m_.nprocs()) {
        b.arrived = 0;
        m_.note_barrier_episode(msg.dst);
        for (NodeId p = 0; p < m_.nprocs(); ++p) {
          Message rel;
          rel.kind = MsgKind::kBarrierRelease;
          rel.src = msg.dst;
          rel.dst = p;
          rel.sync = msg.sync;
          m_.nic().send(done, rel);
        }
      }
      break;
    }
    case MsgKind::kBarrierRelease: {
      if (on_barrier_released) on_barrier_released(msg.dst, msg.sync, done);
      break;
    }
    // proto-lint: unreachable(* : Machine::dispatch routes here only when
    //   owns() holds, i.e. the kind is in the sync tail of MsgKind)
    default:
      assert(false && "not a sync message");
  }
  return cost;
}

bool SyncManager::lock_held(SyncId s) const {
  const auto& home = locks_[home_of(s)];
  auto it = home.find(s);
  return it != home.end() && it->second.held;
}

std::size_t SyncManager::lock_queue_len(SyncId s) const {
  const auto& home = locks_[home_of(s)];
  auto it = home.find(s);
  return it == home.end() ? 0 : it->second.waiters.size();
}

SyncStats SyncManager::stats() const {
  SyncStats total;
  for (const SyncStats& s : stats_) {
    total.lock_requests += s.lock_requests;
    total.lock_grants += s.lock_grants;
    total.queued_requests += s.queued_requests;
    total.max_queue = std::max(total.max_queue, s.max_queue);
    total.barrier_arrivals += s.barrier_arrivals;
  }
  return total;
}

}  // namespace lrc::proto
