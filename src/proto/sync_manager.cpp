#include "proto/sync_manager.hpp"

#include <algorithm>
#include <cassert>

#include "core/machine.hpp"

namespace lrc::proto {

using mesh::Message;
using mesh::MsgKind;

SyncManager::SyncManager(core::Machine& m) : m_(m) {}

NodeId SyncManager::home_of(SyncId s) const {
  return static_cast<NodeId>(s % m_.nprocs());
}

// owns() relies on the sync kinds being the contiguous tail of MsgKind:
// kLockReq, kLockGrant, kLockRel, kBarrierArrive, kBarrierRelease, kCount.
static_assert(static_cast<int>(MsgKind::kCount) -
                      static_cast<int>(MsgKind::kLockReq) == 5 &&
              static_cast<int>(MsgKind::kBarrierRelease) -
                      static_cast<int>(MsgKind::kLockReq) == 4,
              "sync kinds must stay the contiguous tail of MsgKind");

void SyncManager::request_lock(NodeId p, SyncId s, Cycle t) {
  Message msg;
  msg.kind = MsgKind::kLockReq;
  msg.src = p;
  msg.dst = home_of(s);
  msg.sync = s;
  m_.nic().send(t, msg);
}

void SyncManager::release_lock(NodeId p, SyncId s, Cycle t) {
  Message msg;
  msg.kind = MsgKind::kLockRel;
  msg.src = p;
  msg.dst = home_of(s);
  msg.sync = s;
  m_.nic().send(t, msg);
}

void SyncManager::barrier_arrive(NodeId p, SyncId s, Cycle t) {
  Message msg;
  msg.kind = MsgKind::kBarrierArrive;
  msg.src = p;
  msg.dst = home_of(s);
  msg.sync = s;
  m_.nic().send(t, msg);
}

Cycle SyncManager::handle(const Message& msg, Cycle start) {
  const Cycle cost = m_.params().sync_op_cost;
  const Cycle done = start + cost;
  switch (msg.kind) {
    case MsgKind::kLockReq: {
      LockState& l = locks_[msg.sync];
      ++stats_.lock_requests;
      if (!l.held) {
        l.held = true;
        l.holder = msg.src;
        Message grant;
        grant.kind = MsgKind::kLockGrant;
        grant.src = msg.dst;
        grant.dst = msg.src;
        grant.sync = msg.sync;
        m_.nic().send(done, grant);
      } else {
        l.waiters.push_back(msg.src);
        ++stats_.queued_requests;
        stats_.max_queue = std::max<std::uint64_t>(stats_.max_queue,
                                                   l.waiters.size());
      }
      break;
    }
    case MsgKind::kLockRel: {
      LockState& l = locks_[msg.sync];
      assert(l.held && l.holder == msg.src && "unlock of lock not held");
      if (l.waiters.empty()) {
        l.held = false;
        l.holder = kInvalidNode;
      } else {
        l.holder = l.waiters.front();
        l.waiters.pop_front();
        Message grant;
        grant.kind = MsgKind::kLockGrant;
        grant.src = msg.dst;
        grant.dst = l.holder;
        grant.sync = msg.sync;
        m_.nic().send(done, grant);
      }
      break;
    }
    case MsgKind::kLockGrant: {
      ++m_.lock_acquires;
      ++stats_.lock_grants;
      if (on_lock_granted) on_lock_granted(msg.dst, msg.sync, done);
      break;
    }
    case MsgKind::kBarrierArrive: {
      ++stats_.barrier_arrivals;
      BarrierState& b = barriers_[msg.sync];
      if (++b.arrived == m_.nprocs()) {
        b.arrived = 0;
        ++m_.barrier_episodes;
        for (NodeId p = 0; p < m_.nprocs(); ++p) {
          Message rel;
          rel.kind = MsgKind::kBarrierRelease;
          rel.src = msg.dst;
          rel.dst = p;
          rel.sync = msg.sync;
          m_.nic().send(done, rel);
        }
      }
      break;
    }
    case MsgKind::kBarrierRelease: {
      if (on_barrier_released) on_barrier_released(msg.dst, msg.sync, done);
      break;
    }
    default:
      assert(false && "not a sync message");
  }
  return cost;
}

bool SyncManager::lock_held(SyncId s) const {
  auto it = locks_.find(s);
  return it != locks_.end() && it->second.held;
}

std::size_t SyncManager::lock_queue_len(SyncId s) const {
  auto it = locks_.find(s);
  return it == locks_.end() ? 0 : it->second.waiters.size();
}

}  // namespace lrc::proto
