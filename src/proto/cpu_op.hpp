// The processor-side protocol entry points (cpu_read, cpu_write, acquire,
// release, barrier, fence, finalize) are C++20 stackless coroutines
// returning a CpuOp. The blocking style of the protocol code is unchanged —
// `while (!cond) co_await Wait{kind};` replaces `while (!cond)
// cpu.block(kind);` — but the suspension no longer needs a fiber stack, so
// the same protocol code serves two front ends:
//
//   * fiber mode: core::Cpu::drive() runs the op on the workload fiber,
//     translating every Wait suspension into the classic Cpu::block();
//   * trace replay: trace::ReplayCpu resumes the op directly from engine
//     events — no sim::Fiber, no context switch, no per-CPU stack.
//
// Ops nest (`co_await drain(cpu)`) with symmetric transfer: the child body
// starts inside the co_await expression, exactly where the old direct call
// ran, so host-call order — and therefore event order and every golden
// digest — is unchanged. Frames recycle through a thread-local freelist
// (shard-thread-confined, like every other per-node pool), so steady-state
// ops allocate nothing.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <utility>

#include "stats/counters.hpp"

namespace lrc::proto {

/// Suspension request: the op cannot make progress until the processor is
/// poked; subsequent cycles are charged to `kind`. Always awaited in a
/// `while (!condition)` loop, mirroring the Cpu::block contract.
struct Wait {
  stats::StallKind kind;
};

namespace op_detail {

// Coroutine-frame pool: 64-byte-granule buckets on a thread-local freelist.
// Ops are created, driven, and destroyed by the thread that owns their node
// (the shard thread in sharded runs), so no locking is needed; a frame
// abandoned at machine teardown simply migrates to the destroying thread's
// pool. The first op of each shape on a thread takes one global allocation;
// after that the hot path (one frame per memory access) recycles — the
// zero-allocs-per-access gate in bench/micro_trace.cpp pins this.
inline constexpr std::size_t kFrameGranule = 64;
inline constexpr std::size_t kFrameBuckets = 64;  // pooled up to ~4 KiB

struct FreeFrame {
  FreeFrame* next;
};

struct FramePool {
  FreeFrame* buckets[kFrameBuckets] = {};
  ~FramePool() {
    for (FreeFrame*& b : buckets) {
      while (b != nullptr) {
        FreeFrame* n = b->next;
        ::operator delete(b);
        b = n;
      }
    }
  }
};

inline FramePool& frame_pool() {
  static thread_local FramePool pool;
  return pool;
}

// A 16-byte header keeps the frame max_align_t-aligned and remembers the
// bucket (0 = oversize, unpooled).
inline void* frame_alloc(std::size_t n) {
  const std::size_t total = n + 16;
  const std::size_t b = (total + kFrameGranule - 1) / kFrameGranule;
  void* raw;
  if (b >= kFrameBuckets) {
    raw = ::operator new(total);
    *static_cast<std::size_t*>(raw) = 0;
  } else {
    FramePool& pool = frame_pool();
    if (FreeFrame* f = pool.buckets[b]) {
      pool.buckets[b] = f->next;
      raw = f;
    } else {
      raw = ::operator new(b * kFrameGranule);
    }
    *static_cast<std::size_t*>(raw) = b;
  }
  return static_cast<char*>(raw) + 16;
}

inline void frame_free(void* p) {
  void* raw = static_cast<char*>(p) - 16;
  const std::size_t b = *static_cast<std::size_t*>(raw);
  if (b == 0) {
    ::operator delete(raw);
    return;
  }
  FramePool& pool = frame_pool();
  auto* f = static_cast<FreeFrame*>(raw);
  f->next = pool.buckets[b];
  pool.buckets[b] = f;
}

}  // namespace op_detail

/// One in-flight processor-side protocol operation. Created suspended;
/// the driver calls step() until it returns true:
///
///   while (!op.step()) block_until_poked(op.wait_kind());
///
/// step() runs the op up to its next Wait (returning false) or to
/// completion (returning true, destroying the frame on the next reset()/
/// destructor). Exceptions thrown by the op body resurface from step().
class [[nodiscard]] CpuOp {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  // Root-op state shared down the child chain: the leaf coroutine to
  // resume next and the stall category it suspended under.
  struct OpCtx {
    std::coroutine_handle<> current{};
    stats::StallKind wait_kind = stats::StallKind::kSync;
  };

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept {
      // A finished child transfers straight back into its parent's
      // co_await; a finished root returns to the driver.
      if (auto cont = h.promise().cont) return cont;
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  struct promise_type {
    OpCtx root_ctx;           // authoritative for the root op only
    OpCtx* ctx = &root_ctx;   // children point at the root's
    std::coroutine_handle<> cont{};  // parent coroutine (children only)
    std::exception_ptr error{};

    CpuOp get_return_object() { return CpuOp(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }

    static void* operator new(std::size_t n) {
      return op_detail::frame_alloc(n);
    }
    static void operator delete(void* p, std::size_t) {
      op_detail::frame_free(p);
    }

    // Only Wait and nested CpuOps are awaitable inside a protocol op.
    auto await_transform(Wait w) {
      struct WaitAwaiter {
        OpCtx* ctx;
        stats::StallKind kind;
        bool await_ready() noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h) noexcept {
          ctx->current = h;
          ctx->wait_kind = kind;
        }
        void await_resume() noexcept {}
      };
      return WaitAwaiter{ctx, w.kind};
    }

    auto await_transform(CpuOp child) {
      struct ChildAwaiter {
        CpuOp child;  // owns the child frame; freed in await_resume
        bool await_ready() noexcept { return false; }
        std::coroutine_handle<> await_suspend(
            std::coroutine_handle<>) noexcept {
          return child.h_;  // symmetric transfer: start the child body now
        }
        void await_resume() {
          std::exception_ptr e = child.h_.promise().error;
          child.reset();
          if (e) std::rethrow_exception(e);
        }
      };
      assert(child.h_ && "co_await on a moved-from CpuOp");
      promise_type& cp = child.h_.promise();
      cp.ctx = ctx;
      cp.cont = Handle::from_promise(*this);
      return ChildAwaiter{std::move(child)};
    }
  };

  CpuOp() = default;
  ~CpuOp() { reset(); }

  CpuOp(CpuOp&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  CpuOp& operator=(CpuOp&& o) noexcept {
    if (this != &o) {
      reset();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  CpuOp(const CpuOp&) = delete;
  CpuOp& operator=(const CpuOp&) = delete;

  bool valid() const { return static_cast<bool>(h_); }

  /// Runs until the op suspends (false; see wait_kind()) or completes
  /// (true). Must only be called on a root op.
  bool step() {
    assert(h_ && "step on an empty CpuOp");
    OpCtx& c = h_.promise().root_ctx;
    std::coroutine_handle<> leaf = c.current ? c.current : h_;
    c.current = {};
    leaf.resume();
    if (h_.done()) {
      if (h_.promise().error) {
        std::exception_ptr e = h_.promise().error;
        reset();
        std::rethrow_exception(e);
      }
      return true;
    }
    assert(c.current && "protocol op suspended outside a Wait");
    return false;
  }

  /// Stall category of the pending suspension (valid after step() == false).
  stats::StallKind wait_kind() const {
    return h_.promise().root_ctx.wait_kind;
  }

  /// Destroys the frame (including any suspended child chain).
  void reset() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

 private:
  explicit CpuOp(Handle h) : h_(h) {}

  Handle h_;
};

}  // namespace lrc::proto
