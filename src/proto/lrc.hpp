// Lazy release consistency for hardware-coherent multiprocessors — the
// paper's primary contribution (§2).
//
// Key properties:
//  * Four directory states (Uncached/Shared/Dirty/Weak) with per-sharer
//    writing and notified bits.
//  * Multiple concurrent writers: a write never acquires ownership; the
//    home never forwards requests (2-hop transactions only).
//  * Write notices are sent as soon as a processor writes a shared line,
//    concurrently with computation; sharers merely *buffer* them.
//  * Invalidations are applied at acquire operations (overlapped with the
//    lock-grant latency where possible).
//  * Write-through cache with a coalescing buffer returns data to memory;
//    releases stall until the write buffer, the outstanding-transaction
//    table, and the write-through acknowledgements drain.
//
// The lazier variant (LrcExt, §2 end / §4.3) additionally delays *sending*
// write notices until a release operation or the eviction of a written line.
#pragma once

#include <vector>

#include "proto/base.hpp"
#include "util/flat_hash.hpp"

namespace lrc::proto {

class Lrc : public ProtocolBase {
 public:
  explicit Lrc(core::Machine& m);

  std::string_view name() const override { return "LRC"; }

  CpuOp cpu_read(core::Cpu& cpu, Addr a, std::uint32_t bytes) override;
  CpuOp cpu_write(core::Cpu& cpu, Addr a, std::uint32_t bytes) override;
  CpuOp acquire(core::Cpu& cpu, SyncId s) override;
  CpuOp release(core::Cpu& cpu, SyncId s) override;
  CpuOp barrier(core::Cpu& cpu, SyncId s) override;
  CpuOp fence(core::Cpu& cpu) override;
  CpuOp finalize(core::Cpu& cpu) override;
  Cycle handle(const mesh::Message& msg, Cycle start) override;

  /// Victim-sink target: LRC eviction duties of a displaced line
  /// (coalescing-buffer flush, home notification, pending-notice cleanup).
  /// Calls the virtual before_line_death, so the lazier variant's delayed
  /// notices flush without its own override.
  void evict_victim(NodeId p, const cache::CacheLine& victim,
                    Cycle at) override;

  /// Lines queued for invalidation at `p`'s next acquire (tests).
  const util::FlatSet& pending_invals(NodeId p) const {
    return pending_inval_[p];
  }

 protected:
  // ---- Hooks the lazier variant overrides ----------------------------------

  /// Called for every locally-performed write; the base protocol records it
  /// with the miss classifier immediately (its notice is already on the way).
  virtual void note_local_write(NodeId p, LineId line, WordMask words);

  /// Called from release/barrier/finalize before draining; the base has
  /// nothing to flush beyond the coalescing buffer.
  virtual void flush_for_release(core::Cpu& cpu);

  /// True once nothing remains outstanding for `cpu`'s release.
  virtual bool drained(core::Cpu& cpu) const;

  /// Called before a line is invalidated (acquire) or evicted (fill victim).
  virtual void before_line_death(NodeId p, LineId line, Cycle at);

  // ---- Shared machinery -----------------------------------------------------

  /// Starts a write-announcement transaction: OT entry + kWriteReq.
  void start_write_req(core::Cpu& cpu, LineId line, bool need_data,
                       int wb_slot, WordMask words);

  /// Applies all buffered write notices at `p` on its protocol processor
  /// beginning no earlier than `at`; returns the completion time.
  Cycle apply_invals(NodeId p, Cycle at);

  /// Adds a write to the coalescing buffer, streaming a displaced entry to
  /// memory.
  void cb_add(core::Cpu& cpu, LineId line, WordMask words, Cycle at);

  void send_write_through(NodeId p, LineId line, WordMask words, Cycle at);

  /// Installs a line in `p`'s hierarchy; victims exit via evict_victim.
  void do_fill(NodeId p, LineId line, cache::LineState st, Cycle at);

  CpuOp drain_for_release(core::Cpu& cpu);

  // Home-side handlers.
  Cycle home_read(const mesh::Message& msg, Cycle start);
  Cycle home_write_req(const mesh::Message& msg, Cycle start);
  Cycle home_notice_ack(const mesh::Message& msg, Cycle start);
  Cycle home_membership_update(const mesh::Message& msg, Cycle start);
  Cycle home_write_through(const mesh::Message& msg, Cycle start);

  // Node-side handlers.
  Cycle node_write_notice(const mesh::Message& msg, Cycle start);
  Cycle node_write_ack(const mesh::Message& msg, Cycle start);
  Cycle node_fill(const mesh::Message& msg, Cycle start);
  Cycle node_wt_ack(const mesh::Message& msg, Cycle start);

  /// Sends write notices for a (newly) Weak line to every unnotified sharer
  /// except `except`; returns the number sent and updates the outstanding-
  /// notice count.
  unsigned send_notices(DirEntry& e, LineId line, NodeId home, NodeId except,
                        Cycle at);

  std::vector<util::FlatSet> pending_inval_;
};

/// The "aggressively lazy" variant: write notices are buffered locally and
/// only sent at release operations (or when a written line is evicted).
class LrcExt final : public Lrc {
 public:
  explicit LrcExt(core::Machine& m);

  std::string_view name() const override { return "LRC-ext"; }

  CpuOp cpu_write(core::Cpu& cpu, Addr a, std::uint32_t bytes) override;

  /// Delayed (unannounced) writes at `p` (tests).
  const util::FlatMap<WordMask>& delayed(NodeId p) const {
    return delayed_[p];
  }

 protected:
  void note_local_write(NodeId p, LineId line, WordMask words) override;
  void flush_for_release(core::Cpu& cpu) override;
  bool drained(core::Cpu& cpu) const override;
  void before_line_death(NodeId p, LineId line, Cycle at) override;

 private:
  /// Announces the delayed writes of `line` to its home (release/eviction/
  /// invalidation time).
  void flush_delayed_line(NodeId p, LineId line, Cycle at);

  std::vector<util::FlatMap<WordMask>> delayed_;
  /// Per-processor scratch for flush_for_release's snapshot of delayed
  /// lines (the flush mutates the map mid-walk); reused so steady-state
  /// releases allocate nothing, per-processor so concurrent releases on
  /// different shards never share it.
  std::vector<std::vector<LineId>> flush_scratch_;
  /// Lines whose writes this node has already announced to the home (they
  /// behave like base-LRC written lines until evicted or invalidated).
  std::vector<util::FlatSet> announced_;
};

}  // namespace lrc::proto
