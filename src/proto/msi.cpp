#include "proto/msi.hpp"

#include <cassert>

#include "check/hooks.hpp"

namespace lrc::proto {

using cache::LineState;
using mesh::Message;
using mesh::MsgKind;

namespace {
// InvalAck tag: the former owner confirms a 3-hop dirty transfer completed
// (data went straight to the requester; the home only updates state).
constexpr std::uint64_t kTagOwnershipXfer = 16;
// InvalAck tag: a forward found no copy at the believed owner (the copy was
// lost without a writeback — e.g. granted exclusivity to a silently evicted
// read-only line). The home serves the requester from memory, which is
// current: any dirty writeback from that owner precedes this NACK in the
// per-pair FIFO.
constexpr std::uint64_t kTagFwdNack = 32;
}  // namespace

MsiBase::MsiBase(core::Machine& m) : ProtocolBase(m) {
  m_.sync().on_lock_granted = [this](NodeId p, SyncId, Cycle t) {
    set_sync_done(p, true);
    m_.cpu(p).poke(t);
  };
  m_.sync().on_barrier_released = [this](NodeId p, SyncId, Cycle t) {
    set_sync_done(p, true);
    m_.cpu(p).poke(t);
  };
}

// ---- CPU side --------------------------------------------------------------

CpuOp MsiBase::cpu_read(core::Cpu& cpu, Addr a, std::uint32_t bytes) {
  const NodeId p = cpu.id();
  const LineId line = line_of(a);
  auto& cache = cpu.dcache();

  while (true) {
    if (cache.lookup(line, cpu.now()) != nullptr) {
      ++cache.stats().read_hits;
      cpu.tick(1 + cache.hit_penalty());
      co_return;
    }
    // Read bypass: a buffered write to the same words satisfies the read.
    if (int s = cpu.wb().find(line); s >= 0) {
      const WordMask need = words_of(a, bytes);
      if ((cpu.wb().slot(s).words & need) == need) {
        ++cache.stats().read_hits;
        cpu.tick(1);
        co_return;
      }
    }
    // An ack-only transaction with the copy gone (evicted mid-upgrade): its
    // completion will fetch the data itself; wait it out, then retry.
    if (cache::OtEntry* e = cpu.ot().find(line);
        e != nullptr && !e->data_pending) {
      while (cpu.ot().find(line) != nullptr) {
        co_await Wait{stats::StallKind::kRead};
      }
      continue;
    }
    break;
  }

  ++cache.stats().read_misses;
  m_.classifier().classify(p, line, word_of(a), /*upgrade=*/false);

  bool created = false;
  cache::OtEntry& e = cpu.ot().get_or_create(line, &created);
  e.cpu_read_waiting = true;
  if (created) {
    e.data_pending = true;
    send(cpu.now(), MsgKind::kReadReq, p, home_of(line, p), line);
  }
  while (true) {
    cache::OtEntry* cur = cpu.ot().find(line);
    if (cur == nullptr || !cur->data_pending) break;
    co_await Wait{stats::StallKind::kRead};
  }
  cpu.tick(1);
}

void MsiBase::start_write_tx(core::Cpu& cpu, LineId line, WordMask words,
                             int wb_slot, bool present_ro) {
  const NodeId p = cpu.id();
  bool created = false;
  cache::OtEntry& e = cpu.ot().get_or_create(line, &created);
  assert(created && "write transaction started while one is in flight");
  e.want_write = true;
  e.wb_slot = wb_slot;
  e.words = words;
  if (present_ro) {
    e.acks_pending = 1;
    send(cpu.now(), MsgKind::kUpgradeReq, p, home_of(line, p), line);
  } else {
    e.data_pending = true;
    send(cpu.now(), MsgKind::kReadExReq, p, home_of(line, p), line);
  }
}

CpuOp Sc::cpu_write(core::Cpu& cpu, Addr a, std::uint32_t bytes) {
  const NodeId p = cpu.id();
  const LineId line = line_of(a);
  const WordMask words = words_of(a, bytes);
  auto& cache = cpu.dcache();

  cache::CacheLine* cl = cache.lookup(line, cpu.now());
  if (cl != nullptr && cl->state == LineState::kReadWrite) {
    ++cache.stats().write_hits;
    commit_write(p, line, words);
    cpu.tick(1 + cache.hit_penalty());
    co_return;
  }

  const bool present_ro = cl != nullptr;
  if (present_ro) {
    ++cache.stats().upgrade_misses;
  } else {
    ++cache.stats().write_misses;
  }
  m_.classifier().classify(p, line, word_of(a), present_ro);

  start_write_tx(cpu, line, words, /*wb_slot=*/-1, present_ro);
  cpu.ot().find(line)->cpu_write_waiting = true;
  while (cpu.ot().find(line) != nullptr) {
    co_await Wait{stats::StallKind::kWrite};
  }
  cpu.tick(1);
}

CpuOp Erc::cpu_write(core::Cpu& cpu, Addr a, std::uint32_t bytes) {
  const NodeId p = cpu.id();
  const LineId line = line_of(a);
  const WordMask words = words_of(a, bytes);
  auto& cache = cpu.dcache();

  while (true) {
    cache::CacheLine* cl = cache.lookup(line, cpu.now());
    if (cl != nullptr && cl->state == LineState::kReadWrite) {
      ++cache.stats().write_hits;
      commit_write(p, line, words);
      cpu.tick(1 + cache.hit_penalty());
      co_return;
    }
    // Coalesce into an in-flight buffered write to the same line.
    if (cpu.wb().find(line) >= 0) {
      cpu.wb().push(line, words);
      if (cache::OtEntry* e = cpu.ot().find(line)) e->words |= words;
      ++cache.stats().write_hits;  // buffered, no new transaction
      cpu.tick(1);
      co_return;
    }
    // A read fetch in flight for this line: wait for it, then retry.
    if (cache::OtEntry* e = cpu.ot().find(line); e != nullptr) {
      while (true) {
        cache::OtEntry* cur = cpu.ot().find(line);
        if (cur == nullptr || !cur->data_pending) break;
        co_await Wait{stats::StallKind::kWrite};
      }
      continue;
    }
    // Need a fresh write-buffer slot.
    const int slot = cpu.wb().push(line, words);
    if (slot < 0) {
      co_await Wait{stats::StallKind::kWrite};  // buffer full; poked on retire
      continue;
    }
    const bool present_ro = cl != nullptr;
    if (present_ro) {
      ++cache.stats().upgrade_misses;
    } else {
      ++cache.stats().write_misses;
    }
    m_.classifier().classify(p, line, word_of(a), present_ro);
    start_write_tx(cpu, line, words, slot, present_ro);
    cpu.tick(1);
    co_return;
  }
}

CpuOp MsiBase::drain(core::Cpu& cpu) {
  while (!cpu.wb().empty() || !cpu.ot().empty()) {
    co_await Wait{stats::StallKind::kSync};
  }
}

CpuOp MsiBase::acquire(core::Cpu& cpu, SyncId s) {
  set_sync_done(cpu.id(), false);
  m_.sync().request_lock(cpu.id(), s, cpu.now());
  while (!sync_done(cpu.id())) co_await Wait{stats::StallKind::kSync};
}

CpuOp MsiBase::release(core::Cpu& cpu, SyncId s) {
  co_await drain(cpu);
  m_.sync().release_lock(cpu.id(), s, cpu.now());
}

CpuOp MsiBase::barrier(core::Cpu& cpu, SyncId s) {
  co_await drain(cpu);
  set_sync_done(cpu.id(), false);
  m_.sync().barrier_arrive(cpu.id(), s, cpu.now());
  while (!sync_done(cpu.id())) co_await Wait{stats::StallKind::kSync};
}

CpuOp MsiBase::finalize(core::Cpu& cpu) { co_await drain(cpu); }

// ---- Common completion helpers ---------------------------------------------

void MsiBase::commit_write(NodeId p, LineId line, WordMask words) {
  cache::CacheLine* cl = m_.cpu(p).dcache().find(line);
  assert(cl != nullptr && cl->state == LineState::kReadWrite);
  cl->dirty |= words;
  m_.classifier().on_write_committed(p, line, words);
}

void MsiBase::do_fill(NodeId p, LineId line, LineState st, Cycle at) {
  // Any line the hierarchy displaces out of the node comes back through
  // evict_victim() below (the machine wires the victim sink there).
  m_.cpu(p).dcache().fill(line, st, at);
  LRCSIM_HOOK(m_, on_fill(p, line));
  m_.classifier().on_fill(p, line);
}

void MsiBase::evict_victim(NodeId p, const cache::CacheLine& victim,
                           Cycle at) {
  LRCSIM_HOOK(m_, on_copy_dropped(p, victim.line));
  m_.classifier().on_copy_lost(p, victim.line, /*coherence=*/false);
  if (victim.dirty != 0) {
    send(at, MsgKind::kWritebackData, p, home_of(victim.line), victim.line,
         line_bytes());
  }
  // Clean evictions are silent in the MSI family (DASH-style): the
  // directory keeps a stale sharer and later invalidations are ack'd
  // without a copy.
}

void MsiBase::unbusy_and_replay(DirEntry& e, LineId line, Cycle at) {
  e.busy = false;
  e.pending_requester = kInvalidNode;
  e.pending_owner = kInvalidNode;
  e.pending_acks = 0;
  e.pending_mem_done = 0;
  // redeliver() only schedules a RedeliverEvent (no reentrant dispatch), so
  // the queue can be walked in place and then reclaimed.
  e.deferred.for_each(dir_.msg_pool(line),
                      [&](const Message& msg) { m_.redeliver(msg, at); });
  e.deferred.clear(dir_.msg_pool(line));
}

// ---- Message dispatch --------------------------------------------------------

Cycle MsiBase::handle(const Message& msg, Cycle start) {
  switch (msg.kind) {
    case MsgKind::kReadReq:
      return home_read(msg, start);
    case MsgKind::kReadExReq:
    case MsgKind::kUpgradeReq:
      return home_write(msg, start);
    case MsgKind::kWritebackData:
      return home_writeback(msg, start);
    case MsgKind::kSharingWriteback:
      return home_sharing_wb(msg, start);
    case MsgKind::kInvalAck:
      return home_inval_ack(msg, start);
    case MsgKind::kInval:
      return node_inval(msg, start);
    case MsgKind::kFwdReadReq:
    case MsgKind::kFwdReadExReq:
      return node_forward(msg, start);
    case MsgKind::kReadReply:
    case MsgKind::kReadExReply:
    case MsgKind::kFwdDataReply:
      return node_fill(msg, start);
    case MsgKind::kUpgradeAck:
      return node_upgrade_ack(msg, start);
    // proto-lint: unreachable(kWriteReq, kWriteThrough, kEvictNotify,
    //   kInvalNotify, kWriteNotice, kWriteAck, kNoticeAck, kWriteThroughAck
    //   : LRC-family multiple-writer and write-through vocabulary; no MSI
    //   handler ever emits these, so none can arrive here)
    default:
      assert(false && "unexpected message kind in MSI protocol");
      return 1;
  }
}

// ---- Home-side handlers -----------------------------------------------------

Cycle MsiBase::home_read(const Message& msg, Cycle start) {
  const NodeId home = msg.dst;
  const NodeId req = msg.src;
  DirEntry& e = dir_.entry(msg.line);
  if (e.busy) {
    e.deferred.push_back(msg, dir_.msg_pool(msg.line));
    return 1;
  }
  switch (e.state) {
    case DirState::kUncached:
    case DirState::kShared: {
      e.state = DirState::kShared;
      e.sharers |= proc_bit(req);
      const Cycle mem = dram_line(home, msg.line, start, /*write=*/false);
      send(std::max(mem, start + dir_cost()), MsgKind::kReadReply, home, req,
           msg.line, line_bytes());
      return dir_cost();
    }
    case DirState::kDirty: {
      const NodeId owner = e.owner();
      if (owner == req) {
        // Owner silently lost its copy (clean eviction of a granted-but-
        // unwritten line, or its writeback already arrived — per-pair FIFO
        // guarantees it). Memory is current; demote to Shared.
        e.state = DirState::kShared;
        e.writers = 0;
        e.sharers = proc_bit(req);
        const Cycle mem = dram_line(home, msg.line, start, false);
        send(std::max(mem, start + dir_cost()), MsgKind::kReadReply, home, req,
             msg.line, line_bytes());
        return dir_cost();
      }
      e.busy = true;
      e.pending_requester = req;
      e.pending_owner = owner;
      e.pending_kind = MsgKind::kFwdReadReq;
      send(start + dir_cost(), MsgKind::kFwdReadReq, home, owner, msg.line, 0,
           0, 0, /*requester=*/req);
      return dir_cost();
    }
    // proto-lint: unreachable(kWeak : only the LRC family's multiple-writer
    //   recomputation produces Weak; MSI directories never enter it)
    case DirState::kWeak:
      assert(false && "Weak state unused by MSI protocols");
  }
  return dir_cost();
}

Cycle MsiBase::home_write(const Message& msg, Cycle start) {
  const NodeId home = msg.dst;
  const NodeId req = msg.src;
  DirEntry& e = dir_.entry(msg.line);
  if (e.busy) {
    e.deferred.push_back(msg, dir_.msg_pool(msg.line));
    return 1;
  }
  // An upgrade only remains an upgrade if the requester still holds a copy.
  const bool upgrade =
      msg.kind == MsgKind::kUpgradeReq && e.is_sharer(req) &&
      e.state == DirState::kShared;

  switch (e.state) {
    case DirState::kUncached: {
      e.state = DirState::kDirty;
      e.sharers = proc_bit(req);
      e.writers = proc_bit(req);
      const Cycle mem = dram_line(home, msg.line, start, false);
      send(std::max(mem, start + dir_cost()), MsgKind::kReadExReply, home, req,
           msg.line, line_bytes());
      return dir_cost();
    }
    case DirState::kShared: {
      const ProcMask targets = e.sharers & ~proc_bit(req);
      if (targets == 0) {
        e.state = DirState::kDirty;
        e.sharers = proc_bit(req);
        e.writers = proc_bit(req);
        if (upgrade) {
          send(start + dir_cost(), MsgKind::kUpgradeAck, home, req, msg.line);
        } else {
          const Cycle mem = dram_line(home, msg.line, start, false);
          send(std::max(mem, start + dir_cost()), MsgKind::kReadExReply, home,
               req, msg.line, line_bytes());
        }
        return dir_cost();
      }
      e.busy = true;
      e.pending_requester = req;
      e.pending_kind = upgrade ? MsgKind::kUpgradeReq : MsgKind::kReadExReq;
      e.pending_acks = static_cast<unsigned>(std::popcount(targets));
      e.pending_mem_done = upgrade ? 0 : dram_line(home, msg.line, start, false);
      for (NodeId t = 0; t < m_.nprocs(); ++t) {
        if (targets & proc_bit(t)) {
          send(start + dir_cost(), MsgKind::kInval, home, t, msg.line);
        }
      }
      return dir_cost();
    }
    case DirState::kDirty: {
      const NodeId owner = e.owner();
      if (owner == req) {
        // Owner lost its copy silently; memory is current (FIFO argument).
        e.sharers = proc_bit(req);
        e.writers = proc_bit(req);
        const Cycle mem = dram_line(home, msg.line, start, false);
        send(std::max(mem, start + dir_cost()), MsgKind::kReadExReply, home,
             req, msg.line, line_bytes());
        return dir_cost();
      }
      e.busy = true;
      e.pending_requester = req;
      e.pending_owner = owner;
      e.pending_kind = MsgKind::kFwdReadExReq;
      send(start + dir_cost(), MsgKind::kFwdReadExReq, home, owner, msg.line,
           0, 0, 0, /*requester=*/req);
      return dir_cost();
    }
    // proto-lint: unreachable(kWeak : only the LRC family's multiple-writer
    //   recomputation produces Weak; MSI directories never enter it)
    case DirState::kWeak:
      assert(false && "Weak state unused by MSI protocols");
  }
  return dir_cost();
}

Cycle MsiBase::home_writeback(const Message& msg, Cycle start) {
  const NodeId home = msg.dst;
  const NodeId writer = msg.src;
  DirEntry& e = dir_.entry(msg.line);
  const Cycle mem = dram_line(home, msg.line, start, /*write=*/true);

  if (e.busy && (e.pending_kind == MsgKind::kFwdReadReq ||
                 e.pending_kind == MsgKind::kFwdReadExReq) &&
      e.pending_owner == writer) {
    // The forward in flight will find nothing at the (ex-)owner; serve the
    // pending requester from the freshly written-back memory.
    const NodeId req = e.pending_requester;
    if (e.pending_kind == MsgKind::kFwdReadReq) {
      e.state = DirState::kShared;
      e.sharers = proc_bit(req);
      e.writers = 0;
      send(std::max(mem, start + dir_cost()), MsgKind::kReadReply, home, req,
           msg.line, line_bytes());
    } else {
      e.state = DirState::kDirty;
      e.sharers = proc_bit(req);
      e.writers = proc_bit(req);
      send(std::max(mem, start + dir_cost()), MsgKind::kReadExReply, home, req,
           msg.line, line_bytes());
    }
    unbusy_and_replay(e, msg.line, start + dir_cost());
    return dir_cost();
  }

  e.sharers &= ~proc_bit(writer);
  e.writers &= ~proc_bit(writer);
  if (e.sharers == 0) {
    e.state = DirState::kUncached;
  } else if (e.writers == 0 && e.state == DirState::kDirty) {
    e.state = DirState::kShared;
  }
  return dir_cost();
}

Cycle MsiBase::home_sharing_wb(const Message& msg, Cycle start) {
  const NodeId home = msg.dst;
  const NodeId owner = msg.src;
  DirEntry& e = dir_.entry(msg.line);
  dram_line(home, msg.line, start, /*write=*/true);
  assert(e.busy && e.pending_kind == MsgKind::kFwdReadReq);
  e.state = DirState::kShared;
  e.writers = 0;
  e.sharers |= proc_bit(owner) | proc_bit(e.pending_requester);
  unbusy_and_replay(e, msg.line, start + dir_cost());
  return dir_cost();
}

Cycle MsiBase::home_inval_ack(const Message& msg, Cycle start) {
  DirEntry& e = dir_.entry(msg.line);
  const Cycle cost = params().dir_update_cost;

  if (msg.tag == kTagOwnershipXfer) {
    // 3-hop dirty transfer complete: data went owner -> requester directly.
    assert(e.busy && e.pending_kind == MsgKind::kFwdReadExReq);
    const NodeId req = e.pending_requester;
    e.state = DirState::kDirty;
    e.sharers = proc_bit(req);
    e.writers = proc_bit(req);
    unbusy_and_replay(e, msg.line, start + cost);
    return cost;
  }

  if (msg.tag == kTagFwdNack) {
    // A forward found nothing at the believed owner. If the writeback race
    // already completed the transaction this is stale — ignore. Otherwise
    // serve the requester from (current) memory.
    if (!e.busy || e.pending_owner != msg.src ||
        (e.pending_kind != MsgKind::kFwdReadReq &&
         e.pending_kind != MsgKind::kFwdReadExReq)) {
      return cost;
    }
    const NodeId req = e.pending_requester;
    const NodeId home = msg.dst;
    const Cycle mem = dram_line(home, msg.line, start, /*write=*/false);
    if (e.pending_kind == MsgKind::kFwdReadReq) {
      e.state = DirState::kShared;
      e.sharers = proc_bit(req);
      e.writers = 0;
      send(std::max(mem, start + cost), MsgKind::kReadReply, home, req,
           msg.line, line_bytes());
    } else {
      e.state = DirState::kDirty;
      e.sharers = proc_bit(req);
      e.writers = proc_bit(req);
      send(std::max(mem, start + cost), MsgKind::kReadExReply, home, req,
           msg.line, line_bytes());
    }
    unbusy_and_replay(e, msg.line, start + cost);
    return cost;
  }

  assert(e.busy && e.pending_acks > 0);
  if (--e.pending_acks == 0) {
    const NodeId req = e.pending_requester;
    const NodeId home = msg.dst;
    if (e.pending_kind == MsgKind::kUpgradeReq) {
      send(start + cost, MsgKind::kUpgradeAck, home, req, msg.line);
    } else {
      send(std::max(e.pending_mem_done, start + cost), MsgKind::kReadExReply,
           home, req, msg.line, line_bytes());
    }
    e.state = DirState::kDirty;
    e.sharers = proc_bit(req);
    e.writers = proc_bit(req);
    unbusy_and_replay(e, msg.line, start + cost);
  }
  return cost;
}

// ---- Node-side handlers -----------------------------------------------------

Cycle MsiBase::node_inval(const Message& msg, Cycle start) {
  const NodeId p = msg.dst;
  const Cycle cost = params().write_notice_cost;
  if (m_.cpu(p).dcache().invalidate(msg.line)) {
    m_.classifier().on_copy_lost(p, msg.line, /*coherence=*/true);
  }
  LRCSIM_HOOK(m_, on_copy_dropped(p, msg.line));
  send(start + cost, MsgKind::kInvalAck, p, msg.src, msg.line);
  return cost;
}

Cycle MsiBase::node_forward(const Message& msg, Cycle start) {
  const NodeId p = msg.dst;  // the (believed) owner
  const Cycle cost = params().write_notice_cost;
  auto& cache = m_.cpu(p).dcache();
  cache::CacheLine* cl = cache.find(msg.line);
  if (cl == nullptr) {
    // No copy here (writeback raced ahead, or we were granted exclusivity
    // after silently losing the read-only copy). Tell the home so it can
    // serve the requester from memory.
    send(start + cost, MsgKind::kInvalAck, p, msg.src, msg.line, 0,
         kTagFwdNack);
    return cost;
  }
  if (msg.kind == MsgKind::kFwdReadReq) {
    cl->state = LineState::kReadOnly;
    cl->dirty = 0;
    send(start + cost, MsgKind::kFwdDataReply, p, msg.requester, msg.line,
         line_bytes());
    send(start + cost, MsgKind::kSharingWriteback, p, msg.src, msg.line,
         line_bytes());
  } else {
    cache.invalidate(msg.line);
    LRCSIM_HOOK(m_, on_copy_dropped(p, msg.line));
    m_.classifier().on_copy_lost(p, msg.line, /*coherence=*/true);
    send(start + cost, MsgKind::kFwdDataReply, p, msg.requester, msg.line,
         line_bytes());
    send(start + cost, MsgKind::kInvalAck, p, msg.src, msg.line, 0,
         kTagOwnershipXfer);
  }
  return cost;
}

Cycle MsiBase::node_fill(const Message& msg, Cycle start) {
  const NodeId p = msg.dst;
  auto& cpu = m_.cpu(p);
  cache::OtEntry* e = cpu.ot().find(msg.line);
  assert(e != nullptr && "data reply without outstanding transaction");
  const Cycle fill = bus_fill_cost();
  const Cycle done = start + fill;

  do_fill(p, msg.line, e->want_write ? LineState::kReadWrite
                                     : LineState::kReadOnly,
          done);
  if (e->want_write) {
    WordMask words = e->words;
    if (e->wb_slot >= 0) words = cpu.wb().retire(e->wb_slot).words;
    commit_write(p, msg.line, words);
  }
  e->data_pending = false;
  e->acks_pending = 0;  // exclusivity rides along with the data
  cpu.ot().erase(msg.line);
  cpu.poke(done);
  return fill;
}

Cycle MsiBase::node_upgrade_ack(const Message& msg, Cycle start) {
  const NodeId p = msg.dst;
  auto& cpu = m_.cpu(p);
  const Cycle cost = params().dir_update_cost;
  cache::OtEntry* e = cpu.ot().find(msg.line);
  assert(e != nullptr && "upgrade ack without outstanding transaction");
  cache::CacheLine* cl = cpu.dcache().find(msg.line);
  if (cl == nullptr) {
    // Our read-only copy was evicted while the upgrade was in flight; we
    // now own the line per the directory but hold no data. Fetch it.
    e->acks_pending = 0;
    e->data_pending = true;
    send(start + cost, MsgKind::kReadExReq, p, msg.src, msg.line);
    return cost;
  }
  cl->state = LineState::kReadWrite;
  WordMask words = e->words;
  if (e->wb_slot >= 0) words = cpu.wb().retire(e->wb_slot).words;
  commit_write(p, msg.line, words);
  cpu.ot().erase(msg.line);
  cpu.poke(start + cost);
  return cost;
}

}  // namespace lrc::proto
