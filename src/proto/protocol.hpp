// Coherence-protocol interface. One Protocol instance serves the whole
// machine. The processor-side entry points return CpuOp coroutines
// (proto/cpu_op.hpp): the op body runs in the context of whichever front
// end drives it — the workload fiber (core::Cpu::drive) or the trace
// replayer's event-driven decode loop — suspending at Wait whenever the
// memory model requires the processor to stall. `handle` runs in event
// context when a message wins the destination node's protocol processor.
#pragma once

#include <memory>
#include <string_view>

#include "mesh/message.hpp"
#include "proto/cpu_op.hpp"
#include "sim/types.hpp"

namespace lrc::core {
class Cpu;
class Machine;
enum class ProtocolKind : std::uint8_t;
}  // namespace lrc::core

namespace lrc::cache {
struct CacheLine;
}  // namespace lrc::cache

namespace lrc::proto {

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string_view name() const = 0;

  /// Timed shared-memory access of `bytes` at `a`; the returned op blocks
  /// the cpu as required by the memory model.
  virtual CpuOp cpu_read(core::Cpu& cpu, Addr a, std::uint32_t bytes) = 0;
  virtual CpuOp cpu_write(core::Cpu& cpu, Addr a, std::uint32_t bytes) = 0;

  /// Synchronization entry points.
  virtual CpuOp acquire(core::Cpu& cpu, SyncId s) = 0;
  virtual CpuOp release(core::Cpu& cpu, SyncId s) = 0;
  virtual CpuOp barrier(core::Cpu& cpu, SyncId s) = 0;

  /// Consistency fence: applies buffered write notices now, giving acquire
  /// semantics without a lock. The paper's §4.2 proposes fences for racy
  /// programs (e.g. chaotic relaxation) whose solution quality degrades
  /// when invalidations are postponed to the next acquire. Only the lazy
  /// protocols buffer notices, so only Lrc::fence overrides this (LRC-ext
  /// inherits it); SC, ERC, and ERC-WT invalidate eagerly at write time and
  /// use this default no-op.
  virtual CpuOp fence(core::Cpu& cpu) {
    (void)cpu;
    co_return;
  }

  /// End-of-program drain: leaves no outstanding transactions so statistics
  /// settle.
  virtual CpuOp finalize(core::Cpu& cpu) = 0;

  /// Processes `msg` at its destination's protocol processor starting at
  /// `start`; returns the processor-occupancy cost in cycles.
  virtual Cycle handle(const mesh::Message& msg, Cycle start) = 0;

  /// A valid line left processor `p`'s private cache stack entirely
  /// (displaced by a fill or a hierarchy-internal demotion cascade). The
  /// protocol issues the same transactions a coherence invalidation would
  /// need: writebacks for dirty data, eviction notices where membership is
  /// tracked exactly. Runs in whichever context performed the fill.
  virtual void evict_victim(NodeId p, const cache::CacheLine& victim,
                            Cycle at) = 0;
};

/// Factory used by core::Machine.
std::unique_ptr<Protocol> make_protocol(core::ProtocolKind kind,
                                        core::Machine& m);

}  // namespace lrc::proto
