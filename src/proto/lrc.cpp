#include "proto/lrc.hpp"

#include <cassert>

#include "check/hooks.hpp"

namespace lrc::proto {

using cache::LineState;
using mesh::Message;
using mesh::MsgKind;

Lrc::Lrc(core::Machine& m) : ProtocolBase(m), pending_inval_(m.nprocs()) {
  // Acquire-side completion: apply buffered write notices when the grant
  // (or barrier release) reaches the node, overlapped with any notice
  // processing already performed while waiting.
  auto acquire_side = [this](NodeId p, SyncId, Cycle t) {
    Cycle done = apply_invals(p, t);
    done = std::max(done, m_.pp_free_at(p));
    set_sync_done(p, true);
    m_.cpu(p).poke(done);
  };
  m_.sync().on_lock_granted = acquire_side;
  m_.sync().on_barrier_released = acquire_side;
}

// ---- CPU side ----------------------------------------------------------------

CpuOp Lrc::cpu_read(core::Cpu& cpu, Addr a, std::uint32_t bytes) {
  const NodeId p = cpu.id();
  const LineId line = line_of(a);
  auto& cache = cpu.dcache();

  // Lazy reads: a locally cached line is usable even if globally Weak.
  if (cache.lookup(line, cpu.now()) != nullptr) {
    ++cache.stats().read_hits;
    cpu.tick(1 + cache.hit_penalty());
    co_return;
  }
  if (int s = cpu.wb().find(line); s >= 0) {
    const WordMask need = words_of(a, bytes);
    if ((cpu.wb().slot(s).words & need) == need) {
      ++cache.stats().read_hits;
      cpu.tick(1);
      co_return;
    }
  }

  ++cache.stats().read_misses;
  m_.classifier().classify(p, line, word_of(a), /*upgrade=*/false);

  bool created = false;
  cache::OtEntry& e = cpu.ot().get_or_create(line, &created);
  e.cpu_read_waiting = true;
  if (created) {
    e.data_pending = true;
    send(cpu.now(), MsgKind::kReadReq, p, home_of(line, p), line);
  } else if (!e.data_pending) {
    // Ack-only entry with the line gone (evicted while a write-announce was
    // outstanding): fetch the data again. The eviction already removed us
    // from the directory's writer set, so the refetch is a plain read.
    e.data_pending = true;
    e.want_write = false;
    send(cpu.now(), MsgKind::kReadReq, p, home_of(line), line);
  }
  while (true) {
    cache::OtEntry* cur = cpu.ot().find(line);
    if (cur == nullptr || !cur->data_pending) break;
    co_await Wait{stats::StallKind::kRead};
  }
  cpu.tick(1);
}

void Lrc::start_write_req(core::Cpu& cpu, LineId line, bool need_data,
                          int wb_slot, WordMask words) {
  const NodeId p = cpu.id();
  bool created = false;
  cache::OtEntry& e = cpu.ot().get_or_create(line, &created);
  e.want_write = true;
  e.acks_pending += 1;
  e.words |= words;
  if (need_data) {
    e.data_pending = true;
    e.wb_slot = wb_slot;
  }
  send(cpu.now(), MsgKind::kWriteReq, p, home_of(line, p), line, 0,
       need_data ? kTagNeedData : 0, words);
}

CpuOp Lrc::cpu_write(core::Cpu& cpu, Addr a, std::uint32_t bytes) {
  const NodeId p = cpu.id();
  const LineId line = line_of(a);
  const WordMask words = words_of(a, bytes);
  auto& cache = cpu.dcache();

  while (true) {
    cache::CacheLine* cl = cache.lookup(line, cpu.now());
    if (cl != nullptr && cl->state == LineState::kReadWrite) {
      ++cache.stats().write_hits;
      cb_add(cpu, line, words, cpu.now());
      note_local_write(p, line, words);
      cpu.tick(1 + cache.hit_penalty());
      co_return;
    }
    if (cl != nullptr) {
      // Present read-only: announce the write but retire immediately — the
      // multiple-writer protocol needs no ownership, so there is nothing to
      // wait for (this eliminates ERC's write-after-read buffer stalls).
      ++cache.stats().upgrade_misses;
      m_.classifier().classify(p, line, word_of(a), /*upgrade=*/true);
      cl->state = LineState::kReadWrite;
      start_write_req(cpu, line, /*need_data=*/false, -1, words);
      cb_add(cpu, line, words, cpu.now());
      note_local_write(p, line, words);
      cpu.tick(1 + cache.hit_penalty());
      co_return;
    }
    // Absent. Coalesce into a pending buffered write if one exists.
    if (cpu.wb().find(line) >= 0) {
      cpu.wb().push(line, words);
      if (cache::OtEntry* e = cpu.ot().find(line)) e->words |= words;
      ++cache.stats().write_hits;
      cpu.tick(1);
      co_return;
    }
    // A transaction in flight for this line: a data fetch is waited out and
    // retried as an upgrade; an ack-only announce whose line has died is
    // waited to completion before starting fresh.
    if (cache::OtEntry* e0 = cpu.ot().find(line); e0 != nullptr) {
      if (e0->data_pending) {
        while (true) {
          cache::OtEntry* cur = cpu.ot().find(line);
          if (cur == nullptr || !cur->data_pending) break;
          co_await Wait{stats::StallKind::kWrite};
        }
      } else {
        while (cpu.ot().find(line) != nullptr) {
          co_await Wait{stats::StallKind::kWrite};
        }
      }
      continue;
    }
    const int slot = cpu.wb().push(line, words);
    if (slot < 0) {
      co_await Wait{stats::StallKind::kWrite};
      continue;
    }
    ++cache.stats().write_misses;
    m_.classifier().classify(p, line, word_of(a), /*upgrade=*/false);
    start_write_req(cpu, line, /*need_data=*/true, slot, words);
    cpu.tick(1);
    co_return;
  }
}

Cycle Lrc::apply_invals(NodeId p, Cycle at) {
  auto& set = pending_inval_[p];
  if (set.empty()) return at;
#ifdef LRCSIM_CHECK
  // Negative-test mutation: drop the buffered notices instead of applying
  // them. The value oracle must catch the resulting stale reads.
  if (check::active_mutation() == check::Mutation::kSkipAcquireInvalidation) {
    return at;
  }
#endif
  const Cycle cost = set.size() * params().write_notice_cost;
  const Cycle start = m_.pp_claim(p, at, cost);
  const Cycle done = start + cost;
  for (LineId line : set) {
    before_line_death(p, line, done);
    if (m_.cpu(p).dcache().invalidate(line)) {
      m_.classifier().on_copy_lost(p, line, /*coherence=*/true);
    }
    LRCSIM_HOOK(m_, on_copy_dropped(p, line));
    send(done, MsgKind::kInvalNotify, p, home_of(line), line);
  }
  set.clear();
  return done;
}

void Lrc::cb_add(core::Cpu& cpu, LineId line, WordMask words, Cycle at) {
  if (auto victim = cpu.cb().add(line, words)) {
    send_write_through(cpu.id(), victim->line, victim->words, at);
  }
}

void Lrc::send_write_through(NodeId p, LineId line, WordMask words, Cycle at) {
  const auto payload = static_cast<std::uint32_t>(
      std::popcount(words) * mem::AddressMap::kWordBytes);
  send(at, MsgKind::kWriteThrough, p, home_of(line), line, payload, 0, words);
  ++m_.cpu(p).wt_outstanding;
}

void Lrc::do_fill(NodeId p, LineId line, LineState st, Cycle at) {
  m_.cpu(p).dcache().fill(line, st, at);
  LRCSIM_HOOK(m_, on_fill(p, line));
  m_.classifier().on_fill(p, line);
}

void Lrc::evict_victim(NodeId p, const cache::CacheLine& victim, Cycle at) {
  LRCSIM_HOOK(m_, on_copy_dropped(p, victim.line));
  before_line_death(p, victim.line, at);
  if (auto entry = m_.cpu(p).cb().pop_line(victim.line)) {
    send_write_through(p, victim.line, entry->words, at);
  }
  send(at, MsgKind::kEvictNotify, p, home_of(victim.line), victim.line);
  m_.classifier().on_copy_lost(p, victim.line, /*coherence=*/false);
  pending_inval_[p].erase(victim.line);
}

void Lrc::note_local_write(NodeId p, LineId line, WordMask words) {
  m_.classifier().on_write_committed(p, line, words);
}

void Lrc::flush_for_release(core::Cpu&) {}

bool Lrc::drained(core::Cpu& cpu) const {
  return cpu.wb().empty() && cpu.ot().empty() && cpu.wt_outstanding == 0 &&
         cpu.cb().empty();
}

void Lrc::before_line_death(NodeId, LineId, Cycle) {}

CpuOp Lrc::drain_for_release(core::Cpu& cpu) {
  while (true) {
    flush_for_release(cpu);
    while (auto e = cpu.cb().pop()) {
      send_write_through(cpu.id(), e->line, e->words, cpu.now());
    }
    if (drained(cpu)) break;
    co_await Wait{stats::StallKind::kSync};
  }
}

CpuOp Lrc::acquire(core::Cpu& cpu, SyncId s) {
  // Start applying already-buffered notices now; their processing overlaps
  // with the lock-grant latency (§2 of the paper). The ablation knob
  // lrc_overlap_acquire defers everything to grant time instead.
  if (params().lrc_overlap_acquire) {
    apply_invals(cpu.id(), cpu.now());
  }
  set_sync_done(cpu.id(), false);
  m_.sync().request_lock(cpu.id(), s, cpu.now());
  while (!sync_done(cpu.id())) co_await Wait{stats::StallKind::kSync};
}

CpuOp Lrc::fence(core::Cpu& cpu) {
  // Process all buffered write notices now; the processor waits for the
  // invalidations to complete (acquire semantics without a lock).
  const Cycle done = apply_invals(cpu.id(), cpu.now());
  if (done > cpu.now()) {
    m_.schedule_poke(cpu.id(), done);
    while (cpu.now() < done) co_await Wait{stats::StallKind::kSync};
  }
}

CpuOp Lrc::release(core::Cpu& cpu, SyncId s) {
  co_await drain_for_release(cpu);
  m_.sync().release_lock(cpu.id(), s, cpu.now());
}

CpuOp Lrc::barrier(core::Cpu& cpu, SyncId s) {
  co_await drain_for_release(cpu);
  set_sync_done(cpu.id(), false);
  m_.sync().barrier_arrive(cpu.id(), s, cpu.now());
  while (!sync_done(cpu.id())) co_await Wait{stats::StallKind::kSync};
}

CpuOp Lrc::finalize(core::Cpu& cpu) { co_await drain_for_release(cpu); }

// ---- Message dispatch ----------------------------------------------------------

Cycle Lrc::handle(const Message& msg, Cycle start) {
  switch (msg.kind) {
    case MsgKind::kReadReq:
      return home_read(msg, start);
    case MsgKind::kWriteReq:
      return home_write_req(msg, start);
    case MsgKind::kNoticeAck:
      return home_notice_ack(msg, start);
    case MsgKind::kEvictNotify:
    case MsgKind::kInvalNotify:
      return home_membership_update(msg, start);
    case MsgKind::kWriteThrough:
      return home_write_through(msg, start);
    case MsgKind::kWriteNotice:
      return node_write_notice(msg, start);
    case MsgKind::kWriteAck:
      return node_write_ack(msg, start);
    case MsgKind::kReadReply:
    case MsgKind::kReadExReply:
      return node_fill(msg, start);
    case MsgKind::kWriteThroughAck:
      return node_wt_ack(msg, start);
    // proto-lint: unreachable(kReadExReq, kUpgradeReq, kWritebackData,
    //   kSharingWriteback, kInval, kFwdReadReq, kFwdReadExReq, kFwdDataReply,
    //   kInvalAck, kUpgradeAck : exclusive-ownership vocabulary of the MSI
    //   family; LRC never acquires ownership or forwards, so none is emitted)
    default:
      assert(false && "unexpected message kind in LRC protocol");
      return 1;
  }
}

// ---- Home side ------------------------------------------------------------------

unsigned Lrc::send_notices(DirEntry& e, LineId line, NodeId home,
                           NodeId except, Cycle at) {
  const ProcMask targets = e.sharers & ~e.notified & ~proc_bit(except);
  unsigned n = 0;
  for (NodeId t = 0; t < m_.nprocs(); ++t) {
    if (targets & proc_bit(t)) {
      send(at, MsgKind::kWriteNotice, home, t, line);
      ++n;
    }
  }
  e.notified |= targets;
  e.notices_outstanding += n;
  return n;
}

Cycle Lrc::home_read(const Message& msg, Cycle start) {
  const NodeId home = msg.dst;
  const NodeId req = msg.src;
  DirEntry& e = dir_.entry(msg.line);
  const Cycle cost = params().lrc_dir_cost;
  std::uint64_t tag = 0;

  switch (e.state) {
    case DirState::kUncached:
      e.state = DirState::kShared;
      break;
    case DirState::kShared:
      break;
    case DirState::kDirty:
      if (e.owner() != req) {
        // Footnote 1: a read can push a Dirty line Weak; the current writer
        // gets the extra notice. The home never forwards — memory's copy is
        // sufficient because no synchronization separates the write from
        // this read (true sharing is not occurring).
        e.state = DirState::kWeak;
        e.sharers |= proc_bit(req);
        send_notices(e, msg.line, home, req, start + cost);
        tag = kTagWeak;
      }
      break;
    case DirState::kWeak:
      tag = kTagWeak;
      break;
  }
  e.sharers |= proc_bit(req);
  if (tag & kTagWeak) e.notified |= proc_bit(req);
  const Cycle mem = dram_line(home, msg.line, start, /*write=*/false);
  send(std::max(mem, start + cost), MsgKind::kReadReply, home, req, msg.line,
       line_bytes(), tag);
  return cost;
}

Cycle Lrc::home_write_req(const Message& msg, Cycle start) {
  const NodeId home = msg.dst;
  const NodeId writer = msg.src;
  DirEntry& e = dir_.entry(msg.line);
  const Cycle cost = params().lrc_dir_cost;
  const bool need_data = (msg.tag & kTagNeedData) != 0;

  e.sharers |= proc_bit(writer);
  e.writers |= proc_bit(writer);
  if (e.sharer_count() == 1) {
    e.state = DirState::kDirty;
  } else {
    e.state = DirState::kWeak;
    send_notices(e, msg.line, home, writer, start + cost);
  }

  // The writer's release depends on every notice outstanding right now —
  // its own plus any earlier ones whose sharers are not yet informed — but
  // never on notices later writers will generate.
  const unsigned depends = e.notices_outstanding;
  const bool weak = e.state == DirState::kWeak;
  std::uint64_t tag = weak ? kTagWeak : 0;
  if (weak) e.notified |= proc_bit(writer);

  if (need_data) {
    const Cycle mem = dram_line(home, msg.line, start, /*write=*/false);
    if (depends > 0) {
      e.collections.push_back({writer, depends}, dir_.col_pool(msg.line));
    } else {
      tag |= kTagAcked;
    }
    send(std::max(mem, start + cost), MsgKind::kReadExReply, home, writer,
         msg.line, line_bytes(), tag);
  } else {
    if (depends > 0) {
      e.collections.push_back({writer, depends}, dir_.col_pool(msg.line));
    } else {
      send(start + cost, MsgKind::kWriteAck, home, writer, msg.line, 0, tag);
    }
  }
  return cost;
}

Cycle Lrc::home_notice_ack(const Message& msg, Cycle start) {
  DirEntry& e = dir_.entry(msg.line);
  const NodeId home = msg.dst;
  const Cycle cost = params().dir_update_cost;
  assert(e.notices_outstanding > 0);
  --e.notices_outstanding;
  const std::uint64_t tag = e.state == DirState::kWeak ? kTagWeak : 0;
  e.collections.erase_if(dir_.col_pool(msg.line),
                         [&](DirEntry::NoticeCollection& c) {
    if (--c.remaining != 0) return false;
    send(start + cost, MsgKind::kWriteAck, home, c.writer, msg.line, 0, tag);
    if (tag & kTagWeak) e.notified |= proc_bit(c.writer);
    return true;
  });
  return cost;
}

Cycle Lrc::home_membership_update(const Message& msg, Cycle /*start*/) {
  DirEntry& e = dir_.entry(msg.line);
  const NodeId p = msg.src;
  e.sharers &= ~proc_bit(p);
  e.writers &= ~proc_bit(p);
  e.notified &= ~proc_bit(p);
#ifdef LRCSIM_CHECK
  // Schedule-dependent negative-test mutation: a membership update that
  // lost a same-cycle arrival race skips the state recomputation, leaving
  // the entry's state field inconsistent with its masks.
  if (msg.tie_inverted && check::active_mutation() ==
                              check::Mutation::kTieSkipMembershipRecompute) {
    return params().dir_update_cost;
  }
#endif
  e.recompute_lrc_state();
  return params().dir_update_cost;
}

Cycle Lrc::home_write_through(const Message& msg, Cycle start) {
  const Cycle mem =
      mem_write_through(msg.dst, msg.line, start, msg.payload_bytes);
  send(mem, MsgKind::kWriteThroughAck, msg.dst, msg.src, msg.line);
  return 1;
}

// ---- Node side ------------------------------------------------------------------

Cycle Lrc::node_write_notice(const Message& msg, Cycle start) {
  const NodeId p = msg.dst;
  const Cycle cost = params().write_notice_cost;
  const bool buffer_inval =
      m_.cpu(p).dcache().find(msg.line) != nullptr
#ifdef LRCSIM_CHECK
      // Schedule-dependent negative-test mutation: a notice that lost a
      // same-cycle arrival race is acked but its invalidation is dropped.
      && !(msg.tie_inverted && check::active_mutation() ==
                                   check::Mutation::kTieDropWriteNotice)
#endif
      ;
  if (buffer_inval) {
    pending_inval_[p].insert(msg.line);
  }
  if ((msg.tag & kTagNoAck) == 0) {
    send(start + cost, MsgKind::kNoticeAck, p, msg.src, msg.line);
  }
  return cost;
}

Cycle Lrc::node_write_ack(const Message& msg, Cycle start) {
  const NodeId p = msg.dst;
  auto& cpu = m_.cpu(p);
  cache::OtEntry* e = cpu.ot().find(msg.line);
  assert(e != nullptr && "write ack without outstanding transaction");
  assert(e->acks_pending > 0);
  --e->acks_pending;
  if ((msg.tag & kTagWeak) != 0 &&
      cpu.dcache().find(msg.line) != nullptr) {
    pending_inval_[p].insert(msg.line);
  }
  if (e->done()) cpu.ot().erase(msg.line);
  cpu.poke(start + 1);
  return 1;
}

Cycle Lrc::node_fill(const Message& msg, Cycle start) {
  const NodeId p = msg.dst;
  auto& cpu = m_.cpu(p);
  cache::OtEntry* e = cpu.ot().find(msg.line);
  assert(e != nullptr && "data reply without outstanding transaction");
  const Cycle fill = bus_fill_cost();
  const Cycle done = start + fill;

  do_fill(p, msg.line,
          e->want_write ? LineState::kReadWrite : LineState::kReadOnly, done);
  if (e->want_write && e->wb_slot >= 0) {
    const auto entry = cpu.wb().retire(e->wb_slot);
    e->wb_slot = -1;
    cb_add(cpu, msg.line, entry.words, done);
    note_local_write(p, msg.line, entry.words);
  }
  if ((msg.tag & kTagWeak) != 0) pending_inval_[p].insert(msg.line);
  if ((msg.tag & kTagAcked) != 0 && e->acks_pending > 0) --e->acks_pending;
  e->data_pending = false;
  if (e->done()) cpu.ot().erase(msg.line);
  cpu.poke(done);
  return fill;
}

Cycle Lrc::node_wt_ack(const Message& msg, Cycle start) {
  auto& cpu = m_.cpu(msg.dst);
  assert(cpu.wt_outstanding > 0);
  --cpu.wt_outstanding;
  cpu.poke(start + 1);
  return 1;
}

}  // namespace lrc::proto
