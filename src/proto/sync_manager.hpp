// Queue-based lock and centralized barrier service. Each synchronization
// variable is homed at node (id % nprocs); requests, grants, releases and
// barrier traffic travel over the mesh and occupy protocol processors like
// any other coherence message. Protocols hook grant/release delivery to run
// their acquire-side work (e.g. LRC applies buffered write notices there).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mesh/message.hpp"
#include "sim/types.hpp"

namespace lrc::core {
class Machine;
}

namespace lrc::proto {

/// Aggregate synchronization statistics (reported per run).
struct SyncStats {
  std::uint64_t lock_requests = 0;
  std::uint64_t lock_grants = 0;
  std::uint64_t queued_requests = 0;  // granted only after waiting in line
  std::uint64_t max_queue = 0;        // deepest waiter queue observed
  std::uint64_t barrier_arrivals = 0;
};

class SyncManager {
 public:
  explicit SyncManager(core::Machine& m);

  NodeId home_of(SyncId s) const;

  /// Fiber-context senders (non-blocking; the protocol blocks the cpu and
  /// the callbacks below complete the operation).
  void request_lock(NodeId p, SyncId s, Cycle t);
  void release_lock(NodeId p, SyncId s, Cycle t);
  void barrier_arrive(NodeId p, SyncId s, Cycle t);

  /// True for message kinds this service owns. The synchronization kinds
  /// form the contiguous tail of MsgKind (kLockReq..kBarrierRelease), so
  /// the per-delivery ownership test is a single compare (static_asserted
  /// in sync_manager.cpp).
  static bool owns(mesh::MsgKind k) { return k >= mesh::MsgKind::kLockReq; }

  /// Event-context processing; returns protocol-processor cost.
  Cycle handle(const mesh::Message& msg, Cycle start);

  /// Invoked at the *requesting* node when its grant/release message has
  /// been processed. Installed by the protocol.
  std::function<void(NodeId p, SyncId s, Cycle t)> on_lock_granted;
  std::function<void(NodeId p, SyncId s, Cycle t)> on_barrier_released;

  // Introspection for tests and reports. stats() sums the per-node rows in
  // node order (max_queue merges with max), so sharded totals are
  // bit-identical to a serial run's single accumulator.
  bool lock_held(SyncId s) const;
  std::size_t lock_queue_len(SyncId s) const;
  SyncStats stats() const;
  const SyncStats& node_stats(NodeId n) const { return stats_[n]; }

 private:
  struct LockState {
    bool held = false;
    NodeId holder = kInvalidNode;
    std::deque<NodeId> waiters;
  };
  struct BarrierState {
    unsigned arrived = 0;
  };

  core::Machine& m_;
  // Lock/barrier state is partitioned by home node (home_of(s) is the only
  // node that ever touches variable s's entry), and counters by acting
  // node, so sharded runs mutate only shard-local rows.
  // det-lint: ok(keyed access only — nothing ever iterates these maps, so
  //   their unspecified order cannot reach stats or reports; values hold a
  //   deque, which FlatMap's trivially-copyable constraint rules out)
  std::vector<std::unordered_map<SyncId, LockState>> locks_;    // [home]
  // det-lint: ok(keyed access only, never iterated; see locks_ above)
  std::vector<std::unordered_map<SyncId, BarrierState>> barriers_;  // [home]
  std::vector<SyncStats> stats_;  // [acting node]
};

}  // namespace lrc::proto
