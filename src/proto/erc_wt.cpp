#include <algorithm>
#include <bit>
#include <cassert>

#include "check/hooks.hpp"
#include "proto/msi.hpp"

namespace lrc::proto {

using cache::LineState;
using mesh::Message;
using mesh::MsgKind;

void ErcWt::send_write_through(NodeId p, LineId line, WordMask words,
                               Cycle at) {
  const auto payload = static_cast<std::uint32_t>(
      std::popcount(words) * mem::AddressMap::kWordBytes);
  mesh::Message msg;
  msg.kind = MsgKind::kWriteThrough;
  msg.src = p;
  msg.dst = home_of(line);
  msg.line = line;
  msg.payload_bytes = payload;
  msg.words = words;
  m_.nic().send(at, msg);
  ++m_.cpu(p).wt_outstanding;
}

void ErcWt::commit_write(NodeId p, LineId line, WordMask words) {
  // Write-through data path: words stream to memory via the coalescing
  // buffer instead of dirtying the cache line. This runs both in fiber
  // context (write hits) and in event context (write-buffer retires), where
  // the processor's local clock may lag the event clock — flushes happen at
  // whichever is current.
  auto& cpu = m_.cpu(p);
  assert(cpu.dcache().find(line) != nullptr);
  if (auto victim = cpu.cb().add(line, words)) {
    send_write_through(p, victim->line, victim->words,
                       std::max(cpu.now(), m_.now_at(cpu.id())));
  }
  m_.classifier().on_write_committed(p, line, words);
}

void ErcWt::evict_victim(NodeId p, const cache::CacheLine& victim, Cycle at) {
  LRCSIM_HOOK(m_, on_copy_dropped(p, victim.line));
  m_.classifier().on_copy_lost(p, victim.line, /*coherence=*/false);
  // Lines are never dirty; pending words leave through the coalescing
  // buffer instead of a writeback.
  if (auto entry = m_.cpu(p).cb().pop_line(victim.line)) {
    send_write_through(p, victim.line, entry->words, at);
  }
}

void ErcWt::flush_cb(core::Cpu& cpu) {
  while (auto e = cpu.cb().pop()) {
    send_write_through(cpu.id(), e->line, e->words, cpu.now());
  }
}

CpuOp ErcWt::drain(core::Cpu& cpu) {
  while (true) {
    flush_cb(cpu);
    if (cpu.wb().empty() && cpu.ot().empty() && cpu.wt_outstanding == 0 &&
        cpu.cb().empty()) {
      break;
    }
    co_await Wait{stats::StallKind::kSync};
  }
}

CpuOp ErcWt::release(core::Cpu& cpu, SyncId s) {
  co_await drain(cpu);
  m_.sync().release_lock(cpu.id(), s, cpu.now());
}

CpuOp ErcWt::barrier(core::Cpu& cpu, SyncId s) {
  co_await drain(cpu);
  set_sync_done(cpu.id(), false);
  m_.sync().barrier_arrive(cpu.id(), s, cpu.now());
  while (!sync_done(cpu.id())) co_await Wait{stats::StallKind::kSync};
}

CpuOp ErcWt::finalize(core::Cpu& cpu) { co_await drain(cpu); }

Cycle ErcWt::handle(const Message& msg, Cycle start) {
  switch (msg.kind) {
    case MsgKind::kWriteThrough: {
      const Cycle mem =
          mem_write_through(msg.dst, msg.line, start, msg.payload_bytes);
      mesh::Message ack;
      ack.kind = MsgKind::kWriteThroughAck;
      ack.src = msg.dst;
      ack.dst = msg.src;
      ack.line = msg.line;
      m_.nic().send(mem, ack);
      return 1;
    }
    case MsgKind::kWriteThroughAck: {
      auto& cpu = m_.cpu(msg.dst);
      assert(cpu.wt_outstanding > 0);
      --cpu.wt_outstanding;
      cpu.poke(start + 1);
      return 1;
    }
    default:
      return MsiBase::handle(msg, start);
  }
}

}  // namespace lrc::proto
