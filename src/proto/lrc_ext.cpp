#include <cassert>

#include "proto/lrc.hpp"

namespace lrc::proto {

using cache::LineState;

LrcExt::LrcExt(core::Machine& m)
    : Lrc(m),
      delayed_(m.nprocs()),
      flush_scratch_(m.nprocs()),
      announced_(m.nprocs()) {}

CpuOp LrcExt::cpu_write(core::Cpu& cpu, Addr a, std::uint32_t bytes) {
  const NodeId p = cpu.id();
  const LineId line = line_of(a);
  const WordMask words = words_of(a, bytes);
  auto& cache = cpu.dcache();

  while (true) {
    cache::CacheLine* cl = cache.lookup(line, cpu.now());
    if (cl != nullptr && cl->state == LineState::kReadWrite) {
      ++cache.stats().write_hits;
      cb_add(cpu, line, words, cpu.now());
      note_local_write(p, line, words);
      cpu.tick(1 + cache.hit_penalty());
      co_return;
    }
    if (cl != nullptr) {
      // Present read-only: buffer the write notice locally instead of
      // contacting the home node — this is the protocol's defining delay.
      ++cache.stats().upgrade_misses;
      m_.classifier().classify(p, line, word_of(a), /*upgrade=*/true);
      cl->state = LineState::kReadWrite;
      cb_add(cpu, line, words, cpu.now());
      note_local_write(p, line, words);
      cpu.tick(1 + cache.hit_penalty());
      co_return;
    }
    if (cpu.wb().find(line) >= 0) {
      cpu.wb().push(line, words);
      if (cache::OtEntry* e = cpu.ot().find(line)) e->words |= words;
      ++cache.stats().write_hits;
      cpu.tick(1);
      co_return;
    }
    if (cache::OtEntry* e0 = cpu.ot().find(line); e0 != nullptr) {
      if (e0->data_pending) {
        while (true) {
          cache::OtEntry* cur = cpu.ot().find(line);
          if (cur == nullptr || !cur->data_pending) break;
          co_await Wait{stats::StallKind::kWrite};
        }
      } else {
        while (cpu.ot().find(line) != nullptr) {
          co_await Wait{stats::StallKind::kWrite};
        }
      }
      continue;
    }
    const int slot = cpu.wb().push(line, words);
    if (slot < 0) {
      co_await Wait{stats::StallKind::kWrite};
      continue;
    }
    ++cache.stats().write_misses;
    m_.classifier().classify(p, line, word_of(a), /*upgrade=*/false);
    // Fetch the data with a plain read; the write announcement waits for a
    // release or eviction.
    bool created = false;
    cache::OtEntry& e = cpu.ot().get_or_create(line, &created);
    assert(created);
    e.data_pending = true;
    e.want_write = true;
    e.wb_slot = slot;
    e.words |= words;
    send(cpu.now(), mesh::MsgKind::kReadReq, p, home_of(line, p), line);
    cpu.tick(1);
    co_return;
  }
}

void LrcExt::note_local_write(NodeId p, LineId line, WordMask words) {
  if (announced_[p].count(line) != 0) {
    // The home already lists us as a writer for this line; nothing is
    // buffered, so the write is immediately (classifier-)visible.
    m_.classifier().on_write_committed(p, line, words);
  } else {
    delayed_[p].get_or_create(line) |= words;
  }
}

void LrcExt::flush_delayed_line(NodeId p, LineId line, Cycle at) {
  const WordMask* w = delayed_[p].find(line);
  if (w == nullptr) return;
  const WordMask words = *w;
  delayed_[p].erase(line);
  announced_[p].insert(line);
  m_.classifier().on_write_committed(p, line, words);

  auto& cpu = m_.cpu(p);
  bool created = false;
  cache::OtEntry& e = cpu.ot().get_or_create(line, &created);
  e.want_write = true;
  e.acks_pending += 1;
  e.words |= words;
  send(at, mesh::MsgKind::kWriteReq, p, home_of(line), line, 0, 0, words);
}

void LrcExt::flush_for_release(core::Cpu& cpu) {
  const NodeId p = cpu.id();
  // Snapshot the keys (flushing mutates the map) into a reused scratch
  // buffer so steady-state releases allocate nothing.
  std::vector<LineId>& scratch = flush_scratch_[p];
  scratch.clear();
  delayed_[p].for_each(
      [&scratch](LineId line, WordMask) { scratch.push_back(line); });
  for (LineId line : scratch) flush_delayed_line(p, line, cpu.now());
}

bool LrcExt::drained(core::Cpu& cpu) const {
  return Lrc::drained(cpu) && delayed_[cpu.id()].empty();
}

void LrcExt::before_line_death(NodeId p, LineId line, Cycle at) {
  flush_delayed_line(p, line, at);
  announced_[p].erase(line);
}

}  // namespace lrc::proto
