#include "proto/base.hpp"

namespace lrc::proto {

ProtocolBase::ProtocolBase(core::Machine& m)
    : m_(m), sync_done_(m.nprocs(), 0) {}

}  // namespace lrc::proto
