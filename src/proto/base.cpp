#include "proto/base.hpp"

namespace lrc::proto {

ProtocolBase::ProtocolBase(core::Machine& m)
    : m_(m), sync_done_(m.nprocs(), 0) {}

void ProtocolBase::send(Cycle t, mesh::MsgKind kind, NodeId src, NodeId dst,
                        LineId line, std::uint32_t payload_bytes,
                        std::uint64_t tag, WordMask words, NodeId requester) {
  mesh::Message msg;
  msg.kind = kind;
  msg.src = src;
  msg.dst = dst;
  msg.line = line;
  msg.payload_bytes = payload_bytes;
  msg.tag = tag;
  msg.words = words;
  msg.requester = requester;
  m_.nic().send(t, msg);
}

}  // namespace lrc::proto
