#include "proto/directory.hpp"

// Directory is header-only; this translation unit anchors it in the library.
namespace lrc::proto {}
