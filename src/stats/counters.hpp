// Per-processor cycle accounting in the four categories the paper's
// overhead-analysis figures use: CPU busy, read-miss stalls, write(-buffer)
// stalls, and synchronization stalls.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/types.hpp"

namespace lrc::stats {

enum class StallKind : std::uint8_t {
  kCpu = 0,    // compute + cache-hit cycles
  kRead,       // blocked on read misses
  kWrite,      // write stalls (buffer full, SC write completion)
  kSync,       // lock acquire/release waits, barrier waits
  kCount
};

constexpr std::size_t kStallKinds = static_cast<std::size_t>(StallKind::kCount);

std::string_view to_string(StallKind k);

struct CpuBreakdown {
  std::array<Cycle, kStallKinds> cycles{};

  Cycle& operator[](StallKind k) { return cycles[static_cast<std::size_t>(k)]; }
  Cycle operator[](StallKind k) const {
    return cycles[static_cast<std::size_t>(k)];
  }
  Cycle total() const {
    Cycle t = 0;
    for (auto c : cycles) t += c;
    return t;
  }
  CpuBreakdown& operator+=(const CpuBreakdown& o) {
    for (std::size_t i = 0; i < kStallKinds; ++i) cycles[i] += o.cycles[i];
    return *this;
  }
};

inline std::string_view to_string(StallKind k) {
  switch (k) {
    case StallKind::kCpu: return "cpu";
    case StallKind::kRead: return "read";
    case StallKind::kWrite: return "write";
    case StallKind::kSync: return "sync";
    case StallKind::kCount: break;
  }
  return "?";
}

}  // namespace lrc::stats
