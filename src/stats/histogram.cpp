#include "stats/histogram.hpp"

#include <cstdio>

namespace lrc::stats {

Cycle Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) {
      if (b + 1 >= kBuckets) return max_;
      const Cycle bound = (Cycle{1} << (b + 1)) - 1;
      return bound < max_ ? bound : max_;
    }
  }
  return max_;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.1f p50<=%llu p95<=%llu max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(quantile(0.5)),
                static_cast<unsigned long long>(quantile(0.95)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace lrc::stats
