// Minimal fixed-width text-table builder used by the benchmark harness and
// reports to print paper-style tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lrc::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment: first column left, rest right.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

  /// Numeric formatting helpers.
  static std::string pct(double fraction, int decimals = 1);   // 0.123 -> "12.3%"
  static std::string fixed(double v, int decimals = 2);
  static std::string count(std::uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace lrc::stats
