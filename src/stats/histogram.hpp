// Log-bucketed latency histogram: cheap to update on every stall, good
// enough for p50/p95/p99 reporting of miss and synchronization latencies.
// Buckets are powers of two: bucket b holds samples in [2^b, 2^(b+1)).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace lrc::stats {

class Histogram {
 public:
  static constexpr unsigned kBuckets = 32;

  void add(Cycle value) {
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
    ++buckets_[bucket_of(value)];
  }

  std::uint64_t count() const { return count_; }
  Cycle sum() const { return sum_; }
  Cycle max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Upper bound of the bucket containing the q-quantile sample
  /// (q in [0, 1]); 0 when empty. Accurate to within a factor of two.
  Cycle quantile(double q) const;

  std::uint64_t bucket(unsigned b) const { return buckets_[b]; }

  Histogram& operator+=(const Histogram& o) {
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
    for (unsigned b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
    return *this;
  }

  /// One-line summary: count / mean / p50 / p95 / max.
  std::string summary() const;

  static unsigned bucket_of(Cycle value) {
    unsigned b = 0;
    while (value > 1 && b + 1 < kBuckets) {
      value >>= 1;
      ++b;
    }
    return b;
  }

 private:
  std::uint64_t count_ = 0;
  Cycle sum_ = 0;
  Cycle max_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

}  // namespace lrc::stats
