#include "stats/counters.hpp"

// Header-only accounting; this translation unit anchors the component in the
// library so future non-inline additions have a home.
namespace lrc::stats {}
