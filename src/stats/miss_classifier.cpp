#include "stats/miss_classifier.hpp"

#include <bit>
#include <cassert>

namespace lrc::stats {

MissClassifier::MissClassifier(unsigned nprocs, unsigned words_per_line)
    : nprocs_(nprocs),
      words_per_line_(words_per_line),
      hist_(nprocs),
      per_proc_(nprocs) {
  assert(words_per_line_ >= 1 && words_per_line_ <= 64);
}

void MissClassifier::on_write_committed(NodeId writer, LineId line,
                                        WordMask words) {
  std::unique_lock<std::mutex> lk(mu_, std::defer_lock);
  if (concurrent_) lk.lock();
  bool created = false;
  std::uint32_t& block = word_index_.get_or_create(line, &created);
  if (created) {
    block = static_cast<std::uint32_t>(word_info_.size() / words_per_line_);
    word_info_.resize(word_info_.size() + words_per_line_);
  }
  WordInfo* info = word_info_.data() +
                   static_cast<std::size_t>(block) * words_per_line_;
  ++stamp_;
  for (WordMask m = words; m != 0; m &= m - 1) {
    const unsigned w = static_cast<unsigned>(std::countr_zero(m));
    info[w].writer = writer;
    info[w].stamp = stamp_;
  }
}

void MissClassifier::on_fill(NodeId proc, LineId line) {
  std::unique_lock<std::mutex> lk(mu_, std::defer_lock);
  if (concurrent_) lk.lock();
  LineHist& h = hist_[proc].get_or_create(line);
  h.status = LineHist::Status::kCached;
  h.fill_stamp = stamp_;
}

void MissClassifier::on_copy_lost(NodeId proc, LineId line, bool coherence) {
  std::unique_lock<std::mutex> lk(mu_, std::defer_lock);
  if (concurrent_) lk.lock();
  LineHist& h = hist_[proc].get_or_create(line);
  h.status = coherence ? LineHist::Status::kLostInval
                       : LineHist::Status::kLostEvict;
}

MissClass MissClassifier::classify(NodeId proc, LineId line, unsigned word,
                                   bool upgrade) {
  std::unique_lock<std::mutex> lk(mu_, std::defer_lock);
  if (concurrent_) lk.lock();
  MissClass c;
  if (upgrade) {
    c = MissClass::kWrite;
  } else {
    const LineHist* h = hist_[proc].find(line);
    if (h == nullptr || h->status == LineHist::Status::kNever) {
      c = MissClass::kCold;
    } else {
      // If the line is (status-wise) still kCached we are classifying a miss
      // on a line the protocol believes resident; treat as cold-equivalent
      // bookkeeping error — should not happen, assert in debug.
      assert(h->status != LineHist::Status::kCached &&
             "miss on a line recorded as cached");
      const std::uint32_t* block = word_index_.find(line);
      bool word_written = false;   // the missed word, by another proc
      bool line_written = false;   // any word of the line, by another proc
      if (block != nullptr) {
        const WordInfo* info =
            word_info_.data() +
            static_cast<std::size_t>(*block) * words_per_line_;
        for (unsigned w = 0; w < words_per_line_; ++w) {
          if (info[w].writer != kInvalidNode && info[w].writer != proc &&
              info[w].stamp > h->fill_stamp) {
            line_written = true;
            if (w == word) word_written = true;
          }
        }
      }
      if (word_written) {
        c = MissClass::kTrueSharing;
      } else if (line_written) {
        c = MissClass::kFalseSharing;
      } else {
        // No foreign write since the copy died: a replacement victim misses
        // again purely due to capacity/conflict. An invalidation with no
        // foreign write is counted as false sharing (the notice was useless).
        c = (h->status == LineHist::Status::kLostEvict) ? MissClass::kEviction
                                                        : MissClass::kFalseSharing;
      }
    }
  }
  ++per_proc_[proc][c];
  return c;
}

MissCounts MissClassifier::aggregate() const {
  MissCounts total;
  for (const auto& p : per_proc_) total += p;
  return total;
}

}  // namespace lrc::stats
