#include "stats/miss_classifier.hpp"

#include <cassert>

namespace lrc::stats {

MissClassifier::MissClassifier(unsigned nprocs, unsigned words_per_line)
    : nprocs_(nprocs),
      words_per_line_(words_per_line),
      hist_(nprocs),
      per_proc_(nprocs) {
  assert(words_per_line_ >= 1 && words_per_line_ <= 64);
}

void MissClassifier::on_write_committed(NodeId writer, LineId line,
                                        WordMask words) {
  auto& info = words_[line];
  if (info.empty()) info.resize(words_per_line_);
  ++stamp_;
  for (unsigned w = 0; w < words_per_line_; ++w) {
    if (words & (WordMask{1} << w)) {
      info[w].writer = writer;
      info[w].stamp = stamp_;
    }
  }
}

void MissClassifier::on_fill(NodeId proc, LineId line) {
  auto& h = hist_[proc][line];
  h.status = LineHist::Status::kCached;
  h.fill_stamp = stamp_;
}

void MissClassifier::on_copy_lost(NodeId proc, LineId line, bool coherence) {
  auto& h = hist_[proc][line];
  h.status = coherence ? LineHist::Status::kLostInval
                       : LineHist::Status::kLostEvict;
}

MissClass MissClassifier::classify(NodeId proc, LineId line, unsigned word,
                                   bool upgrade) {
  MissClass c;
  if (upgrade) {
    c = MissClass::kWrite;
  } else {
    const auto it = hist_[proc].find(line);
    if (it == hist_[proc].end() ||
        it->second.status == LineHist::Status::kNever) {
      c = MissClass::kCold;
    } else {
      const LineHist& h = it->second;
      // If the line is (status-wise) still kCached we are classifying a miss
      // on a line the protocol believes resident; treat as cold-equivalent
      // bookkeeping error — should not happen, assert in debug.
      assert(h.status != LineHist::Status::kCached &&
             "miss on a line recorded as cached");
      const auto wit = words_.find(line);
      bool word_written = false;   // the missed word, by another proc
      bool line_written = false;   // any word of the line, by another proc
      if (wit != words_.end()) {
        const auto& info = wit->second;
        for (unsigned w = 0; w < words_per_line_; ++w) {
          if (info[w].writer != kInvalidNode && info[w].writer != proc &&
              info[w].stamp > h.fill_stamp) {
            line_written = true;
            if (w == word) word_written = true;
          }
        }
      }
      if (word_written) {
        c = MissClass::kTrueSharing;
      } else if (line_written) {
        c = MissClass::kFalseSharing;
      } else {
        // No foreign write since the copy died: a replacement victim misses
        // again purely due to capacity/conflict. An invalidation with no
        // foreign write is counted as false sharing (the notice was useless).
        c = (h.status == LineHist::Status::kLostEvict) ? MissClass::kEviction
                                                       : MissClass::kFalseSharing;
      }
    }
  }
  ++per_proc_[proc][c];
  return c;
}

MissCounts MissClassifier::aggregate() const {
  MissCounts total;
  for (const auto& p : per_proc_) total += p;
  return total;
}

}  // namespace lrc::stats
