// Miss classification following Bianchini & Kontothanassis [3] (the scheme
// behind the paper's "Figure 2" table): every miss is labeled Cold,
// True-sharing, False-sharing, Eviction, or Write (permission upgrade).
//
// Approximation (documented in DESIGN.md §6): a miss on a line whose local
// copy died is a *sharing* miss iff some other processor wrote into the line
// since the copy died — *true* sharing if the specific missed word was
// written, *false* sharing otherwise. If no foreign write intervened, a
// replacement-caused death is an Eviction miss. Writes to a present
// read-only line are Write (upgrade) misses and transfer no data.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "sim/types.hpp"
#include "util/flat_hash.hpp"

namespace lrc::stats {

enum class MissClass : std::uint8_t {
  kCold = 0,
  kTrueSharing,
  kFalseSharing,
  kEviction,
  kWrite,
  kCount
};

constexpr std::size_t kMissClasses = static_cast<std::size_t>(MissClass::kCount);

std::string_view to_string(MissClass c);

struct MissCounts {
  std::array<std::uint64_t, kMissClasses> n{};
  std::uint64_t& operator[](MissClass c) {
    return n[static_cast<std::size_t>(c)];
  }
  std::uint64_t operator[](MissClass c) const {
    return n[static_cast<std::size_t>(c)];
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto v : n) t += v;
    return t;
  }
  MissCounts& operator+=(const MissCounts& o) {
    for (std::size_t i = 0; i < kMissClasses; ++i) n[i] += o.n[i];
    return *this;
  }
};

class MissClassifier {
 public:
  MissClassifier(unsigned nprocs, unsigned words_per_line);

  /// Records that `writer`'s writes to `words` of `line` became globally
  /// visible (directory processed the write / sent notices).
  void on_write_committed(NodeId writer, LineId line, WordMask words);

  /// Records that `proc` obtained a copy of `line`.
  void on_fill(NodeId proc, LineId line);

  /// Records that `proc`'s copy of `line` died. `coherence` is true for
  /// invalidations, false for replacements.
  void on_copy_lost(NodeId proc, LineId line, bool coherence);

  /// Classifies (and counts) a miss by `proc` on `word` of `line`.
  /// `upgrade` marks a write to a present read-only line.
  MissClass classify(NodeId proc, LineId line, unsigned word, bool upgrade);

  const MissCounts& counts(NodeId proc) const { return per_proc_[proc]; }
  MissCounts aggregate() const;

  /// Sharded runs (DESIGN.md §10) serialize the classifier with a mutex:
  /// the global write stamp and word tables are cross-node by design, so
  /// they cannot be partitioned. Stamp order then depends on host-thread
  /// interleaving, which is why miss-class counts are *excluded* from the
  /// sharded determinism digest (totals per class stay close, not exact).
  void set_concurrent(bool on) { concurrent_ = on; }

 private:
  struct WordInfo {
    NodeId writer = kInvalidNode;
    std::uint64_t stamp = 0;
  };
  struct LineHist {
    enum class Status : std::uint8_t { kNever, kCached, kLostEvict, kLostInval };
    Status status = Status::kNever;
    // Global write stamp when this processor last *obtained* the copy.
    // Foreign writes after this stamp made (or would have made) the copy
    // stale — this window is what distinguishes sharing misses from pure
    // capacity/conflict misses even when invalidations are applied lazily.
    std::uint64_t fill_stamp = 0;
  };

  // on_write_committed runs for every committed write and classify for
  // every miss, so per-line state lives in flat-hash maps: word stamps are
  // blocks of `words_per_line_` entries in one contiguous array (indexed by
  // a line -> block table), and per-processor line history is stored
  // directly in the map slots (LineHist is small and never referenced
  // across another map operation).
  unsigned nprocs_;
  unsigned words_per_line_;
  bool concurrent_ = false;  // see set_concurrent()
  std::mutex mu_;            // guards everything below when concurrent_
  std::uint64_t stamp_ = 0;
  util::FlatMap<std::uint32_t> word_index_;  // line -> block number
  std::vector<WordInfo> word_info_;  // block b at [b*wpl, (b+1)*wpl)
  std::vector<util::FlatMap<LineHist>> hist_;  // per proc
  std::vector<MissCounts> per_proc_;
};

inline std::string_view to_string(MissClass c) {
  switch (c) {
    case MissClass::kCold: return "cold";
    case MissClass::kTrueSharing: return "true";
    case MissClass::kFalseSharing: return "false";
    case MissClass::kEviction: return "eviction";
    case MissClass::kWrite: return "write";
    case MissClass::kCount: break;
  }
  return "?";
}

}  // namespace lrc::stats
