#include "stats/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace lrc::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ';
      if (c == 0) {
        os << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        os << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
      os << " |";
    }
    os << '\n';
  };

  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::pct(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string Table::fixed(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string Table::count(std::uint64_t v) {
  return std::to_string(v);
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

}  // namespace lrc::stats
