// Runtime consistency checker (build with -DLRCSIM_CHECK=ON).
//
// Three layers, all driven by hooks the simulator fires in host execution
// order (which the protocols guarantee matches the simulated happens-before
// order for synchronized operations — see docs/CHECKER.md):
//
//  1. Value oracle: a vector clock per processor plus word-granularity
//     shadow memory tracks the happens-before frontier implied by
//     acquire/release/barrier events. Every cpu_read is checked against the
//     release-consistency legal-value rule: if the latest write to the word
//     happens-before the read, the reader's cached copy must reflect a
//     version at least that new. Reads/writes not ordered by synchronization
//     are data races; they are counted (the paper's racy-program discussion,
//     §4.2) but are not consistency violations.
//  2. Directory invariants: after every Protocol::handle the touched entry
//     is checked — sharer/writer/notified mask agreement, Weak entry/exit
//     bookkeeping, write-notice countdown monotonicity, and the MSI
//     busy-transaction rules. A quiescent whole-directory check runs at the
//     end of Machine::run.
//  3. Drain-before-release: after every release/barrier/finalize drain the
//     write buffer, outstanding-transaction table, coalescing buffer, and
//     write-through counter must be empty.
//
// Violations are collected, never thrown from fiber/event context; in
// strict mode Machine::run rethrows them as ViolationError once the engine
// has stopped.
#pragma once

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "mesh/message.hpp"
#include "proto/directory.hpp"
#include "sim/types.hpp"
#include "util/flat_hash.hpp"

namespace lrc::core {
class Cpu;
class Machine;
}  // namespace lrc::core

namespace lrc::proto {
class ProtocolBase;
}

namespace lrc::check {

/// Deliberate protocol bugs for negative tests: the checker must catch
/// every mutation. Consulted by the protocols only in LRCSIM_CHECK builds.
enum class Mutation : std::uint8_t {
  kNone,
  /// LRC/LRC-ext: drop buffered write notices instead of invalidating at
  /// acquire — the paper's central correctness obligation.
  kSkipAcquireInvalidation,
  /// LRC/LRC-ext, schedule-dependent: a write notice that lost a same-cycle
  /// arrival race at its sink (mesh::Message::tie_inverted) is acked but its
  /// invalidation is never buffered — models a handler that assumes arrival
  /// order within a cycle. Unreachable in default runs (ties always resolve
  /// in ascending seq order there); the src/mc explorer reaches it and the
  /// value oracle reports the resulting stale read.
  kTieDropWriteNotice,
  /// LRC/LRC-ext, schedule-dependent: an evict/inval membership update that
  /// lost a same-cycle arrival race clears its masks but skips the
  /// Weak->Shared->Uncached state recomputation. Same reachability story;
  /// caught by the directory invariant "state disagrees with masks".
  kTieSkipMembershipRecompute,
};

Mutation active_mutation();
void set_mutation(Mutation m);

/// RAII guard for tests.
struct MutationGuard {
  explicit MutationGuard(Mutation m) { set_mutation(m); }
  ~MutationGuard() { set_mutation(Mutation::kNone); }
};

/// Thrown by Machine::run (strict mode) after the engine stops, if any
/// violation was recorded.
class ViolationError : public std::runtime_error {
 public:
  explicit ViolationError(const std::string& what)
      : std::runtime_error(what) {}
};

class Checker {
 public:
  explicit Checker(core::Machine& m, bool strict);
  ~Checker();  // flushes the transition log, when enabled

  // ---- Hooks (fired via LRCSIM_HOOK; host execution order) ---------------

  void on_read(NodeId p, Addr a, std::uint32_t bytes);
  void on_write(NodeId p, Addr a, std::uint32_t bytes);

  /// A line filled into p's cache: p's copy now reflects memory, which is
  /// current w.r.t. every write that happens-before any synchronized read
  /// p can perform on it (release drains guarantee this for DRF traces).
  void on_fill(NodeId p, LineId line);

  /// p's cached copy died (eviction, invalidation, or applied write notice).
  void on_copy_dropped(NodeId p, LineId line);

  void on_acquire(NodeId p, SyncId s);   // after the grant returned
  void on_release(NodeId p, SyncId s);   // before the protocol releases
  void on_barrier_arrive(NodeId p, SyncId s);
  void on_barrier_done(NodeId p, SyncId s);

  /// After release/barrier/finalize returned: all store buffering drained.
  void on_release_drained(core::Cpu& cpu, const char* where);

  /// Before Protocol::handle(msg): records the observed (family,
  /// state-before, kind) transition when LRCSIM_TRANSITION_LOG names a
  /// file, feeding the static analyzer's coverage report (docs/STATIC.md).
  void before_handle(const mesh::Message& msg);

  /// Directory invariants for msg.line after Protocol::handle(msg).
  void after_handle(const mesh::Message& msg);

  /// Quiescent end-of-run checks (normal context; safe to throw later).
  void final_check();

  /// Strict mode: throw ViolationError if anything was recorded.
  void throw_if_violations();

  // ---- Results ------------------------------------------------------------

  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t racy_reads() const { return racy_reads_; }
  std::uint64_t racy_writes() const { return racy_writes_; }
  std::uint64_t races() const { return racy_reads_ + racy_writes_; }
  std::uint64_t reads_checked() const { return reads_checked_; }
  std::uint64_t writes_tracked() const { return writes_tracked_; }
  std::uint64_t copies_dropped() const { return copies_dropped_; }
  bool strict() const { return strict_; }

 private:
  struct WordCell {
    std::uint64_t version = 0;      // 0 = only the initial (untimed) value
    std::uint64_t write_epoch = 0;  // writer's scalar clock at the write
    NodeId writer = kInvalidNode;
    std::vector<std::uint64_t> read_epochs;  // per-proc last-read epochs
  };
  struct LineShadow {
    std::vector<WordCell> words;  // sized words_per_line on first touch
  };
  struct BarrierState {
    std::vector<std::uint64_t> accum;     // join of arrivals this episode
    std::vector<std::uint64_t> snapshot;  // fixed when the last proc arrives
    unsigned arrived = 0;
  };
  // Last observed (state, notified) per line, for Weak-state monotonicity.
  struct DirSnap {
    proto::DirState state = proto::DirState::kUncached;
    ProcMask notified = 0;
  };

  LineShadow& shadow(LineId line);
  void join(std::vector<std::uint64_t>& into,
            const std::vector<std::uint64_t>& from);
  void violation(std::string msg);
  void check_entry(LineId line, const proto::DirEntry& e);
  /// Inclusion/exclusion contract for one line of p's private stack:
  /// inclusive ⇒ an L1-resident line has an L2 tag with dirty == 0 (L1 is
  /// authoritative); exclusive ⇒ never resident in both levels.
  void check_hierarchy_line(NodeId p, LineId line);

  core::Machine& m_;
  proto::ProtocolBase* base_;  // directory access
  bool lazy_family_;           // LRC / LRC-ext
  bool strict_;
  unsigned nprocs_;
  unsigned words_per_line_;

  std::vector<std::vector<std::uint64_t>> vc_;  // vc_[p][q]
  // det-lint: ok(keyed access only — no loop ever walks these three maps,
  //   so their order cannot reach a report; their vector-valued payloads
  //   do not satisfy FlatMap's trivially-copyable constraint)
  std::unordered_map<SyncId, std::vector<std::uint64_t>> lock_clock_;
  // det-lint: ok(keyed access only, never iterated; see lock_clock_ above)
  std::unordered_map<SyncId, BarrierState> barriers_;

  // det-lint: ok(keyed access only, never iterated; see lock_clock_ above)
  std::unordered_map<LineId, LineShadow> shadow_;
  // observed_[p][line][word] = shadow version p's cached copy reflects.
  // det-lint: ok(keyed access only, never iterated; see lock_clock_ above)
  std::vector<std::unordered_map<LineId, std::vector<std::uint64_t>>>
      observed_;

  util::FlatMap<DirSnap> dir_snap_;

  // Static-vs-dynamic transition coverage (LRCSIM_TRANSITION_LOG): triples
  // are accumulated ordered so the dump is deterministic, then appended to
  // the log file on destruction.
  bool transition_log_enabled_ = false;
  std::string transition_log_path_;
  std::set<std::tuple<std::string, std::string, std::string>> transitions_;

  std::vector<std::string> violations_;
  std::uint64_t racy_reads_ = 0;
  std::uint64_t racy_writes_ = 0;
  std::uint64_t reads_checked_ = 0;
  std::uint64_t writes_tracked_ = 0;
  std::uint64_t copies_dropped_ = 0;
};

}  // namespace lrc::check
