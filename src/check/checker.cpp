#include "check/checker.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <fstream>

#include "core/machine.hpp"
#include "proto/base.hpp"
#include "proto/sync_manager.hpp"

namespace lrc::check {

namespace {
Mutation g_mutation = Mutation::kNone;
}  // namespace

Mutation active_mutation() { return g_mutation; }
void set_mutation(Mutation m) { g_mutation = m; }

Checker::Checker(core::Machine& m, bool strict)
    : m_(m),
      base_(dynamic_cast<proto::ProtocolBase*>(&m.protocol())),
      lazy_family_(m.protocol_kind() == core::ProtocolKind::kLRC ||
                   m.protocol_kind() == core::ProtocolKind::kLRCExt),
      strict_(strict),
      nprocs_(m.nprocs()),
      words_per_line_(m.amap().words_per_line()),
      observed_(m.nprocs()) {
  vc_.assign(nprocs_, std::vector<std::uint64_t>(nprocs_, 0));
  for (unsigned p = 0; p < nprocs_; ++p) vc_[p][p] = 1;
  if (const char* log = std::getenv("LRCSIM_TRANSITION_LOG")) {
    transition_log_enabled_ = *log != '\0';
    if (transition_log_enabled_) transition_log_path_ = log;
  }
}

Checker::~Checker() {
  if (!transition_log_enabled_ || transitions_.empty()) return;
  // Appended (not truncated): one run per protocol family accumulates a
  // corpus-wide log; std::set ordering keeps each run's chunk sorted.
  std::ofstream out(transition_log_path_, std::ios::app);
  for (const auto& [family, state, kind] : transitions_) {
    out << family << '\t' << state << '\t' << kind << '\n';
  }
}

Checker::LineShadow& Checker::shadow(LineId line) {
  LineShadow& ls = shadow_[line];
  if (ls.words.empty()) ls.words.resize(words_per_line_);
  return ls;
}

void Checker::join(std::vector<std::uint64_t>& into,
                   const std::vector<std::uint64_t>& from) {
  if (from.empty()) return;
  for (unsigned q = 0; q < nprocs_; ++q) into[q] = std::max(into[q], from[q]);
}

void Checker::violation(std::string msg) {
  if (violations_.size() < 200) violations_.push_back(std::move(msg));
}

// ---- Value oracle ----------------------------------------------------------

void Checker::on_read(NodeId p, Addr a, std::uint32_t bytes) {
  const LineId line = m_.amap().line_of(a);
  WordMask mask = m_.amap().word_mask(a, bytes);
  LineShadow& ls = shadow(line);
  auto obs_it = observed_[p].find(line);
  ++reads_checked_;

  while (mask != 0) {
    const unsigned wi = static_cast<unsigned>(std::countr_zero(mask));
    mask &= mask - 1;
    WordCell& cell = ls.words[wi];

    // Record the read for write-after-read race detection.
    if (cell.read_epochs.empty()) cell.read_epochs.resize(nprocs_, 0);
    cell.read_epochs[p] = vc_[p][p];

    if (cell.version == 0) continue;  // only the initial value ever written
    const bool hb = cell.writer == p || vc_[p][cell.writer] >= cell.write_epoch;
    if (!hb) {
      // Data race (read concurrent with the latest write): under release
      // consistency a stale value is legal here; count, don't flag.
      ++racy_reads_;
      continue;
    }
    const std::uint64_t seen =
        (obs_it != observed_[p].end() && obs_it->second[wi] != 0)
            ? obs_it->second[wi]
            : 0;
    if (seen < cell.version) {
      violation("stale read: cpu " + std::to_string(p) + " addr " +
                std::to_string(a) + " (line " + std::to_string(line) +
                " word " + std::to_string(wi) + ") observes version " +
                std::to_string(seen) + " but version " +
                std::to_string(cell.version) + " by cpu " +
                std::to_string(cell.writer) + " happens-before this read");
    }
  }
}

void Checker::on_write(NodeId p, Addr a, std::uint32_t bytes) {
  const LineId line = m_.amap().line_of(a);
  WordMask mask = m_.amap().word_mask(a, bytes);
  LineShadow& ls = shadow(line);
  auto& obs = observed_[p][line];
  if (obs.empty()) obs.resize(words_per_line_, 0);
  ++writes_tracked_;

  while (mask != 0) {
    const unsigned wi = static_cast<unsigned>(std::countr_zero(mask));
    mask &= mask - 1;
    WordCell& cell = ls.words[wi];

    // Write-write race: previous write to the word not ordered before us.
    if (cell.version != 0 && cell.writer != p &&
        vc_[p][cell.writer] < cell.write_epoch) {
      ++racy_writes_;
    }
    // Write-read race: someone read the word and that read is not ordered
    // before this write.
    if (!cell.read_epochs.empty()) {
      for (unsigned q = 0; q < nprocs_; ++q) {
        if (q != p && cell.read_epochs[q] != 0 &&
            vc_[p][q] < cell.read_epochs[q]) {
          ++racy_writes_;
          break;
        }
      }
    }

    ++cell.version;
    cell.writer = p;
    cell.write_epoch = vc_[p][p];
    obs[wi] = cell.version;  // writers see their own writes (read bypass)
  }
}

void Checker::on_fill(NodeId p, LineId line) {
  LineShadow& ls = shadow(line);
  auto& obs = observed_[p][line];
  obs.assign(words_per_line_, 0);
  for (unsigned wi = 0; wi < words_per_line_; ++wi) {
    obs[wi] = ls.words[wi].version;
  }
}

void Checker::on_copy_dropped(NodeId p, LineId line) {
  // Deliberately keeps the last-observed versions. A loaded value may be
  // consumed by the processor after its line was filled but before the
  // fiber resumes — an invalidation landing in that window must not make
  // the (architecturally legal) load look stale. Erasure is also not
  // needed to catch real staleness: a protocol that fails to invalidate
  // leaves the OLD version in `observed_`, which the version comparison in
  // on_read flags, while a properly invalidated copy can only be read
  // again through a refill that refreshes `observed_` via on_fill. The
  // same reasoning legalizes write-buffer read bypass (on_write records
  // the buffered write's version immediately).
  (void)p;
  (void)line;
  ++copies_dropped_;
}

// ---- Happens-before frontier ----------------------------------------------

void Checker::on_acquire(NodeId p, SyncId s) {
  auto it = lock_clock_.find(s);
  if (it != lock_clock_.end()) join(vc_[p], it->second);
}

void Checker::on_release(NodeId p, SyncId s) {
  auto& lc = lock_clock_[s];
  if (lc.empty()) lc.assign(nprocs_, 0);
  join(lc, vc_[p]);
  ++vc_[p][p];
}

void Checker::on_barrier_arrive(NodeId p, SyncId s) {
  BarrierState& b = barriers_[s];
  if (b.arrived == nprocs_) {  // previous episode complete; start fresh
    b.accum.clear();
    b.arrived = 0;
  }
  if (b.accum.empty()) b.accum.assign(nprocs_, 0);
  join(b.accum, vc_[p]);
  ++vc_[p][p];
  if (++b.arrived == nprocs_) b.snapshot = b.accum;
}

void Checker::on_barrier_done(NodeId p, SyncId s) {
  BarrierState& b = barriers_[s];
  join(vc_[p], b.snapshot);
}

// ---- Drain-before-release ---------------------------------------------------

void Checker::on_release_drained(core::Cpu& cpu, const char* where) {
  std::string bad;
  if (!cpu.wb().empty()) bad += " write-buffer";
  if (!cpu.ot().empty()) bad += " ot-table";
  if (!cpu.cb().empty()) bad += " coalescing-buffer";
  if (cpu.wt_outstanding != 0) bad += " write-throughs";
  if (!bad.empty()) {
    violation("release not drained: cpu " + std::to_string(cpu.id()) +
              " at " + where + " still has" + bad);
  }
}

// ---- Directory invariants ---------------------------------------------------

void Checker::before_handle(const mesh::Message& msg) {
  if (!transition_log_enabled_ || base_ == nullptr ||
      proto::SyncManager::owns(msg.kind)) {
    return;
  }
  // find(), not entry(): the pre-handle state of an untouched line is
  // kUncached, and peeking must not materialize a directory entry.
  const proto::DirEntry* e = base_->directory().find(msg.line);
  const proto::DirState st =
      e != nullptr ? e->state : proto::DirState::kUncached;
  transitions_.emplace(std::string(m_.protocol().name()),
                       std::string(proto::to_string(st)),
                       std::string(mesh::to_string(msg.kind)));
}

void Checker::after_handle(const mesh::Message& msg) {
  if (base_ == nullptr || proto::SyncManager::owns(msg.kind)) return;
  check_hierarchy_line(msg.dst, msg.line);
  proto::DirEntry* e = base_->directory().find(msg.line);
  if (e == nullptr) return;
  check_entry(msg.line, *e);
}

void Checker::check_hierarchy_line(NodeId p, LineId line) {
  const auto& h = m_.cpu(p).dcache();
  if (h.levels() < 2) return;
  const cache::CacheLine* l1 = h.l1().find(line);
  const cache::CacheLine* l2 = h.l2()->find(line);
  if (h.inclusive()) {
    if (l1 != nullptr && l2 == nullptr) {
      violation("inclusion violated: cpu " + std::to_string(p) + " line " +
                std::to_string(line) + " resident in L1 without an L2 tag");
    } else if (l1 != nullptr && l2->dirty != 0) {
      violation("inclusion authority violated: cpu " + std::to_string(p) +
                " line " + std::to_string(line) +
                " L2 tag carries dirty words under a live L1 copy");
    }
  } else if (l1 != nullptr && l2 != nullptr) {
    violation("exclusion violated: cpu " + std::to_string(p) + " line " +
              std::to_string(line) + " resident in both L1 and L2");
  }
}

void Checker::check_entry(LineId line, const proto::DirEntry& e) {
  using proto::DirState;
  auto fail = [&](const std::string& what) {
    violation("directory invariant: line " + std::to_string(line) + " [" +
              std::string(to_string(e.state)) + "] " + what);
  };

  if ((e.writers & ~e.sharers) != 0) fail("writers not a subset of sharers");
  if ((e.notified & ~e.sharers) != 0) fail("notified not a subset of sharers");

  if (lazy_family_) {
    // The LRC directory is never busy and never defers: every transition is
    // a single atomic entry update at the home.
    if (e.busy) fail("busy set (LRC directory has no busy transactions)");
    if (e.pending_acks != 0) fail("pending_acks nonzero under LRC");
    if (!e.deferred.empty()) fail("deferred queue nonempty under LRC");

    // Stable state must agree with the membership masks (the paper's
    // Weak -> Shared -> Uncached reversion rule).
    proto::DirEntry probe = e;
    probe.recompute_lrc_state();
    if (probe.state != e.state) {
      fail("state disagrees with masks (recompute says " +
           std::string(to_string(probe.state)) + ")");
    }
    if (e.state != DirState::kWeak && e.notified != 0) {
      fail("notified bits outside Weak state");
    }

    // Write-notice countdowns: join order implies remaining counts are
    // non-decreasing front-to-back, and none exceeds the outstanding total.
    unsigned prev = 0;
    const auto& col_pool = base_->directory().col_pool();
    e.collections.for_each(
        col_pool, [&](const proto::DirEntry::NoticeCollection& c) {
          if (c.remaining == 0) fail("collection with zero remaining");
          if (c.remaining < prev) {
            fail("collection countdowns out of join order");
          }
          if (c.remaining > e.notices_outstanding) {
            fail("collection remaining exceeds notices outstanding");
          }
          prev = c.remaining;
        });
    if (!e.collections.empty() && e.notices_outstanding == 0) {
      fail("collections open with no notices outstanding");
    }

    // Weak bookkeeping: notified bits are monotone while the line stays
    // Weak — they are only cleared by membership updates (evict/inval).
    auto& snap = dir_snap_.get_or_create(line);
    if (snap.state == DirState::kWeak && e.state == DirState::kWeak) {
      if (((snap.notified & e.sharers) & ~e.notified) != 0) {
        fail("notified bit lost while Weak without a membership update");
      }
    }
    snap.state = e.state;
    snap.notified = e.notified;
  } else {
    // MSI family (SC / ERC / ERC-WT).
    if (e.state == DirState::kWeak) fail("Weak state under an MSI protocol");
    if (e.notified != 0) fail("notified bits under an MSI protocol");
    if (!e.collections.empty() || e.notices_outstanding != 0) {
      fail("LRC write-notice accounting under an MSI protocol");
    }
    if (!e.busy) {
      if (e.pending_acks != 0) fail("pending_acks outside a busy transaction");
      if (!e.deferred.empty()) fail("deferred messages while not busy");
      switch (e.state) {
        case DirState::kUncached:
          if (e.sharers != 0) fail("Uncached with sharers");
          if (e.writers != 0) fail("Uncached with writers");
          break;
        case DirState::kShared:
          if (e.writers != 0) fail("Shared with writers");
          break;
        case DirState::kDirty:
          if (e.sharer_count() != 1) fail("Dirty without exactly one sharer");
          if (e.writers != e.sharers) fail("Dirty owner not the writer");
          break;
        case DirState::kWeak:
          break;  // already failed above
      }
    }
  }
}

// ---- End-of-run quiescent checks -------------------------------------------

void Checker::final_check() {
  for (unsigned p = 0; p < nprocs_; ++p) {
    on_release_drained(m_.cpu(p), "end of run");
    // Full inclusion/exclusion sweep: every line either level holds must
    // satisfy the boundary contract (the per-message check only sees lines
    // the protocol touched).
    const auto& h = m_.cpu(p).dcache();
    if (h.levels() >= 2) {
      h.l1().for_each_valid([&](const cache::CacheLine& cl) {
        check_hierarchy_line(p, cl.line);
      });
      h.l2()->for_each_valid([&](const cache::CacheLine& cl) {
        check_hierarchy_line(p, cl.line);
      });
    }
  }
  if (base_ == nullptr) return;
  base_->directory().for_each([&](LineId line, proto::DirEntry& e) {
    check_entry(line, e);
    auto fail = [&](const std::string& what) {
      violation("quiescent directory: line " + std::to_string(line) + " " +
                what);
    };
    if (e.busy || !e.deferred.empty()) fail("busy transaction at end of run");
    if (!e.collections.empty() || e.notices_outstanding != 0) {
      fail("write-notice accounting open at end of run");
    }
    for (unsigned p = 0; p < nprocs_; ++p) {
      const bool cached = m_.cpu(p).dcache().find(line) != nullptr;
      const bool listed = e.is_sharer(p);
      if (cached && !listed) fail("cpu " + std::to_string(p) +
                                  " caches the line but is not a sharer");
      // The LRC directory tracks membership exactly (evict/inval notify);
      // the MSI family may keep stale sharers (silent clean evictions).
      if (lazy_family_ && listed && !cached) {
        fail("cpu " + std::to_string(p) +
             " listed as sharer but holds no copy (LRC tracks exactly)");
      }
    }
  });
}

void Checker::throw_if_violations() {
  if (!strict_ || violations_.empty()) return;
  std::string what = "consistency check failed (" +
                     std::to_string(violations_.size()) + " violation(s)):";
  const std::size_t show = std::min<std::size_t>(violations_.size(), 10);
  for (std::size_t i = 0; i < show; ++i) what += "\n  " + violations_[i];
  if (violations_.size() > show) what += "\n  ...";
  throw ViolationError(what);
}

}  // namespace lrc::check
