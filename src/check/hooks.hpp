// Compile-time-gated checker hooks. In LRCSIM_CHECK builds each hook is a
// null-guarded virtual-free call into the machine's Checker (if enabled);
// in default builds the macro expands to nothing, so bench binaries carry
// zero checking code on the hot paths.
//
//   LRCSIM_HOOK(machine, on_read(p, a, bytes));
#pragma once

#ifdef LRCSIM_CHECK

#include "check/checker.hpp"

#define LRCSIM_HOOK(m, call)                           \
  do {                                                 \
    if (auto* lrcsim_ck_ = (m).checker()) {            \
      lrcsim_ck_->call;                                \
    }                                                  \
  } while (0)

#else

#define LRCSIM_HOOK(m, call) \
  do {                       \
  } while (0)

#endif
