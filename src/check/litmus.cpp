#include "check/litmus.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <stdexcept>

#include "check/checker.hpp"
#include "core/machine.hpp"
#include "trace/replay_cpu.hpp"
#include "trace/writer.hpp"

namespace lrc::check {

namespace {
constexpr int kNumRegs = 16;

[[noreturn]] void bad(const std::string& name, int lineno,
                      const std::string& what) {
  throw std::runtime_error("litmus " + name + ":" + std::to_string(lineno) +
                           ": " + what);
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> toks;
  std::string t;
  while (ss >> t) toks.push_back(t);
  return toks;
}

// Whole-token integer parse; false on garbage, trailing junk, or overflow
// (std::stoll alone would accept "12x" and throw bare std::invalid_argument
// on "x", losing the file/line context `bad` attaches).
bool try_int(const std::string& tok, std::int64_t& out) {
  std::size_t pos = 0;
  try {
    out = std::stoll(tok, &pos);
  } catch (const std::exception&) {
    return false;
  }
  return pos == tok.size();
}

std::int64_t parse_int(const std::string& name, int lineno,
                       const std::string& tok) {
  std::int64_t v = 0;
  if (!try_int(tok, v)) bad(name, lineno, "bad number `" + tok + "`");
  return v;
}

std::uint64_t parse_count(const std::string& name, int lineno,
                          const std::string& tok) {
  const std::int64_t v = parse_int(name, lineno, tok);
  if (v < 0) bad(name, lineno, "expected a non-negative number, got " + tok);
  return static_cast<std::uint64_t>(v);
}
}  // namespace

bool class_contains(ProtoClass c, core::ProtocolKind k) {
  using core::ProtocolKind;
  switch (c) {
    case ProtoClass::kAll:
      return true;
    case ProtoClass::kSc:
      return k == ProtocolKind::kSC;
    case ProtoClass::kEager:
      return k == ProtocolKind::kSC || k == ProtocolKind::kERC ||
             k == ProtocolKind::kERCWT;
    case ProtoClass::kLazy:
      return k == ProtocolKind::kLRC || k == ProtocolKind::kLRCExt;
  }
  return false;
}

// ---- Parsing ----------------------------------------------------------------

namespace {

int parse_reg(const std::string& name, int lineno, const std::string& tok) {
  std::int64_t r = -1;
  if (tok.size() < 2 || tok[0] != 'r' || !try_int(tok.substr(1), r)) {
    bad(name, lineno, "bad register " + tok);
  }
  if (r < 0 || r >= kNumRegs) bad(name, lineno, "register out of range " + tok);
  return static_cast<int>(r);
}

int var_index(LitmusProgram& p, const std::string& name, int lineno,
              const std::string& var) {
  for (std::size_t i = 0; i < p.vars.size(); ++i) {
    if (p.vars[i] == var) return static_cast<int>(i);
  }
  bad(name, lineno, "undeclared var " + var);
}

ProtoClass parse_class(const std::string& name, int lineno,
                       const std::string& tok) {
  if (tok == "all") return ProtoClass::kAll;
  if (tok == "sc") return ProtoClass::kSc;
  if (tok == "eager") return ProtoClass::kEager;
  if (tok == "lazy") return ProtoClass::kLazy;
  bad(name, lineno, "unknown protocol class " + tok);
}

// `[P0<P1@2]` -> guard fields. Returns false if tok is not guard-shaped;
// a guard-shaped token with malformed numbers is a located error.
bool parse_guard(LitmusCond& c, const std::string& name, int lineno,
                 const std::string& tok) {
  if (tok.size() < 8 || tok.front() != '[' || tok.back() != ']') return false;
  const auto lt = tok.find('<');
  const auto at = tok.find('@');
  if (lt == std::string::npos || at == std::string::npos) return false;
  if (tok[1] != 'P' || tok[lt + 1] != 'P') return false;
  c.has_guard = true;
  c.guard_first = static_cast<NodeId>(
      parse_count(name, lineno, tok.substr(2, lt - 2)));
  c.guard_second = static_cast<NodeId>(
      parse_count(name, lineno, tok.substr(lt + 2, at - lt - 2)));
  c.guard_lock = static_cast<SyncId>(
      parse_count(name, lineno, tok.substr(at + 1, tok.size() - at - 2)));
  return true;
}

void parse_cond(LitmusProgram& p, const std::string& name, int lineno,
                const std::vector<std::string>& toks, bool forbid,
                const std::string& raw) {
  LitmusCond c;
  c.forbid = forbid;
  c.text = raw;
  std::size_t i = 1;
  if (i >= toks.size()) bad(name, lineno, "missing protocol class");
  c.cls = parse_class(name, lineno, toks[i++]);
  if (i < toks.size() && parse_guard(c, name, lineno, toks[i])) ++i;
  // Remaining: rK=V [& rK=V]...
  for (; i < toks.size(); ++i) {
    if (toks[i] == "&") continue;
    const auto eq = toks[i].find('=');
    if (eq == std::string::npos) bad(name, lineno, "bad term " + toks[i]);
    const int reg = parse_reg(name, lineno, toks[i].substr(0, eq));
    c.eqs.emplace_back(reg, parse_int(name, lineno, toks[i].substr(eq + 1)));
  }
  if (c.eqs.empty()) bad(name, lineno, "condition with no terms");
  p.conds.push_back(std::move(c));
}

void parse_ops(LitmusProgram& p, const std::string& name, int lineno,
               unsigned proc, const std::string& body) {
  std::vector<LitmusOp>& out = p.code[proc];
  std::istringstream ss(body);
  std::string stmt;
  while (std::getline(ss, stmt, ';')) {
    auto toks = tokens_of(stmt);
    if (toks.empty()) continue;
    std::size_t i = 0;
    unsigned rep = 1;
    if (toks[i] == "rep") {
      if (toks.size() < 3) bad(name, lineno, "rep needs a count and an op");
      rep = static_cast<unsigned>(parse_count(name, lineno, toks[1]));
      i = 2;
    }
    LitmusOp op;
    op.rep = rep;
    const std::string& k = toks[i];
    auto need = [&](std::size_t n) {
      if (toks.size() - i != n + 1) {
        bad(name, lineno, "wrong operand count for " + k);
      }
    };
    if (k == "R") {
      need(2);
      op.kind = LitmusOp::kRead;
      op.var = var_index(p, name, lineno, toks[i + 1]);
      op.reg = parse_reg(name, lineno, toks[i + 2]);
    } else if (k == "RIF") {
      need(3);
      op.kind = LitmusOp::kReadIf;
      op.creg = parse_reg(name, lineno, toks[i + 1]);
      op.var = var_index(p, name, lineno, toks[i + 2]);
      op.reg = parse_reg(name, lineno, toks[i + 3]);
    } else if (k == "W") {
      need(2);
      op.kind = LitmusOp::kWrite;
      op.var = var_index(p, name, lineno, toks[i + 1]);
      op.value = parse_int(name, lineno, toks[i + 2]);
    } else if (k == "I") {
      need(2);
      op.kind = LitmusOp::kSetReg;
      op.reg = parse_reg(name, lineno, toks[i + 1]);
      op.value = parse_int(name, lineno, toks[i + 2]);
    } else if (k == "INC") {
      need(1);
      op.kind = LitmusOp::kInc;
      op.var = var_index(p, name, lineno, toks[i + 1]);
    } else if (k == "L" || k == "U" || k == "B") {
      need(1);
      op.kind = k == "L"   ? LitmusOp::kLock
                : k == "U" ? LitmusOp::kUnlock
                           : LitmusOp::kBarrier;
      op.sync = static_cast<SyncId>(parse_count(name, lineno, toks[i + 1]));
    } else if (k == "F") {
      need(0);
      op.kind = LitmusOp::kFence;
    } else if (k == "D") {
      need(1);
      op.kind = LitmusOp::kDelay;
      op.value = parse_int(name, lineno, toks[i + 1]);
    } else {
      bad(name, lineno, "unknown op " + k);
    }
    out.push_back(op);
  }
}

}  // namespace

LitmusProgram LitmusProgram::parse(const std::string& text, std::string name,
                                   std::string location) {
  LitmusProgram p;
  p.name = std::move(name);
  // Error prefix: the file path when known, else the program name. Fixed up
  // front so a mid-file `name` directive cannot change where errors point.
  const std::string loc = location.empty() ? p.name : std::move(location);
  std::istringstream ss(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(ss, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    std::string line = hash == std::string::npos ? raw : raw.substr(0, hash);
    auto toks = tokens_of(line);
    if (toks.empty()) continue;
    const std::string& key = toks[0];
    if (key == "name") {
      if (toks.size() != 2) bad(loc, lineno, "name takes one token");
      p.name = toks[1];
    } else if (key == "procs") {
      if (toks.size() != 2) bad(loc, lineno, "procs takes one number");
      p.nprocs = static_cast<unsigned>(parse_count(loc, lineno, toks[1]));
      if (p.nprocs < 2 || p.nprocs > kMaxProcs) {
        bad(loc, lineno, "procs out of range");
      }
      p.code.resize(p.nprocs);
    } else if (key == "vars") {
      for (std::size_t i = 1; i < toks.size(); ++i) p.vars.push_back(toks[i]);
    } else if (key == "line") {
      std::vector<int> group;
      for (std::size_t i = 1; i < toks.size(); ++i) {
        group.push_back(var_index(p, loc, lineno, toks[i]));
      }
      if (group.size() < 2) bad(loc, lineno, "line group needs >= 2 vars");
      p.line_groups.push_back(std::move(group));
    } else if (key == "forbid" || key == "require") {
      parse_cond(p, loc, lineno, toks, key == "forbid", line);
    } else if (key == "expect") {
      if (toks.size() != 2 || toks[1] != "drf") {
        bad(loc, lineno, "only `expect drf` is supported");
      }
      p.expect_drf = true;
    } else if (key.size() >= 3 && key[0] == 'P' && key.back() == ':') {
      std::int64_t proc = -1;
      if (!try_int(key.substr(1, key.size() - 2), proc) || proc < 0) {
        bad(loc, lineno, "bad proc label " + key);
      }
      if (p.code.empty()) bad(loc, lineno, "procs must come before code");
      if (proc >= p.nprocs) bad(loc, lineno, "proc out of range in " + key);
      const auto colon = line.find(':');
      parse_ops(p, loc, lineno, static_cast<unsigned>(proc),
                line.substr(colon + 1));
    } else {
      bad(loc, lineno, "unrecognized directive " + key);
    }
  }
  if (p.nprocs == 0) bad(loc, 0, "missing procs directive");
  if (p.vars.empty()) bad(loc, 0, "missing vars directive");
  return p;
}

LitmusProgram LitmusProgram::parse_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open litmus file " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  if (auto dot = base.rfind(".litmus"); dot != std::string::npos) {
    base = base.substr(0, dot);
  }
  return parse(buf.str(), base, path);
}

// ---- Running ----------------------------------------------------------------

LitmusResult run_litmus(const LitmusProgram& prog, core::ProtocolKind kind,
                        std::uint64_t seed) {
  LitmusRunOptions opts;
  opts.seed = seed;
  return run_litmus(prog, kind, opts);
}

LitmusResult run_litmus(const LitmusProgram& prog, core::ProtocolKind kind,
                        std::uint64_t seed, const cache::CacheConfig& cfg) {
  LitmusRunOptions opts;
  opts.seed = seed;
  opts.cache = cfg;
  return run_litmus(prog, kind, opts);
}

LitmusResult run_litmus(const LitmusProgram& prog, core::ProtocolKind kind,
                        const LitmusRunOptions& opts) {
  const bool replay = !opts.replay_dir.empty();
  if (replay && !opts.capture_dir.empty()) {
    throw std::invalid_argument("litmus " + prog.name +
                                ": capture_dir and replay_dir are exclusive");
  }
  auto params = core::SystemParams::test_scale(prog.nprocs);
  if (opts.cache) params.cache = *opts.cache;
  params.shards = opts.shards;
  core::Machine m(params, kind,
                  replay ? trace::ReplayCpu::factory(opts.replay_dir)
                         : core::Machine::CpuFactory{});

  // Lay out variables: grouped vars pack into one line (8 bytes apart,
  // distinct words — the multiple-writer/false-sharing scenarios); the rest
  // get a line each (allocations are line-aligned).
  std::vector<Addr> var_addr(prog.vars.size(), 0);
  std::vector<bool> placed(prog.vars.size(), false);
  for (const auto& group : prog.line_groups) {
    if (group.size() * 8 > params.line_bytes) {
      throw std::runtime_error("litmus " + prog.name +
                               ": line group does not fit in a line");
    }
    const Addr base = m.alloc_bytes(params.line_bytes, "litmus-line");
    for (std::size_t i = 0; i < group.size(); ++i) {
      var_addr[group[i]] = base + i * 8;
      placed[group[i]] = true;
    }
  }
  for (std::size_t v = 0; v < prog.vars.size(); ++v) {
    if (!placed[v]) var_addr[v] = m.alloc_bytes(8, prog.vars[v]);
  }
  for (Addr a : var_addr) m.poke_mem<std::int64_t>(a, 0);

  LitmusResult res;
  res.regs.assign(kNumRegs, 0);
  // Pre-create every lock's grant-order slot: under sharded execution the
  // fibers run on worker threads, and while pushes into one lock's vector
  // are ordered by the window barriers (grants of one lock are >= one
  // cross-shard latency apart), concurrent map *insertion* would not be.
  for (const auto& ops : prog.code) {
    for (const LitmusOp& op : ops) {
      if (op.kind == LitmusOp::kLock) res.lock_order[op.sync];
    }
  }

#ifdef LRCSIM_CHECK
  // Non-strict: litmus results are evaluated by the caller; collect rather
  // than throw so a violating run still reports its outcome. The runtime
  // checker is serial-only, so sharded runs skip it (result evaluation
  // still covers the forbid/require conditions). Replay skips it too: the
  // checker needs the fiber front end (Machine::run rejects the combination).
  check::Checker* ck = (opts.shards == 0 && !replay)
                           ? m.enable_checker(/*strict=*/false)
                           : nullptr;
#endif

  std::unique_ptr<trace::CaptureLog> capture;
  if (!opts.capture_dir.empty()) {
    capture = std::make_unique<trace::CaptureLog>(opts.capture_dir,
                                                  prog.nprocs);
    capture->set_meta(prog.name, std::string(core::to_string(kind)),
                      opts.seed);
    m.set_access_log(capture.get());
  }

  if (opts.pre_run) opts.pre_run(m);

  if (replay) {
    // The trace carries the workload; registers are host-side state that is
    // not traced, so the result reports no register values and the
    // forbid/require conditions are not evaluated (compare Machine reports
    // via post_run instead).
    m.run(nullptr);
    if (opts.post_run) opts.post_run(m);
    return res;
  }

  m.run([&](core::Cpu& cpu) {
    const NodeId p = cpu.id();
    const auto& ops = prog.code[p];
    // det-lint: ok(seed is a pure function of the run options and the
    //   processor id, so jitter schedules replay bit-identically)
    std::mt19937_64 rng(opts.seed * 1000003ULL + p * 7919ULL + 13);
    if (opts.jitter) cpu.compute(1 + rng() % 29);  // stagger the start
    unsigned nth_sync = 0;
    for (const LitmusOp& op : ops) {
      for (unsigned k = 0; k < op.rep; ++k) {
        if (opts.jitter && (rng() & 3) == 0) cpu.compute(1 + rng() % 7);
        if (opts.sync_delay &&
            (op.kind == LitmusOp::kLock || op.kind == LitmusOp::kUnlock ||
             op.kind == LitmusOp::kBarrier || op.kind == LitmusOp::kFence)) {
          if (const Cycle d = opts.sync_delay(p, nth_sync++); d > 0) {
            cpu.compute(d);
          }
        }
        switch (op.kind) {
          case LitmusOp::kRead:
            res.regs[op.reg] = cpu.read<std::int64_t>(var_addr[op.var]);
            break;
          case LitmusOp::kReadIf:
            if (res.regs[op.creg] != 0) {
              res.regs[op.reg] = cpu.read<std::int64_t>(var_addr[op.var]);
            }
            break;
          case LitmusOp::kWrite:
            cpu.write<std::int64_t>(var_addr[op.var], op.value);
            break;
          case LitmusOp::kSetReg:
            res.regs[op.reg] = op.value;
            break;
          case LitmusOp::kInc: {
            const auto v = cpu.read<std::int64_t>(var_addr[op.var]);
            cpu.write<std::int64_t>(var_addr[op.var], v + 1);
            break;
          }
          case LitmusOp::kLock:
            cpu.lock(op.sync);
            // Host order equals simulated grant order: grants are serialized
            // at the lock's home and each fiber resumes in event order.
            res.lock_order[op.sync].push_back(p);
            break;
          case LitmusOp::kUnlock:
            cpu.unlock(op.sync);
            break;
          case LitmusOp::kBarrier:
            cpu.barrier(op.sync);
            break;
          case LitmusOp::kFence:
            cpu.fence();
            break;
          case LitmusOp::kDelay:
            cpu.compute(static_cast<Cycle>(op.value));
            break;
        }
      }
    }
  });

  if (capture) capture->finish();

#ifdef LRCSIM_CHECK
  if (ck != nullptr) {
    res.checker_active = true;
    res.violations = ck->violations();
    res.races = ck->races();
  }
#endif

  if (opts.post_run) opts.post_run(m);

  // Evaluate conditions against the final register file and lock orders.
  auto first_pos = [&](SyncId lock, NodeId p) -> std::int64_t {
    auto it = res.lock_order.find(lock);
    if (it == res.lock_order.end()) return -1;
    const auto& v = it->second;
    auto f = std::find(v.begin(), v.end(), p);
    return f == v.end() ? -1 : f - v.begin();
  };
  for (const LitmusCond& c : prog.conds) {
    if (!class_contains(c.cls, kind)) continue;
    if (c.has_guard) {
      const auto a = first_pos(c.guard_lock, c.guard_first);
      const auto b = first_pos(c.guard_lock, c.guard_second);
      if (a < 0 || b < 0 || a >= b) continue;  // guard not satisfied
    }
    bool all_hold = true;
    bool any_fail = false;
    for (const auto& [reg, v] : c.eqs) {
      if (res.regs[reg] == v) continue;
      all_hold = false;
      any_fail = true;
    }
    if (c.forbid ? all_hold : any_fail) {
      std::string regs;
      for (const auto& [reg, v] : c.eqs) {
        regs += " r" + std::to_string(reg) + "=" +
                std::to_string(res.regs[reg]);
      }
      res.failures.push_back(prog.name + " under " +
                             std::string(to_string(kind)) + ": `" + c.text +
                             "` violated; got" + regs);
    }
  }
  return res;
}

}  // namespace lrc::check
