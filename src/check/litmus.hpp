// Litmus-test DSL: small multi-threaded programs with an expected-outcome
// specification, run on a full simulated Machine under any protocol.
//
// File format (see tests/litmus/*.litmus and docs/CHECKER.md):
//
//   # message passing over a barrier
//   procs 2
//   vars x f
//   line x f              # optional: place listed vars in ONE cache line
//   P0: W x 1 ; B 0
//   P1: B 0 ; R x r0
//   forbid all r0=0
//   require all [P0<P1@0] r0=1
//   expect drf
//
// Ops: R var reg | RIF creg var reg | W var imm | I reg imm | INC var |
//      L lock | U lock | B barrier | F | D cycles | rep N <op>
// Conditions: `forbid` fails when every equality holds (the outcome is
// illegal); `require` fails when any equality fails. Both take a protocol
// class (all | sc | eager | lazy) and an optional lock-acquisition-order
// guard `[Pi<Pj@lock]` making the condition vacuous unless proc i's first
// acquisition of `lock` preceded proc j's.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "sim/types.hpp"

namespace lrc::core {
class Machine;
}

namespace lrc::check {

/// Which protocols a condition constrains.
enum class ProtoClass : std::uint8_t { kAll, kSc, kEager, kLazy };

bool class_contains(ProtoClass c, core::ProtocolKind k);

struct LitmusOp {
  enum Kind : std::uint8_t {
    kRead,      // var -> reg
    kReadIf,    // var -> reg, only if regs[creg] != 0
    kWrite,     // imm -> var
    kSetReg,    // imm -> reg (host-only)
    kInc,       // var += 1 (read; write)
    kLock,
    kUnlock,
    kBarrier,
    kFence,
    kDelay,     // compute(value) cycles
  };
  Kind kind{};
  int var = -1;
  int reg = -1;
  int creg = -1;
  std::int64_t value = 0;
  SyncId sync = 0;
  unsigned rep = 1;
};

struct LitmusCond {
  bool forbid = true;  // false: require
  ProtoClass cls = ProtoClass::kAll;
  bool has_guard = false;
  NodeId guard_first = 0, guard_second = 0;  // Pi<Pj
  SyncId guard_lock = 0;                     // @lock
  std::vector<std::pair<int, std::int64_t>> eqs;  // reg = value
  std::string text;  // original line, for failure messages
};

struct LitmusProgram {
  std::string name;
  unsigned nprocs = 0;
  std::vector<std::string> vars;
  std::vector<std::vector<int>> line_groups;  // var indices sharing a line
  std::vector<std::vector<LitmusOp>> code;    // per proc
  std::vector<LitmusCond> conds;
  bool expect_drf = false;

  /// Parses `text`. Errors throw std::runtime_error prefixed with
  /// `location:lineno` (`location` defaults to `name`; parse_file passes
  /// the file path so authoring mistakes point at the offending file line).
  static LitmusProgram parse(const std::string& text, std::string name,
                             std::string location = {});
  static LitmusProgram parse_file(const std::string& path);
};

struct LitmusResult {
  std::vector<std::int64_t> regs;
  std::map<SyncId, std::vector<NodeId>> lock_order;  // grant order per lock
  std::vector<std::string> failures;    // violated forbid/require conditions
  std::vector<std::string> violations;  // checker violations (LRCSIM_CHECK)
  std::uint64_t races = 0;              // checker race count (LRCSIM_CHECK)
  bool checker_active = false;
  bool passed() const { return failures.empty() && violations.empty(); }
};

/// Extended run controls. Defaults reproduce run_litmus(prog, kind, seed).
struct LitmusRunOptions {
  std::uint64_t seed = 1;
  /// Shard count for the conservative parallel engine (DESIGN.md §10);
  /// 0 = serial legacy engine. Sharded runs skip the runtime checker (it
  /// is serial-only), so programs meant for sharded execution must be
  /// data-race-free under their own locks/barriers to have deterministic
  /// outcomes.
  unsigned shards = 0;
  /// Seeded per-processor start stagger + inter-op compute jitter. The
  /// model checker turns this off so the baseline timing is a pure function
  /// of the program and its schedule decisions.
  bool jitter = true;
  /// Cache hierarchy; unset -> the test_scale default for prog.nprocs.
  std::optional<cache::CacheConfig> cache;
  /// Model-checker hook (src/mc/): invoked on the freshly built Machine
  /// before any fiber starts — install a sim::ScheduleArbiter, disable NIC
  /// arrival batching, etc.
  std::function<void(core::Machine&)> pre_run;
  /// Sync-arrival perturbation (src/mc/): when set, called immediately
  /// before each synchronization op (lock/unlock/barrier/fence); the
  /// returned cycle count is spent as local compute first, letting an
  /// explorer reorder sync arrivals. `nth` counts sync ops per processor.
  std::function<Cycle(NodeId p, unsigned nth)> sync_delay;
  /// Called after the run (and checker finalization) completes, before the
  /// Machine is destroyed — e.g. to dump a message trace enabled in
  /// pre_run. Not called when the run throws.
  std::function<void(core::Machine&)> post_run;
  /// When set, records the per-processor workload stream under this
  /// directory (trace/writer.hpp; DESIGN.md §11). Capture is serial-only
  /// (shards must be 0) and mutually exclusive with replay_dir.
  std::string capture_dir;
  /// When set, runs the program's captured trace through the fiber-free
  /// replay front end (trace/replay_cpu.hpp) instead of executing the
  /// litmus body. Registers live on the host and are not traced, so the
  /// result carries no register values and conditions are not evaluated;
  /// use post_run to compare Machine reports. Composes with shards.
  std::string replay_dir;
};

/// Runs the program on a fresh test_scale Machine under `kind`. `seed`
/// varies per-processor start/inter-op jitter so repeated runs explore
/// different interleavings. When the library is built with LRCSIM_CHECK,
/// the consistency checker is enabled (non-strict) and its findings are
/// copied into the result.
LitmusResult run_litmus(const LitmusProgram& prog, core::ProtocolKind kind,
                        std::uint64_t seed);

/// Same, with an explicit cache-hierarchy configuration (2-level inclusive
/// or exclusive stacks, shared LLC, alternate replacement policies): the
/// consistency obligations must hold regardless of geometry.
LitmusResult run_litmus(const LitmusProgram& prog, core::ProtocolKind kind,
                        std::uint64_t seed, const cache::CacheConfig& cfg);

/// Fully-controlled run (the model checker's entry point). Exceptions
/// thrown by opts.pre_run-installed machinery (e.g. a pruning arbiter)
/// propagate out with the partially-run Machine cleanly destroyed.
LitmusResult run_litmus(const LitmusProgram& prog, core::ProtocolKind kind,
                        const LitmusRunOptions& opts);

}  // namespace lrc::check
