// mc_explore: exhaustive small-scope schedule exploration of litmus
// programs (docs/MODELCHECK.md).
//
//   mc_explore --prog tests/litmus/sb.litmus                # all 5 protocols
//   mc_explore --corpus tests/litmus --proto LRC,LRC-ext
//   mc_explore --prog p.litmus --proto LRC --window 2
//   mc_explore --prog p.litmus --proto LRC --no-reduce      # raw enumeration
//   mc_explore --prog p.litmus --proto LRC --replay 0,2,1   # one schedule
//   mc_explore --corpus tests/litmus --repeat               # determinism gate
//   mc_explore --prog p.litmus --proto LRC --mutate tie-drop-write-notice
//
// Exit status: 0 when every explored program/protocol pair is clean, 1 when
// any schedule violated the oracle, a directory invariant, or a litmus
// condition, 2 on usage/setup errors. `--repeat` additionally fails (exit
// 1) if two explorations of the same pair disagree on any count.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/litmus.hpp"
#include "core/machine.hpp"
#include "core/params.hpp"
#include "mc/explorer.hpp"

namespace {

using lrc::check::LitmusProgram;
using lrc::core::ProtocolKind;
using lrc::mc::ExploreOptions;
using lrc::mc::ExploreResult;

struct Args {
  std::string prog;
  std::string corpus;
  std::vector<ProtocolKind> kinds;
  ExploreOptions opts;
  std::optional<lrc::mc::Choices> replay;
  lrc::check::Mutation mutation = lrc::check::Mutation::kNone;
  bool trace_msgs = false;  // dump the message trace of a --replay run
  bool repeat = false;
  unsigned seed_sweep = 0;  // also run jittered per-seed runs 1..N
};

constexpr ProtocolKind kAllKinds[] = {ProtocolKind::kSC, ProtocolKind::kERC,
                                      ProtocolKind::kERCWT, ProtocolKind::kLRC,
                                      ProtocolKind::kLRCExt};

[[noreturn]] void usage(const std::string& err = {}) {
  if (!err.empty()) std::cerr << "mc_explore: " << err << "\n";
  std::cerr <<
      "usage: mc_explore (--prog FILE | --corpus DIR) [options]\n"
      "  --proto LIST      comma-separated: SC,ERC,ERC-WT,LRC,LRC-ext "
      "(default: all)\n"
      "  --depth N         per-path decision bound (default 512)\n"
      "  --budget N        schedule budget (default 1048576)\n"
      "  --window W        sync-arrival delay window 0..W (default 0)\n"
      "  --no-reduce       disable sleep-set partial-order reduction\n"
      "  --stop-at-first   stop at the first violating schedule\n"
      "  --max-cex N       counterexamples to record (default 8)\n"
      "  --replay C0,C1,.. replay one choice vector (needs --prog, one "
      "--proto)\n"
      "  --trace           with --replay: dump the message trace of the run\n"
      "  --repeat          explore each pair twice; fail on count mismatch\n"
      "  --mutate NAME     activate a checker mutation: "
      "skip-acquire-invalidation,\n"
      "                    tie-drop-write-notice, "
      "tie-skip-membership-recompute\n"
      "  --seed-sweep N    also run jittered per-seed runs for seeds 1..N\n";
  std::exit(2);
}

ProtocolKind parse_kind(const std::string& s) {
  for (ProtocolKind k : kAllKinds) {
    if (s == lrc::core::to_string(k)) return k;
  }
  usage("unknown protocol `" + s + "`");
}

lrc::check::Mutation parse_mutation(const std::string& s) {
  using lrc::check::Mutation;
  if (s == "skip-acquire-invalidation") return Mutation::kSkipAcquireInvalidation;
  if (s == "tie-drop-write-notice") return Mutation::kTieDropWriteNotice;
  if (s == "tie-skip-membership-recompute")
    return Mutation::kTieSkipMembershipRecompute;
  usage("unknown mutation `" + s + "`");
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, sep)) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

std::uint64_t parse_u64(const std::string& flag, const std::string& s) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos == s.size()) return v;
  } catch (...) {
  }
  usage("bad value for " + flag + ": `" + s + "`");
}

Args parse_args(int argc, char** argv) {
  Args a;
  auto need = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) usage(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--prog") a.prog = need(i, "--prog");
    else if (f == "--corpus") a.corpus = need(i, "--corpus");
    else if (f == "--proto") {
      for (const auto& t : split(need(i, "--proto"), ','))
        a.kinds.push_back(parse_kind(t));
    } else if (f == "--depth") {
      a.opts.max_depth =
          static_cast<std::uint32_t>(parse_u64(f, need(i, "--depth")));
    } else if (f == "--budget") {
      a.opts.max_schedules = parse_u64(f, need(i, "--budget"));
    } else if (f == "--window") {
      a.opts.sync_window =
          static_cast<unsigned>(parse_u64(f, need(i, "--window")));
    } else if (f == "--no-reduce") a.opts.reduce = false;
    else if (f == "--stop-at-first") a.opts.stop_at_first = true;
    else if (f == "--max-cex") {
      a.opts.max_counterexamples =
          static_cast<std::uint32_t>(parse_u64(f, need(i, "--max-cex")));
    } else if (f == "--replay") {
      lrc::mc::Choices c;
      for (const auto& t : split(need(i, "--replay"), ','))
        c.push_back(static_cast<std::uint32_t>(parse_u64("--replay", t)));
      a.replay = std::move(c);
    } else if (f == "--trace") a.trace_msgs = true;
    else if (f == "--repeat") a.repeat = true;
    else if (f == "--mutate") a.mutation = parse_mutation(need(i, "--mutate"));
    else if (f == "--seed-sweep") {
      a.seed_sweep = static_cast<unsigned>(parse_u64(f, need(i, "--seed-sweep")));
    } else if (f == "--help" || f == "-h") usage();
    else usage("unknown flag `" + f + "`");
  }
  if (a.prog.empty() == a.corpus.empty())
    usage("exactly one of --prog / --corpus is required");
  if (a.kinds.empty())
    a.kinds.assign(std::begin(kAllKinds), std::end(kAllKinds));
  if (a.replay && (a.corpus.size() || a.kinds.size() != 1))
    usage("--replay needs --prog and exactly one --proto");
  return a;
}

std::vector<std::string> collect_programs(const Args& a) {
  if (!a.prog.empty()) return {a.prog};
  std::vector<std::string> files;
  for (const auto& ent : std::filesystem::directory_iterator(a.corpus)) {
    if (ent.path().extension() == ".litmus") files.push_back(ent.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) usage("no .litmus programs in " + a.corpus);
  return files;
}

void print_counterexample(const lrc::mc::Counterexample& cex, std::size_t i) {
  std::cout << "  counterexample " << i << ":\n";
  for (const auto& f : cex.failures) std::cout << "    failure: " << f << "\n";
  for (const auto& v : cex.violations)
    std::cout << "    violation: " << v << "\n";
  std::cout << lrc::mc::format_trace(cex.trace);
  const auto choices = lrc::mc::choices_of(cex.trace);
  std::cout << "    replay with: --replay ";
  for (std::size_t k = 0; k < choices.size(); ++k)
    std::cout << (k ? "," : "") << choices[k];
  std::cout << "\n";
}

// Returns true when the pair is clean.
bool explore_pair(const LitmusProgram& prog, ProtocolKind kind,
                  const Args& args) {
  const ExploreResult res = lrc::mc::explore(prog, kind, args.opts);
  std::cout << prog.name << " under " << lrc::core::to_string(kind) << ": "
            << res.schedules << " schedules";
  if (args.opts.reduce) std::cout << " (+" << res.sleep_pruned << " pruned)";
  std::cout << ", " << res.decisions << " decision points, "
            << (res.complete ? "complete" : res.truncated
                                                ? "TRUNCATED"
                                                : "BUDGET EXHAUSTED");
  std::cout << ", " << res.violating << " violating\n";
  for (std::size_t i = 0; i < res.counterexamples.size(); ++i)
    print_counterexample(res.counterexamples[i], i);

  bool ok = res.violating == 0;
  if (args.repeat) {
    const ExploreResult again = lrc::mc::explore(prog, kind, args.opts);
    if (again.schedules != res.schedules ||
        again.sleep_pruned != res.sleep_pruned ||
        again.decisions != res.decisions ||
        again.violating != res.violating) {
      std::cout << "  NONDETERMINISM: second exploration disagrees ("
                << again.schedules << " schedules, " << again.sleep_pruned
                << " pruned, " << again.decisions << " decisions, "
                << again.violating << " violating)\n";
      ok = false;
    }
  }
  return ok;
}

// Jittered per-seed runs — the layer the explorer subsumes. Used to show a
// schedule-dependent mutation slipping past every seed.
bool seed_sweep(const LitmusProgram& prog, ProtocolKind kind, unsigned n) {
  unsigned caught = 0;
  for (std::uint64_t seed = 1; seed <= n; ++seed) {
    const auto res = lrc::check::run_litmus(prog, kind, seed);
    if (!res.passed()) ++caught;
  }
  std::cout << prog.name << " under " << lrc::core::to_string(kind)
            << ": seeds 1.." << n << ": " << caught
            << " seed(s) caught a violation\n";
  return caught == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  std::optional<lrc::check::MutationGuard> guard;
  if (args.mutation != lrc::check::Mutation::kNone)
    guard.emplace(args.mutation);

  try {
    bool clean = true;
    for (const auto& path : collect_programs(args)) {
      const LitmusProgram prog = LitmusProgram::parse_file(path);
      if (args.replay) {
        std::vector<lrc::mc::Decision> trace;
        std::function<void(lrc::core::Machine&)> pre, post;
        if (args.trace_msgs) {
          pre = [](lrc::core::Machine& m) { m.trace().enable(); };
          post = [](lrc::core::Machine& m) {
            std::cout << m.trace().dump(256);
          };
        }
        const auto res = lrc::mc::replay(prog, args.kinds[0],
                                         args.opts.sync_window, *args.replay,
                                         &trace, pre, post);
        std::cout << prog.name << " under "
                  << lrc::core::to_string(args.kinds[0]) << ": replayed "
                  << trace.size() << " decisions\n"
                  << lrc::mc::format_trace(trace);
        for (const auto& f : res.failures)
          std::cout << "  failure: " << f << "\n";
        for (const auto& v : res.violations)
          std::cout << "  violation: " << v << "\n";
        clean = res.passed();
        continue;
      }
      for (ProtocolKind kind : args.kinds) {
        if (args.seed_sweep > 0) seed_sweep(prog, kind, args.seed_sweep);
        if (!explore_pair(prog, kind, args)) clean = false;
      }
    }
    return clean ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "mc_explore: " << e.what() << "\n";
    return 2;
  }
}
