// Inspects a capture directory (DESIGN.md §11): prints the run metadata,
// per-stream block/record/byte counts, and the aggregate compression ratio
// against the naive 13-byte/record encoding. Exit code 1 on malformed
// input (the TraceError message names the file and block).
//
// Usage: trace_info <capture-dir>
#include <cstdio>
#include <exception>
#include <string>

#include "trace/format.hpp"
#include "trace/reader.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <capture-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  try {
    const lrc::trace::TraceMeta meta = lrc::trace::read_meta(dir);
    std::printf("capture    %s\n", dir.c_str());
    std::printf("app        %s\n", meta.app.c_str());
    std::printf("protocol   %s\n", meta.protocol.c_str());
    std::printf("seed       %llu\n",
                static_cast<unsigned long long>(meta.seed));
    std::printf("nprocs     %u\n\n", meta.nprocs);
    std::printf("%-14s %8s %12s %12s %12s %7s\n", "stream", "blocks",
                "records", "raw-bytes", "file-bytes", "ratio");

    lrc::trace::StreamStats total;
    for (unsigned p = 0; p < meta.nprocs; ++p) {
      const std::string path = dir + "/" + lrc::trace::stream_name(p);
      const lrc::trace::StreamStats s = lrc::trace::scan_stream(path);
      total.blocks += s.blocks;
      total.records += s.records;
      total.raw_bytes += s.raw_bytes;
      total.file_bytes += s.file_bytes;
      total.reads += s.reads;
      total.writes += s.writes;
      total.computes += s.computes;
      total.syncs += s.syncs;
      const double naive =
          static_cast<double>(s.records) * lrc::trace::kNaiveRecordBytes;
      std::printf("%-14s %8llu %12llu %12llu %12llu %6.1f%%\n",
                  lrc::trace::stream_name(p).c_str(),
                  static_cast<unsigned long long>(s.blocks),
                  static_cast<unsigned long long>(s.records),
                  static_cast<unsigned long long>(s.raw_bytes),
                  static_cast<unsigned long long>(s.file_bytes),
                  naive > 0 ? 100.0 * static_cast<double>(s.file_bytes) / naive
                            : 0.0);
    }

    const double naive =
        static_cast<double>(total.records) * lrc::trace::kNaiveRecordBytes;
    std::printf("\n%-14s %8llu %12llu %12llu %12llu %6.1f%%\n", "total",
                static_cast<unsigned long long>(total.blocks),
                static_cast<unsigned long long>(total.records),
                static_cast<unsigned long long>(total.raw_bytes),
                static_cast<unsigned long long>(total.file_bytes),
                naive > 0
                    ? 100.0 * static_cast<double>(total.file_bytes) / naive
                    : 0.0);
    std::printf("ops            reads %llu  writes %llu  computes %llu  "
                "syncs %llu\n",
                static_cast<unsigned long long>(total.reads),
                static_cast<unsigned long long>(total.writes),
                static_cast<unsigned long long>(total.computes),
                static_cast<unsigned long long>(total.syncs));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_info: %s\n", e.what());
    return 1;
  }
  return 0;
}
