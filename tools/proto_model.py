#!/usr/bin/env python3
"""AST-grounded static analysis for the protocol layer (docs/STATIC.md).

Two passes over the real sources — no regex scraping of code:

  Pass 1 (protocol model): recover, for every protocol family registered in
  `src/proto/factory.cpp`, the effective `Protocol::handle` dispatch — the
  family's own switch merged with any base-class switch its `default:`
  explicitly delegates to — plus the `DirState` switches inside each home
  handler. Prove MsgKind exhaustiveness (every enumerator handled, owned by
  the sync service, or explicitly annotated `// proto-lint: unreachable`),
  flag dead/duplicate/stale cases, attribute message *send* sites to
  families through the class hierarchy (virtual overrides narrow the
  attribution), emit `build/proto_model.json`, and cross-validate the model
  against the tables in docs/PROTOCOL.md.

  Pass 2 (determinism lint): walk every source under `src/` for constructs
  that can break the bit-identical-stats contract the golden digests and
  `--shards` determinism depend on: `std::unordered_*` containers
  (iteration-order hazard — use util::FlatMap/FlatSet or annotate),
  pointer-keyed ordered containers, and entropy/wall-clock calls
  (`rand`, `std::random_device`, `std::mt19937` without a derived seed,
  `*_clock::now`, `gettimeofday`, `time`). `// det-lint: ok(reason)`
  allowlists a specific line.

Backends
--------
The analysis is grounded in a token-level parse of the translation units.
Two interchangeable backends produce the same source model:

  * `tokens`  — built-in C++ lexer + structural parser (default; zero
                dependencies, deterministic, tested by the fixture suite).
  * `libclang` — the real clang AST via the `clang.cindex` python bindings
                and the exported `compile_commands.json`. Requires
                libclang >= 14 (see README build options). Selected with
                `--backend libclang`; `--backend auto` uses it when
                importable and falls back to `tokens`.

Run `scripts/run_static_checks.py` for the CI entry point.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

PUNCT3 = ("<<=", ">>=", "...", "->*")
PUNCT2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
          "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")


@dataclass
class Tok:
    kind: str  # id | num | str | chr | punct
    text: str
    line: int


@dataclass
class Comment:
    line: int        # first line of the comment
    end_line: int    # last line
    col: int         # start column on its first line
    text: str


class LexError(Exception):
    pass


def lex(text: str):
    """Tokenize C++ source. Returns (tokens, comments). Preprocessor lines
    (including continuations) are dropped; comments are collected separately
    for annotation scanning."""
    toks: list[Tok] = []
    comments: list[Comment] = []
    i, n, line = 0, len(text), 1
    col = 0
    at_line_start = True

    def newline_count(s: str) -> int:
        return s.count("\n")

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            col = 0
            at_line_start = True
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            col += 1
            continue
        if c == "#" and at_line_start:
            # Preprocessor directive: skip to unescaped end of line.
            j = i
            while j < n:
                if text[j] == "\\" and j + 1 < n and text[j + 1] == "\n":
                    j += 2
                    line += 1
                    continue
                if text[j] == "\n":
                    break
                j += 1
            i = j
            continue
        at_line_start = False
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            comments.append(Comment(line, line, col, text[i + 2:j]))
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                raise LexError(f"line {line}: unterminated block comment")
            body = text[i + 2:j]
            comments.append(Comment(line, line + newline_count(body), col,
                                    body))
            line += newline_count(body)
            i = j + 2
            continue
        if c == 'R' and text[i:i + 2] == 'R"':
            # Raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^()\\ ]*)\(', text[i:])
            if m is None:
                raise LexError(f"line {line}: bad raw string")
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            if j < 0:
                raise LexError(f"line {line}: unterminated raw string")
            lit = text[i:j + len(close)]
            toks.append(Tok("str", lit, line))
            line += newline_count(lit)
            i = j + len(close)
            continue
        if c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise LexError(f"line {line}: unterminated string")
            toks.append(Tok("str", text[i:j + 1], line))
            i = j + 1
            continue
        if c == "'" and not (toks and toks[-1].kind == "num"):
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise LexError(f"line {line}: unterminated char literal")
            toks.append(Tok("chr", text[i:j + 1], line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._'" or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        for p in PUNCT3:
            if text.startswith(p, i):
                toks.append(Tok("punct", p, line))
                i += 3
                break
        else:
            for p in PUNCT2:
                if text.startswith(p, i):
                    toks.append(Tok("punct", p, line))
                    i += 2
                    break
            else:
                toks.append(Tok("punct", c, line))
                i += 1
        col += 1
    return toks, comments


# ---------------------------------------------------------------------------
# Annotations
# ---------------------------------------------------------------------------

# Anchored: an annotation must begin the comment text, so prose that merely
# *mentions* the grammar (docs, fixture headers) is never parsed as one.
ANNOT_RE = re.compile(r"\s*(proto-lint|det-lint)\s*:\s*(unreachable|ok)\s*\(")


@dataclass
class Annotation:
    tool: str        # proto-lint | det-lint
    verb: str        # unreachable | ok
    names: list[str]  # for proto-lint: enumerators (or ["*"]); det-lint: []
    reason: str
    line: int        # line of the annotation itself
    attach_line: int  # code line the annotation governs
    used: bool = False


def _merge_comment_run(comments: list[Comment], start: int) -> tuple[str, int]:
    """Join a run of consecutive single-line comments starting at index
    `start` until parentheses balance. Returns (joined text, end line)."""
    text = comments[start].text
    end = comments[start].end_line
    k = start
    while text.count("(") > text.count(")") and k + 1 < len(comments):
        nxt = comments[k + 1]
        if nxt.line != comments[k].end_line + 1:
            break
        text += " " + nxt.text
        end = nxt.end_line
        k += 1
    return text, end


def parse_annotations(toks: list[Tok], comments: list[Comment]
                      ) -> tuple[list[Annotation], list[dict]]:
    """Extract proto-lint/det-lint annotations and compute the code line
    each one attaches to (its own line when code precedes the comment,
    otherwise the next line holding a token)."""
    token_lines = sorted({t.line for t in toks})
    findings: list[dict] = []
    out: list[Annotation] = []
    for idx, c in enumerate(comments):
        m = ANNOT_RE.match(c.text)
        if m is None:
            continue
        tool, verb = m.group(1), m.group(2)
        merged, end_line = _merge_comment_run(comments, idx)
        m2 = ANNOT_RE.match(merged)
        depth, j = 1, m2.end()
        while j < len(merged) and depth > 0:
            if merged[j] == "(":
                depth += 1
            elif merged[j] == ")":
                depth -= 1
            j += 1
        if depth != 0:
            findings.append({"rule": "annotation-syntax", "line": c.line,
                             "msg": f"{tool}: {verb}(...) never closes"})
            continue
        body = merged[m2.end():j - 1].strip()
        names: list[str] = []
        reason = body
        if tool == "proto-lint":
            # unreachable(<Name>[, <Name>...] : reason)  |  unreachable(*: r)
            head, sep, tail = body.partition(":")
            if sep and not head.strip().startswith('"'):
                names = [s.strip() for s in head.split(",") if s.strip()]
                reason = tail.strip()
            else:
                names, reason = [], ""
        if not reason:
            findings.append({"rule": "annotation-reason", "line": c.line,
                             "msg": f"{tool}: {verb}() carries no reason "
                                    "string (grammar: ...(names: reason))"})
            continue
        # Attachment: same line if code precedes the comment, else the next
        # code line after the comment block.
        same_line_code = any(t.line == c.line for t in toks)
        if same_line_code:
            attach = c.line
        else:
            attach = next((ln for ln in token_lines if ln > end_line), -1)
        out.append(Annotation(tool, verb, names, reason, c.line, attach))
    return out, findings


# ---------------------------------------------------------------------------
# Structural parser (tokens backend)
# ---------------------------------------------------------------------------

@dataclass
class CaseGroup:
    labels: list[str]            # enumerator names (qualifier stripped)
    qualifier: str               # e.g. "MsgKind", "DirState", "" for default
    line: int
    is_default: bool = False
    body: list[Tok] = field(default_factory=list)
    asserts_false: bool = False  # body is an assert(false...) sentinel
    handler: str = ""            # `return fn(msg, start)` target, if any
    delegate: str = ""           # `return Base::handle(...)` in default


@dataclass
class Switch:
    subject: str                 # source text of the controlling expression
    line: int
    enum: str                    # qualifier of the first labelled case
    groups: list[CaseGroup] = field(default_factory=list)

    def case_names(self) -> list[str]:
        names = []
        for g in self.groups:
            names += g.labels
        return names

    def default_group(self):
        for g in self.groups:
            if g.is_default:
                return g
        return None


@dataclass
class Func:
    qualname: str                # Class::name or bare name
    cls: str                     # enclosing/qualifying class ("" if free)
    name: str
    file: str
    start: int
    end: int
    body: list[Tok] = field(default_factory=list)
    switches: list[Switch] = field(default_factory=list)
    msgkind_uses: list[str] = field(default_factory=list)  # outside labels
    returns_str: str = ""        # literal of a lone `return "...";` body


@dataclass
class SourceModel:
    """Per-repo parse results, identical across backends."""
    enums: dict[str, list[str]] = field(default_factory=dict)
    enum_files: dict[str, str] = field(default_factory=dict)
    bases: dict[str, str] = field(default_factory=dict)      # class -> base
    funcs: list[Func] = field(default_factory=list)
    annotations: dict[str, list[Annotation]] = field(default_factory=dict)
    annot_findings: dict[str, list[dict]] = field(default_factory=dict)
    tags: dict[str, str] = field(default_factory=dict)       # kTag* -> file:line
    consts: dict[str, str] = field(default_factory=dict)     # other k* consts

    def functions_of(self, cls: str) -> set[str]:
        return {f.name for f in self.funcs if f.cls == cls}

    def find_func(self, cls: str, name: str):
        for f in self.funcs:
            if f.cls == cls and f.name == name:
                return f
        return None

    def resolve_method(self, cls: str, name: str) -> str:
        """Walk `cls` up its base chain to the class that defines `name`."""
        c = cls
        while c:
            if self.find_func(c, name) is not None:
                return c
            c = self.bases.get(c, "")
        return ""


def _tok_text(toks: list[Tok]) -> str:
    return " ".join(t.text for t in toks)


def _find_matching(toks: list[Tok], i: int, open_t: str, close_t: str) -> int:
    """Index of the token closing the bracket opened at i."""
    depth = 0
    for j in range(i, len(toks)):
        if toks[j].text == open_t:
            depth += 1
        elif toks[j].text == close_t:
            depth -= 1
            if depth == 0:
                return j
    raise LexError(f"line {toks[i].line}: unbalanced {open_t}")


def _parse_enum(toks: list[Tok], i: int):
    """toks[i] == 'enum'. Returns (name, members, end_index) or None."""
    j = i + 1
    if j < len(toks) and toks[j].text in ("class", "struct"):
        j += 1
    if j >= len(toks) or toks[j].kind != "id":
        return None
    name = toks[j].text
    j += 1
    while j < len(toks) and toks[j].text not in ("{", ";"):
        j += 1
    if j >= len(toks) or toks[j].text != "{":
        return None  # forward declaration
    close = _find_matching(toks, j, "{", "}")
    members = []
    depth = 0
    expect_member = True
    for k in range(j + 1, close):
        t = toks[k]
        if t.text in ("(", "{", "["):
            depth += 1
        elif t.text in (")", "}", "]"):
            depth -= 1
        elif depth == 0 and t.text == ",":
            expect_member = True
        elif depth == 0 and expect_member and t.kind == "id":
            members.append(t.text)
            expect_member = False
    return name, members, close


def _label_end(toks: list[Tok], i: int) -> int:
    """Index of the ':' ending a case label starting at toks[i]=='case'."""
    depth = 0
    ternary = 0
    j = i + 1
    while j < len(toks):
        t = toks[j].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == "?":
            ternary += 1
        elif t == ":" and depth == 0:
            if ternary:
                ternary -= 1
            else:
                return j
        j += 1
    raise LexError(f"line {toks[i].line}: case label without ':'")


def _parse_switch(toks: list[Tok], i: int) -> tuple[Switch, int]:
    """toks[i] == 'switch'. Returns (Switch, index past the closing brace)."""
    par = i + 1
    assert toks[par].text == "("
    par_close = _find_matching(toks, par, "(", ")")
    subject = _tok_text(toks[par + 1:par_close]).replace(" :: ", "::")
    subject = subject.replace(" . ", ".").replace(" -> ", "->")
    brace = par_close + 1
    while toks[brace].text != "{":
        brace += 1
    brace_close = _find_matching(toks, brace, "{", "}")
    sw = Switch(subject=subject, line=toks[i].line, enum="")

    j = brace + 1
    depth = 0
    cur: CaseGroup | None = None
    while j < brace_close:
        t = toks[j]
        if t.text in ("{", "(", "["):
            depth += 1
        elif t.text in ("}", ")", "]"):
            depth -= 1
        if depth == 0 and t.text == "case" and toks[j].kind == "id":
            colon = _label_end(toks, j)
            label_toks = toks[j + 1:colon]
            # qualifier::name  or  bare name
            name = label_toks[-1].text
            qual = ""
            if len(label_toks) >= 3 and label_toks[-2].text == "::":
                qual = label_toks[-3].text
            if cur is None or cur.body:
                cur = CaseGroup(labels=[], qualifier=qual, line=t.line)
                sw.groups.append(cur)
            cur.labels.append(name)
            if qual and not cur.qualifier:
                cur.qualifier = qual
            if qual and not sw.enum:
                sw.enum = qual
            j = colon + 1
            continue
        if depth == 0 and t.text == "default" and toks[j + 1].text == ":":
            if cur is None or cur.body:
                cur = CaseGroup(labels=[], qualifier="", line=t.line)
                sw.groups.append(cur)
            cur.is_default = True
            j += 2
            continue
        if cur is not None:
            cur.body.append(t)
        j += 1

    for g in sw.groups:
        _summarize_case(g)
    return sw, brace_close + 1


def _summarize_case(g: CaseGroup) -> None:
    body = g.body
    texts = [t.text for t in body]
    if "assert" in texts:
        k = texts.index("assert")
        if k + 2 < len(texts) and texts[k + 1] == "(" and texts[k + 2] == "false":
            g.asserts_false = True
    # `return fn ( msg , start ) ;`  |  `return Base :: handle ( ... ) ;`
    if texts[:1] == ["return"] and len(texts) > 2:
        if len(texts) > 4 and texts[2] == "::" and texts[4] == "(":
            g.delegate = f"{texts[1]}::{texts[3]}"
        elif texts[1].isidentifier() and texts[2] == "(":
            g.handler = texts[1]


def _scan_body(fn: Func) -> None:
    """Populate switches and MsgKind uses (excluding case labels and switch
    subjects) for a parsed function body."""
    toks = fn.body
    label_spans: list[tuple[int, int]] = []
    j = 0
    while j < len(toks):
        if toks[j].text == "switch" and toks[j].kind == "id":
            sw, _ = _parse_switch(toks, j)
            fn.switches.append(sw)
        if toks[j].text == "case" and toks[j].kind == "id":
            label_spans.append((j, _label_end(toks, j)))
        j += 1
    for k in range(len(toks) - 2):
        if (toks[k].text == "MsgKind" and toks[k + 1].text == "::" and
                toks[k + 2].kind == "id"):
            if any(a <= k <= b for a, b in label_spans):
                continue
            fn.msgkind_uses.append(toks[k + 2].text)
    # `return "Name";` bodies (protocol name() overrides)
    texts = [t.text for t in toks]
    if len(texts) == 3 and texts[0] == "return" and toks[1].kind == "str":
        fn.returns_str = texts[1][1:-1]


_SCOPE_KEYWORDS = ("if", "for", "while", "switch", "do", "else", "try",
                   "catch")


def parse_file(path: Path, rel: str, model: SourceModel) -> None:
    text = path.read_text()
    toks, comments = lex(text)
    annots, afinds = parse_annotations(toks, comments)
    model.annotations[rel] = annots
    model.annot_findings[rel] = afinds

    # Statement scanner at namespace/class scope.
    i = 0
    n = len(toks)
    class_stack: list[str] = []  # enclosing class names ("" for non-class)

    def scan_scope(i: int, end: int, cls: str) -> None:
        """Scan tokens [i, end) at namespace/class scope."""
        head_start = i
        while i < end:
            t = toks[i]
            if t.text == ";":
                _scan_decl_head(toks, head_start, i, rel, model, cls)
                i += 1
                head_start = i
                continue
            if t.text == "enum":
                r = _parse_enum(toks, i)
                if r is not None:
                    name, members, close = r
                    if name not in model.enums:
                        model.enums[name] = members
                        model.enum_files[name] = rel
                    i = close + 1
                    head_start = i
                    continue
                i += 1
                continue
            if t.text in ("class", "struct") and toks[i + 1].kind == "id":
                # Type definition or forward declaration?
                j = i + 1
                name = toks[j].text
                j += 1
                base = ""
                while j < end and toks[j].text not in ("{", ";"):
                    if toks[j].text == ":" and toks[j - 1].text != ":":
                        k = j + 1
                        while k < end and toks[k].text in ("public", "private",
                                                           "protected",
                                                           "virtual"):
                            k += 1
                        # qualified base: A::B -> take last id before , {
                        ids = []
                        while k < end and toks[k].text not in (",", "{"):
                            if toks[k].kind == "id":
                                ids.append(toks[k].text)
                            k += 1
                        if ids:
                            base = ids[-1]
                    j += 1
                if j < end and toks[j].text == "{":
                    close = _find_matching(toks, j, "{", "}")
                    if base:
                        model.bases[name] = base
                    elif name not in model.bases:
                        model.bases.setdefault(name, "")
                    scan_scope(j + 1, close, name)
                    i = close + 1
                    # swallow trailing `;`
                    if i < end and toks[i].text == ";":
                        i += 1
                    head_start = i
                    continue
                # forward declaration: fall through to `;` handling
                i = j
                continue
            if t.text == "namespace":
                j = i + 1
                while j < end and toks[j].text != "{" and toks[j].text != ";":
                    j += 1
                if j < end and toks[j].text == "{":
                    close = _find_matching(toks, j, "{", "}")
                    scan_scope(j + 1, close, cls)
                    i = close + 1
                    head_start = i
                    continue
                i = j + 1
                head_start = i
                continue
            if t.text == "{":
                close = _find_matching(toks, i, "{", "}")
                _scan_braced_head(toks, head_start, i, close, rel, model, cls)
                i = close + 1
                if i < end and toks[i].text == ";":
                    i += 1
                head_start = i
                continue
            if t.text == "=" and i + 1 < end and toks[i + 1].text == "{":
                # brace initializer in a declaration: skip it
                close = _find_matching(toks, i + 1, "{", "}")
                i = close + 1
                continue
            if t.text == "(":
                i = _find_matching(toks, i, "(", ")") + 1
                continue
            i += 1
        # trailing headless tokens ignored

    def _scan_braced_head(toks, head_start, brace, close, rel, model, cls):
        """A `{` at namespace/class scope: function definition if the head
        contains a parameter list."""
        head = toks[head_start:brace]
        par = next((k for k, t in enumerate(head) if t.text == "("), None)
        if par is None or par == 0:
            return
        # name = trailing id/:: chain before the first '('
        k = par - 1
        parts = []
        while k >= 0 and (head[k].kind == "id" or head[k].text == "::" or
                          head[k].text == "~"):
            parts.append(head[k].text)
            k -= 1
            if len(parts) >= 2 and parts[-1] != "::" and parts[-2] != "::":
                if parts[-1] not in ("::",):
                    break
        parts.reverse()
        chain = [p for p in parts if p != "::"]
        if not chain:
            return
        name = chain[-1]
        fcls = chain[-2] if len(chain) >= 2 and "::" in parts else cls
        if name in _SCOPE_KEYWORDS or not name.isidentifier():
            return
        fn = Func(qualname=(f"{fcls}::{name}" if fcls else name),
                  cls=fcls, name=name, file=rel,
                  start=head[0].line if head else toks[brace].line,
                  end=toks[close].line,
                  body=toks[brace + 1:close])
        _scan_body(fn)
        model.funcs.append(fn)

    def _scan_decl_head(toks, head_start, semi, rel, model, cls):
        """Declaration ending in ';' — harvest constexpr k* constants."""
        head = toks[head_start:semi]
        texts = [t.text for t in head]
        if "constexpr" in texts and "=" in texts:
            eq = texts.index("=")
            for k in range(eq - 1, -1, -1):
                if head[k].kind == "id" and re.fullmatch(r"k[A-Z]\w*",
                                                         head[k].text):
                    where = f"{rel}:{head[k].line}"
                    if head[k].text.startswith("kTag"):
                        model.tags[head[k].text] = where
                    else:
                        model.consts[head[k].text] = where
                    break

    scan_scope(0, n, "")


# ---------------------------------------------------------------------------
# libclang backend (optional)
# ---------------------------------------------------------------------------

def parse_file_libclang(path: Path, rel: str, model: SourceModel,
                        compile_db_dir: Path) -> None:
    """Produce the same SourceModel facts via the clang AST. Requires the
    `clang` python bindings and a libclang >= 14 shared library; see
    docs/STATIC.md. Annotations are comment-level and always come from the
    built-in lexer."""
    import clang.cindex as ci  # noqa: deferred import — optional dep

    # Annotations still come from the comment scanner.
    toks, comments = lex(path.read_text())
    annots, afinds = parse_annotations(toks, comments)
    model.annotations[rel] = annots
    model.annot_findings[rel] = afinds

    args = ["-std=c++20", "-xc++"]
    try:
        db = ci.CompilationDatabase.fromDirectory(str(compile_db_dir))
        cmds = db.getCompileCommands(str(path))
        if cmds:
            args = [a for a in list(cmds[0].arguments)[1:-1]
                    if a != "-c" and not a.endswith(".o")]
    except ci.CompilationDatabaseError:
        pass
    tu = ci.Index.create().parse(str(path), args=args)

    def spelling_chain(cur):
        parts = []
        p = cur.semantic_parent
        while p is not None and p.kind in (ci.CursorKind.CLASS_DECL,
                                           ci.CursorKind.STRUCT_DECL):
            parts.append(p.spelling)
            p = p.semantic_parent
        return parts[0] if parts else ""

    def visit(cur):
        if cur.location.file and Path(str(cur.location.file)) != path:
            return
        k = cur.kind
        if k == ci.CursorKind.ENUM_DECL and cur.spelling:
            members = [c.spelling for c in cur.get_children()
                       if c.kind == ci.CursorKind.ENUM_CONSTANT_DECL]
            if members and cur.spelling not in model.enums:
                model.enums[cur.spelling] = members
                model.enum_files[cur.spelling] = rel
        if k in (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL):
            for c in cur.get_children():
                if c.kind == ci.CursorKind.CXX_BASE_SPECIFIER:
                    base = c.type.spelling.split("::")[-1]
                    model.bases[cur.spelling] = base
        if k in (ci.CursorKind.CXX_METHOD, ci.CursorKind.FUNCTION_DECL,
                 ci.CursorKind.CONSTRUCTOR) and cur.is_definition():
            cls = spelling_chain(cur)
            name = cur.spelling
            fn = Func(qualname=(f"{cls}::{name}" if cls else name), cls=cls,
                      name=name, file=rel, start=cur.extent.start.line,
                      end=cur.extent.end.line)
            # Re-lex the body extent with the reference lexer so switch and
            # use extraction is shared between backends.
            src = path.read_text().splitlines()
            body = "\n".join(src[cur.extent.start.line - 1:
                                 cur.extent.end.line])
            brace = body.find("{")
            if brace >= 0:
                btoks, _ = lex(body[brace + 1:body.rfind("}")])
                for t in btoks:
                    t.line += cur.extent.start.line - 1
                fn.body = btoks
                _scan_body(fn)
            model.funcs.append(fn)
        for c in cur.get_children():
            visit(c)

    for c in tu.cursor.get_children():
        visit(c)


# ---------------------------------------------------------------------------
# Pass 1: protocol model
# ---------------------------------------------------------------------------

PROTO_FILES = ("src/proto", "src/mesh/message.hpp", "src/check/checker.hpp",
               "src/sim/event.hpp", "src/core/params.hpp")


def load_model(root: Path, backend: str = "auto") -> SourceModel:
    use_clang = False
    if backend in ("auto", "libclang"):
        try:
            import clang.cindex as ci
            ci.Index.create()
            use_clang = True
        except Exception:
            if backend == "libclang":
                sys.exit("error: --backend libclang requested but the clang "
                         "python bindings / libclang >= 14 are unavailable "
                         "(see docs/STATIC.md)")
    model = SourceModel()
    files: list[Path] = []
    for spec in PROTO_FILES:
        p = root / spec
        if p.is_dir():
            files += sorted(p.glob("*.hpp")) + sorted(p.glob("*.cpp"))
        elif p.is_file():
            files.append(p)
    for f in files:
        rel = str(f.relative_to(root))
        if use_clang and f.suffix == ".cpp":
            parse_file_libclang(f, rel, model, root / "build")
        else:
            parse_file(f, rel, model)
    model.backend = "libclang" if use_clang else "tokens"  # type: ignore
    return model


@dataclass
class Family:
    name: str                  # display name ("SC", "LRC-ext", ...)
    cls: str                   # implementing class ("Sc", ...)
    chain: list[str]           # class chain up to ProtocolBase
    handle: str = ""           # qualname of the effective handle
    transitions: dict = field(default_factory=dict)   # kind -> info
    unreachable: dict = field(default_factory=dict)   # kind -> reason
    sends: dict = field(default_factory=dict)         # kind -> [qualnames]


def discover_families(model: SourceModel) -> list[Family]:
    """Families = the factory switch in make_protocol: one per ProtocolKind
    enumerator, class from the make_unique target, display name from the
    class's name() override."""
    factory = model.find_func("", "make_protocol")
    fams: list[Family] = []
    if factory is None or not factory.switches:
        return fams
    sw = factory.switches[0]
    for g in sw.groups:
        if g.is_default and not g.labels:
            continue
        texts = [t.text for t in g.body]
        cls = ""
        for k, t in enumerate(texts):
            if t == "make_unique" and k + 2 < len(texts):
                cls = texts[k + 2]
                break
        if not cls:
            continue
        chain = [cls]
        c = cls
        while model.bases.get(c):
            c = model.bases[c]
            chain.append(c)
        name_cls = model.resolve_method(cls, "name")
        name_fn = model.find_func(name_cls, "name") if name_cls else None
        display = name_fn.returns_str if (name_fn and name_fn.returns_str) \
            else cls
        for label in g.labels:
            fams.append(Family(name=display, cls=cls, chain=chain))
    return fams


def family_classes_of(model: SourceModel, fams: list[Family],
                      cls: str, name: str) -> set[str]:
    """Display names of the families whose virtual dispatch of `name`
    lands on `cls::name` (override-aware attribution)."""
    out = set()
    for fam in fams:
        if model.resolve_method(fam.cls, name) == cls:
            out.add(fam.name)
    return out


def effective_dispatch(model: SourceModel, fam: Family, findings: list[dict]):
    """Merge the family's handle switch with explicitly-delegated base
    switches. Fills fam.handle / fam.transitions / fam.unreachable."""
    cls = model.resolve_method(fam.cls, "handle")
    if not cls:
        findings.append({"rule": "no-handle", "family": fam.name,
                         "msg": f"{fam.cls}: no handle() in class chain"})
        return
    seen_kinds: dict[str, str] = {}
    chain_fns: list[str] = []
    while cls:
        fn = model.find_func(cls, "handle")
        if fn is None or not fn.switches:
            findings.append({"rule": "no-dispatch-switch", "family": fam.name,
                             "msg": f"{cls}::handle has no dispatch switch"})
            return
        sw = fn.switches[0]
        chain_fns.append(fn.qualname)
        next_cls = ""
        for g in sw.groups:
            for label in g.labels:
                if label in seen_kinds:
                    findings.append({
                        "rule": "shadowed-case", "family": fam.name,
                        "gating": False,
                        "msg": f"{fn.qualname} case {label} shadowed by "
                               f"{seen_kinds[label]} earlier in the chain"})
                    continue
                handler = g.handler or ("(inline)" if g.body else "")
                hq = handler
                if handler and handler not in ("(inline)",):
                    hcls = model.resolve_method(cls, handler)
                    hq = f"{hcls}::{handler}" if hcls else handler
                seen_kinds[label] = fn.qualname
                fam.transitions[label] = {
                    "handler": hq,
                    "dispatch": fn.qualname,
                    "source": f"{fn.file}:{g.line}",
                }
            if g.is_default:
                if g.delegate:
                    base_cls, base_fn = g.delegate.split("::", 1)
                    if base_fn == "handle":
                        next_cls = base_cls
                ann = _annotation_for(model, fn.file, g.line, "proto-lint")
                if ann is not None:
                    if ann.names == ["*"]:
                        findings.append({
                            "rule": "wildcard-unreachable", "family": fam.name,
                            "msg": f"{fn.qualname}: wildcard proto-lint "
                                   "annotation not allowed in a protocol "
                                   "dispatch switch — list the kinds"})
                    for nm in ann.names:
                        # Kinds already dispatched by a more-derived switch
                        # in this family's chain never reach this default —
                        # the annotation is simply vacuous for this family.
                        if nm not in seen_kinds:
                            fam.unreachable[nm] = ann.reason
                    ann.used = True
        cls = next_cls
    fam.handle = chain_fns[0]
    fam.dispatch_chain = chain_fns  # type: ignore


def _annotation_for(model: SourceModel, rel: str, line: int, tool: str):
    for a in model.annotations.get(rel, []):
        if a.tool == tool and a.attach_line == line:
            return a
    return None


def dir_state_switches(model: SourceModel, fam: Family) -> dict:
    """DirState switches inside the family's home-side handlers, with
    per-state assert-unreachable auditing."""
    out = {}
    for kind, info in fam.transitions.items():
        h = info.get("handler", "")
        if "::" not in h:
            continue
        hcls, hname = h.split("::", 1)
        fn = model.find_func(hcls, hname)
        if fn is None:
            continue
        for sw in fn.switches:
            if sw.enum != "DirState":
                continue
            states = {}
            for g in sw.groups:
                for label in g.labels:
                    states[label] = {"asserts_unreachable": g.asserts_false,
                                     "line": g.line}
            out.setdefault(h, {"file": fn.file, "line": sw.line,
                               "states": states, "kinds": []})
            if kind not in out[h]["kinds"]:
                out[h]["kinds"].append(kind)
    for h in out.values():
        h["kinds"].sort()
    return out


def check_exhaustiveness(model: SourceModel, fams: list[Family],
                         sync_kinds: set[str], findings: list[dict]) -> None:
    msg_kinds = [m for m in model.enums.get("MsgKind", []) if m != "kCount"]
    for fam in fams:
        handled = set(fam.transitions)
        annotated = set(fam.unreachable)
        for k in msg_kinds:
            if k in handled or k in sync_kinds:
                continue
            if k in annotated:
                continue
            findings.append({
                "rule": "unhandled-kind", "family": fam.name,
                "msg": f"{fam.name}: MsgKind::{k} reaches {fam.handle}'s "
                       "default but is neither handled nor annotated "
                       "`// proto-lint: unreachable(...)`"})
        for k in sorted(annotated):
            if k in handled:
                findings.append({
                    "rule": "stale-annotation", "family": fam.name,
                    "msg": f"{fam.name}: MsgKind::{k} is annotated "
                           f"unreachable but {fam.transitions[k]['dispatch']} "
                           "handles it"})
            elif k in sync_kinds:
                findings.append({
                    "rule": "stale-annotation", "family": fam.name,
                    "msg": f"{fam.name}: MsgKind::{k} is annotated "
                           "unreachable but is owned by the sync service"})
            elif k not in model.enums.get("MsgKind", []):
                findings.append({
                    "rule": "unknown-annotation", "family": fam.name,
                    "msg": f"{fam.name}: annotation names unknown "
                           f"enumerator {k}"})


def audit_state_switches(model: SourceModel, fams: list[Family],
                         findings: list[dict]) -> dict:
    all_states = model.enums.get("DirState", [])
    per_family = {}
    for fam in fams:
        sws = dir_state_switches(model, fam)
        per_family[fam.name] = sws
        for h, info in sws.items():
            for state, st in info["states"].items():
                if st["asserts_unreachable"]:
                    ann = _annotation_for(model, info["file"], st["line"],
                                          "proto-lint")
                    if ann is None or (state not in ann.names and
                                       ann.names != ["*"]):
                        findings.append({
                            "rule": "unannotated-dead-case",
                            "family": fam.name,
                            "msg": f"{h} ({info['file']}:{st['line']}): "
                                   f"case {state} asserts unreachable but "
                                   "carries no proto-lint: unreachable "
                                   "annotation"})
                    elif ann is not None:
                        ann.used = True
            missing = [s for s in all_states if s not in info["states"]]
            if missing:
                findings.append({
                    "rule": "missing-state-case", "family": fam.name,
                    "msg": f"{h} ({info['file']}:{info['line']}): DirState "
                           f"switch missing {', '.join(missing)}"})
    return per_family


def collect_sends(model: SourceModel, fams: list[Family]) -> None:
    """Attribute MsgKind uses outside case labels to families through the
    virtual-dispatch chain of the enclosing method."""
    for fam in fams:
        fam.sends = {}
    for fn in model.funcs:
        if not fn.msgkind_uses or not fn.file.startswith("src/proto"):
            continue
        if fn.cls == "SyncManager":
            targets = {f.name for f in fams}
        elif fn.cls:
            targets = family_classes_of(model, fams, fn.cls, fn.name)
        else:
            continue
        if not targets:
            continue
        for fam in fams:
            if fam.name not in targets:
                continue
            for k in fn.msgkind_uses:
                fam.sends.setdefault(k, [])
                if fn.qualname not in fam.sends[k]:
                    fam.sends[k].append(fn.qualname)


def build_protocol_model(root: Path, backend: str = "auto"):
    """Returns (model_dict, findings). Gating findings have gating != False."""
    model = load_model(root, backend)
    findings: list[dict] = []
    for rel, fs in model.annot_findings.items():
        for f in fs:
            findings.append({**f, "file": rel})

    fams = discover_families(model)
    if not fams:
        findings.append({"rule": "no-families",
                         "msg": "factory.cpp: no protocol families found"})
        return {}, findings

    # Sync service ownership: the kinds SyncManager::handle dispatches.
    sync_fn = model.find_func("SyncManager", "handle")
    sync_kinds: set[str] = set()
    if sync_fn is not None and sync_fn.switches:
        sync_kinds = set(sync_fn.switches[0].case_names())
        d = sync_fn.switches[0].default_group()
        if d is not None:
            ann = _annotation_for(model, sync_fn.file, d.line, "proto-lint")
            if ann is not None:
                ann.used = True

    for fam in fams:
        effective_dispatch(model, fam, findings)
    check_exhaustiveness(model, fams, sync_kinds, findings)
    state_sw = audit_state_switches(model, fams, findings)
    collect_sends(model, fams)

    # Annotations that never matched anything are stale.
    for rel, annots in model.annotations.items():
        for a in annots:
            if a.tool == "proto-lint" and not a.used:
                findings.append({
                    "rule": "orphan-annotation", "file": rel,
                    "msg": f"{rel}:{a.line}: proto-lint annotation attaches "
                           "to nothing the extractor audits"})

    # Families sharing a handler chain produce identical findings — dedup.
    uniq: dict[tuple, dict] = {}
    for f in findings:
        uniq.setdefault((f["rule"], f["msg"]), f)
    findings = list(uniq.values())

    out = {
        "generator": "tools/proto_model.py",
        "backend": getattr(model, "backend", "tokens"),
        "enums": {k: v for k, v in sorted(model.enums.items())},
        "enum_files": dict(sorted(model.enum_files.items())),
        "tags": dict(sorted(model.tags.items())),
        "consts": dict(sorted(model.consts.items())),
        "sync_kinds": sorted(sync_kinds),
        "families": {},
        "functions": {
            f.qualname: {"file": f.file, "start": f.start, "end": f.end}
            for f in sorted(model.funcs, key=lambda f: (f.file, f.start))
            if f.qualname
        },
    }
    for fam in fams:
        out["families"][fam.name] = {
            "class": fam.cls,
            "chain": fam.chain,
            "handle": fam.handle,
            "dispatch_chain": getattr(fam, "dispatch_chain", []),
            "transitions": {k: fam.transitions[k]
                            for k in sorted(fam.transitions)},
            "dir_state_switches": state_sw.get(fam.name, {}),
            "unreachable": dict(sorted(fam.unreachable.items())),
            "sends": {k: sorted(v) for k, v in sorted(fam.sends.items())},
        }
    return out, findings


# ---------------------------------------------------------------------------
# Doc cross-validation (docs/PROTOCOL.md)
# ---------------------------------------------------------------------------

def _doc_families(cell: str, all_names: list[str]) -> set[str]:
    cell = cell.strip()
    if cell.lower() == "all":
        return set(all_names)
    return {s.strip() for s in cell.split(",") if s.strip()}


def check_docs(root: Path, model_json: dict) -> list[dict]:
    doc = (root / "docs" / "PROTOCOL.md").read_text()
    findings: list[dict] = []
    fam_names = sorted(model_json["families"])
    sync_kinds = set(model_json["sync_kinds"])

    # --- Message vocabulary table: per-kind "Used by" parity vs send sites.
    vocab: dict[str, set[str]] = {}
    in_vocab = False
    for line in doc.splitlines():
        if line.startswith("## "):
            in_vocab = line.strip() == "## Message vocabulary"
        if not in_vocab or not line.startswith("| `k"):
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) < 4:
            continue
        kinds = re.findall(r"`(k[A-Z]\w*)`", cells[0])
        used = _doc_families(cells[2], fam_names)
        for k in kinds:
            vocab[k] = used

    model_used: dict[str, set[str]] = {}
    for fname, fam in model_json["families"].items():
        for k in fam["sends"]:
            model_used.setdefault(k, set()).add(fname)
    for k in sorted(set(vocab) | set(model_used)):
        if k in sync_kinds:
            continue  # sync kinds are attributed to every family by design
        doc_set = vocab.get(k)
        mod_set = model_used.get(k)
        if doc_set is None:
            findings.append({"rule": "doc-missing-kind",
                             "msg": f"PROTOCOL.md vocabulary table has no "
                                    f"row for {k} (sent by "
                                    f"{', '.join(sorted(mod_set))})"})
        elif mod_set is None:
            findings.append({"rule": "doc-phantom-kind",
                             "msg": f"PROTOCOL.md lists {k} but no send "
                                    "site exists in src/proto"})
        elif doc_set != mod_set:
            findings.append({
                "rule": "doc-used-by-drift",
                "msg": f"PROTOCOL.md says {k} is used by "
                       f"{{{', '.join(sorted(doc_set))}}} but the AST "
                       f"attributes its send sites to "
                       f"{{{', '.join(sorted(mod_set))}}}"})

    # --- Home-transition tables: row kinds and state columns per family.
    for fam_name, heading in (("SC", "## SC and ERC"), ("LRC", "## LRC —")):
        fam = model_json["families"].get(fam_name)
        if fam is None:
            continue
        section = doc.find(heading)
        sub = doc.find("### Home transitions", section) if section >= 0 else -1
        header, rows = None, []
        if sub >= 0:
            for line in doc[sub:].splitlines()[1:]:
                if line.startswith("### ") or line.startswith("## "):
                    break
                if not line.startswith("|"):
                    if header is not None and rows:
                        break  # table ended
                    continue
                cells = [c.strip() for c in line.strip().strip("|").split("|")]
                if header is None:
                    header = cells
                    continue
                if set("".join(cells)) <= set("-| :"):
                    continue  # separator row
                rows.append(cells)
        if header is None:
            findings.append({"rule": "doc-missing-table",
                             "msg": f"PROTOCOL.md: no home-transition table "
                                    f"under {heading}"})
            continue
        doc_rows = set()
        for cells in rows:
            doc_rows |= {t for t in re.findall(r"`(k[A-Z]\w*)`", cells[0])
                         if not t.startswith("kTag")}
        model_home = {k for k, t in fam["transitions"].items()
                      if t["handler"].split("::")[-1].startswith("home_")}
        if doc_rows != model_home:
            only_doc = doc_rows - model_home
            only_model = model_home - doc_rows
            bits = []
            if only_doc:
                bits.append(f"doc-only: {', '.join(sorted(only_doc))}")
            if only_model:
                bits.append(f"code-only: {', '.join(sorted(only_model))}")
            findings.append({
                "rule": "doc-table-rows",
                "msg": f"PROTOCOL.md {fam_name} home-transition rows drift "
                       f"from the extracted home handlers ({'; '.join(bits)})"
            })
        doc_cols = set(re.findall(r"`(k[A-Z]\w*)`", " ".join(header[1:])))
        model_cols = set()
        for h in fam["dir_state_switches"].values():
            for state, st in h["states"].items():
                if not st["asserts_unreachable"]:
                    model_cols.add(state)
        if doc_cols != model_cols:
            findings.append({
                "rule": "doc-table-columns",
                "msg": f"PROTOCOL.md {fam_name} table columns "
                       f"{{{', '.join(sorted(doc_cols))}}} != reachable "
                       f"DirState cases "
                       f"{{{', '.join(sorted(model_cols))}}}"})
    return findings


# ---------------------------------------------------------------------------
# Pass 2: determinism lint
# ---------------------------------------------------------------------------

UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
             "unordered_multiset"}
CLOCKS = {"steady_clock", "system_clock", "high_resolution_clock"}
ORDERED_KEYED = {"map", "set", "multimap", "multiset"} | UNORDERED

LINT_DEFAULT_DIRS = ("src",)


def lint_file(path: Path, rel: str) -> list[dict]:
    try:
        toks, comments = lex(path.read_text())
    except LexError as e:
        return [{"rule": "lex-error", "file": rel, "line": 0, "msg": str(e)}]
    annots, afinds = parse_annotations(toks, comments)
    findings = [{**f, "file": rel} for f in afinds
                if f["rule"].startswith("annotation")]
    allow = {a.attach_line: a for a in annots
             if a.tool == "det-lint" and a.verb == "ok"}

    raw: list[dict] = []

    def flag(rule: str, line: int, msg: str):
        raw.append({"rule": rule, "file": rel, "line": line, "msg": msg})

    for i, t in enumerate(toks):
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        if t.kind != "id":
            continue
        if t.text in UNORDERED:
            flag("unordered-container", t.line,
                 f"std::{t.text}: iteration order is unspecified and can "
                 "leak into stats/reports — use util::FlatMap/FlatSet or "
                 "annotate `// det-lint: ok(reason)`")
        elif t.text in ("rand", "srand") and nxt == "(":
            prev = toks[i - 1].text if i > 0 else ""
            if prev not in (".", "->", "::"):
                flag("entropy", t.line, f"{t.text}(): nondeterministic seed "
                     "source on a simulation path")
        elif t.text == "random_device":
            flag("entropy", t.line, "std::random_device: hardware entropy "
                 "breaks replayability")
        elif t.text in ("mt19937", "mt19937_64") and nxt in ("(", "<") or \
                (t.text in ("mt19937", "mt19937_64") and toks[i - 1].text
                 == "::" and nxt not in (";",)):
            flag("entropy", t.line, f"std::{t.text}: engine seed must be "
                 "derived from run parameters — annotate the derivation "
                 "`// det-lint: ok(seed source)`")
        elif t.text in CLOCKS and nxt == "::":
            flag("wall-clock", t.line, f"std::chrono::{t.text}::now() "
                 "reads wall time; simulation results must not depend on it")
        elif t.text == "gettimeofday" and nxt == "(":
            flag("wall-clock", t.line, "gettimeofday(): wall time on a "
                 "simulation path")
        elif t.text == "time" and nxt == "(" and i > 0 and \
                toks[i - 1].text not in (".", "->", "::", ")"):
            flag("wall-clock", t.line, "time(): wall time on a simulation "
                 "path")
        if t.text in ORDERED_KEYED and nxt == "<":
            # pointer-valued key: first template argument contains '*'
            depth, j, key_has_ptr = 0, i + 1, False
            while j < len(toks):
                txt = toks[j].text
                if txt == "<":
                    depth += 1
                elif txt in (">", ">>"):
                    depth -= 2 if txt == ">>" else 1
                    if depth <= 0:
                        break
                elif txt == "," and depth == 1:
                    break
                elif txt == "*" and depth == 1:
                    key_has_ptr = True
                j += 1
            if key_has_ptr:
                flag("pointer-key", t.line,
                     f"std::{t.text} keyed by a pointer: ordering/iteration "
                     "follows allocation addresses, which vary across runs")

    dedup: dict[tuple, dict] = {}
    for f in raw:
        dedup.setdefault((f["rule"], f["line"]), f)
    for (rule, line), f in sorted(dedup.items(), key=lambda kv: kv[0][1]):
        a = allow.get(line)
        if a is not None:
            a.used = True
            continue
        findings.append(f)
    for a in annots:
        if a.tool == "det-lint" and not a.used:
            findings.append({"rule": "orphan-annotation", "file": rel,
                             "line": a.line,
                             "msg": "det-lint: ok annotation allowlists "
                                    "nothing (stale?)"})
    return findings


def lint_tree(root: Path, dirs=LINT_DEFAULT_DIRS) -> list[dict]:
    findings: list[dict] = []
    for d in dirs:
        base = root / d
        if not base.exists():
            continue
        for f in sorted(base.rglob("*.hpp")) + sorted(base.rglob("*.cpp")):
            findings += lint_file(f, str(f.relative_to(root)))
    return findings


# ---------------------------------------------------------------------------
# Fixture self-audit: switch checks over enums local to one file
# ---------------------------------------------------------------------------

def audit_fixture(path: Path) -> list[dict]:
    """Single-file switch audit used by the fixture suite: switches over
    enums declared in the same file are checked for missing enumerators,
    duplicate labels, and unannotated assert-unreachable cases."""
    model = SourceModel()
    rel = path.name
    parse_file(path, rel, model)
    findings = [{**f, "file": rel} for f in model.annot_findings[rel]]

    def ann_for(line: int):
        return _annotation_for(model, rel, line, "proto-lint")

    for fn in model.funcs:
        for sw in fn.switches:
            if sw.enum not in model.enums:
                continue
            members = [m for m in model.enums[sw.enum] if m != "kCount"]
            seen: dict[str, int] = {}
            annotated: set[str] = set()
            default_annotated: set[str] = set()
            default = sw.default_group()
            if default is not None:
                a = ann_for(default.line)
                if a is not None:
                    default_annotated = set(a.names)
                    annotated |= default_annotated
                    a.used = True
            for g in sw.groups:
                if g.asserts_false and g.labels:
                    a = ann_for(g.line)
                    if a is not None and (set(g.labels) <= set(a.names) or
                                          a.names == ["*"]):
                        a.used = True
                        annotated |= set(g.labels)
                    else:
                        findings.append({
                            "rule": "unannotated-dead-case", "file": rel,
                            "line": g.line,
                            "msg": f"{fn.qualname}: case "
                                   f"{', '.join(g.labels)} asserts "
                                   "unreachable without annotation"})
                for label in g.labels:
                    if label in seen:
                        findings.append({
                            "rule": "duplicate-case", "file": rel,
                            "line": g.line,
                            "msg": f"{fn.qualname}: duplicate case {label} "
                                   f"(first at line {seen[label]})"})
                    seen[label] = g.line
            handled = set(seen) | annotated
            missing = [m for m in members if m not in handled]
            if missing and default is not None:
                findings.append({
                    "rule": "unhandled-kind", "file": rel, "line": sw.line,
                    "msg": f"{fn.qualname}: switch({sw.subject}) covers "
                           f"neither nor annotates {', '.join(missing)}"})
            # Only the default's annotation can be stale this way — a
            # dead *case* is expected to name its own label.
            for m in sorted(default_annotated):
                if m in seen:
                    findings.append({
                        "rule": "stale-annotation", "file": rel,
                        "line": sw.line,
                        "msg": f"{fn.qualname}: {m} annotated unreachable "
                               "but handled"})
    return findings


# ---------------------------------------------------------------------------
# Static-vs-dynamic coverage
# ---------------------------------------------------------------------------

def coverage_report(model_json: dict, observed_path: Path) -> list[str]:
    """Informational: declared transitions never exercised by the observed
    (family, state-before, kind) triples (see docs/STATIC.md for how the
    LRCSIM_TRANSITION_LOG recorder produces them)."""
    # The recorder logs the to_string() names ("Dirty", "ReadReq"); the
    # model carries the enumerator names ("kDirty", "kReadReq"). Map the
    # stripped spellings back through the model's own enum inventory.
    canon = {m[1:]: m
             for e in ("DirState", "MsgKind")
             for m in model_json["enums"].get(e, [])}
    observed: set[tuple[str, str, str]] = set()
    for line in observed_path.read_text().splitlines():
        parts = line.split("\t")
        if len(parts) == 3:
            fam, st, kind = parts
            observed.add((fam, canon.get(st, st), canon.get(kind, kind)))
    seen_kinds = {(f, k) for f, _s, k in observed}
    lines: list[str] = []
    for fname, fam in sorted(model_json["families"].items()):
        for kind in sorted(fam["transitions"]):
            if (fname, kind) not in seen_kinds:
                lines.append(f"{fname}: declared transition for {kind} "
                             "never exercised by the corpus")
        for h, info in sorted(fam["dir_state_switches"].items()):
            for state, st in sorted(info["states"].items()):
                if st["asserts_unreachable"]:
                    continue
                hit = any((fname, state, k) in observed
                          for k in info["kinds"])
                if not hit:
                    lines.append(f"{fname}: {h} state {state} (for "
                                 f"{', '.join(info['kinds'])}) never "
                                 "entered by the corpus")
    return lines


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def gating(findings: list[dict]) -> list[dict]:
    return [f for f in findings if f.get("gating", True)]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("command", choices=["extract", "check-docs", "lint",
                                        "coverage", "audit-fixture"])
    ap.add_argument("--repo", type=Path, default=Path(__file__).resolve()
                    .parent.parent)
    ap.add_argument("--backend", choices=["auto", "tokens", "libclang"],
                    default="tokens")
    ap.add_argument("--out", type=Path, default=None)
    ap.add_argument("--observed", type=Path, default=None)
    ap.add_argument("--fixture", type=Path, default=None)
    args = ap.parse_args()

    if args.command == "audit-fixture":
        for f in audit_fixture(args.fixture):
            print(f"{f['file']}:{f.get('line', 0)}: [{f['rule']}] {f['msg']}")
        return 0

    model_json, findings = build_protocol_model(args.repo, args.backend)
    if args.command == "extract":
        out = args.out or (args.repo / "build" / "proto_model.json")
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(model_json, indent=1, sort_keys=False)
                       + "\n")
        for f in findings:
            print(f"[{f['rule']}] {f['msg']}")
        print(f"proto model: {len(model_json.get('families', {}))} families "
              f"-> {out}")
        return 1 if gating(findings) else 0
    if args.command == "check-docs":
        findings += check_docs(args.repo, model_json)
        for f in findings:
            print(f"[{f['rule']}] {f['msg']}")
        return 1 if gating(findings) else 0
    if args.command == "lint":
        lfinds = lint_tree(args.repo)
        for f in lfinds:
            print(f"{f['file']}:{f['line']}: [{f['rule']}] {f['msg']}")
        print(f"determinism lint: {len(lfinds)} finding(s)")
        return 1 if lfinds else 0
    if args.command == "coverage":
        if args.observed is None or not args.observed.is_file():
            print("coverage: no observed-transition log; skipping "
                  "(informational)")
            return 0
        for line in coverage_report(model_json, args.observed):
            print("  " + line)
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
