// Simulation-kernel microbenchmark: the pooled-event calendar-queue engine
// versus the original std::function + std::priority_queue engine, on the
// schedule/fire pattern the simulator actually generates (short forward
// deltas, many live events, events scheduling more events).
//
// Reports events/sec and heap allocations/event for both kernels, as JSON
// on stdout and in BENCH_micro_engine.json.  The rewrite must hold a >= 2x
// events/sec advantage (DESIGN.md "Simulation kernel").
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/types.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter.  Replacing operator new/delete in the binary
// lets us attribute heap traffic to each engine without instrumentation.
static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using lrc::Cycle;

// ---------------------------------------------------------------------------
// The seed kernel, verbatim in structure: (when, seq, std::function) triples
// in a binary heap; ties break by insertion order.
class LegacyEngine {
 public:
  using Thunk = std::function<void(Cycle)>;

  void schedule(Cycle when, Thunk fn) {
    queue_.push(Item{when, next_seq_++, std::move(fn)});
  }
  void run() {
    while (!queue_.empty()) {
      Item ev = queue_.top();  // copy: top() is const (seed behaviour)
      queue_.pop();
      now_ = ev.when;
      ++executed_;
      ev.fn(now_);
    }
  }
  Cycle now() const { return now_; }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Item {
    Cycle when;
    std::uint64_t seq;
    Thunk fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

// ---------------------------------------------------------------------------
// Workload: kChains independent event chains, each hopping forward by a
// pseudo-random 1..64-cycle delta until its hop budget is spent.  This is
// the simulator's signature pattern — NIC deliveries, DRAM completions, and
// CPU wake-ups are all short-horizon reschedules with many live events.
struct Chain {
  std::uint64_t remaining = 0;
  std::uint32_t rng = 0;

  Cycle next_delta() {
    rng = rng * 1664525u + 1013904223u;
    return 1 + (rng & 63);
  }
};

// Models the mesh::Message each NIC-delivery thunk carried by value in the
// seed kernel — large enough to defeat std::function's small-buffer
// optimization, exactly as the real closures did.
struct Payload {
  unsigned char bytes[56] = {};
};

constexpr unsigned kChains = 256;

template <typename EngineT>
void hop(EngineT& eng, Chain* c, Cycle t, const Payload& p) {
  c->rng += p.bytes[0];  // consume the payload so it cannot be elided
  if (--c->remaining == 0) return;
  Payload next = p;
  next.bytes[0] = static_cast<unsigned char>(c->rng);
  eng.schedule(t + c->next_delta(),
               [&eng, c, next](Cycle tt) { hop(eng, c, tt, next); });
}

template <typename EngineT>
std::uint64_t drive(EngineT& eng, std::uint64_t total_events) {
  std::vector<Chain> chains(kChains);
  for (unsigned i = 0; i < kChains; ++i) {
    chains[i].remaining = total_events / kChains;
    chains[i].rng = 0x9e3779b9u ^ i;
    eng.schedule(0, [&eng, c = &chains[i]](Cycle t) {
      hop(eng, c, t, Payload{});
    });
  }
  eng.run();
  return eng.events_executed();
}

struct Measurement {
  double events_per_sec = 0;
  double allocs_per_event = 0;
  std::uint64_t events = 0;
};

template <typename EngineT>
Measurement measure(std::uint64_t total_events) {
  EngineT eng;
  drive(eng, kChains * 16);  // warm up pools / heap arenas
  const std::uint64_t warm = eng.events_executed();

  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t done = drive(eng, total_events) - warm;
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);

  Measurement m;
  m.events = done;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  m.events_per_sec = static_cast<double>(done) / secs;
  m.allocs_per_event =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(done);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t total = 2'000'000;
  if (argc > 1) total = std::strtoull(argv[1], nullptr, 10);

  const auto legacy = measure<LegacyEngine>(total);
  const auto pooled = measure<lrc::sim::Engine>(total);
  const double speedup = pooled.events_per_sec / legacy.events_per_sec;

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"bench\": \"micro_engine\",\n"
      "  \"events\": %llu,\n"
      "  \"legacy\": {\"events_per_sec\": %.0f, \"allocs_per_event\": %.3f},\n"
      "  \"pooled\": {\"events_per_sec\": %.0f, \"allocs_per_event\": %.3f},\n"
      "  \"speedup\": %.2f\n"
      "}\n",
      static_cast<unsigned long long>(pooled.events),
      legacy.events_per_sec, legacy.allocs_per_event, pooled.events_per_sec,
      pooled.allocs_per_event, speedup);

  std::fputs(json, stdout);
  if (FILE* f = std::fopen("BENCH_micro_engine.json", "w")) {
    std::fputs(json, f);
    std::fclose(f);
  }
  return 0;
}
