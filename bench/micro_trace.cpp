// Trace front-end microbenchmark (DESIGN.md §11): fiber-mode execution vs
// trace capture vs fiber-free replay on the fig4 fft workload (64
// processors, bench scale, LRC).
//
// Measures and gates the trace front end's three contract numbers:
//   * replay throughput  >= 1.10x fiber-mode accesses/sec (both serial, so
//     the ratio is host-portable);
//   * capture overhead   <= 1.20x the plain fiber run;
//   * compressed trace   <= 25% of the naive 13-byte/record encoding;
//   * steady-state decode allocates nothing (Reader::next over every
//     captured stream under a counting global operator new).
//
// Writes BENCH_trace_replay.json and exits non-zero when a gate fails, so
// the CI bench-smoke job enforces the targets directly and
// check_bench_regression.py guards the recorded ratios against drift.
#include <ctime>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>

#include "bench/harness.hpp"
#include "core/report.hpp"
#include "trace/format.hpp"
#include "trace/reader.hpp"

// Counting global allocator: every operator-new in the process bumps the
// counter, so a zero delta around the decode loop is a real guarantee, not
// an artifact of an instrumented subset.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lrc {
namespace {

constexpr unsigned kProcs = 64;
constexpr const char* kApp = "fft";
constexpr core::ProtocolKind kKind = core::ProtocolKind::kLRC;
constexpr int kRuns = 3;  // best-of-N per mode

double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

bench::Options base_options() {
  bench::Options opt;
  // Bench scale: enough accesses (~1M) that capture's fixed per-stream file
  // cost amortizes; test scale would measure 64 file creations, not the
  // per-record encode path.
  opt.scale = bench::Scale::kBench;
  opt.procs = kProcs;
  opt.apps = {kApp};
  opt.validate = false;  // replay has no host-side results to validate
  opt.jobs = 1;
  return opt;
}

// Best-of-kRuns process-CPU seconds for one run_app configuration.
double best_seconds(const bench::Options& opt, std::uint64_t* accesses) {
  const auto* app = bench::selected_apps(opt).front();
  double best = 0;
  for (int i = 0; i < kRuns; ++i) {
    const double t0 = cpu_seconds();
    const auto res = bench::run_app(*app, kKind, opt);
    const double dt = cpu_seconds() - t0;
    if (i == 0 || dt < best) best = dt;
    if (accesses != nullptr) *accesses = res.report.cache.references();
  }
  return best;
}

struct DecodeStats {
  std::uint64_t records = 0;
  std::uint64_t accesses = 0;
  std::uint64_t allocs = 0;  // inside the next() loops only
};

// Decodes every stream once; Reader construction (buffer setup) is outside
// the counted window, the per-record next() path is inside it.
DecodeStats decode_all(const std::string& dir, unsigned nprocs) {
  DecodeStats d;
  for (unsigned p = 0; p < nprocs; ++p) {
    trace::Reader r(dir + "/" + trace::stream_name(p));
    trace::Record rec;
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    while (r.next(rec)) {
      ++d.records;
      if (rec.op == trace::Op::kRead || rec.op == trace::Op::kWrite) {
        ++d.accesses;
      }
    }
    d.allocs += g_allocs.load(std::memory_order_relaxed) - a0;
  }
  return d;
}

}  // namespace
}  // namespace lrc

int main() {
  using namespace lrc;

  const std::string cap_root = "micro_trace_capture";
  const std::string cell =
      cap_root + "/" + std::string(kApp) + "_" +
      std::string(core::to_string(kKind));

  std::printf("micro_trace: capture / compress / fiber-free replay\n");
  std::printf("host cores: %u\n", std::thread::hardware_concurrency());
  std::printf("workload: %s, %u procs, bench scale, %s\n\n", kApp, kProcs,
              core::to_string(kKind).data());

  // Fiber baseline.
  std::uint64_t accesses = 0;
  bench::Options fiber_opt = base_options();
  const double fiber_sec = best_seconds(fiber_opt, &accesses);
  std::printf("  fiber    %8.4f s  (%llu accesses, %.0f accesses/s)\n",
              fiber_sec, (unsigned long long)accesses,
              static_cast<double>(accesses) / fiber_sec);

  // Capture (re-captures each run; the last capture feeds replay).
  bench::Options cap_opt = base_options();
  cap_opt.capture_dir = cap_root;
  const double capture_sec = best_seconds(cap_opt, nullptr);
  const double capture_overhead = capture_sec / fiber_sec;
  std::printf("  capture  %8.4f s  (%.2fx fiber)\n", capture_sec,
              capture_overhead);

  // Trace size vs the naive 13-byte/record encoding.
  std::uint64_t file_bytes = 0, records = 0;
  for (unsigned p = 0; p < kProcs; ++p) {
    const auto s = trace::scan_stream(cell + "/" + trace::stream_name(p));
    file_bytes += s.file_bytes;
    records += s.records;
  }
  const double naive_bytes =
      static_cast<double>(records) * trace::kNaiveRecordBytes;
  const double compression = static_cast<double>(file_bytes) / naive_bytes;
  std::printf("  trace    %llu records, %llu bytes on disk (%.1f%% of "
              "naive %0.f)\n",
              (unsigned long long)records, (unsigned long long)file_bytes,
              100.0 * compression, naive_bytes);

  // Steady-state decode allocations.
  const DecodeStats dec = decode_all(cell, kProcs);
  const double allocs_per_access =
      static_cast<double>(dec.allocs) / static_cast<double>(dec.accesses);
  std::printf("  decode   %llu records, %llu allocs in next() loop "
              "(%.6f/access)\n",
              (unsigned long long)dec.records, (unsigned long long)dec.allocs,
              allocs_per_access);

  // Fiber-free replay.
  bench::Options rep_opt = base_options();
  rep_opt.replay_dir = cap_root;
  const double replay_sec = best_seconds(rep_opt, nullptr);
  const double speedup = fiber_sec / replay_sec;
  std::printf("  replay   %8.4f s  (%.2fx fiber throughput)\n\n", replay_sec,
              speedup);

  struct Gate {
    const char* name;
    bool ok;
  } gates[] = {
      {"replay >= 1.10x fiber", speedup >= 1.10},
      {"capture <= 1.20x fiber", capture_overhead <= 1.20},
      {"compressed <= 25% of naive", compression <= 0.25},
      {"decode allocs == 0", dec.allocs == 0},
  };
  bool all_ok = true;
  for (const Gate& g : gates) {
    std::printf("  %-28s %s\n", g.name, g.ok ? "ok" : "FAIL");
    all_ok = all_ok && g.ok;
  }

  FILE* f = std::fopen("BENCH_trace_replay.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"micro_trace\",\n");
    std::fprintf(f, "  \"trace\": {\n");
    std::fprintf(f, "    \"host_cores\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "    \"app\": \"%s\", \"procs\": %u, "
                 "\"protocol\": \"%s\",\n",
                 kApp, kProcs, core::to_string(kKind).data());
    std::fprintf(f, "    \"accesses\": %llu, \"records\": %llu,\n",
                 (unsigned long long)accesses, (unsigned long long)records);
    std::fprintf(f,
                 "    \"fiber_sec\": %.4f, \"capture_sec\": %.4f, "
                 "\"replay_sec\": %.4f,\n",
                 fiber_sec, capture_sec, replay_sec);
    std::fprintf(f, "    \"capture_overhead\": %.3f,\n", capture_overhead);
    std::fprintf(f,
                 "    \"file_bytes\": %llu, \"naive_bytes\": %.0f, "
                 "\"compression_ratio\": %.4f,\n",
                 (unsigned long long)file_bytes, naive_bytes, compression);
    std::fprintf(f, "    \"replay_allocs_per_access\": %.6f,\n",
                 allocs_per_access);
    std::fprintf(f, "    \"speedup\": %.3f\n", speedup);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_trace_replay.json\n");
  }

  if (!all_ok) {
    std::printf("micro_trace: GATE FAILURE\n");
    return 1;
  }
  return 0;
}
