#include "bench/harness.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iterator>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "trace/replay_cpu.hpp"
#include "trace/writer.hpp"

namespace lrc::bench {

namespace {

[[noreturn]] void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --procs N        processors (default 64, max 64)\n"
      "  --scale S        test | bench | paper (default bench)\n"
      "  --quick          alias for --scale test --procs 8\n"
      "  --paper-scale    alias for --scale paper\n"
      "  --apps a,b,...   subset of: gauss fft blu barnes cholesky\n"
      "                   locusroute mp3d (default: all)\n"
      "  --seed N         workload generator seed (default 1)\n"
      "  --cache-kb N     override cache size\n"
      "  --line N         override cache line size (bytes)\n"
      "  --hier NAME      cache-hierarchy preset (default l1):\n"
      "                   l1      single L1 (Table 1)\n"
      "                   l2      + 1 MB 8-way inclusive private L2\n"
      "                   l2x     + 1 MB 8-way exclusive private L2\n"
      "                   l2-llc  l2 plus a 1 MB/node shared sliced LLC\n"
      "  --no-validate    skip result validation\n"
      "  --jobs N         experiment-level parallelism: worker threads\n"
      "                   running independent (app, protocol) cells, each\n"
      "                   on its own Machine (default: all host cores;\n"
      "                   results are identical for any N)\n"
      "  --shards N       shard-level parallelism: threads *inside* one\n"
      "                   simulation (conservative parallel DES, DESIGN.md\n"
      "                   Sec. 10). 0 = serial legacy engine. Stats are\n"
      "                   bit-identical across shard counts >= 1\n"
      "  --capture DIR    record each cell's workload stream as a trace\n"
      "                   under DIR/<app>_<protocol>/ (serial-only; see\n"
      "                   DESIGN.md Sec. 11)\n"
      "  --replay DIR     replay traces from DIR/<app>_<protocol>/ with the\n"
      "                   fiber-free front end; composes with --jobs and\n"
      "                   --shards, stats bit-identical to the captured run\n",
      prog);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

Options Options::parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--procs") {
      opt.procs = static_cast<unsigned>(std::stoul(next()));
      if (opt.procs == 0 || opt.procs > kMaxProcs) usage(argv[0]);
    } else if (arg == "--scale") {
      const std::string s = next();
      if (s == "test") {
        opt.scale = Scale::kTest;
      } else if (s == "bench") {
        opt.scale = Scale::kBench;
      } else if (s == "paper") {
        opt.scale = Scale::kPaper;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--quick") {
      opt.scale = Scale::kTest;
      opt.procs = 8;
    } else if (arg == "--paper-scale") {
      opt.scale = Scale::kPaper;
    } else if (arg == "--apps") {
      opt.apps = split_csv(next());
      for (const auto& a : opt.apps) {
        if (apps::find_app(a) == nullptr) {
          std::fprintf(stderr, "unknown app: %s\n", a.c_str());
          usage(argv[0]);
        }
      }
    } else if (arg == "--seed") {
      opt.seed = std::stoull(next());
    } else if (arg == "--cache-kb") {
      opt.cache_bytes = static_cast<std::uint32_t>(std::stoul(next())) * 1024;
    } else if (arg == "--line") {
      opt.line_bytes = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--hier") {
      opt.hier = next();
      if (opt.hier != "l1" && opt.hier != "l2" && opt.hier != "l2x" &&
          opt.hier != "l2-llc") {
        std::fprintf(stderr, "unknown hierarchy preset: %s\n",
                     opt.hier.c_str());
        usage(argv[0]);
      }
    } else if (arg == "--no-validate") {
      opt.validate = false;
    } else if (arg == "--jobs") {
      opt.jobs = static_cast<unsigned>(std::stoul(next()));
      if (opt.jobs == 0) usage(argv[0]);
    } else if (arg == "--shards") {
      opt.shards = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--capture") {
      opt.capture_dir = next();
    } else if (arg == "--replay") {
      opt.replay_dir = next();
    } else {
      usage(argv[0]);
    }
  }
  if (!opt.capture_dir.empty() && !opt.replay_dir.empty()) {
    std::fprintf(stderr, "--capture and --replay are mutually exclusive\n");
    usage(argv[0]);
  }
  if (!opt.capture_dir.empty() && opt.shards != 0) {
    std::fprintf(stderr, "--capture is serial-only (drop --shards)\n");
    usage(argv[0]);
  }
  return opt;
}

core::SystemParams make_params(const Options& opt) {
  core::SystemParams p = opt.future
                             ? core::SystemParams::future_machine(opt.procs)
                             : core::SystemParams::paper_default(opt.procs);
  switch (opt.scale) {
    case Scale::kTest:
      p.cache_bytes = 4 * 1024;
      break;
    case Scale::kBench:
      // Inputs are ~1/5 the paper's data volume; caches shrink in step so
      // capacity/conflict misses keep their paper-scale role (the paper
      // itself scaled caches down with its inputs, §3).
      p.cache_bytes = 32 * 1024;
      break;
    case Scale::kPaper:
      break;  // Table 1 values
  }
  if (opt.cache_bytes != 0) p.cache_bytes = opt.cache_bytes;
  if (opt.line_bytes != 0) p.line_bytes = opt.line_bytes;
  if (opt.hier == "l2") {
    p.cache = cache::CacheConfig::paper_l2();
  } else if (opt.hier == "l2x") {
    p.cache = cache::CacheConfig::with_l2(1024 * 1024, 8,
                                          cache::InclusionPolicy::kExclusive);
  } else if (opt.hier == "l2-llc") {
    p.cache = cache::CacheConfig::paper_l2().add_llc(1024 * 1024, 8);
  }
  p.seed = opt.seed;
  p.shards = opt.shards;
  return p;
}

std::vector<const apps::AppInfo*> selected_apps(const Options& opt) {
  std::vector<const apps::AppInfo*> out;
  for (const auto& a : apps::registry()) {
    if (opt.apps.empty()) {
      out.push_back(&a);
      continue;
    }
    for (const auto& sel : opt.apps) {
      if (a.name == sel) out.push_back(&a);
    }
  }
  return out;
}

RunResult run_app(const apps::AppInfo& info, core::ProtocolKind kind,
                  const Options& opt) {
  const std::string cell = std::string(info.name) + "_" +
                           std::string(core::to_string(kind));
  if (!opt.replay_dir.empty()) {
    // Fiber-free replay: processors re-issue the recorded streams; the
    // workload body, validation, and capture do not apply.
    core::Machine m(make_params(opt), kind,
                    trace::ReplayCpu::factory(opt.replay_dir + "/" + cell));
    m.run(nullptr);
    RunResult r;
    r.report = m.report();
    r.app.valid = true;
    r.app.detail = "replay";
    return r;
  }
  core::Machine m(make_params(opt), kind);
  std::unique_ptr<trace::CaptureLog> capture;
  if (!opt.capture_dir.empty()) {
    capture = std::make_unique<trace::CaptureLog>(
        opt.capture_dir + "/" + cell, opt.procs);
    capture->set_meta(std::string(info.name),
                      std::string(core::to_string(kind)), opt.seed);
    m.set_access_log(capture.get());
  }
  apps::AppConfig cfg;
  cfg.seed = opt.seed;
  cfg.validate = opt.validate;
  switch (opt.scale) {
    case Scale::kTest:
      cfg.n = info.test_n;
      cfg.steps = info.test_steps;
      break;
    case Scale::kBench:
      cfg.n = info.bench_n;
      cfg.steps = info.bench_steps;
      break;
    case Scale::kPaper:
      cfg.n = info.paper_n;
      cfg.steps = info.paper_steps;
      break;
  }
  RunResult r;
  r.app = info.run(m, cfg);
  if (capture) capture->finish();
  r.report = m.report();
  if (opt.validate && !r.app.valid) {
    std::fprintf(stderr, "WARNING: %s under %s failed validation: %s\n",
                 std::string(info.name).c_str(),
                 std::string(core::to_string(kind)).c_str(),
                 r.app.detail.c_str());
  }
  return r;
}

unsigned effective_jobs(const Options& opt) {
  if (opt.jobs != 0) return opt.jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

std::vector<RunResult> run_experiments(const std::vector<Experiment>& exps,
                                       const Options& opt) {
  std::vector<RunResult> results(exps.size());
  const std::size_t jobs =
      std::min<std::size_t>(effective_jobs(opt), exps.size());
  if (jobs <= 1) {
    for (std::size_t i = 0; i < exps.size(); ++i) {
      results[i] = run_app(*exps[i].app, exps[i].kind, opt);
    }
    return results;
  }

  // Each experiment runs on a fresh Machine with the same seed derivation
  // as the serial path, so this only changes wall-clock time, never
  // results. Workers pull the next unclaimed index; results land at their
  // input position.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= exps.size() || failed.load(std::memory_order_relaxed)) return;
      try {
        results[i] = run_app(*exps[i].app, exps[i].kind, opt);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return results;
}

std::vector<std::vector<RunResult>> run_matrix(
    const Options& opt, const std::vector<core::ProtocolKind>& kinds) {
  const auto apps = selected_apps(opt);
  std::vector<Experiment> exps;
  exps.reserve(apps.size() * kinds.size());
  for (const auto* app : apps) {
    for (const auto kind : kinds) exps.push_back(Experiment{app, kind});
  }
  auto flat = run_experiments(exps, opt);
  std::vector<std::vector<RunResult>> out(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    out[i].assign(std::make_move_iterator(flat.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              i * kinds.size())),
                  std::make_move_iterator(flat.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              (i + 1) * kinds.size())));
  }
  return out;
}

void print_header(const Options& opt, const std::string& title,
                  const std::string& paper_ref) {
  const core::SystemParams p = make_params(opt);
  std::printf("== %s ==\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Scale: %s, %u processors, %u KB %u-byte-line caches%s\n\n",
              opt.scale == Scale::kTest    ? "test"
              : opt.scale == Scale::kBench ? "bench (paper inputs scaled 1:1"
                                             " with caches)"
                                           : "paper",
              opt.procs, p.cache_bytes / 1024, p.line_bytes,
              opt.future ? ", future-machine parameters (Sec. 4.3)" : "");
  std::printf("%s\n", p.describe().c_str());
}

}  // namespace lrc::bench
