// Reproduces the paper's miss-classification table ("Figure 2"):
// percentage of cold / true-sharing / false-sharing / eviction / write
// misses for each application under eager release consistency.
//
// Expected shape (paper §4.1): barnes, blu, locusroute and mp3d show a
// significant false-sharing component; cholesky, fft and gauss show almost
// none.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  bench::print_header(opt, "Miss classification under eager RC",
                      "paper Figure 2 (Sec. 4.1 table)");

  stats::Table table({"Application", "Cold", "True", "False", "Eviction",
                      "Write", "Misses"});
  const auto apps = bench::selected_apps(opt);
  const auto results = bench::run_matrix(opt, {core::ProtocolKind::kERC});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto* app = apps[i];
    const auto& r = results[i][0];
    const auto& mc = r.report.miss_classes;
    const double total = static_cast<double>(mc.total());
    auto pct = [&](stats::MissClass c) {
      return stats::Table::pct(total > 0 ? mc[c] / total : 0.0);
    };
    table.add_row({std::string(app->name), pct(stats::MissClass::kCold),
                   pct(stats::MissClass::kTrueSharing),
                   pct(stats::MissClass::kFalseSharing),
                   pct(stats::MissClass::kEviction),
                   pct(stats::MissClass::kWrite),
                   stats::Table::count(mc.total())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape check: false-sharing significant for barnes/blu/"
      "locusroute/mp3d,\nnear zero for cholesky/fft/gauss.\n");
  return 0;
}
