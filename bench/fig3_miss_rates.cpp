// Reproduces the paper's miss-rate table ("Figure 3"): overall miss rate
// of each application under Eager, Lazy, and Lazy-ext release consistency.
//
// Expected shape (paper §4.2): lazy <= eager everywhere; lazy-ext <= lazy;
// equality for the no-false-sharing applications (cholesky, fft).
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  bench::print_header(opt, "Miss rates per protocol",
                      "paper Figure 3 (Sec. 4.2 table)");

  stats::Table table({"Application", "Eager", "Lazy", "Lazy-ext"});
  const auto apps = bench::selected_apps(opt);
  const auto results = bench::run_matrix(
      opt, {core::ProtocolKind::kERC, core::ProtocolKind::kLRC,
            core::ProtocolKind::kLRCExt});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& erc = results[i][0];
    const auto& lrc_r = results[i][1];
    const auto& ext = results[i][2];
    table.add_row({std::string(apps[i]->name),
                   stats::Table::pct(erc.report.miss_rate(), 2),
                   stats::Table::pct(lrc_r.report.miss_rate(), 2),
                   stats::Table::pct(ext.report.miss_rate(), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape check: Lazy <= Eager for every app; Lazy-ext <= Lazy.\n");
  return 0;
}
