// Reproduces the paper's miss-rate table ("Figure 3"): overall miss rate
// of each application under Eager, Lazy, and Lazy-ext release consistency.
//
// Expected shape (paper §4.2): lazy <= eager everywhere; lazy-ext <= lazy;
// equality for the no-false-sharing applications (cholesky, fft).
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  bench::print_header(opt, "Miss rates per protocol",
                      "paper Figure 3 (Sec. 4.2 table)");

  stats::Table table({"Application", "Eager", "Lazy", "Lazy-ext"});
  for (const auto* app : bench::selected_apps(opt)) {
    const auto erc = bench::run_app(*app, core::ProtocolKind::kERC, opt);
    const auto lrc_r = bench::run_app(*app, core::ProtocolKind::kLRC, opt);
    const auto ext = bench::run_app(*app, core::ProtocolKind::kLRCExt, opt);
    table.add_row({std::string(app->name),
                   stats::Table::pct(erc.report.miss_rate(), 2),
                   stats::Table::pct(lrc_r.report.miss_rate(), 2),
                   stats::Table::pct(ext.report.miss_rate(), 2)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape check: Lazy <= Eager for every app; Lazy-ext <= Lazy.\n");
  return 0;
}
