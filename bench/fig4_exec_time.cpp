// Reproduces Figure 4: normalized execution time of the lazy and eager
// release-consistent protocols (sequential consistency = 1.0) on 64
// processors.
//
// Expected shape (paper §4.2): LRC outperforms ERC by ~5-20% on
// barnes / blu / gauss / locusroute / mp3d; roughly even on fft and
// cholesky; both beat SC.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  bench::print_header(opt, "Normalized execution time: LRC vs ERC vs SC",
                      "paper Figure 4");

  stats::Table table({"Application", "SC(cycles)", "ERC", "LRC",
                      "LRC/ERC gain"});
  const auto apps = bench::selected_apps(opt);
  const auto results = bench::run_matrix(
      opt, {core::ProtocolKind::kSC, core::ProtocolKind::kERC,
            core::ProtocolKind::kLRC});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& sc = results[i][0];
    const auto& erc = results[i][1];
    const auto& lrc_r = results[i][2];
    const double base = static_cast<double>(sc.report.execution_time);
    const double e = erc.report.execution_time / base;
    const double l = lrc_r.report.execution_time / base;
    table.add_row({std::string(apps[i]->name),
                   stats::Table::count(sc.report.execution_time),
                   stats::Table::fixed(e, 3), stats::Table::fixed(l, 3),
                   stats::Table::pct((e - l) / e, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Values are execution time normalized to SC = 1.000 (lower is "
      "better).\nPaper shape check: LRC beats ERC by ~5-20%% where false "
      "sharing / migratory\ndata / pivot-row contention exist; roughly even "
      "on fft and cholesky.\n");
  return 0;
}
