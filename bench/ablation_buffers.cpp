// Ablation (paper Table 1 / §4.2): the relaxed protocols use a 4-entry
// write buffer; the lazy protocols add a 16-entry coalescing buffer. This
// bench sweeps both sizes to show where the paper's defaults sit.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  if (opt.apps.empty()) opt.apps = {"blu", "mp3d"};
  bench::print_header(opt, "Write-buffer / coalescing-buffer size sweep",
                      "paper Table 1 buffer parameters");

  auto run_with = [&](const apps::AppInfo& app, core::ProtocolKind kind,
                      unsigned wb, unsigned cb) {
    core::SystemParams p = bench::make_params(opt);
    p.write_buffer_entries = wb;
    p.coalescing_entries = cb;
    core::Machine m(p, kind);
    apps::AppConfig cfg;
    cfg.seed = opt.seed;
    cfg.n = opt.scale == bench::Scale::kTest ? app.test_n : app.bench_n;
    cfg.steps =
        opt.scale == bench::Scale::kTest ? app.test_steps : app.bench_steps;
    app.run(m, cfg);
    return m.report();
  };

  stats::Table wb_table({"Application", "Protocol", "WB=1", "WB=2", "WB=4*",
                         "WB=8", "WB=16"});
  for (const auto* app : bench::selected_apps(opt)) {
    for (auto kind : {core::ProtocolKind::kERC, core::ProtocolKind::kLRC}) {
      std::vector<std::string> row{std::string(app->name),
                                   std::string(core::to_string(kind))};
      double base = 0;
      for (unsigned wb : {1u, 2u, 4u, 8u, 16u}) {
        const auto r = run_with(*app, kind, wb, 16);
        if (wb == 1) base = static_cast<double>(r.execution_time);
        row.push_back(stats::Table::fixed(r.execution_time / base, 3));
      }
      wb_table.add_row(std::move(row));
      std::fflush(stdout);
    }
  }
  std::printf("Write-buffer sweep (execution time normalized to WB=1; the\n"
              "paper's configuration is WB=4):\n%s\n",
              wb_table.to_string().c_str());

  stats::Table cb_table(
      {"Application", "CB=4", "CB=8", "CB=16*", "CB=32", "CB=64"});
  for (const auto* app : bench::selected_apps(opt)) {
    std::vector<std::string> row{std::string(app->name)};
    double base = 0;
    for (unsigned cb : {4u, 8u, 16u, 32u, 64u}) {
      const auto r = run_with(*app, core::ProtocolKind::kLRC, 4, cb);
      if (cb == 4) base = static_cast<double>(r.execution_time);
      row.push_back(stats::Table::fixed(r.execution_time / base, 3));
    }
    cb_table.add_row(std::move(row));
    std::fflush(stdout);
  }
  std::printf("Coalescing-buffer sweep under LRC (normalized to CB=4; the\n"
              "paper's configuration is CB=16):\n%s\n",
              cb_table.to_string().c_str());
  return 0;
}
