// Memory-system microbenchmark: throughput of the per-access hot path
// (directory, outstanding-transaction table, address mapping) under a
// sharing-heavy LRC workload, plus a component-level comparison of the
// library's containers against the seed's std::unordered_map design.
//
// Three measurements, reported as JSON on stdout and in
// BENCH_micro_memsys.json:
//
//  1. Whole-simulator: simulated-accesses/sec on a 16-node LRC run whose
//     working set is widely shared and cache-hostile, so nearly every
//     access walks the directory/OT path (write notices fan out to ~15
//     sharers, each ack walking the home directory again). Throughput is
//     measured on the marginal iterations (2N vs N runs), which also
//     yields the steady-state heap-allocation rate per access.
//
//  2. Hierarchy: the same workload with a two-level private cache stack
//     (8 KiB L1 + 32 KiB 4-way inclusive L2), reported as a same-run
//     throughput ratio against the single-level run so the figure is
//     host-independent, plus a direct Hierarchy hit-path loop (L1 hits
//     and L2 promotions only) that must allocate nothing in steady state.
//
//  3. Component: an LRC-shaped op stream (directory entry touch + notice
//     collections, OT allocate/merge/drain, address line/word/home math)
//     replayed over (a) a faithful replica of the seed's unordered_map
//     containers and (b) the library's current implementation. The
//     library side must hold a >= 2x ops/sec advantage and allocate
//     nothing in steady state (DESIGN.md "Memory-system hot path").
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <new>
#include <unordered_map>
#include <vector>

#include "bench/harness.hpp"
#include "cache/config.hpp"
#include "cache/hierarchy.hpp"
#include "core/machine.hpp"
#include "core/params.hpp"
#include "mem/address_map.hpp"
#include "cache/ot_table.hpp"
#include "proto/directory.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (same hook as micro_engine): attributing heap
// traffic without instrumentation.
static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace lrc;

// Whole-sim accesses/sec measured on the pre-change tree (commit ab1a2ff,
// same workload, same host, same Release flags as the checked-in JSON).
// The flattened hot path must hold a >= 2x advantage over this (ISSUE 3
// acceptance). Re-record when regenerating BENCH_micro_memsys.json on a
// new host: build bench/micro_memsys's run_sim against the old tree and
// take the median of several interleaved runs.
constexpr double kBaselineAccessesPerSec = 894553;

// Process-CPU-time clock: the benchmark hosts are often oversubscribed, so
// wall-clock throughput is dominated by scheduler noise. CPU seconds track
// the work this process actually did; all throughput figures use them.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

// ---------------------------------------------------------------------------
// Whole-simulator phase.

struct SimTotals {
  std::uint64_t accesses = 0;
  double seconds = 0;
  std::uint64_t allocs = 0;
};

SimTotals run_sim(unsigned iters,
                  const cache::CacheConfig& cfg = cache::CacheConfig::l1_only()) {
  constexpr unsigned kProcs = 16;
  constexpr unsigned kLines = 512;   // 64 KiB footprint, 8 KiB caches
  constexpr unsigned kWordsPerLine = 32;

  core::SystemParams p = core::SystemParams::paper_default(kProcs);
  p.cache_bytes = 8 * 1024;  // cache-hostile: conflict misses + evictions
  p.cache = cfg;
  core::Machine m(p, core::ProtocolKind::kLRC);
  auto data = m.alloc<std::uint32_t>(kLines * kWordsPerLine, "shared");

  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const double t0 = cpu_seconds();
  m.run([&](core::Cpu& cpu) {
    const unsigned np = cpu.nprocs();
    const unsigned id = cpu.id();
    for (unsigned it = 0; it < iters; ++it) {
      // Every processor sweeps the array: every line widely shared.
      for (unsigned l = 0; l < kLines; ++l) {
        (void)data.get(cpu, l * kWordsPerLine + (id % kWordsPerLine));
      }
      // Strided writers: each write to a shared line turns it Weak and
      // fans write notices out to ~15 sharers (each ack re-walks the
      // home directory entry).
      for (unsigned l = id; l < kLines; l += np) {
        data.put(cpu, l * kWordsPerLine + ((it + id) % kWordsPerLine),
                 it + id);
      }
      // Lock hand-off: release drains (write buffer + OT + write-throughs)
      // and acquire-side notice application.
      cpu.lock(0);
      data.put(cpu, (it % kLines) * kWordsPerLine, it);
      cpu.unlock(0);
      cpu.barrier(0);
    }
  });
  const double t1 = cpu_seconds();

  SimTotals t;
  const auto& cs = m.report().cache;
  t.accesses = cs.read_hits + cs.read_misses + cs.write_hits +
               cs.write_misses + cs.upgrade_misses;
  t.seconds = t1 - t0;
  t.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  return t;
}

// ---------------------------------------------------------------------------
// Component phase: the seed's containers, replicated faithfully.

struct LegacyDirEntry {
  proto::DirState state = proto::DirState::kUncached;
  ProcMask sharers = 0;
  ProcMask writers = 0;
  ProcMask notified = 0;
  bool busy = false;
  std::vector<mesh::Message> deferred;
  struct NoticeCollection {
    NodeId writer = kInvalidNode;
    unsigned remaining = 0;
  };
  std::vector<NoticeCollection> collections;
  unsigned notices_outstanding = 0;
};

class LegacyDirectory {
 public:
  LegacyDirEntry& entry(LineId line) { return map_[line]; }

 private:
  std::unordered_map<LineId, LegacyDirEntry> map_;
};

class LegacyOtTable {
 public:
  cache::OtEntry& get_or_create(LineId line, bool* created) {
    auto [it, inserted] = map_.try_emplace(line);
    if (inserted) {
      it->second.line = line;
      ++stats_.allocated;
    } else {
      ++stats_.merged;
    }
    if (created != nullptr) *created = inserted;
    return it->second;
  }
  cache::OtEntry* find(LineId line) {
    auto it = map_.find(line);
    return it == map_.end() ? nullptr : &it->second;
  }
  void erase(LineId line) { map_.erase(line); }
  bool empty() const { return map_.empty(); }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [line, e] : map_) fn(e);
  }
  cache::OtStats& stats() { return stats_; }

 private:
  std::unordered_map<LineId, cache::OtEntry> map_;
  cache::OtStats stats_;
};

// Seed address math: runtime division/modulo on every call.
class LegacyAddressMap {
 public:
  LegacyAddressMap(unsigned nodes, std::uint32_t line_bytes,
                   std::uint32_t page_bytes)
      : nodes_(nodes), line_bytes_(line_bytes), page_bytes_(page_bytes) {}

  LineId line_of(Addr a) const { return a / line_bytes_; }
  unsigned word_in_line(Addr a) const {
    return static_cast<unsigned>((a % line_bytes_) / 4);
  }
  NodeId home_of(Addr a) const {
    return static_cast<NodeId>((a / page_bytes_) % nodes_);
  }

 private:
  unsigned nodes_;
  std::uint32_t line_bytes_;
  std::uint32_t page_bytes_;
};

// ---------------------------------------------------------------------------
// Notice-collection adapters: the seed entry uses plain std::vector; the
// flat entry uses pooled small-buffer storage. Keeping these as overloads
// lets one driver exercise both.

void push_collection(LegacyDirectory&, LegacyDirEntry& e, NodeId writer,
                     unsigned remaining) {
  e.collections.push_back({writer, remaining});
}

// Decrements every open countdown, dropping the ones that reach zero —
// the home_notice_ack pattern.
unsigned drain_collections_step(LegacyDirectory&, LegacyDirEntry& e) {
  unsigned completed = 0;
  for (auto it = e.collections.begin(); it != e.collections.end();) {
    if (--it->remaining == 0) {
      ++completed;
      it = e.collections.erase(it);
    } else {
      ++it;
    }
  }
  return completed;
}

void push_collection(proto::Directory& dir, proto::DirEntry& e, NodeId writer,
                     unsigned remaining) {
  e.collections.push_back({writer, remaining}, dir.col_pool());
}

unsigned drain_collections_step(proto::Directory& dir, proto::DirEntry& e) {
  unsigned completed = 0;
  e.collections.erase_if(dir.col_pool(),
                         [&](proto::DirEntry::NoticeCollection& c) {
                           if (--c.remaining != 0) return false;
                           ++completed;
                           return true;
                         });
  return completed;
}

// ---------------------------------------------------------------------------
// The op stream: a deterministic transaction-shaped mix over a shared
// working set, mirroring what one write to a shared line costs the memory
// system under LRC. Per transaction: address math (line/word/home), the
// home-side directory touch (home_write_req shape: membership masks plus,
// every 4th transaction, a write-notice collection), the requester-side OT
// allocate/merge, one home re-walk per notice ack (home_notice_ack re-looks
// the entry up and ticks every open countdown), and the reply-side OT
// lookup. Every kDrainPeriod transactions the OT table drains completely
// (the release pattern).

constexpr unsigned kProcsC = 16;
constexpr unsigned kLinesC = 4096;
constexpr std::uint32_t kLineBytes = 128;
constexpr std::uint32_t kPageBytes = 4096;
constexpr unsigned kDrainPeriod = 64;

template <typename Dir, typename Ot, typename Amap>
std::uint64_t drive_ops(Dir& dir, Ot& ot, Amap& amap, std::uint64_t ops) {
  std::uint32_t rng = 0x2545f491u;
  std::uint64_t sink = 0;
  std::vector<LineId> open;  // lines with a live OT entry this period
  open.reserve(kDrainPeriod);
  for (std::uint64_t i = 0; i < ops; ++i) {
    rng = rng * 1664525u + 1013904223u;
    const LineId l = (rng >> 8) % kLinesC;
    const Addr a = static_cast<Addr>(l) * kLineBytes + ((rng >> 3) & 124);
    const NodeId p = rng % kProcsC;

    // Address math (every protocol hook does this).
    const LineId line = amap.line_of(a);
    const unsigned word = amap.word_in_line(a);
    sink += amap.home_of(a) + word;

    // Home-side directory touch (home_write_req shape).
    auto& e = dir.entry(line);
    e.sharers |= proc_bit(p);
    e.writers |= proc_bit(p);
    const unsigned notices = (i & 3) == 0 ? 2 : 0;
    if (notices != 0) {
      e.notices_outstanding += notices;
      push_collection(dir, e, p, notices);
    }
    sink += e.notices_outstanding;

    // Requester-side OT traffic (allocate or merge).
    bool created = false;
    auto& oe = ot.get_or_create(line, &created);
    oe.words |= WordMask{1} << word;
    if (created) {
      oe.acks_pending = 1;
      open.push_back(line);
    }

    // Notice acks: each one re-walks the home entry and ticks the open
    // countdowns (home_notice_ack shape).
    for (unsigned k = 0; k < notices; ++k) {
      auto& ea = dir.entry(line);
      sink += drain_collections_step(dir, ea);
      if (ea.notices_outstanding > 0) --ea.notices_outstanding;
    }

    // Reply arrival: the requester looks its transaction back up.
    if (auto* oa = ot.find(line)) {
      oa->acks_pending = 0;
      sink += static_cast<std::uint64_t>(oa->words & 1);
    }

    if ((i + 1) % kDrainPeriod == 0) {
      // Release: the OT table drains completely.
      for (LineId ln : open) ot.erase(ln);
      open.clear();
    }
  }
  sink += ot.stats().allocated + ot.stats().merged;
  return sink;
}

struct OpsMeasurement {
  double ops_per_sec = 0;
  double allocs_per_op = 0;
  std::uint64_t sink = 0;
};

template <typename Dir, typename Ot, typename Amap>
OpsMeasurement measure_ops(Dir& dir, Ot& ot, Amap& amap, std::uint64_t ops) {
  // Warm up: touch the full working set so growth is done before timing.
  OpsMeasurement m;
  m.sink = drive_ops(dir, ot, amap, kLinesC * 4);

  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const double t0 = cpu_seconds();
  m.sink += drive_ops(dir, ot, amap, ops);
  const double t1 = cpu_seconds();
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);

  const double secs = t1 - t0;
  m.ops_per_sec = static_cast<double>(ops) / secs;
  m.allocs_per_op = static_cast<double>(a1 - a0) / static_cast<double>(ops);
  return m;
}

// ---------------------------------------------------------------------------
// Hierarchy phase.

// Two-level private stack for the hierarchy cell: the same 8 KiB L1 (made
// 2-way to put the set-associative victim pick on the hot path) with a
// 32 KiB 4-way inclusive L2 behind it, so the workload's conflict victims
// land in L2 instead of re-walking the directory.
cache::CacheConfig hier_config() {
  auto cfg = cache::CacheConfig::with_l2(32 * 1024, 4,
                                         cache::InclusionPolicy::kInclusive);
  cfg.l1_ways = 2;
  return cfg;
}

// Direct hit-path loop: a Hierarchy whose working set exactly fills the
// L2 (256 lines over 64 four-way sets), swept in a mixed pseudo-random
// order so every access after warmup is either an L1 hit or an L2
// hit-promotion (which demotes an L1 victim back onto its L2 tag). The
// loop must allocate nothing in steady state: the flat containers'
// zero-allocation property extends to the multi-level cache stack.
OpsMeasurement measure_hier_hit_path(std::uint64_t ops) {
  constexpr std::uint32_t kL1Bytes = 8 * 1024;
  constexpr std::uint32_t kLineB = 128;
  constexpr unsigned kSet = 256;  // == L2 lines: everything fits, nothing exits
  cache::Hierarchy h(hier_config(), kL1Bytes, kLineB, /*node=*/0, /*seed=*/1);

  std::uint32_t rng = 0x9e3779b9u;
  std::uint64_t sink = 0;
  std::uint64_t now = 0;
  auto touch = [&] {
    rng = rng * 1664525u + 1013904223u;
    const LineId line = (rng >> 8) % kSet;
    cache::CacheLine* cl = h.lookup(line, static_cast<Cycle>(now));
    if (cl == nullptr) {
      h.fill(line, cache::LineState::kReadOnly, static_cast<Cycle>(now));
      cl = h.find(line);
    }
    sink += static_cast<std::uint64_t>(cl->state != cache::LineState::kInvalid) +
            h.hit_penalty();
    ++now;
  };

  for (unsigned i = 0; i < 8 * kSet; ++i) touch();  // warmup: fill both levels

  OpsMeasurement m;
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const double t0 = cpu_seconds();
  for (std::uint64_t i = 0; i < ops; ++i) touch();
  const double t1 = cpu_seconds();
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);

  m.sink = sink;
  m.ops_per_sec = static_cast<double>(ops) / (t1 - t0);
  m.allocs_per_op = static_cast<double>(a1 - a0) / static_cast<double>(ops);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned iters = 24;
  std::uint64_t ops = 4'000'000;
  if (argc > 1) iters = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10));
  if (argc > 2) ops = std::strtoull(argv[2], nullptr, 10);

  // ---- Whole-simulator phase ----------------------------------------------
  // The marginal cost of the second half of a doubled run removes machine
  // construction, pool growth, and first-touch effects from both the
  // throughput and the allocation rate. Best of three measurement pairs:
  // even process-CPU time fluctuates on an oversubscribed host (cache and
  // memory-bandwidth contention), and the least-interfered run is the one
  // that reflects the code.
  double accesses_per_sec = 0.0;
  double allocs_per_access = 0.0;
  std::uint64_t sim_accesses = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const SimTotals half = run_sim(iters);
    const SimTotals full = run_sim(2 * iters);
    const double d_acc = static_cast<double>(full.accesses - half.accesses);
    const double aps = d_acc / (full.seconds - half.seconds);
    if (aps > accesses_per_sec) {
      accesses_per_sec = aps;
      allocs_per_access =
          static_cast<double>(full.allocs - half.allocs) / d_acc;
      sim_accesses = full.accesses - half.accesses;
    }
  }
  const double sim_speedup = kBaselineAccessesPerSec > 0
                                 ? accesses_per_sec / kBaselineAccessesPerSec
                                 : 0.0;

  // ---- Hierarchy phase ----------------------------------------------------
  // Same workload behind the two-level private stack. Throughput is
  // reported as a ratio against the single-level run measured seconds
  // earlier in this same process, so the figure survives host changes;
  // the direct hit-path loop pins the zero-allocation property of the
  // lookup / promotion / demotion path.
  double hier_accesses_per_sec = 0.0;
  double hier_allocs_per_access = 0.0;
  std::uint64_t hier_accesses = 0;
  const lrc::cache::CacheConfig hcfg = hier_config();
  for (int rep = 0; rep < 3; ++rep) {
    const SimTotals half = run_sim(iters, hcfg);
    const SimTotals full = run_sim(2 * iters, hcfg);
    const double d_acc = static_cast<double>(full.accesses - half.accesses);
    const double aps = d_acc / (full.seconds - half.seconds);
    if (aps > hier_accesses_per_sec) {
      hier_accesses_per_sec = aps;
      hier_allocs_per_access =
          static_cast<double>(full.allocs - half.allocs) / d_acc;
      hier_accesses = full.accesses - half.accesses;
    }
  }
  const double hier_ratio =
      accesses_per_sec > 0 ? hier_accesses_per_sec / accesses_per_sec : 0.0;
  const OpsMeasurement hit_path = measure_hier_hit_path(ops);

  // ---- Component phase ----------------------------------------------------
  LegacyDirectory ldir;
  LegacyOtTable lot;
  LegacyAddressMap lamap(kProcsC, kLineBytes, kPageBytes);
  const OpsMeasurement legacy = measure_ops(ldir, lot, lamap, ops);

  lrc::proto::Directory fdir;
  lrc::cache::OtTable fot;
  lrc::mem::AddressMap famap(kProcsC, kLineBytes, kPageBytes);
  const OpsMeasurement flat = measure_ops(fdir, fot, famap, ops);

  const double container_speedup = flat.ops_per_sec / legacy.ops_per_sec;

  // ---- Macro phase: wall clock of the fig4 run_matrix -------------------
  // End-to-end check that the flattening shows up at figure scale: the full
  // seven-app x {SC, ERC, LRC} matrix at test scale, same configuration the
  // tier-1 suite runs.
  lrc::bench::Options mopt;
  mopt.scale = lrc::bench::Scale::kTest;
  mopt.seed = 7;
  mopt.validate = false;
  const double m0 = cpu_seconds();
  const auto matrix = lrc::bench::run_matrix(
      mopt, {lrc::core::ProtocolKind::kSC, lrc::core::ProtocolKind::kERC,
             lrc::core::ProtocolKind::kLRC});
  const double fig4_seconds = cpu_seconds() - m0;  // summed across workers
  std::uint64_t fig4_cycles = 0;
  for (const auto& row : matrix) {
    for (const auto& r : row) fig4_cycles += r.report.execution_time;
  }

  char json[3072];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"bench\": \"micro_memsys\",\n"
      "  \"sim\": {\"accesses\": %llu, \"accesses_per_sec\": %.0f,\n"
      "          \"baseline_accesses_per_sec\": %.0f, \"speedup\": %.2f,\n"
      "          \"allocs_per_access\": %.3f},\n"
      "  \"hier\": {\"accesses\": %llu, \"accesses_per_sec\": %.0f,\n"
      "           \"speedup\": %.2f, \"allocs_per_access\": %.3f,\n"
      "           \"hit_path_ops_per_sec\": %.0f,\n"
      "           \"hit_path_allocs_per_op\": %.4f},\n"
      "  \"container\": {\"legacy_ops_per_sec\": %.0f,\n"
      "                \"flat_ops_per_sec\": %.0f, \"speedup\": %.2f,\n"
      "                \"legacy_allocs_per_op\": %.4f,\n"
      "                \"flat_allocs_per_op\": %.4f},\n"
      "  \"fig4_matrix\": {\"scale\": \"test\", \"apps\": %u, \"kinds\": 3,\n"
      "                 \"cpu_seconds\": %.3f, \"simulated_cycles\": %llu}\n"
      "}\n",
      static_cast<unsigned long long>(sim_accesses),
      accesses_per_sec, kBaselineAccessesPerSec, sim_speedup,
      allocs_per_access,
      static_cast<unsigned long long>(hier_accesses), hier_accesses_per_sec,
      hier_ratio, hier_allocs_per_access, hit_path.ops_per_sec,
      hit_path.allocs_per_op,
      legacy.ops_per_sec, flat.ops_per_sec,
      container_speedup, legacy.allocs_per_op, flat.allocs_per_op,
      static_cast<unsigned>(matrix.size()), fig4_seconds,
      static_cast<unsigned long long>(fig4_cycles));

  std::fputs(json, stdout);
  std::fprintf(stdout,
               "// component sinks: legacy=%llu flat=%llu %s hier=%llu\n",
               static_cast<unsigned long long>(legacy.sink),
               static_cast<unsigned long long>(flat.sink),
               legacy.sink == flat.sink ? "(match)" : "(MISMATCH)",
               static_cast<unsigned long long>(hit_path.sink));

  // Acceptance: steady-state directory/OT handling allocates nothing.
  // (The seed containers allocate on every insert; the flat rewrite must
  // not. Enforced here so CI catches regressions.)
  if (flat.allocs_per_op > 0.0005) {
    std::fprintf(stderr,
                 "FAIL: flat memory-system containers allocated %.4f/op in "
                 "steady state (expected 0)\n",
                 flat.allocs_per_op);
    return 1;
  }
  if (hit_path.allocs_per_op > 0.0005) {
    std::fprintf(stderr,
                 "FAIL: hierarchy hit path allocated %.4f/op in steady state "
                 "(expected 0)\n",
                 hit_path.allocs_per_op);
    return 1;
  }
  // The whole-simulator marginal rate covers everything the component
  // loops cannot see (protocol bookkeeping, NIC, events). A small slack
  // absorbs one-off growth of flat tables to their high-water capacity;
  // anything above it means a per-access allocation crept back into the
  // sim path (pending-invalidation sets were 0.5/access before they moved
  // to util::FlatSet).
  if (allocs_per_access > 0.02 || hier_allocs_per_access > 0.02) {
    std::fprintf(stderr,
                 "FAIL: whole-sim marginal allocation rate %.3f/access "
                 "(single-level) / %.3f/access (two-level); expected ~0\n",
                 allocs_per_access, hier_allocs_per_access);
    return 1;
  }

  if (FILE* f = std::fopen("BENCH_micro_memsys.json", "w")) {
    std::fputs(json, f);
    std::fclose(f);
  }
  return 0;
}
