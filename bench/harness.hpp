// Shared benchmark harness: option parsing, machine construction, and the
// app-by-protocol experiment runner used by every per-figure binary.
//
// Scales (DESIGN.md §4):
//   test   tiny inputs, 4 KiB caches — CI smoke (--quick)
//   bench  scaled paper inputs, 32 KiB caches — the default; inputs and
//          caches shrink together, preserving the paper's miss behaviour
//   paper  original §3 inputs, 128 KiB caches — slow on one host core
#pragma once

#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/machine.hpp"

namespace lrc::bench {

enum class Scale { kTest, kBench, kPaper };

struct Options {
  unsigned procs = 64;
  Scale scale = Scale::kBench;
  std::vector<std::string> apps;  // empty = all seven
  std::uint64_t seed = 1;
  bool future = false;            // §4.3 future-machine parameters
  std::uint32_t cache_bytes = 0;  // 0 = scale default
  std::uint32_t line_bytes = 0;   // 0 = machine default
  bool validate = true;

  /// Parses --procs/--scale/--quick/--apps/--seed/--cache-kb/--line/
  /// --no-validate; exits with usage on error.
  static Options parse(int argc, char** argv);
};

/// System parameters implied by the options (Table 1 or future machine,
/// with scale-appropriate cache size).
core::SystemParams make_params(const Options& opt);

struct RunResult {
  core::Report report;
  apps::AppResult app;
};

/// Runs one application under one protocol on a fresh machine.
RunResult run_app(const apps::AppInfo& info, core::ProtocolKind kind,
                  const Options& opt);

/// The applications selected by the options, in paper order.
std::vector<const apps::AppInfo*> selected_apps(const Options& opt);

/// Prints the standard experiment header (parameters + provenance).
void print_header(const Options& opt, const std::string& title,
                  const std::string& paper_ref);

}  // namespace lrc::bench
