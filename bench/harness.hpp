// Shared benchmark harness: option parsing, machine construction, and the
// app-by-protocol experiment runner used by every per-figure binary.
//
// Scales (DESIGN.md §4):
//   test   tiny inputs, 4 KiB caches — CI smoke (--quick)
//   bench  scaled paper inputs, 32 KiB caches — the default; inputs and
//          caches shrink together, preserving the paper's miss behaviour
//   paper  original §3 inputs, 128 KiB caches — slow on one host core
#pragma once

#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/machine.hpp"

namespace lrc::bench {

enum class Scale { kTest, kBench, kPaper };

struct Options {
  unsigned procs = 64;
  Scale scale = Scale::kBench;
  std::vector<std::string> apps;  // empty = all seven
  std::uint64_t seed = 1;
  bool future = false;            // §4.3 future-machine parameters
  std::uint32_t cache_bytes = 0;  // 0 = scale default
  std::uint32_t line_bytes = 0;   // 0 = machine default
  std::string hier;               // cache-hierarchy preset; empty/"l1" = L1 only
  bool validate = true;
  unsigned jobs = 0;              // worker threads; 0 = hardware_concurrency
  unsigned shards = 0;            // intra-simulation shards; 0 = serial engine
  std::string capture_dir;        // record per-CPU traces under this dir
  std::string replay_dir;         // replay traces from this dir (fiber-free)

  /// Parses --procs/--scale/--quick/--apps/--seed/--cache-kb/--line/
  /// --hier/--no-validate/--jobs/--shards/--capture/--replay; exits with
  /// usage on error.
  static Options parse(int argc, char** argv);
};

/// Worker-thread count the options imply (>= 1; resolves jobs == 0).
unsigned effective_jobs(const Options& opt);

/// System parameters implied by the options (Table 1 or future machine,
/// with scale-appropriate cache size).
core::SystemParams make_params(const Options& opt);

struct RunResult {
  core::Report report;
  apps::AppResult app;
};

/// Runs one application under one protocol on a fresh machine.
RunResult run_app(const apps::AppInfo& info, core::ProtocolKind kind,
                  const Options& opt);

/// One cell of an experiment sweep: an application under a protocol.
struct Experiment {
  const apps::AppInfo* app = nullptr;
  core::ProtocolKind kind{};
};

/// Runs independent experiments on a pool of effective_jobs(opt) worker
/// threads (each on a fresh Machine — simulations share no mutable state).
/// Results come back in input order, and every run uses the same
/// deterministic seed derivation as run_app, so the reports are
/// bit-identical to a serial --jobs 1 sweep.
std::vector<RunResult> run_experiments(const std::vector<Experiment>& exps,
                                       const Options& opt);

/// Runs the full selected-apps × kinds matrix in parallel;
/// result[i][j] pairs selected_apps(opt)[i] with kinds[j].
std::vector<std::vector<RunResult>> run_matrix(
    const Options& opt, const std::vector<core::ProtocolKind>& kinds);

/// The applications selected by the options, in paper order.
std::vector<const apps::AppInfo*> selected_apps(const Options& opt);

/// Prints the standard experiment header (parameters + provenance).
void print_header(const Options& opt, const std::string& title,
                  const std::string& paper_ref);

}  // namespace lrc::bench
