// Reproduces Figure 8: normalized execution time for lazy, lazier, and
// eager release consistency on the hypothetical future machine of §4.3
// (40-cycle memory startup, 4 bytes/cycle everywhere, 256-byte lines).
//
// Expected shape: LRC beats ERC on every application, by a wider margin
// than on the base machine (longer lines -> more false sharing; costlier
// misses -> avoided misses worth more).
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  opt.future = true;
  bench::print_header(opt, "Future machine: LRC vs LRC-ext vs ERC",
                      "paper Figure 8");

  stats::Table table({"Application", "SC(cycles)", "ERC", "LRC", "LRC-ext",
                      "LRC/ERC gain"});
  for (const auto* app : bench::selected_apps(opt)) {
    const auto sc = bench::run_app(*app, core::ProtocolKind::kSC, opt);
    const auto erc = bench::run_app(*app, core::ProtocolKind::kERC, opt);
    const auto lrc_r = bench::run_app(*app, core::ProtocolKind::kLRC, opt);
    const auto ext = bench::run_app(*app, core::ProtocolKind::kLRCExt, opt);
    const double base = static_cast<double>(sc.report.execution_time);
    const double e = erc.report.execution_time / base;
    const double l = lrc_r.report.execution_time / base;
    const double x = ext.report.execution_time / base;
    table.add_row({std::string(app->name),
                   stats::Table::count(sc.report.execution_time),
                   stats::Table::fixed(e, 3), stats::Table::fixed(l, 3),
                   stats::Table::fixed(x, 3),
                   stats::Table::pct((e - l) / e, 1)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape check: the LRC advantage over ERC widens versus Figure 4 "
      "(by\n~2-6 percentage points in the paper; mp3d reaches ~23%%).\n");
  return 0;
}
