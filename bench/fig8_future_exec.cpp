// Reproduces Figure 8: normalized execution time for lazy, lazier, and
// eager release consistency on the hypothetical future machine of §4.3
// (40-cycle memory startup, 4 bytes/cycle everywhere, 256-byte lines).
//
// Expected shape: LRC beats ERC on every application, by a wider margin
// than on the base machine (longer lines -> more false sharing; costlier
// misses -> avoided misses worth more).
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  opt.future = true;
  bench::print_header(opt, "Future machine: LRC vs LRC-ext vs ERC",
                      "paper Figure 8");

  stats::Table table({"Application", "SC(cycles)", "ERC", "LRC", "LRC-ext",
                      "LRC/ERC gain"});
  const auto apps = bench::selected_apps(opt);
  const auto results = bench::run_matrix(
      opt, {core::ProtocolKind::kSC, core::ProtocolKind::kERC,
            core::ProtocolKind::kLRC, core::ProtocolKind::kLRCExt});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& sc = results[i][0];
    const auto& erc = results[i][1];
    const auto& lrc_r = results[i][2];
    const auto& ext = results[i][3];
    const double base = static_cast<double>(sc.report.execution_time);
    const double e = erc.report.execution_time / base;
    const double l = lrc_r.report.execution_time / base;
    const double x = ext.report.execution_time / base;
    table.add_row({std::string(apps[i]->name),
                   stats::Table::count(sc.report.execution_time),
                   stats::Table::fixed(e, 3), stats::Table::fixed(l, 3),
                   stats::Table::fixed(x, 3),
                   stats::Table::pct((e - l) / e, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape check: the LRC advantage over ERC widens versus Figure 4 "
      "(by\n~2-6 percentage points in the paper; mp3d reaches ~23%%).\n");
  return 0;
}
