// Schedule-explorer microbenchmark (docs/MODELCHECK.md): exhaustively
// explores a few corpus litmus programs under LRC with sleep-set reduction
// on and off, reporting schedule counts, the reduction factor, and
// schedules-per-second throughput. The reduction factor is the headline
// number — how much of the interleaving tree the sleep sets prove
// redundant — and a drop in it flags a regression in the independence
// relation or the FIFO filter.
//
// Only built when LRCSIM_CHECK is ON (exploration requires the per-path
// oracle). Writes JSON to stdout and BENCH_mc_explore.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "check/litmus.hpp"
#include "mc/explorer.hpp"

namespace {

struct Row {
  const char* prog;
  std::uint64_t reduced = 0;
  std::uint64_t reduced_examined = 0;
  std::uint64_t full = 0;
  double millis = 0;  // reduced exploration wall time
};

Row measure(const std::string& dir, const char* name) {
  const auto prog = lrc::check::LitmusProgram::parse_file(dir + "/" + name +
                                                          std::string(".litmus"));
  Row row;
  row.prog = name;

  lrc::mc::ExploreOptions opts;
  const auto t0 = std::chrono::steady_clock::now();
  const auto red = lrc::mc::explore(prog, lrc::core::ProtocolKind::kLRC, opts);
  const auto t1 = std::chrono::steady_clock::now();
  row.millis = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.reduced = red.schedules;
  row.reduced_examined = red.examined();

  opts.reduce = false;
  const auto full = lrc::mc::explore(prog, lrc::core::ProtocolKind::kLRC, opts);
  row.full = full.schedules;

  if (!red.complete || !full.complete || red.violating != 0 ||
      full.violating != 0) {
    std::fprintf(stderr, "%s: unexpected incomplete/violating exploration\n",
                 name);
    std::exit(1);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = LRCSIM_LITMUS_DIR;
  if (argc > 1) dir = argv[1];

  const char* progs[] = {"sb", "mp_lock", "release_chain", "iriw_sync"};
  Row rows[4];
  // Throwaway warm-up, then the measured sweep.
  measure(dir, "mp_barrier");
  for (int i = 0; i < 4; ++i) rows[i] = measure(dir, progs[i]);

  char json[2048];
  int off = std::snprintf(json, sizeof(json),
                          "{\n  \"bench\": \"mc_explore\",\n"
                          "  \"protocol\": \"LRC\",\n  \"programs\": [\n");
  for (int i = 0; i < 4; ++i) {
    const Row& r = rows[i];
    const double factor =
        r.reduced_examined ? static_cast<double>(r.full) / r.reduced_examined
                           : 0.0;
    const double rate = r.millis > 0 ? r.reduced / (r.millis / 1000.0) : 0.0;
    off += std::snprintf(
        json + off, sizeof(json) - off,
        "    {\"prog\": \"%s\", \"reduced\": %llu, \"examined\": %llu,\n"
        "     \"full\": %llu, \"reduction_factor\": %.2f,\n"
        "     \"millis\": %.2f, \"schedules_per_sec\": %.0f}%s\n",
        r.prog, static_cast<unsigned long long>(r.reduced),
        static_cast<unsigned long long>(r.reduced_examined),
        static_cast<unsigned long long>(r.full), factor, r.millis, rate,
        i + 1 < 4 ? "," : "");
  }
  std::snprintf(json + off, sizeof(json) - off, "  ]\n}\n");

  std::fputs(json, stdout);
  if (FILE* f = std::fopen("BENCH_mc_explore.json", "w")) {
    std::fputs(json, f);
    std::fclose(f);
  }
  return 0;
}
