// PDES scaling microbenchmark (DESIGN.md §10): how the sharded conservative
// engine scales with shard count and mesh size.
//
// Two workloads:
//  * app64  — a full-protocol simulation (gauss under LRC, 64 processors,
//    test-scale input) at --shards {0, 1, 2, 4, 8}. shards=0 is the legacy
//    serial engine; shards>=1 the keyed engine plus barrier-window clock.
//  * phold<N> — a synthetic hot-potato workload on the raw PDES layer
//    (keyed Engines + ShardSync + mesh hop latencies, no protocol) at mesh
//    sizes 64 / 256 / 1024 — the sizes beyond kMaxProcs that only the
//    sharding layer can reach.
//
// Writes BENCH_pdes.json. Interpretation note: shard workers are real host
// threads, so parallel speedup requires free host cores; on a 1-core host
// the shards>1 figures measure pure synchronization overhead (the recorded
// reference file says which kind of host produced it via "host_cores").
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "core/report.hpp"
#include "mesh/topology.hpp"
#include "sim/engine.hpp"
#include "sim/shard.hpp"

namespace lrc {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---- Synthetic PHOLD-style workload on the raw sharding layer --------------

// Every node starts one ball; each ball executes `hops_left` events, each
// re-sending itself to a pseudo-random node with the mesh hop latency. The
// destination choice is a pure function of (node, hops_left), so the event
// population is identical for every shard count.
class Phold {
 public:
  Phold(unsigned nodes, unsigned shards, std::uint32_t hops_per_ball)
      : topo_(nodes),
        part_(topo_.partition(shards)),
        nshards_(0),
        hop_cost_(3),  // switch (2) + wire (1), the Table-1 mesh step
        key_ctr_(nodes, 0),
        hops_per_ball_(hops_per_ball) {
    for (std::uint8_t s : part_) nshards_ = std::max(nshards_, unsigned(s) + 1);
    const unsigned cross = topo_.min_cross_shard_hops(part_);
    lookahead_ = cross == 0 ? (Cycle{1} << 40) : cross * hop_cost_;
    engines_.reserve(nshards_);
    for (unsigned s = 0; s < nshards_; ++s) {
      auto e = std::make_unique<sim::Engine>();
      e->set_keyed(true);
      engines_.push_back(std::move(e));
    }
    for (auto& m : mail_) {
      m.assign(nshards_, std::vector<std::vector<Posted>>(nshards_));
    }
    parity_.assign(nshards_, Parity{});
    for (NodeId n = 0; n < nodes; ++n) {
      engines_[part_[n]]->schedule_make_keyed<Ball>(n % 7, mint_key(n), *this,
                                                    n, hops_per_ball_);
    }
  }

  /// Runs to completion on nshards threads; returns events executed.
  std::uint64_t run() {
    std::vector<sim::Engine*> eng;
    for (auto& e : engines_) eng.push_back(e.get());
    sim::ShardSync sync(std::move(eng), lookahead_);
    const auto outbox_min = +[](void* ctx, unsigned s) -> Cycle {
      return static_cast<Phold*>(ctx)->outbox_min(s);
    };
    const auto drain = +[](void* ctx, unsigned s) {
      static_cast<Phold*>(ctx)->drain(s);
    };
    std::vector<std::thread> workers;
    for (unsigned s = 1; s < nshards_; ++s) {
      workers.emplace_back([this, &sync, outbox_min, drain, s] {
        sync.run_shard(s, outbox_min, drain, this);
      });
    }
    sync.run_shard(0, outbox_min, drain, this);
    for (auto& w : workers) w.join();
    std::uint64_t events = 0;
    for (auto& e : engines_) events += e->events_executed();
    return events;
  }

 private:
  struct Posted {
    NodeId node;
    Cycle when;
    std::uint64_t key;
    std::uint32_t hops_left;
  };

  class Ball final : public sim::Event {
   public:
    Ball(Phold& ph, NodeId node, std::uint32_t hops_left)
        : ph_(ph), node_(node), hops_left_(hops_left) {}
    void fire(Cycle now) override { ph_.bounce(node_, hops_left_, now); }

   private:
    Phold& ph_;
    NodeId node_;
    std::uint32_t hops_left_;
  };

  std::uint64_t mint_key(NodeId origin) {
    return (std::uint64_t{origin} << 32) | key_ctr_[origin]++;
  }

  void bounce(NodeId n, std::uint32_t left, Cycle now) {
    if (left == 0) return;
    // Deterministic pseudo-random destination: same for every shard count.
    const std::uint64_t h =
        (std::uint64_t{n} * 2654435761u + left) * 0x9E3779B97F4A7C15ull;
    const NodeId dst = static_cast<NodeId>((h >> 33) % topo_.nodes());
    const Cycle delay =
        std::max<Cycle>(1, Cycle{topo_.hops(n, dst)} * hop_cost_);
    const std::uint64_t key = mint_key(n);  // n's shard executes this event
    const unsigned from = part_[n], to = part_[dst];
    if (to == from) {
      engines_[to]->schedule_make_keyed<Ball>(now + delay, key, *this, dst,
                                              left - 1);
    } else {
      mail_[parity_[from].v][from][to].push_back(
          Posted{dst, now + delay, key, left - 1});
    }
  }

  Cycle outbox_min(unsigned s) const {
    Cycle m = kNever;
    for (const auto& box : mail_[parity_[s].v][s]) {
      for (const Posted& p : box) m = std::min(m, p.when);
    }
    return m;
  }

  void drain(unsigned s) {
    const unsigned par = parity_[s].v;
    for (unsigned from = 0; from < nshards_; ++from) {
      for (const Posted& p : mail_[par][from][s]) {
        engines_[s]->schedule_make_keyed<Ball>(p.when, p.key, *this, p.node,
                                               p.hops_left);
      }
      mail_[par][from][s].clear();
    }
    parity_[s].v = par ^ 1;  // next window posts to the other buffer
  }

  mesh::Topology topo_;
  std::vector<std::uint8_t> part_;
  unsigned nshards_;
  const Cycle hop_cost_;
  Cycle lookahead_ = 1;
  struct alignas(64) Parity {
    unsigned v = 0;
  };

  std::vector<std::unique_ptr<sim::Engine>> engines_;
  std::vector<std::vector<std::vector<Posted>>> mail_[2];
  std::vector<Parity> parity_;
  std::vector<std::uint64_t> key_ctr_;
  std::uint32_t hops_per_ball_;
};

double phold_rate(unsigned nodes, unsigned shards, std::uint32_t hops) {
  Phold ph(nodes, shards, hops);
  const auto t0 = Clock::now();
  const std::uint64_t events = ph.run();
  return static_cast<double>(events) / seconds_since(t0);
}

// ---- Full-protocol run ------------------------------------------------------

struct AppRate {
  double events_per_sec = 0;
  std::uint64_t events = 0;
};

AppRate app_rate(unsigned shards) {
  bench::Options opt;
  opt.scale = bench::Scale::kTest;
  opt.procs = 64;
  opt.apps = {"gauss"};
  opt.validate = false;
  opt.shards = shards;
  const auto* app = bench::selected_apps(opt).front();
  const auto t0 = Clock::now();
  const auto res = bench::run_app(*app, core::ProtocolKind::kLRC, opt);
  const double secs = seconds_since(t0);
  return AppRate{static_cast<double>(res.report.events_executed) / secs,
                 res.report.events_executed};
}

}  // namespace
}  // namespace lrc

int main() {
  using namespace lrc;

  std::printf("micro_pdes: conservative parallel-DES scaling\n");
  std::printf("host cores: %u\n\n", std::thread::hardware_concurrency());

  // Full-protocol: gauss/LRC on 64 processors.
  std::printf("app64 (gauss, LRC, 64 procs, test scale):\n");
  const AppRate serial = app_rate(0);
  std::printf("  shards=0 (legacy)  %12.0f events/s  (%llu events)\n",
              serial.events_per_sec, (unsigned long long)serial.events);
  double app_eps[4] = {0, 0, 0, 0};  // shards 1, 2, 4, 8
  const unsigned counts[4] = {1, 2, 4, 8};
  for (int i = 0; i < 4; ++i) {
    const AppRate r = app_rate(counts[i]);
    app_eps[i] = r.events_per_sec;
    std::printf("  shards=%-2u          %12.0f events/s\n", counts[i],
                app_eps[i]);
  }

  // Synthetic PDES layer at and beyond the protocol's node limit.
  const unsigned meshes[3] = {64, 256, 1024};
  const std::uint32_t hops = 300;
  double ph[3][4];
  for (int m = 0; m < 3; ++m) {
    std::printf("phold%u (%u balls x %u hops):\n", meshes[m], meshes[m], hops);
    for (int i = 0; i < 4; ++i) {
      ph[m][i] = phold_rate(meshes[m], counts[i], hops);
      std::printf("  shards=%-2u          %12.0f events/s\n", counts[i],
                  ph[m][i]);
    }
  }

  FILE* f = std::fopen("BENCH_pdes.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"micro_pdes\",\n");
    std::fprintf(f, "  \"pdes\": {\n");
    std::fprintf(f, "    \"host_cores\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f,
                 "    \"app64\": {\"events\": %llu, "
                 "\"serial_events_per_sec\": %.0f,\n"
                 "              \"shard1\": %.0f, \"shard2\": %.0f, "
                 "\"shard4\": %.0f, \"shard8\": %.0f,\n"
                 "              \"speedup\": %.3f},\n",
                 (unsigned long long)serial.events, serial.events_per_sec,
                 app_eps[0], app_eps[1], app_eps[2], app_eps[3],
                 app_eps[2] / app_eps[0]);
    for (int m = 0; m < 3; ++m) {
      std::fprintf(f,
                   "    \"phold%u\": {\"shard1\": %.0f, \"shard2\": %.0f, "
                   "\"shard4\": %.0f, \"shard8\": %.0f, \"speedup\": %.3f}%s\n",
                   meshes[m], ph[m][0], ph[m][1], ph[m][2], ph[m][3],
                   ph[m][2] / ph[m][0], m + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_pdes.json\n");
  }
  return 0;
}
