// Consistency-checker overhead microbenchmark (docs/CHECKER.md): the same
// sync-heavy LRC workload simulated with the checker disabled (hooks
// compiled in but null) and enabled (full value oracle + directory
// invariants), reporting wall time for each and the slowdown factor.
//
// Only built when LRCSIM_CHECK is ON — bench builds without the flag carry
// no checker code at all, which is the configuration the paper figures
// run in.  Writes JSON to stdout and BENCH_checker_overhead.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "check/checker.hpp"
#include "core/machine.hpp"

namespace {

using lrc::core::Cpu;
using lrc::core::Machine;
using lrc::core::ProtocolKind;
using lrc::core::SystemParams;

struct Outcome {
  double millis = 0;
  std::uint64_t reads_checked = 0;
  std::uint64_t writes_tracked = 0;
  std::uint64_t races = 0;
};

// Barrier-phased neighbor exchange plus lock-protected reductions: every
// iteration enters Weak and reverts, so the oracle's shadow bookkeeping,
// HB-frontier joins, and directory invariant sweeps all stay hot.
Outcome run_workload(ProtocolKind kind, unsigned iters, bool with_checker) {
  const unsigned n = 8;
  const unsigned slice = 32;
  Machine m(SystemParams::test_scale(n), kind);
  auto data = m.alloc<std::int64_t>(n * slice, "data");
  auto sums = m.alloc<std::int64_t>(n, "sums");
  auto total = m.alloc<std::int64_t>(1, "total");
  m.poke_mem<std::int64_t>(total.addr(0), 0);

  lrc::check::Checker* ck = nullptr;
  if (with_checker) ck = m.enable_checker(/*strict=*/true);

  const auto t0 = std::chrono::steady_clock::now();
  m.run([&](Cpu& cpu) {
    const unsigned p = cpu.id();
    for (unsigned it = 0; it < iters; ++it) {
      for (unsigned i = 0; i < slice; ++i) {
        data.put(cpu, p * slice + i, static_cast<std::int64_t>(it + p + i));
      }
      cpu.barrier(0);
      std::int64_t acc = 0;
      const unsigned q = (p + 1) % n;
      for (unsigned i = 0; i < slice; ++i) acc += data.get(cpu, q * slice + i);
      sums.put(cpu, p, acc);
      cpu.barrier(1);
      cpu.lock(3);
      total.put(cpu, 0, total.get(cpu, 0) + sums.get(cpu, p));
      cpu.unlock(3);
      cpu.barrier(2);
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  Outcome out;
  out.millis = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (ck != nullptr) {
    out.reads_checked = ck->reads_checked();
    out.writes_tracked = ck->writes_tracked();
    out.races = ck->races();
    if (!ck->violations().empty()) {
      std::fprintf(stderr, "unexpected violation: %s\n",
                   ck->violations()[0].c_str());
      std::exit(1);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned iters = 60;
  if (argc > 1) iters = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10));

  // One throwaway round to warm the allocator, then measure each config.
  run_workload(ProtocolKind::kLRC, iters / 4 + 1, /*with_checker=*/false);
  const Outcome off = run_workload(ProtocolKind::kLRC, iters, false);
  const Outcome on = run_workload(ProtocolKind::kLRC, iters, true);
  const double slowdown = on.millis / off.millis;

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"bench\": \"checker_overhead\",\n"
      "  \"protocol\": \"LRC\",\n"
      "  \"iters\": %u,\n"
      "  \"checker_off\": {\"millis\": %.2f},\n"
      "  \"checker_on\": {\"millis\": %.2f, \"reads_checked\": %llu,\n"
      "                 \"writes_tracked\": %llu, \"races\": %llu},\n"
      "  \"slowdown\": %.2f\n"
      "}\n",
      iters, off.millis, on.millis,
      static_cast<unsigned long long>(on.reads_checked),
      static_cast<unsigned long long>(on.writes_tracked),
      static_cast<unsigned long long>(on.races), slowdown);

  std::fputs(json, stdout);
  if (FILE* f = std::fopen("BENCH_checker_overhead.json", "w")) {
    std::fputs(json, f);
    std::fclose(f);
  }
  return 0;
}
