// Google-benchmark microbenchmarks of the simulator substrate itself:
// host-side costs of the structures every simulated cycle leans on. These
// guard the simulator's own performance (host ns/op), not simulated cycles.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "cache/coalescing_buffer.hpp"
#include "cache/write_buffer.hpp"
#include "mem/dram.hpp"
#include "mesh/nic.hpp"
#include "mesh/topology.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/rng.hpp"
#include "stats/miss_classifier.hpp"

namespace {

using namespace lrc;

void BM_CacheHit(benchmark::State& state) {
  cache::Cache c(128 * 1024, 128);
  c.fill(5, cache::LineState::kReadOnly);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.find(5));
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheFillEvict(benchmark::State& state) {
  cache::Cache c(128 * 1024, 128);
  LineId l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.fill(l++, cache::LineState::kReadWrite));
  }
}
BENCHMARK(BM_CacheFillEvict);

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 64; ++i) {
      e.schedule(static_cast<Cycle>(i), [](Cycle) {});
    }
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_FiberSwitch(benchmark::State& state) {
  sim::Fiber f([] {
    while (true) sim::Fiber::yield();
  });
  for (auto _ : state) {
    f.resume();
  }
}
BENCHMARK(BM_FiberSwitch);

void BM_NicSend(benchmark::State& state) {
  sim::Engine engine;
  mesh::Topology topo(64);
  mesh::Nic nic(engine, topo, mesh::NicParams{});
  nic.set_deliver([](void*, const mesh::Message&, Cycle) {}, nullptr);
  mesh::Message msg;
  msg.kind = mesh::MsgKind::kReadReq;
  msg.src = 0;
  msg.dst = 63;
  Cycle t = 0;
  for (auto _ : state) {
    nic.send(t++, msg);
    if (engine.pending() > 1024) engine.run_some(1024);
  }
  engine.run();
}
BENCHMARK(BM_NicSend);

void BM_DramAccess(benchmark::State& state) {
  mem::Dram d(64, mem::DramParams{});
  Cycle t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.access(0, t, 128, false));
    t += 100;
  }
}
BENCHMARK(BM_DramAccess);

void BM_WriteBufferPushRetire(benchmark::State& state) {
  cache::WriteBuffer wb(4);
  for (auto _ : state) {
    const int s = wb.push(7, 0x3);
    benchmark::DoNotOptimize(wb.retire(s));
  }
}
BENCHMARK(BM_WriteBufferPushRetire);

void BM_CoalescingBufferAdd(benchmark::State& state) {
  cache::CoalescingBuffer cb(16);
  LineId l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cb.add(l++ % 32, 0x1));
  }
}
BENCHMARK(BM_CoalescingBufferAdd);

void BM_MissClassify(benchmark::State& state) {
  stats::MissClassifier mc(64, 32);
  sim::Rng rng(7);
  for (auto _ : state) {
    const auto line = static_cast<LineId>(rng.below(1024));
    const auto p = static_cast<NodeId>(rng.below(64));
    mc.on_write_committed(p, line, 0x1);
    benchmark::DoNotOptimize(
        mc.classify(p ^ 1, line, static_cast<unsigned>(rng.below(32)), false));
    mc.on_fill(p ^ 1, line);
    mc.on_copy_lost(p ^ 1, line, true);
  }
}
BENCHMARK(BM_MissClassify);

void BM_TopologyHops(benchmark::State& state) {
  mesh::Topology topo(64);
  sim::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topo.hops(static_cast<NodeId>(rng.below(64)),
                  static_cast<NodeId>(rng.below(64))));
  }
}
BENCHMARK(BM_TopologyHops);

}  // namespace

BENCHMARK_MAIN();
