// Reproduces the §4.3 sensitivity discussion (text, no figure number):
// varying cache line size, memory latency, and bandwidth, and reporting
// the LRC-vs-ERC execution-time gap.
//
// Expected shape: longer lines widen the gap (more false sharing); higher
// latency+bandwidth combinations keep a modest LRC advantage.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

namespace {

struct Config {
  const char* label;
  lrc::Cycle mem_setup;
  std::uint32_t bandwidth;
  std::uint32_t line;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  if (opt.apps.empty()) {
    // Default to the two most line-size-sensitive apps plus one neutral
    // one; a full 7-app sweep is available with --apps.
    opt.apps = {"blu", "mp3d", "fft"};
  }
  bench::print_header(opt, "Latency/bandwidth/line-size sensitivity",
                      "paper Sec. 4.3 trends discussion");

  static const Config kConfigs[] = {
      {"base (20cy, 2B/cy, 128B)", 20, 2, 128},
      {"long lines (20cy, 2B/cy, 256B)", 20, 2, 256},
      {"short lines (20cy, 2B/cy, 64B)", 20, 2, 64},
      {"high latency (40cy, 2B/cy, 128B)", 40, 2, 128},
      {"high lat+bw (40cy, 4B/cy, 128B)", 40, 4, 128},
      {"future (40cy, 4B/cy, 256B)", 40, 4, 256},
  };

  stats::Table table({"Config", "Application", "ERC(cycles)", "LRC(cycles)",
                      "LRC/ERC gain"});
  for (const auto& cfg : kConfigs) {
    for (const auto* app : bench::selected_apps(opt)) {
      bench::Options o = opt;
      o.line_bytes = cfg.line;
      auto run_with = [&](core::ProtocolKind kind) {
        core::SystemParams p = bench::make_params(o);
        p.mem_setup = cfg.mem_setup;
        p.mem_bandwidth = cfg.bandwidth;
        p.bus_bandwidth = cfg.bandwidth;
        p.net_bandwidth = cfg.bandwidth;
        core::Machine m(p, kind);
        apps::AppConfig ac;
        ac.seed = o.seed;
        ac.n = o.scale == bench::Scale::kTest ? app->test_n : app->bench_n;
        ac.steps =
            o.scale == bench::Scale::kTest ? app->test_steps : app->bench_steps;
        app->run(m, ac);
        return m.report().execution_time;
      };
      const double e = static_cast<double>(run_with(core::ProtocolKind::kERC));
      const double l = static_cast<double>(run_with(core::ProtocolKind::kLRC));
      table.add_row({cfg.label, std::string(app->name),
                     stats::Table::count(static_cast<std::uint64_t>(e)),
                     stats::Table::count(static_cast<std::uint64_t>(l)),
                     stats::Table::pct((e - l) / e, 1)});
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape check: the gain column grows with line size and with "
      "memory\nlatency (in cycles); it stays positive across "
      "latency/bandwidth combinations\nfor the false-sharing apps.\n");
  return 0;
}
