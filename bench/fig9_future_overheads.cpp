// Reproduces Figure 9: overhead analysis on the future machine of §4.3 for
// lazy, lazier, eager, and sequentially-consistent protocols.
//
// Expected shape: the lazy protocols trade increased synchronization time
// for decreased read latency and write-buffer stall time; the trade is
// more profitable than on the base machine.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  opt.future = true;
  bench::print_header(opt, "Future machine overhead analysis",
                      "paper Figure 9");

  stats::Table table({"Application", "Protocol", "cpu", "read", "write",
                      "sync", "total"});
  const auto apps = bench::selected_apps(opt);
  const auto results = bench::run_matrix(
      opt, {core::ProtocolKind::kSC, core::ProtocolKind::kERC,
            core::ProtocolKind::kLRC, core::ProtocolKind::kLRCExt});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& sc = results[i][0];
    const auto& erc = results[i][1];
    const auto& lrc_r = results[i][2];
    const auto& ext = results[i][3];
    const double base = static_cast<double>(sc.report.breakdown.total());
    auto add = [&](const char* proto, const core::Report& r) {
      auto pct = [&](stats::StallKind k) {
        return stats::Table::pct(r.breakdown[k] / base, 1);
      };
      table.add_row({std::string(apps[i]->name), proto,
                     pct(stats::StallKind::kCpu), pct(stats::StallKind::kRead),
                     pct(stats::StallKind::kWrite),
                     pct(stats::StallKind::kSync),
                     stats::Table::pct(r.breakdown.total() / base, 1)});
    };
    add("LRC", lrc_r.report);
    add("LRC-ext", ext.report);
    add("ERC", erc.report);
    add("SC", sc.report);
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
