// Reproduces Figure 9: overhead analysis on the future machine of §4.3 for
// lazy, lazier, eager, and sequentially-consistent protocols.
//
// Expected shape: the lazy protocols trade increased synchronization time
// for decreased read latency and write-buffer stall time; the trade is
// more profitable than on the base machine.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  opt.future = true;
  bench::print_header(opt, "Future machine overhead analysis",
                      "paper Figure 9");

  stats::Table table({"Application", "Protocol", "cpu", "read", "write",
                      "sync", "total"});
  for (const auto* app : bench::selected_apps(opt)) {
    const auto sc = bench::run_app(*app, core::ProtocolKind::kSC, opt);
    const auto erc = bench::run_app(*app, core::ProtocolKind::kERC, opt);
    const auto lrc_r = bench::run_app(*app, core::ProtocolKind::kLRC, opt);
    const auto ext = bench::run_app(*app, core::ProtocolKind::kLRCExt, opt);
    const double base = static_cast<double>(sc.report.breakdown.total());
    auto add = [&](const char* proto, const core::Report& r) {
      auto pct = [&](stats::StallKind k) {
        return stats::Table::pct(r.breakdown[k] / base, 1);
      };
      table.add_row({std::string(app->name), proto,
                     pct(stats::StallKind::kCpu), pct(stats::StallKind::kRead),
                     pct(stats::StallKind::kWrite),
                     pct(stats::StallKind::kSync),
                     stats::Table::pct(r.breakdown.total() / base, 1)});
    };
    add("LRC", lrc_r.report);
    add("LRC-ext", ext.report);
    add("ERC", erc.report);
    add("SC", sc.report);
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
