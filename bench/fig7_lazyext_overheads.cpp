// Reproduces Figure 7: overhead analysis (cpu / read / write / sync, as a
// percentage of SC) for the lazy protocol, its lazier variant, and SC.
//
// Expected shape (paper §4.3): LRC-ext improves miss latency (read
// component) but pays more in synchronization than it saves.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  bench::print_header(opt, "Overhead analysis: LRC, LRC-ext, SC",
                      "paper Figure 7");

  stats::Table table({"Application", "Protocol", "cpu", "read", "write",
                      "sync", "total"});
  const auto apps = bench::selected_apps(opt);
  const auto results = bench::run_matrix(
      opt, {core::ProtocolKind::kSC, core::ProtocolKind::kLRC,
            core::ProtocolKind::kLRCExt});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& sc = results[i][0];
    const auto& lrc_r = results[i][1];
    const auto& ext = results[i][2];
    const double base = static_cast<double>(sc.report.breakdown.total());
    auto add = [&](const char* proto, const core::Report& r) {
      auto pct = [&](stats::StallKind k) {
        return stats::Table::pct(r.breakdown[k] / base, 1);
      };
      table.add_row({std::string(apps[i]->name), proto,
                     pct(stats::StallKind::kCpu), pct(stats::StallKind::kRead),
                     pct(stats::StallKind::kWrite),
                     pct(stats::StallKind::kSync),
                     stats::Table::pct(r.breakdown.total() / base, 1)});
    };
    add("LRC", lrc_r.report);
    add("LRC-ext", ext.report);
    add("SC", sc.report);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape check: LRC-ext lowers the read component but inflates "
      "sync.\n");
  return 0;
}
