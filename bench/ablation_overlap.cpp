// Ablation (paper §2): "Much of the latency of [acquire-time invalidation]
// can be hidden behind the latency of the lock acquisition itself."
//
// LRC normally starts applying buffered write notices the moment the lock
// request leaves, finishing any stragglers at grant time. This bench turns
// that overlap off (everything processed after the grant arrives) and
// measures the synchronization-time cost on the lock-heavy applications.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  if (opt.apps.empty()) opt.apps = {"barnes", "cholesky", "locusroute", "mp3d"};
  bench::print_header(opt, "Acquire-overlap ablation (LRC)",
                      "paper Sec. 2 invalidation/lock-latency overlap");

  stats::Table table({"Application", "Overlap(cycles)", "No overlap",
                      "Slowdown", "Sync overlap", "Sync no-ovl"});
  for (const auto* app : bench::selected_apps(opt)) {
    auto run_with = [&](bool overlap) {
      core::SystemParams p = bench::make_params(opt);
      p.lrc_overlap_acquire = overlap;
      core::Machine m(p, core::ProtocolKind::kLRC);
      apps::AppConfig cfg;
      cfg.seed = opt.seed;
      cfg.n = opt.scale == bench::Scale::kTest ? app->test_n : app->bench_n;
      cfg.steps =
          opt.scale == bench::Scale::kTest ? app->test_steps : app->bench_steps;
      app->run(m, cfg);
      return m.report();
    };
    const auto on = run_with(true);
    const auto off = run_with(false);
    table.add_row(
        {std::string(app->name), stats::Table::count(on.execution_time),
         stats::Table::count(off.execution_time),
         stats::Table::pct(
             (static_cast<double>(off.execution_time) - on.execution_time) /
                 static_cast<double>(on.execution_time),
             1),
         stats::Table::count(on.breakdown[stats::StallKind::kSync]),
         stats::Table::count(off.breakdown[stats::StallKind::kSync])});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected: disabling the overlap moves notice processing into the\n"
      "acquire's critical path, inflating synchronization time.\n");
  return 0;
}
