// Ablation (paper §4.2): for programs with data races, "the lazy protocol
// can match the performance of the eager protocol simply by adding fence
// operations ... that force the protocol processor to process
// invalidations at regular intervals."
//
// This bench runs the two racy applications (locusroute, mp3d) under LRC
// with fences every {off, 64, 16, 4} work items and prints execution time
// plus the solution-quality line, with ERC as the freshness reference.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  if (opt.apps.empty()) opt.apps = {"locusroute", "mp3d"};
  bench::print_header(opt, "Fence-period ablation for racy programs",
                      "paper Sec. 4.2 (fences bound invalidation staleness)");

  stats::Table table({"Application", "Config", "Exec cycles", "vs LRC",
                      "Quality / validation"});
  for (const auto* app : bench::selected_apps(opt)) {
    auto run_with = [&](core::ProtocolKind kind, unsigned fence_every) {
      core::Machine m(bench::make_params(opt), kind);
      apps::AppConfig cfg;
      cfg.seed = opt.seed;
      cfg.n = opt.scale == bench::Scale::kTest ? app->test_n : app->bench_n;
      cfg.steps =
          opt.scale == bench::Scale::kTest ? app->test_steps : app->bench_steps;
      cfg.fence_every = fence_every;
      const auto res = app->run(m, cfg);
      return std::make_pair(m.report().execution_time, res.detail);
    };
    const auto base = run_with(core::ProtocolKind::kLRC, 0);
    auto add = [&](const char* label, std::pair<Cycle, std::string> r) {
      table.add_row({std::string(app->name), label,
                     stats::Table::count(r.first),
                     stats::Table::fixed(static_cast<double>(r.first) /
                                             static_cast<double>(base.first),
                                         3),
                     r.second});
    };
    add("LRC, no fences", base);
    add("LRC, fence/64", run_with(core::ProtocolKind::kLRC, 64));
    add("LRC, fence/16", run_with(core::ProtocolKind::kLRC, 16));
    add("LRC, fence/4", run_with(core::ProtocolKind::kLRC, 4));
    add("ERC (reference)", run_with(core::ProtocolKind::kERC, 0));
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected: tighter fence periods trade execution time for fresher\n"
      "data (quality approaches the eager reference), per the paper's "
      "remedy.\n");
  return 0;
}
