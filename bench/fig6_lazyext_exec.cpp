// Reproduces Figure 6: normalized execution time of the lazy protocol and
// its lazier variant (SC = 1.0) on 64 processors.
//
// Expected shape (paper §4.3): LRC-ext is *slower* than LRC on every
// application except fft (whose barrier-batched write requests combine at
// the home nodes) — the paper's central negative result.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  bench::print_header(opt, "Normalized execution time: LRC vs LRC-ext",
                      "paper Figure 6");

  stats::Table table({"Application", "SC(cycles)", "LRC", "LRC-ext",
                      "ext penalty"});
  const auto apps = bench::selected_apps(opt);
  const auto results = bench::run_matrix(
      opt, {core::ProtocolKind::kSC, core::ProtocolKind::kLRC,
            core::ProtocolKind::kLRCExt});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& sc = results[i][0];
    const auto& lrc_r = results[i][1];
    const auto& ext = results[i][2];
    const double base = static_cast<double>(sc.report.execution_time);
    const double l = lrc_r.report.execution_time / base;
    const double x = ext.report.execution_time / base;
    table.add_row({std::string(apps[i]->name),
                   stats::Table::count(sc.report.execution_time),
                   stats::Table::fixed(l, 3), stats::Table::fixed(x, 3),
                   stats::Table::pct((x - l) / l, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape check: delaying write notices to release time HURTS on "
      "hardware\n(positive ext penalty) except on fft — a qualitative "
      "difference from software DSM.\n");
  return 0;
}
