// Reproduces Figure 5: breakdown of aggregate cycles (over all processors)
// into cpu / read-latency / write-buffer / synchronization components for
// the lazy, eager, and sequentially-consistent protocols, each expressed
// as a percentage of the SC protocol's total.
//
// Expected shape (paper §4.2): LRC shows lower read latency and write
// stalls but higher synchronization time than ERC.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  bench::print_header(opt, "Overhead analysis: LRC, ERC, SC",
                      "paper Figure 5");

  stats::Table table({"Application", "Protocol", "cpu", "read", "write",
                      "sync", "total"});
  const auto apps = bench::selected_apps(opt);
  const auto results = bench::run_matrix(
      opt, {core::ProtocolKind::kSC, core::ProtocolKind::kERC,
            core::ProtocolKind::kLRC});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& sc = results[i][0];
    const auto& erc = results[i][1];
    const auto& lrc_r = results[i][2];
    const double base = static_cast<double>(sc.report.breakdown.total());
    auto add = [&](const char* proto, const core::Report& r) {
      auto pct = [&](stats::StallKind k) {
        return stats::Table::pct(r.breakdown[k] / base, 1);
      };
      table.add_row({std::string(apps[i]->name), proto,
                     pct(stats::StallKind::kCpu), pct(stats::StallKind::kRead),
                     pct(stats::StallKind::kWrite),
                     pct(stats::StallKind::kSync),
                     stats::Table::pct(r.breakdown.total() / base, 1)});
    };
    add("LRC", lrc_r.report);
    add("ERC", erc.report);
    add("SC", sc.report);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "All entries are %% of the SC protocol's aggregate cycles for that "
      "app.\nPaper shape check: LRC trades higher sync for lower read+write "
      "overhead.\n");
  return 0;
}
