// Ablation (paper §4.2, gauss discussion): "One could argue that the eager
// protocol could also use the write-through policy ... However this would
// be detrimental to the performance of other applications. For the lazy
// protocol, write-through is necessary for correctness purposes."
//
// ERC-WT is eager release consistency with the lazy protocol's
// write-through + coalescing-buffer data path bolted on. Comparing
// ERC / ERC-WT / LRC separates how much of LRC's behaviour comes from the
// data path versus from laziness itself.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lrc;
  auto opt = bench::Options::parse(argc, argv);
  bench::print_header(opt, "Write-through data-path ablation (ERC vs ERC-WT)",
                      "paper Sec. 4.2 write-policy discussion");

  stats::Table table(
      {"Application", "ERC(cycles)", "ERC-WT", "LRC", "WT penalty on eager"});
  for (const auto* app : bench::selected_apps(opt)) {
    const auto erc = bench::run_app(*app, core::ProtocolKind::kERC, opt);
    const auto wt = bench::run_app(*app, core::ProtocolKind::kERCWT, opt);
    const auto lrc_r = bench::run_app(*app, core::ProtocolKind::kLRC, opt);
    const double e = static_cast<double>(erc.report.execution_time);
    table.add_row({std::string(app->name),
                   stats::Table::count(erc.report.execution_time),
                   stats::Table::fixed(wt.report.execution_time / e, 3),
                   stats::Table::fixed(lrc_r.report.execution_time / e, 3),
                   stats::Table::pct(
                       (wt.report.execution_time - e) / e, 1)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Values normalized to ERC = 1.000. Expected: ERC-WT pays write-through\n"
      "traffic without gaining laziness — the paper's argument that LRC's\n"
      "advantage is not merely its write policy.\n");
  return 0;
}
