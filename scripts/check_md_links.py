#!/usr/bin/env python3
"""Verify that relative markdown links in the repo's docs resolve.

Scans every *.md file at the repo root and under docs/, extracts inline
links `[text](target)`, and checks that non-URL targets exist relative to
the file containing the link. Fragments (`file.md#section`) are checked
for file existence only.

Run from the repository root:  python3 scripts/check_md_links.py
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

# Docs that must exist: a deleted-but-still-registered doc fails loudly
# here even if nothing links to it yet.
REQUIRED_DOCS = (
    "docs/PROTOCOL.md",
    "docs/CHECKER.md",
    "docs/MODELCHECK.md",
    "docs/VERIFICATION.md",
    "docs/STATIC.md",
)


def md_files() -> list[Path]:
    files = sorted(ROOT.glob("*.md"))
    files += sorted((ROOT / "docs").glob("**/*.md"))
    return files


def main() -> int:
    errors = []
    checked = 0
    for req in REQUIRED_DOCS:
        checked += 1
        if not (ROOT / req).is_file():
            errors.append(f"required doc {req} is missing")
    for md in md_files():
        base = md.parent
        for lineno, line in enumerate(md.read_text().splitlines(), start=1):
            for target in LINK_RE.findall(line):
                if target.startswith(SKIP_PREFIXES):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                checked += 1
                if not (base / path_part).exists():
                    rel = md.relative_to(ROOT)
                    errors.append(f"{rel}:{lineno}: broken link {target}")

    if errors:
        print(f"markdown links: {len(errors)} broken")
        for e in errors:
            print("  " + e)
        return 1
    print(f"markdown links: OK ({checked} relative links checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
