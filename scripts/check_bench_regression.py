#!/usr/bin/env python3
"""Compare a freshly produced BENCH_*.json against the checked-in one.

Usage: check_bench_regression.py <checked-in.json> <fresh.json> [...]

Absolute throughput numbers are host-dependent, so CI compares the
*within-run* figures instead:

  * every "speedup" field (optimized vs. legacy implementation measured in
    the same process seconds apart) must not regress by more than
    REGRESSION_TOLERANCE against the checked-in value;
  * every "*allocs*" field that is (near-)zero in the checked-in file must
    stay (near-)zero — the zero-steady-state-allocation property is exact,
    not statistical.

The "sim" section's speedup is measured against a baseline pinned on the
recording host, so on other hosts it is informational; pass --strict-sim
to enforce it too (used when regenerating the checked-in files).
"""

import json
import sys

REGRESSION_TOLERANCE = 0.30  # fail on >30% drop of any speedup ratio
ZERO_ALLOCS = 0.001          # "zero" allowing for one-off warmup noise

# Sections a bench must emit: their "speedup" / "*allocs*" leaves are what
# the rules above gate, so silently dropping the section (e.g. by
# regenerating the JSON with an older binary) must itself be a failure.
REQUIRED_SECTIONS = {
    "micro_memsys": ("sim", "hier", "container"),
    "micro_pdes": ("pdes",),
}


def walk(ref, new, path, failures, strict_sim):
    if isinstance(ref, dict):
        if not isinstance(new, dict):
            failures.append(f"{path}: shape mismatch")
            return
        for key, ref_val in ref.items():
            if key not in new:
                failures.append(f"{path}.{key}: missing from fresh output")
                continue
            walk(ref_val, new[key], f"{path}.{key}", failures, strict_sim)
        return
    if not isinstance(ref, (int, float)) or isinstance(ref, bool):
        return
    leaf = path.rsplit(".", 1)[-1]
    if leaf == "speedup":
        if ".sim." in path and not strict_sim:
            print(f"  info {path}: {new:.2f} (checked-in {ref:.2f}, "
                  "baseline is host-pinned; not enforced)")
            return
        floor = ref * (1.0 - REGRESSION_TOLERANCE)
        status = "ok" if new >= floor else "FAIL"
        print(f"  {status} {path}: {new:.2f} vs checked-in {ref:.2f} "
              f"(floor {floor:.2f})")
        if new < floor:
            failures.append(f"{path}: {new:.2f} < floor {floor:.2f}")
    elif "allocs" in leaf and ref <= ZERO_ALLOCS:
        status = "ok" if new <= ZERO_ALLOCS else "FAIL"
        print(f"  {status} {path}: {new:.4f} (must stay <= {ZERO_ALLOCS})")
        if new > ZERO_ALLOCS:
            failures.append(f"{path}: {new:.4f} allocations, expected zero")


def main(argv):
    args = [a for a in argv[1:] if a != "--strict-sim"]
    strict_sim = "--strict-sim" in argv[1:]
    if len(args) < 2 or len(args) % 2 != 0:
        print(__doc__)
        return 2
    failures = []
    for ref_path, new_path in zip(args[0::2], args[1::2]):
        with open(ref_path) as f:
            # The bench writers append a trailing comment line; strip it.
            ref = json.loads("".join(l for l in f if not l.startswith("//")))
        with open(new_path) as f:
            new = json.loads("".join(l for l in f if not l.startswith("//")))
        name = ref.get("bench", ref_path)
        if ref.get("bench") != new.get("bench"):
            failures.append(f"{ref_path} vs {new_path}: different benches")
            continue
        print(f"{name}:")
        for section in REQUIRED_SECTIONS.get(name, ()):
            for side, data in (("checked-in", ref), ("fresh", new)):
                if section not in data:
                    failures.append(
                        f"{name}.{section}: required section missing from "
                        f"{side} output")
        walk(ref, new, name, failures, strict_sim)
    if failures:
        print("bench regression: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("bench regression: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
